// Pebblegame: the paper's complexity results in action (§4 and Figures
// 1-5). Builds each gadget tree and demonstrates the property it proves:
// the NP-completeness schedule, the bi-objective inapproximability bound,
// and the worst cases of the three heuristics.
package main

import (
	"fmt"
	"log"

	"treesched"
	"treesched/internal/pebble"
	"treesched/internal/sched"
	"treesched/internal/traversal"
)

func main() {
	threePartition()
	inapprox()
	forkWorstCase()
	joinChainWorstCase()
	spiderWorstCase()
}

// threePartition follows Theorem 1: scheduling the Figure 1 tree within
// both bounds is exactly solving 3-Partition.
func threePartition() {
	a := []int{3, 3, 4, 4, 3, 3} // m=2 triples summing to B=10
	tp, err := pebble.NewThreePartition(a, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 1 (Fig 1): 3-Partition gadget with %d nodes, p=%d\n",
		tp.Tree.Len(), tp.Procs)
	part := pebble.SolveThreePartition(a, 10)
	s, err := tp.YesSchedule(part)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  partition %v gives makespan %g (bound %g), memory %d (bound %d)\n\n",
		part, s.Makespan(tp.Tree), tp.MakespanBound,
		sched.PeakMemory(tp.Tree, s), tp.MemoryBound)
}

// inapprox follows Theorem 2: any α-approximation of the makespan forces a
// memory ratio that grows without bound.
func inapprox() {
	g, err := pebble.NewInapprox(3, 5)
	if err != nil {
		log.Fatal(err)
	}
	opt := traversal.Optimal(g.Tree)
	fmt.Printf("Theorem 2 (Fig 2): n=3, δ=5, %d nodes\n", g.Tree.Len())
	fmt.Printf("  critical path %g, optimal sequential memory %d (= n+δ = %d)\n",
		g.Tree.CriticalPath(), opt.Peak, g.OptimalPeakMemory())
	fmt.Println("  forced memory ratio for a 2-approx of makespan, δ=n²:")
	for _, n := range []int{4, 16, 64, 256} {
		fmt.Printf("    n=%4d: ratio ≥ %.1f\n", n, pebble.MemoryRatioLowerBound(n, n*n, 2))
	}
	fmt.Println()
}

// forkWorstCase shows ParSubtrees losing a factor p on the makespan
// (Figure 3) and ParSubtreesOptim repairing it.
func forkWorstCase() {
	const p, k = 4, 10
	t := treesched.ForkTree(p, k)
	run := func(name string, f func(*treesched.Tree, int) (*treesched.Schedule, error)) {
		s, err := f(t, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s makespan %g\n", name, s.Makespan(t))
	}
	fmt.Printf("Figure 3: fork with %d leaves on p=%d (optimal makespan %d)\n",
		p*k, p, k+1)
	run("ParSubtrees", treesched.ParSubtrees)
	run("ParSubtreesOptim", treesched.ParSubtreesOptim)
	run("ParDeepestFirst", treesched.ParDeepestFirst)
	fmt.Println()
}

// joinChainWorstCase shows ParInnerFirst's unbounded memory (Figure 4).
func joinChainWorstCase() {
	const p = 4
	fmt.Printf("Figure 4: join-chain trees, p=%d (M_seq = p+1 = %d)\n", p, p+1)
	for _, k := range []int{10, 20, 40} {
		t := treesched.JoinChainTree(p, k)
		s, err := treesched.ParInnerFirst(t, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%3d: ParInnerFirst memory %3d  (M_seq %d)\n",
			k, treesched.PeakMemory(t, s), treesched.MemoryLowerBound(t))
	}
	fmt.Println()
}

// spiderWorstCase shows ParDeepestFirst's unbounded memory (Figure 5).
func spiderWorstCase() {
	fmt.Println("Figure 5: spiders of equal-depth chains, p=2 (optimal M_seq = 3)")
	for _, m := range []int{5, 20, 80} {
		t := treesched.SpiderTree(m, 4)
		s, err := treesched.ParDeepestFirst(t, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d chains: ParDeepestFirst memory %3d  (M_seq %d)\n",
			m, treesched.PeakMemory(t, s), treesched.MemoryLowerBound(t))
	}
}
