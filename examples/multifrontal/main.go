// Multifrontal: the paper's motivating application. Synthesize a sparse
// matrix (a 2D Laplacian), order it with nested dissection, build the
// assembly tree of its Cholesky factorization with relaxed amalgamation,
// and schedule the factorization on 2..32 processors, showing the
// memory/makespan trade-off of every heuristic.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"treesched"
)

func main() {
	// A 40×40 grid Laplacian: 1600 columns to factorize.
	pattern := treesched.Grid2D(40, 40)
	perm := treesched.NestedDissection(pattern)
	fmt.Printf("matrix: %d columns, %d nonzeros\n", pattern.Len(), pattern.NNZ())

	for _, eta := range []int{1, 4, 16} {
		t, err := treesched.AssemblyTree(pattern, perm, eta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nassembly tree (η≤%d): %d nodes, height %d, max degree %d\n",
			eta, t.Len(), t.Height(), t.MaxDegree())
		fmt.Printf("sequential: memory %d, time %.4g\n", treesched.MemoryLowerBound(t), t.TotalW())
		if eta != 4 {
			continue // print the full processor sweep once
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "p\theuristic\tms/LB\tmem/Mseq")
		for _, p := range []int{2, 4, 8, 16, 32} {
			msLB := treesched.MakespanLowerBound(t, p)
			memLB := treesched.MemoryLowerBound(t)
			for _, h := range treesched.Heuristics() {
				s, err := h.Run(t, p)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Fprintf(w, "%d\t%s\t%.3f\t%.3f\n", p, h.Name,
					s.Makespan(t)/msLB, float64(treesched.PeakMemory(t, s))/float64(memLB))
			}
		}
		w.Flush()
	}
}
