// Tradeoff: enumerate the bi-objective (makespan, memory) outcomes of all
// schedulers on one tree and print the Pareto-efficient ones — the
// practical takeaway of the paper's evaluation: no heuristic dominates,
// each occupies a different spot on the memory/makespan frontier.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"treesched"
)

type point struct {
	name     string
	makespan float64
	memory   int64
}

func main() {
	// An irregular random-matrix assembly tree exposes the trade-off well.
	rng := rand.New(rand.NewSource(11))
	pattern := treesched.RandomSymmetric(rng, 1500, 3)
	t, err := treesched.AssemblyTree(pattern, treesched.MinimumDegree(pattern), 2)
	if err != nil {
		log.Fatal(err)
	}
	const p = 8
	mseq := treesched.MemoryLowerBound(t)
	msLB := treesched.MakespanLowerBound(t, p)
	fmt.Printf("tree: %d nodes; p=%d; M_seq=%d; makespan LB %.4g\n\n", t.Len(), p, mseq, msLB)

	var pts []point
	for _, h := range treesched.Heuristics() {
		s, err := h.Run(t, p)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, point{h.Name, s.Makespan(t), treesched.PeakMemory(t, s)})
	}
	for _, factor := range []float64{1.0, 1.5, 2.5} {
		cap := int64(factor * float64(mseq))
		s, err := treesched.MemCapped(t, p, cap)
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, point{fmt.Sprintf("MemCapped(%.1f×)", factor),
			s.Makespan(t), treesched.PeakMemory(t, s)})
	}

	sort.Slice(pts, func(a, b int) bool { return pts[a].makespan < pts[b].makespan })
	fmt.Println("all schedules (sorted by makespan):")
	for _, pt := range pts {
		dominated := false
		for _, other := range pts {
			if (other.makespan < pt.makespan && other.memory <= pt.memory) ||
				(other.makespan <= pt.makespan && other.memory < pt.memory) {
				dominated = true
				break
			}
		}
		marker := "  pareto"
		if dominated {
			marker = ""
		}
		fmt.Printf("  %-18s ms/LB %.3f  mem/Mseq %.3f%s\n",
			pt.name, pt.makespan/msLB, float64(pt.memory)/float64(mseq), marker)
	}
}
