// Quickstart: build a small task tree, find its memory-optimal sequential
// traversals, then schedule it on 2 processors with every heuristic of the
// paper and compare makespan and peak memory.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"treesched"
)

func main() {
	// A tiny multifrontal-style tree:
	//
	//	         root (w=4)
	//	        /          \
	//	    merge (w=6)    chain (w=3)
	//	    /    |    \        |
	//	  leaf leaf  leaf    leaf
	var b treesched.Builder
	root := b.Add(treesched.None, 4, 2, 0)
	merge := b.Add(root, 6, 4, 8)
	chain := b.Add(root, 3, 1, 6)
	for i := 0; i < 3; i++ {
		b.Add(merge, 2, 0, 5)
	}
	b.Add(chain, 2, 0, 9)
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Sequential bounds: the best postorder and Liu's exact optimum.
	po := treesched.BestPostOrder(t)
	opt := treesched.OptimalTraversal(t)
	fmt.Printf("tree with %d nodes, total work %g, critical path %g\n",
		t.Len(), t.TotalW(), t.CriticalPath())
	fmt.Printf("sequential memory: best postorder %d, optimal %d\n\n", po.Peak, opt.Peak)

	// Parallel scheduling with the paper's four heuristics.
	const p = 2
	fmt.Printf("scheduling on p=%d processors (makespan LB %.4g, memory LB %d)\n\n",
		p, treesched.MakespanLowerBound(t, p), treesched.MemoryLowerBound(t))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "heuristic\tmakespan\tpeak memory")
	for _, h := range treesched.Heuristics() {
		s, err := h.Run(t, p)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Validate(t); err != nil {
			log.Fatalf("%s: invalid schedule: %v", h.Name, err)
		}
		fmt.Fprintf(w, "%s\t%g\t%d\n", h.Name, s.Makespan(t), treesched.PeakMemory(t, s))
	}
	w.Flush()
}
