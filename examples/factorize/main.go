// Factorize: the paper's model validated against real numerics. Build an
// SPD matrix, run the actual multifrontal Cholesky factorization under
// different tree traversals, and observe that (a) the factor is correct
// regardless of the traversal and (b) the real peak memory — counted in
// live matrix entries — is exactly what the abstract model predicts, so
// memory-aware traversals pay off on real fronts.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"treesched"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	pattern := treesched.Grid2D(14, 14)
	perm := treesched.NestedDissection(pattern)
	a := treesched.SPDMatrix(rng, pattern)
	fmt.Printf("matrix: %d columns, %d nonzeros (2D grid, nested dissection)\n",
		pattern.Len(), pattern.NNZ())

	f, err := treesched.NewFactorizer(pattern, perm, a)
	if err != nil {
		log.Fatal(err)
	}
	// The η=1 assembly tree drives the traversal choices; its node ids are
	// the eliminated column positions.
	t, err := treesched.AssemblyTree(pattern, perm, 1)
	if err != nil {
		log.Fatal(err)
	}

	orders := []struct {
		name  string
		order []int
	}{
		{"arbitrary topological", t.TopOrder()},
		{"best postorder (Liu 1986)", treesched.BestPostOrder(t).Order},
		{"optimal (Liu 1987)", treesched.OptimalTraversal(t).Order},
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "traversal\tmodel peak\tengine peak\tfactor ok")
	for _, o := range orders {
		predicted, err := treesched.SequentialPeakMemory(t, o.order)
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.Factorize(o.order)
		if err != nil {
			log.Fatal(err)
		}
		ok := f.Verify(res.L, 1e-8) == nil
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\n", o.name, predicted, res.PeakEntries, ok)
	}
	w.Flush()
	fmt.Println("\nthe engine allocates exactly the entries the model charges:")
	fmt.Println("front = µ² = n+f, contribution block = (µ-1)² = f  (paper §6.2, η=1)")
}
