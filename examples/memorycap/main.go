// Memorycap: the paper's future-work proposal (§7) in action. Schedule an
// assembly tree under a hard memory cap and trace how the achievable
// makespan degrades as the cap shrinks toward the sequential minimum.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"treesched"
)

func main() {
	pattern := treesched.Grid2D(30, 30)
	t, err := treesched.AssemblyTree(pattern, treesched.NestedDissection(pattern), 4)
	if err != nil {
		log.Fatal(err)
	}
	const p = 8
	mseq := treesched.MemoryLowerBound(t)
	msLB := treesched.MakespanLowerBound(t, p)
	fmt.Printf("assembly tree: %d nodes; p=%d; M_seq=%d; makespan LB %.4g\n\n",
		t.Len(), p, mseq, msLB)

	// Reference points: the uncapped heuristics.
	fmt.Println("uncapped heuristics:")
	for _, h := range treesched.Heuristics() {
		s, err := h.Run(t, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s ms/LB %.3f  mem/Mseq %.3f\n", h.Name,
			s.Makespan(t)/msLB, float64(treesched.PeakMemory(t, s))/float64(mseq))
	}

	// Capped schedules from 1×M_seq upward: the activation-order scheduler
	// (safe but conservative) against the booking scheduler (lends unbooked
	// memory to deep out-of-order tasks).
	fmt.Println("\nmemory-capped schedulers:")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "cap/Mseq\tactivation ms/LB\tbooking ms/LB\tbooking mem/Mseq")
	for _, factor := range []float64{1.0, 1.2, 1.5, 2.0, 3.0, 5.0} {
		cap := int64(factor * float64(mseq))
		sa, err := treesched.MemCapped(t, p, cap)
		if err != nil {
			log.Fatal(err)
		}
		sb, err := treesched.MemCappedBooking(t, p, cap)
		if err != nil {
			log.Fatal(err)
		}
		used := treesched.PeakMemory(t, sb)
		if used > cap || treesched.PeakMemory(t, sa) > cap {
			log.Fatalf("cap violated")
		}
		fmt.Fprintf(w, "%.1f\t%.3f\t%.3f\t%.3f\n", factor,
			sa.Makespan(t)/msLB, sb.Makespan(t)/msLB, float64(used)/float64(mseq))
	}
	w.Flush()

	// An infeasible cap is rejected, not silently exceeded.
	if _, err := treesched.MemCapped(t, p, mseq-1); err != nil {
		fmt.Printf("\ncap below M_seq correctly rejected: %v\n", err)
	}
}
