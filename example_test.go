package treesched_test

import (
	"fmt"

	"treesched"
)

// ExampleBestPostOrder computes the memory-optimal sequential traversal of
// a three-leaf join.
func ExampleBestPostOrder() {
	var b treesched.Builder
	root := b.Add(treesched.None, 1, 0, 0)
	b.Add(root, 1, 0, 4)
	b.Add(root, 1, 0, 2)
	b.Add(root, 1, 0, 1)
	t, _ := b.Build()
	res := treesched.BestPostOrder(t)
	fmt.Println(res.Peak)
	// Output: 7
}

// ExampleParSubtrees schedules a fork of four unit tasks on two processors.
func ExampleParSubtrees() {
	t := treesched.ForkTree(2, 2) // root + 4 pebble leaves
	s, _ := treesched.ParSubtrees(t, 2)
	fmt.Println(s.Makespan(t), treesched.PeakMemory(t, s))
	// Output: 4 5
}

// ExampleOptimalTraversal shows Liu's exact algorithm beating every
// postorder: the tree interleaves two subtrees whose large temporary peaks
// do not overlap under the optimal order.
func ExampleOptimalTraversal() {
	// Root with two children; each child has a heavy temporary (n) and a
	// light output, so finishing one subtree entirely before the other
	// (any postorder) pays both peaks on top of a resident output.
	var b treesched.Builder
	root := b.Add(treesched.None, 1, 0, 0)
	a := b.Add(root, 1, 0, 6) // large output
	b.Add(a, 1, 9, 1)         // heavy child of a
	c := b.Add(root, 1, 0, 6)
	b.Add(c, 1, 9, 1)
	t, _ := b.Build()
	po := treesched.BestPostOrder(t)
	opt := treesched.OptimalTraversal(t)
	fmt.Println(po.Peak > opt.Peak)
	// Output: true
}

// ExampleMemCappedBooking schedules under a hard memory cap.
func ExampleMemCappedBooking() {
	t := treesched.SpiderTree(10, 4) // blows up deepest-first memory
	mseq := treesched.MemoryLowerBound(t)
	s, _ := treesched.MemCappedBooking(t, 4, mseq+2)
	fmt.Println(treesched.PeakMemory(t, s) <= mseq+2)
	// Output: true
}
