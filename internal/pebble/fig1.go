package pebble

import (
	"fmt"

	"treesched/internal/sched"
	"treesched/internal/tree"
)

// ThreePartition is the NP-completeness gadget of paper Figure 1, built
// from a 3-Partition instance with 3m integers a_i summing to m·B.
type ThreePartition struct {
	Tree *tree.Tree
	A    []int   // the 3m integers
	B    int     // the target subset sum
	M    int     // number of subsets
	Root int     // root node id
	N    []int   // N[i] = id of inner node N_i (one per a_i)
	L    [][]int // L[i] = ids of the 3m*a_i leaf children of N_i

	// The decision bounds of the reduction.
	Procs         int     // p = 3mB
	MemoryBound   int64   // Bmem = 3mB + 3m
	MakespanBound float64 // BCmax = 2m + 1
}

// NewThreePartition builds the Figure 1 tree for integers a (len 3m) and
// target B. It validates Σa = mB and B/4 < a_i < B/2 (the strongly
// NP-complete 3-Partition variant used in Theorem 1).
func NewThreePartition(a []int, b int) (*ThreePartition, error) {
	if len(a)%3 != 0 || len(a) == 0 {
		return nil, fmt.Errorf("pebble: 3-partition needs 3m integers, got %d", len(a))
	}
	m := len(a) / 3
	sum := 0
	for _, x := range a {
		if 4*x <= b || 2*x >= b {
			return nil, fmt.Errorf("pebble: 3-partition requires B/4 < a_i < B/2, got a=%d B=%d", x, b)
		}
		sum += x
	}
	if sum != m*b {
		return nil, fmt.Errorf("pebble: Σa = %d, want m·B = %d", sum, m*b)
	}
	var bld tree.Builder
	root := bld.AddPebble(tree.None)
	tp := &ThreePartition{
		A: append([]int(nil), a...), B: b, M: m, Root: root,
		Procs:         3 * m * b,
		MemoryBound:   int64(3*m*b + 3*m),
		MakespanBound: float64(2*m + 1),
	}
	for _, ai := range a {
		ni := bld.AddPebble(root)
		tp.N = append(tp.N, ni)
		leaves := make([]int, 0, 3*m*ai)
		for l := 0; l < 3*m*ai; l++ {
			leaves = append(leaves, bld.AddPebble(ni))
		}
		tp.L = append(tp.L, leaves)
	}
	t, err := bld.Build()
	if err != nil {
		return nil, err
	}
	tp.Tree = t
	return tp, nil
}

// YesSchedule constructs the schedule of the Theorem 1 "⇒" direction from
// a solution of the 3-Partition instance: partition[k] lists the indices
// i (into A) of subset S_{k+1}, each of size 3 and sum B. At step 2n+1 the
// leaves of subset S_{n+1} are processed (3mB of them on 3mB processors);
// at step 2n+2 its three N nodes; the root runs at step 2m+1. The schedule
// meets both bounds: peak memory ≤ 3mB+3m and makespan ≤ 2m+1.
func (tp *ThreePartition) YesSchedule(partition [][]int) (*sched.Schedule, error) {
	if len(partition) != tp.M {
		return nil, fmt.Errorf("pebble: partition has %d subsets, want %d", len(partition), tp.M)
	}
	used := make([]bool, len(tp.A))
	s := &sched.Schedule{
		Start: make([]float64, tp.Tree.Len()),
		Proc:  make([]int, tp.Tree.Len()),
		P:     tp.Procs,
	}
	for k, subset := range partition {
		if len(subset) != 3 {
			return nil, fmt.Errorf("pebble: subset %d has %d elements, want 3", k, len(subset))
		}
		sum := 0
		proc := 0
		for _, i := range subset {
			if i < 0 || i >= len(tp.A) || used[i] {
				return nil, fmt.Errorf("pebble: bad or reused index %d in subset %d", i, k)
			}
			used[i] = true
			sum += tp.A[i]
			for _, leaf := range tp.L[i] {
				s.Start[leaf] = float64(2 * k) // step 2k+1 in 1-based time
				s.Proc[leaf] = proc
				proc++
			}
		}
		if sum != tp.B {
			return nil, fmt.Errorf("pebble: subset %d sums to %d, want %d", k, sum, tp.B)
		}
		for j, i := range subset {
			s.Start[tp.N[i]] = float64(2*k + 1)
			s.Proc[tp.N[i]] = j
		}
	}
	for i, u := range used {
		if !u {
			return nil, fmt.Errorf("pebble: index %d not covered by partition", i)
		}
	}
	s.Start[tp.Root] = float64(2 * tp.M)
	s.Proc[tp.Root] = 0
	return s, nil
}

// SolveThreePartition exhaustively searches a valid partition into triples
// of sum B (usable for the small instances of tests and examples). It
// returns nil if none exists.
func SolveThreePartition(a []int, b int) [][]int {
	m := len(a) / 3
	if len(a)%3 != 0 {
		return nil
	}
	used := make([]bool, len(a))
	var out [][]int
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		// First unused index anchors the next triple (canonical order).
		first := -1
		for i, u := range used {
			if !u {
				first = i
				break
			}
		}
		used[first] = true
		for j := first + 1; j < len(a); j++ {
			if used[j] {
				continue
			}
			used[j] = true
			for k := j + 1; k < len(a); k++ {
				if used[k] || a[first]+a[j]+a[k] != b {
					continue
				}
				used[k] = true
				out = append(out, []int{first, j, k})
				if rec(remaining - 1) {
					return true
				}
				out = out[:len(out)-1]
				used[k] = false
			}
			used[j] = false
		}
		used[first] = false
		return false
	}
	if !rec(m) {
		return nil
	}
	return out
}
