// Package pebble builds the pebble-game instances used by the paper's
// complexity results (§4): the unit-weight model (f_i=1, n_i=0, w_i=1), the
// 3-Partition reduction tree of Figure 1 (Theorem 1, NP-completeness), the
// inapproximability tree of Figure 2 (Theorem 2), and the worst-case trees
// of Figures 3–5 exposing the heuristics' memory/makespan weaknesses.
package pebble

import "treesched/internal/tree"

// IsPebbleTree reports whether every node of t follows the pebble-game
// model of paper §4: f_i = 1, n_i = 0, w_i = 1.
func IsPebbleTree(t *tree.Tree) bool {
	for i := 0; i < t.Len(); i++ {
		if t.F(i) != 1 || t.N(i) != 0 || t.W(i) != 1 {
			return false
		}
	}
	return true
}
