package pebble

import "treesched/internal/tree"

// ForkTree builds the Figure 3 instance: a root with p·k unit leaves. On p
// processors the optimal makespan is k+1, while ParSubtrees — which keeps
// whole subtrees on single processors — needs p(k-1)+2: it is at best a
// p-approximation for the makespan.
func ForkTree(p, k int) *tree.Tree {
	var b tree.Builder
	root := b.AddPebble(tree.None)
	for i := 0; i < p*k; i++ {
		b.AddPebble(root)
	}
	return b.MustBuild()
}

// JoinChainTree builds the Figure 4 instance: a main chain of 2k nodes
// whose k-1 topmost nodes each carry p-1 extra leaves. The optimal
// sequential memory is p+1 (deepest-first), but with p processors every
// leaf is done before the first join node becomes ready, so ParInnerFirst
// holds (k-1)(p-1)+1 files simultaneously: its memory is unbounded
// relative to M_seq.
func JoinChainTree(p, k int) *tree.Tree {
	var b tree.Builder
	prev := tree.None
	for i := 1; i <= 2*k; i++ {
		node := b.AddPebble(prev)
		if i <= k-1 {
			for l := 0; l < p-1; l++ {
				b.AddPebble(node)
			}
		}
		prev = node
	}
	return b.MustBuild()
}

// SpiderTree builds the Figure 5 instance: join nodes j_1..j_m form a path
// from the root; every join carries one long chain (j_m carries two), and
// chain lengths are chosen so that all leaves lie at the same, deepest
// depth. The optimal sequential memory is 3 (finish one chain at a time),
// but ParDeepestFirst advances all chains simultaneously — all leaves are
// deepest — so its memory grows with the number of chains.
func SpiderTree(m, minChain int) *tree.Tree {
	var b tree.Builder
	joins := make([]int, m)
	prev := tree.None
	for i := 0; i < m; i++ {
		joins[i] = b.AddPebble(prev)
		prev = joins[i]
	}
	// Join i sits at depth i; its leaf must reach depth m-1+minChain.
	leafDepth := m - 1 + minChain
	addChain := func(parent, parentDepth int) {
		for d := parentDepth + 1; d <= leafDepth; d++ {
			parent = b.AddPebble(parent)
		}
	}
	for i := 0; i < m; i++ {
		addChain(joins[i], i)
	}
	addChain(joins[m-1], m-1) // second chain of the last join
	return b.MustBuild()
}
