package pebble

import (
	"fmt"

	"treesched/internal/tree"
)

// Inapprox is the Theorem 2 gadget of paper Figure 2: n identical subtrees
// below the root. Subtree i is a chain of checkpoint nodes cp^i_1..cp^i_{δ-1}
// ending in the two-node chain b^i_δ, b^i_{δ+1}; every cp^i_j additionally
// owns a node d^i_j with δ-j+1 leaf children. All weights follow the
// pebble-game model.
type Inapprox struct {
	Tree  *tree.Tree
	N     int // number of subtrees
	Delta int // δ

	Root int
	CP   [][]int // CP[i][j-1] = cp^{i+1}_j
	D    [][]int // D[i][j-1]  = d^{i+1}_j
	B    [][2]int
}

// NewInapprox builds the Figure 2 tree for n subtrees and chain parameter
// δ ≥ 2.
func NewInapprox(n, delta int) (*Inapprox, error) {
	if n < 1 || delta < 2 {
		return nil, fmt.Errorf("pebble: inapprox gadget needs n >= 1, δ >= 2; got n=%d δ=%d", n, delta)
	}
	var bld tree.Builder
	root := bld.AddPebble(tree.None)
	g := &Inapprox{N: n, Delta: delta, Root: root}
	for i := 0; i < n; i++ {
		cps := make([]int, delta-1)
		ds := make([]int, delta-1)
		parent := root
		for j := 1; j <= delta-1; j++ {
			cp := bld.AddPebble(parent)
			cps[j-1] = cp
			d := bld.AddPebble(cp)
			ds[j-1] = d
			for l := 0; l < delta-j+1; l++ {
				bld.AddPebble(d)
			}
			parent = cp
		}
		bd := bld.AddPebble(parent)
		bd1 := bld.AddPebble(bd)
		g.CP = append(g.CP, cps)
		g.D = append(g.D, ds)
		g.B = append(g.B, [2]int{bd, bd1})
	}
	t, err := bld.Build()
	if err != nil {
		return nil, err
	}
	g.Tree = t
	return g, nil
}

// OptimalMakespan returns the critical-path length δ+2 (optimal with
// unbounded processors, paper Theorem 2 proof).
func (g *Inapprox) OptimalMakespan() float64 { return float64(g.Delta + 2) }

// OptimalPeakMemory returns n+δ, the optimal sequential peak proven in the
// paper (one subtree at a time, chains before leaves).
func (g *Inapprox) OptimalPeakMemory() int64 { return int64(g.N + g.Delta) }

// SequentialOrder returns the paper's memory-optimal sequential traversal:
// subtrees one after the other; inside subtree i, process d^i_j's children
// then d^i_j for j = 1..δ-1, then b^i_{δ+1}, b^i_δ, then cp^i_{δ-1}..cp^i_1;
// finally the root. Its peak is exactly OptimalPeakMemory.
func (g *Inapprox) SequentialOrder() []int {
	t := g.Tree
	order := make([]int, 0, t.Len())
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.Delta-1; j++ {
			d := g.D[i][j]
			order = append(order, t.Children(d)...)
			order = append(order, d)
		}
		order = append(order, g.B[i][1], g.B[i][0])
		for j := g.Delta - 2; j >= 0; j-- {
			order = append(order, g.CP[i][j])
		}
	}
	return append(order, g.Root)
}

// MemoryRatioLowerBound evaluates the paper's bound on the memory
// approximation ratio forced upon any α-approximation of the makespan:
//
//	lb = n(δ²+5δ−6) / ((α(δ+2)−2)(n+δ))
//
// With δ = n², lb → ∞ as n grows: no algorithm can approximate both
// objectives within constant factors (Theorem 2).
func MemoryRatioLowerBound(n, delta int, alpha float64) float64 {
	d := float64(delta)
	num := float64(n) * (d*d + 5*d - 6)
	den := (alpha*(d+2) - 2) * float64(n+delta)
	return num / den
}

// DescendantsPerSubtree returns (δ²+5δ−4)/2, the number of descendants of
// each cp^i_1 node (counted in the Theorem 2 proof).
func DescendantsPerSubtree(delta int) int {
	return (delta*delta + 5*delta - 4) / 2
}
