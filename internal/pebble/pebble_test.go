package pebble_test

import (
	"testing"

	"treesched/internal/pebble"
	"treesched/internal/sched"
	"treesched/internal/traversal"
)

// TestNPCompletenessGadgetYesInstance verifies the "⇒" direction of
// Theorem 1 end-to-end (experiment E5): from a yes-instance of 3-Partition,
// the constructed schedule is valid, has makespan exactly 2m+1 and peak
// memory exactly 3mB+3m.
func TestNPCompletenessGadgetYesInstance(t *testing.T) {
	// m=2, B=10: a = {3,3,4,4,3,3} with triples (3,3,4) and (4,3,3).
	a := []int{3, 3, 4, 4, 3, 3}
	tp, err := pebble.NewThreePartition(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !pebble.IsPebbleTree(tp.Tree) {
		t.Fatalf("gadget is not a pebble tree")
	}
	// Nodes: root + 3m inner + 3m·Σa_i leaves = 1 + 6 + 6·20.
	if got, want := tp.Tree.Len(), 1+6+3*2*(10*2); got != want {
		t.Fatalf("gadget has %d nodes, want %d", got, want)
	}
	part := pebble.SolveThreePartition(a, 10)
	if part == nil {
		t.Fatalf("solver found no partition for a yes-instance")
	}
	s, err := tp.YesSchedule(part)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tp.Tree); err != nil {
		t.Fatalf("yes-schedule invalid: %v", err)
	}
	if ms := s.Makespan(tp.Tree); ms != tp.MakespanBound {
		t.Errorf("makespan = %g, want %g", ms, tp.MakespanBound)
	}
	if m := sched.PeakMemory(tp.Tree, s); m != tp.MemoryBound {
		t.Errorf("peak memory = %d, want %d", m, tp.MemoryBound)
	}
	if s.P != tp.Procs {
		t.Errorf("procs = %d, want 3mB = %d", s.P, tp.Procs)
	}
}

func TestThreePartitionValidation(t *testing.T) {
	if _, err := pebble.NewThreePartition([]int{3, 3}, 10); err == nil {
		t.Errorf("accepted non-multiple-of-3 input")
	}
	if _, err := pebble.NewThreePartition([]int{1, 4, 5}, 10); err == nil {
		t.Errorf("accepted a_i outside (B/4, B/2)")
	}
	if _, err := pebble.NewThreePartition([]int{3, 3, 3}, 10); err == nil {
		t.Errorf("accepted Σa != mB")
	}
}

func TestYesScheduleRejectsBadPartitions(t *testing.T) {
	a := []int{3, 3, 4, 4, 3, 3}
	tp, err := pebble.NewThreePartition(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][][]int{
		{{0, 1, 2}},            // wrong number of subsets
		{{0, 1}, {2, 3, 4}},    // wrong subset size
		{{0, 1, 4}, {2, 3, 5}}, // wrong sums (9 and 11)
		{{0, 1, 2}, {0, 4, 5}}, // reuse
		{{0, 1, 2}, {3, 4, 9}}, // out of range
	}
	for i, part := range cases {
		if _, err := tp.YesSchedule(part); err == nil {
			t.Errorf("case %d: bad partition accepted", i)
		}
	}
}

func TestSolveThreePartitionNoInstance(t *testing.T) {
	// Σa = mB but no triple partition exists: a = {3,3,3,5,3,3}? Σ=20=2·10,
	// but 5+3+3=11, 3+3+3=9 — no valid split. All a_i in (2.5, 5).
	if part := pebble.SolveThreePartition([]int{3, 3, 3, 5, 3, 3}, 10); part != nil {
		t.Fatalf("solver returned %v for a no-instance", part)
	}
}

// TestInapproxGadget verifies experiment E6: the Figure 2 tree has critical
// path δ+2 and optimal sequential peak memory exactly n+δ, achieved both by
// the paper's explicit schedule and by Liu's exact algorithm.
func TestInapproxGadget(t *testing.T) {
	for _, c := range []struct{ n, delta int }{{2, 3}, {3, 4}, {4, 6}, {1, 2}} {
		g, err := pebble.NewInapprox(c.n, c.delta)
		if err != nil {
			t.Fatal(err)
		}
		if !pebble.IsPebbleTree(g.Tree) {
			t.Fatalf("gadget is not a pebble tree")
		}
		if cp := g.Tree.CriticalPath(); cp != g.OptimalMakespan() {
			t.Errorf("n=%d δ=%d: critical path %g, want %g", c.n, c.delta, cp, g.OptimalMakespan())
		}
		// The paper's schedule achieves n+δ...
		peak, err := traversal.PeakMemory(g.Tree, g.SequentialOrder())
		if err != nil {
			t.Fatalf("paper schedule invalid: %v", err)
		}
		if peak != g.OptimalPeakMemory() {
			t.Errorf("n=%d δ=%d: paper schedule peak %d, want %d", c.n, c.delta, peak, g.OptimalPeakMemory())
		}
		// ...and it is optimal (Liu agrees).
		if opt := traversal.Optimal(g.Tree); opt.Peak != g.OptimalPeakMemory() {
			t.Errorf("n=%d δ=%d: Liu optimal %d, want %d", c.n, c.delta, opt.Peak, g.OptimalPeakMemory())
		}
		// Node count sanity: n·((δ²+5δ-4)/2 + 1) + 1.
		want := c.n*(pebble.DescendantsPerSubtree(c.delta)+1) + 1
		if g.Tree.Len() != want {
			t.Errorf("n=%d δ=%d: %d nodes, want %d", c.n, c.delta, g.Tree.Len(), want)
		}
	}
}

// TestInapproxRatioDiverges checks the Theorem 2 conclusion: with δ = n²,
// the forced memory ratio lower bound grows without bound (asymptotically
// like n/α) for any fixed α.
func TestInapproxRatioDiverges(t *testing.T) {
	alpha := 2.0
	prev := 0.0
	for _, n := range []int{4, 8, 16, 32, 64, 256} {
		lb := pebble.MemoryRatioLowerBound(n, n*n, alpha)
		if lb <= prev {
			t.Fatalf("lower bound not increasing: lb(%d) = %g <= %g", n, lb, prev)
		}
		prev = lb
	}
	// lb ~ n/α: at n=256, α=2 the bound must have passed 100.
	if prev < 100 {
		t.Fatalf("lower bound at n=256 should exceed 100, got %g", prev)
	}
}

// TestParSubtreesForkWorstCase verifies E7 (Figure 3): on the fork tree,
// ParSubtrees needs p(k-1)+2 while list scheduling achieves the optimal
// k+1, exhibiting the p-approximation worst case.
func TestParSubtreesForkWorstCase(t *testing.T) {
	for _, c := range []struct{ p, k int }{{2, 10}, {4, 8}, {8, 5}} {
		tr := pebble.ForkTree(c.p, c.k)
		s, err := sched.ParSubtrees(tr, c.p)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(c.p*(c.k-1) + 2)
		if ms := s.Makespan(tr); ms != want {
			t.Errorf("p=%d k=%d: ParSubtrees makespan %g, want %g", c.p, c.k, ms, want)
		}
		d, err := sched.ParDeepestFirst(tr, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if ms := d.Makespan(tr); ms != float64(c.k+1) {
			t.Errorf("p=%d k=%d: ParDeepestFirst makespan %g, want optimal %d", c.p, c.k, ms, c.k+1)
		}
	}
}

// TestParSubtreesOptimFixesFork shows the LPT optimization repairing the
// Figure 3 worst case: all pk leaf subtrees are spread over p processors.
func TestParSubtreesOptimFixesFork(t *testing.T) {
	p, k := 4, 10
	tr := pebble.ForkTree(p, k)
	s, err := sched.ParSubtreesOptim(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if ms := s.Makespan(tr); ms != float64(k+1) {
		t.Errorf("ParSubtreesOptim makespan %g, want %d", ms, k+1)
	}
}

// TestParInnerFirstUnboundedMemory verifies E8 (Figure 4): M_seq = p+1 but
// ParInnerFirst accumulates at least (k-1)(p-1)+1 files.
func TestParInnerFirstUnboundedMemory(t *testing.T) {
	for _, c := range []struct{ p, k int }{{3, 10}, {4, 20}, {8, 12}} {
		tr := pebble.JoinChainTree(c.p, c.k)
		if mseq := traversal.Optimal(tr).Peak; mseq != int64(c.p+1) {
			t.Fatalf("p=%d k=%d: M_seq = %d, want %d", c.p, c.k, mseq, c.p+1)
		}
		s, err := sched.ParInnerFirst(tr, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if m, want := sched.PeakMemory(tr, s), int64((c.k-1)*(c.p-1)+1); m < want {
			t.Errorf("p=%d k=%d: ParInnerFirst memory %d, want >= %d", c.p, c.k, m, want)
		}
	}
}

// TestParDeepestFirstUnboundedMemory verifies E9 (Figure 5): M_seq = 3 but
// ParDeepestFirst holds about one file per chain.
func TestParDeepestFirstUnboundedMemory(t *testing.T) {
	for _, m := range []int{5, 10, 30} {
		tr := pebble.SpiderTree(m, 4)
		if mseq := traversal.Optimal(tr).Peak; mseq != 3 {
			t.Fatalf("m=%d: M_seq = %d, want 3", m, mseq)
		}
		s, err := sched.ParDeepestFirst(tr, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got := sched.PeakMemory(tr, s); got < int64(m) {
			t.Errorf("m=%d: ParDeepestFirst memory %d, want >= %d", m, got, m)
		}
	}
}

func TestInapproxRejectsBadParams(t *testing.T) {
	if _, err := pebble.NewInapprox(0, 3); err == nil {
		t.Errorf("accepted n=0")
	}
	if _, err := pebble.NewInapprox(2, 1); err == nil {
		t.Errorf("accepted δ=1")
	}
}
