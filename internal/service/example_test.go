package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"treesched/internal/service"
)

// ExampleClient schedules one small tree over the HTTP JSON API, exactly
// as an external client would: POST a Request to /v1/schedule, read back
// per-heuristic makespan and peak memory with the lower bounds, and
// observe that an identical resubmission is served from the cache.
func ExampleClient() {
	svc := service.New(service.Config{Workers: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// A five-node in-tree: the root 0 has children 1 and 2, and node 1 has
	// the leaves 3 and 4. w is the processing time, f the output-file size.
	reqBody := []byte(`{
		"id": "demo",
		"tree": {
			"parent": [-1, 0, 0, 1, 1],
			"w":      [2, 1, 3, 1, 1],
			"f":      [0, 2, 4, 1, 3]
		},
		"p": 2,
		"heuristics": ["ParSubtrees", "ParDeepestFirst", "Sequential"]
	}`)

	submit := func() service.Response {
		httpResp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			panic(err)
		}
		defer httpResp.Body.Close()
		var resp service.Response
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			panic(err)
		}
		return resp
	}

	resp := submit()
	fmt.Printf("job %s: %d nodes on p=%d, makespan LB %g, M_seq %d\n",
		resp.ID, resp.Nodes, resp.Processors, resp.Bounds.MakespanLB, resp.Bounds.MemorySeq)
	for _, r := range resp.Results {
		fmt.Printf("  %-16s makespan %g  memory %d\n", r.Heuristic, r.Makespan, r.PeakMemory)
	}
	fmt.Printf("first answer cached: %v, resubmission cached: %v\n",
		resp.Cached, submit().Cached)

	// Output:
	// job demo: 5 nodes on p=2, makespan LB 5, M_seq 6
	//   ParSubtrees      makespan 5  memory 10
	//   ParDeepestFirst  makespan 5  memory 10
	//   Sequential       makespan 8  memory 6
	// first answer cached: false, resubmission cached: true
}
