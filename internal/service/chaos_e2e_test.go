package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"treesched/internal/sched"
)

// The chaos end-to-end suite runs a fixed workload against servers with
// deterministic fault injection enabled and asserts the overload-safety
// invariants the resilience layer promises:
//
//  1. no deadlock — every test completes (the go test timeout is the
//     backstop);
//  2. no goroutine leak — after Close the process returns to its
//     goroutine baseline;
//  3. exactly one response (or one clean error) per accepted request;
//  4. responses that do succeed are byte-identical to the unfaulted run;
//  5. the forest engine's booking invariant holds under injected faults;
//  6. shed/error accounting in /metrics matches the outcomes the client
//     observed.
//
// Chaos servers disable the ladder and delay shedding (the workload is
// not an overload test), so any divergence from baseline is the fault
// injector's doing alone.

// chaosWorkloadSize is the number of requests chaosWorkload issues:
// 6 singles + 1 Exact-only portfolio + 2 portfolios + 5 batch lines.
const chaosWorkloadSize = 14

// chaosServerConfig is the shared shape of every server in the suite:
// deterministic answers (no ladder, no delay shedding), faults injected
// per the spec.
func chaosServerConfig(tb testing.TB, spec string) Config {
	cfg := Config{Workers: 2, QueueTarget: -1, DegradeLight: -1}
	if spec != "" {
		cfg.Chaos = mustChaos(tb, spec)
	}
	return cfg
}

// chaosWorkload runs the fixed request mix against h and returns the
// responses in issue order (request i of every run hits the same
// endpoint with the same body, so slot i is comparable across servers).
// Batch lines come back in input order, so order survives the NDJSON
// round-trip too.
func chaosWorkload(tb testing.TB, h http.Handler) []*Response {
	tb.Helper()
	var out []*Response
	record := func(body []byte) {
		resp := new(Response)
		if err := json.Unmarshal(body, resp); err != nil {
			tb.Fatalf("response not JSON: %v\n%s", err, body)
		}
		out = append(out, resp)
	}
	for i := 0; i < 6; i++ {
		rec := postJSON(tb, h, "/v1/schedule", Request{
			ID: fmt.Sprintf("s%d", i), Tree: testTree(tb, int64(100+i), 30), Processors: 2 + i%2,
		})
		record(rec.Body.Bytes())
	}
	// One Exact-only portfolio: 12 nodes proves deterministically, so its
	// explored-node counts are stable across runs.
	rec := postJSON(tb, h, "/v1/portfolio", Request{
		ID: "x0", Tree: testTree(tb, 9, 12), Processors: 2,
		Heuristics: []sched.HeuristicID{sched.IDExact},
	})
	record(rec.Body.Bytes())
	for i := 0; i < 2; i++ {
		rec := postJSON(tb, h, "/v1/portfolio", Request{
			ID: fmt.Sprintf("p%d", i), Tree: testTree(tb, int64(110+i), 25), Processors: 2,
			Heuristics: []sched.HeuristicID{sched.IDParSubtrees, sched.IDParDeepestFirst, sched.IDSequential},
		})
		record(rec.Body.Bytes())
	}
	rec = post(tb, h, "/v1/schedule/batch", chaosBatchBody(tb))
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		record([]byte(line))
	}
	if len(out) != chaosWorkloadSize {
		tb.Fatalf("workload produced %d responses, want %d", len(out), chaosWorkloadSize)
	}
	return out
}

func chaosBatchBody(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		b, err := json.Marshal(Request{
			ID: fmt.Sprintf("b%d", i), Tree: testTree(tb, int64(120+i), 20), Processors: 2,
		})
		if err != nil {
			tb.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// normalize strips the per-request fields (request id, cache provenance)
// so responses can be compared byte-for-byte across runs.
func normalize(resp *Response) []byte {
	r := *resp
	r.RequestID = ""
	r.Cached = false
	b, _ := json.Marshal(&r)
	return b
}

// assertSuccessesIdentical compares each successful chaos response
// byte-for-byte against the same workload slot of the unfaulted run.
func assertSuccessesIdentical(t *testing.T, baseline, chaotic []*Response) {
	t.Helper()
	for i, resp := range chaotic {
		if resp.Error != "" {
			continue
		}
		want, got := normalize(baseline[i]), normalize(resp)
		if !bytes.Equal(want, got) {
			t.Errorf("workload slot %d diverged from the unfaulted run:\nbase:  %s\nchaos: %s", i, want, got)
		}
	}
}

// chaosAccounting reads the error/admission counters the suite checks.
type chaosAccounting struct {
	admitted, trees, internal, cancelled, deadline int
}

func readAccounting(t *testing.T, h http.Handler) chaosAccounting {
	t.Helper()
	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	atoi := func(key string) int {
		n, err := strconv.Atoi(sampleValue(samples, key))
		if err != nil {
			t.Fatalf("sample %s: %v", key, err)
		}
		return n
	}
	return chaosAccounting{
		admitted:  atoi(`treeschedd_admission_total{decision="admitted"}`),
		trees:     atoi("treeschedd_trees_scheduled_total"),
		internal:  atoi(`treeschedd_errors_total{kind="internal"}`),
		cancelled: atoi(`treeschedd_errors_total{kind="cancelled"}`),
		deadline:  atoi(`treeschedd_errors_total{kind="deadline"}`),
	}
}

// waitGoroutineBaseline polls until the goroutine count returns to the
// pre-test baseline (plus slack for runtime helpers), failing on leak.
func waitGoroutineBaseline(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestChaosLatency(t *testing.T) {
	base := runtime.NumGoroutine()
	bs := New(chaosServerConfig(t, ""))
	baseline := chaosWorkload(t, bs.Handler())
	bs.Close()

	s := New(chaosServerConfig(t, "seed=11,latency=0.4:2ms"))
	h := s.Handler()
	got := chaosWorkload(t, h)
	for i, resp := range got {
		if resp.Error != "" {
			t.Errorf("slot %d failed under latency chaos: %s", i, resp.Error)
		}
	}
	assertSuccessesIdentical(t, baseline, got)
	acc := readAccounting(t, h)
	if acc.admitted != chaosWorkloadSize || acc.trees != chaosWorkloadSize ||
		acc.internal != 0 || acc.cancelled != 0 || acc.deadline != 0 {
		t.Errorf("latency chaos accounting: %+v", acc)
	}
	s.Close()
	waitGoroutineBaseline(t, base)
}

func TestChaosPanic(t *testing.T) {
	base := runtime.NumGoroutine()
	bs := New(chaosServerConfig(t, ""))
	baseline := chaosWorkload(t, bs.Handler())
	bs.Close()

	s := New(chaosServerConfig(t, "seed=12,panic=0.4"))
	h := s.Handler()
	got := chaosWorkload(t, h)
	panicked := 0
	for i, resp := range got {
		if resp.Error == "" {
			continue
		}
		if !strings.Contains(resp.Error, "internal error: panic") {
			t.Errorf("slot %d: unexpected error %q", i, resp.Error)
		}
		panicked++
	}
	if panicked == 0 || panicked == chaosWorkloadSize {
		t.Fatalf("panic chaos hit %d/%d requests; the suite needs a mix", panicked, chaosWorkloadSize)
	}
	assertSuccessesIdentical(t, baseline, got)
	// Every injected panic cost exactly its own request: one internal
	// error each, every admitted slot answered, survivors scheduled.
	acc := readAccounting(t, h)
	if acc.internal != panicked {
		t.Errorf("errors_total{internal} = %d, want %d (observed panics)", acc.internal, panicked)
	}
	if acc.admitted != chaosWorkloadSize || acc.trees != chaosWorkloadSize-panicked {
		t.Errorf("panic chaos accounting: %+v (panicked %d)", acc, panicked)
	}
	s.Close()
	waitGoroutineBaseline(t, base)
}

func TestChaosEvictionStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	bs := New(chaosServerConfig(t, ""))
	baseline := chaosWorkload(t, bs.Handler())
	bs.Close()

	// evict=1 purges the LRU cache before every lookup: the cache never
	// helps, and must never hurt — every answer is computed fresh and
	// byte-identical to baseline.
	s := New(chaosServerConfig(t, "seed=13,evict=1"))
	h := s.Handler()
	got := chaosWorkload(t, h)
	for i, resp := range got {
		if resp.Error != "" {
			t.Errorf("slot %d failed under eviction chaos: %s", i, resp.Error)
		}
		if resp.Cached {
			t.Errorf("slot %d served from cache during an eviction storm", i)
		}
	}
	assertSuccessesIdentical(t, baseline, got)
	if n := s.cache.len(); n > 1 {
		// Only the final request's entry can survive the storm.
		t.Errorf("cache holds %d entries under evict=1, want <= 1", n)
	}
	s.Close()
	waitGoroutineBaseline(t, base)
}

// TestChaosCancelMidBatch injects a batch-context cancellation (the
// deterministic stand-in for a client disconnect) and checks every
// admitted line still gets exactly one clean error line, with the
// cancellations accounted: admitted = scheduled + cancelled.
func TestChaosCancelMidBatch(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(chaosServerConfig(t, "seed=14,cancel=1"))
	h := s.Handler()
	rec := post(t, h, "/v1/schedule/batch", chaosBatchBody(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	cancelled := 0
	for _, line := range lines {
		var resp Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("line not JSON: %v\n%s", err, line)
		}
		switch {
		case resp.Error == "":
			t.Errorf("line completed despite cancel=1 chaos: %+v", resp)
		case strings.Contains(resp.Error, "request canceled"):
			cancelled++
		default:
			t.Errorf("unexpected error line: %s", resp.Error)
		}
	}
	if cancelled == 0 {
		t.Fatal("cancel chaos produced no cancelled lines")
	}
	acc := readAccounting(t, h)
	if acc.cancelled != cancelled {
		t.Errorf("errors_total{cancelled} = %d, want %d (observed cancelled lines)", acc.cancelled, cancelled)
	}
	if acc.admitted != acc.trees+acc.cancelled {
		t.Errorf("admitted (%d) != scheduled (%d) + cancelled (%d)", acc.admitted, acc.trees, acc.cancelled)
	}
	if occ := s.adm.Occupancy(); occ != 0 {
		t.Errorf("admission occupancy %d after batch completion, want 0", occ)
	}
	s.Close()
	waitGoroutineBaseline(t, base)
}

// TestChaosForest runs the forest endpoint under injected worker latency
// and asserts the simulation is byte-identical to the unfaulted run —
// in particular the booking summary (rounds, booking rejections, peak
// resident memory) is unchanged, so the engine's memory-booking
// invariant held under the fault.
func TestChaosForest(t *testing.T) {
	base := runtime.NumGoroutine()
	body := forestTraceBody(t, 8)

	bs := New(chaosServerConfig(t, ""))
	recB := post(t, bs.Handler(), "/v1/forest?p=4&policy=sjf&mem_cap_factor=2", body)
	if recB.Code != http.StatusOK {
		t.Fatalf("baseline forest status %d: %s", recB.Code, recB.Body.String())
	}
	baseJobs, baseSum := decodeForestResponse(t, recB.Body.Bytes())
	bs.Close()

	s := New(chaosServerConfig(t, "seed=15,latency=1:5ms"))
	rec := post(t, s.Handler(), "/v1/forest?p=4&policy=sjf&mem_cap_factor=2", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("chaos forest status %d: %s", rec.Code, rec.Body.String())
	}
	jobs, sum := decodeForestResponse(t, rec.Body.Bytes())
	if !reflect.DeepEqual(jobs, baseJobs) || !reflect.DeepEqual(sum, baseSum) {
		t.Errorf("forest run diverged under latency chaos:\nbase:  %+v\nchaos: %+v", baseSum, sum)
	}
	if sum.PeakResident > sum.MemCap {
		t.Errorf("booking invariant violated: peak %d exceeds cap %d", sum.PeakResident, sum.MemCap)
	}
	s.Close()
	waitGoroutineBaseline(t, base)
}

// TestChaosSlowReader streams a batch to a client that reads one line at
// a time with pauses: backpressure must hold the pipeline (bounded
// lookahead) without deadlocking or dropping lines.
func TestChaosSlowReader(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(chaosServerConfig(t, "seed=16,latency=0.5:2ms"))
	ts := httptest.NewServer(s.Handler())

	resp, err := http.Post(ts.URL+"/v1/schedule/batch", "application/x-ndjson",
		bytes.NewReader(chaosBatchBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	var ids []string
	for sc.Scan() {
		var line Response
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("line not JSON: %v\n%s", err, sc.Bytes())
		}
		if line.Error != "" {
			t.Errorf("line %s failed: %s", line.ID, line.Error)
		}
		ids = append(ids, line.ID)
		time.Sleep(30 * time.Millisecond) // the slow read, between every line
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading batch response: %v", err)
	}
	want := []string{"b0", "b1", "b2", "b3", "b4"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("slow reader got lines %v, want %v", ids, want)
	}
	ts.Close()
	s.Close()
	waitGoroutineBaseline(t, base)
}

// TestBatchClientDisconnect is the real-socket cancellation test: a
// client aborts a streaming batch after the first response line. The
// pool must free its slots (admission occupancy drains to zero), and
// every admitted-but-aborted line must count exactly once in
// errors_total{kind="cancelled"}: admitted = scheduled + cancelled.
func TestBatchClientDisconnect(t *testing.T) {
	base := runtime.NumGoroutine()
	// One worker plus injected per-job latency makes lines queue behind
	// each other, so the disconnect catches some admitted and waiting.
	s := New(Config{Workers: 1, CacheSize: -1, QueueTarget: -1, DegradeLight: -1,
		Chaos: mustChaos(t, "seed=17,latency=1:50ms")})
	h := s.Handler()
	ts := httptest.NewServer(h)

	var body bytes.Buffer
	for i := 0; i < 12; i++ {
		b, err := json.Marshal(Request{
			ID: fmt.Sprintf("d%d", i), Tree: testTree(t, int64(200+i), 20), Processors: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		body.Write(b)
		body.WriteByte('\n')
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/schedule/batch", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one response line, then walk away mid-stream.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first batch line: %v", sc.Err())
	}
	var first Response
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line not JSON: %v\n%s", err, sc.Bytes())
	}
	if first.ID != "d0" || first.Error != "" {
		t.Fatalf("first line = %+v, want a clean d0 result", first)
	}
	cancel()
	resp.Body.Close()

	// The aborted lines must drain: pool slots freed, admission window
	// empty, and the books balanced — every admitted line either
	// scheduled or counted cancelled, never both, never neither.
	deadline := time.Now().Add(5 * time.Second)
	var acc chaosAccounting
	for {
		acc = readAccounting(t, h)
		if s.adm.Occupancy() == 0 && acc.admitted == acc.trees+acc.cancelled && acc.cancelled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch did not drain cleanly: occupancy %d, accounting %+v",
				s.adm.Occupancy(), acc)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if acc.admitted > 12 || acc.trees < 1 {
		t.Errorf("implausible accounting after disconnect: %+v", acc)
	}
	ts.Close()
	s.Close()
	waitGoroutineBaseline(t, base)
}
