package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

func testTree(tb testing.TB, seed int64, n int) *tree.Tree {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	return tree.RandomAttachment(rng, n, tree.WeightSpec{
		WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20,
	})
}

func postJSON(tb testing.TB, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	tb.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		tb.Fatal(err)
	}
	return post(tb, h, path, buf.Bytes())
}

func post(tb testing.TB, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	tb.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeResponse(tb testing.TB, rec *httptest.ResponseRecorder) Response {
	tb.Helper()
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		tb.Fatalf("response not JSON: %v\n%s", err, rec.Body.String())
	}
	return resp
}

func TestScheduleSingle(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 1, 50)

	rec := postJSON(t, h, "/v1/schedule", Request{ID: "job-1", Tree: tr, Processors: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Error != "" {
		t.Fatalf("unexpected error: %s", resp.Error)
	}
	if resp.ID != "job-1" || resp.Nodes != 50 || resp.Processors != 4 || resp.Cached {
		t.Fatalf("bad envelope: %+v", resp)
	}
	if resp.TreeHash != tr.CanonicalHash() {
		t.Fatalf("tree hash mismatch")
	}
	if len(resp.Results) != 4 {
		t.Fatalf("want the paper's 4 heuristics, got %d", len(resp.Results))
	}
	wantIDs := sched.PaperHeuristics()
	for i, r := range resp.Results {
		if r.Heuristic != wantIDs[i] {
			t.Errorf("result %d: heuristic %v, want %v", i, r.Heuristic, wantIDs[i])
		}
		if r.Error != "" {
			t.Errorf("%s failed: %s", r.Heuristic, r.Error)
		}
		if r.Makespan < resp.Bounds.MakespanLB-1e-9 {
			t.Errorf("%s makespan %g below lower bound %g", r.Heuristic, r.Makespan, resp.Bounds.MakespanLB)
		}
		if r.PeakMemory < resp.Bounds.MemorySeq {
			t.Errorf("%s memory %d below M_seq %d", r.Heuristic, r.PeakMemory, resp.Bounds.MemorySeq)
		}
	}

	// The same submission again is served from the cache, identically.
	rec2 := postJSON(t, h, "/v1/schedule", Request{ID: "job-2", Tree: tr, Processors: 4})
	resp2 := decodeResponse(t, rec2)
	if !resp2.Cached {
		t.Fatalf("second identical submission not served from cache")
	}
	if resp2.ID != "job-2" {
		t.Fatalf("cached response has ID %q, want job-2", resp2.ID)
	}
	if !reflect.DeepEqual(resp.Results, resp2.Results) || !reflect.DeepEqual(resp.Bounds, resp2.Bounds) {
		t.Fatalf("cached response differs from computed one")
	}

	// Different p is a different cache entry.
	resp3 := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2}))
	if resp3.Cached {
		t.Fatalf("different p wrongly served from cache")
	}
}

func TestScheduleHeuristicSelectionAndTreeText(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 2, 40)
	var txt bytes.Buffer
	if err := tr.Encode(&txt); err != nil {
		t.Fatal(err)
	}

	req := Request{
		TreeText:   txt.String(),
		Processors: 3,
		Heuristics: []sched.HeuristicID{
			sched.IDSequential, sched.IDOptimalSequential,
			sched.IDMemCapped, sched.IDMemCappedBooking, sched.IDParDeepestFirst,
		},
		MemCapFactor: 2,
	}
	resp := decodeResponse(t, postJSON(t, h, "/v1/schedule", req))
	if resp.Error != "" {
		t.Fatalf("unexpected error: %s", resp.Error)
	}
	if len(resp.Results) != 5 {
		t.Fatalf("want 5 results, got %d", len(resp.Results))
	}
	seq, opt := resp.Results[0], resp.Results[1]
	if seq.PeakMemory != resp.Bounds.MemorySeq {
		t.Errorf("Sequential peak %d != M_seq %d", seq.PeakMemory, resp.Bounds.MemorySeq)
	}
	if opt.PeakMemory > seq.PeakMemory {
		t.Errorf("OptimalSequential peak %d exceeds best postorder %d", opt.PeakMemory, seq.PeakMemory)
	}
	cap := int64(math.Ceil(2 * float64(resp.Bounds.MemorySeq)))
	for _, r := range resp.Results[2:4] {
		if r.Error != "" {
			t.Errorf("%s failed: %s", r.Heuristic, r.Error)
		}
		if r.PeakMemory > cap {
			t.Errorf("%s peak %d exceeds cap %d", r.Heuristic, r.PeakMemory, cap)
		}
	}

	// The JSON and text encodings of the same tree share a cache entry.
	resp2 := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{
		Tree: tr, Processors: 3,
		Heuristics:   req.Heuristics,
		MemCapFactor: 2,
	}))
	if !resp2.Cached {
		t.Fatalf("JSON encoding of the same tree missed the cache")
	}
}

func TestScheduleRejections(t *testing.T) {
	s := New(Config{MaxBodyBytes: 4096, MaxNodes: 100, MaxProcs: 8})
	defer s.Close()
	h := s.Handler()
	small := testTree(t, 3, 10)

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"malformed JSON", []byte(`{"tree":`), http.StatusBadRequest},
		{"no tree", mustJSON(t, Request{Processors: 2}), http.StatusBadRequest},
		{"both trees", mustJSON(t, Request{Tree: small, TreeText: "1\n0 -1 1 0 0\n", Processors: 2}), http.StatusBadRequest},
		{"bad tree_text", mustJSON(t, Request{TreeText: "not a tree", Processors: 2}), http.StatusBadRequest},
		{"cyclic tree", []byte(`{"tree":{"parent":[-1,2,1],"w":[1,1,1]},"p":2}`), http.StatusBadRequest},
		{"empty tree", []byte(`{"tree":{"parent":[],"w":[]},"p":2}`), http.StatusBadRequest},
		{"p missing", mustJSON(t, Request{Tree: small}), http.StatusBadRequest},
		{"p too large", mustJSON(t, Request{Tree: small, Processors: 9}), http.StatusBadRequest},
		{"unknown heuristic", []byte(`{"tree":{"parent":[-1,0],"w":[1,1]},"p":2,"heuristics":["Nope"]}`), http.StatusBadRequest},
		{"memcap without factor", mustJSON(t, Request{Tree: small, Processors: 2, Heuristics: []sched.HeuristicID{sched.IDMemCapped}}), http.StatusBadRequest},
		{"bad objective", []byte(`{"tree":{"parent":[-1,0],"w":[1,1]},"p":2,"objective":"maximize_vibes"}`), http.StatusBadRequest},
		{"objective out of domain", []byte(`{"tree":{"parent":[-1,0],"w":[1,1]},"p":2,"objective":"weighted:1.5"}`), http.StatusBadRequest},
		{"tree too large", mustJSON(t, Request{Tree: testTree(t, 4, 101), Processors: 2}), http.StatusRequestEntityTooLarge},
		{"tree_text declares huge count", []byte(`{"tree_text":"1000000000\n","p":2}`), http.StatusRequestEntityTooLarge},
		{"tree_text declares absurd count", []byte(`{"tree_text":"9000000000000000000\n","p":2}`), http.StatusRequestEntityTooLarge},
		{"body too large", append([]byte(`{"tree_text":"`), bytes.Repeat([]byte("x"), 5000)...), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		rec := post(t, h, "/v1/schedule", tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
			continue
		}
		if resp := decodeResponse(t, rec); resp.Error == "" {
			t.Errorf("%s: no error message in %s", tc.name, rec.Body.String())
		}
	}

	// Wrong method on every endpoint.
	for _, path := range []string{"/v1/schedule", "/v1/schedule/batch", "/v1/portfolio"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, rec.Code)
		}
	}
}

func mustJSON(tb testing.TB, v any) []byte {
	tb.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func TestBatchStreamsThousandTrees(t *testing.T) {
	s := New(Config{Workers: 8, CacheSize: 4096})
	defer s.Close()
	h := s.Handler()

	const nTrees = 1000
	var batch bytes.Buffer
	enc := json.NewEncoder(&batch)
	for i := 0; i < nTrees; i++ {
		tr := testTree(t, int64(i), 20+i%30)
		if err := enc.Encode(Request{ID: fmt.Sprintf("t%04d", i), Tree: tr, Processors: 4}); err != nil {
			t.Fatal(err)
		}
	}
	input := batch.Bytes()

	runBatch := func() []Response {
		rec := post(t, h, "/v1/schedule/batch", input)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch status %d", rec.Code)
		}
		var out []Response
		sc := bufio.NewScanner(rec.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
		for sc.Scan() {
			var resp Response
			if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
				t.Fatalf("bad NDJSON line: %v", err)
			}
			out = append(out, resp)
		}
		return out
	}

	first := runBatch()
	if len(first) != nTrees {
		t.Fatalf("got %d response lines, want %d", len(first), nTrees)
	}
	for i, resp := range first {
		if want := fmt.Sprintf("t%04d", i); resp.ID != want {
			t.Fatalf("line %d out of order: id %q, want %q", i, resp.ID, want)
		}
		if resp.Error != "" {
			t.Fatalf("line %d failed: %s", i, resp.Error)
		}
		if len(resp.Results) != 4 {
			t.Fatalf("line %d: %d results", i, len(resp.Results))
		}
	}

	// The identical batch again: every line comes from the cache with
	// identical results.
	second := runBatch()
	if len(second) != nTrees {
		t.Fatalf("second run: %d lines", len(second))
	}
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("line %d of repeated batch not cached", i)
		}
		if !reflect.DeepEqual(first[i].Results, second[i].Results) {
			t.Fatalf("line %d: cached results differ", i)
		}
	}

	// Cache hits are observable on /metrics.
	metrics := getBody(t, h, "/metrics")
	if !strings.Contains(metrics, fmt.Sprintf("treeschedd_cache_hits_total %d", nTrees)) {
		t.Errorf("metrics missing %d cache hits:\n%s", nTrees, metrics)
	}
	if !strings.Contains(metrics, fmt.Sprintf("treeschedd_trees_scheduled_total %d", nTrees)) {
		t.Errorf("metrics missing %d scheduled trees:\n%s", nTrees, metrics)
	}
	if !strings.Contains(metrics, "treeschedd_cache_hit_ratio 0.5") {
		t.Errorf("metrics missing hit ratio 0.5:\n%s", metrics)
	}
}

func TestBatchBadLinesDoNotBreakStream(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 7, 15)

	var batch bytes.Buffer
	enc := json.NewEncoder(&batch)
	enc.Encode(Request{ID: "ok-1", Tree: tr, Processors: 2})
	batch.WriteString("this is not json\n")
	batch.WriteString("\n") // blank lines are skipped, not answered
	enc.Encode(Request{ID: "bad-p", Tree: tr, Processors: 0})
	enc.Encode(Request{ID: "ok-2", Tree: tr, Processors: 2})

	rec := post(t, h, "/v1/schedule/batch", batch.Bytes())
	var out []Response
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		out = append(out, resp)
	}
	if len(out) != 4 {
		t.Fatalf("got %d lines, want 4", len(out))
	}
	if out[0].ID != "ok-1" || out[0].Error != "" {
		t.Errorf("line 0: %+v", out[0])
	}
	if out[1].Error == "" {
		t.Errorf("line 1 (malformed) has no error")
	}
	if out[2].ID != "bad-p" || out[2].Error == "" {
		t.Errorf("line 2 (p=0) not rejected: %+v", out[2])
	}
	if out[3].ID != "ok-2" || out[3].Error != "" {
		t.Errorf("line 3: %+v", out[3])
	}
}

func TestBatchEnforcesLineLimit(t *testing.T) {
	// MaxBodyBytes below bufio's 64 KiB default buffer must still cap the
	// batch line size.
	s := New(Config{Workers: 2, MaxBodyBytes: 4096})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 21, 10)

	// A line of exactly MaxBodyBytes must pass, matching the single
	// endpoint's inclusive limit; the first longer line kills the stream.
	atLimit := mustJSON(t, Request{ID: "pad", Tree: tr, Processors: 2})
	atLimit = append(atLimit[:len(atLimit)-1], []byte(`,"tree_text":"`)...)
	atLimit = append(atLimit, bytes.Repeat([]byte(" "), 4096-len(atLimit)-2)...)
	atLimit = append(atLimit, '"', '}')
	if len(atLimit) != 4096 {
		t.Fatalf("at-limit line is %d bytes", len(atLimit))
	}

	var batch bytes.Buffer
	json.NewEncoder(&batch).Encode(Request{ID: "ok", Tree: tr, Processors: 2})
	batch.Write(atLimit)
	batch.WriteByte('\n')
	batch.WriteString(`{"tree_text":"` + strings.Repeat("x", 50_000) + `"}` + "\n")

	rec := post(t, h, "/v1/schedule/batch", batch.Bytes())
	var out []Response
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		out = append(out, resp)
	}
	if len(out) != 3 {
		t.Fatalf("got %d lines, want 3 (good line + at-limit rejection + stream error)", len(out))
	}
	if out[0].ID != "ok" || out[0].Error != "" {
		t.Errorf("line 0: %+v", out[0])
	}
	// The at-limit line frames fine; it fails only semantically (both tree
	// and tree_text set), proving the scanner did not choke on it.
	if out[1].ID != "pad" || !strings.Contains(out[1].Error, "exactly one of tree and tree_text") {
		t.Errorf("at-limit line mishandled: %+v", out[1])
	}
	if !strings.Contains(out[2].Error, "token too long") {
		t.Errorf("oversized line not rejected: %+v", out[2])
	}
}

func TestConcurrentIdenticalRequestsAreDeterministic(t *testing.T) {
	// Cache disabled: every request recomputes, so this checks that the
	// heuristics themselves are deterministic under concurrency.
	s := New(Config{Workers: 4, CacheSize: -1})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 11, 80)
	body := mustJSON(t, Request{Tree: tr, Processors: 4})

	const goroutines = 16
	bodies := make([]string, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	// The server-assigned request_id is per-request by design; strip it so
	// the comparison covers exactly the scheduling result.
	ridField := regexp.MustCompile(`"request_id":"[^"]*",?`)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			bodies[g] = ridField.ReplaceAllString(post(t, h, "/v1/schedule", body).Body.String(), "")
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if bodies[g] != bodies[0] {
			t.Fatalf("response %d differs:\n%s\nvs\n%s", g, bodies[g], bodies[0])
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := New(Config{Workers: 3})
	defer s.Close()
	h := s.Handler()

	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal([]byte(getBody(t, h, "/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Workers != 3 {
		t.Fatalf("healthz: %+v", health)
	}

	metrics := getBody(t, h, "/metrics")
	for _, want := range []string{
		"treeschedd_requests_total{endpoint=\"/v1/schedule\"} 0",
		"treeschedd_cache_hits_total 0",
		"treeschedd_inflight_jobs 0",
		"treeschedd_uptime_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestBatchSurvivesHostileLines(t *testing.T) {
	// Hostile per-line payloads must cost one error line, never the
	// process: the worker-side recover and the DecodeMax allocation cap.
	s := New(Config{Workers: 2, MaxNodes: 1000})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 23, 12)

	var batch bytes.Buffer
	batch.WriteString(`{"id":"huge","tree_text":"9000000000000000000\n","p":1}` + "\n")
	json.NewEncoder(&batch).Encode(Request{ID: "ok", Tree: tr, Processors: 2})

	rec := post(t, h, "/v1/schedule/batch", batch.Bytes())
	var out []Response
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		out = append(out, resp)
	}
	if len(out) != 2 {
		t.Fatalf("got %d lines, want 2", len(out))
	}
	if out[0].ID != "huge" || !strings.Contains(out[0].Error, "exceeds limit") {
		t.Errorf("hostile line: %+v", out[0])
	}
	if out[1].ID != "ok" || out[1].Error != "" {
		t.Errorf("line after hostile one broken: %+v", out[1])
	}
}

func TestSafeRunContainsPanics(t *testing.T) {
	// A nil tree makes run() panic; the pool-worker wrapper must convert
	// that into an error response instead of crashing the daemon.
	s := New(Config{Workers: 1})
	defer s.Close()
	j := &job{req: Request{ID: "boom"}, opts: sched.Options{Processors: 1}}
	resp := s.safeRun(context.Background(), j)
	if resp == nil || resp.ID != "boom" || !strings.Contains(resp.Error, "panic") {
		t.Fatalf("panic not contained: %+v", resp)
	}
}

func TestCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	r := &Response{}
	c.add("a", r)
	c.add("b", r)
	if _, ok := c.get("a"); !ok { // touches a, making b the eviction victim
		t.Fatal("a missing")
	}
	c.add("c", r)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a wrongly evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2", c.len())
	}
}

func TestPortfolioEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 31, 120)

	rec := postJSON(t, h, "/v1/portfolio", Request{ID: "pf-1", Tree: tr, Processors: 4})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Error != "" {
		t.Fatalf("unexpected error: %s", resp.Error)
	}
	// Default candidate set: the paper's four + the Sequential baseline.
	want := portfolio.DefaultCandidates()
	if len(resp.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r.Heuristic != want[i] {
			t.Errorf("result %d: %v, want %v", i, r.Heuristic, want[i])
		}
		if r.Error != "" {
			t.Errorf("%v failed: %s", r.Heuristic, r.Error)
		}
	}
	if resp.Objective == nil || *resp.Objective != portfolio.MinMakespan() {
		t.Errorf("objective not defaulted to min_makespan: %v", resp.Objective)
	}
	if len(resp.Frontier) == 0 || resp.Winner == nil {
		t.Fatalf("missing frontier/winner: %+v", resp)
	}

	// Verify the frontier against the results: every frontier member is
	// non-dominated, every non-member is dominated or a duplicate.
	byID := make(map[sched.HeuristicID]HeuristicResult, len(resp.Results))
	for _, r := range resp.Results {
		byID[r.Heuristic] = r
	}
	onFrontier := make(map[sched.HeuristicID]bool)
	for _, id := range resp.Frontier {
		onFrontier[id] = true
	}
	dominates := func(a, b HeuristicResult) bool {
		return a.Makespan <= b.Makespan && a.PeakMemory <= b.PeakMemory &&
			(a.Makespan < b.Makespan || a.PeakMemory < b.PeakMemory)
	}
	for _, id := range resp.Frontier {
		for _, r := range resp.Results {
			if dominates(r, byID[id]) {
				t.Errorf("frontier member %v dominated by %v", id, r.Heuristic)
			}
		}
	}
	for _, r := range resp.Results {
		if onFrontier[r.Heuristic] {
			continue
		}
		excludable := false
		for _, fid := range resp.Frontier {
			f := byID[fid]
			if dominates(f, r) || (f.Makespan == r.Makespan && f.PeakMemory == r.PeakMemory) {
				excludable = true
				break
			}
		}
		if !excludable {
			t.Errorf("%v excluded from frontier but not dominated", r.Heuristic)
		}
	}

	// min_makespan winner: nothing is faster.
	w := byID[*resp.Winner]
	for _, r := range resp.Results {
		if r.Error == "" && r.Makespan < w.Makespan {
			t.Errorf("winner %v (%g) beaten by %v (%g)", *resp.Winner, w.Makespan, r.Heuristic, r.Makespan)
		}
	}

	// A repeated identical request is fully cache-served, winner included.
	resp2 := decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{ID: "pf-2", Tree: tr, Processors: 4}))
	if !resp2.Cached {
		t.Fatal("repeated portfolio request not served from cache")
	}
	if !reflect.DeepEqual(resp.Results, resp2.Results) || !reflect.DeepEqual(resp.Frontier, resp2.Frontier) ||
		resp2.Winner == nil || *resp2.Winner != *resp.Winner {
		t.Fatal("cached portfolio response differs from computed one")
	}

	// A different objective is a different cache entry and may pick a
	// different winner; min_memory must select the Sequential baseline
	// (its peak is M_seq, which nothing undercuts in this candidate set).
	obj := portfolio.MinMemory()
	resp3 := decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{Tree: tr, Processors: 4, Objective: &obj}))
	if resp3.Cached {
		t.Fatal("different objective wrongly shared a cache entry")
	}
	if resp3.Winner == nil || *resp3.Winner != sched.IDSequential {
		t.Errorf("min_memory winner %v, want Sequential", resp3.Winner)
	}
	if wr := byID[sched.IDSequential]; wr.PeakMemory != resp3.Bounds.MemorySeq {
		t.Errorf("Sequential peak %d != M_seq %d", wr.PeakMemory, resp3.Bounds.MemorySeq)
	}
}

func TestScheduleObjectiveAndAutoTriggerPortfolio(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 37, 80)

	// The Auto pseudo-heuristic on the plain schedule endpoint expands to
	// the default portfolio with a min_makespan winner.
	resp := decodeResponse(t, post(t, h, "/v1/schedule",
		mustJSON(t, Request{Tree: tr, Processors: 4, Heuristics: []sched.HeuristicID{sched.IDAuto}})))
	if resp.Error != "" {
		t.Fatalf("Auto request failed: %s", resp.Error)
	}
	if len(resp.Results) != len(portfolio.DefaultCandidates()) || resp.Winner == nil || len(resp.Frontier) == 0 {
		t.Fatalf("Auto did not produce a portfolio response: %+v", resp)
	}

	// An explicit objective with an explicit candidate list races exactly
	// that list; memory_under_deadline respects its constraint.
	obj := portfolio.MemoryUnderDeadline(1.5)
	resp2 := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{
		Tree: tr, Processors: 4,
		Heuristics: []sched.HeuristicID{sched.IDParSubtrees, sched.IDParDeepestFirst},
		Objective:  &obj,
	}))
	if resp2.Error != "" {
		t.Fatalf("objective request failed: %s", resp2.Error)
	}
	if len(resp2.Results) != 2 || resp2.Winner == nil {
		t.Fatalf("bad portfolio response: %+v", resp2)
	}
	var w HeuristicResult
	for _, r := range resp2.Results {
		if r.Heuristic == *resp2.Winner {
			w = r
		}
	}
	feasible := false
	for _, r := range resp2.Results {
		if r.Makespan <= 1.5*resp2.Bounds.MakespanLB {
			feasible = true
		}
	}
	if feasible && w.Makespan > 1.5*resp2.Bounds.MakespanLB {
		t.Errorf("winner %v misses the deadline despite a feasible candidate", *resp2.Winner)
	}

	// Auto inside a batch line works the same way.
	var batch bytes.Buffer
	json.NewEncoder(&batch).Encode(Request{ID: "auto", Tree: tr, Processors: 2, Heuristics: []sched.HeuristicID{sched.IDAuto}})
	json.NewEncoder(&batch).Encode(Request{ID: "plain", Tree: tr, Processors: 2})
	rec := post(t, h, "/v1/schedule/batch", batch.Bytes())
	var out []Response
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var r Response
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	if len(out) != 2 {
		t.Fatalf("%d batch lines", len(out))
	}
	if out[0].Winner == nil || len(out[0].Frontier) == 0 {
		t.Errorf("batch Auto line missing portfolio fields: %+v", out[0])
	}
	if out[1].Winner != nil || out[1].Frontier != nil {
		t.Errorf("plain batch line grew portfolio fields: %+v", out[1])
	}
}

func getBody(tb testing.TB, h http.Handler, path string) string {
	tb.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		tb.Fatalf("GET %s: status %d", path, rec.Code)
	}
	return rec.Body.String()
}
