package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"treesched/internal/obs"
	"treesched/internal/resilience"
	"treesched/internal/resilience/chaos"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// rejectJSON rejects a request before it reaches the worker pool; kind is
// the pre-resolved errors_total{kind} child the rejection counts against.
func (s *Server) rejectJSON(w http.ResponseWriter, status int, kind *obs.Counter, msg string) {
	kind.Inc()
	writeJSON(w, status, Response{Error: msg})
}

// traceWanted reports whether the request opted into span tracing via
// ?trace=1.
func traceWanted(r *http.Request) bool {
	return boolParam(r, "trace")
}

// timelineWanted reports whether the request asked for a Perfetto
// timeline of the winning schedule via ?timeline=1.
func timelineWanted(r *http.Request) bool {
	return boolParam(r, "timeline")
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}

// requestTimeout resolves the request's server-side time budget: the
// configured default, tightened by an X-Timeout-Ms header (which can only
// shorten it — a client cannot buy more time than the server grants).
// 0 means no budget.
func (s *Server) requestTimeout(r *http.Request) (time.Duration, error) {
	to := s.cfg.RequestTimeout
	if v := r.Header.Get("X-Timeout-Ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			return 0, fmt.Errorf("bad X-Timeout-Ms %q (want a positive integer)", v)
		}
		if d := time.Duration(ms) * time.Millisecond; to == 0 || d < to {
			to = d
		}
	}
	return to, nil
}

// shedMessage is the error body of an admission rejection.
func shedMessage(dec resilience.Decision) string {
	if dec == resilience.ShedQueueFull {
		return "server overloaded: admission queue full, request shed"
	}
	return "server overloaded: queue delay over target, request shed"
}

// handleSchedule answers POST /v1/schedule: one JSON Request in, one JSON
// Response out. The handler goroutine only does I/O (reading the body,
// writing the response); all CPU work — parsing, validation, hashing,
// scheduling — runs on the bounded worker pool, exactly as in the batch
// endpoint, so per-connection goroutines cannot oversubscribe the CPU the
// pool is meant to bound.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.metrics.reqSchedule.Inc()
	s.handleOne(w, r, false, epSchedule, s.metrics.latSchedule)
}

// handlePortfolio answers POST /v1/portfolio: the same Request shape as
// /v1/schedule, but the selected heuristics (default: the paper's four
// plus the Sequential baseline) race concurrently and the Response carries
// the Pareto frontier and the objective-selected winner. An absent
// objective defaults to min_makespan.
func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	s.metrics.reqPortfolio.Inc()
	s.handleOne(w, r, true, epPortfolio, s.metrics.latPortfolio)
}

// handleOne is the shared single-request path: the handler goroutine only
// does I/O; parsing, validation, hashing and scheduling run on the bounded
// worker pool. With ?trace=1 the response carries the request's span tree
// in the trace field; with ?timeline=1 it carries the winning schedule as
// Chrome-trace JSON. Every request is traced into the pooled span recorder
// regardless — the flight recorder retains the spans of kept requests —
// and finishes through the shared outcome bookkeeping (latency exemplar,
// flight record, SLO classification).
func (s *Server) handleOne(w http.ResponseWriter, r *http.Request, forcePortfolio bool, endpoint string, lat *obs.Histogram) {
	start := time.Now()
	rid := s.requestID()
	w.Header().Set("X-Request-Id", rid)
	tr := obs.AcquireTrace()
	finish := func(status int, resp *Response) {
		elapsed := time.Since(start)
		lat.ObserveExemplar(elapsed.Nanoseconds(), rid)
		s.metrics.recordOutcome(flightInfoFor(rid, endpoint, status, elapsed, resp), tr)
		tr.Release()
		s.logRequest(rid, endpoint, status, elapsed, resp.Error)
	}
	reject := func(status int, kind *obs.Counter, kindName, msg string) {
		kind.Inc()
		resp := &Response{RequestID: rid, Error: msg, errKind: kindName}
		writeJSON(w, status, resp)
		finish(status, resp)
	}
	timeout, terr := s.requestTimeout(r)
	if terr != nil {
		reject(http.StatusBadRequest, s.metrics.errDecode, errKindDecode, terr.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			reject(http.StatusRequestEntityTooLarge, s.metrics.errLimit, errKindLimit, "request body exceeds limit")
			return
		}
		reject(http.StatusBadRequest, s.metrics.errDecode, errKindDecode, "reading request body: "+err.Error())
		return
	}
	// Admission sits between body read and submit: a shed costs the server
	// the network I/O (already paid by the client) but none of the
	// CPU-bound work the window protects.
	if dec := s.admit(resilience.PriorityHigh); dec != resilience.Admitted {
		w.Header().Set("Retry-After", "1")
		reject(http.StatusServiceUnavailable, s.metrics.errShed, errKindShed, shedMessage(dec))
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	attachTrace, timeline := traceWanted(r), timelineWanted(r)
	type outcome struct {
		status int
		resp   *Response
	}
	ch := make(chan outcome, 1)
	s.submit(func() {
		status, resp := s.answerBytes(ctx, start, body, forcePortfolio, tr, attachTrace, timeline, rid)
		ch <- outcome{status, resp}
	})
	out := <-ch
	if out.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	// Debug header: did this request's scheduling context come from the
	// cross-request Precompute cache? Absent when no scheduling ran (errors,
	// response-cache hits) or the cache is disabled.
	if out.resp.precompute != "" {
		w.Header().Set("X-Precompute-Cache", out.resp.precompute)
	}
	writeJSON(w, out.status, out.resp)
	finish(out.status, out.resp)
}

// handleBatch answers POST /v1/schedule/batch: NDJSON in, NDJSON out, one
// Response line per Request line, in input order. Lines are pipelined:
// a reader goroutine frames lines and dispatches them to the worker pool
// (which does all per-line work — parsing, validation, hashing,
// scheduling — so it parallelizes across workers) while this goroutine
// streams completed responses back; the batch is never buffered whole.
// The reader stays at most 2×Workers lines ahead of the writer (the
// `results` buffer), bounding memory for arbitrarily long batches.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := s.requestID()
	s.metrics.reqBatch.Inc()
	w.Header().Set("X-Request-Id", rid)
	timeout, terr := s.requestTimeout(r)
	if terr != nil {
		s.rejectJSON(w, http.StatusBadRequest, s.metrics.errDecode, terr.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// Set by the writer when the client stops reading; makes the reader
	// quit instead of scheduling work nobody will receive.
	var clientGone atomic.Bool
	// The batch context is cancellable so the chaos injector can simulate
	// a mid-batch client disconnect.
	ctx, cancelBatch := context.WithCancel(r.Context())
	defer cancelBatch()

	var lines atomic.Int64
	results := make(chan chan *Response, 2*s.cfg.Workers)
	go func() {
		defer close(results)
		sc := bufio.NewScanner(r.Body)
		// bufio.Scanner's effective token limit is max(max, cap(buf)), so
		// the initial buffer must not exceed the configured line limit.
		// The +1 leaves room for the newline delimiter, making the limit
		// inclusive like the single endpoint's MaxBytesReader.
		bufCap := 64 << 10
		if int(s.cfg.MaxBodyBytes) < bufCap {
			bufCap = int(s.cfg.MaxBodyBytes)
		}
		sc.Buffer(make([]byte, 0, bufCap), int(s.cfg.MaxBodyBytes)+1)
		for sc.Scan() && !clientGone.Load() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			line = append([]byte(nil), line...) // sc.Bytes() is reused by the next Scan
			ch := make(chan *Response, 1)
			select {
			case results <- ch: // bounded lookahead: blocks when far ahead of the writer
			case <-ctx.Done(): // client disconnected while we waited
				return
			}
			lineRid := rid + "." + strconv.FormatInt(lines.Add(1), 10)
			// Batch lines are the low-priority admission class: the first
			// work shed under overload. A shed line costs one error line in
			// place, never a worker.
			if dec := s.admit(resilience.PriorityLow); dec != resilience.Admitted {
				s.metrics.errShed.Inc()
				resp := &Response{RequestID: lineRid, Error: shedMessage(dec), errKind: errKindShed}
				s.metrics.recordOutcome(flightInfoFor(lineRid, epBatch, http.StatusServiceUnavailable, 0, resp), nil)
				ch <- resp
				continue
			}
			if s.cfg.Chaos.At(chaos.SiteBatchLine).Kind == chaos.Cancel {
				cancelBatch()
			}
			arrival := time.Now()
			lineCtx := ctx
			var cancelLine context.CancelFunc
			if timeout > 0 {
				lineCtx, cancelLine = context.WithTimeout(ctx, timeout)
			}
			s.submit(func() {
				if cancelLine != nil {
					defer cancelLine()
				}
				ch <- s.answerLine(lineCtx, arrival, line, lineRid)
			})
		}
		if err := sc.Err(); err != nil {
			// Line framing cannot resync past an oversized or unreadable
			// line, so the remainder of the batch is dropped; the final
			// error line says so for clients correlating by position.
			if errors.Is(err, bufio.ErrTooLong) {
				s.metrics.errLimit.Inc()
			} else {
				s.metrics.errDecode.Inc()
			}
			ch := make(chan *Response, 1)
			ch <- &Response{Error: "batch read: " + err.Error() + " (remaining batch lines dropped)"}
			results <- ch
		}
	}()

	// A per-line write deadline bounds how long a stalled-but-connected
	// client can pin this handler in Encode on TCP backpressure; a blown
	// deadline surfaces as a write error and aborts the batch.
	rc := http.NewResponseController(w)
	defer rc.SetWriteDeadline(time.Time{}) // don't leak the deadline into later keep-alive requests
	enc := json.NewEncoder(w)
	for ch := range results {
		resp := <-ch // must drain even after a write error, to unblock the reader
		if clientGone.Load() {
			continue
		}
		rc.SetWriteDeadline(time.Now().Add(s.cfg.BatchWriteTimeout))
		if err := enc.Encode(resp); err != nil {
			clientGone.Store(true)
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	elapsed := time.Since(start)
	s.metrics.latBatch.ObserveExemplar(elapsed.Nanoseconds(), rid)
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("request",
			"request_id", rid, "endpoint", epBatch, "status", http.StatusOK,
			"duration", elapsed, "lines", lines.Load())
	}
}

// answerLine answers one batch line; it is answerBytes without the HTTP
// status (batch lines carry errors in the response body, not the status).
// Portfolio mode is per-line: a line with an objective (or Auto) races,
// plain lines schedule sequentially. Each line is its own observable
// request: it gets a derived request id ("<batch-id>.<line>", echoed in
// the NDJSON result line), its own flight-recorder entry with stage
// spans, and its own SLO classification against the batch endpoint.
// arrival is when the reader framed the line; the line's timeout_ms field
// counts from it.
func (s *Server) answerLine(ctx context.Context, arrival time.Time, line []byte, lineRid string) *Response {
	start := time.Now()
	tr := obs.AcquireTrace()
	status, resp := s.answerBytes(ctx, arrival, line, false, tr, false, false, lineRid)
	s.metrics.recordOutcome(flightInfoFor(lineRid, epBatch, status, time.Since(start), resp), tr)
	tr.Release()
	return resp
}

// answerBytes parses, validates and answers one raw JSON request. It runs
// on a pool worker, so the O(n) work (JSON decode, tree validation,
// canonical hashing, scheduling) parallelizes across the pool. Pool
// workers have no net/http panic net, so the whole path — decode included
// — is recover-protected here; a panic must cost one request, not the
// daemon.
//
// tr records the request's stage spans; the caller still owns it — it
// hands the trace to the flight recorder after the response is written,
// then releases it. The deferred block stamps the request id and, when
// attachTrace is set, the materialized span tree onto a shallow copy of
// the response (never onto the response itself — the cache shares
// response objects across requests, and an id or trace belongs to exactly
// one).
func (s *Server) answerBytes(ctx context.Context, arrival time.Time, raw []byte, forcePortfolio bool, tr *obs.Trace, attachTrace, timeline bool, rid string) (status int, resp *Response) {
	var j *job
	defer func() {
		if r := recover(); r != nil {
			s.metrics.errInternal.Inc()
			status = http.StatusInternalServerError
			resp = &Response{Error: fmt.Sprintf("internal error: panic handling request: %v", r), errKind: errKindInternal}
		}
		if resp != nil {
			r2 := *resp
			r2.RequestID = rid
			if j != nil {
				// Per-request like the id: the Precompute-cache outcome
				// belongs to this request, never to a shared cached response.
				r2.precompute = j.pcState
			}
			if attachTrace && tr != nil {
				// Left open on purpose: Tree() closes it at materialization
				// time, so the encode span covers building the wire response.
				tr.Start("encode", obs.RootSpan)
				r2.Trace = tr.Tree()
			}
			resp = &r2
		}
	}()
	// Chaos worker faults fire inside this recover scope, so an injected
	// panic costs one request — exactly like a real scheduling panic.
	switch f := s.cfg.Chaos.At(chaos.SiteWorker); f.Kind {
	case chaos.Latency:
		time.Sleep(f.Dur)
	case chaos.Panic:
		panic("chaos: injected worker panic")
	}
	if ctx.Err() != nil {
		return s.ctxErrResponse(ctx, "")
	}
	var req Request
	did := tr.Start("decode", obs.RootSpan)
	err := json.Unmarshal(raw, &req)
	tr.End(did)
	if err != nil {
		s.metrics.errDecode.Inc()
		// req.ID is echoed best-effort: it is populated whenever the id
		// field was decoded before the failure.
		return http.StatusBadRequest, &Response{ID: req.ID, Error: "invalid request: " + err.Error(), errKind: errKindDecode}
	}
	if req.TimeoutMS < 0 {
		s.metrics.errDecode.Inc()
		return http.StatusBadRequest, &Response{ID: req.ID,
			Error: fmt.Sprintf("timeout_ms must be >= 0, got %d", req.TimeoutMS), errKind: errKindDecode}
	}
	if req.TimeoutMS > 0 {
		// The field can only tighten the surrounding budget: the nested
		// context keeps whichever deadline is earlier.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, arrival.Add(time.Duration(req.TimeoutMS)*time.Millisecond))
		defer cancel()
	}
	jb, err := s.prepare(req, forcePortfolio, tr)
	if err != nil {
		st := http.StatusBadRequest
		kind := errKindDecode
		var re *requestError
		if errors.As(err, &re) {
			st = re.status
		}
		if st == http.StatusRequestEntityTooLarge {
			s.metrics.errLimit.Inc()
			kind = errKindLimit
		} else {
			s.metrics.errDecode.Inc()
		}
		return st, &Response{ID: req.ID, Error: err.Error(), errKind: kind}
	}
	j = jb
	s.metrics.treeNodes.ObserveExemplar(int64(j.tree.Len()), rid)
	// Stage boundary: the budget is re-checked between hash and cache so a
	// request that spent its whole budget parsing stops here.
	if ctx.Err() != nil {
		return s.ctxErrResponse(ctx, req.ID)
	}
	j.trace = tr
	j.timeline = timeline
	if !timeline {
		// One eviction-storm draw clears both caches: survivors must
		// recompute their Precompute and reschedule, and the chaos suite
		// asserts they stay byte-identical to an unfaulted run.
		if (s.cache != nil || s.pcache != nil) && s.cfg.Chaos.At(chaos.SiteCache).Kind == chaos.Evict {
			if s.cache != nil {
				s.cache.purge()
			}
			if s.pcache != nil {
				s.pcache.Purge()
			}
		}
		cid := tr.Start("cache", obs.RootSpan)
		cresp, ok := s.cached(j)
		tr.End(cid)
		if ok {
			return http.StatusOK, cresp
		}
	}
	resp = s.answerJob(ctx, j)
	return statusFor(resp), resp
}

// handleHealthz answers GET /healthz. With SLOs configured the probe
// reports each objective's multi-window burn rates; any SLO burning in
// both windows degrades the reported status (the HTTP status stays 200 —
// the process is alive, the budget is what's suffering).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.cfg.Workers,
	}
	if len(s.metrics.slos) > 0 {
		nowNS := time.Now().UnixNano()
		rows := make([]sloHealth, 0, len(s.metrics.slos))
		for _, ep := range sortedSLOEndpoints(s.metrics.slos) {
			st := s.metrics.slos[ep]
			short, long, burning := st.burning(nowNS)
			rows = append(rows, sloHealth{
				Endpoint:   ep,
				Objective:  st.slo.Objective,
				LatencyMS:  float64(st.slo.Latency) / float64(time.Millisecond),
				BurnRate5m: short,
				BurnRate1h: long,
				Burning:    burning,
			})
			if burning {
				body["status"] = "degraded"
			}
		}
		body["slos"] = rows
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz answers GET /readyz: readiness, as opposed to /healthz's
// liveness. It returns 503 while the admission controller is in an
// overload episode or shutdown has begun, so a load balancer drains the
// node instead of feeding it work it would shed anyway. Like /healthz and
// /metrics it is answered on the handler goroutine and never passes
// through admission itself.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":    "ready",
		"occupancy": s.adm.Occupancy(),
		"capacity":  s.adm.Capacity(),
	}
	status := http.StatusOK
	switch {
	case s.shuttingDown.Load():
		body["status"] = "shutting_down"
		status = http.StatusServiceUnavailable
	case s.adm.Shedding():
		body["status"] = "shedding"
		status = http.StatusServiceUnavailable
	}
	if status != http.StatusOK {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, body)
}

func sortedSLOEndpoints(slos map[string]*sloState) []string {
	eps := make([]string, 0, len(slos))
	for ep := range slos {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	return eps
}

// handleMetrics answers GET /metrics: every family — counters, gauges,
// histograms — flows through the one obs registry writer, so each family
// has exactly one HELP/TYPE header and one format. Clients that accept
// the OpenMetrics media type (Prometheus with exemplar scraping on) get
// OpenMetrics 1.0 — same families, `# EOF` terminator, and exemplars on
// histogram bucket lines; everyone else gets classic text 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if acceptsOpenMetrics(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		s.metrics.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WriteText(w)
}

// acceptsOpenMetrics reports whether the Accept header asks for the
// OpenMetrics exposition format. Plain substring matching suffices: the
// only clients sending the media type are scrapers that prefer it.
func acceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}

// handleFlight answers GET /debug/flight: the flight recorder's retained
// entries, newest first, each with its outcome summary and stage spans.
// ?dump=1 additionally writes every entry through the structured logger
// (oldest first), putting the ring's contents into the log stream for
// postmortems collected off-box.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if boolParam(r, "dump") && s.cfg.Logger != nil {
		s.metrics.flight.Dump(s.cfg.Logger)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seen":    s.metrics.flight.Seen(),
		"kept":    s.metrics.flight.Kept(),
		"entries": s.metrics.flight.Snapshot(),
	})
}
