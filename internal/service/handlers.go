package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"treesched/internal/obs"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// rejectJSON rejects a request before it reaches the worker pool; kind is
// the pre-resolved errors_total{kind} child the rejection counts against.
func (s *Server) rejectJSON(w http.ResponseWriter, status int, kind *obs.Counter, msg string) {
	kind.Inc()
	writeJSON(w, status, Response{Error: msg})
}

// traceWanted reports whether the request opted into span tracing via
// ?trace=1.
func traceWanted(r *http.Request) bool {
	v := r.URL.Query().Get("trace")
	return v == "1" || v == "true"
}

// handleSchedule answers POST /v1/schedule: one JSON Request in, one JSON
// Response out. The handler goroutine only does I/O (reading the body,
// writing the response); all CPU work — parsing, validation, hashing,
// scheduling — runs on the bounded worker pool, exactly as in the batch
// endpoint, so per-connection goroutines cannot oversubscribe the CPU the
// pool is meant to bound.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.metrics.reqSchedule.Inc()
	s.handleOne(w, r, false, epSchedule, s.metrics.latSchedule)
}

// handlePortfolio answers POST /v1/portfolio: the same Request shape as
// /v1/schedule, but the selected heuristics (default: the paper's four
// plus the Sequential baseline) race concurrently and the Response carries
// the Pareto frontier and the objective-selected winner. An absent
// objective defaults to min_makespan.
func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	s.metrics.reqPortfolio.Inc()
	s.handleOne(w, r, true, epPortfolio, s.metrics.latPortfolio)
}

// handleOne is the shared single-request path: the handler goroutine only
// does I/O; parsing, validation, hashing and scheduling run on the bounded
// worker pool. With ?trace=1 the response carries the request's span tree
// in the trace field.
func (s *Server) handleOne(w http.ResponseWriter, r *http.Request, forcePortfolio bool, endpoint string, lat *obs.Histogram) {
	start := time.Now()
	rid := s.requestID()
	w.Header().Set("X-Request-Id", rid)
	finish := func(status int, errMsg string) {
		elapsed := time.Since(start)
		lat.Observe(elapsed.Nanoseconds())
		s.logRequest(rid, endpoint, status, elapsed, errMsg)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.rejectJSON(w, http.StatusRequestEntityTooLarge, s.metrics.errLimit, "request body exceeds limit")
			finish(http.StatusRequestEntityTooLarge, "request body exceeds limit")
			return
		}
		s.rejectJSON(w, http.StatusBadRequest, s.metrics.errDecode, "reading request body: "+err.Error())
		finish(http.StatusBadRequest, err.Error())
		return
	}
	var tr *obs.Trace
	if traceWanted(r) {
		tr = obs.AcquireTrace()
	}
	type outcome struct {
		status int
		resp   *Response
	}
	ch := make(chan outcome, 1)
	s.submit(func() {
		status, resp := s.answerBytes(r.Context(), body, forcePortfolio, tr)
		ch <- outcome{status, resp}
	})
	out := <-ch
	writeJSON(w, out.status, out.resp)
	finish(out.status, out.resp.Error)
}

// handleBatch answers POST /v1/schedule/batch: NDJSON in, NDJSON out, one
// Response line per Request line, in input order. Lines are pipelined:
// a reader goroutine frames lines and dispatches them to the worker pool
// (which does all per-line work — parsing, validation, hashing,
// scheduling — so it parallelizes across workers) while this goroutine
// streams completed responses back; the batch is never buffered whole.
// The reader stays at most 2×Workers lines ahead of the writer (the
// `results` buffer), bounding memory for arbitrarily long batches.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := s.requestID()
	s.metrics.reqBatch.Inc()
	w.Header().Set("X-Request-Id", rid)
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// Set by the writer when the client stops reading; makes the reader
	// quit instead of scheduling work nobody will receive.
	var clientGone atomic.Bool
	ctx := r.Context()

	var lines atomic.Int64
	results := make(chan chan *Response, 2*s.cfg.Workers)
	go func() {
		defer close(results)
		sc := bufio.NewScanner(r.Body)
		// bufio.Scanner's effective token limit is max(max, cap(buf)), so
		// the initial buffer must not exceed the configured line limit.
		// The +1 leaves room for the newline delimiter, making the limit
		// inclusive like the single endpoint's MaxBytesReader.
		bufCap := 64 << 10
		if int(s.cfg.MaxBodyBytes) < bufCap {
			bufCap = int(s.cfg.MaxBodyBytes)
		}
		sc.Buffer(make([]byte, 0, bufCap), int(s.cfg.MaxBodyBytes)+1)
		for sc.Scan() && !clientGone.Load() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			line = append([]byte(nil), line...) // sc.Bytes() is reused by the next Scan
			ch := make(chan *Response, 1)
			select {
			case results <- ch: // bounded lookahead: blocks when far ahead of the writer
			case <-ctx.Done(): // client disconnected while we waited
				return
			}
			lines.Add(1)
			s.submit(func() {
				ch <- s.answerLine(ctx, line)
			})
		}
		if err := sc.Err(); err != nil {
			// Line framing cannot resync past an oversized or unreadable
			// line, so the remainder of the batch is dropped; the final
			// error line says so for clients correlating by position.
			if errors.Is(err, bufio.ErrTooLong) {
				s.metrics.errLimit.Inc()
			} else {
				s.metrics.errDecode.Inc()
			}
			ch := make(chan *Response, 1)
			ch <- &Response{Error: "batch read: " + err.Error() + " (remaining batch lines dropped)"}
			results <- ch
		}
	}()

	// A per-line write deadline bounds how long a stalled-but-connected
	// client can pin this handler in Encode on TCP backpressure; a blown
	// deadline surfaces as a write error and aborts the batch.
	rc := http.NewResponseController(w)
	defer rc.SetWriteDeadline(time.Time{}) // don't leak the deadline into later keep-alive requests
	enc := json.NewEncoder(w)
	for ch := range results {
		resp := <-ch // must drain even after a write error, to unblock the reader
		if clientGone.Load() {
			continue
		}
		rc.SetWriteDeadline(time.Now().Add(batchWriteTimeout))
		if err := enc.Encode(resp); err != nil {
			clientGone.Store(true)
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	elapsed := time.Since(start)
	s.metrics.latBatch.Observe(elapsed.Nanoseconds())
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info("request",
			"request_id", rid, "endpoint", epBatch, "status", http.StatusOK,
			"duration", elapsed, "lines", lines.Load())
	}
}

// batchWriteTimeout is the per-response-line write deadline of the batch
// endpoint: generous enough for any reading client, finite so a client
// that stops reading cannot pin handler goroutines forever.
const batchWriteTimeout = 2 * time.Minute

// answerLine answers one batch line; it is answerBytes without the HTTP
// status (batch lines carry errors in the response body, not the status).
// Portfolio mode is per-line: a line with an objective (or Auto) races,
// plain lines schedule sequentially.
func (s *Server) answerLine(ctx context.Context, line []byte) *Response {
	_, resp := s.answerBytes(ctx, line, false, nil)
	return resp
}

// answerBytes parses, validates and answers one raw JSON request. It runs
// on a pool worker, so the O(n) work (JSON decode, tree validation,
// canonical hashing, scheduling) parallelizes across the pool. Pool
// workers have no net/http panic net, so the whole path — decode included
// — is recover-protected here; a panic must cost one request, not the
// daemon.
//
// A non-nil tr records the request's stage spans; the deferred block
// attaches the materialized span tree to a shallow copy of the response
// (never to the response itself — the cache shares response objects
// across requests, and a trace belongs to exactly one) and returns the
// trace to the pool.
func (s *Server) answerBytes(ctx context.Context, raw []byte, forcePortfolio bool, tr *obs.Trace) (status int, resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.errInternal.Inc()
			status = http.StatusInternalServerError
			resp = &Response{Error: fmt.Sprintf("internal error: panic handling request: %v", r)}
		}
		if tr != nil {
			if resp != nil {
				// Left open on purpose: Tree() closes it at materialization
				// time, so the encode span covers building the wire response.
				tr.Start("encode", obs.RootSpan)
				r2 := *resp
				r2.Trace = tr.Tree()
				resp = &r2
			}
			tr.Release()
		}
	}()
	if ctx.Err() != nil {
		s.metrics.errCancelled.Inc()
		return http.StatusBadRequest, &Response{Error: "request canceled"}
	}
	var req Request
	did := tr.Start("decode", obs.RootSpan)
	err := json.Unmarshal(raw, &req)
	tr.End(did)
	if err != nil {
		s.metrics.errDecode.Inc()
		// req.ID is echoed best-effort: it is populated whenever the id
		// field was decoded before the failure.
		return http.StatusBadRequest, &Response{ID: req.ID, Error: "invalid request: " + err.Error()}
	}
	j, err := s.prepare(req, forcePortfolio, tr)
	if err != nil {
		st := http.StatusBadRequest
		var re *requestError
		if errors.As(err, &re) {
			st = re.status
		}
		if st == http.StatusRequestEntityTooLarge {
			s.metrics.errLimit.Inc()
		} else {
			s.metrics.errDecode.Inc()
		}
		return st, &Response{ID: req.ID, Error: err.Error()}
	}
	s.metrics.treeNodes.Observe(int64(j.tree.Len()))
	j.trace = tr
	cid := tr.Start("cache", obs.RootSpan)
	cresp, ok := s.cached(j)
	tr.End(cid)
	if ok {
		return http.StatusOK, cresp
	}
	return http.StatusOK, s.answerJob(ctx, j)
}

// handleHealthz answers GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"workers":        s.cfg.Workers,
	})
}

// handleMetrics answers GET /metrics: every family — counters, gauges,
// histograms — flows through the one obs registry writer, so each family
// has exactly one HELP/TYPE header and one format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.reg.WriteText(w)
}
