package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treesched/internal/obs"
)

// flightPage decodes GET /debug/flight.
type flightPage struct {
	Seen    uint64            `json:"seen"`
	Kept    uint64            `json:"kept"`
	Entries []obs.FlightEntry `json:"entries"`
}

func getFlight(t *testing.T, h http.Handler, path string) flightPage {
	t.Helper()
	var page flightPage
	if err := json.Unmarshal([]byte(getBody(t, h, path)), &page); err != nil {
		t.Fatal(err)
	}
	return page
}

// TestFlightRecorderEndpoint checks GET /debug/flight end to end: every
// request retained (sample-every 1), newest first, request ids matching
// the X-Request-Id headers, stage spans present, and error entries
// carrying the error kind.
func TestFlightRecorderEndpoint(t *testing.T) {
	s := New(Config{Workers: 2, FlightSampleEvery: 1})
	defer s.Close()
	h := s.Handler()

	good := postJSON(t, h, "/v1/schedule", Request{Tree: testTree(t, 31, 25), Processors: 2})
	if good.Code != http.StatusOK {
		t.Fatalf("schedule: %d %s", good.Code, good.Body.String())
	}
	goodRid := good.Header().Get("X-Request-Id")
	bad := post(t, h, "/v1/schedule", []byte("{not json"))
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("bad request: %d", bad.Code)
	}
	badRid := bad.Header().Get("X-Request-Id")

	page := getFlight(t, h, "/debug/flight")
	if page.Seen != 2 || page.Kept != 2 {
		t.Fatalf("seen/kept = %d/%d, want 2/2", page.Seen, page.Kept)
	}
	if len(page.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(page.Entries))
	}
	// Newest first: the error is the most recent request.
	e0, e1 := page.Entries[0], page.Entries[1]
	if e0.RequestID != badRid || e1.RequestID != goodRid {
		t.Fatalf("entry order/ids: got [%s %s], want [%s %s]", e0.RequestID, e1.RequestID, badRid, goodRid)
	}
	if e0.Sampled != obs.SampledError || e0.ErrorKind != "decode" || e0.Status != http.StatusBadRequest {
		t.Errorf("error entry: %+v", e0)
	}
	if e1.Endpoint != epSchedule || e1.Nodes != 25 || e1.Error != "" {
		t.Errorf("good entry: %+v", e1)
	}
	spanNames := map[string]bool{}
	for _, sp := range e1.Spans {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"decode", "hash", "cache", "precompute", "schedule"} {
		if !spanNames[want] {
			t.Errorf("good entry missing span %q (have %v)", want, spanNames)
		}
	}

	// The response body carries the same id the flight entry is keyed by.
	if resp := decodeResponse(t, good); resp.RequestID != goodRid {
		t.Errorf("response request_id %q != header %q", resp.RequestID, goodRid)
	}
}

// TestFlightDumpToLogs checks ?dump=1: the ring's entries land in the
// structured log, oldest first, keyed by request id.
func TestFlightDumpToLogs(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{
		Workers: 1, FlightSampleEvery: 1,
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	defer s.Close()
	h := s.Handler()

	rec := postJSON(t, h, "/v1/schedule", Request{Tree: testTree(t, 32, 10), Processors: 2})
	rid := rec.Header().Get("X-Request-Id")
	logBuf.Reset()

	page := getFlight(t, h, "/debug/flight?dump=1")
	if page.Kept != 1 {
		t.Fatalf("kept = %d, want 1", page.Kept)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"flight"`) || !strings.Contains(logs, `"request_id":"`+rid+`"`) {
		t.Errorf("dump missing flight record for %s:\n%s", rid, logs)
	}
}

// TestFlightSamplingPolicy checks the service-level keep policy: with the
// default 1-in-N sampling, errors are still always retained.
func TestFlightSamplingPolicy(t *testing.T) {
	s := New(Config{Workers: 1, FlightSampleEvery: 1000})
	defer s.Close()
	h := s.Handler()

	for i := 0; i < 5; i++ {
		post(t, h, "/v1/schedule", []byte("{not json"))
	}
	page := getFlight(t, h, "/debug/flight")
	if page.Kept < 5 {
		t.Fatalf("kept = %d, want >= 5 (errors are always retained)", page.Kept)
	}
}

// TestBatchLineRequestIDs checks satellite (c): every batch NDJSON result
// line carries a derived request id "<batch-id>.<line>", and per-line
// flight entries are recorded against the batch endpoint.
func TestBatchLineRequestIDs(t *testing.T) {
	s := New(Config{Workers: 2, FlightSampleEvery: 1})
	defer s.Close()
	h := s.Handler()

	treeText := "2\n0 -1 5 2 3\n1 0 3 1 2\n"
	var batch bytes.Buffer
	fmt.Fprintf(&batch, `{"id":"a","tree_text":%q,"p":2}`+"\n", treeText)
	fmt.Fprintf(&batch, `{"id":"b","bogus}`+"\n") // malformed line
	rec := post(t, h, "/v1/schedule/batch", batch.Bytes())
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d", rec.Code)
	}
	rid := rec.Header().Get("X-Request-Id")

	var lineRids []string
	for i, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var resp Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		want := fmt.Sprintf("%s.%d", rid, i+1)
		if resp.RequestID != want {
			t.Errorf("line %d request_id = %q, want %q", i, resp.RequestID, want)
		}
		lineRids = append(lineRids, resp.RequestID)
	}
	if len(lineRids) != 2 {
		t.Fatalf("got %d lines, want 2", len(lineRids))
	}

	page := getFlight(t, h, "/debug/flight")
	byRid := map[string]obs.FlightEntry{}
	for _, e := range page.Entries {
		byRid[e.RequestID] = e
	}
	for _, lr := range lineRids {
		e, ok := byRid[lr]
		if !ok {
			t.Errorf("no flight entry for batch line %s", lr)
			continue
		}
		if e.Endpoint != epBatch {
			t.Errorf("line %s recorded on %s, want %s", lr, e.Endpoint, epBatch)
		}
	}
	if e := byRid[lineRids[1]]; e.Sampled != obs.SampledError || e.ErrorKind != "decode" {
		t.Errorf("malformed line's flight entry: %+v", e)
	}
}

// TestSLOFamiliesAndHealthz checks the SLO layer end to end: the
// treeschedd_slo_* families appear with the configured endpoint labels,
// a latency-violating SLO burns, and /healthz reports the burn.
func TestSLOFamiliesAndHealthz(t *testing.T) {
	s := New(Config{Workers: 2, SLOs: []SLO{
		{Endpoint: epSchedule, Latency: time.Nanosecond, Objective: 0.99}, // impossible: everything is bad
		{Endpoint: epPortfolio, Latency: time.Minute, Objective: 0.999},   // generous: everything is good
	}})
	defer s.Close()
	h := s.Handler()

	if rec := postJSON(t, h, "/v1/schedule", Request{Tree: testTree(t, 33, 20), Processors: 2}); rec.Code != http.StatusOK {
		t.Fatalf("schedule: %d", rec.Code)
	}
	if rec := postJSON(t, h, "/v1/portfolio", Request{Tree: testTree(t, 33, 20), Processors: 2}); rec.Code != http.StatusOK {
		t.Fatalf("portfolio: %d", rec.Code)
	}
	// 4xx must not count against the schedule SLO.
	post(t, h, "/v1/schedule", []byte("{not json"))

	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	if got := samples[`treeschedd_slo_requests_total{endpoint="`+epSchedule+`"}`]; got != "1" {
		t.Errorf("slo_requests schedule = %q, want 1 (4xx excluded)", got)
	}
	if got := samples[`treeschedd_slo_bad_total{endpoint="`+epSchedule+`"}`]; got != "1" {
		t.Errorf("slo_bad schedule = %q, want 1 (blew the 1ns threshold)", got)
	}
	if got := samples[`treeschedd_slo_bad_total{endpoint="`+epPortfolio+`"}`]; got != "0" {
		t.Errorf("slo_bad portfolio = %q, want 0", got)
	}
	if got := samples[`treeschedd_slo_objective{endpoint="`+epSchedule+`"}`]; got != "0.99" {
		t.Errorf("slo_objective = %q, want 0.99", got)
	}
	for _, win := range []string{"5m", "1h"} {
		key := `treeschedd_slo_burn_rate{endpoint="` + epSchedule + `",window="` + win + `"}`
		if _, ok := samples[key]; !ok {
			t.Errorf("missing burn-rate sample %s", key)
		}
	}

	var health struct {
		Status string      `json:"status"`
		SLOs   []sloHealth `json:"slos"`
	}
	if err := json.Unmarshal([]byte(getBody(t, h, "/healthz")), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Errorf("healthz status = %q, want degraded (schedule SLO burning)", health.Status)
	}
	if len(health.SLOs) != 2 {
		t.Fatalf("healthz slos = %+v, want 2 rows", health.SLOs)
	}
	// Rows are endpoint-sorted: /v1/portfolio before /v1/schedule.
	if health.SLOs[0].Endpoint != epPortfolio || health.SLOs[0].Burning {
		t.Errorf("portfolio row: %+v, want not burning", health.SLOs[0])
	}
	sched := health.SLOs[1]
	if sched.Endpoint != epSchedule || !sched.Burning || sched.BurnRate5m <= 1 || sched.BurnRate1h <= 1 {
		t.Errorf("schedule row: %+v, want burning with both rates > 1", sched)
	}
}

// TestParseSLO covers the flag grammar.
func TestParseSLO(t *testing.T) {
	good := []struct {
		in   string
		want SLO
	}{
		{"/v1/schedule:250ms:99.9", SLO{Endpoint: "/v1/schedule", Latency: 250 * time.Millisecond, Objective: 0.999}},
		{"/v1/forest:0:0.95", SLO{Endpoint: "/v1/forest", Latency: 0, Objective: 0.95}},
		{"/v1/schedule/batch:2s:99", SLO{Endpoint: "/v1/schedule/batch", Latency: 2 * time.Second, Objective: 0.99}},
	}
	for _, tc := range good {
		got, err := ParseSLO(tc.in)
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.in, err)
			continue
		}
		// Percentages divide by 100, so compare objectives with a float
		// tolerance.
		if got.Endpoint != tc.want.Endpoint || got.Latency != tc.want.Latency ||
			math.Abs(got.Objective-tc.want.Objective) > 1e-12 {
			t.Errorf("ParseSLO(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, in := range []string{"", "nocolon", "/v1/schedule:99.9", "x:250ms:99.9", "/v1/schedule:banana:99.9", "/v1/schedule:250ms:0", "/v1/schedule:250ms:101"} {
		if _, err := ParseSLO(in); err == nil {
			t.Errorf("ParseSLO(%q) unexpectedly succeeded", in)
		}
	}
}

// TestOpenMetricsNegotiation checks /metrics content negotiation: the
// OpenMetrics media type in Accept switches the exposition to OM 1.0
// (counters keep _total on samples but drop it from headers, the page
// ends with # EOF, bucket lines may carry exemplars), everything else
// gets classic text 0.0.4.
func TestOpenMetricsNegotiation(t *testing.T) {
	s := New(Config{Workers: 1, FlightSampleEvery: 1})
	defer s.Close()
	h := s.Handler()
	rec := postJSON(t, h, "/v1/schedule", Request{Tree: testTree(t, 34, 15), Processors: 2})
	rid := rec.Header().Get("X-Request-Id")

	get := func(accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		out := httptest.NewRecorder()
		h.ServeHTTP(out, req)
		return out
	}

	text := get("")
	if ct := text.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("default content-type %q", ct)
	}
	if strings.Contains(text.Body.String(), "# EOF") {
		t.Error("classic text page must not end with # EOF")
	}
	parseMetricsPage(t, text.Body.String())

	om := get("application/openmetrics-text; version=1.0.0; charset=utf-8")
	if ct := om.Header().Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Errorf("OM content-type %q", ct)
	}
	page := om.Body.String()
	if !strings.HasSuffix(page, "# EOF\n") {
		t.Error("OpenMetrics page must end with # EOF")
	}
	if !strings.Contains(page, "# TYPE treeschedd_requests counter") {
		t.Error("OM counter header must drop the _total suffix")
	}
	if !strings.Contains(page, `treeschedd_requests_total{endpoint="/v1/schedule"} 1`) {
		t.Error("OM counter samples must keep the _total suffix")
	}
	// The request's latency exemplar links the histogram to the flight
	// recorder entry.
	if !strings.Contains(page, `# {request_id="`+rid+`"}`) {
		t.Errorf("OM page missing exemplar for %s", rid)
	}
}

// TestMetricFamiliesAllExposed mirrors the CI drift gate in-process:
// every family the registry knows about must appear on the /metrics page
// with a HELP header.
func TestMetricFamiliesAllExposed(t *testing.T) {
	s := New(Config{Workers: 1, SLOs: []SLO{{Endpoint: epSchedule, Latency: time.Second, Objective: 0.999}}})
	defer s.Close()
	page := getBody(t, s.Handler(), "/metrics")
	fams := s.MetricFamilies()
	if len(fams) == 0 {
		t.Fatal("no registered families")
	}
	for _, fam := range fams {
		if !strings.Contains(page, "# HELP "+fam+" ") {
			t.Errorf("family %s registered but not exposed", fam)
		}
	}
	for _, want := range []string{"treeschedd_flight_seen_total", "treeschedd_flight_kept_total", "treeschedd_slo_burn_rate"} {
		found := false
		for _, fam := range fams {
			if fam == want {
				found = true
			}
		}
		if !found {
			t.Errorf("FamilyNames missing %s", want)
		}
	}
}

// TestTimelineParam checks ?timeline=1 on /v1/schedule and /v1/portfolio:
// the response carries valid Chrome-trace JSON with one complete event per
// tree node, and timeline responses bypass the cache.
func TestTimelineParam(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 35, 20)

	resp := decodeResponse(t, postJSON(t, h, "/v1/schedule?timeline=1", Request{Tree: tr, Processors: 2}))
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if resp.Timeline == nil {
		t.Fatal("no timeline with ?timeline=1")
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(resp.Timeline, &doc); err != nil {
		t.Fatalf("timeline is not valid chrome-trace JSON: %v", err)
	}
	var tasks, counters int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			tasks++
		case "C":
			counters++
		}
	}
	if tasks != 20 {
		t.Errorf("timeline has %d task events, want 20", tasks)
	}
	if counters == 0 {
		t.Error("timeline has no memory counter samples")
	}

	// Timeline requests bypass the cache in both directions.
	again := decodeResponse(t, postJSON(t, h, "/v1/schedule?timeline=1", Request{Tree: tr, Processors: 2}))
	if again.Cached || again.Timeline == nil {
		t.Errorf("second timeline request: cached=%v timeline=%v", again.Cached, again.Timeline != nil)
	}

	// Plain requests never see a timeline.
	plain := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2}))
	if plain.Timeline != nil {
		t.Error("timeline present without ?timeline=1")
	}

	// Portfolio: the winner is re-run for its timeline.
	presp := decodeResponse(t, postJSON(t, h, "/v1/portfolio?timeline=1", Request{Tree: tr, Processors: 2}))
	if presp.Error != "" {
		t.Fatal(presp.Error)
	}
	if presp.Winner == nil || presp.Timeline == nil {
		t.Fatalf("portfolio timeline: winner=%v timeline=%v", presp.Winner, presp.Timeline != nil)
	}
}

// TestForestTraceParam checks satellite (a): ?trace=1 on /v1/forest
// attaches the run's span tree to the trailing summary line, with decode,
// plan (one child per job) and simulate stages.
func TestForestTraceParam(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()

	treeText := "3\n0 -1 5 2 3\n1 0 3 1 2\n2 0 2 1 4\n"
	var body bytes.Buffer
	fmt.Fprintf(&body, `{"id":"j1","tree_text":%q}`+"\n", treeText)
	fmt.Fprintf(&body, `{"id":"j2","tree_text":%q,"arrival":0.5}`+"\n", treeText)
	req := httptest.NewRequest(http.MethodPost, "/v1/forest?p=2&trace=1", bytes.NewReader(body.Bytes()))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("forest: %d %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var summary struct {
		Summary *json.RawMessage `json:"summary"`
		Trace   *obs.SpanNode    `json:"trace"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatal(err)
	}
	if summary.Summary == nil {
		t.Fatal("missing summary on final line")
	}
	if summary.Trace == nil {
		t.Fatal("missing trace on final line with ?trace=1")
	}
	byName := map[string]*obs.SpanNode{}
	summary.Trace.Walk(func(n *obs.SpanNode, _ int) { byName[n.Name] = n })
	for _, want := range []string{"decode", "plan", "plan:j1", "plan:j2", "simulate"} {
		if byName[want] == nil {
			t.Errorf("forest trace missing span %q", want)
		}
	}
	if sp := byName["plan:j1"]; sp != nil && sp.Value != 3 {
		t.Errorf("plan:j1 value = %d, want node count 3", sp.Value)
	}

	// Without ?trace=1, the summary line has no trace but flight still
	// retained the spans server-side.
	req = httptest.NewRequest(http.MethodPost, "/v1/forest?p=2", bytes.NewReader(body.Bytes()))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	lines = strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if strings.Contains(lines[len(lines)-1], `"trace"`) {
		t.Error("trace attached without ?trace=1")
	}
}
