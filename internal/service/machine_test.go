package service

import (
	"net/http"
	"strings"
	"testing"

	"treesched/internal/sched"
)

// TestScheduleMachineField drives a heterogeneous machine spec end to end
// through /v1/schedule: request → scheduler → Evaluate → response. The
// response must echo the canonical spec, report the model's processor
// count, and produce valid results for every heuristic.
func TestScheduleMachineField(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 31, 200)

	rec := postJSON(t, h, "/v1/schedule", Request{ID: "het", Tree: tr, Machine: "2x1.0+2x0.5"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Error != "" {
		t.Fatalf("error: %s", resp.Error)
	}
	if resp.Processors != 4 {
		t.Errorf("p = %d, want 4 (from machine spec)", resp.Processors)
	}
	if resp.Machine != "2+2x0.5" {
		t.Errorf("machine = %q, want canonical 2+2x0.5", resp.Machine)
	}
	if len(resp.Results) != len(sched.PaperHeuristics()) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(sched.PaperHeuristics()))
	}
	for _, r := range resp.Results {
		if r.Error != "" {
			t.Errorf("%s failed on heterogeneous machine: %s", r.Heuristic, r.Error)
		}
		if r.Makespan <= 0 || r.PeakMemory <= 0 {
			t.Errorf("%s: degenerate metrics %+v", r.Heuristic, r)
		}
	}

	// The same tree on the uniform 4-processor machine must be slower or
	// equal for every heuristic: half the aggregate speed can't win.
	uni := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{ID: "uni", Tree: tr, Processors: 4}))
	if uni.Machine != "" {
		t.Errorf("uniform response carries machine %q", uni.Machine)
	}
	for i, r := range resp.Results {
		if r.Makespan < uni.Results[i].Makespan-1e-9 {
			t.Errorf("%s: heterogeneous (slower) machine beat the uniform one: %v < %v",
				r.Heuristic, r.Makespan, uni.Results[i].Makespan)
		}
	}

	// A uniform machine spec folds into p: byte-identical to the plain
	// request and served from its cache entry.
	viaSpec := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{ID: "uni2", Tree: tr, Machine: "4"}))
	if !viaSpec.Cached {
		t.Error(`"machine":"4" did not hit the "p":4 cache entry`)
	}
	if viaSpec.Machine != "" || viaSpec.Processors != 4 {
		t.Errorf("uniform-spec response: machine %q p %d", viaSpec.Machine, viaSpec.Processors)
	}

	// Distinct machines must not alias in the cache.
	other := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{ID: "het2", Tree: tr, Machine: "1x1.0+3x0.5"}))
	if other.Cached {
		t.Error("different machine spec served from another machine's cache entry")
	}
}

// TestPortfolioMachineField races the portfolio on a heterogeneous
// machine via /v1/portfolio.
func TestPortfolioMachineField(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	tr := testTree(t, 32, 150)
	resp := decodeResponse(t, postJSON(t, s.Handler(), "/v1/portfolio", Request{Tree: tr, Machine: "2x1.0+2x0.5"}))
	if resp.Error != "" {
		t.Fatalf("error: %s", resp.Error)
	}
	if resp.Machine != "2+2x0.5" || resp.Processors != 4 {
		t.Errorf("machine %q p %d, want 2+2x0.5 / 4", resp.Machine, resp.Processors)
	}
	if resp.Winner == nil {
		t.Error("no winner on heterogeneous portfolio")
	}
	if len(resp.Frontier) == 0 {
		t.Error("empty frontier on heterogeneous portfolio")
	}
}

// TestScheduleMachineRejections pins the wire-level validation of the
// machine field.
func TestScheduleMachineRejections(t *testing.T) {
	s := New(Config{MaxProcs: 8})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 33, 20)

	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"malformed", Request{Tree: tr, Machine: "2x-1"}, "COUNTxSPEED"},
		{"conflict", Request{Tree: tr, Machine: "2x1.0+2x0.5", Processors: 3}, "conflicts with machine"},
		{"over maxprocs", Request{Tree: tr, Machine: "9x0.5"}, "exceeds limit"},
		{"empty both", Request{Tree: tr}, "p must be >= 1"},
	}
	for _, c := range cases {
		rec := postJSON(t, h, "/v1/schedule", c.req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, rec.Code)
		}
		if resp := decodeResponse(t, rec); !strings.Contains(resp.Error, c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, resp.Error, c.want)
		}
	}

	// Consistent p + machine is fine.
	rec := postJSON(t, h, "/v1/schedule", Request{Tree: tr, Machine: "2x1.0+2x0.5", Processors: 4})
	if resp := decodeResponse(t, rec); resp.Error != "" {
		t.Errorf("consistent p+machine rejected: %s", resp.Error)
	}
}

// TestForestMachineQueryParam drives a heterogeneous forest run through
// /v1/forest.
func TestForestMachineQueryParam(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()
	trace := forestTraceBody(t, 6)
	rec := post(t, h, "/v1/forest?machine=2x1.0%2b2x0.5&policy=sjf", trace)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"machine":"2+2x0.5"`) {
		t.Errorf("summary does not carry the canonical machine spec:\n%s", body)
	}
	if !strings.Contains(body, `"p":4`) {
		t.Errorf("summary p not derived from machine:\n%s", body)
	}

	// Conflicting p and machine.
	rec = post(t, h, "/v1/forest?p=2&machine=2x1.0%2b2x0.5", forestTraceBody(t, 2))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("conflicting p+machine: status %d, want 400", rec.Code)
	}
	// Malformed machine spec.
	rec = post(t, h, "/v1/forest?machine=0", forestTraceBody(t, 2))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed machine: status %d, want 400", rec.Code)
	}
}
