package service

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"treesched/internal/obs"
	"treesched/internal/sched"
)

// expoSampleRe matches one exposition sample line:
// name{labels} value  or  name value.
var expoSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|\+Inf)$`)

// parseMetricsPage machine-parses a Prometheus text page: every non-comment
// line must match the sample grammar, every sample's base family must have
// exactly one HELP immediately followed by one TYPE, and no (name, labels)
// pair may repeat. Returns the set of sample keys ("name{labels}") → value.
func parseMetricsPage(t *testing.T, page string) map[string]string {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	lastHelp := ""
	samples := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(page, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			fam := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			if helpSeen[fam] {
				t.Errorf("line %d: duplicate HELP for family %s", ln+1, fam)
			}
			helpSeen[fam] = true
			lastHelp = fam
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			fam := parts[0]
			if typeSeen[fam] {
				t.Errorf("line %d: duplicate TYPE for family %s", ln+1, fam)
			}
			if fam != lastHelp {
				t.Errorf("line %d: TYPE %s not adjacent to its HELP (last HELP %s)", ln+1, fam, lastHelp)
			}
			typeSeen[fam] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unexpected comment %q", ln+1, line)
		case line == "":
			t.Errorf("line %d: blank line in exposition", ln+1)
		default:
			mm := expoSampleRe.FindStringSubmatch(line)
			if mm == nil {
				t.Errorf("line %d: sample does not match grammar: %q", ln+1, line)
				continue
			}
			fam := mm[1]
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(fam, suf); base != fam && helpSeen[base] {
					fam = base
					break
				}
			}
			if !helpSeen[fam] || !typeSeen[fam] {
				t.Errorf("line %d: sample %s has no HELP/TYPE header", ln+1, mm[1])
			}
			key := mm[1] + mm[2]
			if _, dup := samples[key]; dup {
				t.Errorf("line %d: duplicate sample %s", ln+1, key)
			}
			samples[key] = mm[3]
		}
	}
	return samples
}

// TestMetricsExpositionParses scrapes /metrics after exercising every
// endpoint and machine-checks the page: grammar, single HELP/TYPE per
// family, no duplicate samples, and presence of the observability families
// this layer added.
func TestMetricsExpositionParses(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 7, 30)

	if rec := postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2}); rec.Code != http.StatusOK {
		t.Fatalf("schedule: %d %s", rec.Code, rec.Body.String())
	}
	if rec := postJSON(t, h, "/v1/portfolio", Request{Tree: tr, Processors: 2}); rec.Code != http.StatusOK {
		t.Fatalf("portfolio: %d %s", rec.Code, rec.Body.String())
	}
	treeText := "2\n0 -1 5 2 3\n1 0 3 1 2\n"
	var batch bytes.Buffer
	fmt.Fprintf(&batch, `{"tree_text":%q,"p":2}`+"\n", treeText)
	if rec := post(t, h, "/v1/schedule/batch", batch.Bytes()); rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body.String())
	}
	freq := httptest.NewRequest(http.MethodPost, "/v1/forest?p=2",
		strings.NewReader(fmt.Sprintf(`{"id":"j1","tree_text":%q}`, treeText)+"\n"))
	frec := httptest.NewRecorder()
	h.ServeHTTP(frec, freq)
	if frec.Code != http.StatusOK {
		t.Fatalf("forest: %d %s", frec.Code, frec.Body.String())
	}

	page := getBody(t, h, "/metrics")
	if ct := "text/plain; version=0.0.4"; !strings.Contains(page, "treeschedd_") {
		t.Fatalf("metrics page empty or wrong (want families, content-type %s):\n%s", ct, page)
	}
	samples := parseMetricsPage(t, page)

	for _, ep := range []string{epSchedule, epBatch, epPortfolio, epForest} {
		if samples[`treeschedd_requests_total{endpoint="`+ep+`"}`] != "1" {
			t.Errorf("requests_total for %s != 1", ep)
		}
		cnt := `treeschedd_request_duration_seconds_count{endpoint="` + ep + `"}`
		if samples[cnt] != "1" {
			t.Errorf("latency histogram count for %s = %q, want 1", ep, samples[cnt])
		}
		if _, ok := samples[`treeschedd_request_duration_seconds_bucket{endpoint="`+ep+`",le="+Inf"}`]; !ok {
			t.Errorf("latency histogram for %s missing +Inf bucket", ep)
		}
	}
	for _, want := range []string{
		"treeschedd_queue_wait_seconds_count",
		"treeschedd_tree_nodes_count",
		"treeschedd_peak_memory_units_count",
		"treeschedd_forest_rounds_total",
		"treeschedd_forest_booking_rejections_total",
		"treeschedd_goroutines",
		"treeschedd_heap_alloc_bytes",
		"treeschedd_gc_pause_seconds_total",
		"treeschedd_errors_total",
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("metrics missing sample %s", want)
		}
	}
	// The portfolio race ran once, so exactly one win landed somewhere and
	// every candidate recorded a duration.
	var wins int
	for k, v := range samples {
		if strings.HasPrefix(k, "treeschedd_portfolio_wins_total{") && v != "0" {
			wins++
		}
		if strings.HasPrefix(k, "treeschedd_candidate_duration_seconds_count{") && v == "0" {
			t.Errorf("candidate duration %s never observed", k)
		}
	}
	if wins != 1 {
		t.Errorf("portfolio win counters: %d non-zero, want exactly 1", wins)
	}
	foundBuild := false
	for k := range samples {
		if strings.HasPrefix(k, "treeschedd_build_info{") &&
			strings.Contains(k, `version="`) && strings.Contains(k, `go="go`) {
			foundBuild = true
		}
	}
	if !foundBuild {
		t.Error("metrics missing treeschedd_build_info{version=...,go=...}")
	}
}

// TestErrorKinds checks that rejections land in the right
// treeschedd_errors_total{kind} child and that the unlabeled total stays
// the sum of the kinds.
func TestErrorKinds(t *testing.T) {
	s := New(Config{Workers: 1, MaxBodyBytes: 512})
	defer s.Close()
	h := s.Handler()

	if rec := post(t, h, "/v1/schedule", []byte("{not json")); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json: %d", rec.Code)
	}
	big := bytes.Repeat([]byte("x"), 1024)
	if rec := post(t, h, "/v1/schedule", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize: %d", rec.Code)
	}

	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	if got := samples[`treeschedd_errors_total{kind="decode"}`]; got != "1" {
		t.Errorf(`errors_total{kind="decode"} = %q, want 1`, got)
	}
	if got := samples[`treeschedd_errors_total{kind="limit"}`]; got != "1" {
		t.Errorf(`errors_total{kind="limit"} = %q, want 1`, got)
	}
	if got := samples["treeschedd_errors_total"]; got != "2" {
		t.Errorf("unlabeled errors_total = %q, want 2 (sum of kinds)", got)
	}
}

// TestTraceOptIn checks the ?trace=1 span tree on both single-request
// endpoints: present only when asked for, stage spans in place, durations
// non-negative, and portfolio candidate spans matching the returned
// candidate set.
func TestTraceOptIn(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 11, 25)

	resp := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{Tree: testTree(t, 12, 25), Processors: 2}))
	if resp.Trace != nil {
		t.Fatal("trace present without ?trace=1")
	}

	resp = decodeResponse(t, postJSON(t, h, "/v1/schedule?trace=1", Request{Tree: tr, Processors: 2}))
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	checkSpanTree(t, resp.Trace, []string{"decode", "hash", "cache", "precompute", "schedule", "evaluate", "encode"})

	presp := decodeResponse(t, postJSON(t, h, "/v1/portfolio?trace=1", Request{Tree: tr, Processors: 2}))
	if presp.Error != "" {
		t.Fatal(presp.Error)
	}
	checkSpanTree(t, presp.Trace, []string{"decode", "hash", "cache", "schedule", "encode"})
	// Every candidate that raced must have its own candidate:<id> span, and
	// every frontier member is a candidate.
	cands := map[string]bool{}
	presp.Trace.Walk(func(n *obs.SpanNode, _ int) {
		if id, ok := strings.CutPrefix(n.Name, "candidate:"); ok {
			cands[id] = true
		}
	})
	if len(cands) != len(presp.Results) {
		t.Errorf("candidate spans %v != %d results", cands, len(presp.Results))
	}
	for _, id := range presp.Frontier {
		if !cands[id.String()] {
			t.Errorf("frontier member %s has no candidate span in %v", id, cands)
		}
	}

	// A cache hit is traced too (the hit's own spans, not the miss's).
	cresp := decodeResponse(t, postJSON(t, h, "/v1/schedule?trace=1", Request{Tree: tr, Processors: 2}))
	if !cresp.Cached {
		t.Fatal("expected cache hit")
	}
	checkSpanTree(t, cresp.Trace, []string{"decode", "hash", "cache", "encode"})

	// Exact candidate spans carry the explored-node count as the value and
	// it matches the explored_nodes field of the result.
	exact := sched.IDExact
	eresp := decodeResponse(t, postJSON(t, h, "/v1/portfolio?trace=1",
		Request{Tree: testTree(t, 17, 10), Processors: 2, Heuristics: []sched.HeuristicID{exact, sched.IDParSubtrees}}))
	if eresp.Error != "" {
		t.Fatal(eresp.Error)
	}
	var wantExplored int64
	for _, r := range eresp.Results {
		if r.Heuristic == exact {
			wantExplored = r.ExploredNodes
		}
	}
	if wantExplored <= 0 {
		t.Fatalf("exact candidate explored %d nodes, want > 0 (tree too easy for the test)", wantExplored)
	}
	var exactVal int64 = -1
	eresp.Trace.Walk(func(n *obs.SpanNode, _ int) {
		if n.Name == "candidate:"+exact.String() {
			exactVal = n.Value
		}
	})
	if exactVal != wantExplored {
		t.Errorf("exact candidate span value = %d, want explored count %d", exactVal, wantExplored)
	}
}

// checkSpanTree asserts the tree is rooted at "request", contains every
// wanted span name, and has non-negative offsets and durations throughout.
func checkSpanTree(t *testing.T, root *obs.SpanNode, want []string) {
	t.Helper()
	if root == nil {
		t.Fatal("trace missing from response")
	}
	if root.Name != "request" {
		t.Fatalf("root span %q, want request", root.Name)
	}
	seen := map[string]bool{}
	root.Walk(func(n *obs.SpanNode, _ int) {
		seen[n.Name] = true
		if n.StartUS < 0 || n.DurUS < 0 {
			t.Errorf("span %s has negative time: start %v dur %v", n.Name, n.StartUS, n.DurUS)
		}
	})
	for _, name := range want {
		if !seen[name] {
			t.Errorf("trace missing span %q (have %v)", name, seen)
		}
	}
}

// TestTraceBatchAndLogs checks that batch lines are never traced (the
// NDJSON contract has no per-line trace opt-in) and that the structured
// request log carries the request id echoed in X-Request-Id.
func TestTraceBatchAndLogs(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Config{Workers: 1, Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	defer s.Close()
	h := s.Handler()

	rec := post(t, h, "/v1/schedule/batch?trace=1", []byte(`{"tree_text":"1 5 2\n1 3 1 1\n","p":2}`+"\n"))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), `"trace"`) {
		t.Error("batch line unexpectedly traced")
	}
	rid := rec.Header().Get("X-Request-Id")
	if rid == "" {
		t.Fatal("batch response missing X-Request-Id")
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"request_id":"`+rid+`"`) ||
		!strings.Contains(logs, `"endpoint":"/v1/schedule/batch"`) {
		t.Errorf("request log missing id %s or endpoint:\n%s", rid, logs)
	}

	rec = postJSON(t, h, "/v1/schedule", Request{Tree: testTree(t, 3, 10), Processors: 2})
	if got := rec.Header().Get("X-Request-Id"); got == "" || got == rid {
		t.Errorf("schedule request id %q not fresh (batch had %s)", got, rid)
	}
}

// TestDebugHandlerServesPprof checks the opt-in debug mux: pprof plus the
// flight recorder.
func TestDebugHandlerServesPprof(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	dh := s.DebugHandler()
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	dh.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatalf("pprof index: %d\n%s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest(http.MethodGet, "/debug/flight", nil)
	rec = httptest.NewRecorder()
	dh.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"entries"`) {
		t.Fatalf("debug flight: %d\n%s", rec.Code, rec.Body.String())
	}
}
