package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"treesched/internal/resilience"
	"treesched/internal/resilience/chaos"
	"treesched/internal/sched"
)

// mustChaos parses a chaos spec or fails the test.
func mustChaos(tb testing.TB, spec string) *chaos.Injector {
	tb.Helper()
	in, err := chaos.Parse(spec)
	if err != nil {
		tb.Fatalf("chaos spec %q: %v", spec, err)
	}
	return in
}

// sampleValue fetches one sample ("name" or "name{labels}") from a parsed
// metrics page, defaulting to "0" when the sample is absent.
func sampleValue(samples map[string]string, key string) string {
	if v, ok := samples[key]; ok {
		return v
	}
	return "0"
}

func TestConfigResilienceDefaults(t *testing.T) {
	cfg := Config{Workers: 3}.withDefaults()
	if cfg.BatchWriteTimeout != DefaultBatchWriteTimeout {
		t.Errorf("BatchWriteTimeout default = %v, want %v", cfg.BatchWriteTimeout, DefaultBatchWriteTimeout)
	}
	if cfg.QueueDepth != 3*DefaultQueueDepthPerWorker {
		t.Errorf("QueueDepth default = %d, want %d", cfg.QueueDepth, 3*DefaultQueueDepthPerWorker)
	}
	if cfg.QueueTarget != DefaultQueueTarget || cfg.DegradeLight != DefaultDegradeLight ||
		cfg.DegradeHeavy != DefaultDegradeHeavy {
		t.Errorf("queue/ladder defaults wrong: %+v", cfg)
	}
	if cfg.BreakerFailures != DefaultBreakerFailures || cfg.BreakerCooldown != DefaultBreakerCooldown {
		t.Errorf("breaker defaults wrong: %+v", cfg)
	}
	// Explicit values pass through; negatives keep their disable meaning.
	cfg = Config{BatchWriteTimeout: 7 * time.Second, QueueTarget: -1, DegradeLight: -1}.withDefaults()
	if cfg.BatchWriteTimeout != 7*time.Second || cfg.QueueTarget != -1 || cfg.DegradeLight != -1 {
		t.Errorf("explicit resilience config not preserved: %+v", cfg)
	}
	s := New(Config{DegradeLight: -1})
	defer s.Close()
	if s.ladder != nil {
		t.Error("DegradeLight < 0 should disable the ladder")
	}
}

// TestRequestTimeoutHeaderDeadline drives a request into its time budget:
// every worker job sleeps 50ms (chaos latency, probability 1) while the
// X-Timeout-Ms header grants only 10ms, so the post-sleep budget check
// must answer 503 with Retry-After and error kind "deadline".
func TestRequestTimeoutHeaderDeadline(t *testing.T) {
	s := New(Config{Workers: 1, Chaos: mustChaos(t, "seed=1,latency=1:50ms")})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 1, 30)

	body, _ := json.Marshal(Request{Tree: tr, Processors: 2})
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(string(body)))
	req.Header.Set("X-Timeout-Ms", "10")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 deadline response missing Retry-After")
	}
	resp := decodeResponse(t, rec)
	if !strings.Contains(resp.Error, "deadline exceeded") {
		t.Errorf("error = %q, want a deadline message", resp.Error)
	}
	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	if got := sampleValue(samples, `treeschedd_errors_total{kind="deadline"}`); got != "1" {
		t.Errorf(`errors_total{kind="deadline"} = %s, want 1`, got)
	}

	// A malformed header is rejected before any work.
	req = httptest.NewRequest(http.MethodPost, "/v1/schedule", strings.NewReader(string(body)))
	req.Header.Set("X-Timeout-Ms", "soon")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad X-Timeout-Ms: status %d, want 400", rec.Code)
	}
}

// TestTimeoutMSField exercises the wire-level budget: timeout_ms counts
// from request arrival, so a 50ms injected sleep exhausts a 10ms field
// budget even though the field is applied after decode.
func TestTimeoutMSField(t *testing.T) {
	s := New(Config{Workers: 1, Chaos: mustChaos(t, "seed=2,latency=1:50ms")})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 2, 30)

	var raw map[string]any
	b, _ := json.Marshal(Request{Tree: tr, Processors: 2})
	json.Unmarshal(b, &raw)
	raw["timeout_ms"] = 10
	body, _ := json.Marshal(raw)
	rec := post(t, h, "/v1/schedule", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeResponse(t, rec); !strings.Contains(resp.Error, "deadline exceeded") {
		t.Errorf("error = %q, want a deadline message", resp.Error)
	}
}

func TestTimeoutMSNegativeRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	tr := testTree(t, 3, 10)
	var raw map[string]any
	b, _ := json.Marshal(Request{Tree: tr, Processors: 2})
	json.Unmarshal(b, &raw)
	raw["timeout_ms"] = -5
	body, _ := json.Marshal(raw)
	rec := post(t, s.Handler(), "/v1/schedule", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeResponse(t, rec); !strings.Contains(resp.Error, "timeout_ms") {
		t.Errorf("error = %q, want a timeout_ms message", resp.Error)
	}
}

// TestShedQueueFull fills the admission window and checks that the next
// request is shed with 503 + Retry-After, counted in both the admission
// and error families, and that batch lines shed in place as error lines.
func TestShedQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 4, 20)

	// Occupy the only window slot directly; the server under test then
	// sees a full window without any timing games.
	if dec := s.adm.Admit(time.Now().UnixNano(), resilience.PriorityHigh); dec != resilience.Admitted {
		t.Fatalf("setup admit: %v", dec)
	}
	defer s.adm.Done()

	rec := postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if resp := decodeResponse(t, rec); !strings.Contains(resp.Error, "shed") {
		t.Errorf("error = %q, want a shed message", resp.Error)
	}

	// A batch against the full window sheds every line in place.
	line, _ := json.Marshal(Request{ID: "l1", Tree: tr, Processors: 2})
	rec = post(t, h, "/v1/schedule/batch", append(line, '\n'))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d", rec.Code)
	}
	var lineResp Response
	if err := json.Unmarshal([]byte(strings.TrimSpace(rec.Body.String())), &lineResp); err != nil {
		t.Fatalf("batch line not JSON: %v", err)
	}
	if !strings.Contains(lineResp.Error, "shed") || lineResp.ID != "" {
		t.Errorf("batch line = %+v, want a shed error line", lineResp)
	}

	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	if got := sampleValue(samples, `treeschedd_admission_total{decision="shed_queue_full"}`); got != "2" {
		t.Errorf(`admission_total{decision="shed_queue_full"} = %s, want 2`, got)
	}
	if got := sampleValue(samples, `treeschedd_errors_total{kind="shed"}`); got != "2" {
		t.Errorf(`errors_total{kind="shed"} = %s, want 2`, got)
	}
}

// TestOverloadShedsFastAndReadyzDrains is the overload end-to-end: with
// the single worker pinned and the shedder in an overload episode, new
// requests are rejected in bounded time (far under the 50ms budget), the
// rejection is visible in /metrics and /readyz turns 503 so a load
// balancer would drain the node; once the queue drains, /readyz recovers.
func TestOverloadShedsFastAndReadyzDrains(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 5, 20)

	// Pin the worker and hold one window slot, as a stuck job would.
	if dec := s.admit(resilience.PriorityHigh); dec != resilience.Admitted {
		t.Fatalf("setup admit: %v", dec)
	}
	block := make(chan struct{})
	s.submit(func() { <-block })
	// Drive the shedder into an overload episode with two observed
	// dequeue waits far over target, a full interval apart.
	now := time.Now().UnixNano()
	s.adm.Observe(now, time.Second)
	s.adm.Observe(now+int64(10*DefaultQueueTarget), time.Second)
	if !s.adm.Shedding() {
		t.Fatal("shedder not in overload episode after sustained bad waits")
	}

	if rec := getRec(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d during overload, want 503: %s", rec.Code, rec.Body.String())
	}

	start := time.Now()
	rec := postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2})
	shedLatency := time.Since(start)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if shedLatency > 50*time.Millisecond {
		t.Errorf("shed response took %v, want < 50ms", shedLatency)
	}

	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	if got := sampleValue(samples, `treeschedd_admission_total{decision="shed_overload"}`); got != "1" {
		t.Errorf(`admission_total{decision="shed_overload"} = %s, want 1`, got)
	}
	if got := sampleValue(samples, "treeschedd_admission_shedding"); got != "1" {
		t.Errorf("admission_shedding gauge = %s, want 1", got)
	}

	// Drain: release the worker, let the window empty, and feed the
	// shedder one healthy dequeue wait; readiness must recover.
	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.Occupancy() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("admission window did not drain")
		}
		time.Sleep(time.Millisecond)
	}
	s.adm.Observe(time.Now().UnixNano(), 0)
	if s.adm.Shedding() {
		t.Fatal("shedder still in overload episode after a healthy wait")
	}
	if rec := getRec(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz status %d after drain, want 200", rec.Code)
	}
}

func getRec(tb testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	tb.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestReadyzShutdown(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := s.Handler()
	if rec := getRec(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz status %d on a fresh server, want 200", rec.Code)
	}
	s.BeginShutdown()
	rec := getRec(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz status %d after BeginShutdown, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "shutting_down") {
		t.Errorf("/readyz body %q, want shutting_down", rec.Body.String())
	}
}

// TestDegradationLadder drives the ladder with synthetic queue waits and
// checks each rung: top-3 trims the portfolio race, single runs one
// heuristic, both are named in the degraded field, and neither lands in
// the cache.
func TestDegradationLadder(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 6, 40)
	full := decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{Tree: tr, Processors: 2}))
	if full.Error != "" || len(full.Degraded) != 0 {
		t.Fatalf("undegraded portfolio response: %+v", full)
	}
	fullCandidates := len(full.Results)
	if fullCandidates <= 3 {
		t.Fatalf("default portfolio has %d candidates; the ladder test needs > 3", fullCandidates)
	}

	// Step up to top-3: feed smoothed pressure past DegradeLight.
	now := time.Now().UnixNano()
	for i := 0; i < 20 && s.ladder.Level() < resilience.DegradeTop3; i++ {
		now += int64(time.Millisecond)
		s.ladder.Observe(now, 2*DefaultDegradeLight)
	}
	if s.ladder.Level() != resilience.DegradeTop3 {
		t.Fatalf("ladder level %d, want DegradeTop3", s.ladder.Level())
	}
	tr2 := testTree(t, 7, 40)
	resp := decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{Tree: tr2, Processors: 2}))
	if resp.Error != "" {
		t.Fatalf("degraded request failed: %s", resp.Error)
	}
	if len(resp.Results) != 3 {
		t.Errorf("top-3 degraded race ran %d candidates, want 3", len(resp.Results))
	}
	if len(resp.Degraded) != 1 || resp.Degraded[0] != "portfolio_top3" {
		t.Errorf("degraded = %v, want [portfolio_top3]", resp.Degraded)
	}
	if resp.Winner == nil {
		t.Error("degraded response has no winner")
	}

	// Step up to single-heuristic.
	for i := 0; i < 40 && s.ladder.Level() < resilience.DegradeSingle; i++ {
		now += int64(time.Millisecond)
		s.ladder.Observe(now, 2*DefaultDegradeHeavy)
	}
	if s.ladder.Level() != resilience.DegradeSingle {
		t.Fatalf("ladder level %d, want DegradeSingle", s.ladder.Level())
	}
	tr3 := testTree(t, 8, 40)
	resp = decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{Tree: tr3, Processors: 2}))
	if resp.Error != "" {
		t.Fatalf("degraded request failed: %s", resp.Error)
	}
	if len(resp.Results) != 1 {
		t.Errorf("single-heuristic degraded race ran %d candidates, want 1", len(resp.Results))
	}
	if len(resp.Degraded) != 1 || resp.Degraded[0] != "portfolio_single" {
		t.Errorf("degraded = %v, want [portfolio_single]", resp.Degraded)
	}

	// Degraded responses must not poison the cache: replaying the top-3
	// request after recovery must compute the full answer fresh.
	if got := s.cache.len(); got != 1 {
		t.Errorf("cache holds %d entries, want only the full-quality one", got)
	}
	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	if got := sampleValue(samples, `treeschedd_degraded_total{action="portfolio_top3"}`); got != "1" {
		t.Errorf(`degraded_total{action="portfolio_top3"} = %s, want 1`, got)
	}
	if got := sampleValue(samples, `treeschedd_degraded_total{action="portfolio_single"}`); got != "1" {
		t.Errorf(`degraded_total{action="portfolio_single"} = %s, want 1`, got)
	}
}

// TestBreakerSkipsExact trips the Exact candidate's circuit breaker and
// checks that portfolio requests skip the candidate (naming the skip in
// degraded), that an Exact-only selection still runs it, and that the
// breaker state is visible in /metrics.
func TestBreakerSkipsExact(t *testing.T) {
	s := New(Config{Workers: 1, BreakerFailures: 2, BreakerCooldown: time.Hour})
	defer s.Close()
	h := s.Handler()
	// 12 nodes proves within ~6k explored nodes, far inside the default
	// budget, so the Exact-only run below deterministically closes the
	// breaker again.
	tr := testTree(t, 9, 12)

	now := time.Now().UnixNano()
	s.breaker.Record(now, false)
	s.breaker.Record(now, false)
	if s.breaker.State() != resilience.BreakerOpen {
		t.Fatalf("breaker state %d after threshold failures, want open", s.breaker.State())
	}

	resp := decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{
		Tree: tr, Processors: 2,
		Heuristics: []sched.HeuristicID{sched.IDExact, sched.IDParSubtrees, sched.IDParDeepestFirst},
	}))
	if resp.Error != "" {
		t.Fatalf("breaker-degraded request failed: %s", resp.Error)
	}
	if len(resp.Degraded) != 1 || resp.Degraded[0] != "exact_breaker" {
		t.Errorf("degraded = %v, want [exact_breaker]", resp.Degraded)
	}
	for _, r := range resp.Results {
		if r.Heuristic == sched.IDExact {
			t.Error("Exact candidate ran despite the open breaker")
		}
	}
	if s.cache.len() != 0 {
		t.Error("breaker-degraded response was cached")
	}

	// Exact as the sole selection is never stripped: degrading to nothing
	// would be an error, not a cheaper answer. Its success closes the
	// breaker again.
	resp = decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{
		Tree: tr, Processors: 2, Heuristics: []sched.HeuristicID{sched.IDExact},
	}))
	if resp.Error != "" {
		t.Fatalf("Exact-only request failed: %s", resp.Error)
	}
	if len(resp.Results) != 1 || resp.Results[0].Heuristic != sched.IDExact {
		t.Fatalf("Exact-only results: %+v", resp.Results)
	}
	if !resp.Results[0].Proven {
		t.Fatalf("Exact did not prove the 12-node instance: %+v", resp.Results[0])
	}
	if s.breaker.State() != resilience.BreakerClosed {
		t.Errorf("breaker state %d after a proven Exact run, want closed", s.breaker.State())
	}

	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	if got := sampleValue(samples, `treeschedd_degraded_total{action="exact_breaker"}`); got != "1" {
		t.Errorf(`degraded_total{action="exact_breaker"} = %s, want 1`, got)
	}
	if got := sampleValue(samples, "treeschedd_breaker_opens_total"); got != "1" {
		t.Errorf("breaker_opens_total = %s, want 1", got)
	}
}

// TestExactBudgetScaledToDeadline gives an Exact portfolio request a
// short (but sufficient) time budget and checks the node budget is scaled
// down, the scaling is named in degraded, and the answer still arrives.
func TestExactBudgetScaledToDeadline(t *testing.T) {
	// A huge configured node budget makes any realistic time budget
	// "short": 5s fits 5000 × ExactNodesPerMilli = 2.5M of the 10M
	// configured nodes, so the search must be scaled — while the 12-node
	// tree proves after ~6k explored nodes, far inside both budgets even
	// under the race detector.
	s := New(Config{Workers: 1, ExactNodes: 10_000_000})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 9, 12)

	body, _ := json.Marshal(Request{Tree: tr, Processors: 2,
		Heuristics: []sched.HeuristicID{sched.IDExact, sched.IDParSubtrees}})
	req := httptest.NewRequest(http.MethodPost, "/v1/portfolio", strings.NewReader(string(body)))
	req.Header.Set("X-Timeout-Ms", "5000")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Error != "" {
		t.Fatalf("scaled request failed: %s", resp.Error)
	}
	found := false
	for _, d := range resp.Degraded {
		if d == "exact_scaled" {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded = %v, want exact_scaled", resp.Degraded)
	}
	if s.cache.len() != 0 {
		t.Error("budget-scaled response was cached")
	}
}
