package service

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"treesched/internal/obs"
)

// An SLO is a per-endpoint service-level objective: at least Objective of
// countable requests must be good, where a request is bad when it fails
// server-side (status >= 500) or — when Latency is set — succeeds slower
// than Latency. Client errors (4xx) count neither way: a client sending
// garbage must not burn the server's error budget.
type SLO struct {
	// Endpoint is the path the objective applies to, e.g. "/v1/schedule".
	Endpoint string
	// Latency is the good-request latency threshold; 0 disables the
	// latency criterion (availability-only SLO).
	Latency time.Duration
	// Objective is the target good fraction in (0, 1), e.g. 0.999.
	Objective float64
}

// ParseSLO parses the flag form "endpoint:latency:objective", e.g.
// "/v1/schedule:250ms:99.9". The latency is a Go duration ("0" disables
// the latency criterion); the objective is a percentage when > 1 (99.9)
// and a fraction otherwise (0.999).
func ParseSLO(s string) (SLO, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return SLO{}, fmt.Errorf("bad slo %q (want endpoint:latency:objective, e.g. /v1/schedule:250ms:99.9)", s)
	}
	rest, objStr := s[:i], s[i+1:]
	j := strings.LastIndexByte(rest, ':')
	if j < 0 {
		return SLO{}, fmt.Errorf("bad slo %q (want endpoint:latency:objective, e.g. /v1/schedule:250ms:99.9)", s)
	}
	ep, latStr := rest[:j], rest[j+1:]
	if ep == "" || !strings.HasPrefix(ep, "/") {
		return SLO{}, fmt.Errorf("bad slo endpoint %q (want a path like /v1/schedule)", ep)
	}
	var lat time.Duration
	if latStr != "0" && latStr != "" {
		var err error
		lat, err = time.ParseDuration(latStr)
		if err != nil || lat < 0 {
			return SLO{}, fmt.Errorf("bad slo latency %q: want a duration like 250ms", latStr)
		}
	}
	obj, err := strconv.ParseFloat(objStr, 64)
	if err != nil {
		return SLO{}, fmt.Errorf("bad slo objective %q: %v", objStr, err)
	}
	if obj > 1 {
		// "99.9" means 99.9%. Round away the division artifact so the
		// objective gauge exports 0.999, not 0.9990000000000001.
		obj = math.Round(obj/100*1e12) / 1e12
	}
	if !(obj > 0 && obj < 1) {
		return SLO{}, fmt.Errorf("bad slo objective %q (want a fraction in (0,1) or a percentage in (0,100))", objStr)
	}
	return SLO{Endpoint: ep, Latency: lat, Objective: obj}, nil
}

// String renders the SLO in its flag form.
func (o SLO) String() string {
	return fmt.Sprintf("%s:%s:%g", o.Endpoint, o.Latency, o.Objective*100)
}

// Burn-rate windows. The short window reacts fast, the long one filters
// blips: /healthz reports an SLO as burning only when both exceed 1
// (the multiwindow alert pattern).
const (
	sloShortWindow = 5 * time.Minute
	sloLongWindow  = time.Hour
)

// sloState is one SLO's runtime: the multi-window good/bad ring plus the
// pre-resolved cumulative counters. The record path is lock-free.
type sloState struct {
	slo   SLO
	ratio *obs.WindowedRatio
	total *obs.Counter
	bad   *obs.Counter
}

// record classifies one finished request against the objective.
func (st *sloState) record(status int, elapsed time.Duration) {
	if status >= 400 && status < 500 {
		return // client errors are excluded from the budget
	}
	bad := status >= 500 || (st.slo.Latency > 0 && elapsed > st.slo.Latency)
	st.ratio.Record(bad, time.Now().UnixNano())
	st.total.Inc()
	if bad {
		st.bad.Inc()
	}
}

// burning reports the multi-window burn rates and whether the SLO is
// actively burning (both windows above rate 1, i.e. spending budget
// faster than the objective allows).
func (st *sloState) burning(nowNS int64) (short, long float64, burning bool) {
	short = st.ratio.BurnRate(sloShortWindow, st.slo.Objective, nowNS)
	long = st.ratio.BurnRate(sloLongWindow, st.slo.Objective, nowNS)
	return short, long, short > 1 && long > 1
}

// sloHealth is one SLO's row in the /healthz report.
type sloHealth struct {
	Endpoint   string  `json:"endpoint"`
	Objective  float64 `json:"objective"`
	LatencyMS  float64 `json:"latency_threshold_ms,omitempty"`
	BurnRate5m float64 `json:"burn_rate_5m"`
	BurnRate1h float64 `json:"burn_rate_1h"`
	Burning    bool    `json:"burning"`
}

// newSLOStates builds the per-endpoint states and registers the SLO
// metric families on reg: cumulative request/bad counters, the constant
// objective and threshold gauges, and the live multi-window burn rates.
// The WindowedRatio ring (30s × 128 buckets = 64 min) covers the long
// window with slack.
func newSLOStates(slos []SLO, reg *obs.Registry) map[string]*sloState {
	if len(slos) == 0 {
		return nil
	}
	states := make(map[string]*sloState, len(slos))
	total := obs.NewCounterVec("treeschedd_slo_requests_total",
		"Requests counted against an SLO (4xx excluded).", "endpoint", false)
	bad := obs.NewCounterVec("treeschedd_slo_bad_total",
		"SLO-bad requests: 5xx, or slower than the latency threshold.", "endpoint", false)
	objective := obs.NewFuncGauges("treeschedd_slo_objective",
		"Configured SLO target (good fraction).")
	threshold := obs.NewFuncGauges("treeschedd_slo_latency_threshold_seconds",
		"Configured good-latency threshold (0 = availability-only SLO).")
	burn := obs.NewFuncGauges("treeschedd_slo_burn_rate",
		"Error-budget burn rate over the trailing window (>1 = burning).")
	ordered := append([]SLO(nil), slos...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Endpoint < ordered[b].Endpoint })
	for _, slo := range ordered {
		st := &sloState{
			slo:   slo,
			ratio: obs.NewWindowedRatio(30*time.Second, 128),
			total: total.With(slo.Endpoint),
			bad:   bad.With(slo.Endpoint),
		}
		states[slo.Endpoint] = st
		epLabel := [2]string{"endpoint", slo.Endpoint}
		obj, lat := slo.Objective, slo.Latency.Seconds()
		objective.Add([][2]string{epLabel}, func() float64 { return obj })
		threshold.Add([][2]string{epLabel}, func() float64 { return lat })
		for _, w := range []struct {
			name string
			d    time.Duration
		}{{"5m", sloShortWindow}, {"1h", sloLongWindow}} {
			win := w
			burn.Add([][2]string{epLabel, {"window", win.name}}, func() float64 {
				return st.ratio.BurnRate(win.d, obj, time.Now().UnixNano())
			})
		}
	}
	reg.Register(total, bad, objective, threshold, burn)
	return states
}
