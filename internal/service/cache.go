package service

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used response cache, keyed
// by the canonical tree hash plus scheduling parameters (see cacheKey).
// Cached *Response values are shared between hits and must be treated as
// immutable by all readers.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *Response
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

func (c *lruCache) add(key string, resp *Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).resp = resp
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, resp: resp})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge empties the cache. Only the chaos injector's eviction-storm fault
// calls it; production paths never drop entries wholesale.
func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}
