package service

import (
	"net/http"
	"runtime"
	"strconv"
	"testing"

	"treesched/internal/obs"
	"treesched/internal/sched"
)

// readPcacheMetrics scrapes the four treeschedd_precompute_cache_*
// families as integers.
func readPcacheMetrics(t *testing.T, h http.Handler) (hits, misses, evictions, bytes int) {
	t.Helper()
	samples := parseMetricsPage(t, getBody(t, h, "/metrics"))
	atoi := func(key string) int {
		n, err := strconv.Atoi(sampleValue(samples, key))
		if err != nil {
			t.Fatalf("sample %s: %v", key, err)
		}
		return n
	}
	return atoi("treeschedd_precompute_cache_hits_total"),
		atoi("treeschedd_precompute_cache_misses_total"),
		atoi("treeschedd_precompute_cache_evictions_total"),
		atoi("treeschedd_precompute_cache_bytes")
}

// TestPrecomputeCacheHeaderAndMetrics drives the cross-request Precompute
// cache through its client-visible surfaces: the X-Precompute-Cache debug
// header (miss on a first tree, hit when the same tree returns under
// different parameters, absent on response-cache hits) and the four
// /metrics families.
func TestPrecomputeCacheHeaderAndMetrics(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 21, 40)

	// First sight of the tree: the per-tree context is built and cached.
	rec := postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2})
	if resp := decodeResponse(t, rec); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if got := rec.Header().Get("X-Precompute-Cache"); got != "miss" {
		t.Fatalf("first request header = %q, want miss", got)
	}

	// Same tree, different p: a different response-cache entry, but the
	// p-independent Precompute is shared.
	rec = postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 4})
	resp := decodeResponse(t, rec)
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if resp.Cached {
		t.Fatal("p=4 request unexpectedly hit the response cache")
	}
	if got := rec.Header().Get("X-Precompute-Cache"); got != "hit" {
		t.Fatalf("repeat-tree header = %q, want hit", got)
	}

	// An identical repeat is a response-cache hit: no scheduling ran, so
	// the debug header is absent.
	rec = postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2})
	if resp := decodeResponse(t, rec); !resp.Cached {
		t.Fatal("identical repeat missed the response cache")
	}
	if got := rec.Header().Get("X-Precompute-Cache"); got != "" {
		t.Fatalf("response-cache hit carries X-Precompute-Cache %q, want absent", got)
	}

	// A heterogeneous machine keys its own entry: same tree, new miss.
	rec = postJSON(t, h, "/v1/schedule", Request{Tree: tr, Machine: "2x1.0+2x0.5"})
	if resp := decodeResponse(t, rec); resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if got := rec.Header().Get("X-Precompute-Cache"); got != "miss" {
		t.Fatalf("heterogeneous first-sight header = %q, want miss", got)
	}

	hits, misses, evictions, bytes := readPcacheMetrics(t, h)
	if hits != 1 || misses != 2 || evictions != 0 {
		t.Errorf("pcache counters = %d hits, %d misses, %d evictions; want 1, 2, 0",
			hits, misses, evictions)
	}
	if bytes <= 0 {
		t.Errorf("treeschedd_precompute_cache_bytes = %d, want > 0", bytes)
	}
}

// TestPrecomputeCachedSpan checks the flight-trace surface: a Precompute
// cache hit replaces the "precompute" stage span with a
// "precompute_cached" span carrying value 1.
func TestPrecomputeCachedSpan(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 22, 30)

	resp := decodeResponse(t, postJSON(t, h, "/v1/schedule?trace=1", Request{Tree: tr, Processors: 2}))
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	checkSpanTree(t, resp.Trace, []string{"precompute"})

	resp = decodeResponse(t, postJSON(t, h, "/v1/schedule?trace=1", Request{Tree: tr, Processors: 4}))
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	checkSpanTree(t, resp.Trace, []string{"precompute_cached"})
	var val int64 = -1
	seenMiss := false
	resp.Trace.Walk(func(n *obs.SpanNode, _ int) {
		if n.Name == "precompute_cached" {
			val = n.Value
		}
		if n.Name == "precompute" {
			seenMiss = true
		}
	})
	if val != 1 {
		t.Errorf("precompute_cached span value = %d, want 1", val)
	}
	if seenMiss {
		t.Error("hit trace still contains a precompute (miss) span")
	}
}

// TestPrecomputeCacheDisabled pins the negative-budget convention: no
// header, no lookups, zeroed families.
func TestPrecomputeCacheDisabled(t *testing.T) {
	s := New(Config{Workers: 1, PrecomputeCacheBytes: -1})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 23, 25)

	for i := 0; i < 2; i++ {
		rec := postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 2 + i})
		if resp := decodeResponse(t, rec); resp.Error != "" {
			t.Fatal(resp.Error)
		}
		if got := rec.Header().Get("X-Precompute-Cache"); got != "" {
			t.Fatalf("request %d: header %q with the cache disabled", i, got)
		}
	}
	hits, misses, _, bytes := readPcacheMetrics(t, h)
	if hits != 0 || misses != 0 || bytes != 0 {
		t.Errorf("disabled cache reports %d hits, %d misses, %d bytes; want zeros", hits, misses, bytes)
	}
}

// TestPartitionsWireField checks the partitions request field end to end:
// accepted and keyed separately from the sequential entry, validated
// against the server cap, and answering with a valid ParInnerFirst result.
func TestPartitionsWireField(t *testing.T) {
	s := New(Config{Workers: 2, MaxPartitions: 8})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 24, 200)
	ids := []sched.HeuristicID{sched.IDParInnerFirst}

	seq := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 4, Heuristics: ids}))
	if seq.Error != "" {
		t.Fatal(seq.Error)
	}
	part := decodeResponse(t, postJSON(t, h, "/v1/schedule",
		Request{Tree: tr, Processors: 4, Heuristics: ids, Partitions: 4}))
	if part.Error != "" {
		t.Fatal(part.Error)
	}
	if part.Cached {
		t.Fatal("partitions=4 aliased the sequential cache entry")
	}
	if r := part.Results[0]; r.Error != "" || r.Makespan <= 0 || r.PeakMemory <= 0 {
		t.Fatalf("partitioned result not runnable: %+v", r)
	}

	// partitions 1 is the sequential scheduler: same cache entry, same
	// answer.
	one := decodeResponse(t, postJSON(t, h, "/v1/schedule",
		Request{Tree: tr, Processors: 4, Heuristics: ids, Partitions: 1}))
	if !one.Cached {
		t.Error("partitions=1 did not alias the sequential cache entry")
	}
	if one.Results[0].Makespan != seq.Results[0].Makespan {
		t.Errorf("partitions=1 makespan %g != sequential %g", one.Results[0].Makespan, seq.Results[0].Makespan)
	}

	// A repeat of the partitioned request hits its own entry.
	again := decodeResponse(t, postJSON(t, h, "/v1/schedule",
		Request{Tree: tr, Processors: 4, Heuristics: ids, Partitions: 4}))
	if !again.Cached || again.Results[0].Makespan != part.Results[0].Makespan {
		t.Errorf("partitioned repeat: cached=%v makespan %g, want cached repeat of %g",
			again.Cached, again.Results[0].Makespan, part.Results[0].Makespan)
	}

	// Validation: negative and over-cap partition counts are rejected
	// before any scheduling.
	for _, bad := range []int{-1, 9} {
		rec := postJSON(t, h, "/v1/schedule", Request{Tree: tr, Processors: 4, Partitions: bad})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("partitions=%d answered %d, want 400", bad, rec.Code)
		}
	}
}

// TestChaosPrecomputeEvictionStorm extends the eviction-storm chaos class
// to the Precompute cache: with evict=1 both caches are purged before
// every lookup, every response is computed fresh from a rebuilt context,
// and the survivors stay byte-identical to the unfaulted run.
func TestChaosPrecomputeEvictionStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	bs := New(chaosServerConfig(t, ""))
	baseline := chaosWorkload(t, bs.Handler())
	bs.Close()

	s := New(chaosServerConfig(t, "seed=15,evict=1"))
	h := s.Handler()
	got := chaosWorkload(t, h)
	for i, resp := range got {
		if resp.Error != "" {
			t.Errorf("slot %d failed under eviction chaos: %s", i, resp.Error)
		}
	}
	assertSuccessesIdentical(t, baseline, got)
	st := s.pcache.Stats()
	if st.Evictions == 0 {
		t.Error("evict=1 storm evicted nothing from the Precompute cache")
	}
	if st.Hits != 0 {
		// Every request purges before its own lookup, so the workload's
		// sequential requests can never observe a hit; only concurrently
		// pipelined batch lines could, and the workload has one batch whose
		// trees are all distinct.
		t.Errorf("Precompute cache reports %d hits under evict=1, want 0", st.Hits)
	}
	s.Close()
	waitGoroutineBaseline(t, base)
}
