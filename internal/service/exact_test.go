package service

import (
	"net/http"
	"reflect"
	"testing"

	"treesched/internal/portfolio"
	"treesched/internal/sched"
)

// TestPortfolioExactCandidate submits "Exact" alongside the default
// candidates: the wire response must carry the candidate with its
// proven/explored_nodes fields, and a proven optimum must win under the
// defaulted min_makespan objective.
func TestPortfolioExactCandidate(t *testing.T) {
	s := New(Config{ExactNodes: 50_000})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 13, 20) // small enough for the 64-node solver limit

	ids := append(portfolio.DefaultCandidates(), sched.IDExact)
	rec := postJSON(t, h, "/v1/portfolio", Request{ID: "ex-1", Tree: tr, Processors: 2, Heuristics: ids})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeResponse(t, rec)
	if resp.Error != "" {
		t.Fatalf("unexpected error: %s", resp.Error)
	}
	if len(resp.Results) != len(ids) {
		t.Fatalf("%d results, want %d", len(resp.Results), len(ids))
	}
	var ex *HeuristicResult
	for i := range resp.Results {
		r := &resp.Results[i]
		if r.Heuristic == sched.IDExact {
			ex = r
		} else if r.Proven || r.ExploredNodes != 0 {
			t.Errorf("%v carries exact-only wire fields: %+v", r.Heuristic, r)
		}
	}
	if ex == nil {
		t.Fatal("no Exact result on the wire")
	}
	if ex.Error != "" {
		t.Fatalf("Exact failed: %s", ex.Error)
	}
	if ex.Proven {
		if resp.Winner == nil {
			t.Fatal("no winner")
		}
		for _, r := range resp.Results {
			if r.Error == "" && r.Makespan < ex.Makespan {
				t.Errorf("%v makespan %g beats the proven optimum %g", r.Heuristic, r.Makespan, ex.Makespan)
			}
		}
	}

	// Identical repeat: cache-served and byte-identical, exact stats
	// included — the node budget is a server Config knob, not wire state,
	// so the cache can never serve a result computed under a different
	// budget.
	resp2 := decodeResponse(t, postJSON(t, h, "/v1/portfolio",
		Request{ID: "ex-2", Tree: tr, Processors: 2, Heuristics: ids}))
	if !resp2.Cached {
		t.Fatal("repeat not cache-served")
	}
	if !reflect.DeepEqual(resp.Results, resp2.Results) {
		t.Fatal("cached exact results differ from computed ones")
	}
}

// TestScheduleExactTriggersPortfolio: naming Exact on the plain schedule
// endpoint must route through the portfolio path (like Auto), defaulting
// the objective to min_makespan.
func TestScheduleExactTriggersPortfolio(t *testing.T) {
	s := New(Config{ExactNodes: 50_000})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 17, 16)

	resp := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{
		Tree: tr, Processors: 2,
		Heuristics: []sched.HeuristicID{sched.IDParSubtrees, sched.IDExact},
	}))
	if resp.Error != "" {
		t.Fatalf("Exact schedule request failed: %s", resp.Error)
	}
	if len(resp.Results) != 2 || resp.Winner == nil || len(resp.Frontier) == 0 {
		t.Fatalf("Exact did not produce a portfolio response: %+v", resp)
	}
	found := false
	for _, r := range resp.Results {
		if r.Heuristic == sched.IDExact {
			found = true
			if r.Error != "" {
				t.Errorf("Exact failed: %s", r.Error)
			}
		}
	}
	if !found {
		t.Fatal("Exact missing from results")
	}

	// Exact alone must also work — the portfolio layer must not splice
	// the default candidates back in.
	resp2 := decodeResponse(t, postJSON(t, h, "/v1/schedule", Request{
		Tree: tr, Processors: 2, Heuristics: []sched.HeuristicID{sched.IDExact},
	}))
	if resp2.Error != "" {
		t.Fatalf("only-Exact request failed: %s", resp2.Error)
	}
	if len(resp2.Results) != 1 || resp2.Results[0].Heuristic != sched.IDExact {
		t.Fatalf("only-Exact results = %+v, want a single Exact entry", resp2.Results)
	}
}

// TestScheduleExactTooLarge: trees beyond the solver limit fail the Exact
// candidate but must not take down the rest of the race.
func TestScheduleExactTooLarge(t *testing.T) {
	s := New(Config{ExactNodes: 50_000})
	defer s.Close()
	h := s.Handler()
	tr := testTree(t, 19, 120) // > 64 nodes

	resp := decodeResponse(t, postJSON(t, h, "/v1/portfolio", Request{
		Tree: tr, Processors: 2,
		Heuristics: []sched.HeuristicID{sched.IDParSubtrees, sched.IDExact},
	}))
	if resp.Error != "" {
		t.Fatalf("request-level error: %s", resp.Error)
	}
	var exErr, psErr string
	for _, r := range resp.Results {
		switch r.Heuristic {
		case sched.IDExact:
			exErr = r.Error
		case sched.IDParSubtrees:
			psErr = r.Error
		}
	}
	if exErr == "" {
		t.Error("Exact accepted a tree beyond the solver limit")
	}
	if psErr != "" {
		t.Errorf("ParSubtrees infected by the Exact failure: %s", psErr)
	}
	if resp.Winner == nil {
		t.Error("no winner despite a healthy candidate")
	}
}
