package service

import (
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"treesched/internal/obs"
	"treesched/internal/resilience"
	"treesched/internal/sched"
)

// Error kinds for the treeschedd_errors_total{kind} family. The unlabeled
// total is still exposed (sum of all kinds), so dashboards keyed on the
// bare counter keep working.
const (
	errKindDecode    = "decode"    // malformed JSON, invalid trees, bad parameters
	errKindLimit     = "limit"     // body/tree/trace size limits exceeded
	errKindCancelled = "cancelled" // client gone before or during scheduling
	errKindInternal  = "internal"  // panics and engine invariant failures
	errKindDeadline  = "deadline"  // request time budget exhausted
	errKindShed      = "shed"      // rejected by the admission controller
)

// serverMetrics is the service's metric set, built on the obs registry so
// every family reaches /metrics through one exposition writer. The record
// paths touch only pre-resolved children — atomic arithmetic, no maps, no
// allocation; per-heuristic children (wins, candidate durations) resolve
// through an RWMutex read lock on the portfolio path only.
type serverMetrics struct {
	reg *obs.Registry

	requests                                       *obs.CounterVec
	reqSchedule, reqBatch, reqPortfolio, reqForest *obs.Counter

	forestJobs, forestRejected    *obs.Counter
	forestRounds, forestBookRej   *obs.Counter
	trees, cacheHits, cacheMisses *obs.Counter

	errors                                         *obs.CounterVec
	errDecode, errLimit, errCancelled, errInternal *obs.Counter
	errDeadline, errShed                           *obs.Counter

	// admDecisions is indexed by resilience.Decision; degraded children
	// count ladder/breaker/budget degradations by action.
	admission                                *obs.CounterVec
	admDecisions                             [3]*obs.Counter
	degraded                                 *obs.CounterVec
	degTop3, degSingle, degBreaker, degScale *obs.Counter

	inflight atomic.Int64

	latency                                        *obs.HistogramVec
	latSchedule, latBatch, latPortfolio, latForest *obs.Histogram
	treeNodes, peakMemory, queueWait               *obs.Histogram

	wins    *obs.CounterVec
	candDur *obs.HistogramVec

	// flight is the tail-sampling ring behind GET /debug/flight; slos
	// holds one burn-rate tracker per configured endpoint objective.
	flight *obs.FlightRecorder
	slos   map[string]*sloState
}

// Endpoint paths, used as the label values of per-endpoint families.
const (
	epSchedule  = "/v1/schedule"
	epBatch     = "/v1/schedule/batch"
	epPortfolio = "/v1/portfolio"
	epForest    = "/v1/forest"
)

// newServerMetrics builds and registers every family. Registration order
// is exposition order: the families of the original flat-counter /metrics
// page come first (preserving their names and sample shapes exactly),
// then the histogram, portfolio and runtime families this layer added.
func newServerMetrics(s *Server) *serverMetrics {
	m := &serverMetrics{reg: obs.NewRegistry()}

	m.requests = obs.NewCounterVec("treeschedd_requests_total",
		"Requests received per endpoint.", "endpoint", false)
	m.reqSchedule = m.requests.With(epSchedule)
	m.reqBatch = m.requests.With(epBatch)
	m.reqPortfolio = m.requests.With(epPortfolio)
	m.reqForest = m.requests.With(epForest)

	m.forestJobs = obs.NewCounter("treeschedd_forest_jobs_total",
		"Jobs simulated by forest runs.")
	m.forestRejected = obs.NewCounter("treeschedd_forest_rejected_total",
		"Forest jobs rejected by admission.")
	m.trees = obs.NewCounter("treeschedd_trees_scheduled_total",
		"Trees scheduled (cache misses that ran the heuristics).")
	m.cacheHits = obs.NewCounter("treeschedd_cache_hits_total",
		"Responses served from the LRU cache.")
	m.cacheMisses = obs.NewCounter("treeschedd_cache_misses_total",
		"Cache lookups that missed.")
	cacheRatio := obs.NewGaugeFunc("treeschedd_cache_hit_ratio",
		"Hits / (hits + misses) since start.", func() float64 {
			hits, misses := m.cacheHits.Value(), m.cacheMisses.Value()
			if hits+misses == 0 {
				return 0
			}
			return float64(hits) / float64(hits+misses)
		})
	cacheEntries := obs.NewGaugeFunc("treeschedd_cache_entries",
		"Responses currently cached.", func() float64 {
			if s.cache == nil {
				return 0
			}
			return float64(s.cache.len())
		})
	inflight := obs.NewGaugeFunc("treeschedd_inflight_jobs",
		"Scheduling jobs running or queued on the pool.", func() float64 {
			return float64(m.inflight.Load())
		})

	// Cross-request Precompute cache. The counters read the cache's own
	// atomic-snapshot stats at scrape time (nil-safe: a disabled cache
	// reports zeros), so the request hot path pays nothing for them.
	pcacheStats := func() (st sched.PrecomputeCacheStats) {
		if s.pcache != nil {
			st = s.pcache.Stats()
		}
		return st
	}
	pcHits := obs.NewFuncCounter("treeschedd_precompute_cache_hits_total",
		"Scheduling requests whose per-tree Precompute came from the cross-request cache.",
		func() float64 { return float64(pcacheStats().Hits) })
	pcMisses := obs.NewFuncCounter("treeschedd_precompute_cache_misses_total",
		"Precompute cache lookups that built the per-tree context fresh.",
		func() float64 { return float64(pcacheStats().Misses) })
	pcEvictions := obs.NewFuncCounter("treeschedd_precompute_cache_evictions_total",
		"Precompute cache entries dropped for space (eviction storms included).",
		func() float64 { return float64(pcacheStats().Evictions) })
	pcBytes := obs.NewGaugeFunc("treeschedd_precompute_cache_bytes",
		"Resident bytes of the cross-request Precompute cache.",
		func() float64 { return float64(pcacheStats().Bytes) })

	m.errors = obs.NewCounterVec("treeschedd_errors_total",
		"Rejected requests and failed batch lines, by kind.", "kind", true)
	m.errDecode = m.errors.With(errKindDecode)
	m.errLimit = m.errors.With(errKindLimit)
	m.errCancelled = m.errors.With(errKindCancelled)
	m.errInternal = m.errors.With(errKindInternal)
	m.errDeadline = m.errors.With(errKindDeadline)
	m.errShed = m.errors.With(errKindShed)

	uptime := obs.NewGaugeFunc("treeschedd_uptime_seconds",
		"Seconds since the server started.", func() float64 {
			return time.Since(s.started).Seconds()
		})

	// Durations are recorded in nanoseconds and exposed in seconds:
	// 16 exponential buckets from 100µs to ~107s.
	durBounds := obs.ExpBuckets(100_000, 4, 16)
	m.latency = obs.NewHistogramVec("treeschedd_request_duration_seconds",
		"Request latency per endpoint.", "endpoint", 1e-9, durBounds)
	// Exemplars tie the worst observation per bucket window back to its
	// request id, which GET /debug/flight resolves to a full trace.
	m.latency.EnableExemplars(obs.DefaultExemplarWindow)
	m.latSchedule = m.latency.With(epSchedule)
	m.latBatch = m.latency.With(epBatch)
	m.latPortfolio = m.latency.With(epPortfolio)
	m.latForest = m.latency.With(epForest)
	m.queueWait = obs.NewHistogram("treeschedd_queue_wait_seconds",
		"Time jobs wait for a pool worker.", 1e-9, durBounds)
	m.treeNodes = obs.NewHistogram("treeschedd_tree_nodes",
		"Tree sizes of prepared requests, in nodes.", 1, obs.ExpBuckets(1, 4, 12))
	m.treeNodes.EnableExemplars(obs.DefaultExemplarWindow)
	m.peakMemory = obs.NewHistogram("treeschedd_peak_memory_units",
		"Simulated peak memory of produced schedules, in task-graph memory units.",
		1, obs.ExpBuckets(1, 8, 14))

	m.wins = obs.NewCounterVec("treeschedd_portfolio_wins_total",
		"Portfolio races won, per heuristic.", "heuristic", false)
	m.candDur = obs.NewHistogramVec("treeschedd_candidate_duration_seconds",
		"Per-candidate scheduling time inside portfolio races.", "heuristic",
		1e-9, obs.ExpBuckets(10_000, 4, 14))
	m.forestRounds = obs.NewCounter("treeschedd_forest_rounds_total",
		"Event-loop rounds executed by forest runs.")
	m.forestBookRej = obs.NewCounter("treeschedd_forest_booking_rejections_total",
		"Forest admission attempts deferred by the cross-tree booking invariant.")

	goroutines := obs.NewGaugeFunc("treeschedd_goroutines",
		"Goroutines at scrape time.", func() float64 {
			return float64(runtime.NumGoroutine())
		})
	heap := obs.NewGaugeFunc("treeschedd_heap_alloc_bytes",
		"Heap bytes allocated and in use at scrape time.", func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	gcPause := obs.NewFuncCounter("treeschedd_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.", func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	buildInfo := obs.NewConstGauge("treeschedd_build_info",
		"Build information; the labels carry the values.",
		[][2]string{{"version", buildVersion()}, {"go", runtime.Version()}}, 1)

	m.flight = obs.NewFlightRecorder(s.cfg.FlightSize, s.cfg.FlightSlow, s.cfg.FlightSampleEvery)
	flightSeen := obs.NewFuncCounter("treeschedd_flight_seen_total",
		"Requests offered to the flight recorder.", func() float64 {
			return float64(m.flight.Seen())
		})
	flightKept := obs.NewFuncCounter("treeschedd_flight_kept_total",
		"Requests retained by the flight recorder (errors, slow requests, 1-in-N sample).",
		func() float64 {
			return float64(m.flight.Kept())
		})

	m.admission = obs.NewCounterVec("treeschedd_admission_total",
		"Admission decisions, by outcome (admitted, shed_queue_full, shed_overload).",
		"decision", false)
	for d := resilience.Admitted; d <= resilience.ShedOverload; d++ {
		m.admDecisions[d] = m.admission.With(d.String())
	}
	m.degraded = obs.NewCounterVec("treeschedd_degraded_total",
		"Requests answered degraded, by action taken.", "action", false)
	m.degTop3 = m.degraded.With("portfolio_top3")
	m.degSingle = m.degraded.With("portfolio_single")
	m.degBreaker = m.degraded.With("exact_breaker")
	m.degScale = m.degraded.With("exact_scaled")
	shedding := obs.NewGaugeFunc("treeschedd_admission_shedding",
		"1 while the admission controller is in an overload episode.", func() float64 {
			if s.adm.Shedding() {
				return 1
			}
			return 0
		})
	breakerState := obs.NewGaugeFunc("treeschedd_breaker_state",
		"Exact-candidate circuit breaker state (0 closed, 1 open, 2 half-open).",
		func() float64 {
			return float64(s.breaker.State())
		})
	breakerOpens := obs.NewFuncCounter("treeschedd_breaker_opens_total",
		"Times the Exact-candidate circuit breaker tripped open.", func() float64 {
			return float64(s.breaker.Opens())
		})

	m.reg.Register(
		m.requests, m.forestJobs, m.forestRejected, m.trees,
		m.cacheHits, m.cacheMisses, cacheRatio, cacheEntries,
		pcHits, pcMisses, pcEvictions, pcBytes, inflight,
		m.errors, uptime,
		m.latency, m.queueWait, m.treeNodes, m.peakMemory,
		m.wins, m.candDur, m.forestRounds, m.forestBookRej,
		goroutines, heap, gcPause, buildInfo,
		flightSeen, flightKept,
		m.admission, m.degraded, shedding, breakerState, breakerOpens,
	)
	m.slos = newSLOStates(s.cfg.SLOs, m.reg)
	return m
}

// recordOutcome is the shared end-of-request bookkeeping: the flight
// recorder gets the outcome with its span tree, and the endpoint's SLO
// (when configured) classifies it. tr may be nil (no spans retained).
func (m *serverMetrics) recordOutcome(info obs.FlightInfo, tr *obs.Trace) {
	m.flight.Record(info, tr)
	if st := m.slos[info.Endpoint]; st != nil {
		st.record(info.Status, info.Duration)
	}
}

// flightInfoFor summarizes one finished single-request outcome for the
// flight recorder. resp may be nil (nothing was produced).
func flightInfoFor(rid, endpoint string, status int, elapsed time.Duration, resp *Response) obs.FlightInfo {
	info := obs.FlightInfo{
		RequestID: rid,
		Endpoint:  endpoint,
		Status:    status,
		Duration:  elapsed,
	}
	if resp == nil {
		return info
	}
	info.Error = resp.Error
	info.ErrorKind = resp.errKind
	info.Cached = resp.Cached
	info.Machine = resp.Machine
	info.Nodes = resp.Nodes
	info.Degraded = strings.Join(resp.Degraded, ",")
	switch {
	case resp.Winner != nil:
		info.Heuristic = resp.Winner.String()
	case len(resp.Results) == 1:
		info.Heuristic = resp.Results[0].Heuristic.String()
	}
	return info
}

// buildVersion resolves the module version baked into the binary;
// unversioned source builds report "dev".
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}
