package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics is the server's counter set, exposed in Prometheus text format
// on /metrics. All fields are monotonic counters except inflight.
type metrics struct {
	scheduleRequests  atomic.Int64 // POST /v1/schedule
	batchRequests     atomic.Int64 // POST /v1/schedule/batch
	portfolioRequests atomic.Int64 // POST /v1/portfolio
	forestRequests    atomic.Int64 // POST /v1/forest
	forestJobs        atomic.Int64 // jobs simulated by forest runs
	forestRejected    atomic.Int64 // forest jobs rejected by admission
	trees             atomic.Int64 // trees actually scheduled (cache misses)
	cacheHits         atomic.Int64
	cacheMisses       atomic.Int64
	errors            atomic.Int64 // rejected requests and batch lines
	inflight          atomic.Int64 // jobs currently on or waiting for the pool
}

// write emits the metrics in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, cacheLen int, uptimeSeconds float64) {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# HELP treeschedd_requests_total Requests received per endpoint.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_requests_total counter\n")
	fmt.Fprintf(w, "treeschedd_requests_total{endpoint=\"/v1/schedule\"} %d\n", m.scheduleRequests.Load())
	fmt.Fprintf(w, "treeschedd_requests_total{endpoint=\"/v1/schedule/batch\"} %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "treeschedd_requests_total{endpoint=\"/v1/portfolio\"} %d\n", m.portfolioRequests.Load())
	fmt.Fprintf(w, "treeschedd_requests_total{endpoint=\"/v1/forest\"} %d\n", m.forestRequests.Load())
	fmt.Fprintf(w, "# HELP treeschedd_forest_jobs_total Jobs simulated by forest runs.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_forest_jobs_total counter\n")
	fmt.Fprintf(w, "treeschedd_forest_jobs_total %d\n", m.forestJobs.Load())
	fmt.Fprintf(w, "# HELP treeschedd_forest_rejected_total Forest jobs rejected by admission.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_forest_rejected_total counter\n")
	fmt.Fprintf(w, "treeschedd_forest_rejected_total %d\n", m.forestRejected.Load())
	fmt.Fprintf(w, "# HELP treeschedd_trees_scheduled_total Trees scheduled (cache misses that ran the heuristics).\n")
	fmt.Fprintf(w, "# TYPE treeschedd_trees_scheduled_total counter\n")
	fmt.Fprintf(w, "treeschedd_trees_scheduled_total %d\n", m.trees.Load())
	fmt.Fprintf(w, "# HELP treeschedd_cache_hits_total Responses served from the LRU cache.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_cache_hits_total counter\n")
	fmt.Fprintf(w, "treeschedd_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP treeschedd_cache_misses_total Cache lookups that missed.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_cache_misses_total counter\n")
	fmt.Fprintf(w, "treeschedd_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP treeschedd_cache_hit_ratio Hits / (hits + misses) since start.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "treeschedd_cache_hit_ratio %g\n", ratio)
	fmt.Fprintf(w, "# HELP treeschedd_cache_entries Responses currently cached.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_cache_entries gauge\n")
	fmt.Fprintf(w, "treeschedd_cache_entries %d\n", cacheLen)
	fmt.Fprintf(w, "# HELP treeschedd_inflight_jobs Scheduling jobs running or queued on the pool.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_inflight_jobs gauge\n")
	fmt.Fprintf(w, "treeschedd_inflight_jobs %d\n", m.inflight.Load())
	fmt.Fprintf(w, "# HELP treeschedd_errors_total Rejected requests and failed batch lines.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_errors_total counter\n")
	fmt.Fprintf(w, "treeschedd_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "# HELP treeschedd_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE treeschedd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "treeschedd_uptime_seconds %g\n", uptimeSeconds)
}
