// Package service implements treeschedd, the scheduling-as-a-service HTTP
// layer over the treesched library: clients submit tree-shaped task graphs
// as JSON and receive, per selected heuristic, the makespan, the simulated
// peak memory and the paper's bi-objective lower bounds.
//
// # Endpoints
//
//   - POST /v1/schedule — one JSON Request, one JSON Response.
//   - POST /v1/schedule/batch — newline-delimited JSON (NDJSON): one
//     Request per line, one Response per line, in input order. Lines are
//     pipelined through the worker pool, so arbitrarily long batches
//     stream without being buffered whole. A malformed or invalid line
//     yields an error Response for that line only; a line exceeding
//     Config.MaxBodyBytes cannot be framed past, so it terminates the
//     batch with a final error line noting that the remainder was
//     dropped.
//   - POST /v1/portfolio — one Request whose heuristics (default: the
//     paper's four plus the Sequential baseline) race concurrently over
//     the tree; the Response carries every candidate, the Pareto frontier
//     of (makespan, peak memory), and the winner under the request's
//     objective (default min_makespan). The same portfolio semantics are
//     reachable on /v1/schedule and batch lines via the "objective" field
//     or the "Auto" pseudo-heuristic.
//   - POST /v1/forest — an NDJSON job trace (tree + arrival + weight +
//     per-job objective per line) simulated on one shared machine under a
//     global memory cap by the internal/forest engine: per-job results in
//     trace order followed by a {"summary":...} line. Machine size,
//     admission policy and cap come from query parameters.
//   - GET /healthz — liveness probe with uptime and pool size.
//   - GET /readyz — readiness probe: 503 while the admission controller
//     is shedding or shutdown has begun, 200 otherwise, so a load
//     balancer drains an overloaded node instead of feeding it.
//   - GET /metrics — Prometheus-style text metrics: request counts per
//     endpoint, scheduled-tree count, cache hits/misses and hit ratio,
//     in-flight jobs, errors, admission/degradation/breaker state.
//
// # Shape
//
// Scheduling is CPU-bound, so all scheduling work runs on a bounded worker
// pool (Config.Workers goroutines) rather than on the unbounded HTTP
// handler goroutines; the pool applies backpressure when saturated.
// Results are cached in an LRU keyed by the tree's canonical hash plus all
// scheduling parameters, so a repeated submission is answered without
// rescheduling. Requests are size-limited (Config.MaxBodyBytes,
// Config.MaxNodes) and malformed or oversized payloads are rejected with
// JSON error objects. Responses are deterministic: identical requests
// produce identical result sets whether computed or cached, concurrent or
// not.
//
// # Overload behavior
//
// The service degrades instead of queueing unboundedly (the
// internal/resilience package). Every CPU-bound request passes a bounded
// admission window with CoDel-style queue-delay shedding: when dequeue
// waits exceed Config.QueueTarget for a sustained interval, new arrivals
// are shed with 503 + Retry-After — batch lines first, single requests
// only while the window is still half full. Requests carry a time budget
// (Config.RequestTimeout, the X-Timeout-Ms header, or the per-request
// timeout_ms field — the tightest wins) propagated as a context deadline
// through every stage; an exhausted budget answers 503 with error kind
// "deadline". Under measured pressure, portfolio requests step down a
// degradation ladder (full race → top-3 → single heuristic), the Exact
// candidate is guarded by a circuit breaker, and its node budget is
// scaled to the remaining time budget; every degraded response names what
// was skipped in its "degraded" field and is never cached.
package service

import (
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"treesched/internal/resilience"
	"treesched/internal/resilience/chaos"
	"treesched/internal/sched"
)

// Defaults for Config fields left zero.
const (
	DefaultCacheSize    = 1024
	DefaultMaxBodyBytes = 8 << 20 // 8 MiB per request (or per batch line)
	DefaultMaxNodes     = 1_000_000
	DefaultMaxProcs     = 4096
	// DefaultPrecomputeCacheBytes budgets the cross-request Precompute
	// cache: repeated trees skip Liu's DP and the priority-rank builds.
	// 64 MiB holds hundreds of mid-size trees or a handful of 10⁵-node
	// ones; entries are admission-weighted so one giant tree cannot flush
	// the working set.
	DefaultPrecomputeCacheBytes = 64 << 20
	// DefaultMaxPartitions caps the wire-level partitions field: the
	// partitioned scheduler caps partitions at p anyway, and a server-side
	// ceiling keeps hostile requests from forcing degenerate
	// decompositions.
	DefaultMaxPartitions = 64
	// DefaultExactNodes is the per-request node budget of the Exact
	// portfolio candidate: large enough to prove optimality on
	// oracle-sized trees, small enough that a pool worker answers in
	// well under a second even when the proof does not close.
	DefaultExactNodes = 200_000
	// Flight recorder defaults: retain up to 256 requests, always keep
	// anything slower than 250ms or failed, and 1 in 16 of the rest.
	DefaultFlightSize        = 256
	DefaultFlightSlow        = 250 * time.Millisecond
	DefaultFlightSampleEvery = 16
	// DefaultBatchWriteTimeout is the per-response-line write deadline of
	// the batch endpoint: generous enough for any reading client, finite
	// so a client that stops reading cannot pin handler goroutines
	// forever.
	DefaultBatchWriteTimeout = 2 * time.Minute
	// DefaultQueueDepthPerWorker sizes the admission window at
	// Workers × this: deep enough that bursts and batch lookahead never
	// brush it, shallow enough that a saturated pool sheds instead of
	// growing an unbounded queue.
	DefaultQueueDepthPerWorker = 16
	// DefaultQueueTarget is the acceptable queue sojourn: dequeue waits
	// persistently above it for twice this long start an overload episode.
	DefaultQueueTarget = 100 * time.Millisecond
	// DefaultDegradeLight and DefaultDegradeHeavy are the smoothed
	// queue-delay thresholds at which portfolio requests step down to the
	// top-3 candidates and to a single heuristic.
	DefaultDegradeLight = 250 * time.Millisecond
	DefaultDegradeHeavy = time.Second
	// DefaultBreakerFailures consecutive Exact budget exhaustions trip the
	// candidate's circuit breaker open for DefaultBreakerCooldown.
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = 10 * time.Second
)

// Goroutine-count floors of the degradation ladder: out-of-band telemetry
// that raises the ladder level even when queue delay looks healthy (e.g.
// handler goroutines piling up on slow clients rather than on the pool).
const (
	goroutineFloorLight = 2048
	goroutineFloorHeavy = 8192
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to a sensible default.
type Config struct {
	// Workers is the size of the scheduling worker pool.
	// Default: GOMAXPROCS.
	Workers int
	// CacheSize is the number of LRU-cached responses. 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// PrecomputeCacheBytes budgets the cross-request Precompute cache in
	// bytes (per-tree scheduling context keyed by canonical tree hash and
	// machine spec). 0 means DefaultPrecomputeCacheBytes; negative
	// disables it.
	PrecomputeCacheBytes int64
	// MaxPartitions rejects requests whose partitions field exceeds this.
	// Default: DefaultMaxPartitions.
	MaxPartitions int
	// MaxBodyBytes limits the size of a single request body, of each
	// line of a batch, and of a whole /v1/forest trace.
	// Default: DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxNodes rejects trees larger than this. Default: DefaultMaxNodes.
	MaxNodes int
	// MaxProcs rejects requests with p above this. Default: DefaultMaxProcs.
	MaxProcs int
	// MaxForestJobs rejects /v1/forest traces with more jobs than this.
	// Default: DefaultMaxForestJobs.
	MaxForestJobs int
	// ExactNodes is the branch-and-bound node budget of the Exact
	// portfolio candidate, per request. A server-side knob rather than a
	// wire field: budgets shape response latency, and a fixed budget
	// keeps the response cache coherent. Default: DefaultExactNodes.
	ExactNodes int64
	// SLOs are the per-endpoint service-level objectives: each one adds
	// the treeschedd_slo_* families for its endpoint and a burn-rate row
	// to /healthz. Empty disables the SLO layer.
	SLOs []SLO
	// FlightSize is the flight recorder's ring capacity in retained
	// requests. Default: DefaultFlightSize.
	FlightSize int
	// FlightSlow is the latency above which the flight recorder always
	// retains a request. Default: DefaultFlightSlow.
	FlightSlow time.Duration
	// FlightSampleEvery keeps one in N fast, successful requests as the
	// recorder's baseline sample (1 keeps everything).
	// Default: DefaultFlightSampleEvery.
	FlightSampleEvery int
	// Logger receives one structured record per request (request id,
	// endpoint, status, duration, error). nil disables request logging.
	// The flight recorder's on-demand dump (GET /debug/flight?dump=1)
	// writes through it too.
	Logger *slog.Logger
	// RequestTimeout is the server-side default time budget per request
	// (each batch line counts as one request). 0 disables the default;
	// clients can only tighten the budget, via the X-Timeout-Ms header or
	// the per-request timeout_ms field. An exhausted budget answers 503
	// with Retry-After and error kind "deadline".
	RequestTimeout time.Duration
	// BatchWriteTimeout is the per-response-line write deadline of the
	// batch endpoint. Default: DefaultBatchWriteTimeout.
	BatchWriteTimeout time.Duration
	// QueueDepth is the admission window: the maximum number of admitted,
	// not-yet-finished jobs before arrivals are shed with 503.
	// Default: DefaultQueueDepthPerWorker × Workers.
	QueueDepth int
	// QueueTarget is the acceptable queue sojourn of the CoDel-style
	// shedder; dequeue waits persistently above it begin an overload
	// episode. 0 means DefaultQueueTarget; negative disables delay-based
	// shedding (the QueueDepth bound still applies).
	QueueTarget time.Duration
	// DegradeLight and DegradeHeavy are the smoothed queue-delay
	// thresholds of the degradation ladder (portfolio full race → top-3 →
	// single heuristic). 0 means the defaults; a negative DegradeLight
	// disables the ladder.
	DegradeLight time.Duration
	DegradeHeavy time.Duration
	// BreakerFailures consecutive Exact budget exhaustions trip the
	// candidate's circuit breaker open for BreakerCooldown; a half-open
	// probe then restores it. Defaults: DefaultBreakerFailures,
	// DefaultBreakerCooldown.
	BreakerFailures int
	BreakerCooldown time.Duration
	// Chaos injects deterministic faults at the worker, batch-line and
	// cache sites (see internal/resilience/chaos). nil disables injection;
	// production runs leave it nil.
	Chaos *chaos.Injector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize == 0 {
		c.CacheSize = DefaultCacheSize
	}
	if c.PrecomputeCacheBytes == 0 {
		c.PrecomputeCacheBytes = DefaultPrecomputeCacheBytes
	}
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = DefaultMaxPartitions
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = DefaultMaxNodes
	}
	if c.MaxProcs <= 0 {
		c.MaxProcs = DefaultMaxProcs
	}
	if c.MaxForestJobs <= 0 {
		c.MaxForestJobs = DefaultMaxForestJobs
	}
	if c.ExactNodes <= 0 {
		c.ExactNodes = DefaultExactNodes
	}
	if c.FlightSize <= 0 {
		c.FlightSize = DefaultFlightSize
	}
	if c.FlightSlow <= 0 {
		c.FlightSlow = DefaultFlightSlow
	}
	if c.FlightSampleEvery <= 0 {
		c.FlightSampleEvery = DefaultFlightSampleEvery
	}
	if c.BatchWriteTimeout <= 0 {
		c.BatchWriteTimeout = DefaultBatchWriteTimeout
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepthPerWorker * c.Workers
	}
	if c.QueueTarget == 0 {
		c.QueueTarget = DefaultQueueTarget
	}
	if c.DegradeLight == 0 {
		c.DegradeLight = DefaultDegradeLight
	}
	if c.DegradeHeavy <= 0 {
		c.DegradeHeavy = DefaultDegradeHeavy
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = DefaultBreakerFailures
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	return c
}

// Server is the treeschedd scheduling service. Create one with New, mount
// Handler on an http.Server, and Close it after the http.Server has shut
// down.
type Server struct {
	cfg   Config
	pool  *pool
	cache *lruCache
	// pcache shares per-tree scheduling context (sched.Precompute) across
	// requests: a repeat tree skips Liu's DP and the rank builds even when
	// the response itself differs (other heuristics, objective, p).
	pcache  *sched.PrecomputeCache
	metrics *serverMetrics
	mux     *http.ServeMux
	started time.Time
	reqSeq  atomic.Uint64 // request-id source
	// raceSlots is the process-wide budget of extra goroutines portfolio
	// races may add on top of their pool worker. Each portfolio job grabs
	// as many free slots as it can use without blocking, so an idle server
	// races at full width while a saturated one degrades to sequential
	// sweeps instead of stacking GOMAXPROCS goroutines per worker.
	raceSlots chan struct{}
	// adm, ladder and breaker are the overload controls (see the package
	// doc's Overload behavior section). ladder is nil when the degradation
	// ladder is disabled.
	adm     *resilience.Admission
	ladder  *resilience.Ladder
	breaker *resilience.Breaker
	// shuttingDown flips /readyz to 503 once BeginShutdown is called, so
	// the load balancer drains the node before http.Server.Shutdown stops
	// accepting.
	shuttingDown atomic.Bool
}

// New builds a Server from cfg (zero value for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		pool:      newPool(cfg.Workers),
		started:   time.Now(),
		raceSlots: make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
	if cfg.CacheSize > 0 {
		s.cache = newLRUCache(cfg.CacheSize)
	}
	if cfg.PrecomputeCacheBytes > 0 {
		s.pcache = sched.NewPrecomputeCache(cfg.PrecomputeCacheBytes)
	}
	target := cfg.QueueTarget
	if target < 0 {
		// Delay-based shedding disabled: an unreachable target means only
		// the QueueDepth bound ever sheds.
		target = math.MaxInt64 / 4
	}
	s.adm = resilience.NewAdmission(resilience.AdmissionConfig{
		Capacity: cfg.QueueDepth,
		Target:   target,
	})
	if cfg.DegradeLight > 0 {
		s.ladder = resilience.NewLadder(resilience.LadderConfig{
			Light: cfg.DegradeLight,
			Heavy: cfg.DegradeHeavy,
			Floor: goroutineFloor,
		})
	}
	s.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Failures: cfg.BreakerFailures,
		Cooldown: cfg.BreakerCooldown,
	})
	s.metrics = newServerMetrics(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /v1/schedule/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/portfolio", s.handlePortfolio)
	s.mux.HandleFunc("POST /v1/forest", s.handleForest)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/flight", s.handleFlight)
	return s
}

// goroutineFloor is the ladder's telemetry floor: goroutines piling up —
// slow clients holding handler goroutines, not pool queueing — raise the
// degradation level even while dequeue waits look healthy.
func goroutineFloor() int {
	switch g := runtime.NumGoroutine(); {
	case g >= goroutineFloorHeavy:
		return resilience.DegradeSingle
	case g >= goroutineFloorLight:
		return resilience.DegradeTop3
	}
	return resilience.DegradeNone
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the worker pool. Call only after all in-flight HTTP
// requests have completed (e.g. after http.Server.Shutdown returned).
func (s *Server) Close() { s.pool.close() }

// BeginShutdown flips /readyz to 503 so the load balancer stops routing
// here. Call it before http.Server.Shutdown: in-flight requests still
// complete, new probes see a draining node.
func (s *Server) BeginShutdown() { s.shuttingDown.Store(true) }

// Workers returns the size of the scheduling pool.
func (s *Server) Workers() int { return s.cfg.Workers }

// MetricFamilies returns the name of every registered metric family, in
// exposition order. treeschedd -list-metrics prints this list; the CI
// drift gate diffs it against a live /metrics scrape so no family can be
// registered without being covered by the end-to-end snapshot.
func (s *Server) MetricFamilies() []string { return s.metrics.reg.FamilyNames() }

// admit runs one admission decision of class pri and counts it in the
// treeschedd_admission_total family. Admitted decisions take a window
// slot, released by the submit wrapper when the job completes — so every
// admit must be followed by exactly one submit.
func (s *Server) admit(pri resilience.Priority) resilience.Decision {
	dec := s.adm.Admit(time.Now().UnixNano(), pri)
	s.metrics.admDecisions[dec].Inc()
	return dec
}

// submit hands f to the worker pool with the standard accounting: the job
// counts as in-flight from enqueue to completion, the time it spent
// waiting for a worker lands in the queue-wait histogram and feeds the
// shedder and the degradation ladder, and the job's admission-window slot
// is released at completion.
func (s *Server) submit(f func()) {
	s.metrics.inflight.Add(1)
	enqueued := time.Now()
	s.pool.submit(func() {
		wait := time.Since(enqueued)
		now := time.Now().UnixNano()
		s.metrics.queueWait.Observe(wait.Nanoseconds())
		s.adm.Observe(now, wait)
		if s.ladder != nil {
			s.ladder.Observe(now, wait)
		}
		defer s.metrics.inflight.Add(-1)
		defer s.adm.Done()
		f()
	})
}

// requestID returns a new process-unique request id for log correlation;
// it is also echoed to the client in the X-Request-Id header.
func (s *Server) requestID() string {
	return "r" + strconv.FormatUint(s.reqSeq.Add(1), 36)
}

// logRequest emits one structured record per request when a logger is
// configured.
func (s *Server) logRequest(rid, endpoint string, status int, elapsed time.Duration, errMsg string) {
	if s.cfg.Logger == nil {
		return
	}
	if errMsg != "" {
		s.cfg.Logger.Warn("request",
			"request_id", rid, "endpoint", endpoint, "status", status,
			"duration", elapsed, "error", errMsg)
		return
	}
	s.cfg.Logger.Info("request",
		"request_id", rid, "endpoint", endpoint, "status", status,
		"duration", elapsed)
}

// DebugHandler returns the opt-in debug mux: the net/http/pprof endpoints
// (/debug/pprof/...) plus the flight recorder (/debug/flight). It is a
// separate handler so debugging can be bound to a loopback-only listener
// while the service handler faces traffic; /debug/flight is additionally
// mounted on the service handler itself, since retained traces are the
// thing /metrics exemplars link to.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	return mux
}
