package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/portfolio"
	"treesched/internal/resilience"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// Request is one scheduling job: a tree, a machine size and an optional
// heuristic selection. Exactly one of Tree and TreeText must be set.
type Request struct {
	// ID is an opaque client tag echoed in the Response; useful for
	// correlating lines of a batch.
	ID string `json:"id,omitempty"`
	// Tree is the task tree in JSON form:
	// {"parent":[-1,0,0],"w":[1,1,1],"n":[0,0,0],"f":[1,2,3]}
	// (parent -1 marks the root; n and f default to zero when omitted).
	Tree *tree.Tree `json:"tree,omitempty"`
	// TreeText is the task tree in the textual treegen format, as an
	// alternative to Tree.
	TreeText string `json:"tree_text,omitempty"`
	// Processors is the machine size p (>= 1). Required unless Machine is
	// set, in which case it must be absent or equal to the machine's
	// processor count.
	Processors int `json:"p"`
	// Machine is an explicit machine spec: a bare processor count ("4")
	// or heterogeneous speed groups ("2x1.0+2x0.5" — 2 unit-speed + 2
	// half-speed processors, the related-machines model). A uniform spec
	// is equivalent to setting p.
	Machine string `json:"machine,omitempty"`
	// Heuristics names the schedulers to run, in output order: any of
	// ParSubtrees, ParSubtreesOptim, ParInnerFirst, ParDeepestFirst,
	// ParInnerFirstArbitrary, Sequential, OptimalSequential, MemCapped,
	// MemCappedBooking, and the pseudo-heuristic Auto (race the portfolio
	// and select by Objective). Empty means the paper's four heuristics —
	// or the default portfolio set when Objective is set or the request
	// arrived on /v1/portfolio.
	Heuristics []sched.HeuristicID `json:"heuristics,omitempty"`
	// MemCapFactor sets the cap of MemCapped/MemCappedBooking to
	// MemCapFactor × M_seq. Required (>= 1) iff a capped heuristic is
	// selected.
	MemCapFactor float64 `json:"mem_cap_factor,omitempty"`
	// Partitions > 1 runs the ParInnerFirst heuristic through the
	// partitioned scheduler: the tree is decomposed into up to Partitions
	// independent subtree work-packages scheduled concurrently and
	// stitched deterministically. 0 and 1 select the exact sequential
	// scheduler; other heuristics ignore the field. Capped server-side by
	// Config.MaxPartitions.
	Partitions int `json:"partitions,omitempty"`
	// Objective switches the request into portfolio mode: the selected
	// heuristics race concurrently and the response carries the Pareto
	// frontier plus the winner under this objective ("min_makespan",
	// "min_memory", "makespan_under_memcap:F", "memory_under_deadline:D",
	// "weighted:A"). Optional on /v1/schedule and batch lines; defaults to
	// min_makespan on /v1/portfolio and when Auto is selected.
	Objective *portfolio.Objective `json:"objective,omitempty"`
	// TimeoutMS tightens this request's time budget to the given number of
	// milliseconds from arrival. It can only shorten the budget the server
	// default (or the X-Timeout-Ms header) already imposes; an exhausted
	// budget answers 503 with error kind "deadline".
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Bounds carries the paper's bi-objective lower bounds for one instance.
type Bounds struct {
	// MakespanLB is max(total work / p, critical path).
	MakespanLB float64 `json:"makespan_lb"`
	// MemorySeq is M_seq, the paper's sequential memory reference: the
	// peak of the memory-optimal sequential postorder. It is near-optimal
	// but not a strict bound — the OptimalSequential heuristic (Liu's
	// exact traversal) can come in below it, i.e. memory_ratio < 1.
	MemorySeq int64 `json:"memory_seq"`
}

// HeuristicResult is the outcome of one heuristic on one tree.
type HeuristicResult struct {
	Heuristic  sched.HeuristicID `json:"heuristic"`
	Makespan   float64           `json:"makespan"`
	PeakMemory int64             `json:"peak_memory"`
	// MakespanRatio is Makespan / Bounds.MakespanLB (0 if the bound is 0).
	MakespanRatio float64 `json:"makespan_ratio"`
	// MemoryRatio is PeakMemory / Bounds.MemorySeq (0 if M_seq is 0).
	MemoryRatio float64 `json:"memory_ratio"`
	// Error is set when this heuristic failed on the instance (the other
	// results are still valid).
	Error string `json:"error,omitempty"`
	// Proven and ExploredNodes report the Exact candidate's search: a
	// proven-optimal makespan versus the best schedule its node budget
	// reached, and how many branch-and-bound nodes it explored. Absent on
	// heuristic results. PrunedNodes counts decision nodes cut by the
	// lower bound and MemoHits those cut by dominance memoization.
	Proven        bool  `json:"proven,omitempty"`
	ExploredNodes int64 `json:"explored_nodes,omitempty"`
	PrunedNodes   int64 `json:"pruned_nodes,omitempty"`
	MemoHits      int64 `json:"memo_hits,omitempty"`
}

// Response is the answer to one Request. In batch mode a line-level
// failure is reported as a Response with only ID, RequestID and Error
// set.
type Response struct {
	ID string `json:"id,omitempty"`
	// RequestID is the server-assigned id of this answer — the
	// X-Request-Id header value, or "<batch-id>.<line>" for batch lines.
	// It keys the flight recorder and /metrics exemplars.
	RequestID  string `json:"request_id,omitempty"`
	TreeHash   string `json:"tree_hash,omitempty"`
	Nodes      int    `json:"nodes,omitempty"`
	Processors int    `json:"p,omitempty"`
	// Machine echoes the canonical machine spec on heterogeneous requests
	// (absent on the uniform machine).
	Machine string            `json:"machine,omitempty"`
	Bounds  *Bounds           `json:"bounds,omitempty"`
	Results []HeuristicResult `json:"results,omitempty"`
	// Objective, Frontier and Winner are set in portfolio mode: Frontier
	// lists the Pareto-optimal heuristics in ascending-makespan order and
	// Winner is the candidate Objective selected (absent when every
	// candidate failed).
	Objective *portfolio.Objective `json:"objective,omitempty"`
	Frontier  []sched.HeuristicID  `json:"frontier,omitempty"`
	Winner    *sched.HeuristicID   `json:"winner,omitempty"`
	// Cached reports that the response was served from the LRU cache.
	Cached bool `json:"cached,omitempty"`
	// Trace is the request's stage span tree, present only when the
	// request opted in via ?trace=1 (or treesched -trace). Traces are
	// never cached: a cache hit reports the hit's own spans.
	Trace *obs.SpanNode `json:"trace,omitempty"`
	// Timeline is the winning (or only) schedule rendered as Chrome
	// Trace Event Format JSON, present only with ?timeline=1. Open it in
	// Perfetto (ui.perfetto.dev) or chrome://tracing. Timeline responses
	// bypass the cache: the timeline is rebuilt per request.
	Timeline json.RawMessage `json:"timeline,omitempty"`
	// Degraded names the quality reductions overload protection applied to
	// this answer, in the order they were taken: "portfolio_top3" or
	// "portfolio_single" (degradation ladder trimmed the race),
	// "exact_breaker" (circuit breaker skipped the Exact candidate),
	// "exact_scaled" (a short time budget shrank the Exact node budget).
	// Absent on full-quality answers; degraded answers are never cached.
	Degraded []string `json:"degraded,omitempty"`
	// Error is set instead of the result fields when the request itself
	// was invalid.
	Error string `json:"error,omitempty"`

	// errKind is Error's metrics classification (decode, limit,
	// cancelled, internal, deadline, shed); the flight recorder records it
	// alongside the message. Not serialized.
	errKind string
	// precompute is the Precompute-cache outcome of the request ("hit" or
	// "miss", empty when the cache is disabled or no scheduling ran);
	// handleOne surfaces it as the X-Precompute-Cache debug header. Like
	// errKind it is stamped per request on the shallow response copy, never
	// on a cached response object. Not serialized.
	precompute string
}

// X-Precompute-Cache header values (Response.precompute).
const (
	pcHit  = "hit"
	pcMiss = "miss"
)

// requestError is an invalid-request failure with an HTTP status.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) *requestError {
	return &requestError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// job is a validated, runnable request: the parsed tree plus the resolved
// scheduling options and the cache key identifying the result. A non-nil
// objective marks a portfolio job (heuristics race concurrently; the
// response carries the frontier and the winner).
type job struct {
	req       Request
	tree      *tree.Tree
	treeHash  string
	opts      sched.Options
	objective *portfolio.Objective
	cacheKey  string
	// pcKey keys the cross-request Precompute cache: the canonical tree
	// hash alone on the uniform machine (the per-tree context is
	// p-independent, so requests at any p share one entry), plus the
	// machine spec on heterogeneous requests.
	pcKey string
	// pcState records the Precompute-cache outcome of this job ("hit",
	// "miss", or empty when the cache is disabled); answerBytes copies it
	// to the response's precompute field.
	pcState string
	// trace is the request's span recorder (always pooled, never nil on
	// the worker path — the flight recorder retains its spans).
	trace *obs.Trace
	// timeline requests a Chrome-trace rendering of the winning
	// schedule; such jobs bypass the response cache.
	timeline bool
}

// prepare validates req against the server limits and resolves it into a
// runnable job. forcePortfolio puts the job in portfolio mode even without
// an explicit objective (the /v1/portfolio endpoint). A non-nil tr records
// the canonical-hash stage.
func (s *Server) prepare(req Request, forcePortfolio bool, tr *obs.Trace) (*job, error) {
	var t *tree.Tree
	switch {
	case req.Tree != nil && req.TreeText != "":
		return nil, badRequest("exactly one of tree and tree_text must be set, got both")
	case req.Tree != nil:
		t = req.Tree
	case req.TreeText != "":
		var err error
		// DecodeMax caps the declared node count before allocation, so a
		// tiny hostile payload cannot demand MaxNodes-independent memory.
		t, err = tree.DecodeMax(strings.NewReader(req.TreeText), s.cfg.MaxNodes)
		if err != nil {
			if errors.Is(err, tree.ErrTooLarge) {
				return nil, &requestError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
			}
			return nil, badRequest("invalid tree_text: %v", err)
		}
	default:
		return nil, badRequest("one of tree and tree_text is required")
	}
	if t.Len() == 0 {
		return nil, badRequest("tree is empty")
	}
	if t.Len() > s.cfg.MaxNodes {
		return nil, &requestError{
			status: http.StatusRequestEntityTooLarge,
			msg:    fmt.Sprintf("tree has %d nodes, limit is %d", t.Len(), s.cfg.MaxNodes),
		}
	}
	p := req.Processors
	var mm *machine.Model
	if req.Machine != "" {
		var err error
		mm, err = machine.ParseSpec(req.Machine)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		if p != 0 && p != mm.P() {
			return nil, badRequest("p=%d conflicts with machine %q (%d processors)", p, req.Machine, mm.P())
		}
		p = mm.P()
		if mm.IsUniform() {
			// A uniform spec is just a processor count: fold it into p so
			// "machine":"4" and "p":4 produce identical responses and share
			// one cache entry.
			mm = nil
		}
	}
	if p < 1 {
		return nil, badRequest("p must be >= 1, got %d", p)
	}
	if p > s.cfg.MaxProcs {
		return nil, badRequest("p=%d exceeds limit %d", p, s.cfg.MaxProcs)
	}
	if req.Partitions < 0 {
		return nil, badRequest("partitions must be >= 0, got %d", req.Partitions)
	}
	if req.Partitions > s.cfg.MaxPartitions {
		return nil, badRequest("partitions=%d exceeds limit %d", req.Partitions, s.cfg.MaxPartitions)
	}
	ids, obj, err := resolveSelection(req.Heuristics, req.Objective, forcePortfolio)
	if err != nil {
		return nil, err
	}
	opts := sched.Options{
		Processors:   p,
		Machine:      mm,
		Heuristics:   ids,
		MemCapFactor: req.MemCapFactor,
		Partitions:   req.Partitions,
	}
	// The Exact pseudo-heuristic is resolved by the portfolio layer, so
	// validation sees the selection exactly as that layer will: with
	// Exact stripped. resolveSelection guarantees obj != nil whenever
	// Exact is selected, so the plain path never has to run it.
	vopts := opts
	if obj != nil {
		vopts.Heuristics = withoutExact(opts.Heuristics)
	}
	if err := vopts.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	hid := tr.Start("hash", obs.RootSpan)
	treeHash := t.CanonicalHash()
	tr.End(hid)
	j := &job{req: req, tree: t, treeHash: treeHash, opts: opts, objective: obj}
	j.cacheKey = cacheKey(j.treeHash, opts, obj)
	j.pcKey = treeHash
	if mm != nil {
		j.pcKey += "|m=" + mm.Spec()
	}
	return j, nil
}

// precomputeFor resolves the job's per-tree scheduling context through the
// cross-request Precompute cache: a hit skips Liu's DP and the rank builds
// entirely and records a "precompute_cached" span (value 1); a miss builds
// the context under the usual "precompute" span and offers it to the
// cache. With the cache disabled the context is built per request, as
// before this layer existed.
func (s *Server) precomputeFor(j *job, tr *obs.Trace) *sched.Precompute {
	if s.pcache != nil {
		if pc, ok := s.pcache.Get(j.pcKey); ok {
			pid := tr.Start("precompute_cached", obs.RootSpan)
			tr.SetValue(pid, 1)
			tr.End(pid)
			j.pcState = pcHit
			return pc
		}
		j.pcState = pcMiss
	}
	pid := tr.Start("precompute", obs.RootSpan)
	pc := sched.NewPrecompute(j.tree)
	tr.End(pid)
	if s.pcache != nil {
		s.pcache.Add(j.pcKey, pc)
	}
	return pc
}

// hasExact reports whether ids selects the Exact pseudo-heuristic.
func hasExact(ids []sched.HeuristicID) bool {
	for _, id := range ids {
		if id == sched.IDExact {
			return true
		}
	}
	return false
}

// resolveSelection turns the wire-level heuristic selection into a
// runnable one: the Auto pseudo-heuristic expands in place into the
// default portfolio candidates (deduplicated), and an objective — explicit,
// implied by Auto, or forced by the /v1/portfolio endpoint — switches the
// job into portfolio mode with min_makespan as the default policy.
func resolveSelection(ids []sched.HeuristicID, obj *portfolio.Objective, forcePortfolio bool) ([]sched.HeuristicID, *portfolio.Objective, error) {
	hasAuto, hasExact := false, false
	for _, id := range ids {
		if id == sched.IDAuto {
			hasAuto = true
		}
		if id == sched.IDExact {
			hasExact = true
		}
	}
	if hasAuto {
		seen := make(map[sched.HeuristicID]bool, len(ids)+len(portfolio.DefaultCandidates()))
		expanded := make([]sched.HeuristicID, 0, len(ids)+len(portfolio.DefaultCandidates()))
		add := func(id sched.HeuristicID) {
			if !seen[id] {
				seen[id] = true
				expanded = append(expanded, id)
			}
		}
		for _, id := range ids {
			if id == sched.IDAuto {
				for _, d := range portfolio.DefaultCandidates() {
					add(d)
				}
			} else {
				add(id)
			}
		}
		ids = expanded
	}
	if obj != nil {
		if err := obj.Validate(); err != nil {
			return nil, nil, badRequest("%v", err)
		}
	} else if hasAuto || hasExact || forcePortfolio {
		// Exact, like Auto, is the portfolio layer's to resolve: its
		// presence switches the job into portfolio mode.
		def := portfolio.MinMakespan()
		obj = &def
	}
	if obj != nil && len(ids) == 0 {
		ids = portfolio.DefaultCandidates()
	}
	return ids, obj, nil
}

// cacheKey identifies a (tree, options, objective) triple. Heuristic order
// matters for the Results order, so the selection is included in request
// order; the objective changes Frontier/Winner, so portfolio responses
// never alias plain ones.
func cacheKey(treeHash string, opts sched.Options, obj *portfolio.Objective) string {
	var b strings.Builder
	b.WriteString(treeHash)
	fmt.Fprintf(&b, "|p=%d", opts.Processors)
	if opts.Machine != nil {
		fmt.Fprintf(&b, "|m=%s", opts.Machine.Spec())
	}
	ids := opts.Heuristics
	if len(ids) == 0 {
		ids = sched.PaperHeuristics()
	}
	b.WriteString("|h=")
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(id.String())
	}
	if needsCapFactor(ids) {
		fmt.Fprintf(&b, "|cap=%g", opts.MemCapFactor)
	}
	// Partitions 0 and 1 are the exact sequential scheduler, so they share
	// the unpartitioned entry; higher counts produce different (valid)
	// schedules and must not alias it.
	if opts.Partitions > 1 {
		fmt.Fprintf(&b, "|parts=%d", opts.Partitions)
	}
	if obj != nil {
		b.WriteString("|obj=")
		b.WriteString(obj.String())
	}
	return b.String()
}

func needsCapFactor(ids []sched.HeuristicID) bool {
	for _, id := range ids {
		// The exact solver caps its search at MemCapFactor × M_seq too,
		// so its responses must not alias across factors.
		if id == sched.IDMemCapped || id == sched.IDMemCappedBooking || id == sched.IDExact {
			return true
		}
	}
	return false
}

// withoutExact strips the Exact pseudo-heuristic from a selection,
// mirroring what portfolio.RunPre does before sched validation.
func withoutExact(ids []sched.HeuristicID) []sched.HeuristicID {
	out := make([]sched.HeuristicID, 0, len(ids))
	for _, id := range ids {
		if id != sched.IDExact {
			out = append(out, id)
		}
	}
	return out
}

// topCandidates is the degradation ladder's trim: the first n non-Exact
// candidates of ids, in selection order (selection order encodes the
// request's preference, and Exact is the most expensive candidate, so it
// is always the first casualty). A selection with no non-Exact candidate
// is returned unchanged — degrading to nothing would be an error, not a
// cheaper answer.
func topCandidates(ids []sched.HeuristicID, n int) []sched.HeuristicID {
	out := make([]sched.HeuristicID, 0, n)
	for _, id := range ids {
		if id == sched.IDExact {
			continue
		}
		out = append(out, id)
		if len(out) == n {
			break
		}
	}
	if len(out) == 0 {
		return ids
	}
	return out
}

// ctxErrResponse classifies a dead request context: an exhausted time
// budget answers 503 (the server was too slow — retryable), a client
// cancellation answers 400 (nobody is listening).
func (s *Server) ctxErrResponse(ctx context.Context, id string) (int, *Response) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.metrics.errDeadline.Inc()
		return http.StatusServiceUnavailable,
			&Response{ID: id, Error: "deadline exceeded: request time budget exhausted", errKind: errKindDeadline}
	}
	s.metrics.errCancelled.Inc()
	return http.StatusBadRequest, &Response{ID: id, Error: "request canceled", errKind: errKindCancelled}
}

// statusFor maps a response produced on the worker path to its HTTP
// status: deadline exhaustion is retryable (503), cancellation is the
// client's doing (400), everything else keeps the 200-with-error-body
// contract of the scheduling endpoints.
func statusFor(resp *Response) int {
	switch resp.errKind {
	case errKindDeadline:
		return http.StatusServiceUnavailable
	case errKindCancelled:
		return http.StatusBadRequest
	}
	return http.StatusOK
}

// safeRun is run with panic containment: on HTTP handler goroutines
// net/http limits a panic's blast radius to one connection, but pool
// workers have no such net, so a latent panic in the scheduling code must
// not take the whole daemon down with every in-flight request.
func (s *Server) safeRun(ctx context.Context, j *job) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.errInternal.Inc()
			resp = &Response{ID: j.req.ID, Error: fmt.Sprintf("internal error: panic during scheduling: %v", r), errKind: errKindInternal}
		}
	}()
	return s.run(ctx, j)
}

// run schedules the job's tree with every selected heuristic. It always
// produces results in selection order, so responses are deterministic.
func (s *Server) run(ctx context.Context, j *job) *Response {
	if j.objective != nil {
		return s.runPortfolio(ctx, j)
	}
	m := j.opts.Model()
	tr := j.trace
	// precomputeFor resolves the request's sched.Precompute — from the
	// cross-request cache on repeat trees, built on this worker otherwise:
	// every heuristic below shares the same traversal, depths and priority
	// rankings (and the pooled scheduler scratch is recycled across
	// requests), so per-request CPU is at most one Liu DP plus the
	// schedules themselves, and zero DPs on a cache hit. A hit's context
	// may be bound to a canonically-equal copy of the request's tree, so
	// everything below schedules pc's tree — the same aliasing the
	// response cache already performs on the canonical hash.
	pc := s.precomputeFor(j, tr)
	t := pc.Tree()
	hs, memSeq, err := j.opts.SelectPre(pc)
	if err != nil { // unreachable: prepare validated the options
		return &Response{ID: j.req.ID, Error: err.Error()}
	}
	bounds := Bounds{
		MakespanLB: sched.MakespanLowerBoundOn(t, m),
		MemorySeq:  memSeq,
	}
	resp := &Response{
		ID:         j.req.ID,
		TreeHash:   j.treeHash,
		Nodes:      t.Len(),
		Processors: m.P(),
		Bounds:     &bounds,
		Results:    make([]HeuristicResult, 0, len(hs)),
	}
	if !m.IsUniform() {
		resp.Machine = m.Spec()
	}
	for _, h := range hs {
		// Stage boundary: a request whose time budget ran out mid-sweep
		// stops here instead of finishing work nobody will wait for.
		if ctx.Err() != nil {
			_, eresp := s.ctxErrResponse(ctx, j.req.ID)
			return eresp
		}
		hr := HeuristicResult{Heuristic: h.ID}
		cid := obs.RootSpan
		if tr != nil {
			cid = tr.Start("candidate:"+h.ID.String(), obs.RootSpan)
		}
		sid := tr.Start("schedule", cid)
		sc, err := h.RunOn(t, m)
		tr.End(sid)
		var mk float64
		var peak int64
		if err == nil {
			// One pooled pass validates and measures the schedule.
			eid := tr.Start("evaluate", cid)
			mk, peak, err = sched.Evaluate(t, sc)
			tr.End(eid)
		}
		tr.End(cid)
		if err != nil {
			hr.Error = err.Error()
		} else {
			hr.Makespan = mk
			hr.PeakMemory = peak
			s.metrics.peakMemory.Observe(peak)
			if bounds.MakespanLB > 0 {
				hr.MakespanRatio = hr.Makespan / bounds.MakespanLB
			}
			if bounds.MemorySeq > 0 {
				hr.MemoryRatio = float64(hr.PeakMemory) / float64(bounds.MemorySeq)
			}
			// The first successful schedule is the one the timeline shows;
			// it is rendered here, before the next heuristic can recycle
			// the pooled schedule scratch.
			if j.timeline && resp.Timeline == nil {
				resp.Timeline = renderTimeline(t, sc, h.ID.String(), memCapOf(j.opts.MemCapFactor, memSeq))
			}
		}
		resp.Results = append(resp.Results, hr)
	}
	return resp
}

// memCapOf resolves the memory-counter cap series of a timeline: the
// capped heuristics' budget factor × M_seq, or 0 (no cap series) when the
// request ran uncapped.
func memCapOf(factor float64, memSeq int64) int64 {
	if factor <= 0 {
		return 0
	}
	return int64(factor * float64(memSeq))
}

// renderTimeline renders sc as Chrome Trace Event Format JSON for the
// Response.Timeline field. A rendering failure drops the timeline rather
// than the response.
func renderTimeline(t *tree.Tree, sc *sched.Schedule, name string, memCap int64) json.RawMessage {
	var buf bytes.Buffer
	if err := sched.WriteChromeTrace(&buf, t, sc, sched.ChromeTraceOptions{Name: name, MemCap: memCap}); err != nil {
		return nil
	}
	return buf.Bytes()
}

// runPortfolio answers a portfolio-mode job: the selected heuristics race
// concurrently, and the response carries every candidate, the Pareto
// frontier and the objective-selected winner. Racing adds goroutines
// beyond the calling pool worker — that is the endpoint's latency win —
// but the extra width comes from the server-wide raceSlots budget
// (GOMAXPROCS slots shared by all portfolio jobs), so concurrent
// portfolio requests on a saturated pool degrade toward sequential
// sweeps instead of stacking GOMAXPROCS goroutines per worker.
func (s *Server) runPortfolio(ctx context.Context, j *job) *Response {
	// Overload degradation, applied before any scheduling work. The ladder
	// trims the race width; the circuit breaker skips the Exact candidate
	// while proofs keep exhausting their budget; a short remaining time
	// budget shrinks the Exact node budget so the search fits the
	// deadline. Each action is named in the response's degraded field, and
	// degraded responses are never cached (answerJob), so the cache stays
	// canonical.
	opts := j.opts
	var degraded []string
	if s.ladder != nil {
		switch s.ladder.Level() {
		case resilience.DegradeTop3:
			if trimmed := topCandidates(opts.Heuristics, 3); len(trimmed) < len(opts.Heuristics) {
				opts.Heuristics = trimmed
				degraded = append(degraded, "portfolio_top3")
				s.metrics.degTop3.Inc()
			}
		case resilience.DegradeSingle:
			if trimmed := topCandidates(opts.Heuristics, 1); len(trimmed) < len(opts.Heuristics) {
				opts.Heuristics = trimmed
				degraded = append(degraded, "portfolio_single")
				s.metrics.degSingle.Inc()
			}
		}
	}
	exactNodes := s.cfg.ExactNodes
	exactGuarded := false
	if hasExact(opts.Heuristics) {
		// Only strip Exact while other candidates remain: with Exact as
		// the sole selection, skipping it would answer nothing.
		if len(opts.Heuristics) > 1 && !s.breaker.Allow(time.Now().UnixNano()) {
			opts.Heuristics = withoutExact(opts.Heuristics)
			degraded = append(degraded, "exact_breaker")
			s.metrics.degBreaker.Inc()
		} else {
			// The breaker admitted this run (possibly as the half-open
			// probe); its outcome must be recorded below, or a probe slot
			// would leak and wedge the breaker half-open.
			exactGuarded = true
			if dl, ok := ctx.Deadline(); ok {
				if scaled := resilience.ScaleNodeBudget(exactNodes, time.Until(dl)); scaled < exactNodes {
					exactNodes = scaled
					degraded = append(degraded, "exact_scaled")
					s.metrics.degScale.Inc()
				}
			}
		}
	}
	// Non-blocking grab of up to candidates-1 extra slots: the pool worker
	// itself is the first lane of the race.
	lanes := 1
acquire:
	for lanes < len(opts.Heuristics) {
		select {
		case s.raceSlots <- struct{}{}:
			lanes++
		default:
			break acquire
		}
	}
	defer func() {
		for i := 1; i < lanes; i++ {
			<-s.raceSlots
		}
	}()
	tr := j.trace
	pc := s.precomputeFor(j, tr)
	sid := tr.Start("schedule", obs.RootSpan)
	res, err := portfolio.RunPre(ctx, pc, *j.objective, portfolio.Options{
		Options: opts, Parallelism: lanes, ExactNodes: exactNodes,
		Trace: tr, TraceParent: sid,
	})
	tr.End(sid)
	if exactGuarded {
		// An Exact run that proved optimality is a breaker success; a
		// budget exhaustion, failure, or a race that died before Exact
		// reported is a failure (the conservative reading — it keeps a
		// half-open probe from leaking when the race itself errors).
		ok := false
		if err == nil {
			for _, c := range res.Candidates {
				if c.ID == sched.IDExact {
					ok = c.Err == nil && c.Proven
				}
			}
		}
		s.breaker.Record(time.Now().UnixNano(), ok)
	}
	if err != nil {
		// A race that died because the request's context expired is a
		// deadline/cancel outcome, not an internal scheduling failure —
		// classify it so the error accounting matches what the client saw.
		if ctx.Err() != nil {
			_, eresp := s.ctxErrResponse(ctx, j.req.ID)
			return eresp
		}
		return &Response{ID: j.req.ID, Error: err.Error()}
	}
	resp := &Response{
		ID:         j.req.ID,
		TreeHash:   j.treeHash,
		Nodes:      j.tree.Len(),
		Processors: res.Processors,
		Bounds:     &Bounds{MakespanLB: res.MakespanLB, MemorySeq: res.MemorySeq},
		Objective:  j.objective,
		Results:    make([]HeuristicResult, 0, len(res.Candidates)),
		Frontier:   make([]sched.HeuristicID, 0, len(res.Frontier)),
		Degraded:   degraded,
	}
	if res.Machine != nil {
		resp.Machine = res.Machine.Spec()
	}
	for _, c := range res.Candidates {
		hr := HeuristicResult{Heuristic: c.ID, Proven: c.Proven,
			ExploredNodes: c.Explored, PrunedNodes: c.Pruned, MemoHits: c.MemoHits}
		if c.Err != nil {
			hr.Error = c.Err.Error()
		} else {
			hr.Makespan = c.Makespan
			hr.PeakMemory = c.PeakMemory
			hr.MakespanRatio = c.MakespanRatio
			hr.MemoryRatio = c.MemoryRatio
			s.metrics.peakMemory.Observe(c.PeakMemory)
			s.metrics.candDur.With(c.ID.String()).Observe(c.Elapsed.Nanoseconds())
		}
		resp.Results = append(resp.Results, hr)
	}
	for _, i := range res.Frontier {
		resp.Frontier = append(resp.Frontier, res.Candidates[i].ID)
	}
	if w, ok := res.WinnerCandidate(); ok {
		id := w.ID
		resp.Winner = &id
		s.metrics.wins.With(id.String()).Inc()
		// The race only keeps candidate metrics, so a timeline re-runs the
		// winner deterministically. Exact's schedule is not re-derivable
		// through the heuristic interface; its timeline is omitted.
		if j.timeline && id != sched.IDExact {
			topts := j.opts
			topts.Heuristics = []sched.HeuristicID{id}
			// The selection is bound to pc's tree (a canonically-equal copy
			// of the request's on a Precompute-cache hit), so the re-run and
			// the rendering use that tree too.
			if hs, _, err := topts.SelectPre(pc); err == nil {
				if sc, err := hs[0].RunOn(pc.Tree(), topts.Model()); err == nil {
					resp.Timeline = renderTimeline(pc.Tree(), sc, id.String(),
						memCapOf(j.opts.MemCapFactor, res.MemorySeq))
				}
			}
		}
	}
	return resp
}

// cached returns a personalized copy of j's cached response, counting the
// hit or miss.
func (s *Server) cached(j *job) (*Response, bool) {
	if s.cache == nil {
		return nil, false
	}
	c, ok := s.cache.get(j.cacheKey)
	if !ok {
		s.metrics.cacheMisses.Inc()
		return nil, false
	}
	s.metrics.cacheHits.Inc()
	resp := *c // shallow copy; Results are shared and read-only
	resp.ID = j.req.ID
	resp.Cached = true
	return &resp, true
}

// answerJob schedules j on the calling goroutine — which must be a pool
// worker — and caches the result. Jobs whose client has gone away by the
// time a worker picks them up are skipped rather than computed for nobody.
func (s *Server) answerJob(ctx context.Context, j *job) *Response {
	if ctx.Err() != nil {
		_, resp := s.ctxErrResponse(ctx, j.req.ID)
		return resp
	}
	// Dedup re-check: a concurrent identical request may have finished
	// while this one waited for a worker. Bypasses the hit/miss counters —
	// this lookup is an internal optimization, not a client-visible miss.
	// Timeline jobs bypass the cache both ways: cached responses carry no
	// timeline, and a per-request rendering must not be shared.
	if s.cache != nil && !j.timeline {
		if c, ok := s.cache.get(j.cacheKey); ok {
			resp := *c
			resp.ID = j.req.ID
			resp.Cached = true
			return &resp
		}
	}
	resp := s.safeRun(ctx, j)
	// A job aborted by its context mid-run was not scheduled — it already
	// counted against errors_total{deadline|cancelled}, and counting it
	// here too would break the admitted = scheduled + aborted accounting
	// the chaos suite checks.
	if resp.errKind != errKindCancelled && resp.errKind != errKindDeadline {
		s.metrics.trees.Inc()
	}
	// Degraded responses are never cached: they answer with reduced
	// quality under the moment's pressure, and a cache entry would keep
	// serving that reduced answer after the pressure is gone.
	if s.cache != nil && !j.timeline && resp.Error == "" && len(resp.Degraded) == 0 {
		s.cache.add(j.cacheKey, resp)
	}
	return resp
}
