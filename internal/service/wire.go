package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"treesched/internal/sched"
	"treesched/internal/tree"
)

// Request is one scheduling job: a tree, a machine size and an optional
// heuristic selection. Exactly one of Tree and TreeText must be set.
type Request struct {
	// ID is an opaque client tag echoed in the Response; useful for
	// correlating lines of a batch.
	ID string `json:"id,omitempty"`
	// Tree is the task tree in JSON form:
	// {"parent":[-1,0,0],"w":[1,1,1],"n":[0,0,0],"f":[1,2,3]}
	// (parent -1 marks the root; n and f default to zero when omitted).
	Tree *tree.Tree `json:"tree,omitempty"`
	// TreeText is the task tree in the textual treegen format, as an
	// alternative to Tree.
	TreeText string `json:"tree_text,omitempty"`
	// Processors is the machine size p (>= 1). Required.
	Processors int `json:"p"`
	// Heuristics names the schedulers to run, in output order: any of
	// ParSubtrees, ParSubtreesOptim, ParInnerFirst, ParDeepestFirst,
	// ParInnerFirstArbitrary, Sequential, OptimalSequential, MemCapped,
	// MemCappedBooking. Empty means the paper's four heuristics.
	Heuristics []string `json:"heuristics,omitempty"`
	// MemCapFactor sets the cap of MemCapped/MemCappedBooking to
	// MemCapFactor × M_seq. Required (>= 1) iff a capped heuristic is
	// selected.
	MemCapFactor float64 `json:"mem_cap_factor,omitempty"`
}

// Bounds carries the paper's bi-objective lower bounds for one instance.
type Bounds struct {
	// MakespanLB is max(total work / p, critical path).
	MakespanLB float64 `json:"makespan_lb"`
	// MemorySeq is M_seq, the paper's sequential memory reference: the
	// peak of the memory-optimal sequential postorder. It is near-optimal
	// but not a strict bound — the OptimalSequential heuristic (Liu's
	// exact traversal) can come in below it, i.e. memory_ratio < 1.
	MemorySeq int64 `json:"memory_seq"`
}

// HeuristicResult is the outcome of one heuristic on one tree.
type HeuristicResult struct {
	Heuristic  string  `json:"heuristic"`
	Makespan   float64 `json:"makespan"`
	PeakMemory int64   `json:"peak_memory"`
	// MakespanRatio is Makespan / Bounds.MakespanLB (0 if the bound is 0).
	MakespanRatio float64 `json:"makespan_ratio"`
	// MemoryRatio is PeakMemory / Bounds.MemorySeq (0 if M_seq is 0).
	MemoryRatio float64 `json:"memory_ratio"`
	// Error is set when this heuristic failed on the instance (the other
	// results are still valid).
	Error string `json:"error,omitempty"`
}

// Response is the answer to one Request. In batch mode a line-level
// failure is reported as a Response with only ID and Error set.
type Response struct {
	ID         string            `json:"id,omitempty"`
	TreeHash   string            `json:"tree_hash,omitempty"`
	Nodes      int               `json:"nodes,omitempty"`
	Processors int               `json:"p,omitempty"`
	Bounds     *Bounds           `json:"bounds,omitempty"`
	Results    []HeuristicResult `json:"results,omitempty"`
	// Cached reports that the response was served from the LRU cache.
	Cached bool `json:"cached,omitempty"`
	// Error is set instead of the result fields when the request itself
	// was invalid.
	Error string `json:"error,omitempty"`
}

// requestError is an invalid-request failure with an HTTP status.
type requestError struct {
	status int
	msg    string
}

func (e *requestError) Error() string { return e.msg }

func badRequest(format string, args ...any) *requestError {
	return &requestError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// job is a validated, runnable request: the parsed tree plus the resolved
// scheduling options and the cache key identifying the result.
type job struct {
	req      Request
	tree     *tree.Tree
	treeHash string
	opts     sched.Options
	cacheKey string
}

// prepare validates req against the server limits and resolves it into a
// runnable job.
func (s *Server) prepare(req Request) (*job, error) {
	var t *tree.Tree
	switch {
	case req.Tree != nil && req.TreeText != "":
		return nil, badRequest("exactly one of tree and tree_text must be set, got both")
	case req.Tree != nil:
		t = req.Tree
	case req.TreeText != "":
		var err error
		// DecodeMax caps the declared node count before allocation, so a
		// tiny hostile payload cannot demand MaxNodes-independent memory.
		t, err = tree.DecodeMax(strings.NewReader(req.TreeText), s.cfg.MaxNodes)
		if err != nil {
			if errors.Is(err, tree.ErrTooLarge) {
				return nil, &requestError{status: http.StatusRequestEntityTooLarge, msg: err.Error()}
			}
			return nil, badRequest("invalid tree_text: %v", err)
		}
	default:
		return nil, badRequest("one of tree and tree_text is required")
	}
	if t.Len() == 0 {
		return nil, badRequest("tree is empty")
	}
	if t.Len() > s.cfg.MaxNodes {
		return nil, &requestError{
			status: http.StatusRequestEntityTooLarge,
			msg:    fmt.Sprintf("tree has %d nodes, limit is %d", t.Len(), s.cfg.MaxNodes),
		}
	}
	if req.Processors < 1 {
		return nil, badRequest("p must be >= 1, got %d", req.Processors)
	}
	if req.Processors > s.cfg.MaxProcs {
		return nil, badRequest("p=%d exceeds limit %d", req.Processors, s.cfg.MaxProcs)
	}
	ids := make([]sched.HeuristicID, 0, len(req.Heuristics))
	for _, name := range req.Heuristics {
		id, ok := sched.ParseHeuristic(name)
		if !ok {
			return nil, badRequest("unknown heuristic %q (known: %s)",
				name, strings.Join(sortedHeuristicNames(), ", "))
		}
		ids = append(ids, id)
	}
	opts := sched.Options{
		Processors:   req.Processors,
		Heuristics:   ids,
		MemCapFactor: req.MemCapFactor,
	}
	if err := opts.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	j := &job{req: req, tree: t, treeHash: t.CanonicalHash(), opts: opts}
	j.cacheKey = cacheKey(j.treeHash, opts)
	return j, nil
}

// cacheKey identifies a (tree, options) pair. Heuristic order matters for
// the Results order, so the selection is included in request order.
func cacheKey(treeHash string, opts sched.Options) string {
	var b strings.Builder
	b.WriteString(treeHash)
	fmt.Fprintf(&b, "|p=%d", opts.Processors)
	ids := opts.Heuristics
	if len(ids) == 0 {
		ids = sched.PaperHeuristics()
	}
	b.WriteString("|h=")
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(id.String())
	}
	if needsCapFactor(ids) {
		fmt.Fprintf(&b, "|cap=%g", opts.MemCapFactor)
	}
	return b.String()
}

func needsCapFactor(ids []sched.HeuristicID) bool {
	for _, id := range ids {
		if id == sched.IDMemCapped || id == sched.IDMemCappedBooking {
			return true
		}
	}
	return false
}

// safeRun is run with panic containment: on HTTP handler goroutines
// net/http limits a panic's blast radius to one connection, but pool
// workers have no such net, so a latent panic in the scheduling code must
// not take the whole daemon down with every in-flight request.
func safeRun(j *job) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{ID: j.req.ID, Error: fmt.Sprintf("internal error: panic during scheduling: %v", r)}
		}
	}()
	return run(j)
}

// run schedules the job's tree with every selected heuristic. It is a pure
// function of the job and always produces results in selection order, so
// responses are deterministic.
func run(j *job) *Response {
	t, p := j.tree, j.opts.Processors
	// SelectFor computes the best postorder once; its peak is M_seq and the
	// sequential/capped heuristics reuse the traversal instead of
	// recomputing it per heuristic.
	hs, memSeq, err := j.opts.SelectFor(t)
	if err != nil { // unreachable: prepare validated the options
		return &Response{ID: j.req.ID, Error: err.Error()}
	}
	bounds := Bounds{
		MakespanLB: sched.MakespanLowerBound(t, p),
		MemorySeq:  memSeq,
	}
	resp := &Response{
		ID:         j.req.ID,
		TreeHash:   j.treeHash,
		Nodes:      t.Len(),
		Processors: p,
		Bounds:     &bounds,
		Results:    make([]HeuristicResult, 0, len(hs)),
	}
	for _, h := range hs {
		hr := HeuristicResult{Heuristic: h.Name}
		sc, err := h.Run(t, p)
		if err == nil {
			err = sc.Validate(t)
		}
		if err != nil {
			hr.Error = err.Error()
		} else {
			hr.Makespan = sc.Makespan(t)
			hr.PeakMemory = sched.PeakMemory(t, sc)
			if bounds.MakespanLB > 0 {
				hr.MakespanRatio = hr.Makespan / bounds.MakespanLB
			}
			if bounds.MemorySeq > 0 {
				hr.MemoryRatio = float64(hr.PeakMemory) / float64(bounds.MemorySeq)
			}
		}
		resp.Results = append(resp.Results, hr)
	}
	return resp
}

// cached returns a personalized copy of j's cached response, counting the
// hit or miss.
func (s *Server) cached(j *job) (*Response, bool) {
	if s.cache == nil {
		return nil, false
	}
	c, ok := s.cache.get(j.cacheKey)
	if !ok {
		s.metrics.cacheMisses.Add(1)
		return nil, false
	}
	s.metrics.cacheHits.Add(1)
	resp := *c // shallow copy; Results are shared and read-only
	resp.ID = j.req.ID
	resp.Cached = true
	return &resp, true
}

// answerJob schedules j on the calling goroutine — which must be a pool
// worker — and caches the result. Jobs whose client has gone away by the
// time a worker picks them up are skipped rather than computed for nobody.
func (s *Server) answerJob(ctx context.Context, j *job) *Response {
	if ctx.Err() != nil {
		return &Response{ID: j.req.ID, Error: "request canceled"}
	}
	// Dedup re-check: a concurrent identical request may have finished
	// while this one waited for a worker. Bypasses the hit/miss counters —
	// this lookup is an internal optimization, not a client-visible miss.
	if s.cache != nil {
		if c, ok := s.cache.get(j.cacheKey); ok {
			resp := *c
			resp.ID = j.req.ID
			resp.Cached = true
			return &resp
		}
	}
	resp := safeRun(j)
	s.metrics.trees.Add(1)
	if s.cache != nil && resp.Error == "" {
		s.cache.add(j.cacheKey, resp)
	}
	return resp
}

// sortedHeuristicNames returns all canonical wire names, for error texts.
func sortedHeuristicNames() []string {
	var names []string
	for id := sched.HeuristicID(0); ; id++ {
		if !id.Valid() {
			break
		}
		names = append(names, id.String())
	}
	sort.Strings(names)
	return names
}
