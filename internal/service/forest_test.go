package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"treesched/internal/forest"
)

// forestTraceBody encodes a small deterministic trace.
func forestTraceBody(tb testing.TB, jobs int) []byte {
	tb.Helper()
	trace, err := forest.GenTrace(forest.GenConfig{Jobs: jobs, Seed: 21, MinNodes: 20, MaxNodes: 60})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forest.EncodeTrace(&buf, trace); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// smallForestTraceBody encodes a trace whose trees stay under tight
// MaxNodes limits.
func smallForestTraceBody(tb testing.TB, jobs int) []byte {
	tb.Helper()
	trace, err := forest.GenTrace(forest.GenConfig{Jobs: jobs, Seed: 8, MinNodes: 10, MaxNodes: 30})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forest.EncodeTrace(&buf, trace); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// decodeForestResponse splits the NDJSON response into per-job results
// and the trailing summary.
func decodeForestResponse(tb testing.TB, body []byte) ([]forest.JobResult, forest.Summary) {
	tb.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<22)
	var jobs []forest.JobResult
	var summary *forest.Summary
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if summary != nil {
			tb.Fatalf("line after summary: %s", line)
		}
		if bytes.Contains(line, []byte(`"summary"`)) {
			var wrap struct {
				Summary *forest.Summary `json:"summary"`
			}
			if err := json.Unmarshal(line, &wrap); err != nil || wrap.Summary == nil {
				tb.Fatalf("bad summary line %s: %v", line, err)
			}
			summary = wrap.Summary
			continue
		}
		var jr forest.JobResult
		if err := json.Unmarshal(line, &jr); err != nil {
			tb.Fatalf("bad job line %s: %v", line, err)
		}
		jobs = append(jobs, jr)
	}
	if summary == nil {
		tb.Fatalf("no summary line in response:\n%s", body)
	}
	return jobs, *summary
}

func TestForestEndpoint(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	h := s.Handler()

	body := forestTraceBody(t, 12)
	rec := post(t, h, "/v1/forest?p=4&policy=sjf&mem_cap_factor=2", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	jobs, sum := decodeForestResponse(t, rec.Body.Bytes())
	if len(jobs) != 12 || sum.Jobs != 12 {
		t.Fatalf("got %d job lines, summary %+v", len(jobs), sum)
	}
	for i, jr := range jobs {
		if jr.Index != i {
			t.Errorf("job line %d has index %d (want trace order)", i, jr.Index)
		}
		if jr.Status != forest.StatusCompleted {
			t.Errorf("job %s: %+v", jr.ID, jr)
		}
	}
	if sum.Policy.String() != "sjf" || sum.Processors != 4 {
		t.Errorf("summary config echo wrong: %+v", sum)
	}
	if sum.PeakResident > sum.MemCap {
		t.Errorf("peak %d exceeds cap %d", sum.PeakResident, sum.MemCap)
	}

	// Identical request → identical response (engine determinism through
	// the full HTTP path).
	rec2 := post(t, h, "/v1/forest?p=4&policy=sjf&mem_cap_factor=2", body)
	jobs2, sum2 := decodeForestResponse(t, rec2.Body.Bytes())
	if !reflect.DeepEqual(jobs, jobs2) || !reflect.DeepEqual(sum, sum2) {
		t.Error("two identical forest requests returned different results")
	}

	// The counters surface on /metrics.
	metrics := getBody(t, h, "/metrics")
	for _, want := range []string{
		`treeschedd_requests_total{endpoint="/v1/forest"} 2`,
		"treeschedd_forest_jobs_total 24",
		"treeschedd_forest_rejected_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestForestEndpointRejections(t *testing.T) {
	s := New(Config{MaxForestJobs: 4, MaxNodes: 50, MaxProcs: 8})
	defer s.Close()
	h := s.Handler()

	for _, tc := range []struct {
		name, path string
		body       []byte
		status     int
		errPart    string
	}{
		{"bad policy", "/v1/forest?policy=round_robin", forestTraceBody(t, 2), http.StatusBadRequest, "unknown policy"},
		{"bad p", "/v1/forest?p=0", forestTraceBody(t, 2), http.StatusBadRequest, "bad p"},
		{"p over limit", "/v1/forest?p=999", forestTraceBody(t, 2), http.StatusBadRequest, "exceeds limit"},
		{"bad cap", "/v1/forest?mem_cap=-3", forestTraceBody(t, 2), http.StatusBadRequest, "bad mem_cap"},
		{"bad factor", "/v1/forest?mem_cap_factor=zero", forestTraceBody(t, 2), http.StatusBadRequest, "bad mem_cap_factor"},
		{"bad default heuristic", "/v1/forest?default_heuristic=Nope", forestTraceBody(t, 2), http.StatusBadRequest, "unknown heuristic"},
		{"too many jobs", "/v1/forest", smallForestTraceBody(t, 6), http.StatusRequestEntityTooLarge, "trace too large"},
		{"malformed line", "/v1/forest", []byte("{nope\n"), http.StatusBadRequest, "trace line 1"},
	} {
		rec := post(t, h, tc.path, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.status, rec.Body.String())
			continue
		}
		resp := decodeResponse(t, rec)
		if !strings.Contains(resp.Error, tc.errPart) {
			t.Errorf("%s: error %q, want substring %q", tc.name, resp.Error, tc.errPart)
		}
	}

	// A tree over MaxNodes inside a trace line is a 413, not a 400.
	bigTrace, err := forest.GenTrace(forest.GenConfig{Jobs: 1, Seed: 2, MinNodes: 60, MaxNodes: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := forest.EncodeTrace(&buf, bigTrace); err != nil {
		t.Fatal(err)
	}
	rec := post(t, h, "/v1/forest", buf.Bytes())
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized tree: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestForestEndpointBoundsWholeBody pins the aggregate trace limit:
// MaxBodyBytes caps the whole /v1/forest body, not just each line, so a
// many-line trace cannot demand unbounded memory.
func TestForestEndpointBoundsWholeBody(t *testing.T) {
	s := New(Config{MaxBodyBytes: 600})
	defer s.Close()
	body := smallForestTraceBody(t, 4) // each line fits 600 bytes; the total does not
	if int64(len(body)) <= 600 {
		t.Fatalf("test trace too small (%d bytes) to exceed the body limit", len(body))
	}
	rec := post(t, s.Handler(), "/v1/forest", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body.String())
	}
}
