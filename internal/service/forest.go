package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"treesched/internal/forest"
	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/resilience"
	"treesched/internal/resilience/chaos"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// DefaultMaxForestJobs bounds the number of jobs in one /v1/forest trace.
const DefaultMaxForestJobs = 10_000

// handleForest answers POST /v1/forest: an NDJSON job trace in the body
// (one forest.Job per line; blank lines and #-comments skipped), the
// machine configuration in query parameters, and an NDJSON response — one
// JobResult per trace job, in trace order, followed by a final
// {"summary":...} line. The whole trace is one simulation, so unlike
// /v1/schedule/batch the body is decoded strictly: a malformed line fails
// the request.
//
// Query parameters:
//
//   - p: shared machine size (default 4, capped by the server's MaxProcs)
//   - machine: explicit machine spec ("4", "2x1.0+2x0.5") for
//     heterogeneous processor speeds; overrides p (they must agree when
//     both are given)
//   - policy: admission policy — fifo (default), sjf, smallest_mseq,
//     weighted_fair
//   - mem_cap: absolute global memory cap
//   - mem_cap_factor: cap as a multiple of the trace's largest M_seq
//     (default 2), ignored when mem_cap is set
//   - default_heuristic: plans jobs that carry neither a heuristic nor an
//     objective (default ParSubtrees; Auto races the portfolio per job)
func (s *Server) handleForest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := s.requestID()
	s.metrics.reqForest.Inc()
	w.Header().Set("X-Request-Id", rid)
	tr := obs.AcquireTrace()
	finish := func(status int, errMsg, errKind string, res *forest.Result) {
		elapsed := time.Since(start)
		s.metrics.latForest.ObserveExemplar(elapsed.Nanoseconds(), rid)
		info := obs.FlightInfo{
			RequestID: rid, Endpoint: epForest, Status: status,
			Duration: elapsed, Error: errMsg, ErrorKind: errKind,
		}
		if res != nil {
			info.Nodes = res.Summary.Jobs
		}
		s.metrics.recordOutcome(info, tr)
		tr.Release()
		s.logRequest(rid, epForest, status, elapsed, errMsg)
	}
	cfg, err := forestConfigFromQuery(r.URL.Query(), s.cfg.MaxProcs)
	if err != nil {
		s.rejectJSON(w, http.StatusBadRequest, s.metrics.errDecode, err.Error())
		finish(http.StatusBadRequest, err.Error(), errKindDecode, nil)
		return
	}
	timeout, terr := s.requestTimeout(r)
	if terr != nil {
		s.rejectJSON(w, http.StatusBadRequest, s.metrics.errDecode, terr.Error())
		finish(http.StatusBadRequest, terr.Error(), errKindDecode, nil)
		return
	}
	// Forest runs are the heaviest single jobs the pool takes, so they
	// pass admission like every other CPU-bound request.
	if dec := s.admit(resilience.PriorityHigh); dec != resilience.Admitted {
		s.metrics.errShed.Inc()
		w.Header().Set("Retry-After", "1")
		msg := shedMessage(dec)
		writeJSON(w, http.StatusServiceUnavailable, Response{RequestID: rid, Error: msg})
		finish(http.StatusServiceUnavailable, msg, errKindShed, nil)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// The engine records plan/simulate spans (with one child per planned
	// job) into the request trace; ?trace=1 additionally attaches the
	// materialized tree to the trailing summary line. Either way the
	// flight recorder retains the spans of kept forest requests.
	attachTrace := traceWanted(r)
	cfg.Trace = tr
	cfg.TraceParent = obs.RootSpan
	type outcome struct {
		status  int
		errMsg  string
		errKind string
		res     *forest.Result
	}
	ch := make(chan outcome, 1)
	// The pool worker does all CPU work — trace decode, per-job planning,
	// the whole simulation — so forest runs respect the same CPU budget
	// as every other endpoint. The handler goroutine only does I/O.
	s.submit(func() {
		ch <- func() (out outcome) {
			defer func() {
				if rec := recover(); rec != nil {
					s.metrics.errInternal.Inc()
					out = outcome{status: http.StatusInternalServerError,
						errMsg:  fmt.Sprintf("internal error: panic during forest run: %v", rec),
						errKind: errKindInternal}
				}
			}()
			// Chaos worker faults fire inside this recover scope, like on
			// the schedule path.
			switch f := s.cfg.Chaos.At(chaos.SiteWorker); f.Kind {
			case chaos.Latency:
				time.Sleep(f.Dur)
			case chaos.Panic:
				panic("chaos: injected worker panic")
			}
			// MaxBodyBytes bounds the whole trace (like /v1/schedule's
			// body) as well as each line, so a trace cannot demand
			// MaxForestJobs × MaxNodes of memory regardless of how the
			// per-job limits multiply out.
			body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
			did := tr.Start("decode", obs.RootSpan)
			jobs, err := forest.DecodeTrace(body, forest.DecodeLimits{
				MaxJobs:      s.cfg.MaxForestJobs,
				MaxNodes:     s.cfg.MaxNodes,
				MaxLineBytes: s.cfg.MaxBodyBytes,
			})
			tr.SetValue(did, int64(len(jobs)))
			tr.End(did)
			if err != nil {
				status, kind := http.StatusBadRequest, errKindDecode
				var tooLarge *http.MaxBytesError
				if errors.Is(err, forest.ErrTraceTooLarge) || errors.Is(err, tree.ErrTooLarge) || errors.As(err, &tooLarge) {
					status, kind = http.StatusRequestEntityTooLarge, errKindLimit
					s.metrics.errLimit.Inc()
				} else {
					s.metrics.errDecode.Inc()
				}
				return outcome{status: status, errMsg: err.Error(), errKind: kind}
			}
			res, err := forest.Run(ctx, jobs, cfg)
			if err != nil {
				status, kind := http.StatusInternalServerError, errKindInternal
				switch {
				case errors.Is(ctx.Err(), context.DeadlineExceeded):
					status, kind = http.StatusServiceUnavailable, errKindDeadline
					s.metrics.errDeadline.Inc()
				case ctx.Err() != nil:
					status, kind = http.StatusBadRequest, errKindCancelled
					s.metrics.errCancelled.Inc()
				default:
					s.metrics.errInternal.Inc()
				}
				return outcome{status: status, errMsg: err.Error(), errKind: kind}
			}
			s.metrics.forestJobs.Add(int64(res.Summary.Jobs))
			s.metrics.forestRejected.Add(int64(res.Summary.Rejected))
			s.metrics.forestRounds.Add(int64(res.Summary.Rounds))
			s.metrics.forestBookRej.Add(int64(res.Summary.BookingRejections))
			return outcome{status: http.StatusOK, res: res}
		}()
	})
	out := <-ch
	if out.errMsg != "" {
		if out.status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, out.status, Response{RequestID: rid, Error: out.errMsg})
	} else {
		var spans *obs.SpanNode
		if attachTrace {
			spans = tr.Tree()
		}
		writeForestNDJSON(w, out.res, spans)
	}
	finish(out.status, out.errMsg, out.errKind, out.res)
}

// writeForestNDJSON streams the per-job results and the trailing summary
// line; a non-nil trace rides on the summary line (the trace covers the
// whole run, so it belongs to the run-level line, not any job's). Results
// are bounded by MaxForestJobs, so they are encoded from the materialized
// Result rather than pipelined.
func writeForestNDJSON(w http.ResponseWriter, res *forest.Result, trace *obs.SpanNode) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for i := range res.Jobs {
		if err := enc.Encode(&res.Jobs[i]); err != nil {
			return // client gone; nothing sensible to do mid-stream
		}
	}
	enc.Encode(struct {
		Summary *forest.Summary `json:"summary"`
		Trace   *obs.SpanNode   `json:"trace,omitempty"`
	}{&res.Summary, trace})
}

// forestConfigFromQuery builds the engine config from the request's query
// parameters, rejecting unknown names and out-of-range values.
func forestConfigFromQuery(q url.Values, maxProcs int) (forest.Config, error) {
	cfg := forest.Config{Processors: 4}
	if v := q.Get("p"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			return cfg, fmt.Errorf("bad p %q (want an integer >= 1)", v)
		}
		cfg.Processors = p
	}
	if v := q.Get("machine"); v != "" {
		m, err := machine.ParseSpec(v)
		if err != nil {
			return cfg, err
		}
		if q.Get("p") != "" && cfg.Processors != m.P() {
			return cfg, fmt.Errorf("p=%d conflicts with machine %q (%d processors)", cfg.Processors, v, m.P())
		}
		cfg.Machine = m
		cfg.Processors = m.P()
	}
	if cfg.Processors > maxProcs {
		return cfg, fmt.Errorf("p=%d exceeds limit %d", cfg.Processors, maxProcs)
	}
	if v := q.Get("policy"); v != "" {
		pol, err := forest.ParsePolicy(v)
		if err != nil {
			return cfg, err
		}
		cfg.Policy = pol
	}
	if v := q.Get("mem_cap"); v != "" {
		m, err := strconv.ParseInt(v, 10, 64)
		if err != nil || m < 1 {
			return cfg, fmt.Errorf("bad mem_cap %q (want an integer >= 1)", v)
		}
		cfg.MemCap = m
	}
	if v := q.Get("mem_cap_factor"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || !(f > 0) {
			return cfg, fmt.Errorf("bad mem_cap_factor %q (want a number > 0)", v)
		}
		cfg.MemCapFactor = f
	}
	if v := q.Get("default_heuristic"); v != "" {
		id, err := sched.ParseHeuristic(v)
		if err != nil {
			return cfg, err
		}
		cfg.DefaultHeuristic = id
	}
	return cfg, nil
}
