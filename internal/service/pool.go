package service

import "sync"

// pool is a bounded worker pool for CPU-bound scheduling jobs, in the
// spirit of internal/par: a fixed set of goroutines pulling closures from
// an unbuffered channel. Submission blocks while all workers are busy,
// which propagates backpressure to the HTTP layer instead of letting the
// per-connection goroutines oversubscribe the machine.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{jobs: make(chan func())}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// submit enqueues f for asynchronous execution, blocking while the pool is
// saturated. Completion is the closure's business (e.g. a result channel).
func (p *pool) submit(f func()) { p.jobs <- f }

// close waits for queued jobs to drain and stops the workers. No submit or
// run may be in flight or follow.
func (p *pool) close() {
	close(p.jobs)
	p.wg.Wait()
}
