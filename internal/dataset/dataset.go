// Package dataset synthesizes the tree collection of the paper's evaluation
// (§6.2). The paper uses assembly trees of 76 matrices of the University of
// Florida Sparse Matrix Collection, ordered with MeTiS and amd, amalgamated
// with 1, 2, 4 and 16 relaxed amalgamations per node — 608 trees of 2,000
// to 1,000,000 nodes. The collection is proprietary-by-availability, so
// this package substitutes a deterministic synthetic suite spanning the
// same structural range (see DESIGN.md §3): 2D/3D grid Laplacians under
// nested dissection (deep balanced trees), random symmetric and power-law
// patterns under minimum degree (irregular and star-like trees with huge
// degrees), and band matrices under RCM (chain-like trees).
package dataset

import (
	"fmt"
	"math/rand"

	"treesched/internal/par"
	"treesched/internal/spm"
	"treesched/internal/tree"
)

// Instance is one assembly tree of the collection together with its
// provenance.
type Instance struct {
	Name   string
	Matrix string // matrix family and size
	Order  string // ordering used
	MaxEta int    // relaxed amalgamation parameter (1, 2, 4, 16)
	Tree   *tree.Tree
}

// Scale selects the collection size.
type Scale int

const (
	// Quick is sized for unit tests and CI: ~1-2 s to build.
	Quick Scale = iota
	// Standard is the default evaluation scale (matrices up to ~10⁴
	// columns; a few hundred trees).
	Standard
	// Full uses the largest matrices (~10⁵ columns); building the trees
	// takes minutes, comparable in spirit to the paper's 608-tree runs.
	Full
)

// AmalgamationLevels are the paper's relaxed-amalgamation parameters.
var AmalgamationLevels = []int{1, 2, 4, 16}

type matrixSpec struct {
	name  string
	build func(rng *rand.Rand) *spm.Pattern
	// orderings to apply; nested dissection for meshes (MeTiS stand-in),
	// minimum degree for irregular graphs (amd stand-in).
	orders []string
}

func matrixSuite(scale Scale, rng *rand.Rand) []matrixSpec {
	grid2 := func(k int) matrixSpec {
		return matrixSpec{
			name:   fmt.Sprintf("grid2d-%dx%d", k, k),
			build:  func(*rand.Rand) *spm.Pattern { return spm.Grid2D(k, k) },
			orders: []string{"nd", "md"},
		}
	}
	grid3 := func(k int) matrixSpec {
		return matrixSpec{
			name:   fmt.Sprintf("grid3d-%d", k),
			build:  func(*rand.Rand) *spm.Pattern { return spm.Grid3D(k, k, k) },
			orders: []string{"nd", "md"},
		}
	}
	randsym := func(n int, deg float64) matrixSpec {
		return matrixSpec{
			name:   fmt.Sprintf("rand-%d-d%g", n, deg),
			build:  func(r *rand.Rand) *spm.Pattern { return spm.RandomSym(r, n, deg) },
			orders: []string{"nd", "md"},
		}
	}
	plaw := func(n, m int) matrixSpec {
		return matrixSpec{
			name:   fmt.Sprintf("plaw-%d-m%d", n, m),
			build:  func(r *rand.Rand) *spm.Pattern { return spm.PowerLaw(r, n, m) },
			orders: []string{"md"},
		}
	}
	band := func(n, bw int) matrixSpec {
		return matrixSpec{
			name:   fmt.Sprintf("band-%d-bw%d", n, bw),
			build:  func(*rand.Rand) *spm.Pattern { return spm.Band(n, bw) },
			orders: []string{"rcm", "nd"},
		}
	}
	switch scale {
	case Quick:
		return []matrixSpec{
			grid2(14), grid3(6), randsym(400, 3), plaw(400, 2), band(400, 3),
		}
	case Full:
		// Minimum degree densifies the elimination graph on large irregular
		// patterns (minutes of runtime), so the largest random and
		// power-law matrices are ordered with nested dissection or built
		// with m=1 (tree-like, where MD is trivial); grids take both
		// orderings like the smaller scales.
		full := []matrixSpec{
			grid2(40), grid2(70), grid2(100), grid2(140),
			grid3(12), grid3(16),
			randsym(3000, 3),
			plaw(3000, 2), plaw(10000, 1), plaw(30000, 1),
			band(10000, 3), band(30000, 5),
		}
		full = append(full,
			matrixSpec{
				name:   "grid3d-22",
				build:  func(*rand.Rand) *spm.Pattern { return spm.Grid3D(22, 22, 22) },
				orders: []string{"nd"},
			},
			matrixSpec{
				name:   "rand-10000-d4",
				build:  func(r *rand.Rand) *spm.Pattern { return spm.RandomSym(r, 10000, 4) },
				orders: []string{"nd"},
			},
			matrixSpec{
				name:   "rand-30000-d3",
				build:  func(r *rand.Rand) *spm.Pattern { return spm.RandomSym(r, 30000, 3) },
				orders: []string{"nd"},
			},
		)
		return full
	default: // Standard
		return []matrixSpec{
			grid2(20), grid2(32), grid2(45),
			grid3(8), grid3(11),
			randsym(1000, 3), randsym(3000, 4),
			plaw(1000, 2), plaw(3000, 1),
			band(2000, 3),
		}
	}
}

func applyOrder(p *spm.Pattern, name string) (spm.Perm, error) {
	switch name {
	case "natural":
		return spm.NaturalOrder(p.Len()), nil
	case "nd":
		return spm.NestedDissection(p), nil
	case "md":
		return spm.MinimumDegree(p), nil
	case "rcm":
		return spm.RCM(p), nil
	}
	return nil, fmt.Errorf("dataset: unknown ordering %q", name)
}

// Collection builds the deterministic synthetic tree collection at the
// given scale. The same (scale, seed) always yields identical trees.
// Matrix patterns are generated sequentially (they consume the shared
// random stream); the orderings and assembly trees — the expensive part —
// are built in parallel, with results placed by index so the output order
// never depends on goroutine scheduling.
func Collection(scale Scale, seed int64) ([]Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	specs := matrixSuite(scale, rng)
	patterns := make([]*spm.Pattern, len(specs))
	for i, spec := range specs {
		patterns[i] = spec.build(rng)
	}
	type job struct {
		si    int
		order string
	}
	var jobs []job
	for si, spec := range specs {
		for _, ord := range spec.orders {
			jobs = append(jobs, job{si, ord})
		}
	}
	out := make([]Instance, len(jobs)*len(AmalgamationLevels))
	errs := make([]error, len(jobs))
	par.ForEach(len(jobs), func(ji int) {
		j := jobs[ji]
		spec := specs[j.si]
		perm, err := applyOrder(patterns[j.si], j.order)
		if err != nil {
			errs[ji] = err
			return
		}
		for ei, eta := range AmalgamationLevels {
			t, err := spm.AssemblyTree(patterns[j.si], perm, eta)
			if err != nil {
				errs[ji] = fmt.Errorf("dataset: %s/%s/η%d: %w", spec.name, j.order, eta, err)
				return
			}
			out[ji*len(AmalgamationLevels)+ei] = Instance{
				Name:   fmt.Sprintf("%s-%s-eta%d", spec.name, j.order, eta),
				Matrix: spec.name,
				Order:  j.order,
				MaxEta: eta,
				Tree:   t,
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ProcessorCounts are the processor counts of the paper's evaluation.
var ProcessorCounts = []int{2, 4, 8, 16, 32}
