package dataset

import (
	"testing"

	"treesched/internal/spm"
)

func TestCollectionQuickDeterministic(t *testing.T) {
	a, err := Collection(Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collection(Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("collection sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Tree.Len() != b[i].Tree.Len() {
			t.Fatalf("instance %d differs between identical builds", i)
		}
		for v := 0; v < a[i].Tree.Len(); v++ {
			if a[i].Tree.W(v) != b[i].Tree.W(v) || a[i].Tree.F(v) != b[i].Tree.F(v) {
				t.Fatalf("instance %d node %d weights differ", i, v)
			}
		}
	}
}

func TestCollectionCoversAmalgamationLevels(t *testing.T) {
	insts, err := Collection(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, in := range insts {
		seen[in.MaxEta] = true
	}
	for _, eta := range AmalgamationLevels {
		if !seen[eta] {
			t.Errorf("no instance with η=%d", eta)
		}
	}
}

func TestCollectionTreeShrinksWithAmalgamation(t *testing.T) {
	insts, err := Collection(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Group by matrix+order: node counts must be non-increasing in η.
	sizes := map[string]map[int]int{}
	for _, in := range insts {
		key := in.Matrix + "/" + in.Order
		if sizes[key] == nil {
			sizes[key] = map[int]int{}
		}
		sizes[key][in.MaxEta] = in.Tree.Len()
	}
	for key, m := range sizes {
		if m[1] < m[2] || m[2] < m[4] || m[4] < m[16] {
			t.Errorf("%s: sizes not shrinking with η: %v", key, m)
		}
	}
}

func TestCollectionTreesAreNontrivial(t *testing.T) {
	insts, err := Collection(Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if in.Tree.Len() < 10 {
			t.Errorf("%s: tiny tree (%d nodes)", in.Name, in.Tree.Len())
		}
		if in.Tree.TotalW() <= 0 {
			t.Errorf("%s: non-positive work", in.Name)
		}
	}
}

func TestProcessorCountsMatchPaper(t *testing.T) {
	want := []int{2, 4, 8, 16, 32}
	if len(ProcessorCounts) != len(want) {
		t.Fatalf("ProcessorCounts = %v", ProcessorCounts)
	}
	for i := range want {
		if ProcessorCounts[i] != want[i] {
			t.Fatalf("ProcessorCounts = %v, want %v", ProcessorCounts, want)
		}
	}
}

func TestStandardScaleBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the standard collection")
	}
	insts, err := Collection(Standard, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) < 50 {
		t.Fatalf("standard collection has only %d trees", len(insts))
	}
	// The standard suite must span deep (band/RCM) and wide (power-law/MD)
	// tree shapes.
	var maxHeight, maxDeg int
	for _, in := range insts {
		if h := in.Tree.Height(); h > maxHeight {
			maxHeight = h
		}
		if d := in.Tree.MaxDegree(); d > maxDeg {
			maxDeg = d
		}
	}
	if maxHeight < 100 {
		t.Errorf("no deep trees: max height %d", maxHeight)
	}
	if maxDeg < 50 {
		t.Errorf("no wide trees: max degree %d", maxDeg)
	}
}

func TestUnknownOrderingRejected(t *testing.T) {
	if _, err := applyOrder(spm.Grid2D(3, 3), "bogus"); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}
