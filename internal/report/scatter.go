package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// symbols assigns one plot character per heuristic; cells holding points of
// several heuristics render '*'.
var symbols = map[string]byte{
	"ParSubtrees":      'S',
	"ParSubtreesOptim": 'O',
	"ParInnerFirst":    'I',
	"ParDeepestFirst":  'D',
}

// RenderScatter draws a point cloud as an ASCII scatter plot with
// logarithmic axes, mimicking the paper's Figures 6-8 (x: makespan ratio,
// y: memory ratio). Each heuristic plots with its own letter; overlapping
// heuristics show '*'.
func RenderScatter(w io.Writer, pts []FigPoint, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	if len(pts) == 0 {
		_, err := fmt.Fprintln(w, "(no points)")
		return err
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		if p.X <= 0 || p.Y <= 0 {
			continue
		}
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if minX == maxX {
		maxX = minX * 1.1
	}
	if minY == maxY {
		maxY = minY * 1.1
	}
	lx0, lx1 := math.Log(minX), math.Log(maxX)
	ly0, ly1 := math.Log(minY), math.Log(maxY)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		if p.X <= 0 || p.Y <= 0 {
			continue
		}
		c := int(float64(width-1) * (math.Log(p.X) - lx0) / (lx1 - lx0))
		r := height - 1 - int(float64(height-1)*(math.Log(p.Y)-ly0)/(ly1-ly0))
		sym := symbols[p.Heuristic]
		if sym == 0 {
			sym = '.'
		}
		switch cur := grid[r][c]; {
		case cur == ' ':
			grid[r][c] = sym
		case cur != sym:
			grid[r][c] = '*'
		}
	}
	for r, row := range grid {
		label := "         "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.2f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.2f ", minY)
		case height / 2:
			label = fmt.Sprintf("%8.2f ", math.Exp((ly0+ly1)/2))
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s%-*.2f%*.2f\n", strings.Repeat(" ", 10), width/2, minX, width/2, maxX); err != nil {
		return err
	}
	// Legend, stable order.
	names := make([]string, 0, len(symbols))
	for n := range symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	var leg []string
	for _, n := range names {
		leg = append(leg, fmt.Sprintf("%c=%s", symbols[n], n))
	}
	_, err := fmt.Fprintf(w, "%slegend: %s, *=overlap (log-log)\n", strings.Repeat(" ", 10), strings.Join(leg, " "))
	return err
}
