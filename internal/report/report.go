// Package report runs the paper's evaluation (§6) over a tree collection
// and regenerates its artifacts: Table 1 (best-performance shares and
// average deviations) and the data behind Figures 6, 7 and 8 (per-scenario
// normalized makespan/memory points with distribution crosses).
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"treesched/internal/dataset"
	"treesched/internal/par"
	"treesched/internal/sched"
	"treesched/internal/stats"
)

// Scenario is one (tree, processor count) pair evaluated with every
// heuristic, normalized against the lower bounds.
type Scenario struct {
	Instance string
	Nodes    int
	P        int
	MemLB    int64   // sequential postorder memory (paper's reference)
	MsLB     float64 // max(W/p, critical path)

	// Per heuristic, in the order of Heuristics.
	Makespan []float64
	Memory   []int64
}

// Heuristics returns the heuristic names in Table 1 order.
func Heuristics() []string {
	hs := sched.Heuristics()
	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = h.Name
	}
	return names
}

// Run evaluates all heuristics on every (instance, p) pair. Scenarios are
// independent, so they are evaluated by a pool of GOMAXPROCS workers; the
// result order is deterministic (instances × procs, in input order).
func Run(instances []dataset.Instance, procs []int) ([]Scenario, error) {
	ids := sched.PaperHeuristics()
	out := make([]Scenario, len(instances)*len(procs))
	// One shared Precompute per instance: Liu's DP, the priority rankings
	// and M_seq are computed once and reused across every heuristic and
	// every processor count (a Precompute is concurrency-safe).
	pcs := make([]*sched.Precompute, len(instances))

	var firstErr atomic.Value
	par.ForEach(len(instances), func(i int) {
		pcs[i] = sched.NewPrecompute(instances[i].Tree)
	})
	par.ForEach(len(out), func(k int) {
		if firstErr.Load() != nil {
			return
		}
		inst := instances[k/len(procs)]
		pc := pcs[k/len(procs)]
		p := procs[k%len(procs)]
		sc := Scenario{
			Instance: inst.Name,
			Nodes:    inst.Tree.Len(),
			P:        p,
			MemLB:    pc.MSeq(),
			MsLB:     sched.MakespanLowerBound(inst.Tree, p),
			Makespan: make([]float64, len(ids)),
			Memory:   make([]int64, len(ids)),
		}
		for i, id := range ids {
			s, err := pc.Run(id, p, 0)
			if err != nil {
				firstErr.CompareAndSwap(nil, fmt.Errorf("report: %s on %s (p=%d): %w", id, inst.Name, p, err))
				return
			}
			sc.Makespan[i] = s.Makespan(inst.Tree)
			sc.Memory[i] = sched.PeakMemory(inst.Tree, s)
		}
		out[k] = sc
	})
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return out, nil
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Heuristic    string
	BestMem      float64 // share of scenarios with the (equal-)lowest memory
	Within5Mem   float64 // share within 5% of the lowest memory
	AvgDevSeqMem float64 // mean of (memory/M_seq - 1), in percent
	BestMs       float64 // share of scenarios with the (equal-)lowest makespan
	Within5Ms    float64 // share within 5% of the lowest makespan
	AvgDevBestMs float64 // mean of (makespan/best - 1), in percent
}

// Table1 aggregates the scenarios into the paper's Table 1.
func Table1(scs []Scenario) []Table1Row {
	names := Heuristics()
	rows := make([]Table1Row, len(names))
	if len(scs) == 0 {
		for i, n := range names {
			rows[i].Heuristic = n
		}
		return rows
	}
	n := len(names)
	bestMem := make([][]float64, n) // 1 if best, else 0
	within5Mem := make([][]float64, n)
	devSeqMem := make([][]float64, n)
	bestMs := make([][]float64, n)
	within5Ms := make([][]float64, n)
	devBestMs := make([][]float64, n)
	for _, sc := range scs {
		minMem := sc.Memory[0]
		minMs := sc.Makespan[0]
		for i := 1; i < n; i++ {
			if sc.Memory[i] < minMem {
				minMem = sc.Memory[i]
			}
			if sc.Makespan[i] < minMs {
				minMs = sc.Makespan[i]
			}
		}
		for i := 0; i < n; i++ {
			bestMem[i] = append(bestMem[i], b2f(sc.Memory[i] == minMem))
			within5Mem[i] = append(within5Mem[i], b2f(float64(sc.Memory[i]) <= 1.05*float64(minMem)))
			if sc.MemLB > 0 {
				devSeqMem[i] = append(devSeqMem[i], (float64(sc.Memory[i])/float64(sc.MemLB)-1)*100)
			}
			bestMs[i] = append(bestMs[i], b2f(sc.Makespan[i] <= minMs*(1+1e-12)))
			within5Ms[i] = append(within5Ms[i], b2f(sc.Makespan[i] <= 1.05*minMs))
			if minMs > 0 {
				devBestMs[i] = append(devBestMs[i], (sc.Makespan[i]/minMs-1)*100)
			}
		}
	}
	for i, name := range names {
		rows[i] = Table1Row{
			Heuristic:    name,
			BestMem:      100 * stats.Mean(bestMem[i]),
			Within5Mem:   100 * stats.Mean(within5Mem[i]),
			AvgDevSeqMem: stats.Mean(devSeqMem[i]),
			BestMs:       100 * stats.Mean(bestMs[i]),
			Within5Ms:    100 * stats.Mean(within5Ms[i]),
			AvgDevBestMs: stats.Mean(devBestMs[i]),
		}
	}
	return rows
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteTable1 renders Table 1 in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintf(w, "%-18s %10s %12s %14s %10s %12s %14s\n",
		"Heuristic", "Best mem", "Within 5%", "Avg dev seq", "Best mks", "Within 5%", "Avg dev best"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-18s %9.1f%% %11.1f%% %13.1f%% %9.1f%% %11.1f%% %13.1f%%\n",
			r.Heuristic, r.BestMem, r.Within5Mem, r.AvgDevSeqMem, r.BestMs, r.Within5Ms, r.AvgDevBestMs); err != nil {
			return err
		}
	}
	return nil
}

// FigPoint is one scatter point of Figures 6-8: x is the makespan ratio,
// y the memory ratio against the figure's reference.
type FigPoint struct {
	Instance  string
	P         int
	Heuristic string
	X, Y      float64
}

// Fig6 normalizes every scenario against the lower bounds (paper Fig. 6).
func Fig6(scs []Scenario) []FigPoint {
	return figure(scs, func(sc Scenario, i int) (float64, float64) {
		return sc.Makespan[i] / sc.MsLB, float64(sc.Memory[i]) / float64(sc.MemLB)
	}, nil)
}

// Fig7 normalizes against ParSubtrees (paper Fig. 7); the reference
// heuristic itself is omitted, as in the paper.
func Fig7(scs []Scenario) []FigPoint { return figRelative(scs, "ParSubtrees") }

// Fig8 normalizes against ParInnerFirst (paper Fig. 8).
func Fig8(scs []Scenario) []FigPoint { return figRelative(scs, "ParInnerFirst") }

func figRelative(scs []Scenario, ref string) []FigPoint {
	names := Heuristics()
	refIdx := -1
	for i, n := range names {
		if n == ref {
			refIdx = i
		}
	}
	skip := map[int]bool{refIdx: true}
	return figure(scs, func(sc Scenario, i int) (float64, float64) {
		return sc.Makespan[i] / sc.Makespan[refIdx], float64(sc.Memory[i]) / float64(sc.Memory[refIdx])
	}, skip)
}

func figure(scs []Scenario, norm func(Scenario, int) (float64, float64), skip map[int]bool) []FigPoint {
	names := Heuristics()
	var pts []FigPoint
	for _, sc := range scs {
		for i, name := range names {
			if skip[i] {
				continue
			}
			x, y := norm(sc, i)
			pts = append(pts, FigPoint{Instance: sc.Instance, P: sc.P, Heuristic: name, X: x, Y: y})
		}
	}
	return pts
}

// Crosses computes the per-heuristic distribution cross (mean center,
// P10-P90 arms) of a figure's point cloud, keyed by heuristic name.
func Crosses(pts []FigPoint) map[string]stats.Cross {
	xs := map[string][]float64{}
	ys := map[string][]float64{}
	for _, p := range pts {
		xs[p.Heuristic] = append(xs[p.Heuristic], p.X)
		ys[p.Heuristic] = append(ys[p.Heuristic], p.Y)
	}
	out := make(map[string]stats.Cross, len(xs))
	for h := range xs {
		out[h] = stats.NewCross(xs[h], ys[h])
	}
	return out
}

// WriteCSV writes the points as CSV (instance,p,heuristic,x,y).
func WriteCSV(w io.Writer, pts []FigPoint) error {
	if _, err := io.WriteString(w, "instance,p,heuristic,x,y\n"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%g,%g\n", p.Instance, p.P, p.Heuristic, p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// WriteCrosses renders the per-heuristic crosses sorted by name.
func WriteCrosses(w io.Writer, crosses map[string]stats.Cross) error {
	names := make([]string, 0, len(crosses))
	for n := range crosses {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%-18s %s\n", n, crosses[n]); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-paragraph comparison of the crosses, used by the
// experiment harness output.
func Summary(scs []Scenario) string {
	var sb strings.Builder
	rows := Table1(scs)
	fmt.Fprintf(&sb, "%d scenarios (%d heuristics)\n", len(scs), len(rows))
	_ = WriteTable1(&sb, rows)
	return sb.String()
}

// ByP recomputes Table 1 separately for each processor count, exposing how
// the heuristic trade-offs shift with parallelism (the paper aggregates
// over p; this is the natural per-p drill-down). Keys are the distinct P
// values of scs.
func ByP(scs []Scenario) map[int][]Table1Row {
	buckets := map[int][]Scenario{}
	for _, sc := range scs {
		buckets[sc.P] = append(buckets[sc.P], sc)
	}
	out := make(map[int][]Table1Row, len(buckets))
	for p, b := range buckets {
		out[p] = Table1(b)
	}
	return out
}

// WriteByP renders the per-p tables in ascending processor order.
func WriteByP(w io.Writer, byP map[int][]Table1Row) error {
	ps := make([]int, 0, len(byP))
	for p := range byP {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	for _, p := range ps {
		if _, err := fmt.Fprintf(w, "p = %d\n", p); err != nil {
			return err
		}
		if err := WriteTable1(w, byP[p]); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
