package report

import (
	"bytes"
	"strings"
	"testing"

	"treesched/internal/dataset"
)

func quickScenarios(t *testing.T) []Scenario {
	t.Helper()
	insts, err := dataset.Collection(dataset.Quick, 3)
	if err != nil {
		t.Fatal(err)
	}
	scs, err := Run(insts[:8], []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

func TestRunProducesConsistentScenarios(t *testing.T) {
	scs := quickScenarios(t)
	if len(scs) != 16 {
		t.Fatalf("got %d scenarios, want 16", len(scs))
	}
	nh := len(Heuristics())
	for _, sc := range scs {
		if len(sc.Makespan) != nh || len(sc.Memory) != nh {
			t.Fatalf("scenario has %d/%d entries", len(sc.Makespan), len(sc.Memory))
		}
		for i := 0; i < nh; i++ {
			if sc.Makespan[i] < sc.MsLB-1e-6 {
				t.Fatalf("%s p=%d: makespan below LB", sc.Instance, sc.P)
			}
			if sc.Memory[i] < sc.MemLB {
				t.Fatalf("%s p=%d: memory %d below sequential LB %d", sc.Instance, sc.P, sc.Memory[i], sc.MemLB)
			}
		}
	}
}

func TestTable1Shares(t *testing.T) {
	scs := quickScenarios(t)
	rows := Table1(scs)
	if len(rows) != len(Heuristics()) {
		t.Fatalf("%d rows", len(rows))
	}
	// In every scenario someone achieves the best memory and makespan, so
	// the shares must sum to at least 100%.
	var memSum, msSum float64
	for _, r := range rows {
		memSum += r.BestMem
		msSum += r.BestMs
		if r.BestMem < 0 || r.BestMem > 100 || r.Within5Mem < r.BestMem {
			t.Fatalf("row %+v inconsistent (memory)", r)
		}
		if r.BestMs < 0 || r.BestMs > 100 || r.Within5Ms < r.BestMs {
			t.Fatalf("row %+v inconsistent (makespan)", r)
		}
		if r.AvgDevSeqMem < 0 {
			t.Fatalf("%s: negative memory deviation %g", r.Heuristic, r.AvgDevSeqMem)
		}
		if r.AvgDevBestMs < 0 {
			t.Fatalf("%s: negative makespan deviation %g", r.Heuristic, r.AvgDevBestMs)
		}
	}
	if memSum < 100-1e-9 || msSum < 100-1e-9 {
		t.Fatalf("best shares sum below 100%%: mem %g ms %g", memSum, msSum)
	}
}

func TestTable1Empty(t *testing.T) {
	rows := Table1(nil)
	if len(rows) != len(Heuristics()) {
		t.Fatalf("empty Table1 rows: %d", len(rows))
	}
}

func TestFiguresShapes(t *testing.T) {
	scs := quickScenarios(t)
	nh := len(Heuristics())
	f6 := Fig6(scs)
	if len(f6) != len(scs)*nh {
		t.Fatalf("Fig6 has %d points", len(f6))
	}
	for _, p := range f6 {
		if p.X < 1-1e-9 || p.Y < 1-1e-9 {
			t.Fatalf("Fig6 point below both lower bounds: %+v", p)
		}
	}
	f7 := Fig7(scs)
	if len(f7) != len(scs)*(nh-1) {
		t.Fatalf("Fig7 has %d points", len(f7))
	}
	for _, p := range f7 {
		if p.Heuristic == "ParSubtrees" {
			t.Fatalf("Fig7 contains its reference heuristic")
		}
	}
	f8 := Fig8(scs)
	for _, p := range f8 {
		if p.Heuristic == "ParInnerFirst" {
			t.Fatalf("Fig8 contains its reference heuristic")
		}
	}
}

func TestCrossesAndWriters(t *testing.T) {
	scs := quickScenarios(t)
	pts := Fig6(scs)
	crosses := Crosses(pts)
	if len(crosses) != len(Heuristics()) {
		t.Fatalf("crosses for %d heuristics", len(crosses))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(pts)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(pts)+1)
	}
	buf.Reset()
	if err := WriteCrosses(&buf, crosses); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ParDeepestFirst") {
		t.Fatalf("crosses output missing heuristic:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteTable1(&buf, Table1(scs)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ParSubtrees") {
		t.Fatalf("table output missing heuristic")
	}
	if s := Summary(scs); !strings.Contains(s, "scenarios") {
		t.Fatalf("Summary output: %q", s)
	}
}

func TestRenderScatter(t *testing.T) {
	scs := quickScenarios(t)
	pts := Fig6(scs)
	var buf bytes.Buffer
	if err := RenderScatter(&buf, pts, 60, 16); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "legend") {
		t.Fatalf("scatter missing legend:\n%s", out)
	}
	marks := 0
	for _, c := range out {
		switch c {
		case 'S', 'O', 'I', 'D', '*':
			marks++
		}
	}
	if marks < 10 {
		t.Fatalf("scatter has only %d marks:\n%s", marks, out)
	}
	buf.Reset()
	if err := RenderScatter(&buf, nil, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no points") {
		t.Fatalf("empty scatter: %q", buf.String())
	}
}

func TestRenderScatterClampsTinySizes(t *testing.T) {
	pts := []FigPoint{{Heuristic: "ParSubtrees", X: 1, Y: 2}, {Heuristic: "ParDeepestFirst", X: 2, Y: 5}}
	var buf bytes.Buffer
	if err := RenderScatter(&buf, pts, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(buf.String()) == 0 {
		t.Fatal("no output")
	}
}

func TestByP(t *testing.T) {
	scs := quickScenarios(t)
	byP := ByP(scs)
	if len(byP) != 2 {
		t.Fatalf("ByP buckets: %d, want 2", len(byP))
	}
	for p, rows := range byP {
		if len(rows) != len(Heuristics()) {
			t.Fatalf("p=%d has %d rows", p, len(rows))
		}
	}
	var buf bytes.Buffer
	if err := WriteByP(&buf, byP); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p = 2") || !strings.Contains(buf.String(), "p = 8") {
		t.Fatalf("WriteByP output:\n%s", buf.String())
	}
}
