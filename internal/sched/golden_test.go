package sched_test

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"treesched/internal/dataset"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// -update regenerates testdata/golden_quick.json from the current
// implementation. The checked-in file was produced by the pre-refactor
// (PR 3) scheduling core; the test therefore proves that the
// zero-allocation rewrite emits byte-identical schedules.
var updateGolden = flag.Bool("update", false, "rewrite golden schedule hashes")

// goldenConfigs is every heuristic the package can run, including the
// capped ones (factor 2 × M_seq).
func goldenConfigs() []struct {
	name string
	opts sched.Options
} {
	mk := func(id sched.HeuristicID, p int, factor float64) struct {
		name string
		opts sched.Options
	} {
		return struct {
			name string
			opts sched.Options
		}{
			name: fmt.Sprintf("%s/p%d", id, p),
			opts: sched.Options{Processors: p, Heuristics: []sched.HeuristicID{id}, MemCapFactor: factor},
		}
	}
	var cfgs []struct {
		name string
		opts sched.Options
	}
	ids := []sched.HeuristicID{
		sched.IDParSubtrees, sched.IDParSubtreesOptim, sched.IDParInnerFirst,
		sched.IDParDeepestFirst, sched.IDParInnerFirstArbitrary,
		sched.IDSequential, sched.IDOptimalSequential,
		sched.IDMemCapped, sched.IDMemCappedBooking,
	}
	for _, p := range []int{2, 8} {
		for _, id := range ids {
			cfgs = append(cfgs, mk(id, p, 2))
		}
	}
	return cfgs
}

// scheduleHash digests a schedule byte-exactly: every start time's IEEE
// bits, every processor assignment, P, and the simulated peak memory.
func scheduleHash(t *tree.Tree, s *sched.Schedule) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s.P))
	h.Write(buf[:])
	for i := range s.Start {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.Start[i]))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(s.Proc[i]))
		h.Write(buf[:])
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(sched.PeakMemory(t, s)))
	h.Write(buf[:])
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestGoldenSchedulesQuickDataset locks every heuristic's schedule on the
// quick dataset to checked-in hashes: refactors of the scheduling core
// must keep schedules byte-identical (start-time bits, processors, peak).
func TestGoldenSchedulesQuickDataset(t *testing.T) {
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for _, inst := range insts {
		for _, cfg := range goldenConfigs() {
			hs, _, err := cfg.opts.SelectFor(inst.Tree)
			if err != nil {
				t.Fatalf("%s %s: %v", inst.Name, cfg.name, err)
			}
			s, err := hs[0].Run(inst.Tree, cfg.opts.Processors)
			if err != nil {
				t.Fatalf("%s %s: %v", inst.Name, cfg.name, err)
			}
			if err := s.Validate(inst.Tree); err != nil {
				t.Fatalf("%s %s: invalid schedule: %v", inst.Name, cfg.name, err)
			}
			got[inst.Name+"/"+cfg.name] = scheduleHash(inst.Tree, s)
		}
	}

	path := filepath.Join("testdata", "golden_quick.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), path)
		return
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, computed %d", len(want), len(got))
	}
	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bad := 0
	for _, k := range keys {
		if want[k] != got[k] {
			bad++
			if bad <= 10 {
				t.Errorf("%s: schedule changed (golden %s, got %s)", k, want[k], got[k])
			}
		}
	}
	if bad > 10 {
		t.Errorf("... and %d more golden mismatches", bad-10)
	}
}
