package sched

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// HeuristicID enumerates every scheduler this package can run. It is the
// typed alternative to string names: callers such as the HTTP service
// parse wire names once with ParseHeuristic and then work with IDs.
type HeuristicID int

const (
	// The paper's four heuristics, in Table 1 order.
	IDParSubtrees HeuristicID = iota
	IDParSubtreesOptim
	IDParInnerFirst
	IDParDeepestFirst
	// IDParInnerFirstArbitrary is the leaf-order ablation of ParInnerFirst.
	IDParInnerFirstArbitrary
	// IDSequential is the memory lower-bound baseline: the memory-optimal
	// postorder executed on a single processor.
	IDSequential
	// IDOptimalSequential is Liu's exact optimal sequential traversal
	// (may beat every postorder), executed on a single processor.
	IDOptimalSequential
	// IDMemCapped and IDMemCappedBooking schedule under a hard memory cap
	// (Options.MemCapFactor × M_seq).
	IDMemCapped
	IDMemCappedBooking
	// IDExact is the exact-solver pseudo-heuristic: a valid wire name
	// ("Exact") but not runnable by this package — the branch-and-bound
	// lives in internal/exact (which builds on this package) and is
	// surfaced as a portfolio candidate by internal/portfolio. Like
	// IDAuto, Options.Validate rejects it in a plain selection.
	IDExact
	// IDAuto is the portfolio pseudo-heuristic: it is a valid wire name
	// ("Auto") but not runnable by this package. The portfolio layer
	// (internal/portfolio, the service's /v1/portfolio path) expands it
	// into racing a candidate set and selecting a winner by objective, so
	// Options.Validate rejects it in a plain selection.
	IDAuto

	numHeuristicIDs // sentinel; keep last
)

var heuristicNames = [numHeuristicIDs]string{
	IDParSubtrees:            "ParSubtrees",
	IDParSubtreesOptim:       "ParSubtreesOptim",
	IDParInnerFirst:          "ParInnerFirst",
	IDParDeepestFirst:        "ParDeepestFirst",
	IDParInnerFirstArbitrary: "ParInnerFirstArbitrary",
	IDSequential:             "Sequential",
	IDOptimalSequential:      "OptimalSequential",
	IDMemCapped:              "MemCapped",
	IDMemCappedBooking:       "MemCappedBooking",
	IDExact:                  "Exact",
	IDAuto:                   "Auto",
}

// heuristicIDs inverts heuristicNames once at init, making ParseHeuristic
// (and every wire decode through UnmarshalText) a map lookup instead of a
// linear scan.
var heuristicIDs = func() map[string]HeuristicID {
	m := make(map[string]HeuristicID, len(heuristicNames))
	for id, n := range heuristicNames {
		m[n] = HeuristicID(id)
	}
	return m
}()

// String returns the canonical wire name of the heuristic.
func (id HeuristicID) String() string {
	if id < 0 || id >= numHeuristicIDs {
		return fmt.Sprintf("HeuristicID(%d)", int(id))
	}
	return heuristicNames[id]
}

// Valid reports whether id names an actual heuristic.
func (id HeuristicID) Valid() bool { return id >= 0 && id < numHeuristicIDs }

// ParseHeuristic resolves a canonical wire name to its ID. Unknown names
// yield an error enumerating every valid name, so trace and request
// authors see the whole menu instead of guessing.
func ParseHeuristic(name string) (HeuristicID, error) {
	id, ok := heuristicIDs[name]
	if !ok {
		return -1, fmt.Errorf("sched: unknown heuristic %q (known: %s)",
			name, strings.Join(HeuristicNames(), ", "))
	}
	return id, nil
}

// MarshalText encodes the ID as its canonical wire name, so wire structs
// can carry []HeuristicID fields that serialize as JSON string arrays.
func (id HeuristicID) MarshalText() ([]byte, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("sched: cannot marshal invalid heuristic id %d", int(id))
	}
	return []byte(heuristicNames[id]), nil
}

// UnmarshalText decodes a canonical wire name.
func (id *HeuristicID) UnmarshalText(text []byte) error {
	got, err := ParseHeuristic(string(text))
	if err != nil {
		return err
	}
	*id = got
	return nil
}

// HeuristicNames returns every canonical wire name in sorted order, for
// error texts and documentation.
func HeuristicNames() []string {
	names := make([]string, 0, len(heuristicNames))
	for _, n := range heuristicNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PaperHeuristics returns the IDs of the paper's four heuristics in
// Table 1 order, the default selection everywhere.
func PaperHeuristics() []HeuristicID {
	return []HeuristicID{IDParSubtrees, IDParSubtreesOptim, IDParInnerFirst, IDParDeepestFirst}
}

// Options selects the schedulers to run on a tree and their shared
// parameters. The zero value is not runnable: Processors must be >= 1 (or
// Machine set).
type Options struct {
	// Processors is the machine size p. Required (>= 1) unless Machine is
	// set, in which case it must be 0 or equal to Machine.P().
	Processors int
	// Machine is the explicit machine model: per-processor speeds for
	// heterogeneous (related-machines) scheduling. nil means the paper's
	// uniform machine of Processors unit-speed processors.
	Machine *machine.Model
	// Heuristics lists the schedulers to run, in output order.
	// Empty means the paper's four heuristics.
	Heuristics []HeuristicID
	// MemCapFactor sets the memory cap of IDMemCapped and
	// IDMemCappedBooking to MemCapFactor × MemoryLowerBound(t). It must be
	// >= 1 when a capped heuristic is selected and is ignored otherwise.
	MemCapFactor float64
	// Partitions > 1 runs IDParInnerFirst through the partitioned
	// scheduler (see PartitionedInnerFirst): the tree is decomposed into
	// up to Partitions independent work-packages scheduled concurrently
	// and stitched deterministically. 0 or 1 (the default) is the exact
	// sequential scheduler; the other heuristics ignore it. Capped at the
	// processor count.
	Partitions int
}

// Model resolves the effective machine: Machine when set, else the
// uniform machine of size Processors. Only valid after Validate.
func (o Options) Model() *machine.Model {
	if o.Machine != nil {
		return o.Machine
	}
	return machine.Uniform(o.Processors)
}

// Validate checks o without reference to a particular tree.
func (o Options) Validate() error {
	if o.Machine != nil {
		if o.Processors != 0 && o.Processors != o.Machine.P() {
			return fmt.Errorf("sched: options: processors %d conflicts with machine %q (%d processors)",
				o.Processors, o.Machine.Spec(), o.Machine.P())
		}
	} else if o.Processors < 1 {
		return fmt.Errorf("sched: options: processors must be >= 1, got %d", o.Processors)
	}
	if o.Partitions < 0 {
		return fmt.Errorf("sched: options: partitions must be >= 0, got %d", o.Partitions)
	}
	for _, id := range o.Heuristics {
		if !id.Valid() {
			return fmt.Errorf("sched: options: invalid heuristic id %d", int(id))
		}
		if id == IDAuto {
			return fmt.Errorf("sched: options: Auto is a pseudo-heuristic; it must be resolved by the portfolio layer before selection")
		}
		if id == IDExact {
			return fmt.Errorf("sched: options: Exact is a pseudo-heuristic; it runs through the portfolio layer or the exact solver, not a plain selection")
		}
		// !(>= 1) rather than (< 1) so NaN is rejected too.
		if (id == IDMemCapped || id == IDMemCappedBooking) && !(o.MemCapFactor >= 1) {
			return fmt.Errorf("sched: options: %s requires mem_cap_factor >= 1, got %g", id, o.MemCapFactor)
		}
	}
	return nil
}

// Select resolves o into runnable heuristics. Each heuristic builds its
// per-tree Precompute on every Run call; callers scheduling one tree more
// than once (or several heuristics on the same tree) should use SelectFor
// or SelectPre so the precompute is shared.
func (o Options) Select() ([]Heuristic, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ids := o.heuristicIDs()
	hs := make([]Heuristic, 0, len(ids))
	for _, id := range ids {
		hs = append(hs, o.heuristic(id, nil))
	}
	return hs, nil
}

// SelectFor is Select specialized to a single tree: one Precompute — the
// memory-optimal postorder σ, M_seq, depths, priority rankings — is built
// here and shared by every returned heuristic, across repeated Run calls
// and processor counts. M_seq is returned alongside. The returned
// heuristics must only be run on t.
func (o Options) SelectFor(t *tree.Tree) ([]Heuristic, int64, error) {
	return o.SelectPre(NewPrecompute(t))
}

// SelectPre is SelectFor for callers that already hold the tree's
// Precompute (the portfolio racer, the forest planner), so the scheduling
// core computes Liu's traversal exactly once per tree no matter how many
// layers are stacked on top.
func (o Options) SelectPre(pc *Precompute) ([]Heuristic, int64, error) {
	if err := o.Validate(); err != nil {
		return nil, 0, err
	}
	ids := o.heuristicIDs()
	hs := make([]Heuristic, 0, len(ids))
	for _, id := range ids {
		hs = append(hs, o.heuristic(id, pc))
	}
	return hs, pc.MSeq(), nil
}

func (o Options) heuristicIDs() []HeuristicID {
	if len(o.Heuristics) == 0 {
		return PaperHeuristics()
	}
	return o.Heuristics
}

// heuristic binds id to pc (nil: a fresh Precompute per Run call). The
// contract of SelectFor/SelectPre is that the bound heuristics only run
// on pc's tree; passing any other tree is rejected rather than silently
// scheduling with the wrong precompute.
func (o Options) heuristic(id HeuristicID, pc *Precompute) Heuristic {
	factor := o.MemCapFactor
	parts := o.Partitions
	runOn := func(t *tree.Tree, m *machine.Model) (*Schedule, error) {
		ctx := pc
		if ctx == nil {
			ctx = NewPrecompute(t)
		} else if t != ctx.t {
			return nil, fmt.Errorf("sched: heuristic %s was selected for a different tree (SelectFor binds its heuristics to one tree)", id)
		}
		if id == IDParInnerFirst && parts > 1 {
			return ctx.PartitionedInnerFirstOn(m, parts)
		}
		return ctx.RunOn(id, m, factor)
	}
	return Heuristic{ID: id, Name: id.String(),
		Run: func(t *tree.Tree, p int) (*Schedule, error) {
			m, err := uniformChecked(p)
			if err != nil {
				return nil, err
			}
			return runOn(t, m)
		},
		RunOn: runOn,
	}
}

func errUnrunnable(id HeuristicID) error {
	if id == IDAuto {
		return fmt.Errorf("sched: Auto is a pseudo-heuristic; it must be resolved by the portfolio layer")
	}
	if id == IDExact {
		return fmt.Errorf("sched: Exact is a pseudo-heuristic; it is solved by internal/exact via the portfolio layer")
	}
	return fmt.Errorf("sched: heuristic id %d is not runnable", int(id))
}

// capFromFactor converts a cap expressed as a multiple of M_seq into an
// absolute cap, rounding up so the cap never undershoots the requested
// factor × M_seq through float truncation and factor 1.0 is always
// feasible sequentially. Products beyond int64 range saturate at
// MaxInt64 (an effectively unlimited cap) instead of overflowing.
func capFromFactor(factor float64, mseq int64) int64 {
	prod := math.Ceil(factor * float64(mseq))
	if prod >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	cap := int64(prod)
	if cap < mseq {
		cap = mseq
	}
	return cap
}

// SequentialSchedule lays order out back to back on a single processor.
// order must be a topological order of t (children before parents); a
// non-topological order yields an invalid schedule, which Validate
// detects. Validation is left to the caller so hot paths that always pass
// a correct order (the service, the CLI) don't pay for it twice.
func SequentialSchedule(t *tree.Tree, order []int) (*Schedule, error) {
	n := t.Len()
	if len(order) != n {
		return nil, fmt.Errorf("sched: sequential: order covers %d of %d nodes", len(order), n)
	}
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: 1}
	sequentialFill(t, s, order)
	return s, nil
}

// SequentialScheduleOn is the sequential baseline on an explicit machine
// model: on a uniform model it is SequentialSchedule (the historical
// one-processor schedule); on a heterogeneous model every task runs back
// to back on the machine's fastest processor, speed-scaled.
func SequentialScheduleOn(t *tree.Tree, m *machine.Model, order []int) (*Schedule, error) {
	if m.IsUniform() {
		return SequentialSchedule(t, order)
	}
	n := t.Len()
	if len(order) != n {
		return nil, fmt.Errorf("sched: sequential: order covers %d of %d nodes", len(order), n)
	}
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: m.P(), M: m}
	proc := m.Fastest()
	for i := range s.Proc {
		s.Proc[i] = proc
	}
	sequentialFill(t, s, order)
	return s, nil
}

// sequentialFill lays order out back to back on the processor already
// recorded in s.Proc, tracking the exact peak inline. One task at a time
// makes the running resident maximum exactly the simulator's peak —
// except around zero-duration tasks, whose same-instant replay order
// (topological, not σ) can differ, so their presence skips the cache like
// in every other scheduler.
func sequentialFill(t *tree.Tree, s *Schedule, order []int) {
	var now float64
	var mem, peak int64
	hasPulse := false
	for _, v := range order {
		s.Start[v] = now
		now += s.Dur(t, v)
		hasPulse = hasPulse || t.W(v) == 0
		mem += t.N(v) + t.F(v)
		if mem > peak {
			peak = mem
		}
		mem -= t.N(v) + t.InSize(v)
	}
	if !hasPulse {
		s.setPeak(peak)
	}
}
