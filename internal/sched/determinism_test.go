package sched_test

import (
	"math/rand"
	"testing"

	"treesched/internal/sched"
)

// TestHeuristicsDeterministic: identical inputs must give identical
// schedules — the heuristics break all priority ties explicitly, and the
// harness depends on reproducibility.
func TestHeuristicsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		tr := randomTree(rng, 50+rng.Intn(150))
		for _, h := range sched.Heuristics() {
			s1, err := h.Run(tr, 4)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := h.Run(tr, 4)
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < tr.Len(); v++ {
				if s1.Start[v] != s2.Start[v] || s1.Proc[v] != s2.Proc[v] {
					t.Fatalf("%s: node %d differs between runs", h.Name, v)
				}
			}
		}
	}
}

func TestCappedSchedulersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	tr := randomTree(rng, 120)
	cap := 3 * sched.MemoryLowerBound(tr)
	for _, f := range []func() (*sched.Schedule, error){
		func() (*sched.Schedule, error) { return sched.MemCapped(tr, 4, cap) },
		func() (*sched.Schedule, error) { return sched.MemCappedBooking(tr, 4, cap) },
	} {
		s1, err := f()
		if err != nil {
			t.Fatal(err)
		}
		s2, err := f()
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < tr.Len(); v++ {
			if s1.Start[v] != s2.Start[v] {
				t.Fatalf("capped scheduler nondeterministic at node %d", v)
			}
		}
	}
}
