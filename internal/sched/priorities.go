package sched

import (
	"treesched/internal/tree"

	"treesched/internal/traversal"
)

// ParInnerFirst is the parallel-postorder heuristic of paper §5.2, built on
// the list scheduler: ready inner nodes always precede ready leaves; inner
// nodes are ordered by non-increasing depth; leaves follow the
// memory-optimal sequential postorder. Being a list scheduling, it is a
// (2-1/p)-approximation for the makespan; its memory use is unbounded
// relative to M_seq (paper Fig. 4).
func ParInnerFirst(t *tree.Tree, p int) (*Schedule, error) {
	order := traversal.BestPostOrder(t).Order
	return parInnerFirstWithOrder(t, p, order)
}

// ParInnerFirstArbitrary is ParInnerFirst with an arbitrary (natural index)
// leaf order instead of the optimal sequential postorder. It exists as the
// ablation baseline for the role of the input order O in Algorithm 3.
func ParInnerFirstArbitrary(t *tree.Tree, p int) (*Schedule, error) {
	order := make([]int, t.Len())
	for i := range order {
		order[i] = i
	}
	return parInnerFirstWithOrder(t, p, order)
}

func parInnerFirstWithOrder(t *tree.Tree, p int, order []int) (*Schedule, error) {
	pos := make([]int, t.Len())
	for k, v := range order {
		pos[v] = k
	}
	depth := t.Depths()
	leaf := make([]bool, t.Len())
	for v := 0; v < t.Len(); v++ {
		leaf[v] = t.IsLeaf(v)
	}
	less := func(a, b int) bool {
		if leaf[a] != leaf[b] {
			return !leaf[a] // inner nodes first
		}
		if !leaf[a] { // both inner: deepest first
			if depth[a] != depth[b] {
				return depth[a] > depth[b]
			}
			return pos[a] < pos[b]
		}
		return pos[a] < pos[b] // both leaves: input order O
	}
	return ListSchedule(t, p, less)
}

// ParDeepestFirst is the makespan-focused heuristic of paper §5.3: ready
// nodes are ordered by non-increasing w-weighted distance to the root
// (including their own w — the deepest node starts the critical path), with
// inner nodes before leaves and the optimal sequential postorder breaking
// remaining ties. Its memory use is unbounded relative to M_seq
// (paper Fig. 5).
func ParDeepestFirst(t *tree.Tree, p int) (*Schedule, error) {
	order := traversal.BestPostOrder(t).Order
	pos := make([]int, t.Len())
	for k, v := range order {
		pos[v] = k
	}
	wdepth := t.WDepths()
	leaf := make([]bool, t.Len())
	for v := 0; v < t.Len(); v++ {
		leaf[v] = t.IsLeaf(v)
	}
	less := func(a, b int) bool {
		if wdepth[a] != wdepth[b] {
			return wdepth[a] > wdepth[b]
		}
		if leaf[a] != leaf[b] {
			return !leaf[a] // inner nodes before leaves
		}
		return pos[a] < pos[b]
	}
	return ListSchedule(t, p, less)
}
