package sched

import (
	"fmt"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// uniformChecked maps a bare processor count to the paper's uniform
// machine, with the historical validation error.
func uniformChecked(p int) (*machine.Model, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: need at least one processor, got %d", p)
	}
	return machine.Uniform(p), nil
}

// ParInnerFirst is the parallel-postorder heuristic of paper §5.2, built on
// the list scheduler: ready inner nodes always precede ready leaves; inner
// nodes are ordered by non-increasing depth; leaves follow the
// memory-optimal sequential postorder. Being a list scheduling, it is a
// (2-1/p)-approximation for the makespan; its memory use is unbounded
// relative to M_seq (paper Fig. 4).
func ParInnerFirst(t *tree.Tree, p int) (*Schedule, error) {
	return NewPrecompute(t).ParInnerFirst(p)
}

// ParInnerFirst is the precompute-sharing form of the package-level
// function: σ, the depths and the priority ranking are computed once per
// tree and reused across calls and processor counts.
func (pc *Precompute) ParInnerFirst(p int) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return pc.ParInnerFirstOn(m)
}

// ParInnerFirstOn is ParInnerFirst on an explicit machine model (see
// machine.Model); on a uniform model it is byte-identical to the
// processor-count form.
func (pc *Precompute) ParInnerFirstOn(m *machine.Model) (*Schedule, error) {
	return listScheduleRank(pc.t, m, pc.rankInnerFirst())
}

// ParInnerFirstArbitrary is ParInnerFirst with an arbitrary (natural index)
// leaf order instead of the optimal sequential postorder. It exists as the
// ablation baseline for the role of the input order O in Algorithm 3 — its
// ranking needs no traversal at all, so this entry point skips the
// precompute's postorder DP entirely.
func ParInnerFirstArbitrary(t *tree.Tree, p int) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	depth, leaf := depthsAndLeaves(t)
	return listScheduleRank(t, m, packInnerRank(depth, leaf, nil))
}

// ParInnerFirstArbitrary is the precompute-sharing form of the
// package-level function.
func (pc *Precompute) ParInnerFirstArbitrary(p int) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return pc.ParInnerFirstArbitraryOn(m)
}

// ParInnerFirstArbitraryOn is ParInnerFirstArbitrary on an explicit
// machine model.
func (pc *Precompute) ParInnerFirstArbitraryOn(m *machine.Model) (*Schedule, error) {
	return listScheduleRank(pc.t, m, pc.rankInnerFirstArbitrary())
}

// ParDeepestFirst is the makespan-focused heuristic of paper §5.3: ready
// nodes are ordered by non-increasing w-weighted distance to the root
// (including their own w — the deepest node starts the critical path), with
// inner nodes before leaves and the optimal sequential postorder breaking
// remaining ties. Its memory use is unbounded relative to M_seq
// (paper Fig. 5).
func ParDeepestFirst(t *tree.Tree, p int) (*Schedule, error) {
	return NewPrecompute(t).ParDeepestFirst(p)
}

// ParDeepestFirst is the precompute-sharing form of the package-level
// function.
func (pc *Precompute) ParDeepestFirst(p int) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return pc.ParDeepestFirstOn(m)
}

// ParDeepestFirstOn is ParDeepestFirst on an explicit machine model. The
// priority ranking stays the w-weighted depth of the tree (speeds scale
// execution, not the critical-path structure); the machine decides which
// processor a ready task lands on and how long it runs.
func (pc *Precompute) ParDeepestFirstOn(m *machine.Model) (*Schedule, error) {
	return listScheduleRank(pc.t, m, pc.rankDeepestFirst())
}
