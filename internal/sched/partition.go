package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// This file implements the partitioned variant of ParInnerFirst for very
// large trees, following the structure of Eyraud-Dubois et al. 2014:
// independent subtrees can be scheduled in parallel and stitched without
// breaking the memory accounting, because no file crosses a subtree
// boundary except at its root edge.
//
// The tree is decomposed at the σ-front exactly like SplitSubtrees — pop
// the heaviest subtree and expose its children until enough independent
// subtrees exist — then the subtrees are LPT-packed into work-packages,
// each package owns a contiguous processor range, and every package is
// scheduled independently (its own ready heap over the shared
// ParInnerFirst ranks, its own finish heap, its own machine state). The
// popped merge nodes (the crown) run last on the fastest processor in the
// memory-minimizing quotient order, as in ParSubtrees. Packages are
// independent subtrees, so per-package schedules compose into a valid
// whole; the exact peak is recovered by the same P-way stream sweep the
// two-phase schedulers use.
//
// Two properties are load-bearing and covered by tests:
//
//   - Determinism: the output depends only on (tree, machine, partitions).
//     Work-packages are data-disjoint — every shared array is touched at
//     package-owned indices only — so the worker pool's interleaving
//     cannot reach the result, and a single-worker replay is
//     byte-identical.
//   - The sequential path is untouched: partitions <= 1 delegates to
//     ParInnerFirstOn, whose golden hashes this file must never move.
//
// A package that owns exactly one processor needs no ready heap at all:
// within one subtree on one processor, ParInnerFirst's list order offers
// no choices that affect the result, and the memory-optimal fill is σ
// restricted to the subtree, emitted straight from the postorder index in
// O(subtree). With partitions == p every package takes this heap-free
// path, which is where the large-tree speedup over the O(n log n)
// heap-driven sequential loop comes from even on one core.

// PartitionedInnerFirst schedules t on the paper's uniform machine of p
// processors with the partitioned ParInnerFirst scheduler using the given
// partition count. partitions <= 1 is exactly ParInnerFirst.
func PartitionedInnerFirst(t *tree.Tree, p, partitions int) (*Schedule, error) {
	return NewPrecompute(t).PartitionedInnerFirst(p, partitions)
}

// PartitionedInnerFirst is the precompute-sharing form of the
// package-level function.
func (pc *Precompute) PartitionedInnerFirst(p, partitions int) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return pc.PartitionedInnerFirstOn(m, partitions)
}

// PartitionedInnerFirstOn is PartitionedInnerFirst on an explicit machine
// model: packages are LPT-placed by subtree weight and own contiguous
// processor ranges; the crown runs on the fastest processor.
func (pc *Precompute) PartitionedInnerFirstOn(m *machine.Model, partitions int) (*Schedule, error) {
	return partitionedInnerFirstOn(pc, m, partitions, 0)
}

// partPkg is one work-package: a set of independent subtree roots plus
// the contiguous processor range that schedules them.
type partPkg struct {
	roots   []int
	weight  float64 // total subtree work, for LPT packing
	procOff int
	procCnt int
}

// partScratch is the per-call working set of the partitioned scheduler,
// pooled like schedScratch so a warm run only allocates the result.
type partScratch struct {
	inCrown   []bool
	inPar     []bool    // !inCrown, in quotientOrder's done[] sense
	remaining []int32   // shared, package-disjoint indices
	streams   [][]int32 // per-processor tasks in time order
	crownAsc  []int
	pkgEnd    []float64
	pkgs      []partPkg
}

var partPool = sync.Pool{New: func() any { return new(partScratch) }}

func (sc *partScratch) ensure(n, p, k int) {
	if cap(sc.inCrown) < n {
		sc.inCrown = make([]bool, n)
		sc.inPar = make([]bool, n)
		sc.remaining = make([]int32, n)
	}
	sc.inCrown = sc.inCrown[:n]
	sc.inPar = sc.inPar[:n]
	sc.remaining = sc.remaining[:n]
	clear(sc.inCrown)
	if cap(sc.streams) < p {
		sc.streams = make([][]int32, p)
	}
	sc.streams = sc.streams[:p]
	for i := range sc.streams {
		sc.streams[i] = sc.streams[i][:0]
	}
	sc.crownAsc = sc.crownAsc[:0]
	if cap(sc.pkgEnd) < k {
		sc.pkgEnd = make([]float64, k)
	}
	sc.pkgEnd = sc.pkgEnd[:k]
	clear(sc.pkgEnd)
	if cap(sc.pkgs) < k {
		sc.pkgs = make([]partPkg, k)
	}
	sc.pkgs = sc.pkgs[:k]
	for i := range sc.pkgs {
		sc.pkgs[i].roots = sc.pkgs[i].roots[:0]
		sc.pkgs[i].weight = 0
	}
}

// partWorker is the per-goroutine working set (one per pool worker, not
// per call).
type partWorker struct {
	order []int
	ready []int32
	fin   finishHeap
}

var partWorkerPool = sync.Pool{New: func() any { return new(partWorker) }}

// partitionedInnerFirstOn is the implementation; maxWorkers <= 0 means
// min(packages, GOMAXPROCS). Tests pass maxWorkers == 1 to replay the
// pool's work serially and assert byte-identical output.
func partitionedInnerFirstOn(pc *Precompute, m *machine.Model, partitions, maxWorkers int) (*Schedule, error) {
	t := pc.t
	n := t.Len()
	p := m.P()
	if partitions > p {
		partitions = p
	}
	if partitions <= 1 || p <= 1 || n == 0 {
		return pc.ParInnerFirstOn(m)
	}

	// Decompose at the σ-front: pop the globally heaviest subtree and
	// expose its children until `partitions` independent subtrees exist or
	// the heaviest is a single node. Popped nodes form the crown.
	W := pc.subtreeW()
	key := func(v int) splitKey { return splitKey{W: W[v], w: t.W(v), id: v} }
	q := newSplitQueue(partitions)
	q.Push(key(t.Root()))
	var crownLen int
	sc := partPool.Get().(*partScratch)
	// inCrown needs sizing before the pop loop; the rest is sized after K
	// is known, but ensure() does all of it in one place — K is at most
	// `partitions` so size for that and re-slice below.
	sc.ensure(n, p, partitions)
	for q.Len() < partitions {
		head := q.Max()
		if head.W <= head.w {
			break
		}
		q.PopMax()
		sc.inCrown[head.id] = true
		crownLen++
		for _, c := range t.Children(head.id) {
			q.Push(key(c))
		}
	}
	rootKeys := q.Drain() // heaviest first
	q.release()

	k := partitions
	if len(rootKeys) < k {
		k = len(rootKeys)
	}
	if k <= 1 {
		// Chain-like trees offer no independent subtrees to package; the
		// plain scheduler is both correct and faster here.
		partPool.Put(sc)
		return pc.ParInnerFirstOn(m)
	}
	sc.pkgEnd = sc.pkgEnd[:k]
	sc.pkgs = sc.pkgs[:k]

	// LPT-pack the subtrees into k packages (heaviest root onto the
	// lightest package, ties to the lowest package index), then hand each
	// package a contiguous processor range.
	pkgs := sc.pkgs
	for _, rk := range rootKeys {
		best := 0
		for i := 1; i < k; i++ {
			if pkgs[i].weight < pkgs[best].weight {
				best = i
			}
		}
		pkgs[best].roots = append(pkgs[best].roots, rk.id)
		pkgs[best].weight += rk.W
	}
	base, extra := p/k, p%k
	off := 0
	for i := range pkgs {
		cnt := base
		if i < extra {
			cnt++
		}
		pkgs[i].procOff, pkgs[i].procCnt = off, cnt
		off += cnt
	}

	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: p, M: hetModel(m)}
	rank := pc.rankInnerFirst()
	streams, remaining, inCrown := sc.streams, sc.remaining, sc.inCrown

	runPackage := func(i int, ws *partWorker) error {
		pg := &pkgs[i]
		if len(pg.roots) == 0 || pg.procCnt == 0 {
			return nil
		}
		if pg.procCnt == 1 {
			// Single processor: the package is a back-to-back σ-order fill,
			// no heaps. This is the heap-free fast path described above.
			proc := pg.procOff
			at := 0.0
			for _, r := range pg.roots {
				ws.order = pc.ix.AppendSubtreeOrder(t, r, ws.order[:0])
				for _, v := range ws.order {
					s.Start[v] = at
					s.Proc[v] = proc
					at += m.ExecTime(t.W(v), proc)
					streams[proc] = append(streams[proc], int32(v))
				}
			}
			sc.pkgEnd[i] = at
			return nil
		}
		// Multi-processor package: the rank-keyed event loop of
		// listScheduleRank, restricted to the package's nodes and its
		// processor range (local sub-machine, offsets remapped on write).
		subM, err := subModel(m, pg.procOff, pg.procCnt)
		if err != nil {
			return err
		}
		ws.order = ws.order[:0]
		for _, r := range pg.roots {
			ws.order = pc.ix.AppendSubtreeOrder(t, r, ws.order)
		}
		ready := ws.ready[:0]
		for _, v := range ws.order {
			remaining[v] = int32(t.NumChildren(v))
			if remaining[v] == 0 {
				ready = append(ready, int32(v))
			}
		}
		readyInit(ready, rank)
		fin := &ws.fin
		fin.reset()
		st := machine.NewState(subM)
		now := 0.0
		assign := func() {
			for st.Idle() > 0 && len(ready) > 0 {
				lp := st.Take()
				var v int32
				v, ready = readyPop(ready, rank)
				gp := pg.procOff + int(lp)
				s.Start[v] = now
				s.Proc[v] = gp
				streams[gp] = append(streams[gp], v)
				fin.push(now+subM.ExecTime(t.W(int(v)), int(lp)), v, lp)
			}
		}
		complete := func(v int32) {
			// The parent of a package subtree root is a crown node; every
			// other parent is package-local, so the shared counters are only
			// ever touched at package-owned indices.
			if pa := t.Parent(int(v)); pa != tree.None && !inCrown[pa] {
				remaining[pa]--
				if remaining[pa] == 0 {
					ready = readyPush(ready, int32(pa), rank)
				}
			}
		}
		assign()
		for fin.Len() > 0 {
			at, v, lp := fin.pop()
			now = at
			st.Put(lp)
			complete(v)
			for fin.Len() > 0 && fin.at[0] == now {
				_, v2, lp2 := fin.pop()
				st.Put(lp2)
				complete(v2)
			}
			assign()
		}
		ws.ready = ready
		st.Recycle()
		sc.pkgEnd[i] = now
		return nil
	}

	if err := runPackages(k, maxWorkers, runPackage); err != nil {
		partPool.Put(sc)
		return nil, err
	}

	// Stitch: the crown runs after every package on the fastest processor,
	// in the memory-minimizing quotient order (completed subtrees appear
	// as zero-work stubs), exactly like ParSubtrees' sequential phase.
	phase1End := 0.0
	for _, e := range sc.pkgEnd {
		if e > phase1End {
			phase1End = e
		}
	}
	if crownLen > 0 {
		for v := 0; v < n; v++ {
			sc.inPar[v] = !inCrown[v]
			if inCrown[v] {
				sc.crownAsc = append(sc.crownAsc, v)
			}
		}
		seqProc := m.Fastest()
		order := quotientOrder(t, sc.crownAsc, sc.inPar)
		at := phase1End
		for _, v := range order {
			s.Start[v] = at
			s.Proc[v] = seqProc
			at += m.ExecTime(t.W(v), seqProc)
			streams[seqProc] = append(streams[seqProc], int32(v))
		}
	}
	setPeakFromStreams(t, s, streams)
	partPool.Put(sc)
	return s, nil
}

// runPackages executes fn(0..k-1) on a bounded worker pool. Package
// results are data-disjoint, so the execution order is irrelevant to the
// output; maxWorkers == 1 runs in-line (the determinism tests' serial
// replay).
func runPackages(k, maxWorkers int, fn func(i int, ws *partWorker) error) error {
	nw := maxWorkers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > k {
		nw = k
	}
	if nw <= 1 {
		ws := partWorkerPool.Get().(*partWorker)
		defer partWorkerPool.Put(ws)
		for i := 0; i < k; i++ {
			if err := fn(i, ws); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func() {
			defer wg.Done()
			ws := partWorkerPool.Get().(*partWorker)
			defer partWorkerPool.Put(ws)
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				if err := fn(i, ws); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// subModel is the machine restricted to the contiguous processor range
// [off, off+cnt): the cached uniform model when m is uniform, otherwise a
// model over the range's speeds.
func subModel(m *machine.Model, off, cnt int) (*machine.Model, error) {
	if m.IsUniform() {
		return machine.Uniform(cnt), nil
	}
	speeds := make([]float64, cnt)
	for i := range speeds {
		speeds[i] = m.Speed(off + i)
	}
	return machine.New(speeds)
}
