package sched_test

import (
	"math/rand"
	"sort"
	"testing"

	"treesched/internal/sched"
	"treesched/internal/tree"
)

// verifyGreedy checks the defining property of list scheduling: no task
// waits while a processor is idle. For every task v, between the time its
// last child finishes and its own start, all p processors must be busy.
func verifyGreedy(t *testing.T, tr *tree.Tree, s *sched.Schedule) {
	t.Helper()
	n := tr.Len()
	readyAt := make([]float64, n)
	for v := 0; v < n; v++ {
		for _, c := range tr.Children(v) {
			if f := s.Finish(tr, c); f > readyAt[v] {
				readyAt[v] = f
			}
		}
	}
	// Busy intervals per processor, merged over all processors by sweeping.
	type ev struct {
		at float64
		d  int
	}
	events := make([]ev, 0, 2*n)
	for v := 0; v < n; v++ {
		if tr.W(v) == 0 {
			continue
		}
		events = append(events, ev{s.Start[v], +1}, ev{s.Finish(tr, v), -1})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].d < events[b].d // ends before starts
	})
	// busy(t) as a step function: times[i] -> busy level until times[i+1].
	var times []float64
	var busy []int
	cur := 0
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].at == events[i].at {
			cur += events[j].d
			j++
		}
		times = append(times, events[i].at)
		busy = append(busy, cur)
		i = j
	}
	busyDuring := func(lo, hi float64) bool {
		// All processors busy throughout (lo, hi)?
		for i := range times {
			start := times[i]
			end := s.Makespan(tr) + 1
			if i+1 < len(times) {
				end = times[i+1]
			}
			if start >= hi {
				break
			}
			if end <= lo {
				continue
			}
			if busy[i] < s.P {
				return false
			}
		}
		return true
	}
	for v := 0; v < n; v++ {
		if s.Start[v] > readyAt[v]+1e-9 {
			if !verifyWindow(busyDuring, readyAt[v], s.Start[v]) {
				t.Fatalf("task %d idles from %g to %g with a free processor",
					v, readyAt[v], s.Start[v])
			}
		}
	}
}

func verifyWindow(busyDuring func(lo, hi float64) bool, lo, hi float64) bool {
	return busyDuring(lo+1e-12, hi-1e-12)
}

func TestListSchedulesAreGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(rng, 2+rng.Intn(120))
		for _, p := range []int{2, 4, 8} {
			for _, name := range []string{"ParInnerFirst", "ParDeepestFirst"} {
				h, _ := sched.ByName(name)
				s, err := h.Run(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				verifyGreedy(t, tr, s)
			}
		}
	}
}

// TestPeakAtLeastMaxFootprint: any schedule's peak memory is at least the
// largest single-task footprint.
func TestPeakAtLeastMaxFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(rng, 2+rng.Intn(100))
		var maxFoot int64
		for v := 0; v < tr.Len(); v++ {
			if f := tr.ProcFootprint(v); f > maxFoot {
				maxFoot = f
			}
		}
		for _, h := range sched.Heuristics() {
			s, err := h.Run(tr, 4)
			if err != nil {
				t.Fatal(err)
			}
			if m := sched.PeakMemory(tr, s); m < maxFoot {
				t.Fatalf("%s: peak %d below max footprint %d", h.Name, m, maxFoot)
			}
		}
	}
}

// TestSplitSubtreesOptimalNeverWorseThanNaive validates Lemma 1 empirically
// (ablation E14): the rank-scanned splitting's predicted makespan is never
// above the naive first-feasible splitting's.
func TestSplitSubtreesOptimalNeverWorseThanNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	strictly := 0
	for trial := 0; trial < 60; trial++ {
		tr := randomTree(rng, 2+rng.Intn(200))
		for _, p := range []int{2, 4, 8} {
			opt := sched.SplitSubtrees(tr, p)
			naive := sched.SplitSubtreesNaive(tr, p)
			if opt.PredictedMakespan > naive.PredictedMakespan+1e-9 {
				t.Fatalf("optimal splitting %g worse than naive %g (p=%d)",
					opt.PredictedMakespan, naive.PredictedMakespan, p)
			}
			if opt.PredictedMakespan < naive.PredictedMakespan-1e-9 {
				strictly++
			}
		}
	}
	if strictly == 0 {
		t.Fatal("optimal splitting never strictly better than naive in 180 cases")
	}
}

// TestSplitSubtreesNaiveStructure: the naive splitting is still a valid
// disjoint decomposition.
func TestSplitSubtreesNaiveStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	tr := randomTree(rng, 150)
	sp := sched.SplitSubtreesNaive(tr, 4)
	seen := make(map[int]bool)
	for _, v := range sp.SeqNodes {
		seen[v] = true
	}
	total := len(sp.SeqNodes)
	for _, r := range sp.SubtreeRoots {
		for _, v := range tr.SubtreeNodes(r) {
			if seen[v] {
				t.Fatalf("node %d duplicated", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != tr.Len() {
		t.Fatalf("naive splitting covers %d of %d", total, tr.Len())
	}
}
