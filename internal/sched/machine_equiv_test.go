package sched_test

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"treesched/internal/dataset"
	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// TestGoldenUniformMachineMatches proves the machine-model refactor safe:
// every heuristic run through the explicit machine layer on
// machine.Uniform(p) must reproduce the pre-refactor golden hashes
// byte-for-byte — same start-time bits, same processor assignments, same
// peak — for every heuristic × quick-tree family.
func TestGoldenUniformMachineMatches(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "golden_quick.json"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, inst := range insts {
		for _, cfg := range goldenConfigs() {
			// Route through the explicit machine model: Machine set,
			// Processors left 0, schedules produced by RunOn.
			opts := cfg.opts
			m := machine.Uniform(opts.Processors)
			opts.Machine, opts.Processors = m, 0
			hs, _, err := opts.SelectFor(inst.Tree)
			if err != nil {
				t.Fatalf("%s %s: %v", inst.Name, cfg.name, err)
			}
			s, err := hs[0].RunOn(inst.Tree, m)
			if err != nil {
				t.Fatalf("%s %s: %v", inst.Name, cfg.name, err)
			}
			key := inst.Name + "/" + cfg.name
			if got := scheduleHash(inst.Tree, s); got != want[key] {
				t.Errorf("%s: uniform machine model changed the schedule (golden %s, got %s)", key, want[key], got)
			}
			checked++
		}
	}
	if checked != len(want) {
		t.Errorf("checked %d configurations, golden file has %d", checked, len(want))
	}
}

// hetHeuristics is every heuristic runnable on an explicit machine model.
var hetHeuristics = []sched.HeuristicID{
	sched.IDParSubtrees, sched.IDParSubtreesOptim, sched.IDParInnerFirst,
	sched.IDParDeepestFirst, sched.IDParInnerFirstArbitrary,
	sched.IDSequential, sched.IDOptimalSequential,
	sched.IDMemCapped, sched.IDMemCappedBooking,
}

// TestHeterogeneousInvariants runs every heuristic on a 2-speed machine
// (speeds {1, 0.5}) over random trees and checks the related-machines
// execution model end to end: schedules validate, no task starts before
// its children finish under speed-scaled durations, every task sits on a
// valid processor, and the scheduler's inline-tracked peak agrees with
// both Evaluate and the event-replay simulator.
func TestHeterogeneousInvariants(t *testing.T) {
	m, err := machine.ParseSpec("2x1.0+2x0.5")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	for trial := 0; trial < 25; trial++ {
		tr := tree.RandomAttachment(rng, 40+rng.Intn(160), ws)
		pc := sched.NewPrecompute(tr)
		for _, id := range hetHeuristics {
			s, err := pc.RunOn(id, m, 2)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, id, err)
			}
			if s.P != m.P() {
				t.Fatalf("trial %d %s: schedule has P=%d, machine has %d", trial, id, s.P, m.P())
			}
			if err := s.Validate(tr); err != nil {
				t.Fatalf("trial %d %s: invalid heterogeneous schedule: %v", trial, id, err)
			}
			for v := 0; v < tr.Len(); v++ {
				pa := tr.Parent(v)
				if pa == tree.None {
					continue
				}
				if s.Start[pa]+1e-9 < s.Start[v]+s.Dur(tr, v) {
					t.Fatalf("trial %d %s: parent %d starts at %v before child %d finishes at %v",
						trial, id, pa, s.Start[pa], v, s.Start[v]+s.Dur(tr, v))
				}
			}
			mk, peak, err := sched.Evaluate(tr, s)
			if err != nil {
				t.Fatalf("trial %d %s: Evaluate: %v", trial, id, err)
			}
			if want := s.Makespan(tr); math.Abs(mk-want) > 1e-9 {
				t.Fatalf("trial %d %s: Evaluate makespan %v != Makespan %v", trial, id, mk, want)
			}
			// The first Evaluate served the inline-tracked peak; the replay
			// after Invalidate is the authoritative simulation.
			s.Invalidate()
			if replay := sched.PeakMemory(tr, s); replay != peak {
				t.Fatalf("trial %d %s: inline peak %d != replayed peak %d", trial, id, peak, replay)
			}
		}
	}
}

// TestHeterogeneousUsesSpeeds pins the basic related-machines semantics:
// on a single chain, a 2-speed machine finishes the work at the fast
// processor's rate, and the speed-scaled lower bound reflects it.
func TestHeterogeneousUsesSpeeds(t *testing.T) {
	// Chain of 4 unit-work tasks.
	tr := tree.MustNew(
		[]int{tree.None, 0, 1, 2},
		[]float64{1, 1, 1, 1},
		[]int64{0, 0, 0, 0},
		[]int64{1, 1, 1, 1},
	)
	m, err := machine.ParseSpec("1x0.5+1x2")
	if err != nil {
		t.Fatal(err)
	}
	pc := sched.NewPrecompute(tr)
	s, err := pc.ParDeepestFirstOn(m)
	if err != nil {
		t.Fatal(err)
	}
	// Every task must land on processor 1 (speed 2): a chain has exactly
	// one ready task at a time and the fastest processor is always free.
	for v := 0; v < tr.Len(); v++ {
		if s.Proc[v] != 1 {
			t.Errorf("task %d on processor %d, want 1 (fastest)", v, s.Proc[v])
		}
	}
	if ms := s.Makespan(tr); ms != 2 {
		t.Errorf("makespan %v, want 2 (4 unit tasks at speed 2)", ms)
	}
	if lb := sched.MakespanLowerBoundOn(tr, m); lb != 2 {
		t.Errorf("speed-scaled lower bound %v, want 2 (critical path 4 / s_max 2)", lb)
	}
	if lbU := sched.MakespanLowerBoundOn(tr, machine.Uniform(3)); lbU != sched.MakespanLowerBound(tr, 3) {
		t.Errorf("uniform MakespanLowerBoundOn %v != MakespanLowerBound %v", lbU, sched.MakespanLowerBound(tr, 3))
	}
}

// TestOptionsMachineValidation pins the Options.Machine contract.
func TestOptionsMachineValidation(t *testing.T) {
	m, _ := machine.ParseSpec("2x1.0+2x0.5")
	ok := sched.Options{Machine: m}
	if err := ok.Validate(); err != nil {
		t.Errorf("Machine-only options rejected: %v", err)
	}
	if ok.Model() != m {
		t.Error("Model() did not return the explicit machine")
	}
	agree := sched.Options{Machine: m, Processors: 4}
	if err := agree.Validate(); err != nil {
		t.Errorf("consistent processors+machine rejected: %v", err)
	}
	conflict := sched.Options{Machine: m, Processors: 3}
	if err := conflict.Validate(); err == nil {
		t.Error("conflicting processors+machine accepted")
	}
	if got := (sched.Options{Processors: 5}).Model(); !got.IsUniform() || got.P() != 5 {
		t.Errorf("default Model() = %v, want Uniform(5)", got)
	}
}
