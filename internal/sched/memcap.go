package sched

import (
	"fmt"

	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// MemCapped schedules t on p processors under a hard peak-memory cap. It
// implements the activation-order strategy suggested by the paper's future
// work (§7, "scheduling algorithms that take as input a cap on the memory
// usage"):
//
// Tasks are started in the order of a memory-feasible sequential traversal
// σ (the memory-optimal postorder). The next task of σ starts as soon as
// (a) its children have completed and (b) starting it keeps resident memory
// within the cap. Up to p tasks run concurrently. Because memory along σ
// never exceeds the cap when tasks are executed one at a time, the scheduler
// can always fall back to sequential progress: it never deadlocks.
//
// MemCapped returns an error if the cap is below the sequential requirement
// M_seq of σ (no schedule following σ can respect it).
func MemCapped(t *tree.Tree, p int, cap int64) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: need at least one processor, got %d", p)
	}
	res := traversal.BestPostOrder(t)
	if res.Peak > cap {
		return nil, fmt.Errorf("sched: memory cap %d below sequential requirement %d", cap, res.Peak)
	}
	n := t.Len()
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: p}
	if n == 0 {
		return s, nil
	}
	done := make([]bool, n)
	running := &finishHeap{}
	freeProcs := make([]int, 0, p)
	for i := p - 1; i >= 0; i-- {
		freeProcs = append(freeProcs, i)
	}
	var mem int64 // resident memory right now
	now := 0.0
	next := 0 // index into σ of the next task to activate

	childrenDone := func(v int) bool {
		for _, c := range t.Children(v) {
			if !done[c] {
				return false
			}
		}
		return true
	}
	// startNext activates σ[next] while admissible.
	startNext := func() {
		for next < n && len(freeProcs) > 0 {
			v := res.Order[next]
			if !childrenDone(v) || mem+t.N(v)+t.F(v) > cap {
				return
			}
			proc := freeProcs[len(freeProcs)-1]
			freeProcs = freeProcs[:len(freeProcs)-1]
			s.Start[v] = now
			s.Proc[v] = proc
			mem += t.N(v) + t.F(v)
			running.push3(now+t.W(v), v, proc)
			next++
		}
	}
	startNext()
	for running.Len() > 0 {
		at, v, proc := running.pop3()
		now = at
		mem -= t.N(v) + t.InSize(v)
		done[v] = true
		freeProcs = append(freeProcs, proc)
		for running.Len() > 0 && running.at[0] == now {
			_, v2, proc2 := running.pop3()
			mem -= t.N(v2) + t.InSize(v2)
			done[v2] = true
			freeProcs = append(freeProcs, proc2)
		}
		startNext()
	}
	if next != n {
		return nil, fmt.Errorf("sched: internal error: activated %d of %d tasks", next, n)
	}
	return s, nil
}
