package sched

import (
	"fmt"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// MemCapped schedules t on p processors under a hard peak-memory cap. It
// implements the activation-order strategy suggested by the paper's future
// work (§7, "scheduling algorithms that take as input a cap on the memory
// usage"):
//
// Tasks are started in the order of a memory-feasible sequential traversal
// σ (the memory-optimal postorder). The next task of σ starts as soon as
// (a) its children have completed and (b) starting it keeps resident memory
// within the cap. Up to p tasks run concurrently. Because memory along σ
// never exceeds the cap when tasks are executed one at a time, the scheduler
// can always fall back to sequential progress: it never deadlocks.
//
// MemCapped returns an error if the cap is below the sequential requirement
// M_seq of σ (no schedule following σ can respect it).
func MemCapped(t *tree.Tree, p int, cap int64) (*Schedule, error) {
	return NewPrecompute(t).MemCapped(p, cap)
}

// MemCapped is the precompute-sharing form of the package-level function:
// σ and M_seq come from the shared context instead of a fresh traversal.
func (pc *Precompute) MemCapped(p int, cap int64) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return pc.MemCappedOn(m, cap)
}

// MemCappedOn is MemCapped on an explicit machine model: activation still
// follows σ (the cap logic is speed-independent), while processors are
// picked fastest-first and tasks run in w/s_proc time. On a uniform model
// it is byte-identical to the processor-count form.
func (pc *Precompute) MemCappedOn(m *machine.Model, cap int64) (*Schedule, error) {
	t := pc.t
	if pc.MSeq() > cap {
		return nil, fmt.Errorf("sched: memory cap %d below sequential requirement %d", cap, pc.MSeq())
	}
	n := t.Len()
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: m.P(), M: hetModel(m)}
	if n == 0 {
		return s, nil
	}
	order := pc.Order()
	sc := getSchedScratch()
	sc.ensureBase(n)
	remaining := sc.remaining
	st := machine.NewState(m)
	hasPulse := false
	for v := 0; v < n; v++ {
		remaining[v] = int32(t.NumChildren(v))
		hasPulse = hasPulse || t.W(v) == 0
	}
	fin := &sc.fin
	var mem, peak int64 // resident memory right now, and its running max
	now := 0.0
	next := 0 // index into σ of the next task to activate

	// startNext activates σ[next] while admissible: children done
	// (remaining drops to zero as completions drain) and footprint within
	// the cap.
	startNext := func() {
		for next < n && st.Idle() > 0 {
			v := order[next]
			if remaining[v] != 0 || mem+t.N(v)+t.F(v) > cap {
				return
			}
			proc := st.Take()
			s.Start[v] = now
			s.Proc[v] = int(proc)
			mem += t.N(v) + t.F(v)
			if mem > peak {
				peak = mem
			}
			fin.push(now+m.ExecTime(t.W(v), int(proc)), int32(v), proc)
			next++
		}
	}
	complete := func(v int32) {
		mem -= t.N(int(v)) + t.InSize(int(v))
		if pa := t.Parent(int(v)); pa != tree.None {
			remaining[pa]--
		}
	}
	startNext()
	for fin.Len() > 0 {
		at, v, proc := fin.pop()
		now = at
		complete(v)
		st.Put(proc)
		for fin.Len() > 0 && fin.at[0] == now {
			_, v2, proc2 := fin.pop()
			complete(v2)
			st.Put(proc2)
		}
		startNext()
	}
	st.Recycle()
	putSchedScratch(sc)
	if next != n {
		return nil, fmt.Errorf("sched: internal error: activated %d of %d tasks", next, n)
	}
	if !hasPulse {
		s.setPeak(peak)
	}
	return s, nil
}
