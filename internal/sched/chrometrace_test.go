package sched_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treesched/internal/dataset"
	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// chromeTraceFor schedules the first quick-dataset instance with
// ParSubtrees on 4 processors and renders it — the fixture the golden
// file pins byte-stably.
func chromeTraceFor(t *testing.T) (*tree.Tree, []byte) {
	t.Helper()
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := insts[0].Tree
	opts := sched.Options{Processors: 4, Heuristics: []sched.HeuristicID{sched.IDParSubtrees}}
	hs, _, err := opts.SelectFor(tr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hs[0].Run(tr, opts.Processors)
	if err != nil {
		t.Fatal(err)
	}
	cap := 2 * sched.NewPrecompute(tr).MSeq()
	var buf bytes.Buffer
	if err := sched.WriteChromeTrace(&buf, tr, s, sched.ChromeTraceOptions{
		Name:   "golden",
		MemCap: cap,
	}); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// TestChromeTraceGolden pins WriteChromeTrace byte-stably against the
// checked-in golden file (regenerate with -update).
func TestChromeTraceGolden(t *testing.T) {
	_, got := chromeTraceFor(t)
	path := filepath.Join("testdata", "golden_chrome_trace.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chrome trace drifted from golden (%d vs %d bytes); run with -update if intended",
			len(got), len(want))
	}
}

// TestChromeTraceShape decodes the emitted JSON and checks the event
// stream semantically: every task appears once on its processor's track,
// the memory counter is present, and metadata names every track.
func TestChromeTraceShape(t *testing.T) {
	tr, raw := chromeTraceFor(t)
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Name string          `json:"name"`
			TS   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	var tasks, counters, metas int
	seen := make(map[string]bool)
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			tasks++
			if seen[e.Name] {
				t.Errorf("task %s emitted twice", e.Name)
			}
			seen[e.Name] = true
			if e.Dur < 0 || e.TS < 0 {
				t.Errorf("task %s has negative ts/dur", e.Name)
			}
		case "C":
			counters++
			if !strings.Contains(string(e.Args), `"resident"`) || !strings.Contains(string(e.Args), `"cap"`) {
				t.Errorf("counter args missing resident/cap: %s", e.Args)
			}
		case "M":
			metas++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if tasks != tr.Len() {
		t.Errorf("trace has %d task events, tree has %d nodes", tasks, tr.Len())
	}
	if counters == 0 {
		t.Error("trace has no memory counter samples")
	}
	if metas != 1+4 { // process_name + one thread_name per processor
		t.Errorf("trace has %d metadata events, want 5", metas)
	}
}

// TestChromeTraceHeterogeneous checks speed-labeled tracks and that
// mismatched schedule/tree sizes error instead of emitting garbage.
func TestChromeTraceHeterogeneous(t *testing.T) {
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := insts[0].Tree
	m, err := machine.ParseSpec("2x1+2x0.5")
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{Processors: m.P(), Machine: m,
		Heuristics: []sched.HeuristicID{sched.IDParSubtrees}}
	hs, _, err := opts.SelectFor(tr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hs[0].RunOn(tr, m)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sched.WriteChromeTrace(&buf, tr, s, sched.ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `(speed 0.5)`) {
		t.Error("heterogeneous trace must label tracks with speeds")
	}

	bad := &sched.Schedule{P: 2, Start: []float64{0}, Proc: []int{0}}
	if err := sched.WriteChromeTrace(&buf, tr, bad, sched.ChromeTraceOptions{}); err == nil {
		t.Error("mismatched schedule must error")
	}
}
