package sched

import (
	"slices"
	"sync"

	"treesched/internal/machine"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// Precompute is the shared per-tree context of the scheduling core. Every
// scheduler in this package keys off the same handful of per-tree facts —
// the memory-optimal postorder σ and its peak M_seq, node depths, weighted
// depths, leaf flags, σ-positions, and the booking suffix maxima — and a
// Precompute computes each of them exactly once per tree, no matter how
// many heuristics, processor counts, or repeated schedules run on it.
//
// Construction (NewPrecompute) runs Liu's best-postorder DP once; every
// other field is derived lazily on first use and cached. A Precompute is
// safe for concurrent use after construction (lazy fields are guarded by
// sync.Once), which is what lets a portfolio race share one across all
// candidates. It must only ever be used with the tree it was built for.
//
// The heuristic entry points are methods (ParInnerFirst, MemCapped, …) or
// the HeuristicID dispatcher Run. The package-level functions of the same
// names build a throwaway Precompute per call; callers scheduling a tree
// more than once should build one Precompute and reuse it.
type Precompute struct {
	t  *tree.Tree
	ix *traversal.PostOrderIndex

	pos []int // node -> index in σ (the best postorder)

	depthOnce sync.Once
	depth     []int32 // depth in edges from the root
	leaf      []bool

	wdepthOnce sync.Once
	wdepth     []float64 // w-weighted root distance, both endpoints inclusive

	// Per-heuristic priority ranks: rank[v] < rank[u] iff v precedes u
	// under the heuristic's ready-queue order. Each ranking is a total
	// order (σ-position or node id breaks every tie), so a rank array
	// captures the comparator exactly and the ready heap reduces to
	// integer comparisons.
	innerOnce    sync.Once
	innerRank    []uint64
	innerArbOnce sync.Once
	innerArbRank []uint64
	deepOnce     sync.Once
	deepRank     []uint64
	bookOnce     sync.Once
	bookRank     []uint64

	futureOnce sync.Once
	futurePeak []int64

	subtreeWOnce sync.Once
	subtreeWs    []float64
}

// NewPrecompute runs the best-postorder DP on t and returns the shared
// scheduling context. O(n log n), a handful of long-lived allocations.
func NewPrecompute(t *tree.Tree) *Precompute {
	ix := traversal.NewPostOrderIndex(t)
	pos := make([]int, t.Len())
	for k, v := range ix.Order {
		pos[v] = k
	}
	return &Precompute{t: t, ix: ix, pos: pos}
}

// Tree returns the tree this context was built for.
func (pc *Precompute) Tree() *tree.Tree { return pc.t }

// Per-node and fixed byte costs of a fully materialized Precompute,
// including the tree it pins (a cached Precompute keeps its tree alive, so
// a byte budget must charge for both). The per-node constant sums the
// tree's parent/children/order/w/n/f storage (72 B), the postorder index
// (28 B), σ-positions (8 B), depths and leaf flags (5 B), weighted depths
// (8 B), the four priority-rank arrays (32 B), the booking suffix maxima
// (8 B) and subtree weights (8 B), rounded up to a word.
const (
	precomputePerNodeBytes = 176
	precomputeFixedBytes   = 1024
)

// SizeBytes returns a deterministic upper bound on the heap bytes this
// context retains once every lazy field is materialized, tree included.
// It is a function of the node count alone — it never touches the lazy
// fields, so it is safe to call concurrently with schedulers that are
// still faulting them in. PrecomputeCache charges admissions with it.
func (pc *Precompute) SizeBytes() int64 {
	return precomputeFixedBytes + int64(pc.t.Len())*precomputePerNodeBytes
}

// Order returns σ, the memory-optimal postorder (Liu 1986). Owned by pc;
// callers must not modify it.
func (pc *Precompute) Order() []int { return pc.ix.Order }

// MSeq returns the sequential peak memory of σ — M_seq, the paper's
// memory reference and the package's MemoryLowerBound.
func (pc *Precompute) MSeq() int64 { return pc.ix.Peak }

// Pos returns the inverse of Order: Pos()[v] is v's index in σ. Owned by
// pc; callers must not modify it.
func (pc *Precompute) Pos() []int { return pc.pos }

// FuturePeak returns, for every k, the largest memory the purely
// sequential execution of σ[k..] ever needs (suffix maxima of the step
// peaks; length n+1 with FuturePeak()[n] = 0). FuturePeak()[0] is M_seq.
// This is the booking reservation of MemCappedBooking and the forest
// engine. Owned by pc; callers must not modify it.
func (pc *Precompute) FuturePeak() []int64 {
	pc.futureOnce.Do(func() {
		t, order := pc.t, pc.ix.Order
		n := t.Len()
		fp := make([]int64, n+1)
		var m int64
		for k, v := range order {
			fp[k] = m + t.N(v) + t.F(v)
			m += t.F(v) - t.InSize(v)
		}
		for k := n - 1; k >= 0; k-- {
			if fp[k+1] > fp[k] {
				fp[k] = fp[k+1]
			}
		}
		pc.futurePeak = fp
	})
	return pc.futurePeak
}

// subtreeW caches t.SubtreeW for the splitting passes of both ParSubtrees
// variants.
func (pc *Precompute) subtreeW() []float64 {
	pc.subtreeWOnce.Do(func() { pc.subtreeWs = pc.t.SubtreeW() })
	return pc.subtreeWs
}

func (pc *Precompute) ensureDepths() {
	pc.depthOnce.Do(func() { pc.depth, pc.leaf = depthsAndLeaves(pc.t) })
}

func depthsAndLeaves(t *tree.Tree) ([]int32, []bool) {
	n := t.Len()
	depth := make([]int32, n)
	leaf := make([]bool, n)
	top := t.TopOrder()
	for i := n - 1; i >= 0; i-- { // parents before children
		v := top[i]
		if p := t.Parent(v); p != tree.None {
			depth[v] = depth[p] + 1
		}
		leaf[v] = t.IsLeaf(v)
	}
	return depth, leaf
}

func (pc *Precompute) ensureWDepths() {
	pc.wdepthOnce.Do(func() { pc.wdepth = pc.t.WDepths() })
}

// buildRank converts a total-order comparator into its rank permutation:
// rank[v] = v's position in the sorted node sequence. cmp must be a total
// order (return 0 only for a == b) so the ranking is unique. Rank values
// only need to be order-preserving, not dense — comparators whose keys
// pack into an integer (rankInnerFirst) skip this sort entirely.
func buildRank(n int, cmp func(a, b int32) int) []uint64 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, cmp)
	rank := make([]uint64, n)
	for i, v := range idx {
		rank[v] = uint64(i)
	}
	return rank
}

// rankInnerFirst ranks ready nodes for ParInnerFirst: inner nodes before
// leaves; inner nodes by non-increasing depth; σ-position breaks all
// remaining ties (leaves follow σ outright). The whole order packs into
// one integer key per node — leaf bit, then inverted depth (inner nodes
// only), then position — so the ranking is built in O(n) with no sort.
func (pc *Precompute) rankInnerFirst() []uint64 {
	pc.innerOnce.Do(func() {
		pc.ensureDepths()
		pc.innerRank = packInnerRank(pc.depth, pc.leaf, pc.pos)
	})
	return pc.innerRank
}

// rankInnerFirstArbitrary is rankInnerFirst with the natural (index) order
// in place of σ — the leaf-order ablation.
func (pc *Precompute) rankInnerFirstArbitrary() []uint64 {
	pc.innerArbOnce.Do(func() {
		pc.ensureDepths()
		pc.innerArbRank = packInnerRank(pc.depth, pc.leaf, nil)
	})
	return pc.innerArbRank
}

// packInnerRank packs the ParInnerFirst order into per-node integer keys
// over positions pos (nil means natural node order). Depth and position
// both fit 31 bits (n < 2³¹), leaving bit 62 for the leaf flag.
func packInnerRank(depth []int32, leaf []bool, pos []int) []uint64 {
	const depthMask = uint64(1)<<31 - 1
	rank := make([]uint64, len(depth))
	for v := range rank {
		p := uint64(v)
		if pos != nil {
			p = uint64(pos[v])
		}
		if leaf[v] {
			rank[v] = 1<<62 | p // leaves after all inner nodes, by position
		} else {
			rank[v] = (depthMask-uint64(depth[v]))<<31 | p // deepest first
		}
	}
	return rank
}

// rankDeepestFirst ranks ready nodes for ParDeepestFirst: non-increasing
// w-weighted depth, inner nodes before leaves, σ-position last. The
// float64 primary key doesn't pack next to its tie-breaks, so this one
// ranking is built by sorting.
func (pc *Precompute) rankDeepestFirst() []uint64 {
	pc.deepOnce.Do(func() {
		pc.ensureDepths()
		pc.ensureWDepths()
		wdepth, leaf, pos := pc.wdepth, pc.leaf, pc.pos
		pc.deepRank = buildRank(pc.t.Len(), func(a, b int32) int {
			if wdepth[a] != wdepth[b] {
				if wdepth[a] > wdepth[b] {
					return -1
				}
				return 1
			}
			if leaf[a] != leaf[b] {
				if !leaf[a] { // inner nodes before leaves
					return -1
				}
				return 1
			}
			return pos[a] - pos[b]
		})
	})
	return pc.deepRank
}

// rankBooking ranks ready nodes for MemCappedBooking admission:
// non-increasing w-weighted depth, σ-position breaking ties.
func (pc *Precompute) rankBooking() []uint64 {
	pc.bookOnce.Do(func() {
		pc.ensureWDepths()
		wdepth, pos := pc.wdepth, pc.pos
		pc.bookRank = buildRank(pc.t.Len(), func(a, b int32) int {
			if wdepth[a] != wdepth[b] {
				if wdepth[a] > wdepth[b] {
					return -1
				}
				return 1
			}
			return pos[a] - pos[b]
		})
	})
	return pc.bookRank
}

// Run dispatches a heuristic by ID on this context's tree and the paper's
// uniform machine of p processors. memCapFactor parameterizes the capped
// heuristics (cap = factor × M_seq) and is ignored by the rest;
// sequential baselines ignore p.
func (pc *Precompute) Run(id HeuristicID, p int, memCapFactor float64) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return pc.RunOn(id, m, memCapFactor)
}

// RunOn dispatches a heuristic by ID on an explicit machine model. On a
// uniform model every heuristic is byte-identical to Run; on a
// heterogeneous model processor picks and execution times are
// speed-aware (the sequential baselines run on the fastest processor).
func (pc *Precompute) RunOn(id HeuristicID, m *machine.Model, memCapFactor float64) (*Schedule, error) {
	switch id {
	case IDParSubtrees:
		return pc.ParSubtreesOn(m)
	case IDParSubtreesOptim:
		return pc.ParSubtreesOptimOn(m)
	case IDParInnerFirst:
		return pc.ParInnerFirstOn(m)
	case IDParDeepestFirst:
		return pc.ParDeepestFirstOn(m)
	case IDParInnerFirstArbitrary:
		return pc.ParInnerFirstArbitraryOn(m)
	case IDSequential:
		return SequentialScheduleOn(pc.t, m, pc.Order())
	case IDOptimalSequential:
		return SequentialScheduleOn(pc.t, m, traversal.Optimal(pc.t).Order)
	case IDMemCapped:
		return pc.MemCappedOn(m, capFromFactor(memCapFactor, pc.MSeq()))
	case IDMemCappedBooking:
		return pc.MemCappedBookingOn(m, capFromFactor(memCapFactor, pc.MSeq()))
	}
	return nil, errUnrunnable(id)
}
