package sched_test

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/pebble"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

func TestMemCappedBookingValidAndWithinCap(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 2+rng.Intn(150))
		mseq := sched.MemoryLowerBound(tr)
		for _, p := range []int{2, 8} {
			if _, err := sched.MemCappedBooking(tr, p, mseq-1); err == nil {
				t.Fatalf("cap below M_seq accepted")
			}
			for _, mult := range []int64{1, 2, 10} {
				cap := mult * mseq
				s, err := sched.MemCappedBooking(tr, p, cap)
				if err != nil {
					t.Fatalf("MemCappedBooking(cap=%d): %v", cap, err)
				}
				if err := s.Validate(tr); err != nil {
					t.Fatalf("invalid schedule: %v", err)
				}
				if m := sched.PeakMemory(tr, s); m > cap {
					t.Fatalf("cap %d violated: used %d", cap, m)
				}
			}
		}
	}
}

func TestMemCappedBookingRejectsBadProcs(t *testing.T) {
	tr := tree.MustNew([]int{tree.None}, []float64{1}, []int64{0}, []int64{1})
	if _, err := sched.MemCappedBooking(tr, 0, 10); err == nil {
		t.Fatal("p=0 accepted")
	}
}

// TestBookingBeatsActivationOrder: with a generous cap, the booking
// scheduler must exploit parallelism that strict σ-order activation cannot,
// and must never be slower on average.
func TestBookingBeatsActivationOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	var bookWins, actWins int
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 50+rng.Intn(150))
		cap := 8 * sched.MemoryLowerBound(tr)
		sb, err := sched.MemCappedBooking(tr, 8, cap)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := sched.MemCapped(tr, 8, cap)
		if err != nil {
			t.Fatal(err)
		}
		mb, ma := sb.Makespan(tr), sa.Makespan(tr)
		if mb < ma-1e-9 {
			bookWins++
		}
		if ma < mb-1e-9 {
			actWins++
		}
	}
	if bookWins <= actWins {
		t.Fatalf("booking won %d, activation-order won %d; booking should dominate with loose caps",
			bookWins, actWins)
	}
}

// TestBookingWithHugeCapNearsListScheduling: the cap-free limit of the
// booking scheduler is deepest-first list scheduling; with an enormous cap
// its makespan must be close to ParDeepestFirst's.
func TestBookingWithHugeCapNearsListScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(rng, 50+rng.Intn(100))
		s, err := sched.MemCappedBooking(tr, 4, 1<<60)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sched.ParDeepestFirst(tr, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan(tr) > 1.5*d.Makespan(tr) {
			t.Fatalf("booking with huge cap %.4g much slower than deepest-first %.4g",
				s.Makespan(tr), d.Makespan(tr))
		}
	}
}

// TestBookingOnSpiderRespectsTightCap reproduces the Figure 5 stress case:
// the spider tree blows up ParDeepestFirst's memory, but booking with
// cap = M_seq+2 must stay within it and still finish.
func TestBookingOnSpiderRespectsTightCap(t *testing.T) {
	tr := pebble.SpiderTree(20, 4)
	mseq := sched.MemoryLowerBound(tr) // 3
	cap := mseq + 2
	s, err := sched.MemCappedBooking(tr, 4, cap)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if m := sched.PeakMemory(tr, s); m > cap {
		t.Fatalf("cap %d violated: %d", cap, m)
	}
	// Sanity: unconstrained deepest-first uses far more than the cap here.
	d, err := sched.ParDeepestFirst(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m := sched.PeakMemory(tr, d); m <= cap {
		t.Fatalf("spider no longer stresses memory (%d <= %d)", m, cap)
	}
}

func TestBookingSequentialCapIsSequentialPeak(t *testing.T) {
	// cap = M_seq on a chain: the schedule degenerates to the sequential
	// traversal.
	rng := rand.New(rand.NewSource(54))
	tr := tree.Chain(rng, 60, tree.PebbleWeights)
	mseq := sched.MemoryLowerBound(tr)
	s, err := sched.MemCappedBooking(tr, 8, mseq)
	if err != nil {
		t.Fatal(err)
	}
	if ms := s.Makespan(tr); math.Abs(ms-tr.TotalW()) > 1e-9 {
		t.Fatalf("chain makespan %g, want %g", ms, tr.TotalW())
	}
}

func TestBookingEmptyTree(t *testing.T) {
	empty, _ := tree.New(nil, nil, nil, nil)
	s, err := sched.MemCappedBooking(empty, 3, 0)
	if err != nil || s.Makespan(empty) != 0 {
		t.Fatalf("empty tree: %v", err)
	}
}

// TestBookingMakespanMonotonicTrend: averaged over instances, a looser cap
// must not slow the booking scheduler down.
func TestBookingMakespanMonotonicTrend(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var sumTight, sumLoose float64
	for trial := 0; trial < 25; trial++ {
		tr := randomTree(rng, 80+rng.Intn(80))
		mseq := sched.MemoryLowerBound(tr)
		st, err := sched.MemCappedBooking(tr, 8, mseq)
		if err != nil {
			t.Fatal(err)
		}
		sl, err := sched.MemCappedBooking(tr, 8, 16*mseq)
		if err != nil {
			t.Fatal(err)
		}
		sumTight += st.Makespan(tr)
		sumLoose += sl.Makespan(tr)
	}
	if sumLoose > sumTight*1.001 {
		t.Fatalf("loose caps slower on average: %.4g vs %.4g", sumLoose, sumTight)
	}
}
