package sched_test

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

var heavySpec = tree.WeightSpec{WMin: 0.5, WMax: 10, NMin: 0, NMax: 8, FMin: 0, FMax: 50}

func randomTree(rng *rand.Rand, n int) *tree.Tree {
	switch rng.Intn(3) {
	case 0:
		return tree.RandomAttachment(rng, n, heavySpec)
	case 1:
		return tree.RandomPrufer(rng, n, heavySpec)
	default:
		return tree.RandomBinary(rng, n, heavySpec)
	}
}

func TestListScheduleSequentialIsTotalW(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTree(rng, 60)
	s, err := sched.ParInnerFirst(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Makespan(tr), tr.TotalW(); math.Abs(got-want) > 1e-6 {
		t.Errorf("p=1 makespan = %g, want total work %g", got, want)
	}
}

func TestHeuristicsProduceValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 1+rng.Intn(150))
		for _, p := range []int{1, 2, 3, 8, 32} {
			for _, h := range sched.Heuristics() {
				s, err := h.Run(tr, p)
				if err != nil {
					t.Fatalf("%s(p=%d): %v", h.Name, p, err)
				}
				if err := s.Validate(tr); err != nil {
					t.Fatalf("%s(p=%d) invalid: %v", h.Name, p, err)
				}
			}
		}
	}
}

func TestMakespanAboveLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		tr := randomTree(rng, 2+rng.Intn(120))
		for _, p := range []int{2, 4, 16} {
			lb := sched.MakespanLowerBound(tr, p)
			for _, h := range sched.Heuristics() {
				s, err := h.Run(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				if ms := s.Makespan(tr); ms < lb-1e-6 {
					t.Fatalf("%s(p=%d) makespan %g below lower bound %g", h.Name, p, ms, lb)
				}
			}
		}
	}
}

// TestListSchedulingGrahamBound verifies E11: the list-scheduling heuristics
// respect Graham's bound W/p + (1-1/p)·CP, hence are (2-1/p)-approximations.
func TestListSchedulingGrahamBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 2+rng.Intn(200))
		for _, p := range []int{2, 4, 8} {
			bound := sched.GrahamBound(tr, p)
			for _, name := range []string{"ParInnerFirst", "ParDeepestFirst"} {
				h, _ := sched.ByName(name)
				s, err := h.Run(tr, p)
				if err != nil {
					t.Fatal(err)
				}
				if ms := s.Makespan(tr); ms > bound+1e-6 {
					t.Fatalf("%s(p=%d) makespan %g exceeds Graham bound %g", name, p, ms, bound)
				}
			}
		}
	}
}

// TestParSubtreesMemoryBound verifies E10: ParSubtrees peak memory is at
// most (p+1) times the sequential reference (paper §5.1).
func TestParSubtreesMemoryBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 2+rng.Intn(150))
		mseq := sched.MemoryLowerBound(tr)
		for _, p := range []int{2, 4, 8} {
			s, err := sched.ParSubtrees(tr, p)
			if err != nil {
				t.Fatal(err)
			}
			if m := sched.PeakMemory(tr, s); m > int64(p+1)*mseq {
				t.Fatalf("ParSubtrees(p=%d) memory %d > (p+1)·Mseq = %d", p, m, int64(p+1)*mseq)
			}
		}
	}
}

func TestParSubtreesMatchesPredictedMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 2+rng.Intn(150))
		for _, p := range []int{2, 4, 8} {
			sp := sched.SplitSubtrees(tr, p)
			s, err := sched.ParSubtrees(tr, p)
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Makespan(tr); math.Abs(got-sp.PredictedMakespan) > 1e-6*(1+math.Abs(got)) {
				t.Fatalf("p=%d: simulated makespan %g != predicted %g", p, got, sp.PredictedMakespan)
			}
		}
	}
}

func TestSplitSubtreesDisjointMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(rng, 2+rng.Intn(120))
		sp := sched.SplitSubtrees(tr, 4)
		seen := make(map[int]bool)
		inSeq := make(map[int]bool)
		for _, v := range sp.SeqNodes {
			inSeq[v] = true
		}
		total := len(sp.SeqNodes)
		for _, r := range sp.SubtreeRoots {
			for _, v := range tr.SubtreeNodes(r) {
				if seen[v] || inSeq[v] {
					t.Fatalf("node %d in two parts of the splitting", v)
				}
				seen[v] = true
				total++
			}
			// Maximality: the parent of each subtree root is a seq node.
			if pa := tr.Parent(r); pa != tree.None && !inSeq[pa] {
				t.Fatalf("subtree root %d has non-sequential parent %d", r, pa)
			}
		}
		if total != tr.Len() {
			t.Fatalf("splitting covers %d of %d nodes", total, tr.Len())
		}
	}
}

func TestSplitSubtreesNeverWorseThanSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 2+rng.Intn(120))
		sp := sched.SplitSubtrees(tr, 4)
		if sp.PredictedMakespan > tr.TotalW()+1e-9 {
			t.Fatalf("splitting cost %g worse than sequential %g", sp.PredictedMakespan, tr.TotalW())
		}
	}
}

func TestParSubtreesOptimNotWorseOnAverage(t *testing.T) {
	// ParSubtreesOptim LPT-packs all subtrees, which should not increase
	// the two-phase makespan: the sequential tail only shrinks.
	rng := rand.New(rand.NewSource(9))
	worse := 0
	for trial := 0; trial < 40; trial++ {
		tr := randomTree(rng, 2+rng.Intn(150))
		s1, err := sched.ParSubtrees(tr, 4)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := sched.ParSubtreesOptim(tr, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Makespan(tr) > s1.Makespan(tr)+1e-6 {
			worse++
		}
	}
	if worse > 8 { // LPT can lose occasionally; it must not lose routinely
		t.Fatalf("ParSubtreesOptim worse than ParSubtrees in %d/40 trials", worse)
	}
}

// TestSimulatorAgreesWithSequentialEval cross-checks the discrete-event
// memory simulator against the sequential evaluation: a 1-processor
// schedule that follows the optimal postorder has exactly the postorder
// peak.
func TestSimulatorAgreesWithSequentialEval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 1+rng.Intn(100))
		res := traversal.BestPostOrder(tr)
		s := &sched.Schedule{Start: make([]float64, tr.Len()), Proc: make([]int, tr.Len()), P: 1}
		at := 0.0
		for _, v := range res.Order {
			s.Start[v] = at
			at += tr.W(v)
		}
		if err := s.Validate(tr); err != nil {
			t.Fatal(err)
		}
		if m := sched.PeakMemory(tr, s); m != res.Peak {
			t.Fatalf("simulator peak %d != sequential eval %d", m, res.Peak)
		}
	}
}

func TestPeakMemoryZeroDurationTasks(t *testing.T) {
	// A zero-duration node must still account for its footprint: chain
	// root(w=1) <- mid(w=0, n=5) <- leaf(w=1).
	tr := tree.MustNew([]int{tree.None, 0, 1},
		[]float64{1, 0, 1}, []int64{0, 5, 0}, []int64{1, 1, 1})
	s := &sched.Schedule{Start: []float64{1, 1, 0}, Proc: []int{0, 0, 0}, P: 1}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	// At time 1: leaf completes (release nothing; f stays), mid pulses:
	// 1 (leaf f) + 5 (n) + 1 (f) = 7, then root starts: 1 + 1 = 2.
	if m := sched.PeakMemory(tr, s); m != 7 {
		t.Fatalf("pulse peak = %d, want 7", m)
	}
}

func TestMemoryTraceMonotoneBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := randomTree(rng, 80)
	s, err := sched.ParDeepestFirst(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	times, mem := sched.MemoryTrace(tr, s)
	if len(times) != len(mem) || len(times) == 0 {
		t.Fatalf("trace sizes: %d vs %d", len(times), len(mem))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("trace times not sorted at %d", i)
		}
	}
	// The trace ends with only the root file resident.
	if mem[len(mem)-1] != tr.F(tr.Root()) {
		t.Fatalf("final resident = %d, want f_root = %d", mem[len(mem)-1], tr.F(tr.Root()))
	}
	// The trace maximum matches PeakMemory.
	var mx int64
	for _, m := range mem {
		if m > mx {
			mx = m
		}
	}
	if mx != sched.PeakMemory(tr, s) {
		t.Fatalf("trace max %d != PeakMemory %d", mx, sched.PeakMemory(tr, s))
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	tr := tree.MustNew([]int{tree.None, 0, 0},
		[]float64{1, 1, 1}, []int64{0, 0, 0}, []int64{1, 1, 1})
	cases := []struct {
		name string
		s    *sched.Schedule
	}{
		{"precedence", &sched.Schedule{Start: []float64{0, 1, 1}, Proc: []int{0, 1, 2}, P: 3}},
		{"overlap", &sched.Schedule{Start: []float64{2, 0, 0.5}, Proc: []int{0, 1, 1}, P: 2}},
		{"bad proc", &sched.Schedule{Start: []float64{1, 0, 0}, Proc: []int{0, 1, 5}, P: 2}},
		{"negative start", &sched.Schedule{Start: []float64{1, -3, 0}, Proc: []int{0, 1, 0}, P: 2}},
		{"nan start", &sched.Schedule{Start: []float64{1, math.NaN(), 0}, Proc: []int{0, 1, 0}, P: 2}},
		{"wrong length", &sched.Schedule{Start: []float64{1, 0}, Proc: []int{0, 1}, P: 2}},
		{"no procs", &sched.Schedule{Start: []float64{1, 0, 0}, Proc: []int{0, 0, 0}, P: 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.s.Validate(tr); err == nil {
				t.Fatalf("invalid schedule accepted")
			}
		})
	}
	good := &sched.Schedule{Start: []float64{1, 0, 0}, Proc: []int{0, 0, 1}, P: 2}
	if err := good.Validate(tr); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

func TestMemCapped(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		tr := randomTree(rng, 2+rng.Intn(120))
		mseq := sched.MemoryLowerBound(tr)
		for _, p := range []int{2, 8} {
			// Below the sequential requirement: must fail.
			if _, err := sched.MemCapped(tr, p, mseq-1); err == nil {
				t.Fatalf("cap below M_seq accepted")
			}
			for _, cap := range []int64{mseq, 2 * mseq, 1 << 60} {
				s, err := sched.MemCapped(tr, p, cap)
				if err != nil {
					t.Fatalf("MemCapped(cap=%d): %v", cap, err)
				}
				if err := s.Validate(tr); err != nil {
					t.Fatalf("MemCapped schedule invalid: %v", err)
				}
				if m := sched.PeakMemory(tr, s); m > cap {
					t.Fatalf("MemCapped(cap=%d) used %d", cap, m)
				}
				if ms := s.Makespan(tr); ms > tr.TotalW()+1e-6 {
					t.Fatalf("MemCapped slower than fully sequential: %g > %g", ms, tr.TotalW())
				}
			}
		}
	}
}

func TestMemCappedTightCapSequentialMakespan(t *testing.T) {
	// With cap exactly M_seq on a chain, execution is forced sequential.
	rng := rand.New(rand.NewSource(13))
	tr := tree.Chain(rng, 50, tree.PebbleWeights)
	mseq := sched.MemoryLowerBound(tr)
	s, err := sched.MemCapped(tr, 8, mseq)
	if err != nil {
		t.Fatal(err)
	}
	if ms := s.Makespan(tr); math.Abs(ms-tr.TotalW()) > 1e-9 {
		t.Fatalf("chain under cap: makespan %g, want %g", ms, tr.TotalW())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ParSubtrees", "ParSubtreesOptim", "ParInnerFirst",
		"ParDeepestFirst", "ParInnerFirstArbitrary", "Sequential"} {
		if _, ok := sched.ByName(name); !ok {
			t.Errorf("ByName(%q) unknown", name)
		}
	}
	if _, ok := sched.ByName("nope"); ok {
		t.Errorf("ByName accepted unknown name")
	}
}

func TestHeuristicsOnEmptyAndSingle(t *testing.T) {
	empty, _ := tree.New(nil, nil, nil, nil)
	single := tree.MustNew([]int{tree.None}, []float64{2}, []int64{1}, []int64{3})
	for _, h := range sched.Heuristics() {
		s, err := h.Run(empty, 2)
		if err != nil || s.Makespan(empty) != 0 {
			t.Fatalf("%s on empty tree: %v", h.Name, err)
		}
		s, err = h.Run(single, 2)
		if err != nil {
			t.Fatalf("%s on single: %v", h.Name, err)
		}
		if s.Makespan(single) != 2 {
			t.Fatalf("%s single makespan = %g", h.Name, s.Makespan(single))
		}
		if m := sched.PeakMemory(single, s); m != 4 {
			t.Fatalf("%s single memory = %d, want 4", h.Name, m)
		}
	}
}

func TestInvalidProcessorCount(t *testing.T) {
	tr := tree.MustNew([]int{tree.None}, []float64{1}, []int64{0}, []int64{1})
	for _, h := range sched.Heuristics() {
		if _, err := h.Run(tr, 0); err == nil {
			t.Errorf("%s accepted p=0", h.Name)
		}
	}
	if _, err := sched.MemCapped(tr, 0, 100); err == nil {
		t.Errorf("MemCapped accepted p=0")
	}
}

func TestMoreProcessorsNeverIncreaseListMakespan(t *testing.T) {
	// Not a theorem for general list scheduling (anomalies), but for trees
	// with our deterministic priorities, large p should approach the
	// critical path; verify p=64 reaches CP on modest trees.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(rng, 2+rng.Intn(60))
		s, err := sched.ParDeepestFirst(tr, 64)
		if err != nil {
			t.Fatal(err)
		}
		if ms, cp := s.Makespan(tr), tr.CriticalPath(); math.Abs(ms-cp) > 1e-6 {
			t.Fatalf("p=64 makespan %g, want critical path %g", ms, cp)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tr := randomTree(rng, 60)
	s, err := sched.ParDeepestFirst(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sched.DecodeSchedule(&buf, tr)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < tr.Len(); v++ {
		if back.Start[v] != s.Start[v] || back.Proc[v] != s.Proc[v] {
			t.Fatalf("round trip differs at node %d", v)
		}
	}
	if back.P != s.P {
		t.Fatalf("round trip P = %d, want %d", back.P, s.P)
	}
}

func TestDecodeScheduleRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	tr := randomTree(rng, 10)
	if _, err := sched.DecodeSchedule(strings.NewReader("{"), tr); err == nil {
		t.Error("truncated JSON accepted")
	}
	// Valid JSON, invalid schedule (precedence violated).
	if _, err := sched.DecodeSchedule(strings.NewReader(`{"p":1,"start":[0],"proc":[0]}`), tr); err == nil {
		t.Error("wrong-size schedule accepted")
	}
}
