package sched

import (
	"fmt"
	"sort"
	"sync"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// readyPush inserts v into the min-heap h ordered by rank and returns h.
// rank is a total order, so every pop returns a unique minimum and the
// heap's internal layout can never influence the schedule.
func readyPush(h []int32, v int32, rank []uint64) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if rank[h[parent]] <= rank[h[i]] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// readyPop removes and returns the minimum of h.
func readyPop(h []int32, rank []uint64) (int32, []int32) {
	v := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	readySiftDown(h, 0, rank)
	return v, h
}

// readyRemove removes the element at index i (used by the booking
// scheduler's σ-front fallback).
func readyRemove(h []int32, i int, rank []uint64) []int32 {
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h = h[:last]
		// Sift whichever direction restores the invariant.
		j := i
		for j > 0 && rank[h[(j-1)/2]] > rank[h[j]] {
			h[(j-1)/2], h[j] = h[j], h[(j-1)/2]
			j = (j - 1) / 2
		}
		if j == i {
			readySiftDown(h, i, rank)
		}
		return h
	}
	return h[:last]
}

func readyInit(h []int32, rank []uint64) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		readySiftDown(h, i, rank)
	}
}

func readySiftDown(h []int32, i int, rank []uint64) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && rank[h[r]] < rank[h[l]] {
			m = r
		}
		if rank[h[i]] <= rank[h[m]] {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// finishHeap orders pending completion events by time (ties by node id for
// determinism — a total order, so pops are layout-independent). The three
// parallel slices live in the pooled scratch.
type finishHeap struct {
	at   []float64
	node []int32
	proc []int32
}

func (h *finishHeap) Len() int { return len(h.at) }

func (h *finishHeap) less(i, j int) bool {
	if h.at[i] != h.at[j] {
		return h.at[i] < h.at[j]
	}
	return h.node[i] < h.node[j]
}

func (h *finishHeap) swap(i, j int) {
	h.at[i], h.at[j] = h.at[j], h.at[i]
	h.node[i], h.node[j] = h.node[j], h.node[i]
	h.proc[i], h.proc[j] = h.proc[j], h.proc[i]
}

func (h *finishHeap) push(at float64, node, proc int32) {
	h.at = append(h.at, at)
	h.node = append(h.node, node)
	h.proc = append(h.proc, proc)
	i := h.Len() - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *finishHeap) pop() (at float64, node, proc int32) {
	at, node, proc = h.at[0], h.node[0], h.proc[0]
	last := h.Len() - 1
	h.swap(0, last)
	h.at, h.node, h.proc = h.at[:last], h.node[:last], h.proc[:last]
	n := last
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			break
		}
		h.swap(i, m)
		i = m
	}
	return at, node, proc
}

func (h *finishHeap) reset() {
	h.at = h.at[:0]
	h.node = h.node[:0]
	h.proc = h.proc[:0]
}

// schedScratch is the reusable working set of the event-driven schedulers
// (ListSchedule, MemCapped, MemCappedBooking), recycled across requests
// via schedPool; the processor free-set lives in the machine.State pool.
// Only the returned Schedule is allocated per call.
type schedScratch struct {
	remaining []int32
	ready     []int32
	fin       finishHeap
	started   []bool // booking / memcap flags
	extra     []bool // booking out-of-order flags
	skipped   []int32
}

var schedPool = sync.Pool{New: func() any { return new(schedScratch) }}

func getSchedScratch() *schedScratch   { return schedPool.Get().(*schedScratch) }
func putSchedScratch(sc *schedScratch) { schedPool.Put(sc) }

// ensureBase sizes the buffers every scheduler needs.
func (sc *schedScratch) ensureBase(n int) {
	if cap(sc.remaining) < n {
		sc.remaining = make([]int32, n)
	}
	sc.remaining = sc.remaining[:n]
	sc.ready = sc.ready[:0]
	sc.fin.reset()
}

// ensureFlags additionally sizes the boolean per-node flags (capped
// schedulers).
func (sc *schedScratch) ensureFlags(n int) {
	if cap(sc.started) < n {
		sc.started = make([]bool, n)
		sc.extra = make([]bool, n)
	}
	sc.started = sc.started[:n]
	sc.extra = sc.extra[:n]
	clear(sc.started)
	clear(sc.extra)
}

// ListSchedule runs the event-based list scheduling of paper Algorithm 3:
// whenever a processor is available, it receives the head of the ready-node
// priority queue defined by less. The returned schedule is always valid.
//
// less must be a strict weak order; when it is a total order the schedule
// is independent of heap internals. This comparator form exists for ad-hoc
// priorities; the package's own heuristics precompute a rank array per
// tree (see Precompute) and go through listScheduleRank, which performs no
// comparator calls and, on a warm pool, no allocations beyond the result.
func ListSchedule(t *tree.Tree, p int, less func(a, b int) bool) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: need at least one processor, got %d", p)
	}
	return ListScheduleOn(t, machine.Uniform(p), less)
}

// ListScheduleOn is ListSchedule on an explicit machine model: on a
// heterogeneous model a freed processor is picked fastest-first and every
// task runs in w/s_proc time. On a uniform model it is byte-identical to
// ListSchedule.
func ListScheduleOn(t *tree.Tree, m *machine.Model, less func(a, b int) bool) (*Schedule, error) {
	n := t.Len()
	if n == 0 {
		return &Schedule{Start: []float64{}, Proc: []int{}, P: m.P(), M: hetModel(m)}, nil
	}
	// Reduce the comparator to its rank permutation once; the heap then
	// compares integers.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	rank := make([]uint64, n)
	for i, v := range idx {
		rank[v] = uint64(i)
	}
	return listScheduleRank(t, m, rank)
}

// hetModel is the Schedule.M normalization: uniform machines are the
// implicit default (nil), so uniform schedules stay bit-compatible with
// every historical consumer.
func hetModel(m *machine.Model) *machine.Model {
	if m.IsUniform() {
		return nil
	}
	return m
}

// listScheduleRank is the rank-keyed core of Algorithm 3.
func listScheduleRank(t *tree.Tree, m *machine.Model, rank []uint64) (*Schedule, error) {
	n := t.Len()
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: m.P(), M: hetModel(m)}
	if n == 0 {
		return s, nil
	}
	sc := getSchedScratch()
	sc.ensureBase(n)
	remaining, ready := sc.remaining, sc.ready
	st := machine.NewState(m)
	hasPulse := false
	for v := 0; v < n; v++ {
		remaining[v] = int32(t.NumChildren(v))
		if remaining[v] == 0 {
			ready = append(ready, int32(v))
		}
		hasPulse = hasPulse || t.W(v) == 0
	}
	readyInit(ready, rank)
	fin := &sc.fin
	now := 0.0
	scheduled := 0
	// The event loop releases all memory freed at an instant before it
	// allocates — the simulator's exact order on pulse-free trees — so the
	// running resident maximum is the schedule's exact peak memory.
	var mem, peak int64

	assign := func() {
		for st.Idle() > 0 && len(ready) > 0 {
			proc := st.Take()
			var v int32
			v, ready = readyPop(ready, rank)
			s.Start[v] = now
			s.Proc[v] = int(proc)
			mem += t.N(int(v)) + t.F(int(v))
			fin.push(now+m.ExecTime(t.W(int(v)), int(proc)), v, proc)
			scheduled++
		}
		if mem > peak {
			peak = mem
		}
	}
	complete := func(v int32) {
		mem -= t.N(int(v)) + t.InSize(int(v))
		if pa := t.Parent(int(v)); pa != tree.None {
			remaining[pa]--
			if remaining[pa] == 0 {
				ready = readyPush(ready, int32(pa), rank)
			}
		}
	}
	assign()
	for fin.Len() > 0 {
		at, v, proc := fin.pop()
		now = at
		st.Put(proc)
		complete(v)
		// Drain all events at the same instant before assigning, so that a
		// parent freed by several children sees all of them complete.
		for fin.Len() > 0 && fin.at[0] == now {
			_, v2, proc2 := fin.pop()
			st.Put(proc2)
			complete(v2)
		}
		assign()
	}
	sc.ready = ready
	st.Recycle()
	putSchedScratch(sc)
	if scheduled != n {
		return nil, fmt.Errorf("sched: internal error: scheduled %d of %d nodes", scheduled, n)
	}
	if !hasPulse {
		s.setPeak(peak)
	}
	return s, nil
}
