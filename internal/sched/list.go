package sched

import (
	"container/heap"
	"fmt"

	"treesched/internal/tree"
)

// nodeHeap is a priority queue of ready nodes ordered by a caller-supplied
// strict-weak-order comparator.
type nodeHeap struct {
	nodes []int
	less  func(a, b int) bool
}

func (h *nodeHeap) Len() int           { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool { return h.less(h.nodes[i], h.nodes[j]) }
func (h *nodeHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.nodes
	n := len(old)
	x := old[n-1]
	h.nodes = old[:n-1]
	return x
}

// finishHeap orders pending completion events by time (ties by node id for
// determinism).
type finishHeap struct {
	at   []float64
	node []int
	proc []int
}

func (h *finishHeap) Len() int { return len(h.at) }
func (h *finishHeap) Less(i, j int) bool {
	if h.at[i] != h.at[j] {
		return h.at[i] < h.at[j]
	}
	return h.node[i] < h.node[j]
}
func (h *finishHeap) Swap(i, j int) {
	h.at[i], h.at[j] = h.at[j], h.at[i]
	h.node[i], h.node[j] = h.node[j], h.node[i]
	h.proc[i], h.proc[j] = h.proc[j], h.proc[i]
}
func (h *finishHeap) Push(x interface{}) { panic("use push3") }
func (h *finishHeap) Pop() interface{}   { panic("use pop3") }

func (h *finishHeap) push3(at float64, node, proc int) {
	h.at = append(h.at, at)
	h.node = append(h.node, node)
	h.proc = append(h.proc, proc)
	heap.Fix(h, h.Len()-1) // sift the new last element up
}

func (h *finishHeap) pop3() (at float64, node, proc int) {
	at, node, proc = h.at[0], h.node[0], h.proc[0]
	last := h.Len() - 1
	h.Swap(0, last)
	h.at, h.node, h.proc = h.at[:last], h.node[:last], h.proc[:last]
	if last > 0 {
		heap.Fix(h, 0)
	}
	return at, node, proc
}

// ListSchedule runs the event-based list scheduling of paper Algorithm 3:
// whenever a processor is available, it receives the head of the ready-node
// priority queue defined by less. The returned schedule is always valid.
func ListSchedule(t *tree.Tree, p int, less func(a, b int) bool) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: need at least one processor, got %d", p)
	}
	n := t.Len()
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: p}
	if n == 0 {
		return s, nil
	}
	remaining := make([]int, n)
	ready := &nodeHeap{less: less}
	for v := 0; v < n; v++ {
		remaining[v] = t.NumChildren(v)
		if remaining[v] == 0 {
			ready.nodes = append(ready.nodes, v)
		}
	}
	heap.Init(ready)

	freeProcs := make([]int, 0, p)
	for i := p - 1; i >= 0; i-- {
		freeProcs = append(freeProcs, i) // pop order: proc 0 first
	}
	running := &finishHeap{}
	now := 0.0
	scheduled := 0

	assign := func() {
		for len(freeProcs) > 0 && ready.Len() > 0 {
			proc := freeProcs[len(freeProcs)-1]
			freeProcs = freeProcs[:len(freeProcs)-1]
			v := heap.Pop(ready).(int)
			s.Start[v] = now
			s.Proc[v] = proc
			running.push3(now+t.W(v), v, proc)
			scheduled++
		}
	}
	assign()
	for running.Len() > 0 {
		at, v, proc := running.pop3()
		now = at
		freeProcs = append(freeProcs, proc)
		if pa := t.Parent(v); pa != tree.None {
			remaining[pa]--
			if remaining[pa] == 0 {
				heap.Push(ready, pa)
			}
		}
		// Drain all events at the same instant before assigning, so that a
		// parent freed by several children sees all of them complete.
		for running.Len() > 0 && running.at[0] == now {
			_, v2, proc2 := running.pop3()
			freeProcs = append(freeProcs, proc2)
			if pa := t.Parent(v2); pa != tree.None {
				remaining[pa]--
				if remaining[pa] == 0 {
					heap.Push(ready, pa)
				}
			}
		}
		assign()
	}
	if scheduled != n {
		return nil, fmt.Errorf("sched: internal error: scheduled %d of %d nodes", scheduled, n)
	}
	return s, nil
}
