package sched

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"treesched/internal/traversal"
	"treesched/internal/tree"
)

func optionsTestTree(tb testing.TB) *tree.Tree {
	tb.Helper()
	rng := rand.New(rand.NewSource(9))
	return tree.RandomAttachment(rng, 70, tree.WeightSpec{WMin: 1, WMax: 5, NMin: 0, NMax: 2, FMin: 1, FMax: 8})
}

func TestParseHeuristicRoundTrip(t *testing.T) {
	for id := HeuristicID(0); id.Valid(); id++ {
		got, err := ParseHeuristic(id.String())
		if err != nil || got != id {
			t.Errorf("ParseHeuristic(%q) = %v, %v", id.String(), got, err)
		}
	}
	_, err := ParseHeuristic("NoSuchHeuristic")
	if err == nil {
		t.Fatal("parsed an unknown name")
	}
	// The error must enumerate every valid name, so trace authors see the
	// whole menu.
	for _, n := range HeuristicNames() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("ParseHeuristic error %q does not enumerate %q", err, n)
		}
	}
	if HeuristicID(-1).Valid() || HeuristicID(int(numHeuristicIDs)).Valid() {
		t.Error("out-of-range IDs report valid")
	}
}

func TestHeuristicIDTextRoundTrip(t *testing.T) {
	for id := HeuristicID(0); id.Valid(); id++ {
		text, err := id.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", id, err)
		}
		if string(text) != id.String() {
			t.Errorf("MarshalText(%v) = %q, want %q", id, text, id.String())
		}
		var back HeuristicID
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != id {
			t.Errorf("round trip %v -> %q -> %v", id, text, back)
		}
	}
	if _, err := HeuristicID(-1).MarshalText(); err == nil {
		t.Error("marshaled an invalid id")
	}
	var id HeuristicID
	if err := id.UnmarshalText([]byte("NoSuchHeuristic")); err == nil {
		t.Error("unmarshaled an unknown name")
	}
}

func TestHeuristicNamesSortedAndComplete(t *testing.T) {
	names := HeuristicNames()
	if len(names) != int(numHeuristicIDs) {
		t.Fatalf("got %d names, want %d", len(names), int(numHeuristicIDs))
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("names not sorted: %v", names)
	}
	for _, n := range names {
		if _, err := ParseHeuristic(n); err != nil {
			t.Errorf("listed name %q does not parse: %v", n, err)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Processors: 0}).Validate(); err == nil {
		t.Error("p=0 accepted")
	}
	if err := (Options{Processors: 2, Heuristics: []HeuristicID{HeuristicID(99)}}).Validate(); err == nil {
		t.Error("invalid id accepted")
	}
	if err := (Options{Processors: 2, Heuristics: []HeuristicID{IDMemCapped}}).Validate(); err == nil {
		t.Error("capped heuristic without factor accepted")
	}
	if err := (Options{Processors: 2, Heuristics: []HeuristicID{IDMemCapped}, MemCapFactor: math.NaN()}).Validate(); err == nil {
		t.Error("NaN cap factor accepted")
	}
	if err := (Options{Processors: 2, Heuristics: []HeuristicID{IDMemCapped}, MemCapFactor: 1.5}).Validate(); err != nil {
		t.Errorf("valid capped options rejected: %v", err)
	}
	if err := (Options{Processors: 2, Heuristics: []HeuristicID{IDAuto}}).Validate(); err == nil {
		t.Error("Auto pseudo-heuristic accepted in a plain selection")
	}
	if err := (Options{Processors: 2, Heuristics: []HeuristicID{IDExact}}).Validate(); err == nil {
		t.Error("Exact pseudo-heuristic accepted in a plain selection")
	}
}

func TestOptionsSelectDefaultsToPaperFour(t *testing.T) {
	hs, err := (Options{Processors: 4}).Select()
	if err != nil {
		t.Fatal(err)
	}
	want := Heuristics()
	if len(hs) != len(want) {
		t.Fatalf("got %d heuristics, want %d", len(hs), len(want))
	}
	tr := optionsTestTree(t)
	for i, h := range hs {
		if h.Name != want[i].Name {
			t.Errorf("heuristic %d: %q, want %q", i, h.Name, want[i].Name)
		}
		s, err := h.Run(tr, 4)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		ref, err := want[i].Run(tr, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.Makespan(tr) != ref.Makespan(tr) || PeakMemory(tr, s) != PeakMemory(tr, ref) {
			t.Errorf("%s via Options differs from direct call", h.Name)
		}
	}
}

func TestOptionsSequentialBaselines(t *testing.T) {
	tr := optionsTestTree(t)
	opts := Options{
		Processors: 4, // ignored by the sequential baselines
		Heuristics: []HeuristicID{IDSequential, IDOptimalSequential},
	}
	hs, err := opts.Select()
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hs {
		s, err := h.Run(tr, opts.Processors)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if err := s.Validate(tr); err != nil {
			t.Fatalf("%s: invalid schedule: %v", h.Name, err)
		}
		if s.P != 1 {
			t.Errorf("%s ran on %d processors", h.Name, s.P)
		}
		if got, want := s.Makespan(tr), tr.TotalW(); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s makespan %g, want total work %g", h.Name, got, want)
		}
		peak := PeakMemory(tr, s)
		ref := traversal.BestPostOrder(tr).Peak
		if i == 0 && peak != ref {
			t.Errorf("Sequential peak %d, want best postorder peak %d", peak, ref)
		}
		if i == 1 && peak != traversal.Optimal(tr).Peak {
			t.Errorf("OptimalSequential peak %d, want Liu optimal %d", peak, traversal.Optimal(tr).Peak)
		}
	}
}

func TestOptionsMemCapped(t *testing.T) {
	tr := optionsTestTree(t)
	opts := Options{
		Processors:   4,
		Heuristics:   []HeuristicID{IDMemCapped, IDMemCappedBooking},
		MemCapFactor: 1.5,
	}
	hs, err := opts.Select()
	if err != nil {
		t.Fatal(err)
	}
	cap := int64(math.Ceil(1.5 * float64(MemoryLowerBound(tr))))
	for _, h := range hs {
		s, err := h.Run(tr, 4)
		if err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
		if peak := PeakMemory(tr, s); peak > cap {
			t.Errorf("%s peak %d exceeds cap %d", h.Name, peak, cap)
		}
	}
}

func TestSequentialScheduleRejectsPartialOrder(t *testing.T) {
	tr := optionsTestTree(t)
	if _, err := SequentialSchedule(tr, tr.TopOrder()[:tr.Len()-1]); err == nil {
		t.Error("partial order accepted")
	}
	if _, err := SequentialSchedule(tr, tr.TopOrder()); err != nil {
		t.Errorf("valid order rejected: %v", err)
	}
}

func TestByNameStillResolvesEverything(t *testing.T) {
	for _, name := range []string{
		"ParSubtrees", "ParSubtreesOptim", "ParInnerFirst", "ParDeepestFirst",
		"ParInnerFirstArbitrary", "Sequential", "OptimalSequential",
	} {
		h, ok := ByName(name)
		if !ok || h.Name != name || h.Run == nil {
			t.Errorf("ByName(%q) broken", name)
		}
	}
	for _, name := range []string{"MemCapped", "MemCappedBooking", "Auto", "Exact", "nope"} {
		if _, ok := ByName(name); ok {
			t.Errorf("ByName(%q) should not resolve", name)
		}
	}
}
