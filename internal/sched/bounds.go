package sched

import (
	"treesched/internal/machine"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// MakespanLowerBound returns the classic makespan lower bound with p
// processors: max(total work / p, w-weighted critical path). This is the
// reference used for the x axis of paper Figure 6.
func MakespanLowerBound(t *tree.Tree, p int) float64 {
	if t.Len() == 0 {
		return 0
	}
	lb := t.TotalW() / float64(p)
	if cp := t.CriticalPath(); cp > lb {
		lb = cp
	}
	return lb
}

// MakespanLowerBoundOn is the speed-scaled makespan lower bound on an
// explicit machine model: max(ΣW / Σs, critical path / s_max) — the area
// bound over the aggregate speed and the critical path at the fastest
// processor. On a uniform model it equals MakespanLowerBound(t, p).
func MakespanLowerBoundOn(t *tree.Tree, m *machine.Model) float64 {
	if t.Len() == 0 {
		return 0
	}
	lb := t.TotalW() / m.SumSpeed()
	if cp := t.CriticalPath() / m.MaxSpeed(); cp > lb {
		lb = cp
	}
	return lb
}

// MemoryLowerBound returns the sequential memory reference M_seq used
// throughout the paper's evaluation: the peak of the memory-optimal
// sequential postorder (§6.1; optimal in 95.8% of the paper's instances and
// within 1% on average). Adding processors can never reduce peak memory, so
// the optimal sequential memory bounds every parallel schedule from below.
func MemoryLowerBound(t *tree.Tree) int64 {
	return traversal.BestPostOrder(t).Peak
}

// GrahamBound returns the guaranteed makespan bound of any list scheduling
// on p processors: totalW/p + (1-1/p)·criticalPath, which is at most
// (2-1/p) times the optimal makespan.
func GrahamBound(t *tree.Tree, p int) float64 {
	if t.Len() == 0 {
		return 0
	}
	fp := float64(p)
	return t.TotalW()/fp + (1-1/fp)*t.CriticalPath()
}
