package sched

import (
	"math/rand"
	"sort"
	"testing"
)

// refQueue is a naive reference implementation of splitQueue.
type refQueue struct {
	k    int
	keys []splitKey
}

func (q *refQueue) push(x splitKey) { q.keys = append(q.keys, x) }

func (q *refQueue) sorted() []splitKey {
	out := append([]splitKey(nil), q.keys...)
	sort.Slice(out, func(a, b int) bool { return out[a].greater(out[b]) })
	return out
}

func (q *refQueue) popMax() splitKey {
	s := q.sorted()
	max := s[0]
	for i, x := range q.keys {
		if x == max {
			q.keys = append(q.keys[:i], q.keys[i+1:]...)
			break
		}
	}
	return max
}

func (q *refQueue) sumTop() float64 {
	s := q.sorted()
	var sum float64
	for i := 0; i < len(s) && i < q.k; i++ {
		sum += s[i].W
	}
	return sum
}

func (q *refQueue) sumAll() float64 {
	var sum float64
	for _, x := range q.keys {
		sum += x.W
	}
	return sum
}

func TestSplitQueueAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		q := newSplitQueue(k)
		ref := &refQueue{k: k}
		id := 0
		for op := 0; op < 300; op++ {
			if q.Len() != len(ref.keys) {
				t.Fatalf("len mismatch: %d vs %d", q.Len(), len(ref.keys))
			}
			if q.Len() == 0 || rng.Float64() < 0.6 {
				x := splitKey{W: float64(rng.Intn(20)), w: float64(rng.Intn(5)), id: id}
				id++
				q.Push(x)
				ref.push(x)
			} else {
				got, want := q.PopMax(), ref.popMax()
				if got != want {
					t.Fatalf("PopMax = %+v, want %+v", got, want)
				}
			}
			if q.Len() > 0 {
				if got, want := q.Max(), ref.sorted()[0]; got != want {
					t.Fatalf("Max = %+v, want %+v", got, want)
				}
			}
			if got, want := q.SumTop(), ref.sumTop(); got != want {
				t.Fatalf("SumTop = %g, want %g", got, want)
			}
			if got, want := q.SumAll(), ref.sumAll(); got != want {
				t.Fatalf("SumAll = %g, want %g", got, want)
			}
		}
	}
}

func TestSplitQueueDrainOrdersHeaviestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q := newSplitQueue(3)
	for i := 0; i < 64; i++ {
		q.Push(splitKey{W: rng.Float64() * 100, w: rng.Float64(), id: i})
	}
	out := q.Drain()
	for i := 1; i < len(out); i++ {
		if out[i].greater(out[i-1]) {
			t.Fatalf("Drain not ordered at %d", i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Drain left %d items", q.Len())
	}
}

func TestSplitKeyTieBreaks(t *testing.T) {
	a := splitKey{W: 5, w: 2, id: 1}
	b := splitKey{W: 5, w: 2, id: 2}
	c := splitKey{W: 5, w: 3, id: 3}
	if !c.greater(a) {
		t.Errorf("heavier own-weight should win at equal W")
	}
	if !a.greater(b) {
		t.Errorf("smaller id should win at full tie")
	}
}
