package sched

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"treesched/internal/tree"
)

// event kinds, in tie-break order at equal timestamps: completions release
// memory before new tasks allocate (this matches the per-step accounting of
// the paper's NP-completeness proof, §4.1).
const (
	evEnd   = 0 // task completion: release n_i and the children's files
	evPulse = 1 // zero-duration task: allocate, peak, release in one step
	evStart = 2 // task start: allocate n_i + f_i
)

// simEvent packs an event's sort key into one uint64: the IEEE bits of
// its timestamp shifted left one, ORed with a class bit (0 = release,
// 1 = allocation). Non-negative doubles leave the sign bit clear and
// compare exactly like their bit patterns, so events order by (time,
// releases-before-allocations) under plain integer comparison — no
// field-by-field comparator. Among allocations sharing a timestamp,
// zero-duration pulses order before real starts via a tie branch that
// only runs on equal keys. The timestamp itself is always re-derived from
// the schedule (eventAt), so the key is purely a sort key.
//
// The packing requires non-negative timestamps; fillEvents reports
// violations (a start in the tolerated [-timeEps, 0) band) and the
// callers fall back to a field-wise comparison.
type simEvent struct {
	key  uint64
	node int32
}

// kind derives the event kind: releases carry class bit 0; allocations
// are pulses when the task has zero duration.
func (e simEvent) kind(t *tree.Tree) int {
	if e.key&1 == 0 {
		return evEnd
	}
	if t.W(int(e.node)) == 0 {
		return evPulse
	}
	return evStart
}

// eventAt recomputes the event's exact timestamp from the schedule.
func eventAt(t *tree.Tree, s *Schedule, e simEvent) float64 {
	at := s.Start[e.node]
	if e.key&1 == 0 {
		at += s.Dur(t, int(e.node))
	}
	return at
}

// simScratch is the pooled working set of the schedule evaluator;
// steady-state PeakMemory/Evaluate calls perform no allocation.
type simScratch struct {
	ev      []simEvent
	procEnd []float64 // per-processor latest task end (Evaluate)
	procTop []int32   // task holding that end, for error messages
	topRank []int32   // node -> topological rank, built only for pulse ties
}

var simPool = sync.Pool{New: func() any { return new(simScratch) }}

// fillEvents builds the schedule's event array, pre-bucketed per node in
// one pass (zero-duration tasks collapse to a single pulse event), and
// reports whether every key packed exactly and whether any pulses exist.
func fillEvents(t *tree.Tree, s *Schedule, ev []simEvent) (out []simEvent, packable, hasPulse bool) {
	ev = ev[:0]
	n := t.Len()
	packable = true
	pack := func(at float64, class uint64, node int) {
		if at < 0 {
			packable = false
		}
		ev = append(ev, simEvent{key: math.Float64bits(at)<<1 | class, node: int32(node)})
	}
	// Pulse classification follows t.W (matching simEvent.kind): a task is
	// a pulse iff its work is zero, which under any positive finite speed
	// coincides with zero duration.
	for i := 0; i < n; i++ {
		pack(s.Start[i], 1, i) // pulse or start: allocation class
		if t.W(i) != 0 {
			pack(s.Start[i]+s.Dur(t, i), 0, i) // completion: release class
		} else {
			hasPulse = true
		}
	}
	return ev, packable, hasPulse
}

// sortEvents orders the schedule's events. sc.topRank is filled (lazily,
// pooled) when pulses exist: coincident zero-duration tasks replay in
// topological order — a child's pulse before its parent's — so a parent
// never releases an output file its child has not yet produced at that
// instant. (The peak of independent coincident pulses inherently depends
// on the chosen linearization; topological order is the causal one and
// keeps the replay deterministic.)
func (sc *simScratch) sortEvents(t *tree.Tree, s *Schedule, packable, hasPulse bool) {
	topRank := sc.topRank[:0]
	if hasPulse {
		n := t.Len()
		if cap(topRank) < n {
			topRank = make([]int32, n)
		}
		topRank = topRank[:n]
		for i, v := range t.TopOrder() {
			topRank[v] = int32(i)
		}
		sc.topRank = topRank
	}
	tie := func(a, b simEvent) int {
		if ka, kb := a.kind(t), b.kind(t); ka != kb {
			return ka - kb // releases < pulses < starts
		}
		if a.key&1 == 1 && t.W(int(a.node)) == 0 { // both pulses: causal order
			return int(topRank[a.node]) - int(topRank[b.node])
		}
		return int(a.node) - int(b.node)
	}
	if packable {
		slices.SortFunc(sc.ev, func(a, b simEvent) int {
			if a.key != b.key {
				if a.key < b.key {
					return -1
				}
				return 1
			}
			return tie(a, b) // rare — equal keys only
		})
		return
	}
	// Slow path for timestamps that escaped the bit packing (a start in
	// the tolerated [-timeEps, 0) band).
	slices.SortFunc(sc.ev, func(a, b simEvent) int {
		if aa, ba := eventAt(t, s, a), eventAt(t, s, b); aa != ba {
			if aa < ba {
				return -1
			}
			return 1
		}
		return tie(a, b)
	})
}

// PeakMemory returns the peak memory of executing schedule s on tree t: at
// any instant, resident memory is the sum of the output files produced but
// not yet consumed plus, for every running task, its execution and output
// files. Memory released at time τ is available to tasks starting at τ.
// The event buffer is pooled: steady-state calls allocate nothing.
func PeakMemory(t *tree.Tree, s *Schedule) int64 {
	if s.peakKnown {
		return s.peak
	}
	sc := simPool.Get().(*simScratch)
	var packable, hasPulse bool
	sc.ev, packable, hasPulse = fillEvents(t, s, sc.ev)
	sc.sortEvents(t, s, packable, hasPulse)
	var m, peak int64
	for _, e := range sc.ev {
		v := int(e.node)
		switch e.kind(t) {
		case evEnd:
			m -= t.N(v) + t.InSize(v)
		case evStart:
			m += t.N(v) + t.F(v)
		case evPulse:
			m += t.N(v) + t.F(v)
			if m > peak {
				peak = m
			}
			m -= t.N(v) + t.InSize(v)
		}
		if m > peak {
			peak = m
		}
	}
	simPool.Put(sc)
	return peak
}

// Evaluate validates s against t and measures it, all in one event pass:
// it returns the makespan and the exact simulated peak memory, or the
// first feasibility violation found (the checks of Schedule.Validate).
// This is the hot path of the portfolio racer and the service workers —
// one pooled event sort replaces the separate Validate sort, Makespan
// scan and PeakMemory simulation.
func Evaluate(t *tree.Tree, s *Schedule) (makespan float64, peak int64, err error) {
	n := t.Len()
	if len(s.Start) != n || len(s.Proc) != n {
		return 0, 0, fmt.Errorf("sched: schedule covers %d/%d starts, %d/%d procs", len(s.Start), n, len(s.Proc), n)
	}
	if s.P < 1 {
		return 0, 0, fmt.Errorf("sched: invalid processor count %d", s.P)
	}
	if s.M != nil && s.M.P() != s.P {
		return 0, 0, fmt.Errorf("sched: machine model has %d processors, schedule says %d", s.M.P(), s.P)
	}
	for i := 0; i < n; i++ {
		if s.Proc[i] < 0 || s.Proc[i] >= s.P {
			return 0, 0, fmt.Errorf("sched: node %d on invalid processor %d", i, s.Proc[i])
		}
		if s.Start[i] < -timeEps || math.IsNaN(s.Start[i]) || math.IsInf(s.Start[i], 0) {
			return 0, 0, fmt.Errorf("sched: node %d has invalid start time %v", i, s.Start[i])
		}
		if p := t.Parent(i); p != tree.None {
			if s.Start[p]+timeEps < s.Start[i]+s.Dur(t, i) {
				return 0, 0, fmt.Errorf("sched: node %d starts at %v before child %d completes at %v",
					p, s.Start[p], i, s.Start[i]+s.Dur(t, i))
			}
		}
		if c := s.Start[i] + s.Dur(t, i); c > makespan {
			makespan = c
		}
	}
	if n == 0 {
		return 0, 0, nil
	}
	if s.peakKnown {
		// Inline-tracked schedules skip the event replay: the peak is the
		// scheduler's exact running maximum, and overlap is impossible by
		// construction (a processor re-enters the free pool only at a
		// completion). The O(n) precedence/validity checks above still ran.
		return makespan, s.peak, nil
	}

	sc := simPool.Get().(*simScratch)
	var packable, hasPulse bool
	sc.ev, packable, hasPulse = fillEvents(t, s, sc.ev)
	sc.sortEvents(t, s, packable, hasPulse)
	if cap(sc.procEnd) < s.P {
		sc.procEnd = make([]float64, s.P)
		sc.procTop = make([]int32, s.P)
	}
	procEnd := sc.procEnd[:s.P]
	procTop := sc.procTop[:s.P]
	for q := range procEnd {
		procEnd[q] = math.Inf(-1)
	}
	var m int64
	// Per-processor overlap: events arrive in time order with releases
	// before allocations, so a task may start exactly when (within
	// timeEps) the processor's latest occupant ends, and zero-duration
	// tasks (pulses sort before starts) never block a start at the same
	// instant. procEnd tracks the furthest end seen on each processor, so
	// overlaps with any earlier task are caught, not just the previous
	// one.
	for _, e := range sc.ev {
		v := int(e.node)
		switch e.kind(t) {
		case evEnd:
			m -= t.N(v) + t.InSize(v)
			continue // releases can't raise the peak or overlap
		case evStart, evPulse:
			at := s.Start[v]
			q := s.Proc[v]
			if at+timeEps < procEnd[q] {
				err = fmt.Errorf("sched: tasks %d and %d overlap on processor %d", procTop[q], v, q)
			}
			if end := at + s.Dur(t, v); end > procEnd[q] {
				procEnd[q] = end
				procTop[q] = e.node
			}
			m += t.N(v) + t.F(v)
			if m > peak {
				peak = m
			}
			if e.kind(t) == evPulse {
				m -= t.N(v) + t.InSize(v)
			}
		}
		if err != nil {
			break
		}
	}
	simPool.Put(sc)
	if err != nil {
		return 0, 0, err
	}
	return makespan, peak, nil
}

// MemoryTrace returns the (time, resident-memory) steps of the schedule,
// one entry per event, for plotting and debugging. Entries share timestamps
// when several events coincide.
func MemoryTrace(t *tree.Tree, s *Schedule) (times []float64, mem []int64) {
	sc := simPool.Get().(*simScratch)
	var packable, hasPulse bool
	sc.ev, packable, hasPulse = fillEvents(t, s, sc.ev)
	sc.sortEvents(t, s, packable, hasPulse)
	var m int64
	for _, e := range sc.ev {
		v := int(e.node)
		at := eventAt(t, s, e)
		switch e.kind(t) {
		case evEnd:
			m -= t.N(v) + t.InSize(v)
		case evStart:
			m += t.N(v) + t.F(v)
		case evPulse:
			m += t.N(v) + t.F(v)
			times = append(times, at)
			mem = append(mem, m)
			m -= t.N(v) + t.InSize(v)
		}
		times = append(times, at)
		mem = append(mem, m)
	}
	simPool.Put(sc)
	return times, mem
}
