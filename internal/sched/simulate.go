package sched

import (
	"sort"

	"treesched/internal/tree"
)

// event kinds, in tie-break order at equal timestamps: completions release
// memory before new tasks allocate (this matches the per-step accounting of
// the paper's NP-completeness proof, §4.1).
const (
	evEnd   = 0 // task completion: release n_i and the children's files
	evPulse = 1 // zero-duration task: allocate, peak, release in one step
	evStart = 2 // task start: allocate n_i + f_i
)

type event struct {
	at   float64
	kind int8
	node int
}

// PeakMemory returns the peak memory of executing schedule s on tree t: at
// any instant, resident memory is the sum of the output files produced but
// not yet consumed plus, for every running task, its execution and output
// files. Memory released at time τ is available to tasks starting at τ.
func PeakMemory(t *tree.Tree, s *Schedule) int64 {
	n := t.Len()
	events := make([]event, 0, 2*n)
	for i := 0; i < n; i++ {
		if t.W(i) == 0 {
			events = append(events, event{s.Start[i], evPulse, i})
			continue
		}
		events = append(events, event{s.Start[i], evStart, i})
		events = append(events, event{s.Start[i] + t.W(i), evEnd, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].kind < events[b].kind
	})
	var m, peak int64
	for _, e := range events {
		v := e.node
		switch e.kind {
		case evEnd:
			m -= t.N(v) + t.InSize(v)
		case evStart:
			m += t.N(v) + t.F(v)
		case evPulse:
			m += t.N(v) + t.F(v)
			if m > peak {
				peak = m
			}
			m -= t.N(v) + t.InSize(v)
		}
		if m > peak {
			peak = m
		}
	}
	return peak
}

// MemoryTrace returns the (time, resident-memory) steps of the schedule,
// one entry per event, for plotting and debugging. Entries share timestamps
// when several events coincide.
func MemoryTrace(t *tree.Tree, s *Schedule) (times []float64, mem []int64) {
	n := t.Len()
	events := make([]event, 0, 2*n)
	for i := 0; i < n; i++ {
		if t.W(i) == 0 {
			events = append(events, event{s.Start[i], evPulse, i})
			continue
		}
		events = append(events, event{s.Start[i], evStart, i})
		events = append(events, event{s.Start[i] + t.W(i), evEnd, i})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		return events[a].kind < events[b].kind
	})
	var m int64
	for _, e := range events {
		v := e.node
		switch e.kind {
		case evEnd:
			m -= t.N(v) + t.InSize(v)
		case evStart:
			m += t.N(v) + t.F(v)
		case evPulse:
			m += t.N(v) + t.F(v)
			times = append(times, e.at)
			mem = append(mem, m)
			m -= t.N(v) + t.InSize(v)
		}
		times = append(times, e.at)
		mem = append(mem, m)
	}
	return times, mem
}
