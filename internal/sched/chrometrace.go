package sched

import (
	"fmt"
	"io"
	"strconv"

	"treesched/internal/tree"
)

// WriteChromeTrace emits the schedule in Chrome Trace Event Format JSON —
// the format Perfetto (ui.perfetto.dev) and chrome://tracing open
// natively. The timeline is the same event stream the simulator replays
// (fillEvents order): one track (tid) per processor carrying a complete
// event per task, plus a counter track plotting resident memory against
// the cap, so the memory/makespan trade-off the schedulers negotiate is
// visible as a curve over time rather than a scalar.
//
// One unit of schedule time is rendered as one microsecond: the Trace
// Event Format requires integer-friendly microsecond timestamps and the
// paper's work units are dimensionless, so the mapping is lossless for
// display purposes.
//
// The output is byte-stable for a given (tree, schedule, options): events
// are emitted in deterministic order (metadata, then tasks by node id,
// then memory samples in event-time order) with a fixed float format —
// the property the golden-file test pins.
type ChromeTraceOptions struct {
	// Name labels the process track; defaults to "treesched".
	Name string
	// MemCap, when > 0, adds a constant "cap" series to the memory
	// counter track so budget headroom is visible.
	MemCap int64
}

// ctFloat renders a float the way the golden file expects: shortest
// round-trip form (matches the obs exposition format).
func ctFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteChromeTrace writes t's schedule s as Trace Event Format JSON.
func WriteChromeTrace(w io.Writer, t *tree.Tree, s *Schedule, opts ChromeTraceOptions) error {
	if len(s.Start) != t.Len() || len(s.Proc) != t.Len() {
		return fmt.Errorf("chrometrace: schedule covers %d nodes, tree has %d", len(s.Start), t.Len())
	}
	name := opts.Name
	if name == "" {
		name = "treesched"
	}
	bw := NewChromeTraceWriter(w)
	bw.Open()
	bw.Meta(0, "process_name", name)
	for p := 0; p < s.P; p++ {
		label := fmt.Sprintf("P%d", p)
		if s.M != nil && !s.M.IsUniform() {
			label = fmt.Sprintf("P%d (speed %s)", p, ctFloat(s.M.Speed(p)))
		}
		bw.Meta(p, "thread_name", label)
	}
	for v := 0; v < t.Len(); v++ {
		bw.Task(s.Proc[v], strconv.Itoa(v), s.Start[v], s.Dur(t, v),
			fmt.Sprintf(`{"node":%d,"w":%s,"n":%d,"f":%d}`, v, ctFloat(t.W(v)), t.N(v), t.F(v)))
	}
	times, mem := MemoryTrace(t, s)
	for i := range times {
		bw.Memory(times[i], mem[i], opts.MemCap)
	}
	return bw.Close()
}

// ChromeTraceWriter assembles the Trace Event Format envelope: an object
// holding a traceEvents array, one event per line so diffs of golden
// files stay readable. Shared by the single-schedule renderer above and
// the forest package's one-track-per-job renderer.
type ChromeTraceWriter struct {
	w     io.Writer
	err   error
	first bool
}

// NewChromeTraceWriter returns a writer ready for Open.
func NewChromeTraceWriter(w io.Writer) *ChromeTraceWriter {
	return &ChromeTraceWriter{w: w, first: true}
}

func (c *ChromeTraceWriter) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	_, c.err = fmt.Fprintf(c.w, format, args...)
}

// Open writes the envelope prefix.
func (c *ChromeTraceWriter) Open() { c.printf("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n") }

// Close writes the envelope suffix and returns the first write error.
func (c *ChromeTraceWriter) Close() error {
	c.printf("\n]}\n")
	return c.err
}

func (c *ChromeTraceWriter) event(body string) {
	if c.first {
		c.printf("%s", body)
		c.first = false
		return
	}
	c.printf(",\n%s", body)
}

// Meta emits a metadata event naming a process or thread track.
func (c *ChromeTraceWriter) Meta(tid int, kind, name string) {
	c.event(fmt.Sprintf(`{"ph":"M","pid":0,"tid":%d,"name":%q,"args":{"name":%q}}`, tid, kind, name))
}

// Task emits a complete ("X") event on track tid.
func (c *ChromeTraceWriter) Task(tid int, name string, start, dur float64, args string) {
	c.event(fmt.Sprintf(`{"ph":"X","pid":0,"tid":%d,"name":%q,"ts":%s,"dur":%s,"args":%s}`,
		tid, name, ctFloat(start), ctFloat(dur), args))
}

// Memory emits a counter ("C") sample of resident memory, with a constant
// cap series when cap > 0.
func (c *ChromeTraceWriter) Memory(ts float64, resident, cap int64) {
	if cap > 0 {
		c.event(fmt.Sprintf(`{"ph":"C","pid":0,"tid":0,"name":"memory","ts":%s,"args":{"resident":%d,"cap":%d}}`,
			ctFloat(ts), resident, cap))
		return
	}
	c.event(fmt.Sprintf(`{"ph":"C","pid":0,"tid":0,"name":"memory","ts":%s,"args":{"resident":%d}}`,
		ctFloat(ts), resident))
}
