package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"treesched/internal/tree"
)

// scheduleJSON is the stable on-disk form of a Schedule.
type scheduleJSON struct {
	P     int       `json:"p"`
	Start []float64 `json:"start"`
	Proc  []int     `json:"proc"`
}

// EncodeJSON writes the schedule as JSON, suitable for archiving runs and
// for external plotting tools.
func (s *Schedule) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(scheduleJSON{P: s.P, Start: s.Start, Proc: s.Proc})
}

// DecodeSchedule reads a schedule written by EncodeJSON and validates it
// against t.
func DecodeSchedule(r io.Reader, t *tree.Tree) (*Schedule, error) {
	var sj scheduleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&sj); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	s := &Schedule{P: sj.P, Start: sj.Start, Proc: sj.Proc}
	if err := s.Validate(t); err != nil {
		return nil, fmt.Errorf("sched: decode: %w", err)
	}
	return s, nil
}
