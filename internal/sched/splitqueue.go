package sched

import "sync"

// splitKey orders subtree roots in SplitSubtrees: by non-increasing subtree
// weight W, ties by non-increasing node weight w (paper Alg. 2), final ties
// by node id for determinism.
type splitKey struct {
	W, w float64
	id   int
}

func (a splitKey) greater(b splitKey) bool {
	if a.W != b.W {
		return a.W > b.W
	}
	if a.w != b.w {
		return a.w > b.w
	}
	return a.id < b.id
}

// maxKeyHeap and minKeyHeap are typed binary heaps over splitKey. They
// deliberately do not implement container/heap: every container/heap
// Push/Pop boxes the 24-byte key into an interface{}, which made the split
// queue the dominant allocation site of the whole scheduling core.
type maxKeyHeap []splitKey

func (h *maxKeyHeap) push(x splitKey) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].greater(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *maxKeyHeap) pop() splitKey {
	s := *h
	x := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && s[r].greater(s[l]) {
			m = r
		}
		if !s[m].greater(s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return x
}

type minKeyHeap []splitKey

func (h *minKeyHeap) push(x splitKey) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[parent].greater(s[i]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// remove deletes and returns the element at index i, restoring the heap.
func (h *minKeyHeap) remove(i int) splitKey {
	s := *h
	x := s[i]
	last := len(s) - 1
	s[i] = s[last]
	s = s[:last]
	*h = s
	if i == last {
		return x
	}
	// Sift whichever direction restores the invariant.
	j := i
	for j > 0 && s[(j-1)/2].greater(s[j]) {
		s[(j-1)/2], s[j] = s[j], s[(j-1)/2]
		j = (j - 1) / 2
	}
	if j != i {
		return x
	}
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && s[m].greater(s[r]) {
			m = r
		}
		if !s[i].greater(s[m]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return x
}

func (h *minKeyHeap) pop() splitKey { return h.remove(0) }

// siftDown restores the invariant after s[i] grew (heap.Fix equivalent for
// a replaced root).
func (h minKeyHeap) siftDown(i int) {
	s := h
	n := len(s)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[m].greater(s[r]) {
			m = r
		}
		if !s[i].greater(s[m]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// splitQueue is the priority queue of SplitSubtrees augmented with O(1)
// access to the sum of the k heaviest subtree weights, so that the cost
// C_max(s) of every candidate splitting is evaluated in O(k + log n). It
// maintains the k largest keys in a min-heap (`top`) and the remainder in a
// max-heap (`rest`); PopMax always removes from `top`. Queues are recycled
// through a pool — SplitSubtrees runs twice per ParSubtrees call and the
// portfolio race runs ParSubtrees twice per tree.
type splitQueue struct {
	k      int
	top    minKeyHeap
	rest   maxKeyHeap
	sumTop float64 // sum of W over top
	sumAll float64 // sum of W over top and rest
}

var splitQueuePool = sync.Pool{New: func() any { return new(splitQueue) }}

func newSplitQueue(k int) *splitQueue {
	q := splitQueuePool.Get().(*splitQueue)
	q.k = k
	q.top = q.top[:0]
	q.rest = q.rest[:0]
	q.sumTop = 0
	q.sumAll = 0
	return q
}

// release returns the queue's buffers to the pool.
func (q *splitQueue) release() { splitQueuePool.Put(q) }

func (q *splitQueue) Len() int { return len(q.top) + len(q.rest) }

// SumAll returns the total subtree weight of all queued roots.
func (q *splitQueue) SumAll() float64 { return q.sumAll }

// SumTop returns the total subtree weight of the min(k, Len()) heaviest
// queued roots.
func (q *splitQueue) SumTop() float64 { return q.sumTop }

// Push inserts a root.
func (q *splitQueue) Push(x splitKey) {
	q.sumAll += x.W
	if len(q.top) < q.k {
		q.top.push(x)
		q.sumTop += x.W
		return
	}
	if x.greater(q.top[0]) {
		evicted := q.top[0]
		q.top[0] = x
		q.top.siftDown(0)
		q.sumTop += x.W - evicted.W
		q.rest.push(evicted)
		return
	}
	q.rest.push(x)
}

// Max returns the globally heaviest root without removing it.
// Cost: O(k) scan of the top heap.
func (q *splitQueue) Max() splitKey {
	best := 0
	for i := 1; i < len(q.top); i++ {
		if q.top[i].greater(q.top[best]) {
			best = i
		}
	}
	return q.top[best]
}

// PopMax removes and returns the globally heaviest root, refilling top from
// rest to keep the k-largest invariant.
func (q *splitQueue) PopMax() splitKey {
	best := 0
	for i := 1; i < len(q.top); i++ {
		if q.top[i].greater(q.top[best]) {
			best = i
		}
	}
	x := q.top.remove(best)
	q.sumTop -= x.W
	q.sumAll -= x.W
	if len(q.rest) > 0 {
		y := q.rest.pop()
		q.top.push(y)
		q.sumTop += y.W
	}
	return x
}

// Drain returns all queued roots ordered heaviest-first and empties the
// queue.
func (q *splitQueue) Drain() []splitKey {
	out := make([]splitKey, 0, q.Len())
	for q.Len() > 0 {
		out = append(out, q.PopMax())
	}
	return out
}
