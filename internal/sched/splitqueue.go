package sched

import "container/heap"

// splitKey orders subtree roots in SplitSubtrees: by non-increasing subtree
// weight W, ties by non-increasing node weight w (paper Alg. 2), final ties
// by node id for determinism.
type splitKey struct {
	W, w float64
	id   int
}

func (a splitKey) greater(b splitKey) bool {
	if a.W != b.W {
		return a.W > b.W
	}
	if a.w != b.w {
		return a.w > b.w
	}
	return a.id < b.id
}

type maxKeyHeap []splitKey

func (h maxKeyHeap) Len() int            { return len(h) }
func (h maxKeyHeap) Less(i, j int) bool  { return h[i].greater(h[j]) }
func (h maxKeyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxKeyHeap) Push(x interface{}) { *h = append(*h, x.(splitKey)) }
func (h *maxKeyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type minKeyHeap []splitKey

func (h minKeyHeap) Len() int            { return len(h) }
func (h minKeyHeap) Less(i, j int) bool  { return h[j].greater(h[i]) }
func (h minKeyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minKeyHeap) Push(x interface{}) { *h = append(*h, x.(splitKey)) }
func (h *minKeyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// splitQueue is the priority queue of SplitSubtrees augmented with O(1)
// access to the sum of the k heaviest subtree weights, so that the cost
// C_max(s) of every candidate splitting is evaluated in O(k + log n). It
// maintains the k largest keys in a min-heap (`top`) and the remainder in a
// max-heap (`rest`); PopMax always removes from `top`.
type splitQueue struct {
	k      int
	top    minKeyHeap
	rest   maxKeyHeap
	sumTop float64 // sum of W over top
	sumAll float64 // sum of W over top and rest
}

func newSplitQueue(k int) *splitQueue { return &splitQueue{k: k} }

func (q *splitQueue) Len() int { return len(q.top) + len(q.rest) }

// SumAll returns the total subtree weight of all queued roots.
func (q *splitQueue) SumAll() float64 { return q.sumAll }

// SumTop returns the total subtree weight of the min(k, Len()) heaviest
// queued roots.
func (q *splitQueue) SumTop() float64 { return q.sumTop }

// Push inserts a root.
func (q *splitQueue) Push(x splitKey) {
	q.sumAll += x.W
	if len(q.top) < q.k {
		heap.Push(&q.top, x)
		q.sumTop += x.W
		return
	}
	if x.greater(q.top[0]) {
		evicted := q.top[0]
		q.top[0] = x
		heap.Fix(&q.top, 0)
		q.sumTop += x.W - evicted.W
		heap.Push(&q.rest, evicted)
		return
	}
	heap.Push(&q.rest, x)
}

// Max returns the globally heaviest root without removing it.
// Cost: O(k) scan of the top heap.
func (q *splitQueue) Max() splitKey {
	best := 0
	for i := 1; i < len(q.top); i++ {
		if q.top[i].greater(q.top[best]) {
			best = i
		}
	}
	return q.top[best]
}

// PopMax removes and returns the globally heaviest root, refilling top from
// rest to keep the k-largest invariant.
func (q *splitQueue) PopMax() splitKey {
	best := 0
	for i := 1; i < len(q.top); i++ {
		if q.top[i].greater(q.top[best]) {
			best = i
		}
	}
	x := heap.Remove(&q.top, best).(splitKey)
	q.sumTop -= x.W
	q.sumAll -= x.W
	if len(q.rest) > 0 {
		y := heap.Pop(&q.rest).(splitKey)
		heap.Push(&q.top, y)
		q.sumTop += y.W
	}
	return x
}

// Drain returns all queued roots ordered heaviest-first and empties the
// queue.
func (q *splitQueue) Drain() []splitKey {
	out := make([]splitKey, 0, q.Len())
	for q.Len() > 0 {
		out = append(out, q.PopMax())
	}
	return out
}
