package sched

import (
	"fmt"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// MemCappedBooking schedules t on p processors under a hard peak-memory
// cap, like MemCapped, but with far more parallelism: instead of activating
// tasks strictly in the order of the reference traversal σ (the
// memory-optimal postorder), it admits *any* ready task in deepest-first
// priority, provided the task's footprint fits in the memory budget that is
// not booked for σ's future needs.
//
// Booking invariant: let futurePeak[k] be the largest memory the purely
// sequential execution of σ[k..] ever needs. Every out-of-order task v
// charges n_v+f_v against the budget cap - futurePeak[next] (n_v is
// released when v completes, f_v when its parent does). Since futurePeak is
// non-increasing in next and any resident file is either part of the
// σ-prefix state or charged to the budget, σ[next] can always start once
// the machine drains — the scheduler never deadlocks and never exceeds cap.
//
// It returns an error if cap is below the sequential requirement of σ.
func MemCappedBooking(t *tree.Tree, p int, cap int64) (*Schedule, error) {
	return NewPrecompute(t).MemCappedBooking(p, cap)
}

// MemCappedBooking is the precompute-sharing form of the package-level
// function: σ, its inverse, the booking suffix maxima and the admission
// ranking all come from the shared context.
func (pc *Precompute) MemCappedBooking(p int, cap int64) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return pc.MemCappedBookingOn(m, cap)
}

// MemCappedBookingOn is MemCappedBooking on an explicit machine model.
// The booking invariant is purely about memory, so it is untouched by
// speeds; the machine decides processor picks (fastest-first) and
// execution times. On a uniform model it is byte-identical to the
// processor-count form.
func (pc *Precompute) MemCappedBookingOn(m *machine.Model, cap int64) (*Schedule, error) {
	t := pc.t
	n := t.Len()
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: m.P(), M: hetModel(m)}
	if n == 0 {
		return s, nil
	}
	order, pos, futurePeak := pc.Order(), pc.Pos(), pc.FuturePeak()
	if futurePeak[0] > cap {
		return nil, fmt.Errorf("sched: memory cap %d below sequential requirement %d", cap, futurePeak[0])
	}
	rank := pc.rankBooking()

	sc := getSchedScratch()
	sc.ensureBase(n)
	sc.ensureFlags(n)
	remaining, ready := sc.remaining, sc.ready
	st := machine.NewState(m)
	started, outOfOrder := sc.started, sc.extra
	hasPulse := false
	for v := 0; v < n; v++ {
		remaining[v] = int32(t.NumChildren(v))
		if remaining[v] == 0 {
			ready = append(ready, int32(v))
		}
		hasPulse = hasPulse || t.W(v) == 0
	}
	readyInit(ready, rank)
	fin := &sc.fin

	var (
		mem       int64 // resident memory right now
		peak      int64 // running max of mem
		extraUsed int64 // budget charged by out-of-order tasks
		next      int   // first index of σ not yet started
		now       float64
	)

	// admissionWindow bounds the per-event scan of the ready queue; σ[next]
	// is always retried, so the window only trades scheduling quality for
	// speed, never progress.
	const admissionWindow = 256

	start := func(v int, proc int32) {
		s.Start[v] = now
		s.Proc[v] = int(proc)
		started[v] = true
		mem += t.N(v) + t.F(v)
		if mem > peak {
			peak = mem
		}
		fin.push(now+m.ExecTime(t.W(v), int(proc)), int32(v), proc)
		if pos[v] > next {
			outOfOrder[v] = true
			extraUsed += t.N(v) + t.F(v)
		}
		for next < n && started[order[next]] {
			next++
		}
	}
	admissible := func(v int) bool {
		foot := t.N(v) + t.F(v)
		if mem+foot > cap {
			return false
		}
		if pos[v] == next {
			return true
		}
		return extraUsed+foot <= cap-futurePeak[next]
	}
	assign := func() {
		// Scan the ready queue in priority order, admitting greedily.
		skipped := sc.skipped[:0]
		scanned := 0
		for st.Idle() > 0 && len(ready) > 0 && scanned < admissionWindow {
			var v int32
			v, ready = readyPop(ready, rank)
			scanned++
			if !admissible(int(v)) {
				skipped = append(skipped, v)
				continue
			}
			start(int(v), st.Take())
		}
		for _, v := range skipped {
			ready = readyPush(ready, v, rank)
		}
		sc.skipped = skipped
		// Fallback: σ[next] is admissible whenever the machine is idle;
		// retry it even if the window missed it.
		if st.Idle() > 0 && next < n {
			v := order[next]
			if !started[v] && remaining[v] == 0 && admissible(v) {
				// Remove v from the ready heap before starting it.
				for i, u := range ready {
					if int(u) == v {
						ready = readyRemove(ready, i, rank)
						start(v, st.Take())
						break
					}
				}
			}
		}
	}

	complete := func(v int, proc int32) {
		mem -= t.N(v) + t.InSize(v)
		if outOfOrder[v] {
			extraUsed -= t.N(v) // f_v stays charged until the parent completes
		}
		for _, c := range t.Children(v) {
			if outOfOrder[c] {
				extraUsed -= t.F(c)
				outOfOrder[c] = false
			}
		}
		st.Put(proc)
		if pa := t.Parent(v); pa != tree.None {
			remaining[pa]--
			if remaining[pa] == 0 {
				ready = readyPush(ready, int32(pa), rank)
			}
		}
	}

	assign()
	done := 0
	for fin.Len() > 0 {
		at, v, proc := fin.pop()
		now = at
		complete(int(v), proc)
		done++
		for fin.Len() > 0 && fin.at[0] == now {
			_, v2, proc2 := fin.pop()
			complete(int(v2), proc2)
			done++
		}
		assign()
	}
	sc.ready = ready
	st.Recycle()
	putSchedScratch(sc)
	if done != n {
		return nil, fmt.Errorf("sched: booking scheduler finished %d of %d tasks", done, n)
	}
	if !hasPulse {
		s.setPeak(peak)
	}
	return s, nil
}
