package sched

import (
	"container/heap"
	"fmt"

	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// MemCappedBooking schedules t on p processors under a hard peak-memory
// cap, like MemCapped, but with far more parallelism: instead of activating
// tasks strictly in the order of the reference traversal σ (the
// memory-optimal postorder), it admits *any* ready task in deepest-first
// priority, provided the task's footprint fits in the memory budget that is
// not booked for σ's future needs.
//
// Booking invariant: let futurePeak[k] be the largest memory the purely
// sequential execution of σ[k..] ever needs. Every out-of-order task v
// charges n_v+f_v against the budget cap - futurePeak[next] (n_v is
// released when v completes, f_v when its parent does). Since futurePeak is
// non-increasing in next and any resident file is either part of the
// σ-prefix state or charged to the budget, σ[next] can always start once
// the machine drains — the scheduler never deadlocks and never exceeds cap.
//
// It returns an error if cap is below the sequential requirement of σ.
func MemCappedBooking(t *tree.Tree, p int, cap int64) (*Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: need at least one processor, got %d", p)
	}
	res := traversal.BestPostOrder(t)
	n := t.Len()
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: p}
	if n == 0 {
		return s, nil
	}
	pos := make([]int, n)
	for k, v := range res.Order {
		pos[v] = k
	}
	// futurePeak[k] = max over j >= k of the memory during step j of the
	// sequential execution of σ (suffix maximum of the step peaks).
	futurePeak := make([]int64, n+1)
	{
		var m int64
		absPeak := make([]int64, n)
		for k, v := range res.Order {
			absPeak[k] = m + t.N(v) + t.F(v)
			m += t.F(v) - t.InSize(v)
		}
		for k := n - 1; k >= 0; k-- {
			futurePeak[k] = absPeak[k]
			if futurePeak[k+1] > futurePeak[k] {
				futurePeak[k] = futurePeak[k+1]
			}
		}
	}
	if futurePeak[0] > cap {
		return nil, fmt.Errorf("sched: memory cap %d below sequential requirement %d", cap, futurePeak[0])
	}

	wdepth := t.WDepths()
	ready := &nodeHeap{less: func(a, b int) bool {
		if wdepth[a] != wdepth[b] {
			return wdepth[a] > wdepth[b]
		}
		return pos[a] < pos[b]
	}}
	remaining := make([]int, n)
	for v := 0; v < n; v++ {
		remaining[v] = t.NumChildren(v)
		if remaining[v] == 0 {
			ready.nodes = append(ready.nodes, v)
		}
	}
	heap.Init(ready)

	var (
		mem        int64 // resident memory right now
		extraUsed  int64 // budget charged by out-of-order tasks
		next       int   // first index of σ not yet started
		now        float64
		outOfOrder = make([]bool, n) // still charged against the budget
		started    = make([]bool, n)
	)
	running := &finishHeap{}
	freeProcs := make([]int, 0, p)
	for i := p - 1; i >= 0; i-- {
		freeProcs = append(freeProcs, i)
	}

	// admissionWindow bounds the per-event scan of the ready queue; σ[next]
	// is always retried, so the window only trades scheduling quality for
	// speed, never progress.
	const admissionWindow = 256

	start := func(v, proc int) {
		s.Start[v] = now
		s.Proc[v] = proc
		started[v] = true
		mem += t.N(v) + t.F(v)
		running.push3(now+t.W(v), v, proc)
		if pos[v] > next {
			outOfOrder[v] = true
			extraUsed += t.N(v) + t.F(v)
		}
		for next < n && started[res.Order[next]] {
			next++
		}
	}
	admissible := func(v int) bool {
		foot := t.N(v) + t.F(v)
		if mem+foot > cap {
			return false
		}
		if pos[v] == next {
			return true
		}
		return extraUsed+foot <= cap-futurePeak[next]
	}
	assign := func() {
		// Scan the ready queue in priority order, admitting greedily.
		skipped := make([]int, 0, 16)
		scanned := 0
		for len(freeProcs) > 0 && ready.Len() > 0 && scanned < admissionWindow {
			v := heap.Pop(ready).(int)
			scanned++
			if !admissible(v) {
				skipped = append(skipped, v)
				continue
			}
			proc := freeProcs[len(freeProcs)-1]
			freeProcs = freeProcs[:len(freeProcs)-1]
			start(v, proc)
		}
		for _, v := range skipped {
			heap.Push(ready, v)
		}
		// Fallback: σ[next] is admissible whenever the machine is idle;
		// retry it even if the window missed it.
		if len(freeProcs) > 0 && next < n {
			v := res.Order[next]
			if !started[v] && remaining[v] == 0 && admissible(v) {
				// Remove v from the ready heap before starting it.
				for i, u := range ready.nodes {
					if u == v {
						heap.Remove(ready, i)
						proc := freeProcs[len(freeProcs)-1]
						freeProcs = freeProcs[:len(freeProcs)-1]
						start(v, proc)
						break
					}
				}
			}
		}
	}

	complete := func(v, proc int) {
		mem -= t.N(v) + t.InSize(v)
		if outOfOrder[v] {
			extraUsed -= t.N(v) // f_v stays charged until the parent completes
		}
		for _, c := range t.Children(v) {
			if outOfOrder[c] {
				extraUsed -= t.F(c)
				outOfOrder[c] = false
			}
		}
		freeProcs = append(freeProcs, proc)
		if pa := t.Parent(v); pa != tree.None {
			remaining[pa]--
			if remaining[pa] == 0 {
				heap.Push(ready, pa)
			}
		}
	}

	assign()
	done := 0
	for running.Len() > 0 {
		at, v, proc := running.pop3()
		now = at
		complete(v, proc)
		done++
		for running.Len() > 0 && running.at[0] == now {
			_, v2, proc2 := running.pop3()
			complete(v2, proc2)
			done++
		}
		assign()
	}
	if done != n {
		return nil, fmt.Errorf("sched: booking scheduler finished %d of %d tasks", done, n)
	}
	return s, nil
}
