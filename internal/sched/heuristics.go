package sched

import "treesched/internal/tree"

// Heuristic is a named tree-scheduling algorithm.
type Heuristic struct {
	Name string
	Run  func(t *tree.Tree, p int) (*Schedule, error)
}

// Heuristics returns the four heuristics evaluated in the paper, in the
// order of Table 1.
func Heuristics() []Heuristic {
	return []Heuristic{
		{Name: "ParSubtrees", Run: ParSubtrees},
		{Name: "ParSubtreesOptim", Run: ParSubtreesOptim},
		{Name: "ParInnerFirst", Run: ParInnerFirst},
		{Name: "ParDeepestFirst", Run: ParDeepestFirst},
	}
}

// ByName returns the heuristic with the given name, or false if unknown.
// Recognized names additionally include the ablation variant
// "ParInnerFirstArbitrary" and the memory lower-bound pseudo-heuristic
// "Sequential" (the memory-optimal postorder on one processor).
func ByName(name string) (Heuristic, bool) {
	for _, h := range Heuristics() {
		if h.Name == name {
			return h, true
		}
	}
	switch name {
	case "ParInnerFirstArbitrary":
		return Heuristic{Name: name, Run: ParInnerFirstArbitrary}, true
	case "Sequential":
		return Heuristic{Name: name, Run: func(t *tree.Tree, _ int) (*Schedule, error) {
			return ParSubtrees(t, 1)
		}}, true
	}
	return Heuristic{}, false
}
