package sched

import (
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// Heuristic is a named tree-scheduling algorithm.
type Heuristic struct {
	Name string
	Run  func(t *tree.Tree, p int) (*Schedule, error)
}

// Heuristics returns the four heuristics evaluated in the paper, in the
// order of Table 1.
func Heuristics() []Heuristic {
	return []Heuristic{
		{Name: "ParSubtrees", Run: ParSubtrees},
		{Name: "ParSubtreesOptim", Run: ParSubtreesOptim},
		{Name: "ParInnerFirst", Run: ParInnerFirst},
		{Name: "ParDeepestFirst", Run: ParDeepestFirst},
	}
}

// ByName returns the heuristic with the given name, or false if unknown.
// Recognized names additionally include the ablation variant
// "ParInnerFirstArbitrary" and the sequential baselines "Sequential" (the
// memory-optimal postorder on one processor) and "OptimalSequential"
// (Liu's exact optimal traversal). The memory-capped schedulers need a cap
// parameter and are only reachable through Options.
func ByName(name string) (Heuristic, bool) {
	id, ok := ParseHeuristic(name)
	if !ok || id == IDMemCapped || id == IDMemCappedBooking {
		return Heuristic{}, false
	}
	return Options{}.heuristic(id, traversal.BestPostOrder), true
}
