package sched

import (
	"treesched/internal/machine"
	"treesched/internal/tree"
)

// Heuristic is a named tree-scheduling algorithm. Run schedules on the
// paper's uniform machine of p processors; RunOn (when set — every
// heuristic built by Options carries it) schedules on an explicit machine
// model, reducing to Run on a uniform model.
type Heuristic struct {
	ID    HeuristicID
	Name  string
	Run   func(t *tree.Tree, p int) (*Schedule, error)
	RunOn func(t *tree.Tree, m *machine.Model) (*Schedule, error)
}

// Heuristics returns the four heuristics evaluated in the paper, in the
// order of Table 1.
func Heuristics() []Heuristic {
	hs := make([]Heuristic, 0, 4)
	for _, id := range PaperHeuristics() {
		hs = append(hs, Options{}.heuristic(id, nil))
	}
	return hs
}

// ByName returns the heuristic with the given name, or false if unknown.
// Recognized names additionally include the ablation variant
// "ParInnerFirstArbitrary" and the sequential baselines "Sequential" (the
// memory-optimal postorder on one processor) and "OptimalSequential"
// (Liu's exact optimal traversal). The memory-capped schedulers need a cap
// parameter and are only reachable through Options; the pseudo-heuristics
// "Auto" and "Exact" are only reachable through internal/portfolio (and,
// for Exact, internal/exact).
func ByName(name string) (Heuristic, bool) {
	id, err := ParseHeuristic(name)
	if err != nil || id == IDMemCapped || id == IDMemCappedBooking || id == IDAuto || id == IDExact {
		return Heuristic{}, false
	}
	return Options{}.heuristic(id, nil), true
}
