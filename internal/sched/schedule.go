// Package sched implements the parallel, memory-aware tree-scheduling
// heuristics of Marchal, Sinnen and Vivien (INRIA RR-8082, IPDPS 2013):
// ParSubtrees, ParSubtreesOptim, ParInnerFirst and ParDeepestFirst, together
// with the event-driven list-scheduling engine they share (paper Alg. 3), a
// discrete-event peak-memory simulator, bi-objective lower bounds, and a
// memory-capped scheduler (the paper's stated future work).
package sched

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// timeEps absorbs floating-point rounding in schedule validation.
const timeEps = 1e-9

// Schedule assigns every node of a tree a start time and a processor.
// Tasks are non-preemptive: node i occupies Proc[i] during
// [Start[i], Start[i]+Dur(t, i)) — w_i on a uniform machine, w_i/s_Proc[i]
// under a heterogeneous machine model.
type Schedule struct {
	Start []float64 // start time per node
	Proc  []int     // processor per node, in [0, P)
	P     int       // number of processors
	// M is the heterogeneous machine model the schedule was built for, or
	// nil for the paper's uniform machine of P unit-speed processors.
	// When set, M.P() == P and every duration is speed-scaled.
	M *machine.Model

	// peak caches the exact simulated peak memory when the constructing
	// scheduler tracked it inline (peakKnown). The package's event-driven
	// schedulers process releases and allocations in exactly the
	// simulator's order, so their running resident maximum equals
	// PeakMemory's replay — except around zero-duration tasks, whose
	// atomic allocate-peak-release the simulator orders before same-time
	// starts; schedulers therefore only cache on trees without
	// zero-duration tasks (sequential schedules cache always: one task at
	// a time keeps both models identical). A cached schedule is also
	// overlap-free by construction — a processor re-enters the free pool
	// only at a completion, so Evaluate can skip the per-processor check.
	// Callers that mutate Start/Proc/P must clear the cache with
	// Invalidate.
	peak      int64
	peakKnown bool
}

// Invalidate drops the cached peak-memory/validity metadata; call it after
// mutating Start, Proc, P or M by hand.
func (s *Schedule) Invalidate() { s.peakKnown = false; s.peak = 0 }

// setPeak records an inline-tracked exact peak (schedulers only).
func (s *Schedule) setPeak(p int64) { s.peak = p; s.peakKnown = true }

// Dur returns the execution time of node i under the schedule's machine
// model: w_i on a uniform machine, w_i/s_Proc[i] otherwise.
func (s *Schedule) Dur(t *tree.Tree, i int) float64 {
	if s.M == nil {
		return t.W(i)
	}
	return s.M.ExecTime(t.W(i), s.Proc[i])
}

// Makespan returns the completion time of the last task.
func (s *Schedule) Makespan(t *tree.Tree) float64 {
	var m float64
	for i, st := range s.Start {
		if c := st + s.Dur(t, i); c > m {
			m = c
		}
	}
	return m
}

// Finish returns the completion time of node i.
func (s *Schedule) Finish(t *tree.Tree, i int) float64 { return s.Start[i] + s.Dur(t, i) }

// Validate checks that s is a feasible schedule of t: every node scheduled
// exactly once on a valid processor, no task starts before its children
// complete, and no two tasks overlap on the same processor.
func (s *Schedule) Validate(t *tree.Tree) error {
	n := t.Len()
	if len(s.Start) != n || len(s.Proc) != n {
		return fmt.Errorf("sched: schedule covers %d/%d starts, %d/%d procs", len(s.Start), n, len(s.Proc), n)
	}
	if s.P < 1 {
		return fmt.Errorf("sched: invalid processor count %d", s.P)
	}
	if s.M != nil && s.M.P() != s.P {
		return fmt.Errorf("sched: machine model has %d processors, schedule says %d", s.M.P(), s.P)
	}
	for i := 0; i < n; i++ {
		if s.Proc[i] < 0 || s.Proc[i] >= s.P {
			return fmt.Errorf("sched: node %d on invalid processor %d", i, s.Proc[i])
		}
		if s.Start[i] < -timeEps || math.IsNaN(s.Start[i]) || math.IsInf(s.Start[i], 0) {
			return fmt.Errorf("sched: node %d has invalid start time %v", i, s.Start[i])
		}
		if p := t.Parent(i); p != tree.None {
			if s.Start[p]+timeEps < s.Start[i]+s.Dur(t, i) {
				return fmt.Errorf("sched: node %d starts at %v before child %d completes at %v",
					p, s.Start[p], i, s.Start[i]+s.Dur(t, i))
			}
		}
	}
	// Per-processor non-overlap: one sort by (processor, start, duration)
	// over a pooled index buffer, then adjacency checks within each
	// processor's run. Zero-duration tasks sort before longer ones sharing
	// their start, so they do not trip the overlap check.
	vs := validatePool.Get().(*validateScratch)
	if cap(vs.idx) < n {
		vs.idx = make([]int32, n)
	}
	idx := vs.idx[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(a, b int32) int {
		if s.Proc[a] != s.Proc[b] {
			return s.Proc[a] - s.Proc[b]
		}
		if sa, sb := s.Start[a], s.Start[b]; sa != sb {
			if sa < sb {
				return -1
			}
			return 1
		}
		if wa, wb := s.Dur(t, int(a)), s.Dur(t, int(b)); wa != wb {
			if wa < wb {
				return -1
			}
			return 1
		}
		return int(a) - int(b)
	})
	var err error
	for k := 1; k < n; k++ {
		prev, cur := int(idx[k-1]), int(idx[k])
		if s.Proc[prev] != s.Proc[cur] {
			continue
		}
		if s.Start[cur]+timeEps < s.Start[prev]+s.Dur(t, prev) {
			err = fmt.Errorf("sched: tasks %d and %d overlap on processor %d", prev, cur, s.Proc[prev])
			break
		}
	}
	validatePool.Put(vs)
	return err
}

// validateScratch recycles Validate's sort buffer: validation runs on
// every service response and every portfolio candidate, so it must not
// allocate per call.
type validateScratch struct{ idx []int32 }

var validatePool = sync.Pool{New: func() any { return new(validateScratch) }}
