// Package sched implements the parallel, memory-aware tree-scheduling
// heuristics of Marchal, Sinnen and Vivien (INRIA RR-8082, IPDPS 2013):
// ParSubtrees, ParSubtreesOptim, ParInnerFirst and ParDeepestFirst, together
// with the event-driven list-scheduling engine they share (paper Alg. 3), a
// discrete-event peak-memory simulator, bi-objective lower bounds, and a
// memory-capped scheduler (the paper's stated future work).
package sched

import (
	"fmt"
	"math"
	"sort"

	"treesched/internal/tree"
)

// timeEps absorbs floating-point rounding in schedule validation.
const timeEps = 1e-9

// Schedule assigns every node of a tree a start time and a processor.
// Tasks are non-preemptive: node i occupies Proc[i] during
// [Start[i], Start[i]+w_i).
type Schedule struct {
	Start []float64 // start time per node
	Proc  []int     // processor per node, in [0, P)
	P     int       // number of processors
}

// Makespan returns the completion time of the last task.
func (s *Schedule) Makespan(t *tree.Tree) float64 {
	var m float64
	for i, st := range s.Start {
		if c := st + t.W(i); c > m {
			m = c
		}
	}
	return m
}

// Finish returns the completion time of node i.
func (s *Schedule) Finish(t *tree.Tree, i int) float64 { return s.Start[i] + t.W(i) }

// Validate checks that s is a feasible schedule of t: every node scheduled
// exactly once on a valid processor, no task starts before its children
// complete, and no two tasks overlap on the same processor.
func (s *Schedule) Validate(t *tree.Tree) error {
	n := t.Len()
	if len(s.Start) != n || len(s.Proc) != n {
		return fmt.Errorf("sched: schedule covers %d/%d starts, %d/%d procs", len(s.Start), n, len(s.Proc), n)
	}
	if s.P < 1 {
		return fmt.Errorf("sched: invalid processor count %d", s.P)
	}
	for i := 0; i < n; i++ {
		if s.Proc[i] < 0 || s.Proc[i] >= s.P {
			return fmt.Errorf("sched: node %d on invalid processor %d", i, s.Proc[i])
		}
		if s.Start[i] < -timeEps || math.IsNaN(s.Start[i]) || math.IsInf(s.Start[i], 0) {
			return fmt.Errorf("sched: node %d has invalid start time %v", i, s.Start[i])
		}
		if p := t.Parent(i); p != tree.None {
			if s.Start[p]+timeEps < s.Start[i]+t.W(i) {
				return fmt.Errorf("sched: node %d starts at %v before child %d completes at %v",
					p, s.Start[p], i, s.Start[i]+t.W(i))
			}
		}
	}
	// Per-processor non-overlap.
	byProc := make([][]int, s.P)
	for i := 0; i < n; i++ {
		byProc[s.Proc[i]] = append(byProc[s.Proc[i]], i)
	}
	for p, tasks := range byProc {
		// Order by start time; zero-duration tasks sort before longer ones
		// sharing their start, so they do not trip the overlap check.
		sort.Slice(tasks, func(a, b int) bool {
			sa, sb := s.Start[tasks[a]], s.Start[tasks[b]]
			if sa != sb {
				return sa < sb
			}
			return t.W(tasks[a]) < t.W(tasks[b])
		})
		for k := 1; k < len(tasks); k++ {
			prev, cur := tasks[k-1], tasks[k]
			if s.Start[cur]+timeEps < s.Start[prev]+t.W(prev) {
				return fmt.Errorf("sched: tasks %d and %d overlap on processor %d", prev, cur, p)
			}
		}
	}
	return nil
}
