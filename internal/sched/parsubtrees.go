package sched

import (
	"fmt"
	"sort"

	"treesched/internal/machine"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// Splitting is the outcome of SplitSubtrees (paper Alg. 2): a set of
// disjoint maximal subtrees to process in parallel and the remaining nodes
// to process sequentially.
type Splitting struct {
	// SubtreeRoots holds the roots of all subtrees produced by the selected
	// splitting, heaviest first.
	SubtreeRoots []int
	// SeqNodes holds the nodes popped from the queue (the subtree merge
	// points and their ancestors), in pop order.
	SeqNodes []int
	// PredictedMakespan is C_max(s) of the selected splitting under the
	// two-phase execution model of Algorithm 1.
	PredictedMakespan float64
}

// SplitSubtrees splits t into subtrees for ParSubtrees with p processors,
// returning the splitting whose predicted two-phase makespan is minimal
// over all splitting ranks (optimal for ParSubtrees by paper Lemma 1).
func SplitSubtrees(t *tree.Tree, p int) Splitting {
	if t.Len() == 0 {
		return Splitting{}
	}
	return splitSubtreesW(t, p, t.SubtreeW())
}

// splitSubtreesW is SplitSubtrees over a caller-provided subtree-weight
// array (cached in Precompute across the two ParSubtrees variants).
func splitSubtreesW(t *tree.Tree, p int, W []float64) Splitting {
	key := func(v int) splitKey { return splitKey{W: W[v], w: t.W(v), id: v} }

	// Pass 1: find the splitting rank with minimal cost.
	q := newSplitQueue(p)
	q.Push(key(t.Root()))
	var seqSum float64
	bestCost := W[t.Root()] // Cost(0): the whole tree on one processor
	bestRank := 0
	rank := 0
	for {
		head := q.Max()
		if head.W <= head.w { // largest subtree is a single node: stop
			break
		}
		q.PopMax()
		seqSum += t.W(head.id)
		for _, c := range t.Children(head.id) {
			q.Push(key(c))
		}
		rank++
		cost := q.Max().W + seqSum + (q.SumAll() - q.SumTop())
		if cost < bestCost {
			bestCost = cost
			bestRank = rank
		}
	}
	q.release()

	// Pass 2: replay to the selected rank.
	q = newSplitQueue(p)
	q.Push(key(t.Root()))
	sp := Splitting{PredictedMakespan: bestCost}
	for s := 0; s < bestRank; s++ {
		head := q.PopMax()
		sp.SeqNodes = append(sp.SeqNodes, head.id)
		for _, c := range t.Children(head.id) {
			q.Push(key(c))
		}
	}
	for _, k := range q.Drain() {
		sp.SubtreeRoots = append(sp.SubtreeRoots, k.id)
	}
	q.release()
	return sp
}

// SplitSubtreesNaive is the ablation baseline for SplitSubtrees: it stops
// splitting as soon as the queue holds at least p subtrees (or the heaviest
// is a single node), instead of scanning all splitting ranks for the
// cost-optimal one (Lemma 1). Comparing the two isolates the value of the
// optimal stopping rule.
func SplitSubtreesNaive(t *tree.Tree, p int) Splitting {
	n := t.Len()
	if n == 0 {
		return Splitting{}
	}
	W := t.SubtreeW()
	key := func(v int) splitKey { return splitKey{W: W[v], w: t.W(v), id: v} }
	q := newSplitQueue(p)
	q.Push(key(t.Root()))
	var sp Splitting
	var seqSum float64
	for q.Len() < p {
		head := q.Max()
		if head.W <= head.w {
			break
		}
		q.PopMax()
		sp.SeqNodes = append(sp.SeqNodes, head.id)
		seqSum += t.W(head.id)
		for _, c := range t.Children(head.id) {
			q.Push(key(c))
		}
	}
	sp.PredictedMakespan = q.Max().W + seqSum + (q.SumAll() - q.SumTop())
	for _, k := range q.Drain() {
		sp.SubtreeRoots = append(sp.SubtreeRoots, k.id)
	}
	q.release()
	return sp
}

// ParSubtrees is the memory-focused heuristic of paper §5.1 (Alg. 1): the
// tree is split into subtrees by SplitSubtrees; the p heaviest subtrees run
// concurrently, one per processor, each traversed with the memory-optimal
// sequential postorder; every remaining node (merge nodes and surplus
// subtrees) is then processed sequentially, again in memory-minimizing
// order. ParSubtrees is a (p+1)-approximation for peak memory and a
// p-approximation for makespan.
func ParSubtrees(t *tree.Tree, p int) (*Schedule, error) {
	return NewPrecompute(t).ParSubtrees(p)
}

// ParSubtrees is the precompute-sharing form of the package-level
// function: each subtree's memory-optimal postorder is emitted straight
// from the whole-tree postorder index (the child-ordering rule is
// subtree-local), skipping the historical per-subtree extraction and DP.
func (pc *Precompute) ParSubtrees(p int) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return parSubtrees(pc, m, false)
}

// ParSubtreesOn is ParSubtrees on an explicit machine model: subtrees are
// placed by speed-aware LPT (heaviest subtree onto the processor that
// finishes it earliest) and the sequential phase runs on the fastest
// processor. On a uniform model it is byte-identical to the
// processor-count form.
func (pc *Precompute) ParSubtreesOn(m *machine.Model) (*Schedule, error) {
	return parSubtrees(pc, m, false)
}

// ParSubtreesOptim is the makespan optimization of ParSubtrees (paper
// §5.1): all subtrees produced by the splitting — not only the p heaviest —
// are allocated to the processors in LPT fashion (heaviest first onto the
// least-loaded processor), and only the merge nodes run sequentially. It
// typically improves the makespan at the price of some extra memory.
func ParSubtreesOptim(t *tree.Tree, p int) (*Schedule, error) {
	return NewPrecompute(t).ParSubtreesOptim(p)
}

// ParSubtreesOptim is the precompute-sharing form of the package-level
// function.
func (pc *Precompute) ParSubtreesOptim(p int) (*Schedule, error) {
	m, err := uniformChecked(p)
	if err != nil {
		return nil, err
	}
	return parSubtrees(pc, m, true)
}

// ParSubtreesOptimOn is ParSubtreesOptim on an explicit machine model
// (see ParSubtreesOn).
func (pc *Precompute) ParSubtreesOptimOn(m *machine.Model) (*Schedule, error) {
	return parSubtrees(pc, m, true)
}

func parSubtrees(pc *Precompute, m *machine.Model, optim bool) (*Schedule, error) {
	p := m.P()
	t := pc.t
	n := t.Len()
	s := &Schedule{Start: make([]float64, n), Proc: make([]int, n), P: p, M: hetModel(m)}
	if n == 0 {
		return s, nil
	}
	// The splitting targets p subtrees by total work; speeds enter at
	// placement time, not in the decomposition.
	sp := splitSubtreesW(t, p, pc.subtreeW())
	W := pc.subtreeW()

	// perProc records each processor's tasks in execution (time) order, so
	// the peak can be computed afterwards by a sort-free P-way time sweep.
	perProc := make([][]int32, p)

	// Phase 1: process subtrees in parallel. Plain ParSubtrees runs only
	// the p heaviest subtrees concurrently; the surplus joins the
	// sequential phase. ParSubtreesOptim LPT-packs all of them.
	inParallel := make([]bool, n)
	parallelRoots := sp.SubtreeRoots
	if !optim && len(parallelRoots) > p {
		parallelRoots = parallelRoots[:p]
	}
	st := machine.NewState(m)
	var orderBuf []int
	// LPT allocation: roots are already ordered heaviest-first; place each
	// where it finishes earliest (on a uniform machine: the least-loaded
	// processor). For plain ParSubtrees there are at most p roots, so each
	// lands on its own processor.
	for _, r := range parallelRoots {
		proc := st.PickEarliest(W[r])
		orderBuf = pc.ix.AppendSubtreeOrder(t, r, orderBuf[:0])
		at := st.BusyUntil(proc)
		for _, v := range orderBuf {
			s.Start[v] = at
			s.Proc[v] = proc
			at += m.ExecTime(t.W(v), proc)
			inParallel[v] = true
			perProc[proc] = append(perProc[proc], int32(v))
		}
		st.Occupy(proc, at)
	}
	phase1End := st.MaxBusy()

	// Phase 2: remaining nodes sequentially on the fastest processor
	// (processor 0 on a uniform machine), in the memory-minimizing order
	// of the quotient tree (completed subtrees appear as zero-work stub
	// leaves whose output files are resident).
	remaining := make([]int, 0, len(sp.SeqNodes)+8)
	for v := 0; v < n; v++ {
		if !inParallel[v] {
			remaining = append(remaining, v)
		}
	}
	if len(remaining) > 0 {
		seqProc := m.Fastest()
		order := quotientOrder(t, remaining, inParallel)
		at := phase1End
		for _, v := range order {
			s.Start[v] = at
			s.Proc[v] = seqProc
			at += m.ExecTime(t.W(v), seqProc)
			perProc[seqProc] = append(perProc[seqProc], int32(v))
		}
	}
	st.Recycle()
	setPeakFromStreams(t, s, perProc)
	return s, nil
}

// setPeakFromStreams computes the schedule's exact simulated peak by a
// P-way merge over per-processor task streams already in time order —
// each processor's tasks run back to back, so its start/end events arrive
// pre-sorted and no global event sort is needed. Ends are processed
// before starts at equal instants (the simulator's tie rule); order
// within a kind cannot change the peak. Zero-duration tasks would need
// the simulator's pulse ordering, so their presence skips the cache
// (matching the other schedulers).
func setPeakFromStreams(t *tree.Tree, s *Schedule, perProc [][]int32) {
	for v := 0; v < t.Len(); v++ {
		if t.W(v) == 0 {
			return
		}
	}
	p := len(perProc)
	// Cursor state per processor: index of the current task and whether
	// its start has been emitted (its end is then pending).
	idx := make([]int, p)
	endPending := make([]bool, p)
	var mem, peak int64
	for {
		// Pick the next event: smallest time, ends before starts.
		best := -1
		var bestAt float64
		bestEnd := false
		for q := 0; q < p; q++ {
			if idx[q] >= len(perProc[q]) {
				continue
			}
			v := int(perProc[q][idx[q]])
			at := s.Start[v]
			isEnd := endPending[q]
			if isEnd {
				at += s.Dur(t, v)
			}
			if best < 0 || at < bestAt || (at == bestAt && isEnd && !bestEnd) {
				best, bestAt, bestEnd = q, at, isEnd
			}
		}
		if best < 0 {
			break
		}
		v := int(perProc[best][idx[best]])
		if bestEnd {
			mem -= t.N(v) + t.InSize(v)
			idx[best]++
			endPending[best] = false
		} else {
			mem += t.N(v) + t.F(v)
			if mem > peak {
				peak = mem
			}
			endPending[best] = true
		}
	}
	s.setPeak(peak)
}

// quotientOrder returns a memory-minimizing sequential order of the
// remaining nodes: the best postorder of the quotient tree in which every
// child already processed in phase 1 is replaced by a zero-work stub leaf
// carrying its output file.
func quotientOrder(t *tree.Tree, remaining []int, done []bool) []int {
	nq := len(remaining)
	toNew := make([]int, t.Len())
	for i, v := range remaining {
		toNew[v] = i
	}
	var b tree.Builder
	for _, v := range remaining {
		pa := t.Parent(v)
		np := tree.None
		if pa != tree.None {
			// The parent of a remaining node is always remaining (removed
			// subtrees are maximal).
			np = toNew[pa]
		}
		b.Add(np, t.W(v), t.N(v), t.F(v))
	}
	// Stub ids land past nq in append order, so id >= nq identifies them
	// at emission time.
	for _, v := range remaining {
		for _, c := range t.Children(v) {
			if done[c] {
				b.Add(toNew[v], 0, 0, t.F(c))
			}
		}
	}
	q, err := b.Build()
	if err != nil {
		// The quotient construction above cannot fail for a valid splitting.
		panic(fmt.Sprintf("sched: quotient tree: %v", err))
	}
	res := traversal.BestPostOrder(q)
	order := make([]int, 0, nq)
	for _, v := range res.Order {
		if v < nq { // stubs (ids >= nq) are not real work
			order = append(order, remaining[v])
		}
	}
	return order
}

// SubtreeRootsByWeight returns the subtree roots of sp ordered by
// non-increasing subtree weight; exported for inspection and tests.
func SubtreeRootsByWeight(t *tree.Tree, sp Splitting) []int {
	W := t.SubtreeW()
	out := append([]int(nil), sp.SubtreeRoots...)
	sort.SliceStable(out, func(a, b int) bool { return W[out[a]] > W[out[b]] })
	return out
}
