//go:build race

package sched

// raceEnabled reports that the race detector is active; the allocation
// tests skip, since the race runtime instruments sync.Pool and sorts with
// extra allocations that say nothing about the production paths.
const raceEnabled = true
