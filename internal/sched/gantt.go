package sched

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"treesched/internal/tree"
)

// WriteGantt renders an ASCII Gantt chart of the schedule: one row per
// processor, time flowing right, each task drawn as [id---] scaled to
// width columns. Tasks too narrow to label are drawn as '#'. Intended for
// debugging and the examples; charts of large schedules are summarized by
// sampling (at most width columns).
func WriteGantt(w io.Writer, t *tree.Tree, s *Schedule, width int) error {
	if width < 10 {
		width = 10
	}
	ms := s.Makespan(t)
	if ms <= 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	byProc := make([][]int, s.P)
	for v := 0; v < t.Len(); v++ {
		byProc[s.Proc[v]] = append(byProc[s.Proc[v]], v)
	}
	scale := float64(width) / ms
	for p := 0; p < s.P; p++ {
		tasks := byProc[p]
		sort.Slice(tasks, func(a, b int) bool { return s.Start[tasks[a]] < s.Start[tasks[b]] })
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, v := range tasks {
			lo := int(s.Start[v] * scale)
			hi := int((s.Start[v] + s.Dur(t, v)) * scale)
			if hi >= width {
				hi = width - 1
			}
			if hi < lo {
				hi = lo
			}
			label := fmt.Sprintf("%d", v)
			span := hi - lo + 1
			for i := lo; i <= hi && i < width; i++ {
				row[i] = '#'
			}
			if span > len(label)+1 {
				copy(row[lo+1:], label)
				row[lo] = '['
				row[hi] = ']'
			}
		}
		if _, err := fmt.Fprintf(w, "P%-3d |%s|\n", p, string(row)); err != nil {
			return err
		}
	}
	ticks := fmt.Sprintf("     0%s%.4g", strings.Repeat(" ", max(1, width-10)), ms)
	_, err := fmt.Fprintln(w, ticks)
	return err
}

// GanttString is WriteGantt into a string, for tests and logs.
func GanttString(t *tree.Tree, s *Schedule, width int) string {
	var sb strings.Builder
	if err := WriteGantt(&sb, t, s, width); err != nil {
		return "(gantt error: " + err.Error() + ")"
	}
	return sb.String()
}

// Utilization returns the fraction of processor time spent busy between 0
// and the makespan (speed-scaled durations under a heterogeneous model).
func Utilization(t *tree.Tree, s *Schedule) float64 {
	ms := s.Makespan(t)
	if ms <= 0 || s.P == 0 {
		return 0
	}
	busy := t.TotalW()
	if s.M != nil {
		busy = 0
		for i := 0; i < t.Len(); i++ {
			busy += s.Dur(t, i)
		}
	}
	return busy / (ms * float64(s.P))
}
