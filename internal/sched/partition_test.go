package sched

import (
	"math"
	"math/rand"
	"testing"

	"treesched/internal/dataset"
	"treesched/internal/machine"
	"treesched/internal/tree"
)

// requireSameSchedule asserts byte-identity: IEEE bits of every start
// time, every processor assignment, P, and the replayed peak.
func requireSameSchedule(t *testing.T, tr *tree.Tree, want, got *Schedule, label string) {
	t.Helper()
	if want.P != got.P {
		t.Fatalf("%s: P = %d, want %d", label, got.P, want.P)
	}
	for v := range want.Start {
		if math.Float64bits(want.Start[v]) != math.Float64bits(got.Start[v]) {
			t.Fatalf("%s: node %d starts at %v, want %v (bit-exact)", label, v, got.Start[v], want.Start[v])
		}
		if want.Proc[v] != got.Proc[v] {
			t.Fatalf("%s: node %d on proc %d, want %d", label, v, got.Proc[v], want.Proc[v])
		}
	}
	if wp, gp := PeakMemory(tr, want), PeakMemory(tr, got); wp != gp {
		t.Fatalf("%s: peak %d, want %d", label, gp, wp)
	}
}

func quickInstances(t *testing.T) []dataset.Instance {
	t.Helper()
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

// TestPartitionedParts1IsSequential locks the satellite contract that the
// sequential path is untouched: partition counts 0 and 1 must replay the
// exact ParInnerFirst schedule on every golden tree.
func TestPartitionedParts1IsSequential(t *testing.T) {
	for _, inst := range quickInstances(t) {
		pc := NewPrecompute(inst.Tree)
		for _, p := range []int{2, 8} {
			want, err := pc.ParInnerFirst(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, parts := range []int{0, 1} {
				got, err := pc.PartitionedInnerFirst(p, parts)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSchedule(t, inst.Tree, want, got, inst.Name)
			}
		}
	}
}

// TestPartitionedDeterministic runs every golden tree at partition counts
// {1, 2, 4, 8}: the worker pool's interleaving must not reach the result,
// so a serial replay (one worker) and two independent pooled runs are all
// byte-identical. Run under -race this also proves the package
// decomposition is data-disjoint.
func TestPartitionedDeterministic(t *testing.T) {
	for _, inst := range quickInstances(t) {
		pc := NewPrecompute(inst.Tree)
		for _, p := range []int{2, 8} {
			m := machine.Uniform(p)
			for _, parts := range []int{1, 2, 4, 8} {
				serial, err := partitionedInnerFirstOn(pc, m, parts, 1)
				if err != nil {
					t.Fatal(err)
				}
				if err := serial.Validate(inst.Tree); err != nil {
					t.Fatalf("%s p=%d parts=%d: %v", inst.Name, p, parts, err)
				}
				for run := 0; run < 2; run++ {
					pooled, err := partitionedInnerFirstOn(pc, m, parts, 4)
					if err != nil {
						t.Fatal(err)
					}
					requireSameSchedule(t, inst.Tree, serial, pooled, inst.Name)
				}
			}
		}
	}
}

// TestPartitionedInvariants is the stitching property test: for random
// trees across families, machine shapes and partition counts, the stitched
// schedule must pass full validation (children-before-parents, no
// processor overlap) and its inline-tracked peak must equal the
// simulator's replay.
func TestPartitionedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	gens := []func(n int) *tree.Tree{
		func(n int) *tree.Tree { return tree.RandomAttachment(rng, n, ws) },
		func(n int) *tree.Tree { return tree.RandomBinary(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Fork(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Chain(rng, n, ws) },
	}
	het, err := machine.New([]float64{2, 2, 1, 1, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	models := []*machine.Model{machine.Uniform(4), machine.Uniform(8), het}
	for gi, gen := range gens {
		for _, n := range []int{1, 2, 17, 400} {
			tr := gen(n)
			pc := NewPrecompute(tr)
			for _, m := range models {
				for _, parts := range []int{2, 4, 8, 100} {
					s, err := pc.PartitionedInnerFirstOn(m, parts)
					if err != nil {
						t.Fatalf("gen %d n=%d m=%s parts=%d: %v", gi, n, m.Spec(), parts, err)
					}
					if err := s.Validate(tr); err != nil {
						t.Fatalf("gen %d n=%d m=%s parts=%d: invalid: %v", gi, n, m.Spec(), parts, err)
					}
					if s.peakKnown {
						clone := &Schedule{Start: s.Start, Proc: s.Proc, P: s.P, M: s.M}
						if replay := PeakMemory(tr, clone); replay != s.peak {
							t.Fatalf("gen %d n=%d m=%s parts=%d: inline peak %d != replay %d",
								gi, n, m.Spec(), parts, s.peak, replay)
						}
					}
				}
			}
		}
	}
}

// TestPartitionedPulseTreeSkipsPeakCache mirrors the other schedulers'
// contract around zero-duration tasks: the schedule is still valid, but
// the peak cache stays cold (the simulator's pulse ordering decides).
func TestPartitionedPulseTreeSkipsPeakCache(t *testing.T) {
	var b tree.Builder
	b.Add(tree.None, 0, 1, 0) // zero-work root
	b.Add(0, 3, 1, 2)
	b.Add(0, 2, 1, 2)
	b.Add(1, 1, 1, 1)
	b.Add(2, 1, 1, 1)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := PartitionedInnerFirst(tr, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(tr); err != nil {
		t.Fatal(err)
	}
	if s.peakKnown {
		t.Fatal("pulse tree must not cache an inline peak")
	}
}

// TestPartitionedOptionsDispatch checks the Options plumbing: a selection
// with Partitions > 1 routes IDParInnerFirst through the partitioned
// scheduler and leaves every other heuristic alone.
func TestPartitionedOptionsDispatch(t *testing.T) {
	tr := allocTree(3, 500)
	pc := NewPrecompute(tr)
	opts := Options{Processors: 8, Partitions: 4,
		Heuristics: []HeuristicID{IDParInnerFirst, IDParSubtrees}}
	hs, _, err := opts.SelectPre(pc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hs[0].Run(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pc.PartitionedInnerFirst(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSchedule(t, tr, want, got, "options dispatch")

	sub, err := hs[1].Run(tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantSub, err := pc.ParSubtrees(8)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSchedule(t, tr, wantSub, sub, "non-ParInnerFirst unaffected")

	if err := (Options{Processors: 2, Partitions: -1}).Validate(); err == nil {
		t.Fatal("negative partitions must not validate")
	}
}
