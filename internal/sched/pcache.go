package sched

import (
	"container/list"
	"fmt"
	"sync"
)

// pcacheHeavyFraction splits admissions into two classes: entries no
// larger than budget/pcacheHeavyFraction are admitted on first sight,
// while heavier entries must have been offered once before (tracked by the
// doorkeeper generations below). A single giant tree then cannot flush a
// working set of small hot trees on one cold request, but a genuinely
// repeated giant tree is admitted on its second offer.
const pcacheHeavyFraction = 8

// pcacheDoorkeeperCap bounds each doorkeeper generation; when the young
// generation fills up it becomes the old one and the old is dropped, so
// the ghost-key memory is bounded and ages out in cache-offer time rather
// than wall-clock time.
const pcacheDoorkeeperCap = 4096

// PrecomputeCacheStats is a point-in-time snapshot of a PrecomputeCache.
type PrecomputeCacheStats struct {
	Hits      int64 // Get calls that returned an entry
	Misses    int64 // Get calls that found nothing
	Evictions int64 // entries dropped for space (Purge included)
	Bytes     int64 // resident bytes, by Precompute.SizeBytes
	Entries   int64 // resident entry count
}

// PrecomputeCache is a size-aware, admission-weighted LRU over
// *Precompute, keyed by the caller (the service keys on the tree's
// CanonicalHash plus machine spec). It exists so repeat trees skip Liu's
// best-postorder DP and the priority-rank builds entirely: a hit hands
// back the shared per-tree context, which is safe for concurrent use
// after construction, so any number of in-flight requests — different
// heuristic sets, objectives, processor counts — can schedule off one
// cached entry at once.
//
// The budget is in bytes (Precompute.SizeBytes per entry, retained tree
// included), not entries: one 10⁶-node tree costs as much as thousands of
// small ones, and an entry-count LRU would let it evict them all.
// Admission is weighted by that size — see pcacheHeavyFraction. Entries
// larger than the whole budget are never admitted.
//
// All methods are safe for concurrent use. Get performs no allocation, so
// the request hot path stays on the zero-allocation budget of the
// scheduling core.
type PrecomputeCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	// Doorkeeper generations for heavy entries: keys offered but not (yet)
	// admitted. [0] is the young generation, [1] the old.
	seen [2]map[string]struct{}

	hits, misses, evictions int64
}

type pcacheEntry struct {
	key  string
	pc   *Precompute
	size int64
}

// NewPrecomputeCache returns a cache bounded to budgetBytes (must be > 0).
func NewPrecomputeCache(budgetBytes int64) *PrecomputeCache {
	if budgetBytes <= 0 {
		panic(fmt.Sprintf("sched: precompute cache budget must be > 0 bytes, got %d", budgetBytes))
	}
	return &PrecomputeCache{
		budget: budgetBytes,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
		seen:   [2]map[string]struct{}{{}, {}},
	}
}

// Get returns the cached context for key, refreshing its recency.
func (c *PrecomputeCache) Get(key string) (*Precompute, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*pcacheEntry).pc, true
}

// Add offers pc for key and reports whether it was admitted. An existing
// entry is refreshed, not replaced (a Precompute for one tree is as good
// as any other for the same tree). Rejected heavy offers are remembered
// by the doorkeeper so a repeat offer is admitted.
func (c *PrecomputeCache) Add(key string, pc *Precompute) bool {
	size := pc.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return true
	}
	if size > c.budget {
		return false
	}
	if size > c.budget/pcacheHeavyFraction && !c.seenBefore(key) {
		c.remember(key)
		return false
	}
	c.items[key] = c.ll.PushFront(&pcacheEntry{key: key, pc: pc, size: size})
	c.bytes += size
	for c.bytes > c.budget {
		c.evictOldest()
	}
	return true
}

// Purge drops every entry (the eviction-storm chaos site) and returns the
// number dropped. The doorkeeper survives: a storm should not also force
// heavy entries back through two offers.
func (c *PrecomputeCache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.items)
	c.evictions += int64(n)
	c.ll.Init()
	clear(c.items)
	c.bytes = 0
	return n
}

// Stats returns a consistent snapshot of the counters and residency.
func (c *PrecomputeCache) Stats() PrecomputeCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PrecomputeCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   int64(len(c.items)),
	}
}

func (c *PrecomputeCache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*pcacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.size
	c.evictions++
}

func (c *PrecomputeCache) seenBefore(key string) bool {
	if _, ok := c.seen[0][key]; ok {
		return true
	}
	_, ok := c.seen[1][key]
	return ok
}

func (c *PrecomputeCache) remember(key string) {
	if len(c.seen[0]) >= pcacheDoorkeeperCap {
		c.seen[1] = c.seen[0]
		c.seen[0] = make(map[string]struct{})
	}
	c.seen[0][key] = struct{}{}
}
