package sched

import (
	"fmt"
	"testing"
)

func pcacheTree(seed int64, n int) *Precompute {
	return NewPrecompute(allocTree(seed, n))
}

func TestPrecomputeSizeBytes(t *testing.T) {
	small, big := pcacheTree(1, 10), pcacheTree(2, 1000)
	if s, b := small.SizeBytes(), big.SizeBytes(); s >= b {
		t.Fatalf("SizeBytes not monotone in n: %d nodes -> %d, %d nodes -> %d",
			small.t.Len(), s, big.t.Len(), b)
	}
	want := precomputeFixedBytes + 10*precomputePerNodeBytes
	if got := small.SizeBytes(); got != int64(want) {
		t.Fatalf("SizeBytes(10 nodes) = %d, want %d", got, want)
	}
}

func TestPrecomputeCacheHitMissEvict(t *testing.T) {
	pc := pcacheTree(1, 100)
	// Budget for exactly two 100-node entries; all are "small" (<= 1/8 of
	// budget is false here, so double it to keep first-touch admission).
	budget := 16 * pc.SizeBytes()
	c := NewPrecomputeCache(budget)

	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	if !c.Add("a", pc) {
		t.Fatal("small entry not admitted on first offer")
	}
	got, ok := c.Get("a")
	if !ok || got != pc {
		t.Fatal("admitted entry not returned")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != pc.SizeBytes() {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry, %d bytes", st, pc.SizeBytes())
	}

	// Fill past budget: the least recently used entries must fall off, in
	// recency order.
	for i := 0; i < 20; i++ {
		c.Add(fmt.Sprint("k", i), pcacheTree(int64(i), 100))
	}
	st = c.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes over budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("over-budget fill evicted nothing")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry survived an over-budget fill")
	}
	if _, ok := c.Get("k19"); !ok {
		t.Fatal("most recent entry was evicted")
	}
}

func TestPrecomputeCacheHeavyAdmission(t *testing.T) {
	heavy := pcacheTree(7, 4000)
	light := pcacheTree(8, 10)
	// heavy > budget/8, light far below it.
	budget := 4 * heavy.SizeBytes()
	c := NewPrecomputeCache(budget)

	if c.Add("heavy", heavy) {
		t.Fatal("heavy entry admitted on first offer")
	}
	if _, ok := c.Get("heavy"); ok {
		t.Fatal("rejected entry resident")
	}
	if !c.Add("heavy", heavy) {
		t.Fatal("heavy entry not admitted on second offer (doorkeeper)")
	}
	if _, ok := c.Get("heavy"); !ok {
		t.Fatal("admitted heavy entry missing")
	}
	if !c.Add("light", light) {
		t.Fatal("light entry not admitted on first offer")
	}

	// An entry above the whole budget is never admitted.
	giant := pcacheTree(9, 100000)
	tiny := NewPrecomputeCache(giant.SizeBytes() / 2)
	for i := 0; i < 3; i++ {
		if tiny.Add("giant", giant) {
			t.Fatal("entry larger than the budget admitted")
		}
	}
}

func TestPrecomputeCachePurge(t *testing.T) {
	c := NewPrecomputeCache(1 << 30)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprint("k", i), pcacheTree(int64(i), 50))
	}
	if n := c.Purge(); n != 5 {
		t.Fatalf("Purge dropped %d entries, want 5", n)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-purge stats = %+v, want empty", st)
	}
	if st.Evictions != 5 {
		t.Fatalf("purge counted %d evictions, want 5", st.Evictions)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("purged entry resident")
	}
}

func TestPrecomputeCacheConcurrent(t *testing.T) {
	c := NewPrecomputeCache(1 << 24)
	pcs := make([]*Precompute, 8)
	for i := range pcs {
		pcs[i] = pcacheTree(int64(i), 200)
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := fmt.Sprint("k", (g+i)%8)
				if pc, ok := c.Get(k); ok {
					_ = pc.MSeq()
				} else {
					c.Add(k, pcs[(g+i)%8])
				}
				if i%50 == 49 {
					c.Purge()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	st := c.Stats()
	if st.Hits+st.Misses != 4*200 {
		t.Fatalf("hits %d + misses %d != 800 gets", st.Hits, st.Misses)
	}
}
