package sched

import (
	"testing"

	"treesched/internal/traversal"
)

// Core micro-benchmarks with allocation reporting; `go test -bench Core
// -benchmem ./internal/sched` is the in-repo view of what `treebench
// -suite core` gates in CI.

func benchTreeAndPC(b *testing.B) (*Precompute, int) {
	b.Helper()
	tr := allocTree(42, 10_000)
	pc := NewPrecompute(tr)
	b.ReportAllocs()
	b.ResetTimer()
	return pc, 8
}

func BenchmarkCoreParInnerFirst(b *testing.B) {
	pc, p := benchTreeAndPC(b)
	for i := 0; i < b.N; i++ {
		if _, err := pc.ParInnerFirst(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreParDeepestFirst(b *testing.B) {
	pc, p := benchTreeAndPC(b)
	for i := 0; i < b.N; i++ {
		if _, err := pc.ParDeepestFirst(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreParSubtrees(b *testing.B) {
	pc, p := benchTreeAndPC(b)
	for i := 0; i < b.N; i++ {
		if _, err := pc.ParSubtrees(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreMemCappedBooking(b *testing.B) {
	pc, p := benchTreeAndPC(b)
	cap := 2 * pc.MSeq()
	for i := 0; i < b.N; i++ {
		if _, err := pc.MemCappedBooking(p, cap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreBestPostOrder(b *testing.B) {
	tr := allocTree(42, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.BestPostOrder(tr)
	}
}

func BenchmarkCoreOptimalTraversal(b *testing.B) {
	tr := allocTree(42, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		traversal.Optimal(tr)
	}
}

func BenchmarkCorePrecompute(b *testing.B) {
	tr := allocTree(42, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewPrecompute(tr)
	}
}

func BenchmarkCorePeakMemoryReplay(b *testing.B) {
	pc, p := benchTreeAndPC(b)
	s, err := pc.ParInnerFirst(p)
	if err != nil {
		b.Fatal(err)
	}
	s.Invalidate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PeakMemory(pc.Tree(), s)
	}
}

func BenchmarkCoreEvaluate(b *testing.B) {
	pc, p := benchTreeAndPC(b)
	s, err := pc.ParInnerFirst(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Evaluate(pc.Tree(), s); err != nil {
			b.Fatal(err)
		}
	}
}
