package sched

import (
	"math/rand"
	"testing"

	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// allocTree builds a moderately sized random tree for the steady-state
// allocation tests (package-internal so the tests can reach the cached
// fields and the rank-keyed entry points directly).
func allocTree(seed int64, n int) *tree.Tree {
	rng := rand.New(rand.NewSource(seed))
	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	return tree.RandomAttachment(rng, n, ws)
}

// TestAllocsListSchedule pins the pooling contract of the list scheduler:
// on a warm pool and a warm Precompute, a schedule costs only its result
// (the Schedule struct and its two slices) — at most 5 allocations.
func TestAllocsListSchedule(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	tr := allocTree(7, 2000)
	pc := NewPrecompute(tr)
	if _, err := pc.ParInnerFirst(4); err != nil { // warm pool + ranks
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := pc.ParInnerFirst(4); err != nil {
			t.Fatal(err)
		}
	})
	if got > 5 {
		t.Errorf("ListSchedule allocates %.1f/op on a warm pool, want <= 5", got)
	}
}

// TestAllocsBestPostOrder: the traversal allocates only the returned
// order on a warm pool.
func TestAllocsBestPostOrder(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	tr := allocTree(8, 2000)
	traversal.BestPostOrder(tr) // warm pool
	got := testing.AllocsPerRun(20, func() { traversal.BestPostOrder(tr) })
	if got > 2 {
		t.Errorf("BestPostOrder allocates %.1f/op on a warm pool, want <= 2", got)
	}
}

// TestAllocsPeakMemory: the event-replay simulator is allocation-free on
// a warm pool (the fast path via the cached peak trivially is; Invalidate
// forces the replay).
func TestAllocsPeakMemory(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	tr := allocTree(9, 2000)
	pc := NewPrecompute(tr)
	s, err := pc.ParDeepestFirst(4)
	if err != nil {
		t.Fatal(err)
	}
	s.Invalidate()
	PeakMemory(tr, s) // warm pool
	got := testing.AllocsPerRun(20, func() { PeakMemory(tr, s) })
	if got > 1 {
		t.Errorf("PeakMemory allocates %.1f/op on a warm pool, want <= 1", got)
	}
}

// TestAllocsEvaluate: the combined validate+measure pass is
// allocation-free for schedules with an inline-tracked peak.
func TestAllocsEvaluate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	tr := allocTree(10, 2000)
	pc := NewPrecompute(tr)
	s, err := pc.ParInnerFirst(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Evaluate(tr, s); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, _, err := Evaluate(tr, s); err != nil {
			t.Fatal(err)
		}
	})
	if got > 1 {
		t.Errorf("Evaluate allocates %.1f/op on a cached schedule, want <= 1", got)
	}
}

// TestCoincidentPulsesReplayCausally pins the replay order of coincident
// zero-duration tasks: a child's pulse executes before its parent's, so
// the parent's release of the child's output cannot precede its
// production — the peak counts both files resident at the handoff. It
// also pins that SequentialSchedule declines to cache a peak on trees
// with zero-duration tasks (the σ order and the replay linearization of
// coincident pulses may differ).
func TestCoincidentPulsesReplayCausally(t *testing.T) {
	tr := tree.MustNew([]int{tree.None, 0}, []float64{0, 0}, []int64{0, 0}, []int64{1, 1})
	s, err := SequentialSchedule(tr, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.peakKnown {
		t.Error("SequentialSchedule cached a peak on a tree with zero-duration tasks")
	}
	if got := PeakMemory(tr, s); got != 2 {
		t.Errorf("replayed peak = %d, want 2 (child pulse before parent pulse)", got)
	}
	if _, peak, err := Evaluate(tr, s); err != nil || peak != 2 {
		t.Errorf("Evaluate peak = %d (err %v), want 2", peak, err)
	}
}

// TestInlinePeakMatchesSimulator cross-checks the schedulers' inline peak
// tracking against the event-replay simulator on random trees — including
// trees with zero-duration tasks, where the schedulers must decline to
// cache and the values still agree because the replay is authoritative.
func TestInlinePeakMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
		if trial%3 == 0 {
			ws.WMin = 0 // mix in zero-duration tasks
		}
		tr := tree.RandomAttachment(rng, 50+rng.Intn(200), ws)
		pc := NewPrecompute(tr)
		for _, run := range []func() (*Schedule, error){
			func() (*Schedule, error) { return pc.ParInnerFirst(3) },
			func() (*Schedule, error) { return pc.ParDeepestFirst(3) },
			func() (*Schedule, error) { return pc.ParSubtrees(3) },
			func() (*Schedule, error) { return pc.ParSubtreesOptim(3) },
			func() (*Schedule, error) { return pc.MemCapped(3, 3*pc.MSeq()) },
			func() (*Schedule, error) { return pc.MemCappedBooking(3, 3*pc.MSeq()) },
			func() (*Schedule, error) { return SequentialSchedule(pc.Tree(), pc.Order()) },
		} {
			s, err := run()
			if err != nil {
				t.Fatal(err)
			}
			cached, known := s.peak, s.peakKnown
			s.Invalidate()
			replay := PeakMemory(tr, s)
			if known && cached != replay {
				t.Fatalf("trial %d: inline peak %d != replayed peak %d", trial, cached, replay)
			}
		}
	}
}

// TestAllocsPrecomputeCacheHit pins the precompute-cache hot path: a warm
// hit must stay within 2 allocations (it performs none — the budget is
// headroom for runtime map internals), so repeat trees ride the request
// path without touching the allocator.
func TestAllocsPrecomputeCacheHit(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	pc := NewPrecompute(allocTree(11, 2000))
	c := NewPrecomputeCache(1 << 30)
	if !c.Add("k", pc) {
		t.Fatal("warm entry not admitted")
	}
	got := testing.AllocsPerRun(50, func() {
		if _, ok := c.Get("k"); !ok {
			t.Fatal("warm cache missed")
		}
	})
	if got > 2 {
		t.Errorf("precompute cache hit allocates %.1f/op, want <= 2", got)
	}
}

// TestAllocsPartitioned pins the partitioned scheduler's pooling: on a
// warm pool a run costs the result, the package bookkeeping and the crown
// stitch (whose quotient tree is rebuilt per call) — bounded well below
// anything per-node.
func TestAllocsPartitioned(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	pc := NewPrecompute(allocTree(7, 5000))
	for _, parts := range []int{4, 8} {
		if _, err := pc.PartitionedInnerFirst(8, parts); err != nil { // warm pools
			t.Fatal(err)
		}
		got := testing.AllocsPerRun(20, func() {
			if _, err := pc.PartitionedInnerFirst(8, parts); err != nil {
				t.Fatal(err)
			}
		})
		if got > 64 {
			t.Errorf("partitioned(parts=%d) allocates %.1f/op on a warm pool, want <= 64", parts, got)
		}
	}
}
