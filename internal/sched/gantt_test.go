package sched_test

import (
	"math/rand"
	"strings"
	"testing"

	"treesched/internal/sched"
	"treesched/internal/tree"
)

func TestGanttRendersAllProcessors(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	tr := randomTree(rng, 30)
	s, err := sched.ParDeepestFirst(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := sched.GanttString(tr, s, 80)
	for _, want := range []string{"P0", "P1", "P2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gantt missing %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "#") && !strings.Contains(out, "[") {
		t.Fatalf("gantt has no task marks:\n%s", out)
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	empty, _ := tree.New(nil, nil, nil, nil)
	s := &sched.Schedule{P: 2}
	if out := sched.GanttString(empty, s, 40); !strings.Contains(out, "empty") {
		t.Fatalf("empty gantt: %q", out)
	}
}

func TestGanttTinyWidthClamped(t *testing.T) {
	tr := tree.MustNew([]int{tree.None}, []float64{1}, []int64{0}, []int64{1})
	s := &sched.Schedule{Start: []float64{0}, Proc: []int{0}, P: 1}
	out := sched.GanttString(tr, s, 1) // clamps to 10 columns
	if !strings.Contains(out, "P0") {
		t.Fatalf("gantt: %q", out)
	}
}

func TestUtilization(t *testing.T) {
	// Two unit tasks on two processors in parallel, then the root:
	// total W = 3, makespan 2, P = 2 -> utilization 0.75.
	tr := tree.MustNew([]int{tree.None, 0, 0},
		[]float64{1, 1, 1}, []int64{0, 0, 0}, []int64{1, 1, 1})
	s := &sched.Schedule{Start: []float64{1, 0, 0}, Proc: []int{0, 0, 1}, P: 2}
	if got := sched.Utilization(tr, s); got != 0.75 {
		t.Fatalf("Utilization = %g, want 0.75", got)
	}
	empty, _ := tree.New(nil, nil, nil, nil)
	if got := sched.Utilization(empty, &sched.Schedule{P: 2}); got != 0 {
		t.Fatalf("empty utilization = %g", got)
	}
}

func TestUtilizationSequentialIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	tr := randomTree(rng, 40)
	s, err := sched.ParInnerFirst(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u := sched.Utilization(tr, s); u < 1-1e-9 || u > 1+1e-9 {
		t.Fatalf("sequential utilization = %g, want 1", u)
	}
}
