package sched_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treesched/internal/sched"
	"treesched/internal/tree"
)

// quick.Check property suite over the scheduling engine.

func quickTree(seed int64, size uint8) *tree.Tree {
	r := rand.New(rand.NewSource(seed))
	n := 1 + int(size)%80
	return tree.RandomAttachment(r, n, tree.WeightSpec{WMin: 0.5, WMax: 5, NMin: 0, NMax: 5, FMin: 0, FMax: 20})
}

// TestQuickSchedulesValid: every heuristic yields a valid schedule whose
// memory is at least the sequential optimum and whose makespan is at least
// the lower bound, for arbitrary trees and processor counts.
func TestQuickSchedulesValid(t *testing.T) {
	f := func(seed int64, size uint8, pRaw uint8) bool {
		tr := quickTree(seed, size)
		p := 1 + int(pRaw)%16
		memLB := sched.MemoryLowerBound(tr)
		msLB := sched.MakespanLowerBound(tr, p)
		for _, h := range sched.Heuristics() {
			s, err := h.Run(tr, p)
			if err != nil || s.Validate(tr) != nil {
				return false
			}
			if s.Makespan(tr) < msLB-1e-6 {
				return false
			}
			if sched.PeakMemory(tr, s) < memLB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(141))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMemCapRespected: both capped schedulers respect arbitrary
// feasible caps.
func TestQuickMemCapRespected(t *testing.T) {
	f := func(seed int64, size uint8, extra uint16) bool {
		tr := quickTree(seed, size)
		mseq := sched.MemoryLowerBound(tr)
		cap := mseq + int64(extra)
		for _, run := range []func(*tree.Tree, int, int64) (*sched.Schedule, error){
			sched.MemCapped, sched.MemCappedBooking,
		} {
			s, err := run(tr, 4, cap)
			if err != nil || s.Validate(tr) != nil {
				return false
			}
			if sched.PeakMemory(tr, s) > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(142))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSplittingCoversTree: SplitSubtrees partitions the node set for
// arbitrary trees and p.
func TestQuickSplittingCoversTree(t *testing.T) {
	f := func(seed int64, size uint8, pRaw uint8) bool {
		tr := quickTree(seed, size)
		p := 1 + int(pRaw)%16
		sp := sched.SplitSubtrees(tr, p)
		count := len(sp.SeqNodes)
		for _, r := range sp.SubtreeRoots {
			count += len(tr.SubtreeNodes(r))
		}
		return count == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(143))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMakespanMonotoneInMemBound: a tree's makespan lower bound never
// increases with more processors.
func TestQuickMakespanMonotoneInMemBound(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr := quickTree(seed, size)
		prev := sched.MakespanLowerBound(tr, 1)
		for p := 2; p <= 32; p *= 2 {
			cur := sched.MakespanLowerBound(tr, p)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(144))}); err != nil {
		t.Fatal(err)
	}
}
