// Package par provides the tiny parallel-for used by the experiment
// harness: scenario evaluations and tree constructions are independent, so
// they are spread over GOMAXPROCS workers pulling indices from an atomic
// counter. Results are index-addressed by the callers, keeping outputs
// deterministic regardless of scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs body(i) for every i in [0, n), using up to GOMAXPROCS
// concurrent workers. It returns when all calls have completed. body must
// be safe to call concurrently for distinct i.
func ForEach(n int, body func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}
