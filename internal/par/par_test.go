package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 10000} {
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForEachActuallyParallel(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	var concurrent, peak int32
	ForEach(64, func(i int) {
		c := atomic.AddInt32(&concurrent, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		// Busy loop long enough for workers to overlap.
		for j := 0; j < 100000; j++ {
			_ = j * j
		}
		atomic.AddInt32(&concurrent, -1)
	})
	if peak < 2 {
		t.Fatalf("never observed concurrent execution (peak=%d)", peak)
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	// n=1 must run inline without spawning.
	ran := false
	ForEach(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("body not run")
	}
}
