package portfolio

import (
	"encoding/json"
	"math"
	"slices"
	"strings"
	"testing"
)

func TestObjectiveWireRoundTrip(t *testing.T) {
	for _, o := range []Objective{
		MinMakespan(),
		MinMemory(),
		MakespanUnderMemCap(1.5),
		MemoryUnderDeadline(2),
		Weighted(0.25),
		Weighted(0),
		Weighted(1),
	} {
		back, err := ParseObjective(o.String())
		if err != nil {
			t.Fatalf("ParseObjective(%q): %v", o.String(), err)
		}
		if back != o {
			t.Errorf("round trip %q -> %+v, want %+v", o.String(), back, o)
		}
		// And through JSON, as the service carries it.
		b, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON Objective
		if err := json.Unmarshal(b, &viaJSON); err != nil {
			t.Fatalf("json round trip of %s: %v", o, err)
		}
		if viaJSON != o {
			t.Errorf("json round trip %s -> %+v", o, viaJSON)
		}
	}
}

func TestParseObjectiveRejections(t *testing.T) {
	for _, s := range []string{
		"", "nope", "min_makespan:1", "min_memory:0.5",
		"makespan_under_memcap", "makespan_under_memcap:", "makespan_under_memcap:x",
		"makespan_under_memcap:0", "makespan_under_memcap:-1", "makespan_under_memcap:NaN",
		"memory_under_deadline", "memory_under_deadline:0",
		"weighted", "weighted:-0.1", "weighted:1.1", "weighted:NaN",
	} {
		if o, err := ParseObjective(s); err == nil {
			t.Errorf("ParseObjective(%q) accepted as %+v", s, o)
		}
	}
	if err := (Objective{kind: Kind(99)}).Validate(); err == nil {
		t.Error("unknown kind validated")
	}
}

// TestParseObjectiveErrorEnumeratesSyntaxes pins the unknown-name error
// to the derived syntax list: every objective kind must appear, with its
// parameter hint, so trace authors see the whole menu.
func TestParseObjectiveErrorEnumeratesSyntaxes(t *testing.T) {
	_, err := ParseObjective("no_such_objective")
	if err == nil {
		t.Fatal("unknown objective accepted")
	}
	syntaxes := ObjectiveSyntaxes()
	if len(syntaxes) != len(kindNames) {
		t.Fatalf("ObjectiveSyntaxes() has %d entries, want %d", len(syntaxes), len(kindNames))
	}
	for _, s := range syntaxes {
		if !strings.Contains(err.Error(), s) {
			t.Errorf("error %q does not enumerate %q", err, s)
		}
	}
	for _, want := range []string{"makespan_under_memcap:F", "memory_under_deadline:D", "weighted:A", "min_makespan", "min_memory"} {
		if !slices.Contains(syntaxes, want) {
			t.Errorf("ObjectiveSyntaxes() = %v, missing %q", syntaxes, want)
		}
	}
}

func TestZeroObjectiveIsMinMakespan(t *testing.T) {
	var o Objective
	if o != MinMakespan() {
		t.Fatalf("zero objective is %+v", o)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
}

// fixture is the hand-computed candidate set used by the selection tests:
//
//	index ID  makespan memory
//	0     0   10       100     (fast, hungry)
//	1     1   10       100     (exact duplicate of 0, higher ID)
//	2     2   14        60
//	3     3   20        40     (slow, frugal)
//	4     4   12        90     (failed)
//
// Baselines: makespan LB 10, M_seq 40.
func fixture() ([]Candidate, float64, int64) {
	cands := []Candidate{
		{ID: 0, Makespan: 10, PeakMemory: 100},
		{ID: 1, Makespan: 10, PeakMemory: 100},
		{ID: 2, Makespan: 14, PeakMemory: 60},
		{ID: 3, Makespan: 20, PeakMemory: 40},
		{ID: 4, Err: errTest},
	}
	return cands, 10, 40
}

var errTest = errorString("synthetic failure")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestObjectiveSelectFixtures(t *testing.T) {
	cands, lb, mseq := fixture()
	cases := []struct {
		obj  Objective
		want int
	}{
		// Fastest is 10, shared by 0 and 1 with equal memory: ID 0 wins.
		{MinMakespan(), 0},
		// Most frugal is 40 at index 3.
		{MinMemory(), 3},
		// Cap 2×40 = 80: only 2 (60) and 3 (40) qualify; 2 is faster.
		{MakespanUnderMemCap(2), 2},
		// Cap 1×40 = 40: only 3 qualifies.
		{MakespanUnderMemCap(1), 3},
		// Cap 0.5×40 = 20: nobody qualifies; fall back to min memory (3).
		{MakespanUnderMemCap(0.5), 3},
		// Deadline 1.5×10 = 15: candidates 0, 1, 2 qualify; 2 is most frugal.
		{MemoryUnderDeadline(1.5), 2},
		// Deadline 1×10 = 10: 0 and 1 qualify with equal memory; ID 0 wins.
		{MemoryUnderDeadline(1), 0},
		// Deadline 0.5×10 = 5: nobody qualifies; fall back to min makespan (0).
		{MemoryUnderDeadline(0.5), 0},
		// Pure makespan weight reduces to MinMakespan.
		{Weighted(1), 0},
		// Pure memory weight reduces to MinMemory.
		{Weighted(0), 3},
		// alpha=0.5: scores are (1+2.5)/2, (1+2.5)/2, (1.4+1.5)/2, (2+1)/2
		// = 1.75, 1.75, 1.45, 1.5 -> index 2.
		{Weighted(0.5), 2},
		// alpha=0.2: 0.2·ms/10 + 0.8·mem/40 -> 2.2, 2.2, 1.48, 1.2 -> index 3.
		{Weighted(0.2), 3},
	}
	for _, tc := range cases {
		if got := tc.obj.Select(cands, lb, mseq); got != tc.want {
			t.Errorf("%s: selected %d, want %d", tc.obj, got, tc.want)
		}
	}
}

func TestObjectiveSelectDegenerate(t *testing.T) {
	if got := MinMakespan().Select(nil, 1, 1); got != -1 {
		t.Errorf("empty candidates: %d", got)
	}
	allFailed := []Candidate{{ID: 0, Err: errTest}, {ID: 1, Err: errTest}}
	for _, o := range []Objective{MinMakespan(), MinMemory(), MakespanUnderMemCap(2), MemoryUnderDeadline(2), Weighted(0.5)} {
		if got := o.Select(allFailed, 1, 1); got != -1 {
			t.Errorf("%s: selected %d from all-failed set", o, got)
		}
	}
	// Zero baselines must not produce NaN scores or panics.
	cands := []Candidate{{ID: 0, Makespan: 3, PeakMemory: 7}, {ID: 1, Makespan: 2, PeakMemory: 9}}
	if got := Weighted(0.5).Select(cands, 0, 0); got != 0 && got != 1 {
		t.Errorf("zero baselines: selected %d", got)
	}
	if s := Weighted(0.5).weightedScore(&cands[0], 0, 0); math.IsNaN(s) || math.IsInf(s, 0) {
		t.Errorf("degenerate score %g", s)
	}
}

func TestWinnerAlwaysOnFrontier(t *testing.T) {
	// For every objective, the selected candidate must be Pareto-optimal:
	// objectives are monotone in both metrics, and ties break identically
	// to the frontier's deduplication.
	cands, lb, mseq := fixture()
	frontier := Frontier(cands)
	on := make(map[int]bool)
	for _, i := range frontier {
		on[i] = true
	}
	for _, o := range []Objective{
		MinMakespan(), MinMemory(),
		MakespanUnderMemCap(0.5), MakespanUnderMemCap(1), MakespanUnderMemCap(2), MakespanUnderMemCap(3),
		MemoryUnderDeadline(0.5), MemoryUnderDeadline(1), MemoryUnderDeadline(1.5), MemoryUnderDeadline(3),
		Weighted(0), Weighted(0.2), Weighted(0.5), Weighted(0.8), Weighted(1),
	} {
		w := o.Select(cands, lb, mseq)
		if w < 0 || !on[w] {
			t.Errorf("%s: winner %d not on frontier %v", o, w, frontier)
		}
	}
}
