package portfolio

import (
	"errors"
	"math/rand"
	"testing"

	"treesched/internal/sched"
)

// dominates reports the reference dominance relation: a no worse than b in
// both metrics and strictly better in at least one.
func dominates(a, b *Candidate) bool {
	if a.Err != nil || b.Err != nil {
		return false
	}
	return a.Makespan <= b.Makespan && a.PeakMemory <= b.PeakMemory &&
		(a.Makespan < b.Makespan || a.PeakMemory < b.PeakMemory)
}

// randomCandidates draws candidates from a small value range so duplicate
// points and ties occur constantly.
func randomCandidates(rng *rand.Rand, n int) []Candidate {
	cands := make([]Candidate, n)
	for i := range cands {
		cands[i] = Candidate{
			ID:         sched.HeuristicID(rng.Intn(5)),
			Makespan:   float64(1 + rng.Intn(6)),
			PeakMemory: int64(1 + rng.Intn(6)),
		}
		if rng.Intn(8) == 0 {
			cands[i].Err = errors.New("synthetic failure")
		}
	}
	return cands
}

func TestFrontierProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		cands := randomCandidates(rng, 1+rng.Intn(12))
		frontier := Frontier(cands)

		onFrontier := make(map[int]bool, len(frontier))
		for _, i := range frontier {
			onFrontier[i] = true
		}

		// No frontier point is dominated by any candidate, and no frontier
		// point failed.
		for _, i := range frontier {
			if cands[i].Err != nil {
				t.Fatalf("trial %d: failed candidate %d on frontier", trial, i)
			}
			for j := range cands {
				if dominates(&cands[j], &cands[i]) {
					t.Fatalf("trial %d: frontier point %d dominated by %d\n%+v\n%+v",
						trial, i, j, cands[i], cands[j])
				}
			}
		}

		// Every dominated candidate is excluded; every excluded successful
		// candidate is either dominated or an exact duplicate of a frontier
		// point (deduplicated by ID then index).
		for i := range cands {
			if cands[i].Err != nil || onFrontier[i] {
				continue
			}
			dominated := false
			for j := range cands {
				if dominates(&cands[j], &cands[i]) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			dup := false
			for _, f := range frontier {
				if cands[f].Makespan == cands[i].Makespan && cands[f].PeakMemory == cands[i].PeakMemory {
					if cands[f].ID > cands[i].ID || (cands[f].ID == cands[i].ID && f > i) {
						t.Fatalf("trial %d: duplicate representative %d should have lost to %d", trial, f, i)
					}
					dup = true
					break
				}
			}
			if !dup {
				t.Fatalf("trial %d: candidate %d excluded but neither dominated nor duplicate\n%+v\nfrontier %v",
					trial, i, cands[i], frontier)
			}
		}

		// The frontier is a staircase: strictly increasing makespan,
		// strictly decreasing memory.
		for k := 1; k < len(frontier); k++ {
			a, b := &cands[frontier[k-1]], &cands[frontier[k]]
			if !(a.Makespan < b.Makespan && a.PeakMemory > b.PeakMemory) {
				t.Fatalf("trial %d: frontier not a strict staircase at %d: %+v then %+v", trial, k, a, b)
			}
		}
	}
}

func TestFrontierDeterministicUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		cands := randomCandidates(rng, 2+rng.Intn(10))
		want := frontierPoints(cands)
		perm := rng.Perm(len(cands))
		shuffled := make([]Candidate, len(cands))
		for i, p := range perm {
			shuffled[p] = cands[i]
		}
		got := frontierPoints(shuffled)
		if len(got) != len(want) {
			t.Fatalf("trial %d: frontier size %d after shuffle, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("trial %d: frontier point %d is %+v after shuffle, want %+v", trial, k, got[k], want[k])
			}
		}
	}
}

func frontierPoints(cands []Candidate) []Candidate {
	var pts []Candidate
	for _, i := range Frontier(cands) {
		pts = append(pts, Candidate{ID: cands[i].ID, Makespan: cands[i].Makespan, PeakMemory: cands[i].PeakMemory})
	}
	return pts
}

func TestFrontierEdgeCases(t *testing.T) {
	if f := Frontier(nil); len(f) != 0 {
		t.Errorf("empty input: frontier %v", f)
	}
	if f := Frontier([]Candidate{{Err: errors.New("x")}}); len(f) != 0 {
		t.Errorf("all-failed input: frontier %v", f)
	}
	one := []Candidate{{ID: 3, Makespan: 2, PeakMemory: 5}}
	if f := Frontier(one); len(f) != 1 || f[0] != 0 {
		t.Errorf("singleton: frontier %v", f)
	}
	// Exact duplicates: the lower ID wins regardless of order.
	dup := []Candidate{
		{ID: 2, Makespan: 1, PeakMemory: 1},
		{ID: 0, Makespan: 1, PeakMemory: 1},
	}
	if f := Frontier(dup); len(f) != 1 || f[0] != 1 {
		t.Errorf("duplicate points: frontier %v, want [1]", f)
	}
}
