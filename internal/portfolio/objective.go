package portfolio

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the selection policies an Objective can express.
type Kind int

const (
	// KindMinMakespan selects the fastest schedule, breaking makespan ties
	// toward lower memory.
	KindMinMakespan Kind = iota
	// KindMinMemory selects the most memory-frugal schedule, breaking ties
	// toward lower makespan.
	KindMinMemory
	// KindMakespanUnderMemCap selects the fastest schedule whose peak
	// memory stays within Param × M_seq; if none qualifies it falls back to
	// the most memory-frugal candidate (the one closest to feasibility).
	KindMakespanUnderMemCap
	// KindMemoryUnderDeadline selects the most memory-frugal schedule whose
	// makespan stays within Param × the makespan lower bound; if none
	// qualifies it falls back to the fastest candidate.
	KindMemoryUnderDeadline
	// KindWeighted minimizes Param·(makespan/LB) + (1−Param)·(memory/M_seq),
	// the paper's normalized bi-criteria score.
	KindWeighted
)

// Objective is a typed selection policy over a portfolio's candidates. The
// zero value is MinMakespan. Objectives round-trip through a compact wire
// syntax (see String and ParseObjective), so they embed in JSON requests
// and CLI flags as plain strings.
type Objective struct {
	kind  Kind
	param float64
}

// MinMakespan selects the fastest schedule.
func MinMakespan() Objective { return Objective{kind: KindMinMakespan} }

// MinMemory selects the most memory-frugal schedule.
func MinMemory() Objective { return Objective{kind: KindMinMemory} }

// MakespanUnderMemCap selects the fastest schedule with peak memory at
// most factor × M_seq (factor > 0; factor 1 asks for sequential-grade
// memory).
func MakespanUnderMemCap(factor float64) Objective {
	return Objective{kind: KindMakespanUnderMemCap, param: factor}
}

// MemoryUnderDeadline selects the most memory-frugal schedule with
// makespan at most d × the makespan lower bound max(W/p, critical path)
// (d > 0; d below 1 is unsatisfiable by definition and always falls back
// to the fastest candidate).
func MemoryUnderDeadline(d float64) Objective {
	return Objective{kind: KindMemoryUnderDeadline, param: d}
}

// Weighted minimizes alpha·(makespan/LB) + (1−alpha)·(memory/M_seq) with
// alpha in [0, 1]: 1 is pure makespan, 0 pure memory.
func Weighted(alpha float64) Objective {
	return Objective{kind: KindWeighted, param: alpha}
}

// Kind returns the objective's selection policy.
func (o Objective) Kind() Kind { return o.kind }

// Param returns the policy parameter: the memory-cap factor, the deadline
// factor, or the weight alpha; 0 for the parameterless kinds.
func (o Objective) Param() float64 { return o.param }

// Validate checks that the parameter is in the policy's domain.
func (o Objective) Validate() error {
	switch o.kind {
	case KindMinMakespan, KindMinMemory:
		return nil
	case KindMakespanUnderMemCap, KindMemoryUnderDeadline:
		// !(> 0) rather than (<= 0) so NaN is rejected too.
		if !(o.param > 0) || math.IsInf(o.param, 1) {
			return fmt.Errorf("portfolio: objective %s requires a positive finite factor, got %g", kindNames[o.kind], o.param)
		}
		return nil
	case KindWeighted:
		if !(o.param >= 0 && o.param <= 1) {
			return fmt.Errorf("portfolio: objective weighted requires alpha in [0,1], got %g", o.param)
		}
		return nil
	}
	return fmt.Errorf("portfolio: unknown objective kind %d", int(o.kind))
}

var kindNames = map[Kind]string{
	KindMinMakespan:         "min_makespan",
	KindMinMemory:           "min_memory",
	KindMakespanUnderMemCap: "makespan_under_memcap",
	KindMemoryUnderDeadline: "memory_under_deadline",
	KindWeighted:            "weighted",
}

// paramHints names the parameter of each parameterized kind in error
// texts and documentation.
var paramHints = map[Kind]string{
	KindMakespanUnderMemCap: ":F",
	KindMemoryUnderDeadline: ":D",
	KindWeighted:            ":A",
}

// ObjectiveSyntaxes returns every objective wire syntax in sorted order,
// parameterized kinds with their parameter hint ("weighted:A"), for error
// texts and documentation. Derived from the kind table, so it can never
// drift from what ParseObjective accepts.
func ObjectiveSyntaxes() []string {
	out := make([]string, 0, len(kindNames))
	for k, n := range kindNames {
		out = append(out, n+paramHints[k])
	}
	sort.Strings(out)
	return out
}

// String renders the wire syntax: "min_makespan", "min_memory",
// "makespan_under_memcap:F", "memory_under_deadline:D", "weighted:A".
func (o Objective) String() string {
	name, ok := kindNames[o.kind]
	if !ok {
		return fmt.Sprintf("objective(%d)", int(o.kind))
	}
	switch o.kind {
	case KindMinMakespan, KindMinMemory:
		return name
	}
	return name + ":" + strconv.FormatFloat(o.param, 'g', -1, 64)
}

// ParseObjective parses the wire syntax accepted by String. The
// parameterized kinds require their parameter ("makespan_under_memcap:2"),
// the parameterless ones reject one.
func ParseObjective(s string) (Objective, error) {
	name, param, hasParam := strings.Cut(s, ":")
	var kind Kind = -1
	for k, n := range kindNames {
		if n == name {
			kind = k
			break
		}
	}
	if kind < 0 {
		return Objective{}, fmt.Errorf("portfolio: unknown objective %q (known: %s)",
			s, strings.Join(ObjectiveSyntaxes(), ", "))
	}
	o := Objective{kind: kind}
	switch kind {
	case KindMinMakespan, KindMinMemory:
		if hasParam {
			return Objective{}, fmt.Errorf("portfolio: objective %s takes no parameter, got %q", name, s)
		}
	default:
		if !hasParam {
			return Objective{}, fmt.Errorf("portfolio: objective %s requires a parameter, e.g. %q", name, name+":2")
		}
		v, err := strconv.ParseFloat(param, 64)
		if err != nil {
			return Objective{}, fmt.Errorf("portfolio: objective %s: bad parameter %q", name, param)
		}
		o.param = v
	}
	if err := o.Validate(); err != nil {
		return Objective{}, err
	}
	return o, nil
}

// MarshalText encodes the wire syntax, so Objective fields serialize as
// JSON strings.
func (o Objective) MarshalText() ([]byte, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return []byte(o.String()), nil
}

// UnmarshalText decodes the wire syntax.
func (o *Objective) UnmarshalText(text []byte) error {
	got, err := ParseObjective(string(text))
	if err != nil {
		return err
	}
	*o = got
	return nil
}

// Select returns the index of the best candidate in cands under o, given
// the instance baselines makespanLB (max(W/p, critical path)) and memSeq
// (M_seq, the best-postorder sequential peak). Failed candidates are
// skipped. Ties on the primary criterion break toward the secondary one
// (the other metric), then toward the lower heuristic ID, then the lower
// index, so selection is deterministic. Returns -1 when every candidate
// failed.
func (o Objective) Select(cands []Candidate, makespanLB float64, memSeq int64) int {
	best := -1
	for i := range cands {
		if cands[i].Err != nil {
			continue
		}
		if best < 0 || o.better(&cands[i], &cands[best], makespanLB, memSeq) {
			best = i
		}
	}
	return best
}

// better reports whether candidate a beats candidate b under o.
func (o Objective) better(a, b *Candidate, lb float64, mseq int64) bool {
	switch o.kind {
	case KindMinMakespan:
		return lexBetter(a, b, a.Makespan, b.Makespan, float64(a.PeakMemory), float64(b.PeakMemory))
	case KindMinMemory:
		return lexBetter(a, b, float64(a.PeakMemory), float64(b.PeakMemory), a.Makespan, b.Makespan)
	case KindMakespanUnderMemCap:
		cap := o.param * float64(mseq)
		fa, fb := float64(a.PeakMemory) <= cap, float64(b.PeakMemory) <= cap
		if fa != fb {
			return fa
		}
		if !fa { // neither feasible: get as close to the cap as possible
			return lexBetter(a, b, float64(a.PeakMemory), float64(b.PeakMemory), a.Makespan, b.Makespan)
		}
		return lexBetter(a, b, a.Makespan, b.Makespan, float64(a.PeakMemory), float64(b.PeakMemory))
	case KindMemoryUnderDeadline:
		deadline := o.param * lb
		fa, fb := a.Makespan <= deadline, b.Makespan <= deadline
		if fa != fb {
			return fa
		}
		if !fa { // neither feasible: get as close to the deadline as possible
			return lexBetter(a, b, a.Makespan, b.Makespan, float64(a.PeakMemory), float64(b.PeakMemory))
		}
		return lexBetter(a, b, float64(a.PeakMemory), float64(b.PeakMemory), a.Makespan, b.Makespan)
	case KindWeighted:
		sa := o.weightedScore(a, lb, mseq)
		sb := o.weightedScore(b, lb, mseq)
		if sa != sb {
			return sa < sb
		}
		return tieBreak(a, b)
	}
	return false
}

// weightedScore is the normalized bi-criteria score. Degenerate baselines
// (a zero lower bound or zero M_seq) fall back to the raw metric so the
// score stays finite and ordering-consistent.
func (o Objective) weightedScore(c *Candidate, lb float64, mseq int64) float64 {
	ms, mem := c.Makespan, float64(c.PeakMemory)
	if lb > 0 {
		ms /= lb
	}
	if mseq > 0 {
		mem /= float64(mseq)
	}
	return o.param*ms + (1-o.param)*mem
}

// lexBetter compares (primary, secondary) lexicographically, falling back
// to the deterministic ID/index tie-break.
func lexBetter(a, b *Candidate, pa, pb, sa, sb float64) bool {
	if pa != pb {
		return pa < pb
	}
	if sa != sb {
		return sa < sb
	}
	return tieBreak(a, b)
}

// tieBreak orders exactly-equal outcomes by heuristic ID. Callers pass
// candidates in selection order, so equal IDs keep the earlier index
// (Select never replaces best on a full tie).
func tieBreak(a, b *Candidate) bool { return a.ID < b.ID }
