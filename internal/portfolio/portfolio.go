// Package portfolio races a set of scheduling heuristics concurrently
// over one tree and answers the paper's bi-criteria question in one call:
// it collects every (makespan, peak memory) outcome, computes the Pareto
// frontier of the race, and selects a winner under a typed Objective.
//
// The paper's whole point is that no single heuristic wins both
// objectives — ParSubtrees dominates on memory, ParDeepestFirst on
// makespan (Table 1) — so a production service should not make the caller
// pick one blindly. A portfolio run replaces N sequential per-heuristic
// requests with one racing call: the memory-optimal postorder (M_seq) is
// computed once and shared, the candidates run on a bounded goroutine
// fan-out with per-heuristic panic containment, and the wall time
// approaches the slowest single candidate instead of the sum.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"treesched/internal/exact"
	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// Options parameterizes a portfolio run. The embedded sched.Options
// carries the machine size, the candidate set and the memory-cap factor;
// an empty candidate set means DefaultCandidates.
type Options struct {
	sched.Options
	// Parallelism bounds how many candidates run concurrently. 0 means
	// min(len(candidates), GOMAXPROCS); 1 degenerates to a sequential
	// sweep (useful under an already-saturated caller).
	Parallelism int
	// ExactNodes bounds the Exact candidate's branch-and-bound search in
	// explored decision nodes — its anytime cutoff. Node counts, not
	// wall-clock, keep the race deterministic: the same request always
	// yields the same winner. 0 means exact.DefaultNodeBudget; ignored
	// unless sched.IDExact is among the candidates.
	ExactNodes int64
	// Trace, when non-nil, records one "candidate:<id>" span per racing
	// heuristic under TraceParent (obs.RootSpan for top-level spans). The
	// Exact candidate's span carries its explored-node count as the span
	// value. A nil Trace costs one nil check per candidate.
	Trace       *obs.Trace
	TraceParent int
}

// DefaultCandidates returns the default racing set: the paper's four
// heuristics in Table 1 order plus the Sequential baseline, whose
// (total work, M_seq) point anchors the memory end of the frontier.
func DefaultCandidates() []sched.HeuristicID {
	return append(sched.PaperHeuristics(), sched.IDSequential)
}

// Candidate is one heuristic's outcome in a race. Either Err is non-nil
// (the heuristic failed or panicked; the other candidates are unaffected)
// or the metric fields are valid.
type Candidate struct {
	ID       sched.HeuristicID
	Makespan float64
	// PeakMemory is the exact simulated peak memory of the schedule.
	PeakMemory int64
	// MakespanRatio is Makespan / the makespan lower bound (0 if the bound
	// is 0); MemoryRatio is PeakMemory / M_seq (0 if M_seq is 0).
	MakespanRatio float64
	MemoryRatio   float64
	// Elapsed is this candidate's own scheduling time; comparing the sum
	// over candidates with Result.Elapsed shows the racing speedup.
	Elapsed time.Duration
	Err     error
	// Proven, Explored, Pruned and MemoHits describe the Exact
	// candidate's search: Proven reports that the branch-and-bound
	// exhausted its space within the node budget (the schedule is
	// optimal, not merely best-found), Explored counts decision nodes,
	// Pruned those cut by the lower bound, and MemoHits those cut by
	// dominance memoization. Zero-valued on every other candidate.
	Proven   bool
	Explored int64
	Pruned   int64
	MemoHits int64
}

// Result is the outcome of one portfolio run.
type Result struct {
	// Objective is the selection policy that produced Winner.
	Objective Objective
	// Processors is the machine size the candidates were scheduled for;
	// Machine is the heterogeneous machine model when one was set (nil on
	// the paper's uniform machine).
	Processors int
	Machine    *machine.Model
	// MakespanLB is max(total work / Σ speeds, critical path / s_max)
	// (with p and 1 as the uniform denominators); MemorySeq is M_seq, the
	// best-postorder sequential peak — the normalization baselines of the
	// paper's evaluation.
	MakespanLB float64
	MemorySeq  int64
	// Candidates holds one entry per requested heuristic, in request
	// order, deterministic regardless of racing order.
	Candidates []Candidate
	// Frontier indexes the Pareto-optimal candidates in ascending-makespan
	// order (see Frontier).
	Frontier []int
	// Winner indexes the objective-selected candidate, or is -1 when every
	// candidate failed.
	Winner int
	// Elapsed is the wall time of the whole race.
	Elapsed time.Duration
}

// WinnerCandidate returns the selected candidate, or false when every
// candidate failed.
func (r *Result) WinnerCandidate() (Candidate, bool) {
	if r.Winner < 0 || r.Winner >= len(r.Candidates) {
		return Candidate{}, false
	}
	return r.Candidates[r.Winner], true
}

// OnFrontier reports whether candidate i is Pareto-optimal.
func (r *Result) OnFrontier(i int) bool {
	for _, f := range r.Frontier {
		if f == i {
			return true
		}
	}
	return false
}

// Run races the candidate heuristics of opts over t and selects a winner
// under obj. The scheduling precompute (Liu's best postorder, M_seq,
// depths, priority rankings) shared by all candidates is computed once,
// before the fan-out. A candidate that fails or panics costs only its own
// entry; cancellation of ctx abandons candidates that have not started and
// returns ctx.Err() (running candidates are pure CPU and finish their
// tree first).
func Run(ctx context.Context, t *tree.Tree, obj Objective, opts Options) (*Result, error) {
	if t == nil || t.Len() == 0 {
		return nil, errors.New("portfolio: tree is empty")
	}
	return RunPre(ctx, sched.NewPrecompute(t), obj, opts)
}

// RunPre is Run for callers that already hold the tree's sched.Precompute
// (the forest planner, repeated races over one tree): the race shares the
// caller's context instead of traversing the tree again. The precompute is
// safe for the concurrent candidate fan-out.
func RunPre(ctx context.Context, pc *sched.Precompute, obj Objective, opts Options) (*Result, error) {
	t := pc.Tree()
	if t == nil || t.Len() == 0 {
		return nil, errors.New("portfolio: tree is empty")
	}
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Heuristics) == 0 {
		opts.Heuristics = DefaultCandidates()
	}
	// SelectPre validates the options and binds every candidate to the
	// shared precompute; M_seq comes for free. The Exact pseudo-heuristic
	// is this layer's to resolve, so it is stripped before selection and
	// its solver candidate spliced back in at the requested position.
	ids := opts.Heuristics
	schedIDs := ids
	exactStats := make([]exactStat, len(ids))
	if hasExact(ids) {
		schedIDs = make([]sched.HeuristicID, 0, len(ids)-1)
		for _, id := range ids {
			if id != sched.IDExact {
				schedIDs = append(schedIDs, id)
			}
		}
	}
	var hs []sched.Heuristic
	var memSeq int64
	if len(schedIDs) > 0 {
		o := opts.Options
		o.Heuristics = schedIDs
		var err error
		hs, memSeq, err = o.SelectPre(pc)
		if err != nil {
			return nil, err
		}
	} else {
		// Every candidate is Exact: validate the machine half of the
		// options without letting an empty heuristic list default back
		// to the paper four.
		o := opts.Options
		o.Heuristics = nil
		if err := o.Validate(); err != nil {
			return nil, err
		}
		memSeq = pc.MSeq()
	}
	if len(schedIDs) != len(ids) {
		memCap := exact.CapFromFactor(opts.MemCapFactor, memSeq)
		full := make([]sched.Heuristic, 0, len(ids))
		j := 0
		for i, id := range ids {
			if id != sched.IDExact {
				full = append(full, hs[j])
				j++
				continue
			}
			full = append(full, exactHeuristic(pc, memCap, opts.ExactNodes, &exactStats[i]))
		}
		hs = full
	}
	// One shared machine model for the whole race: every candidate
	// schedules for the same processors and speeds.
	m := opts.Options.Model()
	start := time.Now()
	cands, spans := race(ctx, t, m, hs, opts.Parallelism, opts.Trace, opts.TraceParent)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lb := sched.MakespanLowerBoundOn(t, m)
	for i := range cands {
		if st := &exactStats[i]; st.set {
			cands[i].Proven = st.proven
			cands[i].Explored = st.explored
			cands[i].Pruned = st.pruned
			cands[i].MemoHits = st.memoHits
			if spans != nil {
				// Safe after End: the race barrier has passed, so the span
				// exists and only its value is written.
				opts.Trace.SetValue(spans[i], st.explored)
			}
		}
		if cands[i].Err != nil {
			continue
		}
		if lb > 0 {
			cands[i].MakespanRatio = cands[i].Makespan / lb
		}
		if memSeq > 0 {
			cands[i].MemoryRatio = float64(cands[i].PeakMemory) / float64(memSeq)
		}
	}
	res := &Result{
		Objective:  obj,
		Processors: m.P(),
		MakespanLB: lb,
		MemorySeq:  memSeq,
		Candidates: cands,
		Frontier:   Frontier(cands),
		Winner:     obj.Select(cands, lb, memSeq),
		Elapsed:    time.Since(start),
	}
	if !m.IsUniform() {
		res.Machine = m
	}
	return res, nil
}

// exactStat carries the Exact candidate's search statistics out of its
// closure. Each slot is written by at most one racing goroutine and read
// only after the race's WaitGroup barrier, so no further synchronization
// is needed.
type exactStat struct {
	set      bool
	proven   bool
	explored int64
	pruned   int64
	memoHits int64
}

func hasExact(ids []sched.HeuristicID) bool {
	for _, id := range ids {
		if id == sched.IDExact {
			return true
		}
	}
	return false
}

// exactHeuristic wraps the branch-and-bound solver as a racing candidate:
// same cap as the capped heuristics (MemCapFactor × M_seq; no cap when
// the factor is unset), anytime under a deterministic node budget.
func exactHeuristic(pc *sched.Precompute, memCap, nodes int64, stat *exactStat) sched.Heuristic {
	runOn := func(t *tree.Tree, m *machine.Model) (*sched.Schedule, error) {
		if t != pc.Tree() {
			return nil, errors.New("portfolio: Exact candidate was selected for a different tree")
		}
		res, err := exact.SolvePre(pc, m, memCap, nodes)
		if err != nil {
			return nil, err
		}
		stat.set, stat.proven, stat.explored = true, res.Proven, res.Explored
		stat.pruned, stat.memoHits = res.Pruned, res.MemoHits
		return res.Schedule, nil
	}
	return sched.Heuristic{
		ID: sched.IDExact, Name: sched.IDExact.String(),
		Run: func(t *tree.Tree, p int) (*sched.Schedule, error) {
			return runOn(t, machine.Uniform(p))
		},
		RunOn: runOn,
	}
}

// race runs every heuristic over t with a bounded goroutine fan-out.
// Candidate i corresponds to hs[i], so the output order never depends on
// goroutine scheduling. Each candidate is individually recover-protected:
// a panic in one heuristic costs one Err entry, not the race. With a
// non-nil trace, each candidate records a "candidate:<id>" span under
// parent; the returned span ids parallel the candidates (nil without a
// trace, so untraced races allocate nothing extra).
func race(ctx context.Context, t *tree.Tree, m *machine.Model, hs []sched.Heuristic, parallelism int, tr *obs.Trace, parent int) ([]Candidate, []int) {
	n := len(hs)
	if parallelism <= 0 || parallelism > n {
		parallelism = min(n, runtime.GOMAXPROCS(0))
	}
	if parallelism < 1 {
		parallelism = 1
	}
	cands := make([]Candidate, n)
	var spans []int
	if tr != nil {
		spans = make([]int, n)
	}
	span := func(i int) int {
		if tr == nil {
			return obs.RootSpan
		}
		spans[i] = tr.Start("candidate:"+hs[i].ID.String(), parent)
		return spans[i]
	}
	if parallelism == 1 {
		// A one-slot race (single-core machine, or an already-saturated
		// caller) is a plain loop: same candidate order, same ctx checks,
		// none of the goroutine/semaphore overhead.
		for i := range hs {
			cands[i].ID = hs[i].ID
			if err := ctx.Err(); err != nil {
				cands[i].Err = err
				continue
			}
			id := span(i)
			start := time.Now()
			runOne(t, m, hs[i], &cands[i])
			cands[i].Elapsed = time.Since(start)
			tr.End(id)
		}
		return cands, spans
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := range hs {
		cands[i].ID = hs[i].ID
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				cands[i].Err = ctx.Err()
				return
			}
			if err := ctx.Err(); err != nil { // canceled while a slot freed up
				cands[i].Err = err
				return
			}
			id := span(i)
			start := time.Now()
			runOne(t, m, hs[i], &cands[i])
			cands[i].Elapsed = time.Since(start)
			tr.End(id)
		}(i)
	}
	wg.Wait()
	return cands, spans
}

// runOne executes and measures a single candidate, containing panics.
// Validation, makespan and peak memory come from one sched.Evaluate pass.
func runOne(t *tree.Tree, m *machine.Model, h sched.Heuristic, c *Candidate) {
	defer func() {
		if r := recover(); r != nil {
			c.Err = fmt.Errorf("portfolio: %s panicked: %v", h.Name, r)
		}
	}()
	s, err := h.RunOn(t, m)
	if err != nil {
		c.Err = err
		return
	}
	mk, peak, err := sched.Evaluate(t, s)
	if err != nil {
		c.Err = err
		return
	}
	c.Makespan = mk
	c.PeakMemory = peak
}
