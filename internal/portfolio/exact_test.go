package portfolio

import (
	"context"
	"math"
	"testing"

	"treesched/internal/exact"
	"treesched/internal/machine"
	"treesched/internal/sched"
)

// exactTestOptions keeps race-tested exact runs cheap and deterministic.
const exactTestNodes = 50_000

// TestRunWithExactCandidate races the paper's heuristics against the
// exact solver: the Exact candidate must carry its Proven/Explored stats,
// and under MinMakespan it must win any race it proves (nothing beats a
// proven optimum).
func TestRunWithExactCandidate(t *testing.T) {
	tr := portfolioTestTree(t, 5, 20)
	opts := Options{
		Options: sched.Options{
			Processors: 2,
			Heuristics: append(DefaultCandidates(), sched.IDExact),
		},
		ExactNodes: exactTestNodes,
	}
	res, err := Run(context.Background(), tr, MinMakespan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != len(opts.Heuristics) {
		t.Fatalf("%d candidates, want %d", len(res.Candidates), len(opts.Heuristics))
	}
	var ex *Candidate
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.ID == sched.IDExact {
			ex = c
		} else if c.Proven || c.Explored != 0 {
			t.Errorf("%s carries exact-only stats: proven=%v explored=%d", c.ID, c.Proven, c.Explored)
		}
	}
	if ex == nil {
		t.Fatal("no Exact candidate in the results")
	}
	if ex.Err != nil {
		t.Fatalf("Exact candidate failed: %v", ex.Err)
	}
	if ex.Makespan < res.MakespanLB-1e-9 {
		t.Errorf("Exact makespan %g beats the lower bound %g", ex.Makespan, res.MakespanLB)
	}
	for _, c := range res.Candidates {
		if c.Err == nil && c.Makespan < ex.Makespan {
			if ex.Proven {
				t.Errorf("%s makespan %g beats the proven optimum %g", c.ID, c.Makespan, ex.Makespan)
			}
		}
	}
	if ex.Proven {
		w, ok := res.WinnerCandidate()
		if !ok {
			t.Fatal("no winner")
		}
		if w.Makespan != ex.Makespan {
			t.Errorf("MinMakespan winner at %g, but the proven optimum is %g", w.Makespan, ex.Makespan)
		}
	}
}

// TestRunOnlyExact exercises the path where the request names no plain
// heuristic at all — the race is a single exact solve.
func TestRunOnlyExact(t *testing.T) {
	tr := portfolioTestTree(t, 11, 16)
	opts := Options{
		Options:    sched.Options{Processors: 2, Heuristics: []sched.HeuristicID{sched.IDExact}},
		ExactNodes: exactTestNodes,
	}
	res, err := Run(context.Background(), tr, MinMakespan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 1 || res.Candidates[0].ID != sched.IDExact {
		t.Fatalf("candidates = %+v, want exactly one Exact entry", res.Candidates)
	}
	c := res.Candidates[0]
	if c.Err != nil {
		t.Fatalf("Exact failed: %v", c.Err)
	}
	if res.Winner != 0 {
		t.Errorf("winner = %d, want 0", res.Winner)
	}
	if res.MemorySeq <= 0 {
		t.Errorf("MemorySeq = %d, want the shared M_seq baseline", res.MemorySeq)
	}
}

// TestRunExactDeterministic repeats the same exact-bearing race and
// demands byte-identical outcomes: same winner, same measures, same node
// count — the budget is counted in search nodes, never wall-clock.
func TestRunExactDeterministic(t *testing.T) {
	tr := portfolioTestTree(t, 7, 24)
	m, err := machine.ParseSpec("2x1.0+2x0.5")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Options: sched.Options{
			Machine:    m,
			Heuristics: append(DefaultCandidates(), sched.IDExact),
		},
		ExactNodes: exactTestNodes,
	}
	ref, err := Run(context.Background(), tr, MinMakespan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 0} {
		opts.Parallelism = par
		res, err := Run(context.Background(), tr, MinMakespan(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner != ref.Winner {
			t.Fatalf("parallelism %d: winner %d, want %d", par, res.Winner, ref.Winner)
		}
		for i := range res.Candidates {
			a, b := res.Candidates[i], ref.Candidates[i]
			if a.ID != b.ID || a.Makespan != b.Makespan || a.PeakMemory != b.PeakMemory ||
				a.Proven != b.Proven || a.Explored != b.Explored {
				t.Fatalf("parallelism %d: candidate %d differs: %+v vs %+v", par, i, a, b)
			}
		}
	}
}

// TestRunExactHonorsMemCapFactor: with a cap factor set, the Exact
// candidate must respect cap = ceil(factor × M_seq) like the capped
// schedulers do.
func TestRunExactHonorsMemCapFactor(t *testing.T) {
	tr := portfolioTestTree(t, 3, 18)
	opts := Options{
		Options: sched.Options{
			Processors: 2,
			Heuristics: []sched.HeuristicID{sched.IDMemCapped, sched.IDExact},
			// Factor 1 pins the cap to M_seq itself: the tightest factor
			// the capped heuristics accept.
			MemCapFactor: 1,
		},
		ExactNodes: exactTestNodes,
	}
	res, err := Run(context.Background(), tr, MinMakespan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	cap := exact.CapFromFactor(1, res.MemorySeq)
	for _, c := range res.Candidates {
		if c.Err != nil {
			t.Fatalf("%s failed: %v", c.ID, c.Err)
		}
		if c.PeakMemory > cap {
			t.Errorf("%s peak %d exceeds cap %d", c.ID, c.PeakMemory, cap)
		}
	}
	if cap == math.MaxInt64 {
		t.Fatal("cap factor 1 resolved to no cap")
	}
}
