package portfolio

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

func portfolioTestTree(tb testing.TB, seed int64, n int) *tree.Tree {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	return tree.RandomAttachment(rng, n, tree.WeightSpec{
		WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20,
	})
}

// TestRunHeterogeneousMachine races the default candidates on a 2-speed
// machine: every candidate must schedule for the model's processor count,
// the lower bound must be speed-scaled, and a winner must emerge.
func TestRunHeterogeneousMachine(t *testing.T) {
	tr := portfolioTestTree(t, 9, 120)
	m, err := machine.ParseSpec("2x1.0+2x0.5")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), tr, MinMakespan(), Options{Options: sched.Options{Machine: m}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Processors != 4 || res.Machine != m {
		t.Errorf("result machine = p%d %v, want p4 on the explicit model", res.Processors, res.Machine)
	}
	if want := sched.MakespanLowerBoundOn(tr, m); res.MakespanLB != want {
		t.Errorf("MakespanLB = %v, want speed-scaled %v", res.MakespanLB, want)
	}
	w, ok := res.WinnerCandidate()
	if !ok {
		t.Fatal("no winner on the heterogeneous machine")
	}
	if w.Err != nil || w.Makespan <= 0 {
		t.Errorf("winner not runnable: %+v", w)
	}
	for _, c := range res.Candidates {
		if c.Err != nil {
			t.Errorf("candidate %s failed on the heterogeneous machine: %v", c.ID, c.Err)
		}
	}
}

func TestRunDefaultPortfolio(t *testing.T) {
	tr := portfolioTestTree(t, 1, 120)
	res, err := Run(context.Background(), tr, MinMakespan(), Options{Options: sched.Options{Processors: 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultCandidates()
	if len(res.Candidates) != len(want) {
		t.Fatalf("%d candidates, want %d", len(res.Candidates), len(want))
	}
	for i, c := range res.Candidates {
		if c.ID != want[i] {
			t.Errorf("candidate %d is %s, want %s", i, c.ID, want[i])
		}
		if c.Err != nil {
			t.Errorf("%s failed: %v", c.ID, c.Err)
			continue
		}
		if c.Makespan < res.MakespanLB-1e-9 {
			t.Errorf("%s makespan %g beats the lower bound %g", c.ID, c.Makespan, res.MakespanLB)
		}
		if c.PeakMemory < res.MemorySeq && c.ID != sched.IDOptimalSequential {
			t.Errorf("%s memory %d below M_seq %d", c.ID, c.PeakMemory, res.MemorySeq)
		}
		if res.MakespanLB > 0 && c.MakespanRatio != c.Makespan/res.MakespanLB {
			t.Errorf("%s makespan ratio %g inconsistent", c.ID, c.MakespanRatio)
		}
	}
	// The Sequential baseline anchors the memory end of the frontier.
	seq := res.Candidates[len(res.Candidates)-1]
	if seq.ID != sched.IDSequential || seq.PeakMemory != res.MemorySeq {
		t.Errorf("Sequential candidate peak %d, want M_seq %d", seq.PeakMemory, res.MemorySeq)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if res.Winner < 0 || !res.OnFrontier(res.Winner) {
		t.Errorf("winner %d not on frontier %v", res.Winner, res.Frontier)
	}
	if w, ok := res.WinnerCandidate(); !ok || w.ID != res.Candidates[res.Winner].ID {
		t.Errorf("WinnerCandidate inconsistent: %+v ok=%v", w, ok)
	}
	// MinMakespan's winner has the minimum makespan over all candidates.
	for _, c := range res.Candidates {
		if c.Err == nil && c.Makespan < res.Candidates[res.Winner].Makespan {
			t.Errorf("winner makespan %g beaten by %s at %g",
				res.Candidates[res.Winner].Makespan, c.ID, c.Makespan)
		}
	}
}

func TestRunDeterministicAcrossRacingOrders(t *testing.T) {
	tr := portfolioTestTree(t, 2, 150)
	opts := Options{Options: sched.Options{Processors: 8}}
	ref, err := Run(context.Background(), tr, Weighted(0.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, len(DefaultCandidates())} {
		opts.Parallelism = par
		res, err := Run(context.Background(), tr, Weighted(0.5), opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner != ref.Winner || !reflect.DeepEqual(res.Frontier, ref.Frontier) {
			t.Fatalf("parallelism %d: winner %d frontier %v, want %d %v",
				par, res.Winner, res.Frontier, ref.Winner, ref.Frontier)
		}
		for i := range res.Candidates {
			a, b := res.Candidates[i], ref.Candidates[i]
			if a.ID != b.ID || a.Makespan != b.Makespan || a.PeakMemory != b.PeakMemory {
				t.Fatalf("parallelism %d: candidate %d differs: %+v vs %+v", par, i, a, b)
			}
		}
	}
}

func TestRunWithCappedCandidates(t *testing.T) {
	tr := portfolioTestTree(t, 3, 100)
	opts := Options{Options: sched.Options{
		Processors:   4,
		Heuristics:   []sched.HeuristicID{sched.IDParDeepestFirst, sched.IDMemCapped, sched.IDMemCappedBooking, sched.IDSequential},
		MemCapFactor: 1.5,
	}}
	res, err := Run(context.Background(), tr, MakespanUnderMemCap(1.5), opts)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := res.WinnerCandidate()
	if !ok {
		t.Fatal("no winner")
	}
	if float64(w.PeakMemory) > 1.5*float64(res.MemorySeq) {
		t.Errorf("winner %s peak %d violates the 1.5×M_seq cap (M_seq %d)", w.ID, w.PeakMemory, res.MemorySeq)
	}
}

func TestRunValidation(t *testing.T) {
	tr := portfolioTestTree(t, 4, 20)
	if _, err := Run(context.Background(), nil, MinMakespan(), Options{Options: sched.Options{Processors: 2}}); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := Run(context.Background(), tr, Weighted(2), Options{Options: sched.Options{Processors: 2}}); err == nil {
		t.Error("invalid objective accepted")
	}
	if _, err := Run(context.Background(), tr, MinMakespan(), Options{}); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Run(context.Background(), tr, MinMakespan(), Options{Options: sched.Options{
		Processors: 2, Heuristics: []sched.HeuristicID{sched.IDAuto},
	}}); err == nil {
		t.Error("Auto inside a portfolio candidate set accepted")
	}
}

func TestRunCanceledContext(t *testing.T) {
	tr := portfolioTestTree(t, 5, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tr, MinMakespan(), Options{Options: sched.Options{Processors: 2}}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRacePanicContainment(t *testing.T) {
	tr := portfolioTestTree(t, 6, 30)
	hs := []sched.Heuristic{
		{ID: sched.IDParSubtrees, Name: "ParSubtrees", RunOn: func(t *tree.Tree, m *machine.Model) (*sched.Schedule, error) {
			return sched.ParSubtrees(t, m.P())
		}},
		{ID: sched.IDParDeepestFirst, Name: "boom", RunOn: func(*tree.Tree, *machine.Model) (*sched.Schedule, error) {
			panic("synthetic heuristic panic")
		}},
	}
	cands, _ := race(context.Background(), tr, machine.Uniform(2), hs, 2, nil, obs.RootSpan)
	if cands[0].Err != nil {
		t.Errorf("healthy candidate infected: %v", cands[0].Err)
	}
	if cands[1].Err == nil || !strings.Contains(cands[1].Err.Error(), "panicked") {
		t.Errorf("panic not contained as an error: %+v", cands[1])
	}
}

func TestRaceRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU")
	}
	tr := portfolioTestTree(t, 7, 5)
	// Four stub candidates that each sleep: racing them must overlap, so
	// the wall time stays well under the sum of per-candidate times.
	const naps = 4
	const nap = 50 * time.Millisecond
	var peak, cur atomic.Int32
	stub := func(*tree.Tree, *machine.Model) (*sched.Schedule, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(nap)
		cur.Add(-1)
		return sched.SequentialSchedule(tr, tr.TopOrder())
	}
	hs := make([]sched.Heuristic, naps)
	for i := range hs {
		hs[i] = sched.Heuristic{ID: sched.HeuristicID(i), Name: "stub", RunOn: stub}
	}
	start := time.Now()
	cands, _ := race(context.Background(), tr, machine.Uniform(1), hs, naps, nil, obs.RootSpan)
	wall := time.Since(start)
	var sum time.Duration
	for _, c := range cands {
		if c.Err != nil {
			t.Fatalf("stub failed: %v", c.Err)
		}
		sum += c.Elapsed
	}
	if peak.Load() < 2 {
		t.Errorf("candidates never overlapped (peak concurrency %d)", peak.Load())
	}
	if wall >= sum {
		t.Errorf("race wall time %v not below sum of candidate times %v", wall, sum)
	}
}

func TestRaceRespectsParallelismBound(t *testing.T) {
	tr := portfolioTestTree(t, 8, 5)
	var peak, cur atomic.Int32
	stub := func(*tree.Tree, *machine.Model) (*sched.Schedule, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return sched.SequentialSchedule(tr, tr.TopOrder())
	}
	hs := make([]sched.Heuristic, 8)
	for i := range hs {
		hs[i] = sched.Heuristic{ID: sched.HeuristicID(i % 2), Name: "stub", RunOn: stub}
	}
	race(context.Background(), tr, machine.Uniform(1), hs, 2, nil, obs.RootSpan)
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d exceeds parallelism bound 2", p)
	}
}

// TestRunPreSharedPrecomputeConcurrent races many RunPre calls over one
// shared Precompute — the service's cross-request cache serves exactly
// this shape — and checks every race resolves the lazy per-tree state
// safely (run under -race) and lands on identical results.
func TestRunPreSharedPrecomputeConcurrent(t *testing.T) {
	tr := portfolioTestTree(t, 8, 200)
	pc := sched.NewPrecompute(tr)
	ref, err := RunPre(context.Background(), pc, MinMakespan(),
		Options{Options: sched.Options{Processors: 4}, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	const racers = 4
	results := make([]*Result, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Vary p and parallelism across racers: different machine sizes
			// resolve different lazy rank state off the one shared context.
			results[i], errs[i] = RunPre(context.Background(), pc, MinMakespan(),
				Options{Options: sched.Options{Processors: 4}, Parallelism: 1 + i%3})
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		res := results[i]
		if res.Winner != ref.Winner || !reflect.DeepEqual(res.Frontier, ref.Frontier) {
			t.Fatalf("racer %d: winner %d frontier %v, want %d %v",
				i, res.Winner, res.Frontier, ref.Winner, ref.Frontier)
		}
		for c := range res.Candidates {
			a, b := res.Candidates[c], ref.Candidates[c]
			if a.ID != b.ID || a.Makespan != b.Makespan || a.PeakMemory != b.PeakMemory {
				t.Fatalf("racer %d candidate %d differs: %+v vs %+v", i, c, a, b)
			}
		}
	}
}
