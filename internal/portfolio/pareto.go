package portfolio

import "sort"

// Frontier returns the indices into cands of the Pareto-optimal
// candidates for the bi-criteria minimization (makespan, peak memory),
// sorted by ascending makespan (hence descending memory). Failed
// candidates never appear. A candidate is excluded iff some other
// candidate dominates it: no worse in both metrics and strictly better in
// at least one. Among candidates with identical (makespan, memory) only
// one representative is kept — the lowest heuristic ID, then the lowest
// index — so the frontier is deterministic regardless of racing order.
func Frontier(cands []Candidate) []int {
	idx := make([]int, 0, len(cands))
	for i := range cands {
		if cands[i].Err == nil {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := &cands[idx[a]], &cands[idx[b]]
		if ca.Makespan != cb.Makespan {
			return ca.Makespan < cb.Makespan
		}
		if ca.PeakMemory != cb.PeakMemory {
			return ca.PeakMemory < cb.PeakMemory
		}
		if ca.ID != cb.ID {
			return ca.ID < cb.ID
		}
		return idx[a] < idx[b]
	})
	// One sweep in makespan order: a candidate is on the frontier iff its
	// memory strictly undercuts everything faster-or-equal seen so far.
	// Exact duplicates of a frontier point fail the strict test, keeping
	// only the sort's first (lowest-ID) representative.
	var frontier []int
	first := true
	var bestMem int64
	for _, i := range idx {
		if first || cands[i].PeakMemory < bestMem {
			frontier = append(frontier, i)
			bestMem = cands[i].PeakMemory
			first = false
		}
	}
	return frontier
}
