package spm

import "math/rand"

// Grid2D returns the 5-point stencil pattern of an nx × ny grid (the graph
// of a 2D Laplacian), vertex (x,y) at index x + nx*y.
func Grid2D(nx, ny int) *Pattern {
	edges := make([][2]int, 0, 2*nx*ny)
	id := func(x, y int) int { return x + nx*y }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				edges = append(edges, [2]int{id(x, y), id(x+1, y)})
			}
			if y+1 < ny {
				edges = append(edges, [2]int{id(x, y), id(x, y+1)})
			}
		}
	}
	p, err := NewPattern(nx*ny, edges)
	if err != nil {
		panic(err) // generated edges are always in range
	}
	return p
}

// Grid3D returns the 7-point stencil pattern of an nx × ny × nz grid (3D
// Laplacian), vertex (x,y,z) at index x + nx*(y + ny*z).
func Grid3D(nx, ny, nz int) *Pattern {
	edges := make([][2]int, 0, 3*nx*ny*nz)
	id := func(x, y, z int) int { return x + nx*(y+ny*z) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					edges = append(edges, [2]int{id(x, y, z), id(x+1, y, z)})
				}
				if y+1 < ny {
					edges = append(edges, [2]int{id(x, y, z), id(x, y+1, z)})
				}
				if z+1 < nz {
					edges = append(edges, [2]int{id(x, y, z), id(x, y, z+1)})
				}
			}
		}
	}
	p, err := NewPattern(nx*ny*nz, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// RandomSym returns a connected random symmetric pattern with roughly
// avgDeg neighbors per vertex: a random spanning tree (for connectivity)
// plus uniform random edges.
func RandomSym(rng *rand.Rand, n int, avgDeg float64) *Pattern {
	edges := make([][2]int, 0, n+int(avgDeg*float64(n)/2))
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v, rng.Intn(v)})
	}
	extra := int(avgDeg*float64(n)/2) - (n - 1)
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	p, err := NewPattern(n, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// PowerLaw returns a connected preferential-attachment pattern: each new
// vertex attaches m edges to existing vertices chosen proportionally to
// their degree. The heavy-tailed degrees reproduce the huge-degree assembly
// trees of the paper's dataset (max degree up to 175,000).
func PowerLaw(rng *rand.Rand, n, m int) *Pattern {
	if m < 1 {
		m = 1
	}
	edges := make([][2]int, 0, n*m)
	// targets holds one entry per edge endpoint: sampling uniformly from it
	// is sampling proportionally to degree.
	targets := make([]int, 0, 2*n*m)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		k := m
		if v < m {
			k = v
		}
		chosen := make([]int, 0, k)
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if t == v {
				continue
			}
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			edges = append(edges, [2]int{v, t})
			targets = append(targets, v, t)
		}
	}
	p, err := NewPattern(n, edges)
	if err != nil {
		panic(err)
	}
	return p
}

// Band returns a banded pattern: vertex i is connected to i±1..i±bw.
// Band matrices yield chain-like elimination trees.
func Band(n, bw int) *Pattern {
	edges := make([][2]int, 0, n*bw)
	for i := 0; i < n; i++ {
		for d := 1; d <= bw && i+d < n; d++ {
			edges = append(edges, [2]int{i, i + d})
		}
	}
	p, err := NewPattern(n, edges)
	if err != nil {
		panic(err)
	}
	return p
}
