package spm

import (
	"math/rand"
	"testing"
)

// denseSymbolic runs boolean Cholesky elimination on a dense copy of the
// permuted pattern and returns the factor pattern (lower triangle, diagonal
// included), the reference for EliminationTree and ColCounts.
func denseSymbolic(p *Pattern, perm Perm) [][]bool {
	n := p.Len()
	inv := perm.Inverse()
	b := make([][]bool, n)
	for i := range b {
		b[i] = make([]bool, n)
		b[i][i] = true
	}
	for v := 0; v < n; v++ {
		for _, u := range p.Adj(v) {
			i, j := inv[v], inv[u]
			b[i][j] = true
			b[j][i] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !b[i][k] {
				continue
			}
			for j := k + 1; j < n; j++ {
				if b[j][k] {
					b[i][j] = true
					b[j][i] = true
				}
			}
		}
	}
	return b
}

func denseEtree(b [][]bool) []int {
	n := len(b)
	parent := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		for i := j + 1; i < n; i++ {
			if b[i][j] {
				parent[j] = i
				break
			}
		}
	}
	return parent
}

func denseColCounts(b [][]bool) []int64 {
	n := len(b)
	counts := make([]int64, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if b[i][j] {
				counts[j]++
			}
		}
	}
	return counts
}

func randomPattern(rng *rand.Rand, trial int) *Pattern {
	switch trial % 4 {
	case 0:
		return Grid2D(2+rng.Intn(5), 2+rng.Intn(5))
	case 1:
		return RandomSym(rng, 5+rng.Intn(30), 2+3*rng.Float64())
	case 2:
		return PowerLaw(rng, 5+rng.Intn(30), 1+rng.Intn(3))
	default:
		return Band(5+rng.Intn(30), 1+rng.Intn(4))
	}
}

func orderings(p *Pattern, trial int) Perm {
	switch trial % 4 {
	case 0:
		return NaturalOrder(p.Len())
	case 1:
		return RCM(p)
	case 2:
		return NestedDissection(p)
	default:
		return MinimumDegree(p)
	}
}

// TestEliminationTreeMatchesDense is the central substrate test: Liu's
// elimination tree and the row-subtree column counts agree with dense
// boolean Cholesky on random patterns under all four orderings.
func TestEliminationTreeMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		p := randomPattern(rng, trial)
		perm := orderings(p, trial/4)
		if !perm.Valid(p.Len()) {
			t.Fatalf("trial %d: invalid permutation", trial)
		}
		b := denseSymbolic(p, perm)
		wantParent := denseEtree(b)
		gotParent := EliminationTree(p, perm)
		for j := range wantParent {
			if gotParent[j] != wantParent[j] {
				t.Fatalf("trial %d: etree parent[%d] = %d, want %d", trial, j, gotParent[j], wantParent[j])
			}
		}
		wantCounts := denseColCounts(b)
		gotCounts := ColCounts(p, perm, gotParent)
		for j := range wantCounts {
			if gotCounts[j] != wantCounts[j] {
				t.Fatalf("trial %d: colcount[%d] = %d, want %d", trial, j, gotCounts[j], wantCounts[j])
			}
		}
	}
}

func TestOrderingsArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		p := randomPattern(rng, trial)
		for _, perm := range []Perm{NaturalOrder(p.Len()), RCM(p), NestedDissection(p), MinimumDegree(p)} {
			if !perm.Valid(p.Len()) {
				t.Fatalf("trial %d: ordering is not a permutation", trial)
			}
		}
	}
}

func TestFillReducingOrderingsReduceFill(t *testing.T) {
	// On a 2D grid, nested dissection and minimum degree must produce far
	// less fill than the natural (band-like) order.
	p := Grid2D(15, 15)
	fill := func(perm Perm) int64 {
		parent := EliminationTree(p, perm)
		return Stats(ColCounts(p, perm, parent)).FactorNNZ
	}
	natural := fill(NaturalOrder(p.Len()))
	nd := fill(NestedDissection(p))
	md := fill(MinimumDegree(p))
	if nd >= natural {
		t.Errorf("nested dissection fill %d >= natural %d", nd, natural)
	}
	if md >= natural {
		t.Errorf("minimum degree fill %d >= natural %d", md, natural)
	}
}

func TestGridGenerators(t *testing.T) {
	g := Grid2D(4, 3)
	if g.Len() != 12 {
		t.Fatalf("Grid2D size %d", g.Len())
	}
	if g.NNZ() != 12+2*(3*3+4*2) {
		t.Errorf("Grid2D nnz = %d", g.NNZ())
	}
	if !g.Connected() {
		t.Errorf("grid not connected")
	}
	g3 := Grid3D(3, 3, 3)
	if g3.Len() != 27 || !g3.Connected() {
		t.Errorf("Grid3D wrong: len=%d", g3.Len())
	}
	if g3.MaxDegree() != 6 {
		t.Errorf("Grid3D interior degree = %d, want 6", g3.MaxDegree())
	}
}

func TestRandomGeneratorsConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	if p := RandomSym(rng, 200, 3); !p.Connected() {
		t.Errorf("RandomSym disconnected")
	}
	if p := PowerLaw(rng, 200, 2); !p.Connected() {
		t.Errorf("PowerLaw disconnected")
	}
	if p := Band(50, 2); !p.Connected() {
		t.Errorf("Band disconnected")
	}
}

func TestPowerLawHasHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := PowerLaw(rng, 2000, 2)
	if p.MaxDegree() < 20 {
		t.Errorf("power-law max degree = %d, expected a heavy tail", p.MaxDegree())
	}
}

func TestNewPatternErrors(t *testing.T) {
	if _, err := NewPattern(-1, nil); err == nil {
		t.Errorf("negative n accepted")
	}
	if _, err := NewPattern(3, [][2]int{{0, 3}}); err == nil {
		t.Errorf("out-of-range edge accepted")
	}
	if _, err := NewPattern(3, [][2]int{{1, 1}}); err == nil {
		t.Errorf("self-loop accepted")
	}
	p, err := NewPattern(3, [][2]int{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree(0) != 1 || p.Degree(1) != 1 {
		t.Errorf("duplicate edges not merged: deg0=%d deg1=%d", p.Degree(0), p.Degree(1))
	}
}

func TestAmalgamateIdentity(t *testing.T) {
	p := Grid2D(5, 5)
	perm := NestedDissection(p)
	parent := EliminationTree(p, perm)
	counts := ColCounts(p, perm, parent)
	nodes, nodeParent, err := Amalgamate(parent, counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != p.Len() {
		t.Fatalf("maxEta=1 produced %d nodes, want %d", len(nodes), p.Len())
	}
	for i, nd := range nodes {
		if nd.Eta != 1 {
			t.Fatalf("maxEta=1 node %d has η=%d", i, nd.Eta)
		}
		if nd.Mu != counts[nd.Highest] {
			t.Fatalf("node %d µ mismatch", i)
		}
	}
	// Structure must mirror the elimination tree.
	for i, nd := range nodes {
		pa := parent[nd.Highest]
		if pa == -1 {
			if nodeParent[i] != -1 {
				t.Fatalf("root node %d got parent %d", i, nodeParent[i])
			}
			continue
		}
		if nodes[nodeParent[i]].Highest != pa {
			t.Fatalf("node %d parent mismatch", i)
		}
	}
}

func TestAmalgamateInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for trial := 0; trial < 40; trial++ {
		p := randomPattern(rng, trial)
		perm := orderings(p, trial)
		parent := EliminationTree(p, perm)
		counts := ColCounts(p, perm, parent)
		for _, eta := range []int{1, 2, 4, 16} {
			nodes, nodeParent, err := Amalgamate(parent, counts, eta)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for i, nd := range nodes {
				total += nd.Eta
				if nd.Eta > eta {
					t.Fatalf("η=%d exceeds maxEta=%d", nd.Eta, eta)
				}
				if nodeParent[i] != -1 && nodeParent[i] <= i {
					t.Fatalf("assembly nodes not topologically ordered")
				}
			}
			if total != p.Len() {
				t.Fatalf("Ση = %d, want %d", total, p.Len())
			}
		}
	}
}

func TestAmalgamateRejectsBadInput(t *testing.T) {
	if _, _, err := Amalgamate([]int{-1}, []int64{1, 2}, 2); err == nil {
		t.Errorf("mismatched lengths accepted")
	}
	if _, _, err := Amalgamate([]int{-1}, []int64{1}, 0); err == nil {
		t.Errorf("maxEta=0 accepted")
	}
}

func TestAssemblyTreePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 30; trial++ {
		p := randomPattern(rng, trial)
		perm := orderings(p, trial)
		for _, eta := range []int{1, 4} {
			tr, err := AssemblyTree(p, perm, eta)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() == 0 {
				t.Fatalf("empty assembly tree")
			}
			for i := 0; i < tr.Len(); i++ {
				if tr.F(i) < 0 || tr.N(i) < 0 || tr.W(i) < 0 {
					t.Fatalf("negative weights at %d", i)
				}
			}
		}
	}
}

func TestAssemblyTreeCostModel(t *testing.T) {
	// Chain matrix 0-1-2 in natural order: column counts are 2,2,1 and the
	// elimination tree is the chain 0->1->2. With maxEta=1:
	// node µ=2: n = 1+2·1 = 3, f = 1, w = 2/3+1+1 = 8/3.
	p, err := NewPattern(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := AssemblyTree(p, NaturalOrder(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("tree size %d", tr.Len())
	}
	leaf := 0 // position 0 is built first and is the deepest node
	if tr.N(leaf) != 3 || tr.F(leaf) != 1 {
		t.Errorf("leaf n=%d f=%d, want 3, 1", tr.N(leaf), tr.F(leaf))
	}
	if w := tr.W(leaf); w < 8.0/3.0-1e-9 || w > 8.0/3.0+1e-9 {
		t.Errorf("leaf w=%g, want 8/3", w)
	}
	root := tr.Root()
	if tr.N(root) != 1 || tr.F(root) != 0 {
		t.Errorf("root n=%d f=%d, want 1, 0", tr.N(root), tr.F(root))
	}
}

func TestAssemblyTreeInvalidPerm(t *testing.T) {
	p := Grid2D(3, 3)
	if _, err := AssemblyTree(p, Perm{0, 1}, 1); err == nil {
		t.Errorf("invalid permutation accepted")
	}
}

func TestStats(t *testing.T) {
	s := Stats([]int64{3, 2, 1})
	if s.FactorNNZ != 6 || s.Flops != 14 || s.MaxCount != 3 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestPermInverse(t *testing.T) {
	p := Perm{2, 0, 1}
	inv := p.Inverse()
	for k, v := range p {
		if inv[v] != k {
			t.Fatalf("inverse wrong at %d", k)
		}
	}
	if (Perm{0, 0, 1}).Valid(3) {
		t.Errorf("duplicate perm accepted")
	}
	if (Perm{0, 1}).Valid(3) {
		t.Errorf("short perm accepted")
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	p := RandomSym(rng, 150, 3)
	bandwidth := func(perm Perm) int {
		inv := perm.Inverse()
		bw := 0
		for v := 0; v < p.Len(); v++ {
			for _, u := range p.Adj(v) {
				if d := inv[v] - inv[int(u)]; d > bw {
					bw = d
				}
			}
		}
		return bw
	}
	if rcm, nat := bandwidth(RCM(p)), bandwidth(NaturalOrder(p.Len())); rcm >= nat {
		t.Errorf("RCM bandwidth %d >= natural %d", rcm, nat)
	}
}

// TestColStructsMatchesDense verifies the full symbolic structure against
// dense boolean elimination (ColStructs is the basis of the numeric
// multifrontal engine).
func TestColStructsMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 60; trial++ {
		p := randomPattern(rng, trial)
		perm := orderings(p, trial)
		b := denseSymbolic(p, perm)
		parent := EliminationTree(p, perm)
		structs := ColStructs(p, perm, parent)
		for j := 0; j < p.Len(); j++ {
			var want []int32
			for i := j + 1; i < p.Len(); i++ {
				if b[i][j] {
					want = append(want, int32(i))
				}
			}
			if len(want) != len(structs[j]) {
				t.Fatalf("trial %d: column %d has %d rows, want %d", trial, j, len(structs[j]), len(want))
			}
			for k := range want {
				if structs[j][k] != want[k] {
					t.Fatalf("trial %d: column %d row %d = %d, want %d", trial, j, k, structs[j][k], want[k])
				}
			}
		}
	}
}
