// Package spm is the sparse-matrix substrate of the reproduction: it
// synthesizes the assembly trees that the paper obtains from the University
// of Florida Sparse Matrix Collection. It provides symmetric sparsity
// patterns and generators, fill-reducing orderings (nested dissection,
// minimum degree, reverse Cuthill-McKee), Liu's elimination-tree algorithm,
// symbolic Cholesky factorization (per-column factor counts µ), and relaxed
// node amalgamation producing assembly trees weighted with the paper's
// multifrontal cost model (§6.2):
//
//	n_i = η² + 2η(µ−1)
//	w_i = 2/3·η³ + η²(µ−1) + η(µ−1)²
//	f_i = (µ−1)²
//
// where η is the number of amalgamated columns of a node and µ the factor
// column count of its highest column.
package spm

import (
	"fmt"
	"sort"
)

// Pattern is the sparsity pattern of a structurally symmetric matrix,
// viewed as an undirected graph on vertices 0..n-1 without self-loops.
type Pattern struct {
	n   int
	adj [][]int32 // sorted neighbor lists; symmetric
}

// NewPattern builds a pattern from undirected edges. Self-loops are
// rejected, duplicate edges are merged.
func NewPattern(n int, edges [][2]int) (*Pattern, error) {
	if n < 0 {
		return nil, fmt.Errorf("spm: negative dimension %d", n)
	}
	p := &Pattern{n: n, adj: make([][]int32, n)}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("spm: edge (%d,%d) out of range [0,%d)", a, b, n)
		}
		if a == b {
			return nil, fmt.Errorf("spm: self-loop on %d", a)
		}
		p.adj[a] = append(p.adj[a], int32(b))
		p.adj[b] = append(p.adj[b], int32(a))
	}
	p.normalize()
	return p, nil
}

// normalize sorts the neighbor lists and removes duplicates.
func (p *Pattern) normalize() {
	for v := range p.adj {
		l := p.adj[v]
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
		out := l[:0]
		for i, x := range l {
			if i == 0 || x != l[i-1] {
				out = append(out, x)
			}
		}
		p.adj[v] = out
	}
}

// Len returns the number of vertices (matrix dimension).
func (p *Pattern) Len() int { return p.n }

// Adj returns the sorted neighbors of v; the slice is owned by the pattern.
func (p *Pattern) Adj(v int) []int32 { return p.adj[v] }

// Degree returns the number of neighbors of v.
func (p *Pattern) Degree(v int) int { return len(p.adj[v]) }

// NNZ returns the number of structural nonzeros of the full symmetric
// matrix, diagonal included.
func (p *Pattern) NNZ() int {
	nz := p.n
	for _, l := range p.adj {
		nz += len(l)
	}
	return nz
}

// NNZPerRow returns the average nonzeros per row, diagonal included (the
// matrix-selection statistic of paper §6.2).
func (p *Pattern) NNZPerRow() float64 {
	if p.n == 0 {
		return 0
	}
	return float64(p.NNZ()) / float64(p.n)
}

// MaxDegree returns the largest vertex degree.
func (p *Pattern) MaxDegree() int {
	m := 0
	for _, l := range p.adj {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// Connected reports whether the graph of the pattern is connected
// (vacuously true for n <= 1).
func (p *Pattern) Connected() bool {
	if p.n <= 1 {
		return true
	}
	seen := make([]bool, p.n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range p.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count == p.n
}

// Perm is a fill-reducing ordering: Perm[k] is the original vertex
// eliminated at step k.
type Perm []int

// Inverse returns inv with inv[Perm[k]] = k.
func (p Perm) Inverse() []int {
	inv := make([]int, len(p))
	for k, v := range p {
		inv[v] = k
	}
	return inv
}

// Valid reports whether p is a permutation of 0..n-1.
func (p Perm) Valid(n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// NaturalOrder returns the identity ordering.
func NaturalOrder(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}
