package spm

import (
	"fmt"

	"treesched/internal/tree"
)

// AssemblyNode is one amalgamated node of an assembly tree.
type AssemblyNode struct {
	Eta     int   // η: number of amalgamated columns
	Mu      int64 // µ: factor column count of the highest column
	Highest int   // position of the highest amalgamated column
}

// Amalgamate performs the relaxed node amalgamation of paper §6.2: walking
// the elimination tree bottom-up, a node is merged into its parent whenever
// the combined node would contain at most maxEta original columns. maxEta=1
// leaves the elimination tree untouched; the paper uses 1, 2, 4 and 16.
// parent and counts are in eliminated positions (see EliminationTree); the
// returned nodes are in topological order (children before parents) and
// nodeParent[i] indexes into nodes (-1 for roots).
func Amalgamate(parent []int, counts []int64, maxEta int) (nodes []AssemblyNode, nodeParent []int, err error) {
	n := len(parent)
	if len(counts) != n {
		return nil, nil, fmt.Errorf("spm: %d counts for %d columns", len(counts), n)
	}
	if maxEta < 1 {
		return nil, nil, fmt.Errorf("spm: maxEta must be >= 1, got %d", maxEta)
	}
	// Union-find on positions; the representative tracks the supernode.
	uf := make([]int, n)
	size := make([]int, n)
	for i := range uf {
		uf[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]]
			x = uf[x]
		}
		return x
	}
	// Positions are a topological order of the elimination tree (parents
	// have higher positions), so a single ascending sweep visits children
	// before parents.
	for j := 0; j < n; j++ {
		pa := parent[j]
		if pa == -1 {
			continue
		}
		rj, rp := find(j), find(pa)
		if rj != rp && size[rj]+size[rp] <= maxEta {
			// Merge the child's supernode into the parent's; keep the
			// parent representative (it holds the highest column).
			uf[rj] = rp
			size[rp] += size[rj]
		}
	}
	// The representative of each supernode is its highest position: merges
	// always point child representatives at parent representatives.
	index := make(map[int]int, n)
	for j := 0; j < n; j++ {
		r := find(j)
		if r == j {
			index[j] = len(nodes)
			nodes = append(nodes, AssemblyNode{Eta: size[j], Mu: counts[j], Highest: j})
		}
	}
	nodeParent = make([]int, len(nodes))
	for i, nd := range nodes {
		pa := parent[nd.Highest]
		if pa == -1 {
			nodeParent[i] = -1
			continue
		}
		nodeParent[i] = index[find(pa)]
	}
	return nodes, nodeParent, nil
}

// TreeFromAssembly converts an assembly forest into a single task tree
// weighted with the paper's multifrontal cost model. If the forest has
// several roots (reducible matrices), a zero-cost super-root joins them.
func TreeFromAssembly(nodes []AssemblyNode, nodeParent []int) (*tree.Tree, error) {
	roots := 0
	for _, p := range nodeParent {
		if p == -1 {
			roots++
		}
	}
	var b tree.Builder
	offset := 0
	if roots != 1 {
		b.Add(tree.None, 0, 0, 0) // super-root
		offset = 1
	}
	for i, nd := range nodes {
		eta := float64(nd.Eta)
		mu1 := float64(nd.Mu - 1)
		w := 2.0/3.0*eta*eta*eta + eta*eta*mu1 + eta*mu1*mu1
		ni := int64(nd.Eta)*int64(nd.Eta) + 2*int64(nd.Eta)*(nd.Mu-1)
		fi := (nd.Mu - 1) * (nd.Mu - 1)
		pa := tree.None
		if nodeParent[i] != -1 {
			pa = nodeParent[i] + offset
		} else if roots != 1 {
			pa = 0
		}
		if got := b.Add(pa, w, ni, fi); got != i+offset {
			return nil, fmt.Errorf("spm: assembly node ids out of sync at %d", i)
		}
	}
	return b.Build()
}

// AssemblyTree runs the full pipeline: elimination tree, column counts,
// amalgamation with maxEta, and conversion to a weighted task tree.
func AssemblyTree(p *Pattern, perm Perm, maxEta int) (*tree.Tree, error) {
	if !perm.Valid(p.Len()) {
		return nil, fmt.Errorf("spm: invalid permutation")
	}
	parent := EliminationTree(p, perm)
	counts := ColCounts(p, perm, parent)
	nodes, nodeParent, err := Amalgamate(parent, counts, maxEta)
	if err != nil {
		return nil, err
	}
	return TreeFromAssembly(nodes, nodeParent)
}
