package spm

import (
	"math/rand"
	"testing"
)

func TestFundamentalSupernodesBandMatrix(t *testing.T) {
	// A band matrix in natural order factors without fill into long runs:
	// counts are bw+1 except near the end, so supernodes stay small until
	// the trailing dense block, which collapses into one supernode.
	p := Band(20, 2)
	perm := NaturalOrder(p.Len())
	parent := EliminationTree(p, perm)
	counts := ColCounts(p, perm, parent)
	nodes, nodeParent := FundamentalSupernodes(parent, counts)
	total := 0
	for i, nd := range nodes {
		total += nd.Eta
		if nodeParent[i] != -1 && nodeParent[i] <= i {
			t.Fatalf("supernodes not topologically ordered")
		}
	}
	if total != p.Len() {
		t.Fatalf("Ση = %d, want %d", total, p.Len())
	}
	// The last bw+1 columns form one fundamental supernode (counts bw+1..1).
	last := nodes[len(nodes)-1]
	if last.Eta < 3 {
		t.Errorf("trailing supernode η = %d, want >= 3", last.Eta)
	}
}

func TestFundamentalSupernodesChain(t *testing.T) {
	// A tridiagonal (chain) matrix: counts are 2,2,...,2,1; only the last
	// two columns merge (counts must drop by exactly one).
	p := Band(10, 1)
	perm := NaturalOrder(p.Len())
	parent := EliminationTree(p, perm)
	counts := ColCounts(p, perm, parent)
	nodes, _ := FundamentalSupernodes(parent, counts)
	if len(nodes) != 9 {
		t.Fatalf("chain supernodes = %d, want 9", len(nodes))
	}
	if last := nodes[len(nodes)-1]; last.Eta != 2 {
		t.Fatalf("trailing supernode η = %d, want 2", last.Eta)
	}
}

func TestFundamentalSupernodesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		p := randomPattern(rng, trial)
		perm := orderings(p, trial)
		parent := EliminationTree(p, perm)
		counts := ColCounts(p, perm, parent)
		nodes, nodeParent := FundamentalSupernodes(parent, counts)
		total := 0
		for i, nd := range nodes {
			total += nd.Eta
			// Columns of a supernode are consecutive positions ending at
			// Highest.
			lo := nd.Highest - nd.Eta + 1
			if lo < 0 {
				t.Fatalf("supernode %d extends below position 0", i)
			}
			for j := lo; j < nd.Highest; j++ {
				if parent[j] != j+1 {
					t.Fatalf("supernode %d is not a parent-chain at %d", i, j)
				}
				if counts[j] != counts[j+1]+1 {
					t.Fatalf("supernode %d counts not decrementing at %d", i, j)
				}
			}
			if nd.Mu != counts[nd.Highest] {
				t.Fatalf("supernode %d µ mismatch", i)
			}
		}
		if total != p.Len() {
			t.Fatalf("Ση = %d, want %d", total, p.Len())
		}
		_ = nodeParent
	}
}

func TestSupernodeTreePipeline(t *testing.T) {
	p := Grid2D(12, 12)
	perm := NestedDissection(p)
	tr, sn, err := SupernodeTree(p, perm)
	if err != nil {
		t.Fatal(err)
	}
	if sn <= 0 || sn > p.Len() {
		t.Fatalf("supernode count %d out of range", sn)
	}
	if tr.Len() < sn {
		t.Fatalf("tree smaller than supernode count")
	}
	// Supernodes must compress the tree relative to the raw etree.
	raw, err := AssemblyTree(p, perm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() >= raw.Len() {
		t.Errorf("supernode tree (%d) not smaller than etree (%d)", tr.Len(), raw.Len())
	}
}

func TestFundamentalSupernodesEmpty(t *testing.T) {
	nodes, nodeParent := FundamentalSupernodes(nil, nil)
	if nodes != nil || nodeParent != nil {
		t.Fatalf("empty input should give empty output")
	}
}
