package spm

import "treesched/internal/tree"

// FundamentalSupernodes partitions the columns into fundamental supernodes:
// maximal runs of consecutively-eliminated columns where each column is the
// only child of the next and the factor column counts decrease by exactly
// one along the run. Within such a run the columns share one dense frontal
// block, the classic starting point of supernodal multifrontal methods;
// relaxed amalgamation (Amalgamate) merges further. The return convention
// matches Amalgamate: nodes in topological order, nodeParent indexes nodes.
func FundamentalSupernodes(parent []int, counts []int64) (nodes []AssemblyNode, nodeParent []int) {
	n := len(parent)
	if n == 0 {
		return nil, nil
	}
	childCount := make([]int, n)
	for j := 0; j < n; j++ {
		if parent[j] != -1 {
			childCount[parent[j]]++
		}
	}
	// Column j continues the supernode of j-1 iff j is the parent of j-1,
	// j-1 is its only child, and the column count shrinks by one.
	index := make([]int, n)
	for j := 0; j < n; j++ {
		cont := j > 0 && parent[j-1] == j && childCount[j] == 1 && counts[j] == counts[j-1]-1
		if !cont {
			index[j] = len(nodes)
			nodes = append(nodes, AssemblyNode{Eta: 1, Mu: counts[j], Highest: j})
			continue
		}
		sn := index[j-1]
		index[j] = sn
		nodes[sn].Eta++
		nodes[sn].Mu = counts[j]
		nodes[sn].Highest = j
	}
	nodeParent = make([]int, len(nodes))
	for i := range nodes {
		pa := parent[nodes[i].Highest]
		if pa == -1 {
			nodeParent[i] = -1
		} else {
			nodeParent[i] = index[pa]
		}
	}
	return nodes, nodeParent
}

// SupernodeTree builds the task tree of the fundamental-supernode assembly
// tree of p under perm, weighted with the paper's cost model. It returns
// the tree and the number of supernodes.
func SupernodeTree(p *Pattern, perm Perm) (*tree.Tree, int, error) {
	parent := EliminationTree(p, perm)
	counts := ColCounts(p, perm, parent)
	nodes, nodeParent := FundamentalSupernodes(parent, counts)
	t, err := TreeFromAssembly(nodes, nodeParent)
	if err != nil {
		return nil, 0, err
	}
	return t, len(nodes), nil
}
