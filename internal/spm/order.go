package spm

import (
	"container/heap"
	"sort"
)

// RCM returns the reverse Cuthill-McKee ordering: a BFS from a
// pseudo-peripheral vertex with neighbors visited by increasing degree,
// reversed. It reduces bandwidth and gives chain-like elimination trees.
func RCM(p *Pattern) Perm {
	n := p.Len()
	order := make(Perm, 0, n)
	visited := make([]bool, n)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		s := pseudoPeripheral(p, start)
		visited[s] = true
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := make([]int, 0, p.Degree(v))
			for _, u := range p.Adj(v) {
				if !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, int(u))
				}
			}
			sort.Slice(nbrs, func(a, b int) bool { return p.Degree(nbrs[a]) < p.Degree(nbrs[b]) })
			queue = append(queue, nbrs...)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// pseudoPeripheral runs the classic double-BFS heuristic from start and
// returns a vertex of nearly maximal eccentricity within its component.
func pseudoPeripheral(p *Pattern, start int) int {
	far, _ := bfsFarthest(p, start)
	far2, _ := bfsFarthest(p, far)
	return far2
}

func bfsFarthest(p *Pattern, start int) (farthest int, dist []int) {
	n := p.Len()
	dist = make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	farthest = start
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range p.Adj(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				if dist[u] > dist[farthest] {
					farthest = int(u)
				}
				queue = append(queue, int(u))
			}
		}
	}
	return farthest, dist
}

// NestedDissection returns a nested-dissection ordering built from
// recursive BFS level-set separators: the separator vertices are eliminated
// last, the two halves recursively first. On grid graphs this approximates
// the geometric nested dissection used (via MeTiS) in the paper, producing
// the wide and shallow elimination trees typical of discretized PDEs.
func NestedDissection(p *Pattern) Perm {
	n := p.Len()
	order := make(Perm, 0, n)
	vertices := make([]int, n)
	for i := range vertices {
		vertices[i] = i
	}
	var rec func(vs []int)
	rec = func(vs []int) {
		if len(vs) <= 8 {
			// Small blocks: minimum degree within the subgraph is overkill;
			// any order works, keep index order.
			order = append(order, vs...)
			return
		}
		inSet := make(map[int]bool, len(vs))
		for _, v := range vs {
			inSet[v] = true
		}
		// BFS level structure of the component of vs[0] restricted to vs.
		sep, partA, partB := levelSeparator(p, vs, inSet)
		if len(partA) == 0 && len(partB) == 0 {
			order = append(order, sep...)
			return
		}
		rec(partA)
		rec(partB)
		order = append(order, sep...)
	}
	rec(vertices)
	return order
}

// levelSeparator splits vs into (separator, halfA, halfB) using the middle
// BFS level from a pseudo-peripheral vertex of the induced subgraph.
// Vertices of vs unreachable from the BFS start are placed in halfA.
func levelSeparator(p *Pattern, vs []int, inSet map[int]bool) (sep, a, b []int) {
	dist := make(map[int]int, len(vs))
	start := vs[0]
	// Double BFS within the subgraph for a deep level structure.
	for pass := 0; pass < 2; pass++ {
		for k := range dist {
			delete(dist, k)
		}
		dist[start] = 0
		queue := []int{start}
		last := start
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range p.Adj(v) {
				ui := int(u)
				if !inSet[ui] {
					continue
				}
				if _, ok := dist[ui]; !ok {
					dist[ui] = dist[v] + 1
					queue = append(queue, ui)
					last = ui
				}
			}
		}
		start = last
	}
	maxD := 0
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 2 {
		// No usable level structure (clique-like or tiny diameter):
		// eliminate everything here.
		return vs, nil, nil
	}
	mid := maxD / 2
	for _, v := range vs {
		d, ok := dist[v]
		switch {
		case !ok: // disconnected from start within vs
			a = append(a, v)
		case d == mid:
			sep = append(sep, v)
		case d < mid:
			a = append(a, v)
		default:
			b = append(b, v)
		}
	}
	return sep, a, b
}

// mdItem is a vertex in the minimum-degree priority queue.
type mdItem struct {
	deg, v int
}

type mdHeap []mdItem

func (h mdHeap) Len() int { return len(h) }
func (h mdHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}
func (h mdHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mdHeap) Push(x interface{}) { *h = append(*h, x.(mdItem)) }
func (h *mdHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MinimumDegree returns a minimum-degree ordering computed on the explicit
// elimination graph (eliminating a vertex pairwise-connects its remaining
// neighbors), with a lazy-deletion heap for degree selection. It stands in
// for AMD in the paper's pipeline; on irregular and power-law graphs it
// yields the deep, high-degree-variance assembly trees of the dataset.
func MinimumDegree(p *Pattern) Perm {
	n := p.Len()
	adj := make([]map[int32]struct{}, n)
	for v := 0; v < n; v++ {
		m := make(map[int32]struct{}, p.Degree(v))
		for _, u := range p.Adj(v) {
			m[u] = struct{}{}
		}
		adj[v] = m
	}
	h := make(mdHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, mdItem{len(adj[v]), v})
	}
	heap.Init(&h)
	eliminated := make([]bool, n)
	order := make(Perm, 0, n)
	for len(order) < n {
		it := heap.Pop(&h).(mdItem)
		v := it.v
		if eliminated[v] || it.deg != len(adj[v]) {
			continue // stale heap entry
		}
		eliminated[v] = true
		order = append(order, v)
		nbrs := make([]int32, 0, len(adj[v]))
		for u := range adj[v] {
			nbrs = append(nbrs, u)
		}
		// Remove v and clique-connect its neighborhood.
		for _, u := range nbrs {
			delete(adj[u], int32(v))
		}
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				adj[a][b] = struct{}{}
				adj[b][a] = struct{}{}
			}
		}
		adj[v] = nil
		for _, u := range nbrs {
			heap.Push(&h, mdItem{len(adj[u]), int(u)})
		}
	}
	return order
}
