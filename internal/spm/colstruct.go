package spm

// ColStructs computes the full symbolic structure of the Cholesky factor:
// for every column j (in eliminated positions), the sorted list of
// below-diagonal row positions i > j with L[i][j] structurally nonzero.
// len(ColStructs(...)[j]) + 1 == ColCounts(...)[j]. Runs in O(|L|) time and
// memory via the same row-subtree traversal as ColCounts; intended for the
// numeric multifrontal engine and for moderate problem sizes.
func ColStructs(p *Pattern, perm Perm, parent []int) [][]int32 {
	n := p.Len()
	inv := perm.Inverse()
	structs := make([][]int32, n)
	mark := make([]int, n)
	for j := 0; j < n; j++ {
		mark[j] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = i
		for _, u := range p.Adj(perm[i]) {
			k := inv[u]
			if k >= i {
				continue
			}
			for j := k; mark[j] != i; j = parent[j] {
				structs[j] = append(structs[j], int32(i)) // L[i][j] != 0
				mark[j] = i
			}
		}
	}
	// Rows are appended in increasing i, so each list is already sorted.
	return structs
}
