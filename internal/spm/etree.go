package spm

// EliminationTree computes the elimination tree of the matrix pattern p
// under the ordering perm, using Liu's algorithm with path compression.
// The result is expressed in eliminated positions: parent[k] is the
// position of the parent of the column eliminated at step k, or -1 for a
// root (the forest has one root per connected component; parents always
// have higher positions).
func EliminationTree(p *Pattern, perm Perm) []int {
	n := p.Len()
	inv := perm.Inverse()
	parent := make([]int, n)
	anc := make([]int, n) // virtual forest with path compression
	for j := 0; j < n; j++ {
		parent[j] = -1
		anc[j] = -1
	}
	for j := 0; j < n; j++ {
		for _, u := range p.Adj(perm[j]) {
			i := inv[u]
			if i >= j {
				continue
			}
			// Climb from i to its current root, compressing onto j.
			for i != -1 && i != j {
				next := anc[i]
				anc[i] = j
				if next == -1 {
					parent[i] = j
				}
				i = next
			}
		}
	}
	return parent
}

// ColCounts computes µ, the number of nonzeros of each column of the
// Cholesky factor L (diagonal included), by the row-subtree traversal: the
// nonzeros of row i of L are exactly the nodes on the elimination-tree
// paths from the row's lower-triangular entries up to i. Positions refer to
// the ordering perm; counts[k] belongs to the column eliminated at step k.
// Runs in O(|L|).
func ColCounts(p *Pattern, perm Perm, parent []int) []int64 {
	n := p.Len()
	inv := perm.Inverse()
	counts := make([]int64, n)
	mark := make([]int, n)
	for j := 0; j < n; j++ {
		counts[j] = 1 // diagonal
		mark[j] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = i
		for _, u := range p.Adj(perm[i]) {
			k := inv[u]
			if k >= i {
				continue
			}
			for j := k; mark[j] != i; j = parent[j] {
				counts[j]++ // L[i][j] is structurally nonzero
				mark[j] = i
			}
		}
	}
	return counts
}

// FactorStats summarizes a symbolic factorization.
type FactorStats struct {
	FactorNNZ int64   // Σ µ: nonzeros of L
	Flops     float64 // Σ µ²: multiply-add count of the factorization
	MaxCount  int64   // largest µ
}

// Stats aggregates the column counts.
func Stats(counts []int64) FactorStats {
	var s FactorStats
	for _, c := range counts {
		s.FactorNNZ += c
		s.Flops += float64(c) * float64(c)
		if c > s.MaxCount {
			s.MaxCount = c
		}
	}
	return s
}
