package tree

import (
	"encoding/json"
	"fmt"
)

// treeJSON is the wire form of a Tree used by the JSON codec and the
// scheduling service. parent[i] is the parent of node i, or -1 (None) for
// the root. n and f may be omitted, in which case they default to zero
// (the pure makespan model).
type treeJSON struct {
	Parent []int     `json:"parent"`
	W      []float64 `json:"w"`
	N      []int64   `json:"n,omitempty"`
	F      []int64   `json:"f,omitempty"`
}

// MarshalJSON encodes the tree as {"parent":[...],"w":[...],"n":[...],"f":[...]}.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{Parent: t.parent, W: t.w, N: t.n, F: t.f})
}

// UnmarshalJSON decodes the format produced by MarshalJSON and validates it
// with the same rules as New. Absent n/f arrays default to all-zero.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var tj treeJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return fmt.Errorf("tree: json: %w", err)
	}
	nn := len(tj.Parent)
	if tj.N == nil {
		tj.N = make([]int64, nn)
	}
	if tj.F == nil {
		tj.F = make([]int64, nn)
	}
	nt, err := New(tj.Parent, tj.W, tj.N, tj.F)
	if err != nil {
		return err
	}
	*t = *nt
	return nil
}
