package tree

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzDecode hardens the tree parser: arbitrary input must never panic,
// and successfully decoded trees must re-encode to a decodable equivalent.
func FuzzDecode(f *testing.F) {
	f.Add("2\n0 -1 1 0 1\n1 0 1 0 1\n")
	f.Add("1\n0 -1 0.5 3 4\n")
	f.Add("# comment\n\n3\n2 1 1 0 1\n1 0 1 0 1\n0 -1 1 0 1\n")
	f.Add("")
	f.Add("-1\n")
	f.Add("2\n0 1 1 0 1\n1 0 1 0 1\n") // cycle
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encode of decoded tree failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip size %d != %d", back.Len(), tr.Len())
		}
	})
}

// FuzzTreeJSON hardens the JSON codec the service and the forest trace
// format ride on: arbitrary input must never panic; any input that
// decodes must re-encode and decode back to a canonically identical tree;
// and the textual codec's DecodeMax cap must hold exactly at the tree's
// size and reject one below it.
func FuzzTreeJSON(f *testing.F) {
	f.Add([]byte(`{"parent":[-1,0,0],"w":[1,2,3],"n":[0,1,0],"f":[1,2,3]}`))
	f.Add([]byte(`{"parent":[-1],"w":[0.5]}`)) // n and f default to zero
	f.Add([]byte(`{"parent":[2,0,-1],"w":[1,1,1],"f":[9223372036854775807,1,1]}`))
	f.Add([]byte(`{"parent":[0],"w":[1]}`)) // self-parent
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, in []byte) {
		var tr Tree
		if err := json.Unmarshal(in, &tr); err != nil {
			return
		}
		b, err := json.Marshal(&tr)
		if err != nil {
			t.Fatalf("re-marshal of decoded tree failed: %v", err)
		}
		var back Tree
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("json round trip failed: %v", err)
		}
		if back.CanonicalHash() != tr.CanonicalHash() {
			t.Fatalf("json round trip changed the canonical hash")
		}
		// Cross-codec: the textual encoding must round-trip under a
		// DecodeMax cap of exactly Len, and fail one below it.
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("text encode failed: %v", err)
		}
		text := buf.Bytes()
		viaText, err := DecodeMax(bytes.NewReader(text), tr.Len())
		if err != nil {
			t.Fatalf("DecodeMax at exact size failed: %v", err)
		}
		if viaText.CanonicalHash() != tr.CanonicalHash() {
			t.Fatalf("text round trip changed the canonical hash")
		}
		if tr.Len() > 0 {
			if _, err := DecodeMax(bytes.NewReader(text), tr.Len()-1); !errors.Is(err, ErrTooLarge) {
				t.Fatalf("DecodeMax below size: got %v, want ErrTooLarge", err)
			}
		}
	})
}

// FuzzNew hardens the structural validator: arbitrary parent vectors must
// either produce a valid tree or an error, never a panic or an invalid
// topological order.
func FuzzNew(f *testing.F) {
	f.Add([]byte{255, 0, 0})    // root + two children
	f.Add([]byte{1, 2, 3, 255}) // chain ending at a root
	f.Add([]byte{1, 0})         // 2-cycle
	f.Add([]byte{})             // empty
	f.Fuzz(func(t *testing.T, raw []byte) {
		parent := make([]int, len(raw))
		for i, b := range raw {
			if b == 255 {
				parent[i] = None
			} else {
				parent[i] = int(b) % (len(raw) + 1)
			}
		}
		w := make([]float64, len(raw))
		n := make([]int64, len(raw))
		fs := make([]int64, len(raw))
		for i := range w {
			w[i] = 1
			fs[i] = 1
		}
		tr, err := New(parent, w, n, fs)
		if err != nil {
			return
		}
		if !tr.IsTopological(tr.TopOrder()) {
			t.Fatalf("accepted tree has invalid topological order")
		}
	})
}
