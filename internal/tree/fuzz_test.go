package tree

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the tree parser: arbitrary input must never panic,
// and successfully decoded trees must re-encode to a decodable equivalent.
func FuzzDecode(f *testing.F) {
	f.Add("2\n0 -1 1 0 1\n1 0 1 0 1\n")
	f.Add("1\n0 -1 0.5 3 4\n")
	f.Add("# comment\n\n3\n2 1 1 0 1\n1 0 1 0 1\n0 -1 1 0 1\n")
	f.Add("")
	f.Add("-1\n")
	f.Add("2\n0 1 1 0 1\n1 0 1 0 1\n") // cycle
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encode of decoded tree failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip size %d != %d", back.Len(), tr.Len())
		}
	})
}

// FuzzNew hardens the structural validator: arbitrary parent vectors must
// either produce a valid tree or an error, never a panic or an invalid
// topological order.
func FuzzNew(f *testing.F) {
	f.Add([]byte{255, 0, 0})    // root + two children
	f.Add([]byte{1, 2, 3, 255}) // chain ending at a root
	f.Add([]byte{1, 0})         // 2-cycle
	f.Add([]byte{})             // empty
	f.Fuzz(func(t *testing.T, raw []byte) {
		parent := make([]int, len(raw))
		for i, b := range raw {
			if b == 255 {
				parent[i] = None
			} else {
				parent[i] = int(b) % (len(raw) + 1)
			}
		}
		w := make([]float64, len(raw))
		n := make([]int64, len(raw))
		fs := make([]int64, len(raw))
		for i := range w {
			w[i] = 1
			fs[i] = 1
		}
		tr, err := New(parent, w, n, fs)
		if err != nil {
			return
		}
		if !tr.IsTopological(tr.TopOrder()) {
			t.Fatalf("accepted tree has invalid topological order")
		}
	})
}
