package tree

import (
	"math/rand"
)

// WeightSpec controls how random node weights are drawn by the generators.
// Zero-valued fields fall back to the pebble-game model (w=1, n=0, f=1).
type WeightSpec struct {
	WMin, WMax float64 // processing times drawn uniformly from [WMin, WMax]
	NMin, NMax int64   // execution-file sizes drawn uniformly from [NMin, NMax]
	FMin, FMax int64   // output-file sizes drawn uniformly from [FMin, FMax]
}

// PebbleWeights is the unit-weight pebble-game model of paper §4:
// f_i = 1, n_i = 0, w_i = 1 for every node.
var PebbleWeights = WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 0, FMin: 1, FMax: 1}

func (s WeightSpec) draw(rng *rand.Rand, n int) (w []float64, nn, f []int64) {
	if s == (WeightSpec{}) {
		s = PebbleWeights
	}
	w = make([]float64, n)
	nn = make([]int64, n)
	f = make([]int64, n)
	for i := 0; i < n; i++ {
		w[i] = uniformF(rng, s.WMin, s.WMax)
		nn[i] = uniformI(rng, s.NMin, s.NMax)
		f[i] = uniformI(rng, s.FMin, s.FMax)
	}
	return w, nn, f
}

func uniformF(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

func uniformI(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Int63n(hi-lo+1)
}

// RandomAttachment generates a random tree of n nodes by uniform attachment:
// node i (i>0) picks its parent uniformly among nodes 0..i-1. Node 0 is the
// root. This yields trees of expected height Θ(log n).
func RandomAttachment(rng *rand.Rand, n int, ws WeightSpec) *Tree {
	parent := make([]int, n)
	parent[0] = None
	for i := 1; i < n; i++ {
		parent[i] = rng.Intn(i)
	}
	w, nn, f := ws.draw(rng, n)
	return MustNew(parent, w, nn, f)
}

// RandomPrufer generates a uniformly random labeled tree on n nodes via a
// Prüfer sequence, rooted at node 0 (edges oriented toward the root).
// Uniform random trees have expected height Θ(√n) — deeper than attachment
// trees, shallower than chains.
func RandomPrufer(rng *rand.Rand, n int, ws WeightSpec) *Tree {
	if n == 1 {
		w, nn, f := ws.draw(rng, 1)
		return MustNew([]int{None}, w, nn, f)
	}
	if n == 2 {
		w, nn, f := ws.draw(rng, 2)
		return MustNew([]int{None, 0}, w, nn, f)
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range seq {
		deg[v]++
	}
	adj := make([][]int, n)
	// Standard Prüfer decoding with a pointer-scan over leaves.
	ptr := 0
	leaf := -1
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for _, v := range seq {
		if leaf == -1 {
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
		addEdge(leaf, v)
		deg[leaf]--
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			leaf = -1
		}
	}
	// Two nodes of degree 1 remain; connect them.
	u, v := -1, -1
	for i := 0; i < n; i++ {
		if deg[i] == 1 {
			if u == -1 {
				u = i
			} else {
				v = i
			}
		}
	}
	addEdge(u, v)
	// Orient toward root 0 by BFS.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[0] = None
	queue := []int{0}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range adj[x] {
			if parent[y] == -2 {
				parent[y] = x
				queue = append(queue, y)
			}
		}
	}
	w, nn, f := ws.draw(rng, n)
	return MustNew(parent, w, nn, f)
}

// RandomBinary generates a random binary tree of n nodes: each new node is
// attached to a random node that still has fewer than two children.
func RandomBinary(rng *rand.Rand, n int, ws WeightSpec) *Tree {
	parent := make([]int, n)
	parent[0] = None
	open := []int{0, 0} // two slots for the root
	for i := 1; i < n; i++ {
		k := rng.Intn(len(open))
		parent[i] = open[k]
		open[k] = open[len(open)-1]
		open = open[:len(open)-1]
		open = append(open, i, i)
	}
	w, nn, f := ws.draw(rng, n)
	return MustNew(parent, w, nn, f)
}

// Chain generates a chain of n nodes: node 0 is the root and node i+1 is the
// only child of node i.
func Chain(rng *rand.Rand, n int, ws WeightSpec) *Tree {
	parent := make([]int, n)
	parent[0] = None
	for i := 1; i < n; i++ {
		parent[i] = i - 1
	}
	w, nn, f := ws.draw(rng, n)
	return MustNew(parent, w, nn, f)
}

// Fork generates a tree of height 1: a root with n-1 leaf children (the
// worst-case instance of paper Fig. 3 when weights are unit).
func Fork(rng *rand.Rand, n int, ws WeightSpec) *Tree {
	parent := make([]int, n)
	parent[0] = None
	for i := 1; i < n; i++ {
		parent[i] = 0
	}
	w, nn, f := ws.draw(rng, n)
	return MustNew(parent, w, nn, f)
}

// Caterpillar generates a chain of length spineLen where every spine node
// additionally carries legs leaf children.
func Caterpillar(rng *rand.Rand, spineLen, legs int, ws WeightSpec) *Tree {
	n := spineLen * (1 + legs)
	parent := make([]int, n)
	id := 0
	prev := None
	for s := 0; s < spineLen; s++ {
		spine := id
		parent[spine] = prev
		id++
		for l := 0; l < legs; l++ {
			parent[id] = spine
			id++
		}
		prev = spine
	}
	w, nn, f := ws.draw(rng, n)
	return MustNew(parent, w, nn, f)
}
