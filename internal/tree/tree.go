// Package tree implements the in-tree task-graph model of Marchal, Sinnen
// and Vivien, "Scheduling tree-shaped task graphs to minimize memory and
// makespan" (INRIA RR-8082, IPDPS 2013).
//
// A tree has n nodes numbered 0..n-1. Each node i carries a processing time
// w_i (float64), an execution-file size n_i and an output-file size f_i
// (both int64, exact arithmetic). Edges point from child to parent: a node
// can execute only after all of its children have executed, and the output
// file of every child must be resident in memory until the parent completes.
package tree

import (
	"errors"
	"fmt"
)

// None marks the absence of a node (the parent of the root).
const None = -1

// Tree is an immutable in-tree task graph. Construct one with New or with a
// Builder; the zero value is an empty tree.
type Tree struct {
	parent   []int
	children [][]int
	order    []int // one fixed topological order (children before parents)
	w        []float64
	n        []int64
	f        []int64
	root     int
}

// ErrInvalidTree is wrapped by all construction errors of this package.
var ErrInvalidTree = errors.New("tree: invalid tree")

// New builds a tree from a parent vector. parent[i] is the parent of node i,
// or None for the (unique) root. w, n and f give the node weights; they must
// all have the same length as parent. n and f entries must be non-negative
// and w entries must not be negative or NaN.
func New(parent []int, w []float64, n, f []int64) (*Tree, error) {
	nn := len(parent)
	if len(w) != nn || len(n) != nn || len(f) != nn {
		return nil, fmt.Errorf("%w: mismatched slice lengths (parent=%d w=%d n=%d f=%d)",
			ErrInvalidTree, nn, len(w), len(n), len(f))
	}
	t := &Tree{
		parent: append([]int(nil), parent...),
		w:      append([]float64(nil), w...),
		n:      append([]int64(nil), n...),
		f:      append([]int64(nil), f...),
		root:   None,
	}
	for i := 0; i < nn; i++ {
		if t.w[i] < 0 || t.w[i] != t.w[i] {
			return nil, fmt.Errorf("%w: node %d has invalid processing time %v", ErrInvalidTree, i, t.w[i])
		}
		if t.n[i] < 0 || t.f[i] < 0 {
			return nil, fmt.Errorf("%w: node %d has negative file size", ErrInvalidTree, i)
		}
		switch p := t.parent[i]; {
		case p == None:
			if t.root != None {
				return nil, fmt.Errorf("%w: two roots (%d and %d)", ErrInvalidTree, t.root, i)
			}
			t.root = i
		case p < 0 || p >= nn:
			return nil, fmt.Errorf("%w: node %d has out-of-range parent %d", ErrInvalidTree, i, p)
		case p == i:
			return nil, fmt.Errorf("%w: node %d is its own parent", ErrInvalidTree, i)
		}
	}
	if nn > 0 && t.root == None {
		return nil, fmt.Errorf("%w: no root", ErrInvalidTree)
	}
	if err := t.buildChildren(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New that panics on error; for tests and literals.
func MustNew(parent []int, w []float64, n, f []int64) *Tree {
	t, err := New(parent, w, n, f)
	if err != nil {
		panic(err)
	}
	return t
}

// buildChildren derives the children lists and a topological order, and
// verifies that the parent vector is acyclic (i.e. an actual tree).
func (t *Tree) buildChildren() error {
	nn := len(t.parent)
	counts := make([]int, nn)
	for _, p := range t.parent {
		if p != None {
			counts[p]++
		}
	}
	t.children = make([][]int, nn)
	for i, c := range counts {
		if c > 0 {
			t.children[i] = make([]int, 0, c)
		}
	}
	for i, p := range t.parent {
		if p != None {
			t.children[p] = append(t.children[p], i)
		}
	}
	// Topological order by iterative DFS from the root; children before
	// parents when reversed. Also detects unreachable nodes (cycles).
	t.order = make([]int, 0, nn)
	if nn == 0 {
		return nil
	}
	stack := make([]int, 0, 64)
	stack = append(stack, t.root)
	visited := make([]bool, nn)
	pre := make([]int, 0, nn)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[v] {
			return fmt.Errorf("%w: node %d reached twice", ErrInvalidTree, v)
		}
		visited[v] = true
		pre = append(pre, v)
		stack = append(stack, t.children[v]...)
	}
	if len(pre) != nn {
		return fmt.Errorf("%w: %d of %d nodes unreachable from root (cycle?)", ErrInvalidTree, nn-len(pre), nn)
	}
	// Reverse preorder is a valid topological order (children first).
	for i := nn - 1; i >= 0; i-- {
		t.order = append(t.order, pre[i])
	}
	return nil
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.parent) }

// Root returns the root node, or None for an empty tree.
func (t *Tree) Root() int {
	if len(t.parent) == 0 {
		return None
	}
	return t.root
}

// Parent returns the parent of i, or None if i is the root.
func (t *Tree) Parent(i int) int { return t.parent[i] }

// Children returns the children of i. The returned slice is owned by the
// tree and must not be modified.
func (t *Tree) Children(i int) []int { return t.children[i] }

// NumChildren returns the number of children of i.
func (t *Tree) NumChildren(i int) int { return len(t.children[i]) }

// IsLeaf reports whether i has no children.
func (t *Tree) IsLeaf(i int) bool { return len(t.children[i]) == 0 }

// W returns the processing time of i.
func (t *Tree) W(i int) float64 { return t.w[i] }

// N returns the execution-file size of i.
func (t *Tree) N(i int) int64 { return t.n[i] }

// F returns the output-file size of i.
func (t *Tree) F(i int) int64 { return t.f[i] }

// InSize returns the total size of the input files of i
// (the sum of its children's output files).
func (t *Tree) InSize(i int) int64 {
	var s int64
	for _, c := range t.children[i] {
		s += t.f[c]
	}
	return s
}

// ProcFootprint returns the memory needed while i executes:
// sum of input files + execution file + output file (paper §3.1).
func (t *Tree) ProcFootprint(i int) int64 { return t.InSize(i) + t.n[i] + t.f[i] }

// TopOrder returns a fixed topological order of the nodes (every node
// appears after all of its descendants). The slice is owned by the tree and
// must not be modified.
func (t *Tree) TopOrder() []int { return t.order }

// TotalW returns the sum of all processing times.
func (t *Tree) TotalW() float64 {
	var s float64
	for _, x := range t.w {
		s += x
	}
	return s
}

// MaxW returns the largest processing time, or 0 for an empty tree.
func (t *Tree) MaxW() float64 {
	var m float64
	for _, x := range t.w {
		if x > m {
			m = x
		}
	}
	return m
}

// MaxF returns the largest output-file size, or 0 for an empty tree.
func (t *Tree) MaxF() int64 {
	var m int64
	for _, x := range t.f {
		if x > m {
			m = x
		}
	}
	return m
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return MustNew(t.parent, t.w, t.n, t.f)
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{n=%d root=%d leaves=%d depth=%d}", t.Len(), t.Root(), t.NumLeaves(), t.Height())
}

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.parent {
		if t.IsLeaf(i) {
			c++
		}
	}
	return c
}
