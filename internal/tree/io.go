package tree

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Encode writes the tree in the textual format read by Decode:
//
//	# optional comments
//	<number of nodes>
//	<node> <parent|-1> <w> <n> <f>     (one line per node)
//
// Node lines may appear in any order.
func (t *Tree) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", t.Len()); err != nil {
		return err
	}
	for i := 0; i < t.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%d %d %g %d %d\n", i, t.parent[i], t.w[i], t.n[i], t.f[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrTooLarge is wrapped by DecodeMax when the declared node count
// exceeds the caller's limit.
var ErrTooLarge = errors.New("tree: too large")

// Decode parses the format produced by Encode. The input is trusted: the
// declared node count is allocated as-is. For untrusted inputs use
// DecodeMax.
func Decode(r io.Reader) (*Tree, error) { return DecodeMax(r, math.MaxInt) }

// DecodeMax is Decode with a cap on the declared node count, checked
// before any count-sized allocation so a hostile header line cannot
// demand arbitrary memory.
func DecodeMax(r io.Reader, maxNodes int) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("tree: decode: %w", err)
	}
	nn, err := strconv.Atoi(line)
	if err != nil {
		return nil, fmt.Errorf("tree: decode: bad node count %q: %w", line, err)
	}
	if nn < 0 {
		return nil, fmt.Errorf("tree: decode: negative node count %d", nn)
	}
	if nn > maxNodes {
		return nil, fmt.Errorf("%w: declared node count %d exceeds limit %d", ErrTooLarge, nn, maxNodes)
	}
	parent := make([]int, nn)
	w := make([]float64, nn)
	n := make([]int64, nn)
	f := make([]int64, nn)
	seen := make([]bool, nn)
	for k := 0; k < nn; k++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("tree: decode: node line %d: %w", k, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("tree: decode: node line %q: want 5 fields, got %d", line, len(fields))
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil || i < 0 || i >= nn {
			return nil, fmt.Errorf("tree: decode: bad node id %q", fields[0])
		}
		if seen[i] {
			return nil, fmt.Errorf("tree: decode: duplicate node %d", i)
		}
		seen[i] = true
		if parent[i], err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("tree: decode: node %d: bad parent %q", i, fields[1])
		}
		if w[i], err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("tree: decode: node %d: bad w %q", i, fields[2])
		}
		if n[i], err = strconv.ParseInt(fields[3], 10, 64); err != nil {
			return nil, fmt.Errorf("tree: decode: node %d: bad n %q", i, fields[3])
		}
		if f[i], err = strconv.ParseInt(fields[4], 10, 64); err != nil {
			return nil, fmt.Errorf("tree: decode: node %d: bad f %q", i, fields[4])
		}
	}
	return New(parent, w, n, f)
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		return s, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
