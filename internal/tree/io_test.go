package tree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		orig := RandomAttachment(rng, 1+rng.Intn(200), WeightSpec{WMin: 0.5, WMax: 9, NMin: 0, NMax: 5, FMin: 0, FMax: 100})
		var buf bytes.Buffer
		if err := orig.Encode(&buf); err != nil {
			t.Fatalf("Encode: %v", err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.Len() != orig.Len() {
			t.Fatalf("round trip Len: %d vs %d", got.Len(), orig.Len())
		}
		for i := 0; i < orig.Len(); i++ {
			if got.Parent(i) != orig.Parent(i) || got.W(i) != orig.W(i) ||
				got.N(i) != orig.N(i) || got.F(i) != orig.F(i) {
				t.Fatalf("round trip node %d differs", i)
			}
		}
	}
}

func TestDecodeComments(t *testing.T) {
	in := "# a tree\n\n2\n# root\n0 -1 1.5 2 3\n1 0 1 0 1\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if tr.Len() != 2 || tr.W(0) != 1.5 || tr.N(0) != 2 || tr.F(0) != 3 {
		t.Fatalf("decoded wrong tree: %v", tr)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"empty", ""},
		{"bad count", "x\n"},
		{"negative count", "-2\n"},
		{"truncated", "2\n0 -1 1 0 1\n"},
		{"bad fields", "1\n0 -1 1 0\n"},
		{"bad id", "1\n9 -1 1 0 1\n"},
		{"dup id", "2\n0 -1 1 0 1\n0 -1 1 0 1\n"},
		{"bad parent", "1\n0 zz 1 0 1\n"},
		{"bad w", "1\n0 -1 zz 0 1\n"},
		{"bad n", "1\n0 -1 1 zz 1\n"},
		{"bad f", "1\n0 -1 1 0 zz\n"},
		{"invalid structure", "2\n0 1 1 0 1\n1 0 1 0 1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(c.in)); err == nil {
				t.Fatalf("Decode(%q) succeeded, want error", c.in)
			}
		})
	}
}

// TestQuickSubtreeWConsistency checks with random trees that the subtree
// weights of the root equal the total weight and that every node's W_i is
// its own w plus its children's W.
func TestQuickSubtreeWConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, size uint8) bool {
		n := 1 + int(size)%64
		r := rand.New(rand.NewSource(seed))
		tr := RandomAttachment(r, n, WeightSpec{WMin: 0, WMax: 4})
		ws := tr.SubtreeW()
		if diff := ws[tr.Root()] - tr.TotalW(); diff > 1e-9 || diff < -1e-9 {
			return false
		}
		for v := 0; v < tr.Len(); v++ {
			sum := tr.W(v)
			for _, c := range tr.Children(v) {
				sum += ws[c]
			}
			if d := sum - ws[v]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPruferUniformValidity checks that Prüfer trees of many sizes are
// structurally valid and span all nodes.
func TestQuickPruferUniformValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64, size uint8) bool {
		n := 1 + int(size)%100
		r := rand.New(rand.NewSource(seed))
		tr := RandomPrufer(r, n, WeightSpec{})
		return tr.Len() == n && tr.IsTopological(tr.TopOrder())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
