package tree

// Depths returns, for every node, its depth in edges from the root
// (root depth is 0).
func (t *Tree) Depths() []int {
	d := make([]int, t.Len())
	for i := t.Len() - 1; i >= 0; i-- { // order is topological: parents later
		v := t.order[i]
		if p := t.parent[v]; p != None {
			d[v] = d[p] + 1
		}
	}
	return d
}

// Height returns the maximum node depth in edges (0 for a single node or an
// empty tree).
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.Depths() {
		if d > h {
			h = d
		}
	}
	return h
}

// WDepths returns, for every node i, the w-weighted length of the path from
// i to the root, inclusive of both endpoints. This is the "depth" used by
// the ParDeepestFirst heuristic (paper §5.3): the deepest node is the first
// node of the critical path.
func (t *Tree) WDepths() []float64 {
	d := make([]float64, t.Len())
	for i := t.Len() - 1; i >= 0; i-- {
		v := t.order[i]
		if p := t.parent[v]; p != None {
			d[v] = d[p] + t.w[v]
		} else {
			d[v] = t.w[v]
		}
	}
	return d
}

// CriticalPath returns the w-weighted length of the longest root-to-leaf
// path (the classic makespan lower bound with unlimited processors).
func (t *Tree) CriticalPath() float64 {
	var m float64
	for _, d := range t.WDepths() {
		if d > m {
			m = d
		}
	}
	return m
}

// SubtreeW returns, for every node i, the total processing time W_i of the
// subtree rooted at i (including i). Used by SplitSubtrees (paper Alg. 2).
func (t *Tree) SubtreeW() []float64 {
	ws := make([]float64, t.Len())
	for _, v := range t.order { // children before parents
		ws[v] += t.w[v]
		if p := t.parent[v]; p != None {
			ws[p] += ws[v]
		}
	}
	return ws
}

// SubtreeSize returns, for every node i, the number of nodes of the subtree
// rooted at i (including i).
func (t *Tree) SubtreeSize() []int {
	sz := make([]int, t.Len())
	for _, v := range t.order {
		sz[v]++
		if p := t.parent[v]; p != None {
			sz[p] += sz[v]
		}
	}
	return sz
}

// MaxDegree returns the largest number of children of any node.
func (t *Tree) MaxDegree() int {
	m := 0
	for i := range t.parent {
		if c := len(t.children[i]); c > m {
			m = c
		}
	}
	return m
}

// SubtreeNodes returns the nodes of the subtree rooted at r in preorder.
func (t *Tree) SubtreeNodes(r int) []int {
	nodes := make([]int, 0, 16)
	stack := []int{r}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes = append(nodes, v)
		stack = append(stack, t.children[v]...)
	}
	return nodes
}

// Subtree extracts the subtree rooted at r as a standalone Tree. It returns
// the new tree and the mapping from new node ids to original node ids.
func (t *Tree) Subtree(r int) (*Tree, []int) {
	nodes := t.SubtreeNodes(r)
	toNew := make(map[int]int, len(nodes))
	for i, v := range nodes {
		toNew[v] = i
	}
	parent := make([]int, len(nodes))
	w := make([]float64, len(nodes))
	n := make([]int64, len(nodes))
	f := make([]int64, len(nodes))
	for i, v := range nodes {
		if v == r {
			parent[i] = None
		} else {
			parent[i] = toNew[t.parent[v]]
		}
		w[i], n[i], f[i] = t.w[v], t.n[v], t.f[v]
	}
	return MustNew(parent, w, n, f), nodes
}

// IsTopological reports whether order is a permutation of all nodes in which
// every node appears after all of its children.
func (t *Tree) IsTopological(order []int) bool {
	if len(order) != t.Len() {
		return false
	}
	pos := make([]int, t.Len())
	seen := make([]bool, t.Len())
	for i, v := range order {
		if v < 0 || v >= t.Len() || seen[v] {
			return false
		}
		seen[v] = true
		pos[v] = i
	}
	for v := 0; v < t.Len(); v++ {
		if p := t.parent[v]; p != None && pos[p] < pos[v] {
			return false
		}
	}
	return true
}

// IsPostorder reports whether order is a topological order in which the
// nodes of every subtree are contiguous (the defining property of a
// postorder traversal).
func (t *Tree) IsPostorder(order []int) bool {
	if !t.IsTopological(order) {
		return false
	}
	pos := make([]int, t.Len())
	for i, v := range order {
		pos[v] = i
	}
	sz := t.SubtreeSize()
	// A topological order is a postorder iff for every node v the earliest
	// position of a node of subtree(v) is exactly pos[v]-sz[v]+1, i.e. the
	// subtree occupies positions [pos[v]-sz[v]+1, pos[v]].
	minPos := make([]int, t.Len())
	for i := range minPos {
		minPos[i] = pos[i]
	}
	for _, v := range t.order { // children before parents
		if p := t.parent[v]; p != None && minPos[v] < minPos[p] {
			minPos[p] = minPos[v]
		}
	}
	for v := 0; v < t.Len(); v++ {
		if minPos[v] != pos[v]-sz[v]+1 {
			return false
		}
	}
	return true
}
