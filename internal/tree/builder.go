package tree

// Builder assembles a tree incrementally. Nodes are added one at a time;
// parents may be added after children. Call Build to obtain the immutable
// Tree. The zero value is an empty builder ready for use.
type Builder struct {
	parent []int
	w      []float64
	n      []int64
	f      []int64
}

// Add appends a node with the given parent (None for the root) and weights,
// returning the new node's id. Ids are assigned consecutively from 0.
func (b *Builder) Add(parent int, w float64, n, f int64) int {
	id := len(b.parent)
	b.parent = append(b.parent, parent)
	b.w = append(b.w, w)
	b.n = append(b.n, n)
	b.f = append(b.f, f)
	return id
}

// AddPebble appends a pebble-game node (w=1, n=0, f=1); see paper §4.
func (b *Builder) AddPebble(parent int) int { return b.Add(parent, 1, 0, 1) }

// SetParent re-parents an existing node; useful when the parent id was not
// known at Add time.
func (b *Builder) SetParent(node, parent int) { b.parent[node] = parent }

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.parent) }

// Build validates and returns the tree.
func (b *Builder) Build() (*Tree, error) {
	return New(b.parent, b.w, b.n, b.f)
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
