package tree

import "fmt"

// Shape summarizes the structural statistics the paper reports for its
// dataset (§6.2): node count, depth, degree, and weight ranges.
type Shape struct {
	Nodes     int
	Leaves    int
	Height    int // depth in edges
	MaxDegree int
	TotalW    float64
	MaxW      float64
	MaxF      int64
	// AvgBranch is the mean number of children over inner nodes.
	AvgBranch float64
}

// ShapeOf computes the shape statistics of t.
func ShapeOf(t *Tree) Shape {
	s := Shape{
		Nodes:     t.Len(),
		Leaves:    t.NumLeaves(),
		Height:    t.Height(),
		MaxDegree: t.MaxDegree(),
		TotalW:    t.TotalW(),
		MaxW:      t.MaxW(),
		MaxF:      t.MaxF(),
	}
	inner := s.Nodes - s.Leaves
	if inner > 0 {
		s.AvgBranch = float64(s.Nodes-1) / float64(inner)
	}
	return s
}

// String renders the shape on one line.
func (s Shape) String() string {
	return fmt.Sprintf("nodes=%d leaves=%d height=%d maxdeg=%d avgbranch=%.2f totalW=%.4g",
		s.Nodes, s.Leaves, s.Height, s.MaxDegree, s.AvgBranch, s.TotalW)
}

// DegreeHistogram returns counts of nodes by number of children, indexed
// 0..MaxDegree.
func (t *Tree) DegreeHistogram() []int {
	h := make([]int, t.MaxDegree()+1)
	for v := 0; v < t.Len(); v++ {
		h[len(t.children[v])]++
	}
	return h
}

// DepthHistogram returns counts of nodes by depth, indexed 0..Height.
func (t *Tree) DepthHistogram() []int {
	depths := t.Depths()
	h := make([]int, t.Height()+1)
	for _, d := range depths {
		h[d]++
	}
	return h
}
