package tree

import (
	"errors"
	"math/rand"
	"testing"
)

// sampleTree builds the small tree used across tests:
//
//	    0 (root)
//	   / \
//	  1   2
//	 / \   \
//	3   4   5
func sampleTree(t *testing.T) *Tree {
	t.Helper()
	return MustNew(
		[]int{None, 0, 0, 1, 1, 2},
		[]float64{6, 5, 4, 3, 2, 1},
		[]int64{1, 1, 1, 1, 1, 1},
		[]int64{10, 20, 30, 40, 50, 60},
	)
}

func TestNewBasics(t *testing.T) {
	tr := sampleTree(t)
	if got := tr.Len(); got != 6 {
		t.Fatalf("Len() = %d, want 6", got)
	}
	if got := tr.Root(); got != 0 {
		t.Fatalf("Root() = %d, want 0", got)
	}
	if got := tr.Parent(3); got != 1 {
		t.Errorf("Parent(3) = %d, want 1", got)
	}
	if got := tr.Parent(0); got != None {
		t.Errorf("Parent(0) = %d, want None", got)
	}
	if got := len(tr.Children(1)); got != 2 {
		t.Errorf("len(Children(1)) = %d, want 2", got)
	}
	if !tr.IsLeaf(3) || tr.IsLeaf(1) {
		t.Errorf("IsLeaf wrong: IsLeaf(3)=%v IsLeaf(1)=%v", tr.IsLeaf(3), tr.IsLeaf(1))
	}
	if got := tr.NumLeaves(); got != 3 {
		t.Errorf("NumLeaves() = %d, want 3", got)
	}
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		name   string
		parent []int
		w      []float64
		n, f   []int64
	}{
		{"two roots", []int{None, None}, []float64{1, 1}, []int64{0, 0}, []int64{1, 1}},
		{"no root cycle", []int{1, 0}, []float64{1, 1}, []int64{0, 0}, []int64{1, 1}},
		{"self parent", []int{None, 1}, []float64{1, 1}, []int64{0, 0}, []int64{1, 1}},
		{"out of range parent", []int{None, 7}, []float64{1, 1}, []int64{0, 0}, []int64{1, 1}},
		{"cycle off root", []int{None, 2, 1}, []float64{1, 1, 1}, []int64{0, 0, 0}, []int64{1, 1, 1}},
		{"negative w", []int{None}, []float64{-1}, []int64{0}, []int64{1}},
		{"negative n", []int{None}, []float64{1}, []int64{-2}, []int64{1}},
		{"negative f", []int{None}, []float64{1}, []int64{0}, []int64{-3}},
		{"mismatched lengths", []int{None, 0}, []float64{1}, []int64{0, 0}, []int64{1, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.parent, c.w, c.n, c.f); !errors.Is(err, ErrInvalidTree) {
				t.Fatalf("New() error = %v, want ErrInvalidTree", err)
			}
		})
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(nil, nil, nil, nil)
	if err != nil {
		t.Fatalf("New(empty) error: %v", err)
	}
	if tr.Len() != 0 || tr.Root() != None {
		t.Fatalf("empty tree: Len=%d Root=%d", tr.Len(), tr.Root())
	}
}

func TestSingleNode(t *testing.T) {
	tr := MustNew([]int{None}, []float64{3}, []int64{2}, []int64{5})
	if tr.ProcFootprint(0) != 7 {
		t.Errorf("ProcFootprint = %d, want 7", tr.ProcFootprint(0))
	}
	if tr.CriticalPath() != 3 {
		t.Errorf("CriticalPath = %g, want 3", tr.CriticalPath())
	}
}

func TestTopOrder(t *testing.T) {
	tr := sampleTree(t)
	if !tr.IsTopological(tr.TopOrder()) {
		t.Fatalf("TopOrder() is not topological: %v", tr.TopOrder())
	}
}

func TestInSizeAndFootprint(t *testing.T) {
	tr := sampleTree(t)
	if got := tr.InSize(1); got != 40+50 {
		t.Errorf("InSize(1) = %d, want 90", got)
	}
	if got := tr.ProcFootprint(1); got != 90+1+20 {
		t.Errorf("ProcFootprint(1) = %d, want 111", got)
	}
	if got := tr.InSize(3); got != 0 {
		t.Errorf("InSize(leaf) = %d, want 0", got)
	}
}

func TestDepthsAndHeight(t *testing.T) {
	tr := sampleTree(t)
	d := tr.Depths()
	want := []int{0, 1, 1, 2, 2, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Depths()[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if tr.Height() != 2 {
		t.Errorf("Height() = %d, want 2", tr.Height())
	}
}

func TestWDepthsAndCriticalPath(t *testing.T) {
	tr := sampleTree(t)
	wd := tr.WDepths()
	// Node 3: w3 + w1 + w0 = 3+5+6 = 14.
	if wd[3] != 14 {
		t.Errorf("WDepths()[3] = %g, want 14", wd[3])
	}
	if wd[0] != 6 {
		t.Errorf("WDepths()[0] = %g, want 6", wd[0])
	}
	if got := tr.CriticalPath(); got != 14 {
		t.Errorf("CriticalPath() = %g, want 14", got)
	}
}

func TestSubtreeW(t *testing.T) {
	tr := sampleTree(t)
	ws := tr.SubtreeW()
	if ws[0] != 21 {
		t.Errorf("SubtreeW[root] = %g, want 21", ws[0])
	}
	if ws[1] != 10 {
		t.Errorf("SubtreeW[1] = %g, want 10", ws[1])
	}
	if ws[5] != 1 {
		t.Errorf("SubtreeW[5] = %g, want 1", ws[5])
	}
}

func TestSubtreeSize(t *testing.T) {
	tr := sampleTree(t)
	sz := tr.SubtreeSize()
	for i, want := range []int{6, 3, 2, 1, 1, 1} {
		if sz[i] != want {
			t.Errorf("SubtreeSize[%d] = %d, want %d", i, sz[i], want)
		}
	}
}

func TestSubtreeExtraction(t *testing.T) {
	tr := sampleTree(t)
	sub, mapping := tr.Subtree(1)
	if sub.Len() != 3 {
		t.Fatalf("Subtree(1).Len() = %d, want 3", sub.Len())
	}
	if mapping[sub.Root()] != 1 {
		t.Errorf("subtree root maps to %d, want 1", mapping[sub.Root()])
	}
	var totalW float64
	for i := 0; i < sub.Len(); i++ {
		totalW += sub.W(i)
	}
	if totalW != 10 {
		t.Errorf("subtree total W = %g, want 10", totalW)
	}
}

func TestIsPostorder(t *testing.T) {
	tr := sampleTree(t)
	if !tr.IsPostorder([]int{3, 4, 1, 5, 2, 0}) {
		t.Errorf("valid postorder rejected")
	}
	// Topological but not postorder: subtree of 1 not contiguous.
	if tr.IsPostorder([]int{3, 5, 4, 1, 2, 0}) {
		t.Errorf("non-postorder accepted")
	}
	if tr.IsPostorder([]int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("non-topological accepted as postorder")
	}
}

func TestIsTopological(t *testing.T) {
	tr := sampleTree(t)
	if tr.IsTopological([]int{3, 4, 1, 5, 2}) {
		t.Errorf("short order accepted")
	}
	if tr.IsTopological([]int{3, 4, 1, 5, 2, 2}) {
		t.Errorf("duplicate order accepted")
	}
	if tr.IsTopological([]int{0, 3, 4, 1, 5, 2}) {
		t.Errorf("root-first order accepted")
	}
}

func TestClone(t *testing.T) {
	tr := sampleTree(t)
	cl := tr.Clone()
	if cl.Len() != tr.Len() || cl.Root() != tr.Root() {
		t.Fatalf("clone mismatch: %v vs %v", cl, tr)
	}
	for i := 0; i < tr.Len(); i++ {
		if cl.Parent(i) != tr.Parent(i) || cl.W(i) != tr.W(i) || cl.N(i) != tr.N(i) || cl.F(i) != tr.F(i) {
			t.Fatalf("clone node %d differs", i)
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gens := []struct {
		name string
		make func() *Tree
		n    int
	}{
		{"RandomAttachment", func() *Tree { return RandomAttachment(rng, 100, WeightSpec{}) }, 100},
		{"RandomPrufer", func() *Tree { return RandomPrufer(rng, 100, WeightSpec{}) }, 100},
		{"RandomBinary", func() *Tree { return RandomBinary(rng, 100, WeightSpec{}) }, 100},
		{"Chain", func() *Tree { return Chain(rng, 100, WeightSpec{}) }, 100},
		{"Fork", func() *Tree { return Fork(rng, 100, WeightSpec{}) }, 100},
		{"Caterpillar", func() *Tree { return Caterpillar(rng, 10, 9, WeightSpec{}) }, 100},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			tr := g.make()
			if tr.Len() != g.n {
				t.Fatalf("Len() = %d, want %d", tr.Len(), g.n)
			}
			if !tr.IsTopological(tr.TopOrder()) {
				t.Fatalf("generated tree has invalid topological order")
			}
		})
	}
}

func TestGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if h := Chain(rng, 50, WeightSpec{}).Height(); h != 49 {
		t.Errorf("Chain height = %d, want 49", h)
	}
	if h := Fork(rng, 50, WeightSpec{}).Height(); h != 1 {
		t.Errorf("Fork height = %d, want 1", h)
	}
	if d := Fork(rng, 50, WeightSpec{}).MaxDegree(); d != 49 {
		t.Errorf("Fork max degree = %d, want 49", d)
	}
	bin := RandomBinary(rng, 200, WeightSpec{})
	if d := bin.MaxDegree(); d > 2 {
		t.Errorf("RandomBinary max degree = %d, want <= 2", d)
	}
}

func TestRandomPruferSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 8; n++ {
		tr := RandomPrufer(rng, n, WeightSpec{})
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
	}
}

func TestWeightSpecDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ws := WeightSpec{WMin: 2, WMax: 5, NMin: 1, NMax: 3, FMin: 10, FMax: 20}
	tr := RandomAttachment(rng, 500, ws)
	for i := 0; i < tr.Len(); i++ {
		if tr.W(i) < 2 || tr.W(i) > 5 {
			t.Fatalf("W(%d) = %g out of [2,5]", i, tr.W(i))
		}
		if tr.N(i) < 1 || tr.N(i) > 3 {
			t.Fatalf("N(%d) = %d out of [1,3]", i, tr.N(i))
		}
		if tr.F(i) < 10 || tr.F(i) > 20 {
			t.Fatalf("F(%d) = %d out of [10,20]", i, tr.F(i))
		}
	}
}

func TestBuilder(t *testing.T) {
	var b Builder
	r := b.Add(None, 1, 2, 3)
	c1 := b.AddPebble(r)
	c2 := b.AddPebble(r)
	g := b.AddPebble(c1)
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tr.Len() != 4 || tr.Root() != r {
		t.Fatalf("built tree: %v", tr)
	}
	if tr.Parent(g) != c1 || tr.Parent(c2) != r {
		t.Fatalf("builder parents wrong")
	}
	if tr.N(c1) != 0 || tr.F(c1) != 1 || tr.W(c1) != 1 {
		t.Fatalf("AddPebble weights wrong")
	}
}

func TestBuilderSetParent(t *testing.T) {
	var b Builder
	child := b.AddPebble(0) // placeholder parent, fixed below
	root := b.AddPebble(None)
	b.SetParent(child, root)
	tr := b.MustBuild()
	if tr.Root() != root || tr.Parent(child) != root {
		t.Fatalf("SetParent not applied")
	}
}
