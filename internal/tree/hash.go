package tree

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// CanonicalHash returns a hex SHA-256 digest of the tree's full content:
// node count, parent vector and the three weight vectors, in node order.
// Two trees hash equally iff they have identical parent/w/n/f vectors, so
// the digest is independent of how the tree was encoded or constructed and
// is a safe key for result caches.
func (t *Tree) CanonicalHash() string {
	h := sha256.New()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	put(uint64(t.Len()))
	for _, p := range t.parent {
		put(uint64(int64(p)))
	}
	for _, w := range t.w {
		put(math.Float64bits(w))
	}
	for _, n := range t.n {
		put(uint64(n))
	}
	for _, f := range t.f {
		put(uint64(f))
	}
	return hex.EncodeToString(h.Sum(nil))
}
