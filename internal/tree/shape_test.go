package tree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestShapeOf(t *testing.T) {
	tr := MustNew(
		[]int{None, 0, 0, 1, 1, 2},
		[]float64{6, 5, 4, 3, 2, 1},
		[]int64{1, 1, 1, 1, 1, 1},
		[]int64{10, 20, 30, 40, 50, 60},
	)
	s := ShapeOf(tr)
	if s.Nodes != 6 || s.Leaves != 3 || s.Height != 2 || s.MaxDegree != 2 {
		t.Fatalf("shape = %+v", s)
	}
	if s.TotalW != 21 || s.MaxW != 6 || s.MaxF != 60 {
		t.Fatalf("shape weights = %+v", s)
	}
	// 5 edges over 3 inner nodes.
	if s.AvgBranch < 5.0/3-1e-9 || s.AvgBranch > 5.0/3+1e-9 {
		t.Fatalf("AvgBranch = %g", s.AvgBranch)
	}
	if !strings.Contains(s.String(), "nodes=6") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestShapeOfChainAndFork(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	chain := ShapeOf(Chain(rng, 10, PebbleWeights))
	if chain.Height != 9 || chain.Leaves != 1 || chain.AvgBranch != 1 {
		t.Fatalf("chain shape = %+v", chain)
	}
	fork := ShapeOf(Fork(rng, 10, PebbleWeights))
	if fork.Height != 1 || fork.Leaves != 9 || fork.MaxDegree != 9 {
		t.Fatalf("fork shape = %+v", fork)
	}
}

func TestDegreeHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := RandomBinary(rng, 50, PebbleWeights)
	h := tr.DegreeHistogram()
	total := 0
	edges := 0
	for d, c := range h {
		total += c
		edges += d * c
	}
	if total != tr.Len() {
		t.Fatalf("histogram counts %d nodes, want %d", total, tr.Len())
	}
	if edges != tr.Len()-1 {
		t.Fatalf("histogram counts %d edges, want %d", edges, tr.Len()-1)
	}
}

func TestDepthHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := RandomAttachment(rng, 80, PebbleWeights)
	h := tr.DepthHistogram()
	if h[0] != 1 {
		t.Fatalf("depth-0 count = %d, want 1 (the root)", h[0])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != tr.Len() {
		t.Fatalf("histogram counts %d nodes, want %d", total, tr.Len())
	}
	if len(h) != tr.Height()+1 {
		t.Fatalf("histogram has %d levels, want %d", len(h), tr.Height()+1)
	}
}
