package tree

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	orig := RandomAttachment(rng, 60, WeightSpec{WMin: 0.5, WMax: 4, NMin: 0, NMax: 3, FMin: 1, FMax: 9})

	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() || back.Root() != orig.Root() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := 0; i < orig.Len(); i++ {
		if back.Parent(i) != orig.Parent(i) || back.W(i) != orig.W(i) ||
			back.N(i) != orig.N(i) || back.F(i) != orig.F(i) {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
	if back.CanonicalHash() != orig.CanonicalHash() {
		t.Fatalf("hash changed across JSON round trip")
	}
}

func TestJSONDefaultsAndValidation(t *testing.T) {
	// n and f default to zero vectors when omitted.
	var tr Tree
	if err := json.Unmarshal([]byte(`{"parent":[-1,0,0],"w":[1,2,3]}`), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 || tr.N(1) != 0 || tr.F(2) != 0 {
		t.Fatalf("defaults not applied: %v", tr.String())
	}

	for name, bad := range map[string]string{
		"two roots":       `{"parent":[-1,-1],"w":[1,1]}`,
		"cycle":           `{"parent":[-1,2,1],"w":[1,1,1]}`,
		"length mismatch": `{"parent":[-1,0],"w":[1]}`,
		"negative f":      `{"parent":[-1],"w":[1],"f":[-2]}`,
		"negative w":      `{"parent":[-1],"w":[-1]}`,
		"not an object":   `[1,2,3]`,
	} {
		var tr Tree
		if err := json.Unmarshal([]byte(bad), &tr); err == nil {
			t.Errorf("%s: accepted invalid tree %s", name, bad)
		}
	}
}

func TestCanonicalHash(t *testing.T) {
	a := MustNew([]int{None, 0, 0}, []float64{1, 2, 3}, []int64{0, 0, 0}, []int64{1, 1, 1})
	b := MustNew([]int{None, 0, 0}, []float64{1, 2, 3}, []int64{0, 0, 0}, []int64{1, 1, 1})
	if a.CanonicalHash() != b.CanonicalHash() {
		t.Fatal("identical trees hash differently")
	}
	if a.CanonicalHash() != a.Clone().CanonicalHash() {
		t.Fatal("clone hashes differently")
	}

	// The hash covers every component: perturb each one.
	variants := []*Tree{
		MustNew([]int{None, 0, 1}, []float64{1, 2, 3}, []int64{0, 0, 0}, []int64{1, 1, 1}),       // parent
		MustNew([]int{None, 0, 0}, []float64{1, 2, 4}, []int64{0, 0, 0}, []int64{1, 1, 1}),       // w
		MustNew([]int{None, 0, 0}, []float64{1, 2, 3}, []int64{0, 1, 0}, []int64{1, 1, 1}),       // n
		MustNew([]int{None, 0, 0}, []float64{1, 2, 3}, []int64{0, 0, 0}, []int64{1, 2, 1}),       // f
		MustNew([]int{None, 0, 0, 0}, []float64{1, 2, 3, 0}, make([]int64, 4), make([]int64, 4)), // size
	}
	for i, v := range variants {
		if v.CanonicalHash() == a.CanonicalHash() {
			t.Errorf("variant %d collides with the base tree", i)
		}
	}

	// The textual codec preserves the hash (format-independence).
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.CanonicalHash() != a.CanonicalHash() {
		t.Fatal("hash changed across text round trip")
	}
}
