package forest

import (
	"context"
	"fmt"
	"sort"

	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/stats"
	"treesched/internal/tree"
)

// Run simulates the trace on one shared machine under cfg and returns
// per-job results in trace order plus the aggregate summary. The run is
// deterministic for a fixed (trace, config): planning races select
// deterministically and every event-loop tie breaks by job admission
// order and plan rank.
func Run(ctx context.Context, jobs []Job, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := cfg.model()
	cfg.Processors = m.P()
	tr := cfg.Trace
	planSpan := tr.Start("plan", cfg.TraceParent)
	states := planJobs(ctx, jobs, cfg, planSpan)
	tr.SetValue(planSpan, int64(len(jobs)))
	tr.End(planSpan)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var maxMemSeq int64
	for _, js := range states {
		if js.rejectReason == "" && js.memSeq > maxMemSeq {
			maxMemSeq = js.memSeq
		}
	}
	cap := cfg.resolveCap(maxMemSeq)
	for _, js := range states {
		if js.rejectReason == "" && js.memSeq > cap {
			js.rejectReason = fmt.Sprintf("sequential peak %d exceeds memory cap %d", js.memSeq, cap)
		}
	}
	hp := getEngineHeaps()
	e := &engine{cfg: cfg, m: m, cap: cap, states: states,
		ready: hp.ready, fin: hp.fin, skipped: hp.skipped}
	if cfg.Timeline {
		e.tl = &Timeline{Cap: cap, JobIDs: make([]string, len(states))}
		for i, js := range states {
			e.tl.JobIDs[i] = js.id
		}
	}
	simSpan := tr.Start("simulate", cfg.TraceParent)
	err := e.simulate(ctx)
	tr.SetValue(simSpan, int64(e.rounds))
	tr.End(simSpan)
	hp.ready, hp.fin, hp.skipped = e.ready, e.fin, e.skipped
	putEngineHeaps(hp)
	if err != nil {
		return nil, err
	}
	res := e.collect()
	res.Timeline = e.tl
	return res, nil
}

// readyItem is one startable task in the global ready queue. Priority is
// (job admission order, plan rank): earlier-admitted jobs get processors
// first, and within a job tasks follow the standalone plan's order.
type readyItem struct {
	seq  int
	rank int
	js   *jobState
	node int
}

// finEvent is a scheduled task completion.
type finEvent struct {
	at   float64
	seq  int
	rank int
	js   *jobState
	node int
	proc int32
}

// admissionWindow bounds the per-event scan of the ready queue, exactly as
// in sched.MemCappedBooking: every admitted job's σ-front is retried by
// the fallback pass, so the window only trades scheduling quality for
// speed, never progress.
const admissionWindow = 256

// engine is the discrete-event state of one forest run.
type engine struct {
	cfg    Config
	m      *machine.Model
	cap    int64
	states []*jobState

	now     float64
	queue   []*jobState // arrived, not yet admitted
	active  []*jobState // admitted, not yet finished, admission order
	ready   readyHeap
	fin     finHeap
	skipped []readyItem
	procs   *machine.State

	mem       int64 // resident memory right now (all tenants)
	bookedSeq int64 // Σ over active jobs of futurePeak[next]
	extraUsed int64 // budget charged by out-of-σ-order tasks
	peak      int64

	admitted    int
	tasks       int
	maxQueued   int
	maxRunning  int
	rounds      int
	bookRejects int

	tl *Timeline // nil unless Config.Timeline
}

func (e *engine) simulate(ctx context.Context) error {
	// Arrival order: (arrival, trace index).
	arrivals := make([]*jobState, 0, len(e.states))
	for _, js := range e.states {
		if js.rejectReason == "" {
			arrivals = append(arrivals, js)
		}
	}
	sort.SliceStable(arrivals, func(a, b int) bool {
		if arrivals[a].arrival != arrivals[b].arrival {
			return arrivals[a].arrival < arrivals[b].arrival
		}
		return arrivals[a].idx < arrivals[b].idx
	})
	e.procs = machine.NewState(e.m)
	defer func() { e.procs.Recycle(); e.procs = nil }()

	ai := 0
	for rounds := 0; ; rounds++ {
		// A disconnected client must not pin a pool worker for the whole
		// simulation; checking every so many events keeps the overhead
		// off the hot path.
		if rounds%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		next, ok := e.nextEventTime(arrivals, ai)
		if !ok {
			break
		}
		e.rounds++
		e.now = next
		// Completions release memory and processors before arrivals and
		// admissions allocate — the same tie-break as the single-tree
		// simulator's evEnd < evStart.
		for len(e.fin) > 0 && e.fin[0].at <= e.now {
			ev := e.fin.pop()
			e.completeTask(ev.js, ev.node, ev.proc)
		}
		for ai < len(arrivals) && arrivals[ai].arrival <= e.now {
			e.queue = append(e.queue, arrivals[ai])
			ai++
		}
		if len(e.queue) > e.maxQueued {
			e.maxQueued = len(e.queue)
		}
		e.admitJobs()
		e.assign()
		if e.mem > e.cap {
			return fmt.Errorf("forest: internal error: resident memory %d exceeds cap %d at t=%g", e.mem, e.cap, e.now)
		}
		if e.tl != nil {
			e.tl.Memory = append(e.tl.Memory, TimelineSample{At: e.now, Resident: e.mem})
		}
	}
	// Every feasible job must have completed: the booking invariant
	// guarantees progress, so anything left is an engine bug.
	for _, js := range e.states {
		if js.rejectReason == "" && js.done != js.t.Len() {
			return fmt.Errorf("forest: internal error: job %s stalled with %d of %d tasks done", js.id, js.done, js.t.Len())
		}
	}
	if e.mem != 0 || e.bookedSeq != 0 || e.extraUsed != 0 {
		return fmt.Errorf("forest: internal error: leaked accounting at end (mem=%d booked=%d extra=%d)", e.mem, e.bookedSeq, e.extraUsed)
	}
	return nil
}

// nextEventTime returns the earliest pending event time: a task
// completion or the next arrival.
func (e *engine) nextEventTime(arrivals []*jobState, ai int) (float64, bool) {
	have := false
	var t float64
	if len(e.fin) > 0 {
		t, have = e.fin[0].at, true
	}
	if ai < len(arrivals) && (!have || arrivals[ai].arrival < t) {
		t, have = arrivals[ai].arrival, true
	}
	return t, have
}

// fits reports whether admitting js preserves the cross-tree booking
// invariant: all residual sequential peaks plus the charged extras plus
// the newcomer's full sequential peak must fit under the cap.
func (e *engine) fits(js *jobState) bool {
	return e.bookedSeq+e.extraUsed+js.futurePeak[0] <= e.cap
}

// admitJobs dispatches queued jobs in policy order. At most one job per
// currently free processor is admitted per event — each admission should
// translate into immediate progress, and deferring the rest keeps the
// policy's choice as late (and as informed) as possible. Non-backfill
// policies (FIFO) stop at the first job that does not fit.
func (e *engine) admitJobs() {
	if len(e.queue) == 0 || e.procs.Idle() == 0 {
		return
	}
	pol := e.cfg.Policy
	sort.SliceStable(e.queue, func(a, b int) bool { return pol.less(e.queue[a], e.queue[b]) })
	budget := e.procs.Idle()
	kept := e.queue[:0]
	for qi, js := range e.queue {
		if budget > 0 {
			if e.fits(js) {
				e.admit(js)
				budget--
				continue
			}
			e.bookRejects++
		}
		kept = append(kept, js)
		if !pol.backfill() {
			kept = append(kept, e.queue[qi+1:]...)
			break
		}
	}
	e.queue = kept
}

func (e *engine) admit(js *jobState) {
	js.admitSeq = e.admitted
	e.admitted++
	js.startTime = e.now
	e.bookedSeq += js.futurePeak[0]
	e.active = append(e.active, js)
	if len(e.active) > e.maxRunning {
		e.maxRunning = len(e.active)
	}
	for v := 0; v < js.t.Len(); v++ {
		if js.remaining[v] == 0 {
			e.ready.push(readyItem{js.admitSeq, js.rank[v], js, v})
		}
	}
}

// admissible reports whether task v of job js may start now. A task on
// its job's σ-front rides the job's sequential reservation; any other
// task charges its footprint against the unbooked budget.
func (e *engine) admissible(js *jobState, v int) bool {
	if js.runningTasks >= js.width {
		return false
	}
	foot := js.t.N(v) + js.t.F(v)
	if e.mem+foot > e.cap {
		return false
	}
	if js.pos[v] == js.next {
		return true
	}
	return e.extraUsed+foot <= e.cap-e.bookedSeq
}

// assign fills free processors from the global ready queue in (admission
// order, plan rank) priority, then retries every active job's σ-front —
// the task the booking invariant guarantees admissible once memory
// drains — so the admission window can never stall progress. Processors
// come from the machine state: fastest-first on a heterogeneous model,
// the historical LIFO stack on a uniform one.
func (e *engine) assign() {
	skipped := e.skipped[:0]
	scanned := 0
	for e.procs.Idle() > 0 && len(e.ready) > 0 && scanned < admissionWindow {
		it := e.ready.pop()
		scanned++
		if !e.admissible(it.js, it.node) {
			skipped = append(skipped, it)
			continue
		}
		e.startTask(it.js, it.node, e.procs.Take())
	}
	for _, it := range skipped {
		e.ready.push(it)
	}
	e.skipped = skipped
	for e.procs.Idle() > 0 {
		progressed := false
		for _, js := range e.active {
			if e.procs.Idle() == 0 {
				break
			}
			if js.next >= js.t.Len() {
				continue
			}
			v := js.order[js.next]
			if js.started[v] || js.remaining[v] != 0 || !e.admissible(js, v) {
				continue
			}
			if i := js.heapPos[v]; i >= 0 {
				e.ready.removeAt(i)
				e.startTask(js, v, e.procs.Take())
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
}

func (e *engine) startTask(js *jobState, v int, proc int32) {
	t := js.t
	js.started[v] = true
	js.runningTasks++
	e.mem += t.N(v) + t.F(v)
	if e.mem > e.peak {
		e.peak = e.mem
	}
	if js.pos[v] > js.next {
		js.outOfOrder[v] = true
		e.extraUsed += t.N(v) + t.F(v)
	}
	old := js.next
	for js.next < t.Len() && js.started[js.order[js.next]] {
		js.next++
	}
	if js.next != old {
		e.bookedSeq += js.futurePeak[js.next] - js.futurePeak[old]
	}
	end := e.now + e.m.ExecTime(t.W(v), int(proc))
	e.fin.push(finEvent{end, js.admitSeq, js.rank[v], js, v, proc})
	e.tasks++
	if e.tl != nil {
		e.tl.Tasks = append(e.tl.Tasks, TimelineTask{
			Job: js.idx, Node: v, Proc: int(proc), Start: e.now, End: end,
		})
	}
}

func (e *engine) completeTask(js *jobState, v int, proc int32) {
	t := js.t
	js.runningTasks--
	e.mem -= t.N(v) + t.InSize(v)
	if js.outOfOrder[v] {
		e.extraUsed -= t.N(v)
	}
	for _, c := range t.Children(v) {
		if js.outOfOrder[c] {
			e.extraUsed -= t.F(c)
			js.outOfOrder[c] = false
		}
	}
	e.procs.Put(proc)
	js.done++
	if pa := t.Parent(v); pa != tree.None {
		js.remaining[pa]--
		if js.remaining[pa] == 0 {
			e.ready.push(readyItem{js.admitSeq, js.rank[pa], js, pa})
		}
		return
	}
	// The root is every other node's ancestor, so its completion is the
	// job's completion. Its output file leaves the machine (the result is
	// shipped to the tenant, not parked in shared memory).
	e.mem -= t.F(v)
	if js.outOfOrder[v] {
		e.extraUsed -= t.F(v)
		js.outOfOrder[v] = false
	}
	js.finishTime = e.now
	for i, a := range e.active {
		if a == js {
			e.active = append(e.active[:i], e.active[i+1:]...)
			break
		}
	}
}

// collect builds the per-job results and the summary.
func (e *engine) collect() *Result {
	res := &Result{Jobs: make([]JobResult, len(e.states))}
	var (
		latencies, stretches, waits []float64
		completedWork               float64
		makespan                    float64
	)
	for i, js := range e.states {
		jr := JobResult{
			ID:      js.id,
			Index:   js.idx,
			Arrival: js.arrival,
			Weight:  js.weight,
		}
		if js.rejectReason != "" {
			jr.Status = StatusRejected
			jr.Reason = js.rejectReason
			if js.t != nil {
				jr.Nodes = js.t.Len()
				jr.Work = js.totalW
				jr.MemSeq = js.memSeq
			}
			res.Jobs[i] = jr
			continue
		}
		jr.Status = StatusCompleted
		jr.Nodes = js.t.Len()
		jr.Work = js.totalW
		jr.Width = js.width
		jr.PlannedBy = js.plannedBy.String()
		jr.MemSeq = js.memSeq
		jr.PlanMakespan = js.planMakespan
		jr.PlanPeakMemory = js.planPeak
		jr.Start = js.startTime
		jr.Finish = js.finishTime
		jr.Wait = js.startTime - js.arrival
		jr.Latency = js.finishTime - js.arrival
		if js.planMakespan > 0 {
			jr.Stretch = jr.Latency / js.planMakespan
		}
		latencies = append(latencies, jr.Latency)
		waits = append(waits, jr.Wait)
		if jr.Stretch > 0 {
			stretches = append(stretches, jr.Stretch)
		}
		completedWork += js.totalW
		if js.finishTime > makespan {
			makespan = js.finishTime
		}
		res.Jobs[i] = jr
	}
	s := &res.Summary
	s.Jobs = len(e.states)
	s.Rejected = s.Jobs - len(latencies)
	s.Completed = len(latencies)
	s.Processors = e.cfg.Processors
	if !e.m.IsUniform() {
		s.Machine = e.m.Spec()
	}
	s.MemCap = e.cap
	s.Policy = e.cfg.Policy
	s.Makespan = makespan
	if makespan > 0 {
		// Utilization normalizes by the machine's aggregate speed: work is
		// measured in w units, and Σ speeds × time is the w-capacity of the
		// machine over the run (= p × makespan on a uniform machine).
		s.Utilization = completedWork / (e.m.SumSpeed() * makespan)
	}
	s.PeakResident = e.peak
	s.TasksExecuted = e.tasks
	s.MaxQueued = e.maxQueued
	s.MaxRunning = e.maxRunning
	s.MeanLatency = stats.Mean(latencies)
	s.P50Latency = stats.Percentile(latencies, 50)
	s.P99Latency = stats.Percentile(latencies, 99)
	s.MeanStretch = stats.Mean(stretches)
	for _, st := range stretches {
		if st > s.MaxStretch {
			s.MaxStretch = st
		}
	}
	s.MeanWait = stats.Mean(waits)
	s.Rounds = e.rounds
	s.BookingRejections = e.bookRejects
	if len(waits) > 0 {
		// Waits are simulation-time floats; record them in micro-units on
		// exponential buckets so the snapshot's bounds come back out in
		// plain time units spanning 1e-6 .. 1e5.
		h := obs.NewHistogram("forest_wait", "", 1e-6, obs.ExpBuckets(1, 10, 12))
		for _, w := range waits {
			h.Observe(int64(w * 1e6))
		}
		s.WaitHistogram = h.Snapshot()
	}
	return res
}
