package forest

import (
	"fmt"
	"math"
	"math/rand"

	"treesched/internal/dataset"
	"treesched/internal/portfolio"
	"treesched/internal/tree"
)

// GenConfig parameterizes the deterministic trace generator: the same
// config always yields an identical trace.
type GenConfig struct {
	// Jobs is the number of trace jobs. Required, >= 1.
	Jobs int
	// Seed drives every random choice.
	Seed int64
	// Arrivals is the arrival process: "poisson" (default) draws
	// exponential interarrival gaps; "bursty" releases Burst jobs at once
	// with exponential gaps between bursts (same mean rate).
	Arrivals string
	// Rate is the mean number of job arrivals per unit of (tree work)
	// time. Default 0.05.
	Rate float64
	// Burst is the burst size for "bursty" arrivals. Default 8.
	Burst int
	// MinNodes and MaxNodes bound the random trees' sizes. Defaults 50
	// and MinNodes+350; MaxNodes below MinNodes is an error, not a
	// silent override.
	MinNodes, MaxNodes int
	// Objective, when non-empty, is parsed and stamped on every job, so
	// each job is planned by a portfolio race under it.
	Objective string
	// Dataset mixes quick-scale assembly trees from internal/dataset into
	// the random families (about one job in four).
	Dataset bool
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Arrivals == "" {
		c.Arrivals = "poisson"
	}
	if c.Rate <= 0 {
		c.Rate = 0.05
	}
	if c.Burst <= 0 {
		c.Burst = 8
	}
	if c.MinNodes <= 0 {
		c.MinNodes = 50
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = c.MinNodes + 350
	}
	return c
}

// GenTrace synthesizes an NDJSON-able job trace: Poisson or bursty
// arrivals over mixed tree families (random attachment/Prüfer/binary
// trees, chains, forks, caterpillars, and optionally assembly trees from
// the evaluation dataset), with weights drawn from {1, 2, 4} and per-job
// widths from {1, 2, 4}. Deterministic for a fixed config.
func GenTrace(cfg GenConfig) ([]Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Jobs < 1 {
		return nil, fmt.Errorf("forest: gen: jobs must be >= 1, got %d", cfg.Jobs)
	}
	if cfg.MaxNodes < cfg.MinNodes {
		return nil, fmt.Errorf("forest: gen: max nodes %d below min nodes %d (set both explicitly)",
			cfg.MaxNodes, cfg.MinNodes)
	}
	switch cfg.Arrivals {
	case "poisson", "bursty":
	default:
		return nil, fmt.Errorf("forest: gen: unknown arrival process %q (known: bursty, poisson)", cfg.Arrivals)
	}
	var obj *portfolio.Objective
	if cfg.Objective != "" {
		o, err := portfolio.ParseObjective(cfg.Objective)
		if err != nil {
			return nil, err
		}
		obj = &o
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var insts []dataset.Instance
	if cfg.Dataset {
		var err error
		insts, err = dataset.Collection(dataset.Quick, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}

	ws := tree.WeightSpec{WMin: 1, WMax: 10, NMin: 0, NMax: 5, FMin: 1, FMax: 20}
	families := []func(n int) *tree.Tree{
		func(n int) *tree.Tree { return tree.RandomAttachment(rng, n, ws) },
		func(n int) *tree.Tree { return tree.RandomPrufer(rng, n, ws) },
		func(n int) *tree.Tree { return tree.RandomBinary(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Chain(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Fork(rng, n, ws) },
		func(n int) *tree.Tree { return tree.Caterpillar(rng, max(n/4, 2), 3, ws) },
	}

	jobs := make([]Job, 0, cfg.Jobs)
	now := 0.0
	exp := func(rate float64) float64 { return -math.Log(1-rng.Float64()) / rate }
	for i := 0; i < cfg.Jobs; i++ {
		switch cfg.Arrivals {
		case "poisson":
			now += exp(cfg.Rate)
		case "bursty":
			if i%cfg.Burst == 0 && i > 0 {
				now += exp(cfg.Rate / float64(cfg.Burst))
			}
		}
		var t *tree.Tree
		if len(insts) > 0 && rng.Intn(4) == 0 {
			t = insts[rng.Intn(len(insts))].Tree
		} else {
			n := cfg.MinNodes + rng.Intn(cfg.MaxNodes-cfg.MinNodes+1)
			t = families[rng.Intn(len(families))](n)
		}
		jobs = append(jobs, Job{
			ID:        fmt.Sprintf("job-%04d", i),
			Arrival:   now,
			Weight:    float64(int64(1) << rng.Intn(3)),
			Procs:     1 << rng.Intn(3),
			Objective: obj,
			Tree:      t,
		})
	}
	return jobs, nil
}
