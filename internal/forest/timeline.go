package forest

import (
	"fmt"
	"io"
	"strconv"

	"treesched/internal/sched"
)

// The forest timeline is the executed counterpart of a single tree's
// schedule: which task of which tenant ran where and when, and how the
// shared resident memory moved against the cap. It is recorded by the
// engine when Config.Timeline is set and rendered to Chrome Trace Event
// Format by WriteChromeTrace — one track per job, so Perfetto shows the
// tenants' interleaving the way the paper's Gantt figures show a single
// tree's processors.

// TimelineTask is one executed task: job and node identify it, Proc is
// the processor it ran on, Start/End are simulation times.
type TimelineTask struct {
	Job   int     `json:"job"`
	Node  int     `json:"node"`
	Proc  int     `json:"proc"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// TimelineSample is the resident memory after one event instant.
type TimelineSample struct {
	At       float64 `json:"at"`
	Resident int64   `json:"resident"`
}

// Timeline is the executed timeline of a forest run.
type Timeline struct {
	// JobIDs maps TimelineTask.Job (trace index) to the job's id.
	JobIDs []string         `json:"job_ids"`
	Tasks  []TimelineTask   `json:"tasks"`
	Memory []TimelineSample `json:"memory"`
	Cap    int64            `json:"cap"`
}

// WriteChromeTrace renders the run's timeline as Trace Event Format JSON:
// one track per job (labeled with the job id), one complete event per
// executed task (args carry node and processor), and a counter track
// plotting shared resident memory against the cap. Returns an error when
// the run was made without Config.Timeline. Output is deterministic for a
// deterministic run: tasks in start order (the order the engine recorded
// them), memory samples in event order.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	tl := r.Timeline
	if tl == nil {
		return fmt.Errorf("forest: result has no timeline (run with Config.Timeline)")
	}
	bw := sched.NewChromeTraceWriter(w)
	bw.Open()
	bw.Meta(0, "process_name", "treesched forest")
	for j, id := range tl.JobIDs {
		bw.Meta(j, "thread_name", id)
	}
	for _, task := range tl.Tasks {
		bw.Task(task.Job, strconv.Itoa(task.Node), task.Start, task.End-task.Start,
			fmt.Sprintf(`{"job":%q,"node":%d,"proc":%d}`, tl.JobIDs[task.Job], task.Node, task.Proc))
	}
	for _, s := range tl.Memory {
		bw.Memory(s.At, s.Resident, tl.Cap)
	}
	return bw.Close()
}
