package forest

import (
	"context"
	"fmt"
	"math"
	"sort"

	"treesched/internal/par"
	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// jobState is one trace job with its standalone plan and the engine's
// runtime bookkeeping. Planning fields are immutable after planJobs.
type jobState struct {
	idx     int // trace index
	id      string
	t       *tree.Tree
	arrival float64
	weight  float64
	width   int     // planning width = in-machine concurrency limit
	tag     float64 // weighted-fair finish tag: arrival + totalW/weight
	totalW  float64

	plannedBy    sched.HeuristicID
	planMakespan float64
	planPeak     int64
	rank         []int // node -> plan execution rank (start time order)

	// Booking reference: σ (the memory-optimal postorder), its inverse,
	// and the suffix maxima of its sequential step peaks. memSeq =
	// futurePeak[0] is the admission reservation.
	order      []int
	pos        []int
	futurePeak []int64 // len n+1, futurePeak[n] = 0
	memSeq     int64

	rejectReason string // non-empty: never enters the queue

	// Runtime state, owned by the engine.
	admitSeq     int
	next         int
	remaining    []int
	started      []bool
	outOfOrder   []bool
	heapPos      []int // node -> index in the global ready heap, -1 if absent
	runningTasks int
	done         int
	startTime    float64
	finishTime   float64
}

// planJobs plans every trace job standalone: resolves its width, runs the
// heuristic (or a portfolio race for objective-carrying jobs), derives the
// plan's task ranks, and computes the booking reference σ with its
// futurePeak suffix maxima. Jobs are planned concurrently — planning is
// the expensive part of a forest run — with results placed by index, so
// the outcome never depends on goroutine scheduling.
func planJobs(ctx context.Context, jobs []Job, cfg Config, planSpan int) []*jobState {
	states := make([]*jobState, len(jobs))
	par.ForEach(len(jobs), func(i int) {
		// A canceled run stops picking up new jobs; in-flight plans are
		// pure CPU on one tree and finish (same convention as
		// portfolio.Run). Run returns ctx.Err() before reading these.
		if ctx.Err() != nil {
			states[i] = &jobState{idx: i, rejectReason: "planning canceled"}
			return
		}
		// One span per job under the shared "plan" span, carrying the
		// job's node count. Explicit parents keep concurrent planners from
		// racing on an implicit span stack.
		var sp int
		if tr := cfg.Trace; tr != nil {
			name := jobs[i].ID
			if name == "" {
				name = fmt.Sprintf("job-%d", i)
			}
			sp = tr.Start("plan:"+name, planSpan)
		}
		states[i] = planJob(ctx, i, &jobs[i], cfg)
		if tr := cfg.Trace; tr != nil {
			if states[i].t != nil {
				tr.SetValue(sp, int64(states[i].t.Len()))
			}
			tr.End(sp)
		}
	})
	return states
}

func planJob(ctx context.Context, idx int, j *Job, cfg Config) *jobState {
	js := &jobState{
		idx:     idx,
		id:      j.ID,
		arrival: j.Arrival,
		weight:  j.Weight,
	}
	if js.id == "" {
		js.id = fmt.Sprintf("job-%d", idx)
	}
	if js.weight <= 0 || math.IsNaN(js.weight) {
		js.weight = 1
	}
	if j.Arrival < 0 || math.IsNaN(j.Arrival) || math.IsInf(j.Arrival, 0) {
		js.rejectReason = fmt.Sprintf("invalid arrival time %v", j.Arrival)
		return js
	}
	t, err := j.resolveTree(math.MaxInt)
	if err != nil {
		js.rejectReason = err.Error()
		return js
	}
	if t.Len() == 0 {
		js.rejectReason = "tree is empty"
		return js
	}
	js.t = t
	js.totalW = t.TotalW()
	js.tag = js.arrival + js.totalW/js.weight
	js.width = cfg.Processors
	if j.Procs > 0 && j.Procs < js.width {
		js.width = j.Procs
	}

	// One scheduling precompute serves the whole job: the booking
	// reference (σ, its inverse, the futurePeak suffix maxima — exactly
	// the invariants of sched.MemCappedBooking), the planning heuristic,
	// and every candidate of a portfolio race. Liu's traversal runs once
	// per job, not once per consumer.
	pc := sched.NewPrecompute(t)
	n := t.Len()
	js.order = pc.Order()
	js.pos = pc.Pos()
	js.futurePeak = pc.FuturePeak()
	js.memSeq = pc.MSeq()

	sc, by, err := planSchedule(ctx, pc, j, js.width, cfg.DefaultHeuristic)
	if err != nil {
		js.rejectReason = fmt.Sprintf("planning failed: %v", err)
		return js
	}
	js.plannedBy = by
	js.planMakespan = sc.Makespan(t)
	js.planPeak = sched.PeakMemory(t, sc)
	js.rank = planRanks(t, sc)

	js.remaining = make([]int, n)
	js.started = make([]bool, n)
	js.outOfOrder = make([]bool, n)
	js.heapPos = make([]int, n)
	for v := 0; v < n; v++ {
		js.remaining[v] = t.NumChildren(v)
		js.heapPos[v] = -1
	}
	return js
}

// planSchedule produces the job's standalone plan: a portfolio race when
// the job carries an objective or names Auto (the winner is re-run to
// obtain its schedule — candidate racing only keeps metrics), a single
// heuristic otherwise. Everything runs off the job's shared precompute.
func planSchedule(ctx context.Context, pc *sched.Precompute, j *Job, width int, def sched.HeuristicID) (*sched.Schedule, sched.HeuristicID, error) {
	id := def
	if j.Heuristic != nil {
		id = *j.Heuristic
	}
	if j.Objective != nil || id == sched.IDAuto {
		obj := portfolio.MinMakespan()
		if j.Objective != nil {
			obj = *j.Objective
		}
		// Parallelism 1: forest planning already fans out across jobs, so
		// racing each job's candidates concurrently too would oversubscribe.
		res, err := portfolio.RunPre(ctx, pc, obj, portfolio.Options{
			Options:     sched.Options{Processors: width, MemCapFactor: j.MemCapFactor},
			Parallelism: 1,
		})
		if err != nil {
			return nil, 0, err
		}
		w, ok := res.WinnerCandidate()
		if !ok {
			return nil, 0, fmt.Errorf("every portfolio candidate failed")
		}
		id = w.ID
	}
	opts := sched.Options{
		Processors:   width,
		Heuristics:   []sched.HeuristicID{id},
		MemCapFactor: j.MemCapFactor,
	}
	hs, _, err := opts.SelectPre(pc)
	if err != nil {
		return nil, 0, err
	}
	sc, err := hs[0].Run(pc.Tree(), width)
	if err != nil {
		return nil, 0, err
	}
	return sc, id, nil
}

// planRanks orders the tree's nodes by the plan's start times (processor,
// then node id breaking exact ties) and returns the inverse permutation:
// rank[v] is v's execution priority inside its job.
func planRanks(t *tree.Tree, sc *sched.Schedule) []int {
	n := t.Len()
	byStart := make([]int, n)
	for v := range byStart {
		byStart[v] = v
	}
	sort.Slice(byStart, func(a, b int) bool {
		va, vb := byStart[a], byStart[b]
		if sc.Start[va] != sc.Start[vb] {
			return sc.Start[va] < sc.Start[vb]
		}
		if sc.Proc[va] != sc.Proc[vb] {
			return sc.Proc[va] < sc.Proc[vb]
		}
		return va < vb
	})
	rank := make([]int, n)
	for r, v := range byStart {
		rank[v] = r
	}
	return rank
}
