// Package forest implements an online multi-tenant scheduler for streams
// of tree-shaped jobs sharing one machine: a discrete-event engine consumes
// a job trace (tree + arrival time + weight + per-job objective), plans
// each job with the existing sched/portfolio machinery, and simulates the
// execution of all admitted jobs on p shared processors under one global
// memory cap.
//
// The single-tree layers of this repository answer the paper's question —
// schedule one tree on p processors, trading makespan against peak memory.
// Real multifrontal and serving workloads are forests: many trees arriving
// over time and competing for the same processors and memory, the
// memory-bounded parallel regime of Eyraud-Dubois, Marchal, Sinnen and
// Vivien, "Parallel scheduling of task trees with limited memory" (2014).
//
// # Cross-tree memory booking
//
// The engine generalizes MemCappedBooking's invariant across trees. Every
// admitted job j carries the memory-optimal sequential postorder σ_j of
// its tree and the suffix maxima futurePeak_j[k] of σ_j's step peaks (the
// largest memory a purely sequential execution of the remaining suffix
// ever needs). A job is admitted only while
//
//	Σ_running futurePeak_j[next_j] + extraUsed + futurePeak_new[0] ≤ cap,
//
// and a task beyond some job's σ-front charges its footprint against the
// budget cap − Σ futurePeak_j[next_j] until its file is consumed. Any
// resident file is either part of a job's σ-prefix state (bounded by that
// job's residual sequential peak) or charged to the budget, so resident
// memory never exceeds cap, and every admitted job can always advance its
// σ-front once the machine drains — admission can never deadlock,
// regardless of how many tenants are interleaved.
//
// # Planning versus execution
//
// Each job is planned standalone at arrival — a single heuristic, or a
// portfolio race when the job carries an objective (or names Auto) — and
// the plan's task order becomes the job's internal execution priority.
// The engine then interleaves all running jobs at task granularity:
// processors are shared, the admission policy (FIFO, shortest-job-first by
// work, smallest-M_seq-first, weighted fair sharing) decides which queued
// job is dispatched when capacity frees, and the booking invariant decides
// which tasks may start. Per-job latency, stretch and makespan, machine
// utilization and the global peak resident memory are reported per run.
//
// Results are deterministic for a fixed (trace, seed, policy): planning is
// racing-concurrent but selects deterministically, and the event loop
// breaks every tie by job admission order and plan rank.
package forest

import (
	"fmt"
	"math"

	"treesched/internal/machine"
	"treesched/internal/obs"
	"treesched/internal/sched"
)

// DefaultMemCapFactor sizes the global memory cap when Config.MemCap is
// zero: cap = factor × the largest sequential peak (M_seq) over the
// trace's jobs, so every job is individually admissible by default.
const DefaultMemCapFactor = 2

// Config parameterizes a forest run.
type Config struct {
	// Processors is the shared machine size p. Required (>= 1) unless
	// Machine is set, in which case it must be 0 or equal to Machine.P().
	Processors int
	// Machine is the explicit machine model shared by all jobs:
	// per-processor speeds for a heterogeneous (related-machines) cluster.
	// nil means the uniform machine of Processors unit-speed processors.
	Machine *machine.Model
	// MemCap is the global resident-memory cap shared by all running
	// jobs. 0 means MemCapFactor × max over jobs of M_seq.
	MemCap int64
	// MemCapFactor sizes MemCap when it is 0 (default DefaultMemCapFactor).
	// Factors below 1 reject the largest jobs by construction.
	MemCapFactor float64
	// Policy orders the admission queue. The zero value is FIFO.
	Policy Policy
	// DefaultHeuristic plans jobs that specify neither a heuristic nor an
	// objective. The zero value is ParSubtrees (the paper's memory-focused
	// heuristic, a sensible default under a shared cap). Auto plans every
	// such job with a min_makespan portfolio race.
	DefaultHeuristic sched.HeuristicID
	// Trace, when non-nil, records the run's phases as spans under
	// TraceParent (obs.RootSpan for top-level spans): one "plan" span with
	// a "plan:<job id>" child per job (concurrent planning is safe — the
	// trace serializes internally and children carry explicit parents) and
	// one "simulate" span whose value is the event-loop round count. A nil
	// Trace costs one nil check per phase.
	Trace       *obs.Trace
	TraceParent int
	// Timeline, when true, retains the executed timeline on the Result: one
	// task event per started task and the resident-memory step curve, the
	// input of WriteChromeTrace's one-track-per-job rendering. Costs two
	// slices proportional to tasks and event rounds; off by default.
	Timeline bool
}

func (c Config) validate() error {
	if c.Machine != nil {
		if c.Processors != 0 && c.Processors != c.Machine.P() {
			return fmt.Errorf("forest: processors %d conflicts with machine %q (%d processors)",
				c.Processors, c.Machine.Spec(), c.Machine.P())
		}
	} else if c.Processors < 1 {
		return fmt.Errorf("forest: processors must be >= 1, got %d", c.Processors)
	}
	if c.MemCap < 0 {
		return fmt.Errorf("forest: mem cap must be >= 0, got %d", c.MemCap)
	}
	if c.MemCap == 0 && c.MemCapFactor != 0 && !(c.MemCapFactor > 0) {
		return fmt.Errorf("forest: mem cap factor must be > 0, got %g", c.MemCapFactor)
	}
	if !c.DefaultHeuristic.Valid() {
		return fmt.Errorf("forest: invalid default heuristic id %d", int(c.DefaultHeuristic))
	}
	return nil
}

// model resolves the effective machine: Machine when set, else the
// uniform machine of size Processors. Only valid after validate.
func (c Config) model() *machine.Model {
	if c.Machine != nil {
		return c.Machine
	}
	return machine.Uniform(c.Processors)
}

// Job statuses reported in JobResult.Status.
const (
	StatusCompleted = "completed"
	StatusRejected  = "rejected"
)

// JobResult is the per-job outcome of a forest run, in trace order.
type JobResult struct {
	ID     string `json:"id"`
	Index  int    `json:"index"`
	Status string `json:"status"`
	// Reason explains a rejection (sequential peak above the cap, an
	// invalid tree or plan failure); empty for completed jobs.
	Reason string  `json:"reason,omitempty"`
	Nodes  int     `json:"nodes,omitempty"`
	Work   float64 `json:"work,omitempty"`
	Weight float64 `json:"weight,omitempty"`
	// Width is the planning width: the number of processors the job's
	// standalone plan targets and the job's concurrency limit inside the
	// shared machine.
	Width int `json:"width,omitempty"`
	// PlannedBy names the heuristic that produced the plan (the portfolio
	// winner for objective-carrying jobs).
	PlannedBy string `json:"planned_by,omitempty"`
	// MemSeq is the job's sequential peak (M_seq) — its admission
	// reservation on entry; PlanMakespan and PlanPeakMemory are the
	// standalone plan's metrics (the contention-free baseline).
	MemSeq         int64   `json:"mem_seq,omitempty"`
	PlanMakespan   float64 `json:"plan_makespan,omitempty"`
	PlanPeakMemory int64   `json:"plan_peak_memory,omitempty"`
	Arrival        float64 `json:"arrival"`
	// Start is the admission (dispatch) time, Finish the completion time
	// of the job's root task.
	Start  float64 `json:"start,omitempty"`
	Finish float64 `json:"finish,omitempty"`
	// Wait = Start − Arrival; Latency = Finish − Arrival; Stretch =
	// Latency / PlanMakespan (1 means the job ran as fast as its
	// standalone plan despite sharing the machine).
	Wait    float64 `json:"wait,omitempty"`
	Latency float64 `json:"latency,omitempty"`
	Stretch float64 `json:"stretch,omitempty"`
}

// Summary aggregates one forest run.
type Summary struct {
	Jobs       int `json:"jobs"`
	Completed  int `json:"completed"`
	Rejected   int `json:"rejected"`
	Processors int `json:"p"`
	// Machine is the canonical machine spec when the run used a
	// heterogeneous model; empty on a uniform machine.
	Machine string `json:"machine,omitempty"`
	MemCap  int64  `json:"mem_cap"`
	Policy  Policy `json:"policy"`
	// Makespan is the completion time of the last job; Utilization is
	// total completed work / (p × Makespan).
	Makespan    float64 `json:"makespan"`
	Utilization float64 `json:"utilization"`
	// PeakResident is the largest resident memory the machine ever held;
	// the engine guarantees PeakResident <= MemCap.
	PeakResident  int64   `json:"peak_resident"`
	TasksExecuted int     `json:"tasks_executed"`
	MaxQueued     int     `json:"max_queued"`
	MaxRunning    int     `json:"max_running"`
	MeanLatency   float64 `json:"mean_latency"`
	P50Latency    float64 `json:"p50_latency"`
	P99Latency    float64 `json:"p99_latency"`
	MeanStretch   float64 `json:"mean_stretch"`
	MaxStretch    float64 `json:"max_stretch"`
	MeanWait      float64 `json:"mean_wait"`
	// Rounds counts event-loop iterations (distinct event instants the
	// engine advanced through); BookingRejections counts admission
	// attempts deferred because the cross-tree booking invariant would
	// not hold — how often the memory cap, not the processors, was the
	// reason a queued job kept waiting.
	Rounds            int `json:"rounds"`
	BookingRejections int `json:"booking_rejections"`
	// WaitHistogram is the distribution of completed jobs' admission
	// waits (Start − Arrival, simulation time units) under this run's
	// policy — the summary's per-policy queueing picture beyond MeanWait.
	WaitHistogram *obs.Snapshot `json:"wait_histogram,omitempty"`
}

// Result is the outcome of one forest run: per-job results in trace order
// plus the aggregate summary.
type Result struct {
	Jobs    []JobResult `json:"jobs"`
	Summary Summary     `json:"summary"`
	// Timeline is the executed timeline, present only when Config.Timeline
	// was set.
	Timeline *Timeline `json:"timeline,omitempty"`
}

// resolveCap turns the config's cap specification into an absolute cap
// given the largest sequential peak in the trace.
func (c Config) resolveCap(maxMemSeq int64) int64 {
	if c.MemCap > 0 {
		return c.MemCap
	}
	factor := c.MemCapFactor
	if factor == 0 {
		factor = DefaultMemCapFactor
	}
	prod := math.Ceil(factor * float64(maxMemSeq))
	if prod >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(prod)
}
