package forest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// Job is one line of a forest trace: a tree arriving at a point in time,
// with an optional per-job planning directive. Exactly one of Tree and
// TreeText must be set.
type Job struct {
	// ID is an opaque tag echoed in the JobResult.
	ID string `json:"id,omitempty"`
	// Arrival is the job's arrival time (>= 0). Jobs may appear in any
	// order in the trace; the engine sorts by (arrival, trace index).
	Arrival float64 `json:"arrival"`
	// Weight is the job's share under the weighted_fair policy (> 0;
	// 0 means 1).
	Weight float64 `json:"weight,omitempty"`
	// Procs is the job's planning width: its standalone plan targets this
	// many processors and the engine never runs more of its tasks
	// concurrently. 0 or anything above the machine size means the full
	// machine.
	Procs int `json:"p,omitempty"`
	// Heuristic plans the job with a single named scheduler; Auto (or a
	// non-nil Objective) plans it with a portfolio race instead. Absent
	// means the engine's default heuristic.
	Heuristic *sched.HeuristicID `json:"heuristic,omitempty"`
	// Objective switches the job's planning into portfolio mode and
	// selects the plan among the raced candidates.
	Objective *portfolio.Objective `json:"objective,omitempty"`
	// MemCapFactor parameterizes the capped heuristics when one is named.
	MemCapFactor float64 `json:"mem_cap_factor,omitempty"`
	// Tree is the task tree in JSON form; TreeText the textual treegen
	// format.
	Tree     *tree.Tree `json:"tree,omitempty"`
	TreeText string     `json:"tree_text,omitempty"`
}

// resolveTree returns the job's tree, decoding TreeText when necessary.
// maxNodes caps the tree size (checked before allocation for TreeText).
func (j *Job) resolveTree(maxNodes int) (*tree.Tree, error) {
	switch {
	case j.Tree != nil && j.TreeText != "":
		return nil, errors.New("exactly one of tree and tree_text must be set, got both")
	case j.Tree != nil:
		if j.Tree.Len() > maxNodes {
			return nil, fmt.Errorf("%w: tree has %d nodes, limit is %d", tree.ErrTooLarge, j.Tree.Len(), maxNodes)
		}
		return j.Tree, nil
	case j.TreeText != "":
		return tree.DecodeMax(strings.NewReader(j.TreeText), maxNodes)
	}
	return nil, errors.New("one of tree and tree_text is required")
}

// DecodeLimits bounds trace decoding for untrusted inputs. Zero fields
// mean effectively unlimited.
type DecodeLimits struct {
	// MaxJobs caps the number of trace lines.
	MaxJobs int
	// MaxNodes caps each job's tree size.
	MaxNodes int
	// MaxLineBytes caps the byte length of a single trace line.
	MaxLineBytes int64
}

func (l DecodeLimits) withDefaults() DecodeLimits {
	if l.MaxJobs <= 0 {
		l.MaxJobs = math.MaxInt
	}
	if l.MaxNodes <= 0 {
		l.MaxNodes = math.MaxInt
	}
	if l.MaxLineBytes <= 0 {
		l.MaxLineBytes = 1 << 30
	}
	return l
}

// ErrTraceTooLarge is wrapped by DecodeTrace when the trace exceeds
// DecodeLimits.MaxJobs.
var ErrTraceTooLarge = errors.New("forest: trace too large")

// DecodeTrace parses an NDJSON job trace: one Job per line, blank lines
// and #-comments skipped. Decoding is strict — a malformed line fails the
// whole trace with its line number — because a forest run is one coherent
// simulation, not independent requests. Trees are validated and resolved
// here, so the returned jobs are ready for Run.
func DecodeTrace(r io.Reader, lim DecodeLimits) ([]Job, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(r)
	bufCap := 64 << 10
	if int(lim.MaxLineBytes) < bufCap {
		bufCap = int(lim.MaxLineBytes)
	}
	sc.Buffer(make([]byte, 0, bufCap), int(lim.MaxLineBytes)+1)
	var jobs []Job
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if len(jobs) >= lim.MaxJobs {
			return nil, fmt.Errorf("%w: more than %d jobs", ErrTraceTooLarge, lim.MaxJobs)
		}
		var j Job
		if err := json.Unmarshal(line, &j); err != nil {
			// A failed read (e.g. an aggregate body limit) hands the
			// scanner a truncated final token; blame the read error, not
			// the mangled JSON it produced.
			if rerr := sc.Err(); rerr != nil {
				return nil, fmt.Errorf("forest: reading trace: %w", rerr)
			}
			return nil, fmt.Errorf("forest: trace line %d: %v", lineNo, err)
		}
		t, err := j.resolveTree(lim.MaxNodes)
		if err != nil {
			if rerr := sc.Err(); rerr != nil {
				return nil, fmt.Errorf("forest: reading trace: %w", rerr)
			}
			return nil, fmt.Errorf("forest: trace line %d: %w", lineNo, err)
		}
		j.Tree, j.TreeText = t, ""
		jobs = append(jobs, j)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("forest: trace line %d exceeds %d bytes", lineNo+1, lim.MaxLineBytes)
		}
		return nil, fmt.Errorf("forest: reading trace: %w", err)
	}
	return jobs, nil
}

// EncodeTrace writes jobs as an NDJSON trace readable by DecodeTrace.
func EncodeTrace(w io.Writer, jobs []Job) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range jobs {
		if err := enc.Encode(&jobs[i]); err != nil {
			return fmt.Errorf("forest: encoding job %d: %w", i, err)
		}
	}
	return bw.Flush()
}
