package forest

import (
	"context"
	"math/rand"
	"testing"

	"treesched/internal/machine"
	"treesched/internal/tree"
)

// TestGlobalCapInvariantRandomTraces is the booking-invariant stress test:
// on randomized traces, under every admission policy and tight caps, the
// machine's resident memory must never exceed the global cap, every
// feasible job must complete (no deadlock — the engine errors out if any
// admitted job stalls), and the internal accounting must drain to zero
// (Run errors otherwise). CI runs this under -race, so the concurrent
// planning fan-out is exercised too.
func TestGlobalCapInvariantRandomTraces(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3, 4} {
		for _, factor := range []float64{1.0, 1.3, 2.5} {
			jobs := randomTrace(seed, 25)
			for _, pol := range Policies() {
				cfg := Config{Processors: 3, MemCapFactor: factor, Policy: pol}
				res, err := Run(ctx, jobs, cfg)
				if err != nil {
					t.Fatalf("seed %d factor %g policy %s: %v", seed, factor, pol, err)
				}
				s := res.Summary
				if s.PeakResident > s.MemCap {
					t.Errorf("seed %d factor %g policy %s: peak resident %d exceeds cap %d",
						seed, factor, pol, s.PeakResident, s.MemCap)
				}
				if s.Completed+s.Rejected != s.Jobs {
					t.Errorf("seed %d factor %g policy %s: %d completed + %d rejected != %d jobs",
						seed, factor, pol, s.Completed, s.Rejected, s.Jobs)
				}
				for _, jr := range res.Jobs {
					switch jr.Status {
					case StatusCompleted:
						if jr.Finish < jr.Start || jr.Start < jr.Arrival {
							t.Errorf("policy %s job %s: inconsistent times %+v", pol, jr.ID, jr)
						}
					case StatusRejected:
						if jr.Reason == "" {
							t.Errorf("policy %s job %s: rejected without reason", pol, jr.ID)
						}
					default:
						t.Errorf("policy %s job %s: unknown status %q", pol, jr.ID, jr.Status)
					}
				}
				// At factor 1 the cap equals the largest M_seq: only one
				// large job can hold the machine at a time, yet nothing may
				// deadlock or be rejected (every job fits alone by
				// construction of the cap).
				if factor == 1.0 && s.Rejected != 0 {
					t.Errorf("seed %d policy %s: %d rejections at factor 1", seed, pol, s.Rejected)
				}
			}
		}
	}
}

// TestGlobalCapInvariantHeterogeneousMachine reruns the booking-invariant
// stress on a 2-speed machine: speeds stretch execution times (changing
// every event interleaving) but must not affect the memory invariants —
// resident ≤ cap, no deadlock, accounting drains. It also pins that the
// summary reports the canonical machine spec and speed-normalized
// utilization.
func TestGlobalCapInvariantHeterogeneousMachine(t *testing.T) {
	ctx := context.Background()
	m, err := machine.ParseSpec("1x1.0+2x0.5")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{5, 6} {
		jobs := randomTrace(seed, 25)
		for _, pol := range Policies() {
			cfg := Config{Machine: m, MemCapFactor: 1.5, Policy: pol}
			res, err := Run(ctx, jobs, cfg)
			if err != nil {
				t.Fatalf("seed %d policy %s: %v", seed, pol, err)
			}
			s := res.Summary
			if s.Processors != 3 {
				t.Errorf("seed %d policy %s: summary p=%d, want 3 (from machine)", seed, pol, s.Processors)
			}
			if s.Machine != "1+2x0.5" {
				t.Errorf("seed %d policy %s: summary machine %q, want canonical 1+2x0.5", seed, pol, s.Machine)
			}
			if s.PeakResident > s.MemCap {
				t.Errorf("seed %d policy %s: peak resident %d exceeds cap %d", seed, pol, s.PeakResident, s.MemCap)
			}
			if s.Utilization > 1+1e-9 {
				t.Errorf("seed %d policy %s: utilization %v exceeds 1 (speed-normalized)", seed, pol, s.Utilization)
			}
			if s.Completed+s.Rejected != s.Jobs {
				t.Errorf("seed %d policy %s: %d completed + %d rejected != %d jobs",
					seed, pol, s.Completed, s.Rejected, s.Jobs)
			}
		}
	}
	// Conflicting explicit processor count is rejected.
	if _, err := Run(ctx, nil, Config{Machine: m, Processors: 2}); err == nil {
		t.Error("conflicting processors+machine accepted")
	}
}

// TestUniformMachineConfigEquivalence pins that an explicit uniform
// machine model reproduces the plain processor-count run exactly.
func TestUniformMachineConfigEquivalence(t *testing.T) {
	ctx := context.Background()
	jobs := randomTrace(7, 20)
	plain, err := Run(ctx, jobs, Config{Processors: 3, MemCapFactor: 1.5, Policy: SJFByWork()})
	if err != nil {
		t.Fatal(err)
	}
	viaModel, err := Run(ctx, jobs, Config{Machine: machine.Uniform(3), MemCapFactor: 1.5, Policy: SJFByWork()})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Jobs) != len(viaModel.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(plain.Jobs), len(viaModel.Jobs))
	}
	for i := range plain.Jobs {
		a, b := plain.Jobs[i], viaModel.Jobs[i]
		if a.Start != b.Start || a.Finish != b.Finish || a.Status != b.Status {
			t.Errorf("job %d differs: plain %+v vs model %+v", i, a, b)
		}
	}
	if plain.Summary.Makespan != viaModel.Summary.Makespan || plain.Summary.PeakResident != viaModel.Summary.PeakResident {
		t.Errorf("summaries differ: %+v vs %+v", plain.Summary, viaModel.Summary)
	}
}

// randomTrace builds an adversarial mix: bursty arrivals, heterogeneous
// families (including chains and wide forks, the memory extremes), zero
// processing times, and occasional objective-planned jobs.
func randomTrace(seed int64, n int) []Job {
	rng := rand.New(rand.NewSource(seed))
	ws := tree.WeightSpec{WMin: 0, WMax: 4, NMin: 0, NMax: 3, FMin: 1, FMax: 25}
	jobs := make([]Job, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			now += rng.Float64() * 40
		}
		size := 10 + rng.Intn(70)
		var tr *tree.Tree
		switch rng.Intn(5) {
		case 0:
			tr = tree.Chain(rng, size, ws)
		case 1:
			tr = tree.Fork(rng, size, ws)
		case 2:
			tr = tree.RandomBinary(rng, size, ws)
		case 3:
			tr = tree.Caterpillar(rng, size/4+2, 3, ws)
		default:
			tr = tree.RandomAttachment(rng, size, ws)
		}
		j := Job{
			Arrival: now,
			Weight:  float64(1 + rng.Intn(4)),
			Procs:   1 + rng.Intn(3),
			Tree:    tr,
		}
		jobs = append(jobs, j)
	}
	return jobs
}
