package forest

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"treesched/internal/obs"
)

// TestTimelineRecording checks the executed timeline: one task event per
// executed task, consistent job/node/processor references, and a memory
// curve that never exceeds the cap and ends drained.
func TestTimelineRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	jobs := []Job{
		testJob(rng, "a", 0, 40),
		testJob(rng, "b", 0.5, 30),
		testJob(rng, "c", 1, 25),
	}
	res, err := Run(context.Background(), jobs, Config{Processors: 4, Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil {
		t.Fatal("Config.Timeline set but Result.Timeline is nil")
	}
	if len(tl.JobIDs) != 3 || tl.JobIDs[0] != "a" || tl.JobIDs[2] != "c" {
		t.Fatalf("JobIDs = %v", tl.JobIDs)
	}
	if len(tl.Tasks) != res.Summary.TasksExecuted {
		t.Errorf("timeline has %d tasks, summary says %d executed", len(tl.Tasks), res.Summary.TasksExecuted)
	}
	for _, task := range tl.Tasks {
		if task.Job < 0 || task.Job >= 3 || task.Proc < 0 || task.Proc >= 4 || task.End < task.Start {
			t.Fatalf("inconsistent task event %+v", task)
		}
	}
	if len(tl.Memory) == 0 {
		t.Fatal("timeline has no memory samples")
	}
	for _, s := range tl.Memory {
		if s.Resident > tl.Cap {
			t.Errorf("memory sample %+v exceeds cap %d", s, tl.Cap)
		}
	}
	if last := tl.Memory[len(tl.Memory)-1]; last.Resident != 0 {
		t.Errorf("memory curve ends at %d, want 0 (drained)", last.Resident)
	}

	// Off by default.
	res2, err := Run(context.Background(), jobs, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timeline != nil {
		t.Error("Result.Timeline must be nil without Config.Timeline")
	}
}

// TestForestWriteChromeTrace renders the timeline and checks the event
// stream: one track per job, every task on its job's track, a memory
// counter with the cap series — and that a timeline-less result errors.
func TestForestWriteChromeTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	jobs := []Job{testJob(rng, "left", 0, 35), testJob(rng, "right", 0, 35)}
	res, err := Run(context.Background(), jobs, Config{Processors: 2, Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
				Job  string `json:"job"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	tracks := map[int]string{}
	tasksPerTrack := map[int]int{}
	counters := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				tracks[e.Tid] = e.Args.Name
			}
		case "X":
			tasksPerTrack[e.Tid]++
			if want := tracks[e.Tid]; e.Args.Job != want {
				t.Fatalf("task on track %d carries job %q, track is %q", e.Tid, e.Args.Job, want)
			}
		case "C":
			counters++
		}
	}
	if tracks[0] != "left" || tracks[1] != "right" {
		t.Errorf("tracks = %v, want left/right", tracks)
	}
	if tasksPerTrack[0] != 35 || tasksPerTrack[1] != 35 {
		t.Errorf("tasks per track = %v, want 35 each", tasksPerTrack)
	}
	if counters == 0 {
		t.Error("no memory counter samples")
	}
	if !strings.Contains(buf.String(), `"cap":`) {
		t.Error("memory counter missing cap series")
	}

	bare, err := Run(context.Background(), jobs, Config{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.WriteChromeTrace(&buf); err == nil {
		t.Error("WriteChromeTrace without a timeline must error")
	}
}

// TestForestTraceSpans checks Config.Trace: a "plan" span with one child
// per job and a "simulate" span carrying the round count.
func TestForestTraceSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	jobs := []Job{testJob(rng, "x", 0, 30), testJob(rng, "y", 0, 30)}
	tr := obs.AcquireTrace()
	defer tr.Release()
	res, err := Run(context.Background(), jobs, Config{
		Processors: 2, Trace: tr, TraceParent: obs.RootSpan,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := tr.Tree()
	if root == nil {
		t.Fatal("trace recorded nothing")
	}
	byName := map[string]*obs.SpanNode{}
	root.Walk(func(n *obs.SpanNode, _ int) { byName[n.Name] = n })
	plan := byName["plan"]
	if plan == nil || len(plan.Spans) != 2 {
		t.Fatalf("plan span = %+v, want 2 children", plan)
	}
	if byName["plan:x"] == nil || byName["plan:y"] == nil {
		t.Errorf("missing per-job plan spans, have %v", plan.Spans)
	}
	if byName["plan:x"].Value != 30 {
		t.Errorf("plan:x value = %d, want the node count 30", byName["plan:x"].Value)
	}
	sim := byName["simulate"]
	if sim == nil {
		t.Fatal("missing simulate span")
	}
	if sim.Value != int64(res.Summary.Rounds) {
		t.Errorf("simulate span value = %d, want rounds %d", sim.Value, res.Summary.Rounds)
	}
}
