package forest

import "sync"

// Typed binary heaps for the engine's ready queue and completion events.
// They deliberately do not implement container/heap: every container/heap
// Push/Pop boxes the item into an interface{}, which made the event loop
// the forest engine's dominant allocation site — the same treatment the
// PR 4 split-queue heaps received in internal/sched.

// readyHeap is an indexed min-heap over readyItem ordered by (admission
// seq, plan rank): every mutation maintains jobState.heapPos[node], so
// the σ-front fallback can remove a specific task in O(log n) instead of
// scanning the heap.
type readyHeap []readyItem

func (h readyHeap) less(i, j int) bool {
	if h[i].seq != h[j].seq {
		return h[i].seq < h[j].seq
	}
	return h[i].rank < h[j].rank
}

func (h readyHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].js.heapPos[h[i].node] = i
	h[j].js.heapPos[h[j].node] = j
}

func (h *readyHeap) push(it readyItem) {
	it.js.heapPos[it.node] = len(*h)
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

func (h *readyHeap) pop() readyItem { return h.removeAt(0) }

// removeAt deletes and returns the element at index i, restoring the heap
// and the heapPos index.
func (h *readyHeap) removeAt(i int) readyItem {
	s := *h
	it := s[i]
	it.js.heapPos[it.node] = -1
	last := len(s) - 1
	if i != last {
		s[i] = s[last]
		s[i].js.heapPos[s[i].node] = i
	}
	s = s[:last]
	*h = s
	if i == last {
		return it
	}
	// Sift whichever direction restores the invariant.
	j := i
	for j > 0 && s.less(j, (j-1)/2) {
		s.swap(j, (j-1)/2)
		j = (j - 1) / 2
	}
	if j != i {
		return it
	}
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s.swap(i, m)
		i = m
	}
	return it
}

// finHeap is a min-heap over finEvent ordered by (time, admission seq,
// plan rank).
type finHeap []finEvent

func (h finHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].seq != h[j].seq {
		return h[i].seq < h[j].seq
	}
	return h[i].rank < h[j].rank
}

func (h *finHeap) push(ev finEvent) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *finHeap) pop() finEvent {
	s := *h
	ev := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		m := l
		if r := l + 1; r < last && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return ev
}

// engineHeaps recycles the heap backing arrays (and the assignment
// skip buffer) across forest runs.
type engineHeaps struct {
	ready   readyHeap
	fin     finHeap
	skipped []readyItem
}

var engineHeapPool = sync.Pool{New: func() any { return new(engineHeaps) }}

func getEngineHeaps() *engineHeaps {
	hp := engineHeapPool.Get().(*engineHeaps)
	hp.ready = hp.ready[:0]
	hp.fin = hp.fin[:0]
	hp.skipped = hp.skipped[:0]
	return hp
}

// putEngineHeaps zeroes the retained capacity — the items hold *jobState
// pointers, which must not keep a finished run's job graph reachable from
// the pool — and recycles the buffers.
func putEngineHeaps(hp *engineHeaps) {
	clear(hp.ready[:cap(hp.ready)])
	clear(hp.fin[:cap(hp.fin)])
	clear(hp.skipped[:cap(hp.skipped)])
	engineHeapPool.Put(hp)
}
