package forest

import (
	"fmt"
	"sort"
	"strings"
)

type policyID int

const (
	policyFIFO policyID = iota
	policySJF
	policySmallestMem
	policyWeightedFair
	numPolicies
)

var policyNames = [numPolicies]string{
	policyFIFO:         "fifo",
	policySJF:          "sjf",
	policySmallestMem:  "smallest_mseq",
	policyWeightedFair: "weighted_fair",
}

// Policy decides which queued job is admitted when machine capacity frees.
// The zero value is FIFO. Build one with the constructors or ParsePolicy.
type Policy struct {
	id policyID
}

// FIFO admits jobs strictly in arrival order: the queue head blocks until
// it fits (no backfilling), making head-of-line blocking visible in the
// latency numbers — the baseline every other policy is compared against.
func FIFO() Policy { return Policy{policyFIFO} }

// SJFByWork admits the queued job with the least total work first,
// skipping over jobs that do not currently fit (backfill). Minimizes mean
// latency at the price of delaying large jobs under sustained load.
func SJFByWork() Policy { return Policy{policySJF} }

// SmallestMemFirst admits the queued job with the smallest sequential
// peak (M_seq) first, with backfill: the memory-frugal analogue of SJF,
// packing as many tenants as the cap allows.
func SmallestMemFirst() Policy { return Policy{policySmallestMem} }

// WeightedFair admits by weighted finish tag arrival + work/weight (an
// SFQ-style approximation of weighted fair sharing: a weight-2 job is
// served as if it were half as long), with backfill.
func WeightedFair() Policy { return Policy{policyWeightedFair} }

// Policies returns all admission policies in canonical order, for
// benchmarks and policy-comparison experiments.
func Policies() []Policy {
	return []Policy{FIFO(), SJFByWork(), SmallestMemFirst(), WeightedFair()}
}

// PolicyNames returns every policy wire name in sorted order, for error
// texts and documentation.
func PolicyNames() []string {
	names := make([]string, 0, len(policyNames))
	for _, n := range policyNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String returns the canonical wire name ("fifo", "sjf", "smallest_mseq",
// "weighted_fair").
func (p Policy) String() string {
	if p.id < 0 || p.id >= numPolicies {
		return fmt.Sprintf("policy(%d)", int(p.id))
	}
	return policyNames[p.id]
}

// ParsePolicy resolves a wire name to its policy.
func ParsePolicy(s string) (Policy, error) {
	for id, n := range policyNames {
		if n == s {
			return Policy{policyID(id)}, nil
		}
	}
	return Policy{}, fmt.Errorf("forest: unknown policy %q (known: %s)",
		s, strings.Join(PolicyNames(), ", "))
}

// MarshalText encodes the wire name, so Policy fields serialize as JSON
// strings.
func (p Policy) MarshalText() ([]byte, error) {
	if p.id < 0 || p.id >= numPolicies {
		return nil, fmt.Errorf("forest: cannot marshal invalid policy %d", int(p.id))
	}
	return []byte(p.String()), nil
}

// UnmarshalText decodes a wire name.
func (p *Policy) UnmarshalText(text []byte) error {
	got, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = got
	return nil
}

// backfill reports whether the policy may admit jobs past a queued job
// that does not currently fit. FIFO is strict: its whole point is arrival
// order, so its head blocks the queue until admissible.
func (p Policy) backfill() bool { return p.id != policyFIFO }

// less orders the admission queue. Every comparator ends on (arrival,
// trace index) so the order — and therefore the whole simulation — is
// deterministic.
func (p Policy) less(a, b *jobState) bool {
	switch p.id {
	case policySJF:
		if a.totalW != b.totalW {
			return a.totalW < b.totalW
		}
	case policySmallestMem:
		if a.memSeq != b.memSeq {
			return a.memSeq < b.memSeq
		}
	case policyWeightedFair:
		if a.tag != b.tag {
			return a.tag < b.tag
		}
	}
	if a.arrival != b.arrival {
		return a.arrival < b.arrival
	}
	return a.idx < b.idx
}
