package forest

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"treesched/internal/portfolio"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// job returns a trace job over a fresh random tree.
func testJob(rng *rand.Rand, id string, arrival float64, n int) Job {
	ws := tree.WeightSpec{WMin: 1, WMax: 5, NMin: 0, NMax: 3, FMin: 1, FMax: 10}
	return Job{ID: id, Arrival: arrival, Tree: tree.RandomAttachment(rng, n, ws)}
}

func TestRunSingleJob(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	jobs := []Job{testJob(rng, "solo", 0, 60)}
	res, err := Run(context.Background(), jobs, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Completed != 1 || res.Summary.Rejected != 0 {
		t.Fatalf("summary = %+v, want 1 completed", res.Summary)
	}
	jr := res.Jobs[0]
	if jr.Status != StatusCompleted || jr.ID != "solo" {
		t.Fatalf("job result = %+v", jr)
	}
	if jr.Finish <= 0 || jr.Latency != jr.Finish || jr.Wait != 0 {
		t.Errorf("solo job timing off: %+v", jr)
	}
	if jr.Stretch <= 0 {
		t.Errorf("stretch = %g, want > 0", jr.Stretch)
	}
	if res.Summary.PeakResident > res.Summary.MemCap {
		t.Errorf("peak %d exceeds cap %d", res.Summary.PeakResident, res.Summary.MemCap)
	}
	if res.Summary.Utilization <= 0 || res.Summary.Utilization > 1+1e-9 {
		t.Errorf("utilization = %g", res.Summary.Utilization)
	}
	if res.Summary.TasksExecuted != jr.Nodes {
		t.Errorf("tasks executed = %d, want %d", res.Summary.TasksExecuted, jr.Nodes)
	}
}

func TestRunRejectsInfeasibleJob(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	big := testJob(rng, "big", 0, 80)
	small := testJob(rng, "small", 0, 30)
	// Cap sized for the small job only.
	smallSeq := mustMemSeq(t, small.Tree)
	bigSeq := mustMemSeq(t, big.Tree)
	if bigSeq <= smallSeq {
		t.Skip("random draw did not order the sequential peaks") // deterministic seeds: never happens
	}
	res, err := Run(context.Background(), []Job{big, small}, Config{Processors: 2, MemCap: smallSeq})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Status != StatusRejected || !strings.Contains(res.Jobs[0].Reason, "exceeds memory cap") {
		t.Fatalf("big job = %+v, want rejected", res.Jobs[0])
	}
	if res.Jobs[1].Status != StatusCompleted {
		t.Fatalf("small job = %+v, want completed", res.Jobs[1])
	}
	if res.Summary.Rejected != 1 || res.Summary.Completed != 1 {
		t.Fatalf("summary = %+v", res.Summary)
	}
}

func mustMemSeq(t *testing.T, tr *tree.Tree) int64 {
	t.Helper()
	return sched.MemoryLowerBound(tr)
}

func TestRunRejectsBadJobs(t *testing.T) {
	res, err := Run(context.Background(), []Job{
		{ID: "no-tree", Arrival: 0},
		{ID: "neg-arrival", Arrival: -1, Tree: tree.MustNew([]int{-1}, []float64{1}, []int64{0}, []int64{1})},
		{ID: "empty", Arrival: 0, Tree: &tree.Tree{}},
	}, Config{Processors: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range res.Jobs {
		if jr.Status != StatusRejected || jr.Reason == "" {
			t.Errorf("job %d = %+v, want rejected with reason", i, jr)
		}
	}
	if res.Summary.Makespan != 0 || res.Summary.Completed != 0 {
		t.Errorf("summary = %+v", res.Summary)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Config{}); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := Run(context.Background(), nil, Config{Processors: 2, MemCapFactor: -1}); err == nil {
		t.Error("negative cap factor accepted")
	}
	if _, err := Run(context.Background(), nil, Config{Processors: 2, DefaultHeuristic: -3}); err == nil {
		t.Error("invalid default heuristic accepted")
	}
}

// TestDeterministicAcrossRepeats re-runs the same generated trace under
// every policy and requires bit-identical results — the engine's central
// contract.
func TestDeterministicAcrossRepeats(t *testing.T) {
	jobs, err := GenTrace(GenConfig{Jobs: 30, Seed: 7, MaxNodes: 120})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range Policies() {
		cfg := Config{Processors: 4, MemCapFactor: 1.5, Policy: pol}
		a, err := Run(context.Background(), jobs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		b, err := Run(context.Background(), jobs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("policy %s: two runs of the same trace differ", pol)
		}
	}
}

// TestSJFAdmitsShortJobFirst queues a long and a short job behind a
// blocker that holds the whole cap, and checks the policies order them as
// promised: FIFO by arrival, SJF by work.
func TestSJFAdmitsShortJobFirst(t *testing.T) {
	// A chain executes strictly sequentially, so one chain job whose
	// sequential peak equals the cap blocks everything while it runs.
	chain := func(n int) *tree.Tree {
		var b tree.Builder
		prev := b.Add(tree.None, 1, 0, 1)
		for i := 1; i < n; i++ {
			prev = b.Add(prev, 1, 0, 1)
		}
		return b.MustBuild()
	}
	blocker := Job{ID: "blocker", Arrival: 0, Tree: chain(20)}
	long := Job{ID: "long", Arrival: 1, Tree: chain(10)}
	short := Job{ID: "short", Arrival: 2, Tree: chain(4)}
	cap := mustMemSeq(t, blocker.Tree)

	for _, tc := range []struct {
		pol   Policy
		first string // of the two queued jobs
	}{
		{FIFO(), "long"},       // arrival order
		{SJFByWork(), "short"}, // least work first
	} {
		res, err := Run(context.Background(), []Job{blocker, long, short},
			Config{Processors: 2, MemCap: cap, Policy: tc.pol})
		if err != nil {
			t.Fatalf("%s: %v", tc.pol, err)
		}
		byID := map[string]JobResult{}
		for _, jr := range res.Jobs {
			if jr.Status != StatusCompleted {
				t.Fatalf("%s: job %s not completed: %+v", tc.pol, jr.ID, jr)
			}
			byID[jr.ID] = jr
		}
		second := "short"
		if tc.first == "short" {
			second = "long"
		}
		if !(byID[tc.first].Start < byID[second].Start) {
			t.Errorf("%s: want %s admitted before %s (starts %g vs %g)",
				tc.pol, tc.first, second, byID[tc.first].Start, byID[second].Start)
		}
	}
}

// TestWeightedFairPrefersHeavierJob queues two equal-work jobs with
// different weights; the heavier one must be admitted first.
func TestWeightedFairPrefersHeavierJob(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blocker := testJob(rng, "blocker", 0, 40)
	light := testJob(rng, "light", 1, 40)
	heavy := testJob(rng, "heavy", 1, 40)
	light.Weight, heavy.Weight = 1, 8
	cap := mustMemSeq(t, blocker.Tree)
	if s := mustMemSeq(t, light.Tree); s > cap {
		cap = s
	}
	if s := mustMemSeq(t, heavy.Tree); s > cap {
		cap = s
	}
	res, err := Run(context.Background(), []Job{blocker, light, heavy},
		Config{Processors: 1, MemCap: cap, Policy: WeightedFair()})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]JobResult{}
	for _, jr := range res.Jobs {
		byID[jr.ID] = jr
	}
	if !(byID["heavy"].Start <= byID["light"].Start) {
		t.Errorf("weighted_fair admitted light (start %g) before heavy (start %g)",
			byID["light"].Start, byID["heavy"].Start)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	jobs, err := GenTrace(GenConfig{Jobs: 12, Seed: 3, MaxNodes: 80, Objective: "weighted:0.5"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(&buf, DecodeLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip: %d jobs, want %d", len(back), len(jobs))
	}
	for i := range jobs {
		if back[i].ID != jobs[i].ID || back[i].Arrival != jobs[i].Arrival {
			t.Fatalf("job %d header changed: %+v vs %+v", i, back[i], jobs[i])
		}
		if back[i].Tree.CanonicalHash() != jobs[i].Tree.CanonicalHash() {
			t.Fatalf("job %d tree changed through the codec", i)
		}
		if back[i].Objective == nil || back[i].Objective.String() != "weighted:0.5" {
			t.Fatalf("job %d objective lost: %+v", i, back[i].Objective)
		}
	}
}

func TestDecodeTraceLimits(t *testing.T) {
	jobs, err := GenTrace(GenConfig{Jobs: 5, Seed: 4, MinNodes: 20, MaxNodes: 30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTrace(bytes.NewReader(buf.Bytes()), DecodeLimits{MaxJobs: 3}); !errors.Is(err, ErrTraceTooLarge) {
		t.Errorf("MaxJobs: got %v, want ErrTraceTooLarge", err)
	}
	if _, err := DecodeTrace(bytes.NewReader(buf.Bytes()), DecodeLimits{MaxNodes: 5}); !errors.Is(err, tree.ErrTooLarge) {
		t.Errorf("MaxNodes: got %v, want tree.ErrTooLarge", err)
	}
	if _, err := DecodeTrace(bytes.NewReader(buf.Bytes()), DecodeLimits{MaxLineBytes: 40}); err == nil ||
		!strings.Contains(err.Error(), "exceeds 40 bytes") {
		t.Errorf("MaxLineBytes: got %v", err)
	}
	if _, err := DecodeTrace(strings.NewReader("{\"arrival\":0,\"tree\":{\"parent\":[-1],\"w\":[1]}}\nnot json\n"), DecodeLimits{}); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("bad line: got %v", err)
	}
	// Comments and blank lines are skipped.
	got, err := DecodeTrace(strings.NewReader("# trace\n\n{\"id\":\"a\",\"arrival\":1,\"tree\":{\"parent\":[-1],\"w\":[1]}}\n"), DecodeLimits{})
	if err != nil || len(got) != 1 || got[0].ID != "a" {
		t.Errorf("comment handling: %v, %+v", err, got)
	}
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range Policies() {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), back, err)
		}
	}
	_, err := ParsePolicy("round_robin")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, name := range PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("policy parse error %q does not enumerate %q", err, name)
		}
	}
}

func TestGenTraceDeterministicAndSorted(t *testing.T) {
	a, err := GenTrace(GenConfig{Jobs: 20, Seed: 11, Arrivals: "bursty", MaxNodes: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenTrace(GenConfig{Jobs: 20, Seed: 11, Arrivals: "bursty", MaxNodes: 60})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].Tree.CanonicalHash() != b[i].Tree.CanonicalHash() {
			t.Fatalf("job %d differs across identical configs", i)
		}
		if i > 0 && a[i].Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals not non-decreasing at %d", i)
		}
	}
	if _, err := GenTrace(GenConfig{Jobs: 2, Arrivals: "warp"}); err == nil {
		t.Error("unknown arrival process accepted")
	}
	// Contradictory size bounds are an error, not a silent override.
	if _, err := GenTrace(GenConfig{Jobs: 2, MaxNodes: 30}); err == nil || !strings.Contains(err.Error(), "below min nodes") {
		t.Errorf("MaxNodes below default MinNodes: got %v", err)
	}
}

// TestPerJobHeuristicAndObjective checks that planning honors explicit
// per-job directives: a named heuristic is used as-is, an objective
// triggers a portfolio race whose winner is reported.
func TestPerJobHeuristicAndObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	deep := sched.IDParDeepestFirst
	obj, err := portfolio.ParseObjective("min_memory")
	if err != nil {
		t.Fatal(err)
	}
	j1 := testJob(rng, "named", 0, 50)
	j1.Heuristic = &deep
	j2 := testJob(rng, "raced", 0, 50)
	j2.Objective = &obj
	res, err := Run(context.Background(), []Job{j1, j2}, Config{Processors: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].PlannedBy != "ParDeepestFirst" {
		t.Errorf("named job planned by %q", res.Jobs[0].PlannedBy)
	}
	if _, err := sched.ParseHeuristic(res.Jobs[1].PlannedBy); err != nil {
		t.Errorf("raced job planned by %q, want a valid winner: %v", res.Jobs[1].PlannedBy, err)
	}
}
