package machine

import "sync"

// State is the per-run processor-availability bookkeeping shared by every
// scheduler: the set of currently free processors plus per-processor
// next-free times for load-balancing placements. States are recycled
// through a pool (the PR 4 scratch-struct treatment) — a warm NewState
// performs no allocation.
//
// On a uniform model the free set is a LIFO stack seeded p-1..0, so Take
// yields processor 0 first and thereafter the most recently released
// processor — exactly the historical free-list discipline of the
// schedulers, which keeps uniform schedules byte-identical. On a
// heterogeneous model Take picks the fastest free processor (ties by
// lowest processor id): a freed fast processor must grab the next ready
// task even if a slow one freed up more recently.
type State struct {
	m    *Model
	free []int32
	busy []float64 // per-processor next-free time (placement primitives)
}

var statePool = sync.Pool{New: func() any { return new(State) }}

// NewState returns a pooled, reset availability state for m: every
// processor free, every next-free time 0.
func NewState(m *Model) *State {
	st := statePool.Get().(*State)
	st.m = m
	p := m.p
	if cap(st.free) < p {
		st.free = make([]int32, 0, p)
	}
	st.free = st.free[:0]
	for i := p - 1; i >= 0; i-- {
		st.free = append(st.free, int32(i))
	}
	if cap(st.busy) < p {
		st.busy = make([]float64, p)
	}
	st.busy = st.busy[:p]
	clear(st.busy)
	return st
}

// Recycle returns the state's buffers to the pool; the state must not be
// used afterwards.
func (st *State) Recycle() {
	st.m = nil
	statePool.Put(st)
}

// Model returns the machine this state tracks.
func (st *State) Model() *Model { return st.m }

// Idle returns the number of free processors.
func (st *State) Idle() int { return len(st.free) }

// Take removes and returns a free processor: the top of the LIFO stack on
// a uniform machine (the historical discipline), the fastest free
// processor (ties by lowest id) on a heterogeneous one. The caller must
// ensure Idle() > 0.
func (st *State) Take() int32 {
	last := len(st.free) - 1
	if st.m.speeds == nil {
		proc := st.free[last]
		st.free = st.free[:last]
		return proc
	}
	best := 0
	for i := 1; i <= last; i++ {
		pi, pb := st.free[i], st.free[best]
		if st.m.speeds[pi] > st.m.speeds[pb] || (st.m.speeds[pi] == st.m.speeds[pb] && pi < pb) {
			best = i
		}
	}
	proc := st.free[best]
	// Swap-remove: the (speed, id) argmax is independent of list order,
	// so the pick stays deterministic regardless of removal history.
	st.free[best] = st.free[last]
	st.free = st.free[:last]
	return proc
}

// Put returns a processor to the free set.
func (st *State) Put(proc int32) { st.free = append(st.free, proc) }

// PickEarliest returns the processor finishing a task of work w soonest
// if it were appended to that processor's current load: argmin over q of
// BusyUntil(q) + ExecTime(w, q), ties by lowest id. On a uniform machine
// this reduces to the least-loaded processor — the historical LPT rule —
// by comparing the next-free times directly (comparing the sums could tie
// under floating-point rounding where the loads differ).
func (st *State) PickEarliest(w float64) int {
	if st.m.speeds == nil {
		best := 0
		for q := 1; q < st.m.p; q++ {
			if st.busy[q] < st.busy[best] {
				best = q
			}
		}
		return best
	}
	best := 0
	bestAt := st.busy[0] + w/st.m.speeds[0]
	for q := 1; q < st.m.p; q++ {
		if at := st.busy[q] + w/st.m.speeds[q]; at < bestAt {
			best, bestAt = q, at
		}
	}
	return best
}

// BusyUntil returns processor q's next-free time.
func (st *State) BusyUntil(q int) float64 { return st.busy[q] }

// Occupy records that processor q is busy until the given time.
func (st *State) Occupy(q int, until float64) { st.busy[q] = until }

// MaxBusy returns the latest next-free time over all processors (the end
// of a placement phase).
func (st *State) MaxBusy() float64 {
	m := st.busy[0]
	for _, b := range st.busy[1:] {
		if b > m {
			m = b
		}
	}
	return m
}
