package machine

import (
	"encoding/json"
	"testing"
)

// FuzzSpec hardens the machine-spec codec: arbitrary input must never
// panic, any spec that parses must canonicalize and re-parse to the same
// machine (decode→encode→decode equality, text and JSON), and the
// processor-count cap must hold.
func FuzzSpec(f *testing.F) {
	f.Add("4")
	f.Add("2x1.0+2x0.5")
	f.Add("1x2+1")
	f.Add("0")
	f.Add("2x-1")
	f.Add("")
	f.Add("99999999999999999999x1")
	f.Add("1048576+1")
	f.Add("1x1e309")
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if m.P() < 1 || m.P() > MaxSpecProcs {
			t.Fatalf("accepted spec %q declares %d processors (cap %d)", spec, m.P(), MaxSpecProcs)
		}
		for i := 0; i < m.P(); i++ {
			if !(m.Speed(i) > 0) {
				t.Fatalf("accepted spec %q has non-positive speed %v at %d", spec, m.Speed(i), i)
			}
		}
		back, err := ParseSpec(m.Spec())
		if err != nil {
			t.Fatalf("canonical spec %q of accepted %q does not re-parse: %v", m.Spec(), spec, err)
		}
		if !m.Equal(back) {
			t.Fatalf("canonical round trip of %q changed the machine: %q", spec, m.Spec())
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("marshal of accepted spec %q failed: %v", spec, err)
		}
		var viaJSON Model
		if err := json.Unmarshal(b, &viaJSON); err != nil {
			t.Fatalf("JSON round trip of %q failed: %v", spec, err)
		}
		if !m.Equal(&viaJSON) {
			t.Fatalf("JSON round trip of %q changed the machine", spec)
		}
	})
}
