package machine

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustParse(t *testing.T, spec string) *Model {
	t.Helper()
	m, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return m
}

func TestParseSpecValid(t *testing.T) {
	cases := []struct {
		spec    string
		speeds  []float64
		uniform bool
	}{
		{"1", []float64{1}, true},
		{"4", []float64{1, 1, 1, 1}, true},
		{" 4 ", []float64{1, 1, 1, 1}, true},
		{"2x1.0+2x0.5", []float64{1, 1, 0.5, 0.5}, false},
		{"2+2x0.5", []float64{1, 1, 0.5, 0.5}, false},
		{"1x2+1", []float64{2, 1}, false},
		{"3x1", []float64{1, 1, 1}, true}, // explicit unit speed canonicalizes to uniform
		{"1x0.25+1x0.75+1x0.25", []float64{0.25, 0.75, 0.25}, false},
	}
	for _, c := range cases {
		m := mustParse(t, c.spec)
		if m.P() != len(c.speeds) {
			t.Errorf("ParseSpec(%q).P() = %d, want %d", c.spec, m.P(), len(c.speeds))
		}
		if m.IsUniform() != c.uniform {
			t.Errorf("ParseSpec(%q).IsUniform() = %v, want %v", c.spec, m.IsUniform(), c.uniform)
		}
		for i, s := range c.speeds {
			if m.Speed(i) != s {
				t.Errorf("ParseSpec(%q).Speed(%d) = %v, want %v", c.spec, i, m.Speed(i), s)
			}
		}
	}
}

func TestParseSpecMalformed(t *testing.T) {
	for _, spec := range []string{
		"",
		"   ",
		"0",
		"-3",
		"2x-1",
		"2x0",
		"2xNaN",
		"2xInf",
		"2x",
		"x2",
		"2x1x3",
		"4+",
		"+4",
		"4 + 4",                  // spaces inside the spec are not part of the grammar
		"2.5",                    // fractional count
		"99999999999999999999",   // count overflows int
		"99999999999999999999x1", // count overflows int, with speed
		"1048577",                // exceeds MaxSpecProcs by one
		"1048576+1",              // exceeds MaxSpecProcs across groups
	} {
		m, err := ParseSpec(spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) = %v, want error", spec, m)
			continue
		}
		// The error is the manual: it must enumerate the accepted grammar.
		if !strings.Contains(err.Error(), "COUNTxSPEED") || !strings.Contains(err.Error(), "2x1.0+2x0.5") {
			t.Errorf("ParseSpec(%q) error does not enumerate the grammar: %v", spec, err)
		}
	}
}

func TestParseSpecAtCap(t *testing.T) {
	m := mustParse(t, "1048576")
	if m.P() != MaxSpecProcs || !m.IsUniform() {
		t.Errorf("spec at the cap: P=%d uniform=%v", m.P(), m.IsUniform())
	}
}

func TestSpecCanonicalRoundTrip(t *testing.T) {
	for _, spec := range []string{"1", "4", "2x1.0+2x0.5", "1x2+1", "3x0.5", "1x0.25+1x0.75+1x0.25"} {
		m := mustParse(t, spec)
		back := mustParse(t, m.Spec())
		if !m.Equal(back) {
			t.Errorf("ParseSpec(%q).Spec() = %q re-parses to a different machine", spec, m.Spec())
		}
	}
	if got := mustParse(t, "2x1.0+2x0.5").Spec(); got != "2+2x0.5" {
		t.Errorf("canonical spec = %q, want 2+2x0.5", got)
	}
	if got := Uniform(8).Spec(); got != "8" {
		t.Errorf("uniform spec = %q, want 8", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, in := range []string{`"2x1.0+2x0.5"`, `"4"`, `4`} {
		var m Model
		if err := json.Unmarshal([]byte(in), &m); err != nil {
			t.Fatalf("unmarshal %s: %v", in, err)
		}
		b, err := json.Marshal(&m)
		if err != nil {
			t.Fatal(err)
		}
		var back Model
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if !m.Equal(&back) {
			t.Errorf("JSON round trip of %s changed the machine: %s", in, b)
		}
	}
	var m Model
	if err := json.Unmarshal([]byte(`"0"`), &m); err == nil {
		t.Error("unmarshal of invalid spec succeeded")
	}
}

func TestModelDerivedFields(t *testing.T) {
	m := mustParse(t, "1x0.5+2x2+1")
	if m.SumSpeed() != 5.5 {
		t.Errorf("SumSpeed = %v, want 5.5", m.SumSpeed())
	}
	if m.MaxSpeed() != 2 {
		t.Errorf("MaxSpeed = %v, want 2", m.MaxSpeed())
	}
	if m.Fastest() != 1 {
		t.Errorf("Fastest = %d, want 1 (lowest index at max speed)", m.Fastest())
	}
	if got := m.ExecTime(3, 0); got != 6 {
		t.Errorf("ExecTime(3, proc0@0.5) = %v, want 6", got)
	}
	if got := m.ExecTime(3, 1); got != 1.5 {
		t.Errorf("ExecTime(3, proc1@2) = %v, want 1.5", got)
	}
	u := Uniform(4)
	if u.SumSpeed() != 4 || u.MaxSpeed() != 1 || u.Fastest() != 0 || u.ExecTime(7, 3) != 7 {
		t.Errorf("uniform derived fields wrong: sum=%v max=%v fast=%d exec=%v",
			u.SumSpeed(), u.MaxSpeed(), u.Fastest(), u.ExecTime(7, 3))
	}
	if Uniform(2) != Uniform(2) {
		t.Error("small uniform models are not cached")
	}
}

// TestStateUniformLIFO pins the historical free-list discipline: processor
// 0 first, then the most recently released processor.
func TestStateUniformLIFO(t *testing.T) {
	st := NewState(Uniform(3))
	defer st.Recycle()
	if a, b, c := st.Take(), st.Take(), st.Take(); a != 0 || b != 1 || c != 2 {
		t.Fatalf("initial take order = %d,%d,%d, want 0,1,2", a, b, c)
	}
	if st.Idle() != 0 {
		t.Fatalf("Idle = %d, want 0", st.Idle())
	}
	st.Put(2)
	st.Put(1)
	if got := st.Take(); got != 1 {
		t.Errorf("after Put(2), Put(1): Take = %d, want 1 (LIFO)", got)
	}
}

// TestStateHeterogeneousFastestFirst pins the related-machines pick: the
// fastest free processor wins regardless of release order, ties by lowest
// processor id.
func TestStateHeterogeneousFastestFirst(t *testing.T) {
	m := mustParse(t, "1x0.5+1x2+1x2+1x1") // speeds [0.5, 2, 2, 1]
	st := NewState(m)
	defer st.Recycle()
	if got := st.Take(); got != 1 {
		t.Fatalf("first Take = %d, want 1 (fastest, lowest id)", got)
	}
	if got := st.Take(); got != 2 {
		t.Fatalf("second Take = %d, want 2", got)
	}
	if got := st.Take(); got != 3 {
		t.Fatalf("third Take = %d, want 3 (speed 1 before 0.5)", got)
	}
	st.Put(3)
	st.Put(1)
	if got := st.Take(); got != 1 { // released order must not matter
		t.Errorf("after releasing 3 then 1: Take = %d, want 1", got)
	}
}

func TestPickEarliest(t *testing.T) {
	m := mustParse(t, "1x1+1x0.5")
	st := NewState(m)
	defer st.Recycle()
	// Equal loads: the fast processor finishes w sooner.
	if got := st.PickEarliest(10); got != 0 {
		t.Errorf("PickEarliest on idle machine = %d, want 0", got)
	}
	// Fast processor busy until 15: 15+10 vs 0+20 — the slow one wins.
	st.Occupy(0, 15)
	if got := st.PickEarliest(10); got != 1 {
		t.Errorf("PickEarliest with busy fast proc = %d, want 1", got)
	}
	if st.MaxBusy() != 15 {
		t.Errorf("MaxBusy = %v, want 15", st.MaxBusy())
	}

	// Uniform: least-loaded wins even where the finish-time sums would tie
	// under floating-point rounding.
	u := NewState(Uniform(2))
	defer u.Recycle()
	u.Occupy(0, 0)
	u.Occupy(1, 1)
	if got := u.PickEarliest(1e16); got != 0 {
		t.Errorf("uniform PickEarliest = %d, want 0 (least loaded, not rounded sum)", got)
	}
}

func TestStateReuse(t *testing.T) {
	st := NewState(Uniform(2))
	st.Take()
	st.Occupy(1, 9)
	st.Recycle()
	st2 := NewState(Uniform(2))
	defer st2.Recycle()
	if st2.Idle() != 2 || st2.BusyUntil(1) != 0 {
		t.Errorf("recycled state not reset: idle=%d busy1=%v", st2.Idle(), st2.BusyUntil(1))
	}
}
