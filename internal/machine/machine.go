// Package machine is the explicit machine model of the scheduling core:
// p related (uniform-speed or heterogeneous) processors. The paper's model
// (§2) assumes p identical processors; the follow-up "Parallel scheduling
// of task trees with limited memory" (Eyraud-Dubois, Marchal, Sinnen,
// Vivien, 2014) generalizes exactly this dimension. A Model carries the
// per-processor speeds (task i runs on processor k in w_i/s_k time, the
// classic related-machines Q|.|. setting); a State is the pooled,
// allocation-free processor-availability bookkeeping every scheduler used
// to reimplement privately.
//
// Uniform machines (all speeds 1) are the fast path everywhere: on a
// uniform Model every scheduler in internal/sched reduces bit-for-bit to
// the historical identical-processors behavior, which is what lets the
// golden schedule hashes pin this refactor.
package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// Model is an immutable machine description: P processors with speeds
// s_0..s_{P-1}. The zero value is not a valid machine; build one with
// Uniform, New or ParseSpec.
type Model struct {
	p      int
	speeds []float64 // nil iff uniform (all speeds exactly 1)
	sum    float64   // Σ speeds
	max    float64   // max speed
	fast   int       // lowest index attaining max
}

// maxUniformCached bounds the eagerly cached uniform models; Uniform(p)
// beyond it allocates. 256 covers every machine size the hot paths see
// (the service caps p at 4096 but steady-state traffic is single-digit).
const maxUniformCached = 256

var uniformCache = func() []*Model {
	ms := make([]*Model, maxUniformCached+1)
	for p := 1; p <= maxUniformCached; p++ {
		ms[p] = &Model{p: p, sum: float64(p), max: 1, fast: 0}
	}
	return ms
}()

// Uniform returns the paper's machine: p identical processors of speed 1.
// Models for small p are cached, so hot paths may call this per schedule
// without allocating. Panics if p < 1 (processor counts are validated at
// the option/request layer).
func Uniform(p int) *Model {
	if p < 1 {
		panic(fmt.Sprintf("machine: uniform machine needs p >= 1, got %d", p))
	}
	if p <= maxUniformCached {
		return uniformCache[p]
	}
	return &Model{p: p, sum: float64(p), max: 1, fast: 0}
}

// New builds a model from per-processor speeds. Every speed must be a
// positive finite number; a machine where all speeds are exactly 1
// canonicalizes to Uniform(len(speeds)). The slice is copied.
func New(speeds []float64) (*Model, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("machine: need at least one processor speed")
	}
	uniform := true
	for i, s := range speeds {
		if !(s > 0) || s > maxFiniteSpeed { // !(>0) also rejects NaN
			return nil, fmt.Errorf("machine: processor %d has invalid speed %v (want a positive finite number)", i, s)
		}
		uniform = uniform && s == 1
	}
	if uniform {
		return Uniform(len(speeds)), nil
	}
	m := &Model{p: len(speeds), speeds: append([]float64(nil), speeds...)}
	for i, s := range m.speeds {
		m.sum += s
		if s > m.max {
			m.max = s
			m.fast = i
		}
	}
	return m, nil
}

// maxFiniteSpeed rejects speeds (and therefore speed sums) that would
// round to +Inf or drown every other processor; 1e18 is far beyond any
// physical speed ratio.
const maxFiniteSpeed = 1e18

// P returns the processor count.
func (m *Model) P() int { return m.p }

// IsUniform reports whether every processor has speed exactly 1 — the
// paper's model and the byte-identical fast path of every scheduler.
func (m *Model) IsUniform() bool { return m.speeds == nil }

// Speed returns the speed of processor i.
func (m *Model) Speed(i int) float64 {
	if m.speeds == nil {
		return 1
	}
	return m.speeds[i]
}

// SumSpeed returns Σ_k s_k, the machine's aggregate speed (equals P on a
// uniform machine). The speed-scaled area bound is total work / SumSpeed.
func (m *Model) SumSpeed() float64 { return m.sum }

// MaxSpeed returns the largest processor speed (1 on a uniform machine).
func (m *Model) MaxSpeed() float64 { return m.max }

// Fastest returns the lowest-index processor with the largest speed
// (processor 0 on a uniform machine).
func (m *Model) Fastest() int { return m.fast }

// ExecTime returns the execution time of a task with work w on processor
// proc: w/s_proc, exactly w on a uniform machine.
func (m *Model) ExecTime(w float64, proc int) float64 {
	if m.speeds == nil {
		return w
	}
	return w / m.speeds[proc]
}

// String returns the canonical spec (see Spec).
func (m *Model) String() string { return m.Spec() }

// Spec returns the canonical textual form of the model, parseable by
// ParseSpec: the bare processor count for a uniform machine ("4"), else
// run-length groups over consecutive equal speeds joined by '+', speed-1
// runs as bare counts ("2+2x0.5").
func (m *Model) Spec() string {
	if m.speeds == nil {
		return strconv.Itoa(m.p)
	}
	var b []byte
	for i := 0; i < m.p; {
		j := i
		for j < m.p && m.speeds[j] == m.speeds[i] {
			j++
		}
		if i > 0 {
			b = append(b, '+')
		}
		b = strconv.AppendInt(b, int64(j-i), 10)
		if s := m.speeds[i]; s != 1 {
			b = append(b, 'x')
			b = strconv.AppendFloat(b, s, 'g', -1, 64)
		}
		i = j
	}
	// The 'g' format writes large speeds as "1e+06"; that '+' would read
	// back as a group separator, so drop the redundant exponent sign
	// ("1e06" parses to the same value).
	return strings.ReplaceAll(string(b), "e+", "e")
}

// Equal reports whether the two models describe the same machine
// (same processor count and identical per-processor speeds).
func (m *Model) Equal(o *Model) bool {
	if m.p != o.p || (m.speeds == nil) != (o.speeds == nil) {
		return false
	}
	for i := range m.speeds {
		if m.speeds[i] != o.speeds[i] {
			return false
		}
	}
	return true
}

// MarshalJSON encodes the model as its canonical spec string.
func (m *Model) MarshalJSON() ([]byte, error) { return strconv.AppendQuote(nil, m.Spec()), nil }

// UnmarshalJSON decodes a spec string ("4", "2x1.0+2x0.5") or a bare
// integer processor count (4).
func (m *Model) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		var err error
		s, err = strconv.Unquote(s)
		if err != nil {
			return fmt.Errorf("machine: invalid spec literal %s", string(b))
		}
	}
	got, err := ParseSpec(s)
	if err != nil {
		return err
	}
	*m = *got
	return nil
}
