package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxSpecProcs caps the total processor count a spec may declare, so a
// tiny hostile spec string ("999999999x2") cannot demand an arbitrarily
// large speeds allocation. Service and CLI layers apply their own, much
// lower limits on top.
const MaxSpecProcs = 1 << 20

// specGrammar is the accepted grammar, enumerated in every parse error
// (the ParseHeuristic/ParseObjective convention: the error is the manual).
const specGrammar = `want COUNT or COUNTxSPEED groups joined by '+' — e.g. "4" (4 unit-speed processors) or "2x1.0+2x0.5" (2 fast + 2 half-speed); counts are integers >= 1 summing to at most 1048576, speeds positive finite numbers`

func specError(spec string, detail string) error {
	return fmt.Errorf("machine: bad spec %q: %s (%s)", spec, detail, specGrammar)
}

// ParseSpec parses the textual machine spec:
//
//	spec  := group ('+' group)*
//	group := COUNT | COUNT 'x' SPEED
//
// A bare COUNT declares that many unit-speed processors, COUNTxSPEED that
// many processors of the given speed; groups concatenate in order, so
// "2x1.0+2x0.5" is processors [1, 1, 0.5, 0.5]. The total processor count
// is capped at MaxSpecProcs.
func ParseSpec(spec string) (*Model, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, specError(spec, "empty spec")
	}
	// Parse the (few) groups first; the per-processor slice is only built
	// for genuinely heterogeneous specs, so a bare "1048576" costs a
	// handful of bytes, not a MaxSpecProcs-sized allocation.
	type group struct {
		count int
		speed float64
	}
	groups := make([]group, 0, strings.Count(s, "+")+1)
	total, uniform := 0, true
	for _, g := range strings.Split(s, "+") {
		countStr, speedStr, hasSpeed := strings.Cut(g, "x")
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return nil, specError(spec, fmt.Sprintf("bad processor count %q", countStr))
		}
		speed := 1.0
		if hasSpeed {
			speed, err = strconv.ParseFloat(speedStr, 64)
			if err != nil || !(speed > 0) || speed > maxFiniteSpeed {
				return nil, specError(spec, fmt.Sprintf("bad speed %q", speedStr))
			}
		}
		if count > MaxSpecProcs-total {
			return nil, specError(spec, fmt.Sprintf("more than %d processors", MaxSpecProcs))
		}
		total += count
		uniform = uniform && speed == 1
		groups = append(groups, group{count, speed})
	}
	if uniform {
		return Uniform(total), nil
	}
	speeds := make([]float64, 0, total)
	for _, g := range groups {
		for i := 0; i < g.count; i++ {
			speeds = append(speeds, g.speed)
		}
	}
	return New(speeds)
}
