package resilience

import (
	"sync"
	"testing"
	"time"
)

func ns(d time.Duration) int64 { return int64(d) }

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Capacity: 2, Target: time.Millisecond})
	if d := a.Admit(0, PriorityHigh); d != Admitted {
		t.Fatalf("first admit: %v", d)
	}
	if d := a.Admit(0, PriorityLow); d != Admitted {
		t.Fatalf("second admit: %v", d)
	}
	if d := a.Admit(0, PriorityHigh); d != ShedQueueFull {
		t.Fatalf("over-capacity admit: %v, want ShedQueueFull", d)
	}
	a.Done()
	if d := a.Admit(0, PriorityHigh); d != Admitted {
		t.Fatalf("admit after Done: %v", d)
	}
	if got := a.Occupancy(); got != 2 {
		t.Fatalf("occupancy %d, want 2", got)
	}
}

func TestAdmissionCoDelShedding(t *testing.T) {
	target := 10 * time.Millisecond
	a := NewAdmission(AdmissionConfig{Capacity: 100, Target: target, Interval: 2 * target})

	// Waits above target, but not yet for a full interval: no shedding.
	a.Observe(ns(0), 20*time.Millisecond)
	if a.Shedding() {
		t.Fatal("shedding after one bad wait")
	}
	a.Observe(ns(15*time.Millisecond), 20*time.Millisecond)
	if a.Shedding() {
		t.Fatal("shedding before the interval elapsed")
	}
	// A full interval of bad sojourns: overload.
	a.Observe(ns(25*time.Millisecond), 20*time.Millisecond)
	if !a.Shedding() {
		t.Fatal("not shedding after a full interval above target")
	}

	// Low priority sheds outright; high priority is re-admitted while the
	// window is under half full.
	if d := a.Admit(ns(26*time.Millisecond), PriorityLow); d != ShedOverload {
		t.Fatalf("low-priority admit while shedding: %v", d)
	}
	if d := a.Admit(ns(26*time.Millisecond), PriorityHigh); d != Admitted {
		t.Fatalf("high-priority admit with a drained window: %v", d)
	}
	// Fill past half: now even high priority sheds.
	for a.Occupancy()*2 < int64(a.Capacity()) {
		a.occupancy.Add(1)
	}
	if d := a.Admit(ns(27*time.Millisecond), PriorityHigh); d != ShedOverload {
		t.Fatalf("high-priority admit with a congested window: %v", d)
	}

	// One healthy sojourn ends the episode.
	a.Observe(ns(30*time.Millisecond), time.Millisecond)
	if a.Shedding() {
		t.Fatal("still shedding after a healthy sojourn")
	}
	if d := a.Admit(ns(31*time.Millisecond), PriorityLow); d != Admitted {
		t.Fatalf("low-priority admit after recovery: %v", d)
	}
}

func TestAdmissionConcurrentAccounting(t *testing.T) {
	a := NewAdmission(AdmissionConfig{Capacity: 64, Target: time.Second})
	var wg sync.WaitGroup
	var admitted sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if a.Admit(int64(i), PriorityHigh) == Admitted {
					a.Observe(int64(i), time.Microsecond)
					a.Done()
				}
				admitted.Store(g*1000+i, true)
			}
		}(g)
	}
	wg.Wait()
	if got := a.Occupancy(); got != 0 {
		t.Fatalf("occupancy %d after all Done, want 0", got)
	}
}

func TestDecisionNames(t *testing.T) {
	for d, want := range map[Decision]string{
		Admitted: "admitted", ShedQueueFull: "shed_queue_full", ShedOverload: "shed_overload",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	b := NewBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second})
	now := ns(0)
	for i := 0; i < 2; i++ {
		if !b.Allow(now) {
			t.Fatalf("closed breaker refused at failure %d", i)
		}
		b.Record(now, false)
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened below the failure threshold")
	}
	b.Record(now, false) // third consecutive failure trips it
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens %d, want 1", b.Opens())
	}
	if b.Allow(now + ns(999*time.Millisecond)) {
		t.Fatal("open breaker allowed inside the cooldown")
	}

	// Past the cooldown: exactly one probe gets through.
	probeAt := now + ns(time.Second)
	if !b.Allow(probeAt) {
		t.Fatal("no probe after the cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatal("breaker not half-open during the probe")
	}
	if b.Allow(probeAt) {
		t.Fatal("second concurrent probe admitted")
	}
	// Failed probe reopens immediately (no threshold).
	b.Record(probeAt, false)
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("failed probe: state %d opens %d, want open/2", b.State(), b.Opens())
	}

	// Next probe succeeds and closes it.
	probe2 := probeAt + ns(time.Second)
	if !b.Allow(probe2) {
		t.Fatal("no second probe")
	}
	b.Record(probe2, true)
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.Allow(probe2) {
		t.Fatal("closed breaker refused")
	}
	// A success mid-streak clears the consecutive-failure count.
	b.Record(probe2, false)
	b.Record(probe2, false)
	b.Record(probe2, true)
	b.Record(probe2, false)
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerStateNames(t *testing.T) {
	for s, want := range map[int32]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half_open",
	} {
		if BreakerStateName(s) != want {
			t.Errorf("BreakerStateName(%d) = %q, want %q", s, BreakerStateName(s), want)
		}
	}
}

func TestLadderStepsUpAndDown(t *testing.T) {
	l := NewLadder(LadderConfig{
		Light: 10 * time.Millisecond, Heavy: 40 * time.Millisecond,
		Cooldown: 100 * time.Millisecond,
	})
	if l.Level() != DegradeNone {
		t.Fatal("new ladder not at level 0")
	}
	// Sustained waits around 4× Heavy pull the EWMA over both thresholds.
	now := ns(0)
	for i := 0; i < 50; i++ {
		l.Observe(now, 160*time.Millisecond)
		now += ns(time.Millisecond)
	}
	if l.Level() != DegradeSingle {
		t.Fatalf("level %d after sustained heavy pressure, want %d (ewma %s)",
			l.Level(), DegradeSingle, l.Pressure())
	}
	// Calm waits: the EWMA decays, but the step down waits for the cooldown.
	for i := 0; i < 50; i++ {
		l.Observe(now, 0)
		now += ns(time.Millisecond)
	}
	if l.Level() != DegradeSingle {
		t.Fatalf("level %d dropped before cooldown", l.Level())
	}
	now += ns(100 * time.Millisecond)
	l.Observe(now, 0)
	if l.Level() != DegradeTop3 {
		t.Fatalf("level %d after first cooldown, want %d", l.Level(), DegradeTop3)
	}
	now += ns(100 * time.Millisecond)
	l.Observe(now, 0)
	if l.Level() != DegradeNone {
		t.Fatalf("level %d after second cooldown, want %d", l.Level(), DegradeNone)
	}
}

func TestLadderTelemetryFloor(t *testing.T) {
	floor := 0
	l := NewLadder(LadderConfig{
		Light: time.Hour, Heavy: 2 * time.Hour, // queue delay never triggers
		Cooldown: 50 * time.Millisecond,
		Floor:    func() int { return floor },
	})
	l.Observe(0, 0)
	if l.Level() != DegradeNone {
		t.Fatal("floor 0 degraded")
	}
	floor = DegradeTop3
	l.Observe(ns(time.Millisecond), 0)
	if l.Level() != DegradeTop3 {
		t.Fatalf("level %d with floor 1", l.Level())
	}
	floor = 99 // out-of-range floors clamp to DegradeSingle
	l.Observe(ns(2*time.Millisecond), 0)
	if l.Level() != DegradeSingle {
		t.Fatalf("level %d with floor 99", l.Level())
	}
	floor = 0
	l.Observe(ns(3*time.Millisecond)+ns(50*time.Millisecond), 0)
	l.Observe(ns(4*time.Millisecond)+ns(100*time.Millisecond), 0)
	l.Observe(ns(5*time.Millisecond)+ns(200*time.Millisecond), 0)
	if l.Level() != DegradeNone {
		t.Fatalf("level %d after floor cleared and cooldowns passed", l.Level())
	}
}

func TestScaleNodeBudget(t *testing.T) {
	const budget = 200_000
	if got := ScaleNodeBudget(budget, time.Hour); got != budget {
		t.Fatalf("ample budget scaled: %d", got)
	}
	// 100ms × 500 nodes/ms = 50k < 200k.
	if got := ScaleNodeBudget(budget, 100*time.Millisecond); got != 100*ExactNodesPerMilli {
		t.Fatalf("100ms budget: %d, want %d", got, 100*ExactNodesPerMilli)
	}
	if got := ScaleNodeBudget(budget, time.Millisecond); got != MinExactNodes {
		t.Fatalf("1ms budget: %d, want floor %d", got, MinExactNodes)
	}
	if got := ScaleNodeBudget(budget, -time.Second); got != MinExactNodes {
		t.Fatalf("negative budget: %d, want floor %d", got, MinExactNodes)
	}
	if got := ScaleNodeBudget(0, time.Millisecond); got != 0 {
		t.Fatalf("zero budget rewritten: %d", got)
	}
	// Determinism: equal inputs, equal outputs.
	if ScaleNodeBudget(budget, 73*time.Millisecond) != ScaleNodeBudget(budget, 73*time.Millisecond) {
		t.Fatal("ScaleNodeBudget not deterministic")
	}
}
