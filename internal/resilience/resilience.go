// Package resilience keeps treeschedd answering under overload instead of
// queueing unboundedly or falling over. It is the daemon's counterpart of
// the paper's discipline: just as the schedulers degrade the schedule
// quality knob when the memory cap is tight rather than failing, the
// service degrades its response quality knob when the latency/CPU budget
// is tight rather than stalling. Four mechanisms, all allocation-free on
// their hot paths:
//
//   - Admission: a bounded admission window with CoDel-style queue-delay
//     shedding and priority classes — when jobs have waited longer than a
//     target sojourn for a full interval, new arrivals are shed with an
//     immediate 503 until the queue drains, low-priority work (batch
//     lines) first.
//   - Breaker: a consecutive-failure circuit breaker guarding expensive
//     optional work (the Exact portfolio candidate): repeated budget
//     exhaustions trip it open for a cooldown; a single half-open probe
//     restores it.
//   - Ladder: a degradation ladder driven by smoothed queue delay plus a
//     telemetry floor — under pressure, portfolio requests step down
//     full race → top-3 candidates → single heuristic.
//   - ScaleNodeBudget: deadline-aware scaling of the exact solver's node
//     budget, so a request with little remaining time budget gets a
//     proportionally smaller search instead of a guaranteed timeout.
//
// Every type takes explicit unix-nano timestamps so tests drive the clock
// deterministically; the service passes time.Now().UnixNano().
package resilience

import "time"

// ExactNodesPerMilli is the conservative branch-and-bound exploration
// rate ScaleNodeBudget assumes when converting a remaining time budget
// into a node budget: the solver explores well over this many decision
// nodes per millisecond on oracle-sized trees, so a budget scaled with it
// finishes inside the deadline with room for the other stages.
const ExactNodesPerMilli = 500

// MinExactNodes is the floor ScaleNodeBudget never goes below: an anytime
// search needs a few nodes to improve on its seeded incumbent at all, and
// below this the fixed setup cost dominates the search anyway.
const MinExactNodes = 1 << 10

// ScaleNodeBudget shrinks an exact-solver node budget to what fits into
// the remaining time budget, assuming ExactNodesPerMilli. It returns
// budget unchanged when the remaining time is ample, and never less than
// MinExactNodes (a non-positive remaining budget means the deadline
// already passed; the caller's next ctx check answers 503, so the floor
// is harmless). The result depends only on the arguments, so equal
// requests with equal remaining budgets degrade identically.
func ScaleNodeBudget(budget int64, remaining time.Duration) int64 {
	if budget <= 0 {
		return budget
	}
	fits := remaining.Milliseconds() * ExactNodesPerMilli
	if fits >= budget {
		return budget
	}
	if fits < MinExactNodes {
		return MinExactNodes
	}
	return fits
}
