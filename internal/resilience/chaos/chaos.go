// Package chaos is treeschedd's deterministic fault injector: seeded,
// compiled-in injection points the service consults at well-defined sites
// (worker start, batch lines, cache lookups). Every decision comes from a
// splitmix64 hash of (seed, site, per-site sequence number), so a given
// seed produces the same per-site fault sequence on every run — the chaos
// e2e suite replays fault mixes reproducibly and asserts invariants
// (exactly one response per accepted request, no goroutine leaks,
// unfaulted outputs byte-identical) rather than eyeballing logs.
//
// An Injector is configured from a compact spec string, the same grammar
// the treeschedd -chaos flag takes:
//
//	seed=42,latency=0.5:5ms,panic=0.1,cancel=0.05,evict=0.2
//
// Each fault is independent and optional: latency=P:D sleeps D on a
// worker with probability P; panic=P panics on a worker (contained by the
// service's per-request recover — the request fails, the daemon lives);
// cancel=P cancels the batch context mid-stream, simulating a client
// disconnect; evict=P purges the response cache before a lookup, the
// eviction-storm case. A nil *Injector is valid and injects nothing, so
// the production path costs one nil check per site.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site identifies an injection point. Each site draws from its own
// deterministic sequence, so adding calls at one site never perturbs the
// faults another site sees.
type Site uint8

const (
	// SiteWorker is consulted once per pool-worker job, before the job's
	// CPU work: latency and panic faults fire here.
	SiteWorker Site = iota
	// SiteBatchLine is consulted once per accepted batch line: a cancel
	// fault cancels the whole batch's context, the mid-batch disconnect.
	SiteBatchLine
	// SiteCache is consulted once per response-cache lookup: an evict
	// fault purges the cache first, the eviction-storm case.
	SiteCache
	numSites
)

// Kind is the fault an injection point decided on.
type Kind uint8

const (
	None Kind = iota
	// Latency: sleep Fault.Dur before proceeding.
	Latency
	// Panic: panic with a recognizable message; the per-request recover
	// turns it into one internal-error response.
	Panic
	// Cancel: cancel the surrounding (batch) context.
	Cancel
	// Evict: purge the response cache.
	Evict
)

// Fault is one injection decision.
type Fault struct {
	Kind Kind
	// Dur is the added latency for Latency faults.
	Dur time.Duration
}

// Config parameterizes an Injector. Probabilities are in [0, 1].
type Config struct {
	Seed        int64
	LatencyProb float64
	LatencyDur  time.Duration
	PanicProb   float64
	CancelProb  float64
	EvictProb   float64
}

// Injector draws deterministic fault decisions. Safe for concurrent use;
// a nil receiver injects nothing.
type Injector struct {
	cfg Config
	seq [numSites]atomic.Uint64
}

// New builds an Injector from cfg.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Parse builds an Injector from a spec string like
// "seed=42,latency=0.5:5ms,panic=0.1,cancel=0.05,evict=0.2". An empty
// spec returns a nil Injector (no chaos).
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("chaos: bad term %q (want key=value)", part)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q", val)
			}
			cfg.Seed = n
		case "latency":
			p, rest, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("chaos: bad latency %q (want prob:duration, e.g. 0.5:5ms)", val)
			}
			prob, err := parseProb(p)
			if err != nil {
				return nil, fmt.Errorf("chaos: latency: %v", err)
			}
			d, err := time.ParseDuration(rest)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("chaos: bad latency duration %q", rest)
			}
			cfg.LatencyProb, cfg.LatencyDur = prob, d
		case "panic":
			prob, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("chaos: panic: %v", err)
			}
			cfg.PanicProb = prob
		case "cancel":
			prob, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("chaos: cancel: %v", err)
			}
			cfg.CancelProb = prob
		case "evict":
			prob, err := parseProb(val)
			if err != nil {
				return nil, fmt.Errorf("chaos: evict: %v", err)
			}
			cfg.EvictProb = prob
		default:
			return nil, fmt.Errorf("chaos: unknown fault %q (want seed, latency, panic, cancel or evict)", key)
		}
	}
	return New(cfg), nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("bad probability %q (want a number in [0,1])", s)
	}
	return p, nil
}

// String renders the injector's configuration in Parse's grammar.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", in.cfg.Seed)
	if in.cfg.LatencyProb > 0 {
		fmt.Fprintf(&b, ",latency=%g:%s", in.cfg.LatencyProb, in.cfg.LatencyDur)
	}
	if in.cfg.PanicProb > 0 {
		fmt.Fprintf(&b, ",panic=%g", in.cfg.PanicProb)
	}
	if in.cfg.CancelProb > 0 {
		fmt.Fprintf(&b, ",cancel=%g", in.cfg.CancelProb)
	}
	if in.cfg.EvictProb > 0 {
		fmt.Fprintf(&b, ",evict=%g", in.cfg.EvictProb)
	}
	return b.String()
}

// At draws the next fault decision for site. Decisions at one site form a
// deterministic sequence per seed; concurrent callers each get a distinct
// draw. A nil Injector always returns Fault{None}.
func (in *Injector) At(site Site) Fault {
	if in == nil {
		return Fault{}
	}
	switch site {
	case SiteWorker:
		// Independent draws per fault class, so latency and panic can mix
		// at one site without stealing each other's probability mass.
		if in.roll(site, 0) < in.cfg.LatencyProb {
			return Fault{Kind: Latency, Dur: in.cfg.LatencyDur}
		}
		if in.roll(site, 1) < in.cfg.PanicProb {
			return Fault{Kind: Panic}
		}
	case SiteBatchLine:
		if in.roll(site, 0) < in.cfg.CancelProb {
			return Fault{Kind: Cancel}
		}
	case SiteCache:
		if in.roll(site, 0) < in.cfg.EvictProb {
			return Fault{Kind: Evict}
		}
	}
	return Fault{}
}

// roll returns the next uniform draw in [0,1) for (site, class): a
// splitmix64 finalizer over the seed, the site's running sequence number
// and the fault class.
func (in *Injector) roll(site Site, class uint64) float64 {
	seq := in.seq[site].Add(1)
	x := uint64(in.cfg.Seed) ^ (uint64(site)+1)<<56 ^ class<<48 ^ seq
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
