package chaos

import (
	"strings"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=42,latency=0.5:5ms,panic=0.1,cancel=0.05,evict=0.2"
	in, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if in.String() != spec {
		t.Fatalf("String() = %q, want %q", in.String(), spec)
	}
	again, err := Parse(in.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.cfg != in.cfg {
		t.Fatalf("round-trip config %+v != %+v", again.cfg, in.cfg)
	}
}

func TestParseEmptyAndNil(t *testing.T) {
	in, err := Parse("  ")
	if err != nil || in != nil {
		t.Fatalf("empty spec: injector %v err %v, want nil/nil", in, err)
	}
	// A nil injector is inert at every site.
	for site := Site(0); site < numSites; site++ {
		if f := in.At(site); f.Kind != None {
			t.Fatalf("nil injector faulted at site %d: %+v", site, f)
		}
	}
	if in.String() != "" {
		t.Fatalf("nil String() = %q", in.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"latency",           // no value
		"latency=0.5",       // missing duration
		"latency=2:5ms",     // probability out of range
		"latency=0.5:-1ms",  // non-positive duration
		"latency=0.5:bogus", // unparsable duration
		"panic=x",           // unparsable probability
		"panic=-0.1",        // negative probability
		"cancel=1.5",        // out of range
		"evict=oops",        // unparsable
		"seed=abc",          // unparsable seed
		"teleport=0.5",      // unknown fault
		"seed=1,,panic=0.1", // empty term
		"seed=1 panic=0.1",  // missing comma
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestDeterministicSequences(t *testing.T) {
	const spec = "seed=7,latency=0.3:1ms,panic=0.2,cancel=0.4,evict=0.5"
	draw := func() (faults [numSites][]Kind) {
		in, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for site := Site(0); site < numSites; site++ {
			for i := 0; i < 200; i++ {
				faults[site] = append(faults[site], in.At(site).Kind)
			}
		}
		return faults
	}
	a, b := draw(), draw()
	for site := range a {
		for i := range a[site] {
			if a[site][i] != b[site][i] {
				t.Fatalf("site %d draw %d differs across identically seeded injectors: %v vs %v",
					site, i, a[site][i], b[site][i])
			}
		}
	}
	// A different seed produces a different sequence (overwhelmingly).
	in2, _ := Parse(strings.Replace(spec, "seed=7", "seed=8", 1))
	same := true
	for i := 0; i < 200; i++ {
		if in2.At(SiteWorker).Kind != a[SiteWorker][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 7 and seed 8 produced identical worker fault sequences")
	}
}

func TestFaultRatesRoughlyMatchProbabilities(t *testing.T) {
	in := New(Config{Seed: 1, LatencyProb: 0.25, LatencyDur: time.Millisecond})
	const n = 10_000
	hits := 0
	for i := 0; i < n; i++ {
		f := in.At(SiteWorker)
		if f.Kind == Latency {
			if f.Dur != time.Millisecond {
				t.Fatalf("latency fault carries duration %v", f.Dur)
			}
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.2 || rate > 0.3 {
		t.Fatalf("latency rate %.3f far from configured 0.25", rate)
	}
}

func TestSitesAreIndependent(t *testing.T) {
	// Only the configured site faults; the others stay silent.
	in := New(Config{Seed: 3, CancelProb: 1})
	for i := 0; i < 50; i++ {
		if f := in.At(SiteWorker); f.Kind != None {
			t.Fatalf("worker site faulted with only cancel configured: %+v", f)
		}
		if f := in.At(SiteCache); f.Kind != None {
			t.Fatalf("cache site faulted with only cancel configured: %+v", f)
		}
		if f := in.At(SiteBatchLine); f.Kind != Cancel {
			t.Fatalf("batch site missed a probability-1 cancel: %+v", f)
		}
	}
}
