//go:build !race

package resilience

const raceEnabled = false
