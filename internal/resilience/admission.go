package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Priority classes order who gets shed first under overload. Liveness
// endpoints (/healthz, /metrics, /readyz) never pass through admission at
// all — they are answered on their handler goroutines — so the classes
// only rank CPU-bound work.
type Priority uint8

const (
	// PriorityHigh marks interactive single requests (/v1/schedule,
	// /v1/portfolio, /v1/forest): shed only while the queue is still far
	// from drained.
	PriorityHigh Priority = iota
	// PriorityLow marks batch lines: the first work shed under overload.
	PriorityLow
)

// Decision is the outcome of one admission check.
type Decision uint8

const (
	// Admitted lets the request onto the worker queue. The caller must
	// pair it with exactly one Done.
	Admitted Decision = iota
	// ShedQueueFull rejects because the admission window is at capacity:
	// accepting more would only grow the queue delay for everyone.
	ShedQueueFull
	// ShedOverload rejects because dequeued jobs have exceeded the target
	// sojourn for a full interval: the queue is technically open but
	// serving it means stale answers, so arrivals are shed until it drains.
	ShedOverload
)

// String names the decision for metric labels.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case ShedQueueFull:
		return "shed_queue_full"
	default:
		return "shed_overload"
	}
}

// AdmissionConfig parameterizes an Admission controller.
type AdmissionConfig struct {
	// Capacity is the admission window: the maximum number of admitted,
	// not-yet-finished jobs. Must be >= 1.
	Capacity int
	// Target is the acceptable queue sojourn (CoDel's target): dequeue
	// waits at or below it mean the queue is healthy.
	Target time.Duration
	// Interval is how long dequeue waits must continuously exceed Target
	// before shedding begins (CoDel's initial interval). 0 means 2×Target.
	Interval time.Duration
}

// Admission is a bounded admission window with CoDel-style queue-delay
// shedding. Admit is called on the request path (atomics only, no
// allocation); Observe is called once per job at dequeue with the time it
// waited for a worker; Done releases the window slot at completion.
//
// The shedding rule follows CoDel's shape: a queue is overloaded not when
// it is long but when it is persistently slow. When every dequeue for a
// full Interval has waited longer than Target, new arrivals are shed —
// PriorityLow immediately, PriorityHigh only while the window is still
// more than half full — until a dequeue wait comes back under Target.
type Admission struct {
	cfg AdmissionConfig

	// occupancy counts admitted, not-yet-Done jobs.
	occupancy atomic.Int64
	// shedding is the published overload state, read by Admit and Shedding.
	shedding atomic.Bool

	// mu guards the sojourn state machine below (touched once per dequeue).
	mu sync.Mutex
	// above records that dequeue waits have been over Target since
	// aboveSince, without coming back down.
	above      bool
	aboveSince int64
}

// NewAdmission builds a controller. Capacity < 1 is raised to 1; an unset
// Interval defaults to 2×Target.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * cfg.Target
	}
	return &Admission{cfg: cfg}
}

// Admit decides whether a request of class pri may enter the worker queue
// at time now (unix nanoseconds). An Admitted result takes a window slot;
// the caller must release it with Done exactly once. Shed results take
// nothing. Admit never blocks and never allocates.
func (a *Admission) Admit(now int64, pri Priority) Decision {
	occ := a.occupancy.Load()
	if occ >= int64(a.cfg.Capacity) {
		return ShedQueueFull
	}
	if a.shedding.Load() {
		// Low priority sheds for the whole overload episode; high priority
		// is re-admitted as soon as the window has drained to half, so
		// single requests come back before batch lines do.
		if pri == PriorityLow || occ*2 >= int64(a.cfg.Capacity) {
			return ShedOverload
		}
	}
	a.occupancy.Add(1)
	return Admitted
}

// Done releases the window slot of an admitted job. Call exactly once per
// Admitted decision, after the job finished (or was abandoned).
func (a *Admission) Done() { a.occupancy.Add(-1) }

// Observe feeds one dequeue wait into the shedding state machine: wait is
// how long the job sat in the queue before a worker picked it up, now is
// the dequeue time in unix nanoseconds. A wait at or under Target ends
// any overload episode immediately; waits above it for a full Interval
// start one.
func (a *Admission) Observe(now int64, wait time.Duration) {
	a.mu.Lock()
	if wait <= a.cfg.Target {
		a.above = false
		if a.shedding.Load() {
			a.shedding.Store(false)
		}
		a.mu.Unlock()
		return
	}
	if !a.above {
		a.above, a.aboveSince = true, now
	} else if now-a.aboveSince >= int64(a.cfg.Interval) && !a.shedding.Load() {
		a.shedding.Store(true)
	}
	a.mu.Unlock()
}

// Shedding reports whether the controller is currently in an overload
// episode (new arrivals are being shed). /readyz turns this into a 503 so
// a load balancer can drain the node.
func (a *Admission) Shedding() bool { return a.shedding.Load() }

// Occupancy returns the number of admitted, not-yet-finished jobs.
func (a *Admission) Occupancy() int64 { return a.occupancy.Load() }

// Capacity returns the admission window size.
func (a *Admission) Capacity() int { return a.cfg.Capacity }
