package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Degradation levels. Higher levels trade answer quality for latency, the
// same shape as the paper's memory/makespan knob: under a tight resource
// budget the quality degrades, the service does not fall over.
const (
	// DegradeNone: full portfolio race, every candidate.
	DegradeNone = 0
	// DegradeTop3: portfolio requests race only the first three
	// candidates of their selection; the Exact candidate is dropped.
	DegradeTop3 = 1
	// DegradeSingle: portfolio requests run one heuristic, no race.
	DegradeSingle = 2
)

// LadderConfig parameterizes a Ladder.
type LadderConfig struct {
	// Light and Heavy are the smoothed queue-delay thresholds of levels
	// DegradeTop3 and DegradeSingle. Both must be > 0 and Light < Heavy.
	Light, Heavy time.Duration
	// Cooldown is how long measured pressure must stay below a level's
	// threshold before the ladder steps back down one rung. 0 means
	// DefaultLadderCooldown. Stepping up is immediate; stepping down is
	// deliberate, so the service does not flap between full and degraded
	// answers at the threshold.
	Cooldown time.Duration
	// Floor, when non-nil, returns a minimum level from out-of-band
	// telemetry (the service wires goroutine-count pressure here). It is
	// consulted on every Observe, so it must be cheap.
	Floor func() int
}

// DefaultLadderCooldown is the step-down hold time when Cooldown is 0.
const DefaultLadderCooldown = 2 * time.Second

// Ladder converts measured pressure into a degradation level. Observe is
// called once per dequeued job with its queue wait; Level is the hot-path
// read (one atomic load, no allocation). Pressure is an exponentially
// weighted moving average of queue waits (7/8 old + 1/8 new), so one
// outlier wait cannot degrade the service and one fast dequeue cannot
// instantly restore it.
type Ladder struct {
	cfg LadderConfig

	level atomic.Int32

	mu     sync.Mutex
	ewmaNS int64
	// heldAt is when the ladder last saw pressure justifying the current
	// level; a step-down requires Cooldown of calm after it.
	heldAt int64
}

// NewLadder builds a ladder; an unset Cooldown becomes
// DefaultLadderCooldown.
func NewLadder(cfg LadderConfig) *Ladder {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultLadderCooldown
	}
	return &Ladder{cfg: cfg}
}

// Observe feeds one queue wait into the pressure average and moves the
// level: up immediately when the average (or the telemetry floor) calls
// for it, down one rung after Cooldown of lower pressure.
func (l *Ladder) Observe(now int64, wait time.Duration) {
	l.mu.Lock()
	l.ewmaNS -= l.ewmaNS >> 3
	l.ewmaNS += int64(wait) >> 3
	want := DegradeNone
	switch {
	case l.ewmaNS >= int64(l.cfg.Heavy):
		want = DegradeSingle
	case l.ewmaNS >= int64(l.cfg.Light):
		want = DegradeTop3
	}
	if l.cfg.Floor != nil {
		if f := l.cfg.Floor(); f > want {
			want = f
			if want > DegradeSingle {
				want = DegradeSingle
			}
		}
	}
	cur := int(l.level.Load())
	switch {
	case want >= cur:
		if want > cur {
			l.level.Store(int32(want))
		}
		l.heldAt = now
	case now-l.heldAt >= int64(l.cfg.Cooldown):
		l.level.Store(int32(cur - 1))
		l.heldAt = now
	}
	l.mu.Unlock()
}

// Level returns the current degradation level (DegradeNone, DegradeTop3
// or DegradeSingle). One atomic load; safe on any hot path.
func (l *Ladder) Level() int { return int(l.level.Load()) }

// Pressure returns the current smoothed queue wait, for diagnostics.
func (l *Ladder) Pressure() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.ewmaNS)
}
