package resilience

import (
	"testing"
	"time"
)

// TestAllocsAdmissionDecision pins the admission hot path at zero
// allocations: every request pays one Admit, and every dequeued job one
// Observe + Done, so none of the three may allocate.
func TestAllocsAdmissionDecision(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	a := NewAdmission(AdmissionConfig{Capacity: 64, Target: 100 * time.Millisecond})
	var now int64
	got := testing.AllocsPerRun(1000, func() {
		now += int64(time.Millisecond)
		if a.Admit(now, PriorityHigh) == Admitted {
			a.Observe(now, 50*time.Microsecond)
			a.Done()
		}
	})
	if got != 0 {
		t.Errorf("admission decision cycle allocates %.1f/op, want 0", got)
	}
}

// TestAllocsBreakerCheck pins the breaker hot path at zero allocations:
// portfolio requests with an Exact candidate pay one Allow and one Record
// each.
func TestAllocsBreakerCheck(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	b := NewBreaker(BreakerConfig{Failures: 5, Cooldown: time.Second})
	var now int64
	got := testing.AllocsPerRun(1000, func() {
		now += int64(time.Millisecond)
		if b.Allow(now) {
			b.Record(now, now%3 != 0)
		}
	})
	if got != 0 {
		t.Errorf("breaker check cycle allocates %.1f/op, want 0", got)
	}
}

// TestAllocsLadder pins the ladder at zero allocations on both ends: the
// per-dequeue Observe and the per-request Level read.
func TestAllocsLadder(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	l := NewLadder(LadderConfig{Light: 10 * time.Millisecond, Heavy: 40 * time.Millisecond})
	var now int64
	got := testing.AllocsPerRun(1000, func() {
		now += int64(time.Millisecond)
		l.Observe(now, 5*time.Millisecond)
		_ = l.Level()
	})
	if got != 0 {
		t.Errorf("ladder observe/level cycle allocates %.1f/op, want 0", got)
	}
}
