//go:build race

package resilience

// raceEnabled reports that the race detector is active; the allocation
// pins skip, since the race runtime instruments atomics and mutexes with
// extra allocations that say nothing about the production paths.
const raceEnabled = true
