package resilience

import (
	"sync/atomic"
	"time"
)

// Breaker states.
const (
	BreakerClosed   int32 = iota // normal operation
	BreakerOpen                  // tripped: callers skip the guarded work
	BreakerHalfOpen              // cooldown elapsed: one probe in flight
)

// BreakerStateName names a breaker state for metrics and wire fields.
func BreakerStateName(s int32) string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half_open"
	}
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// Failures is how many consecutive failures trip the breaker open.
	// Must be >= 1.
	Failures int
	// Cooldown is how long the breaker stays open before letting one
	// half-open probe through.
	Cooldown time.Duration
}

// Breaker is a consecutive-failure circuit breaker. treeschedd wraps the
// Exact portfolio candidate in one: a budget exhaustion (the search ran
// out of nodes without proving optimality) is a failure, a proof is a
// success, and Failures consecutive exhaustions mean the current workload
// is too big for proofs — so the candidate is skipped entirely for
// Cooldown instead of burning a full node budget per request on searches
// that cannot close. After the cooldown a single probe request runs the
// candidate again; a proof closes the breaker, another exhaustion reopens
// it.
//
// Allow and Record are allocation-free and safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	state    atomic.Int32
	failures atomic.Int32
	openedAt atomic.Int64 // unix ns of the trip that opened it
	opens    atomic.Int64 // cumulative open transitions, for metrics
}

// NewBreaker builds a breaker; Failures < 1 is raised to 1.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Failures < 1 {
		cfg.Failures = 1
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether the guarded work may run at time now (unix
// nanoseconds). While open it returns false until Cooldown has elapsed,
// then admits exactly one caller as the half-open probe (further callers
// keep getting false until that probe Records an outcome).
func (b *Breaker) Allow(now int64) bool {
	switch b.state.Load() {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now-b.openedAt.Load() < int64(b.cfg.Cooldown) {
			return false
		}
		// First caller past the cooldown wins the probe slot.
		return b.state.CompareAndSwap(BreakerOpen, BreakerHalfOpen)
	default: // half-open: a probe is already in flight
		return false
	}
}

// Record reports the outcome of a run Allow admitted. A success closes
// the breaker and clears the failure streak; a failure extends the streak
// — tripping the breaker open at the configured threshold — and a failed
// half-open probe reopens it immediately.
func (b *Breaker) Record(now int64, ok bool) {
	if ok {
		b.failures.Store(0)
		b.state.Store(BreakerClosed)
		return
	}
	if b.state.Load() == BreakerHalfOpen {
		b.trip(now)
		return
	}
	if b.failures.Add(1) >= int32(b.cfg.Failures) {
		b.trip(now)
	}
}

func (b *Breaker) trip(now int64) {
	b.openedAt.Store(now)
	b.failures.Store(0)
	if b.state.Swap(BreakerOpen) != BreakerOpen {
		b.opens.Add(1)
	}
}

// State returns the current breaker state (BreakerClosed/Open/HalfOpen).
func (b *Breaker) State() int32 { return b.state.Load() }

// Opens returns the cumulative number of closed/half-open → open
// transitions, for the metrics layer.
func (b *Breaker) Opens() int64 { return b.opens.Load() }
