package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Exemplars link histogram buckets back to concrete requests: each bucket
// remembers the request id of the largest observation seen inside a
// freshness window, so a bump in a latency bucket on /metrics can be
// joined against the flight recorder's retained trace for that request.
//
// The record path stays zero-allocation and effectively lock-free: the
// common case (the sample does not beat the bucket's current exemplar and
// the exemplar is still fresh) is two atomic loads. Only a replacement —
// a new per-window maximum, or an expired exemplar — takes the slot's
// mutex, and replacement writes only integers and a string header.

// DefaultExemplarWindow is the freshness horizon used by EnableExemplars:
// an exemplar older than this is replaced by the next observation, so
// /metrics never advertises a request id that has long since rotated out
// of the flight recorder.
const DefaultExemplarWindow = 5 * time.Minute

// exemplarSlot is one bucket's exemplar state.
type exemplarSlot struct {
	// val/at mirror the locked fields for cheap lock-free screening on
	// the record path; the locked fields are the source of truth so id,
	// value and timestamp are always mutually consistent for readers.
	val atomic.Int64
	at  atomic.Int64 // unix ns; zero means no exemplar yet

	mu   sync.Mutex
	id   string
	lval int64
	lat  int64
}

// record offers (v, id) as an exemplar observed now (unix ns). The sample
// wins the slot when the slot is empty, stale (older than windowNS), or v
// is at least the current value.
func (s *exemplarSlot) record(v int64, id string, now, windowNS int64) {
	at := s.at.Load()
	if at != 0 && now-at <= windowNS && v < s.val.Load() {
		return
	}
	s.mu.Lock()
	// Re-check under the lock against the authoritative fields: a racing
	// recorder may have published a larger, fresher exemplar meanwhile.
	if s.lat == 0 || now-s.lat > windowNS || v >= s.lval {
		s.id = id
		s.lval = v
		s.lat = now
		s.val.Store(v)
		s.at.Store(now)
	}
	s.mu.Unlock()
}

// load returns the slot's exemplar, if any.
func (s *exemplarSlot) load() (id string, v int64, atNS int64, ok bool) {
	s.mu.Lock()
	id, v, atNS = s.id, s.lval, s.lat
	s.mu.Unlock()
	return id, v, atNS, atNS != 0
}

// EnableExemplars allocates one exemplar slot per bucket (including +Inf)
// with the given freshness window (DefaultExemplarWindow when window <= 0).
// Call once at startup, before the histogram sees traffic; exemplars are
// exposed only in OpenMetrics mode.
func (h *Histogram) EnableExemplars(window time.Duration) {
	if window <= 0 {
		window = DefaultExemplarWindow
	}
	h.enableExemplarsNS(window.Nanoseconds())
}

func (h *Histogram) enableExemplarsNS(windowNS int64) {
	h.exemplars = make([]exemplarSlot, len(h.bounds)+1)
	h.exemplarWindowNS = windowNS
}

// EnableExemplars makes every child (existing and future) carry exemplar
// slots with the given freshness window. Call once at startup.
func (v *HistogramVec) EnableExemplars(window time.Duration) {
	if window <= 0 {
		window = DefaultExemplarWindow
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.exemplarWindowNS = window.Nanoseconds()
	for _, h := range v.children {
		h.enableExemplarsNS(v.exemplarWindowNS)
	}
}

// ObserveExemplar records one sample like Observe and offers id as the
// bucket's exemplar. Zero-allocation; the exemplar update is two atomic
// loads unless the sample wins the bucket (new per-window maximum or the
// current exemplar expired), which takes a short per-bucket mutex. On a
// histogram without EnableExemplars it degrades to plain Observe.
func (h *Histogram) ObserveExemplar(v int64, id string) {
	i := h.bucketAdd(v)
	if h.exemplars == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.exemplars[i].record(v, id, time.Now().UnixNano(), h.exemplarWindowNS)
}

// Exemplar is the point-in-time copy of one bucket's exemplar, in native
// units. Used by tests and debug tooling; /metrics exposition formats
// exemplars directly.
type Exemplar struct {
	Bucket    int // bucket index; len(bounds) is the +Inf bucket
	RequestID string
	Value     int64
	AtUnixNS  int64
}

// ExemplarSnapshot returns the currently recorded exemplars, one entry per
// bucket that has one. Returns nil when exemplars are disabled.
func (h *Histogram) ExemplarSnapshot() []Exemplar {
	if h.exemplars == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if id, v, at, ok := h.exemplars[i].load(); ok {
			out = append(out, Exemplar{Bucket: i, RequestID: id, Value: v, AtUnixNS: at})
		}
	}
	return out
}
