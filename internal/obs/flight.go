package obs

import (
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder retains evidence about completed requests after the
// response is gone: a fixed-size ring of tail-sampled request records,
// each carrying the request's span timeline and its outcome labels. Tail
// sampling means the keep/drop decision happens at completion, when the
// outcome is known — errors and slow requests are always kept, a
// deterministic 1-in-N of the rest rides along as a baseline (same
// expected rate as coin-flip sampling with no RNG state on the hot path).
//
// The insert path is zero-allocation warm and effectively lock-free:
// a single atomic fetch-add claims a ring slot, and publication into the
// slot takes only that slot's own mutex (uncontended unless the ring
// wraps onto a slot a reader is copying). Slot buffers are reused across
// wraps, so a warm ring's insert allocates nothing. A true seqlock would
// be torn-read-unsafe for the string headers involved and would trip the
// race detector; per-slot mutexes give the same scalability for a ring
// that sees one writer per completed request.

// FlightSpan is one span inside a retained request record: flat, with an
// explicit parent index into the same slice (-1 for root), offsets in
// microseconds from the start of the request.
type FlightSpan struct {
	Name    string  `json:"name"`
	Parent  int32   `json:"parent"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Value   int64   `json:"value,omitempty"`
}

// FlightInfo is the outcome summary a completed request offers to the
// recorder.
type FlightInfo struct {
	RequestID string
	Endpoint  string
	Status    int
	Duration  time.Duration
	Error     string // response error message, empty on success
	ErrorKind string // metrics error kind: decode, limit, cancelled, internal
	Cached    bool
	Machine   string // machine spec the request ran against
	Heuristic string // winning / reporting heuristic, if any
	Nodes     int    // tree size (or forest job count)
	Degraded  string // comma-joined degradation actions, empty for full answers
}

// FlightEntry is one retained record as served by GET /debug/flight.
type FlightEntry struct {
	Seq        uint64       `json:"seq"`
	RequestID  string       `json:"request_id"`
	Endpoint   string       `json:"endpoint"`
	Status     int          `json:"status"`
	DurationUS float64      `json:"duration_us"`
	Time       string       `json:"time"` // completion time, RFC3339Nano
	Sampled    string       `json:"sampled"`
	Error      string       `json:"error,omitempty"`
	ErrorKind  string       `json:"error_kind,omitempty"`
	Cached     bool         `json:"cached,omitempty"`
	Machine    string       `json:"machine,omitempty"`
	Heuristic  string       `json:"heuristic,omitempty"`
	Nodes      int          `json:"nodes,omitempty"`
	Degraded   string       `json:"degraded,omitempty"`
	Spans      []FlightSpan `json:"spans,omitempty"`

	atNS int64 // completion time, unix ns; Time is rendered at read time
}

// Keep reasons recorded on entries.
const (
	SampledError = "error"   // kept because the request failed
	SampledSlow  = "slow"    // kept because it exceeded the latency threshold
	SampledTail  = "sampled" // kept by the 1-in-N baseline sampler
)

// flightMaxSpans bounds how many spans one ring slot retains.
const flightMaxSpans = 256

type flightSlot struct {
	mu  sync.Mutex
	seq uint64 // global sequence of the resident entry; 0 while empty
	e   FlightEntry
}

// FlightRecorder is the fixed-size tail-sampling ring.
type FlightRecorder struct {
	slowNS      int64
	sampleEvery uint64
	seen        atomic.Uint64 // requests offered
	kept        atomic.Uint64 // requests retained (== next sequence number)
	slots       []flightSlot
}

// NewFlightRecorder returns a ring with size slots. Requests slower than
// slow and requests with a non-empty Error are always kept; of the rest,
// one in sampleEvery is kept (0 or 1 keeps everything). size is clamped
// to at least 1.
func NewFlightRecorder(size int, slow time.Duration, sampleEvery int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &FlightRecorder{
		slowNS:      slow.Nanoseconds(),
		sampleEvery: uint64(sampleEvery),
		slots:       make([]flightSlot, size),
	}
}

// Seen returns the number of requests offered to the recorder.
func (f *FlightRecorder) Seen() uint64 { return f.seen.Load() }

// Kept returns the number of requests retained (including ones that have
// since been overwritten by ring wrap).
func (f *FlightRecorder) Kept() uint64 { return f.kept.Load() }

// Record offers a completed request. tr may be nil (no spans retained —
// the early-reject path). Returns whether the request was kept.
// Zero-allocation once the ring is warm.
func (f *FlightRecorder) Record(info FlightInfo, tr *Trace) bool {
	n := f.seen.Add(1)
	var why string
	switch {
	case info.Error != "":
		why = SampledError
	case info.Duration.Nanoseconds() >= f.slowNS:
		why = SampledSlow
	case n%f.sampleEvery == 0:
		why = SampledTail
	default:
		return false
	}
	seq := f.kept.Add(1)
	s := &f.slots[(seq-1)%uint64(len(f.slots))]
	s.mu.Lock()
	spans := s.e.Spans
	s.e = FlightEntry{
		Seq:        seq,
		RequestID:  info.RequestID,
		Endpoint:   info.Endpoint,
		Status:     info.Status,
		DurationUS: float64(info.Duration.Nanoseconds()) / 1e3,
		Sampled:    why,
		Error:      info.Error,
		ErrorKind:  info.ErrorKind,
		Cached:     info.Cached,
		Machine:    info.Machine,
		Heuristic:  info.Heuristic,
		Nodes:      info.Nodes,
		Degraded:   info.Degraded,
		Spans:      tr.AppendFlightSpans(spans[:0], flightMaxSpans),
		atNS:       time.Now().UnixNano(),
	}
	s.seq = seq
	s.mu.Unlock()
	return true
}

// Snapshot deep-copies the retained entries, newest first. The read path
// allocates freely — it runs on a debug endpoint, not per request.
func (f *FlightRecorder) Snapshot() []FlightEntry {
	out := make([]FlightEntry, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.seq != 0 {
			e := s.e
			e.Spans = append([]FlightSpan(nil), s.e.Spans...)
			e.Time = time.Unix(0, e.atNS).UTC().Format(time.RFC3339Nano)
			out = append(out, e)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Dump logs every retained entry, oldest first, one structured record
// each — the on-demand slog form of the ring for postmortems without an
// HTTP client.
func (f *FlightRecorder) Dump(log *slog.Logger) {
	if log == nil {
		return
	}
	entries := f.Snapshot()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		log.Info("flight",
			"seq", e.Seq,
			"request_id", e.RequestID,
			"endpoint", e.Endpoint,
			"status", e.Status,
			"duration_us", e.DurationUS,
			"time", e.Time,
			"sampled", e.Sampled,
			"error", e.Error,
			"error_kind", e.ErrorKind,
			"cached", e.Cached,
			"machine", e.Machine,
			"heuristic", e.Heuristic,
			"nodes", e.Nodes,
			"degraded", e.Degraded,
			"spans", len(e.Spans),
		)
	}
}
