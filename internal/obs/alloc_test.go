package obs

import (
	"testing"
	"time"
)

// TestAllocsHistogramObserve pins the zero-allocation contract of the
// metrics record path: observing a sample and bumping counters allocate
// nothing.
func TestAllocsHistogramObserve(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	h := NewHistogram("h", "help", 1e-9, ExpBuckets(1000, 4, 16))
	c := NewCounter("c", "help")
	v := NewCounterVec("v", "help", "kind", true)
	child := v.With("decode") // resolved once, as handlers do
	got := testing.AllocsPerRun(100, func() {
		h.Observe(123_456)
		c.Inc()
		child.Add(2)
	})
	if got != 0 {
		t.Errorf("metric record path allocates %.1f/op, want 0", got)
	}
}

// TestAllocsTraceSpans pins the span pool contract: on a warm pool an
// entire acquire → start/end → release cycle allocates nothing, so
// tracing adds zero warm allocations to the schedule path.
func TestAllocsTraceSpans(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	AcquireTrace().Release() // warm the pool
	got := testing.AllocsPerRun(100, func() {
		tr := AcquireTrace()
		a := tr.Start("decode", RootSpan)
		tr.End(a)
		b := tr.Start("schedule", RootSpan)
		c := tr.Start("candidate:liu", b)
		tr.SetValue(c, 42)
		tr.End(c)
		tr.End(b)
		tr.Release()
	})
	if got != 0 {
		t.Errorf("warm trace cycle allocates %.1f/op, want 0", got)
	}
}

// TestAllocsFlightRecord pins the ring-insert contract: once every slot's
// span buffer has been sized by a first lap around the ring, recording a
// kept request — slot claim, entry fill, span copy — allocates nothing.
func TestAllocsFlightRecord(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	f := NewFlightRecorder(8, 0, 1) // slow=0: every request is kept
	tr := AcquireTrace()
	defer tr.Release()
	a := tr.Start("decode", RootSpan)
	tr.End(a)
	b := tr.Start("schedule", RootSpan)
	tr.SetValue(b, 7)
	tr.End(b)
	info := FlightInfo{
		RequestID: "r1", Endpoint: "/v1/schedule", Status: 200,
		Duration: 3 * time.Millisecond, Machine: "2x1", Heuristic: "parsub", Nodes: 40,
	}
	for i := 0; i < 16; i++ { // two laps: warm every slot's span buffer
		f.Record(info, tr)
	}
	got := testing.AllocsPerRun(100, func() {
		f.Record(info, tr)
	})
	if got != 0 {
		t.Errorf("warm flight-recorder insert allocates %.1f/op, want 0", got)
	}
}

// TestAllocsExemplarObserve pins the exemplar record path: observing with
// an exemplar id allocates nothing, on both the screen-and-skip path and
// the replacement path (tick grows, so every call wins its bucket).
func TestAllocsExemplarObserve(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	h := NewHistogram("h", "help", 1e-9, ExpBuckets(1000, 4, 16))
	h.EnableExemplars(DefaultExemplarWindow)
	var tick int64
	h.ObserveExemplar(999, "r0") // seed the first bucket near its bound
	got := testing.AllocsPerRun(100, func() {
		tick += 997
		h.ObserveExemplar(tick, "r1") // always a new per-bucket max: replacement path
		h.ObserveExemplar(1, "r2")    // never beats the seed: screening path
	})
	if got != 0 {
		t.Errorf("exemplar record path allocates %.1f/op, want 0", got)
	}
}
