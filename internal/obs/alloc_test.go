package obs

import "testing"

// TestAllocsHistogramObserve pins the zero-allocation contract of the
// metrics record path: observing a sample and bumping counters allocate
// nothing.
func TestAllocsHistogramObserve(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	h := NewHistogram("h", "help", 1e-9, ExpBuckets(1000, 4, 16))
	c := NewCounter("c", "help")
	v := NewCounterVec("v", "help", "kind", true)
	child := v.With("decode") // resolved once, as handlers do
	got := testing.AllocsPerRun(100, func() {
		h.Observe(123_456)
		c.Inc()
		child.Add(2)
	})
	if got != 0 {
		t.Errorf("metric record path allocates %.1f/op, want 0", got)
	}
}

// TestAllocsTraceSpans pins the span pool contract: on a warm pool an
// entire acquire → start/end → release cycle allocates nothing, so
// tracing adds zero warm allocations to the schedule path.
func TestAllocsTraceSpans(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under the race detector")
	}
	AcquireTrace().Release() // warm the pool
	got := testing.AllocsPerRun(100, func() {
		tr := AcquireTrace()
		a := tr.Start("decode", RootSpan)
		tr.End(a)
		b := tr.Start("schedule", RootSpan)
		c := tr.Start("candidate:liu", b)
		tr.SetValue(c, 42)
		tr.End(c)
		tr.End(b)
		tr.Release()
	})
	if got != 0 {
		t.Errorf("warm trace cycle allocates %.1f/op, want 0", got)
	}
}
