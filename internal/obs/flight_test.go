package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func flightOK(id string, d time.Duration) FlightInfo {
	return FlightInfo{RequestID: id, Endpoint: "/v1/schedule", Status: 200, Duration: d}
}

// TestFlightTailSampling checks the keep policy: errors and slow requests
// always kept, the rest kept 1-in-N.
func TestFlightTailSampling(t *testing.T) {
	f := NewFlightRecorder(64, 100*time.Millisecond, 4)
	if !f.Record(FlightInfo{RequestID: "err", Status: 500, Error: "boom", ErrorKind: "internal"}, nil) {
		t.Error("error request must always be kept")
	}
	if !f.Record(flightOK("slow", 250*time.Millisecond), nil) {
		t.Error("slow request must always be kept")
	}
	kept := 0
	for i := 0; i < 40; i++ {
		if f.Record(flightOK(fmt.Sprintf("fast%d", i), time.Millisecond), nil) {
			kept++
		}
	}
	if kept != 10 { // 40 fast requests at 1-in-4, counter offset by the 2 above
		t.Errorf("kept %d of 40 fast requests, want 10 (1-in-4)", kept)
	}
	if f.Seen() != 42 || f.Kept() != 12 {
		t.Errorf("Seen/Kept = %d/%d, want 42/12", f.Seen(), f.Kept())
	}

	entries := f.Snapshot()
	if len(entries) != 12 {
		t.Fatalf("snapshot has %d entries, want 12", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Seq >= entries[i-1].Seq {
			t.Fatal("snapshot must be newest-first")
		}
	}
	bySampled := map[string]int{}
	for _, e := range entries {
		bySampled[e.Sampled]++
	}
	if bySampled[SampledError] != 1 || bySampled[SampledSlow] != 1 || bySampled[SampledTail] != 10 {
		t.Errorf("sampled reasons = %v, want error:1 slow:1 sampled:10", bySampled)
	}
	newest := entries[0]
	if newest.Time == "" || newest.Endpoint != "/v1/schedule" {
		t.Errorf("entry missing time/endpoint: %+v", newest)
	}
}

// TestFlightRingWrap checks that the ring retains exactly the newest
// `size` kept entries and that labels and spans survive the copy.
func TestFlightRingWrap(t *testing.T) {
	f := NewFlightRecorder(4, 0, 1) // keep everything
	tr := AcquireTrace()
	defer tr.Release()
	a := tr.Start("decode", RootSpan)
	tr.End(a)
	b := tr.Start("schedule", RootSpan)
	tr.SetValue(b, 9)
	tr.End(b)
	for i := 0; i < 10; i++ {
		info := flightOK(fmt.Sprintf("r%d", i), time.Millisecond)
		info.Machine = "4x1+4x0.5"
		info.Heuristic = "parsub"
		info.Nodes = 40 + i
		info.Cached = i%2 == 0
		f.Record(info, tr)
	}
	entries := f.Snapshot()
	if len(entries) != 4 {
		t.Fatalf("ring of 4 retains %d entries", len(entries))
	}
	if entries[0].RequestID != "r9" || entries[3].RequestID != "r6" {
		t.Errorf("retained ids %s..%s, want r9..r6", entries[0].RequestID, entries[3].RequestID)
	}
	e := entries[0]
	if e.Machine != "4x1+4x0.5" || e.Heuristic != "parsub" || e.Nodes != 49 {
		t.Errorf("labels lost in ring: %+v", e)
	}
	if len(e.Spans) != 2 || e.Spans[0].Name != "decode" || e.Spans[1].Value != 9 {
		t.Errorf("spans lost in ring: %+v", e.Spans)
	}
}

// TestFlightConcurrent hammers the ring from many goroutines while a
// reader snapshots — the -race proof of the slot protocol.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(8, 0, 1)
	tr := AcquireTrace()
	defer tr.Release()
	tr.End(tr.Start("stage", RootSpan))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record(flightOK(fmt.Sprintf("w%d-%d", w, i), time.Millisecond), tr)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			for _, e := range f.Snapshot() {
				if e.RequestID == "" || e.Seq == 0 {
					t.Error("torn entry in snapshot")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if f.Kept() != 2000 {
		t.Errorf("Kept = %d, want 2000", f.Kept())
	}
}

// TestFlightDump checks the slog dump emits one record per retained entry,
// oldest first.
func TestFlightDump(t *testing.T) {
	f := NewFlightRecorder(8, 0, 1)
	f.Record(FlightInfo{RequestID: "a", Endpoint: "/v1/schedule", Status: 200}, nil)
	f.Record(FlightInfo{RequestID: "b", Endpoint: "/v1/forest", Status: 500, Error: "boom", ErrorKind: "internal"}, nil)
	var buf bytes.Buffer
	f.Dump(slog.New(slog.NewJSONHandler(&buf, nil)))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"request_id":"a"`) || !strings.Contains(lines[1], `"request_id":"b"`) {
		t.Errorf("dump must be oldest-first:\n%s", buf.String())
	}
	if !strings.Contains(lines[1], `"error_kind":"internal"`) {
		t.Errorf("dump line missing error kind:\n%s", lines[1])
	}
	f.Dump(nil) // must not panic
}
