package obs

import (
	"sync"
	"time"
)

// Trace is a request-scoped span recorder. Spans form a tree via explicit
// parent ids (so concurrent recorders — the portfolio race's candidate
// goroutines — never race on an implicit stack), live in one pooled
// buffer reused across requests, and materialize into a JSON-encodable
// SpanNode tree on demand.
//
// A nil *Trace is the disabled tracer: every method is a no-op, so
// untraced requests pay exactly one nil check per instrumented stage.
// On a warm pool, Start/End/SetValue allocate nothing.
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	spans []span
}

type span struct {
	name       string
	parent     int32
	start, end int64 // ns since t0; end < 0 while the span is open
	value      int64
}

var tracePool = sync.Pool{New: func() any {
	return &Trace{spans: make([]span, 0, 16)}
}}

// AcquireTrace returns an empty trace from the pool with its clock
// started. Release it when the span tree has been materialized.
func AcquireTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.t0 = time.Now()
	t.spans = t.spans[:0]
	return t
}

// Release returns the trace to the pool. The caller must not touch the
// trace afterwards. Safe on nil.
func (t *Trace) Release() {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// Start opens a span under parent (RootSpan for a top-level span) and
// returns its id. Safe on nil (returns a no-op id).
func (t *Trace) Start(name string, parent int) int {
	if t == nil {
		return -1
	}
	now := time.Since(t.t0).Nanoseconds()
	t.mu.Lock()
	id := len(t.spans)
	t.spans = append(t.spans, span{name: name, parent: int32(parent), start: now, end: -1})
	t.mu.Unlock()
	return id
}

// RootSpan is the parent id of top-level spans.
const RootSpan = -1

// End closes the span. Safe on nil and on a no-op id.
func (t *Trace) End(id int) {
	if t == nil || id < 0 {
		return
	}
	now := time.Since(t.t0).Nanoseconds()
	t.mu.Lock()
	if id < len(t.spans) {
		t.spans[id].end = now
	}
	t.mu.Unlock()
}

// SetValue attaches an int64 attribute to the span (an explored-node
// count, a peak memory). Safe on nil and on a no-op id; may be called
// after End.
func (t *Trace) SetValue(id int, v int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if id < len(t.spans) {
		t.spans[id].value = v
	}
	t.mu.Unlock()
}

// AppendFlightSpans appends the recorded spans to dst in recording order,
// flat with explicit parent indices — the form the flight recorder's ring
// slots store, chosen so a warm slot reuses its backing array and the
// copy allocates nothing. At most max spans are copied (a deep candidate
// fan-out cannot blow up a ring slot); open spans are closed at the
// current instant. Safe on nil (returns dst unchanged).
func (t *Trace) AppendFlightSpans(dst []FlightSpan, max int) []FlightSpan {
	if t == nil {
		return dst
	}
	now := time.Since(t.t0).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.spans)
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		sp := &t.spans[i]
		end := sp.end
		if end < 0 {
			end = now
		}
		dst = append(dst, FlightSpan{
			Name:    sp.name,
			Parent:  sp.parent,
			StartUS: float64(sp.start) / 1e3,
			DurUS:   float64(end-sp.start) / 1e3,
			Value:   sp.value,
		})
	}
	return dst
}

// SpanNode is the wire form of one span: offsets and durations in
// microseconds from the start of the trace, nested children in recording
// order.
type SpanNode struct {
	Name    string      `json:"name"`
	StartUS float64     `json:"start_us"`
	DurUS   float64     `json:"dur_us"`
	Value   int64       `json:"value,omitempty"`
	Spans   []*SpanNode `json:"spans,omitempty"`
}

// Tree materializes the recorded spans into a tree rooted at a synthetic
// "request" span covering the whole trace. Returns nil when nothing was
// recorded. Spans still open are closed at the current instant, so
// durations are always non-negative.
func (t *Trace) Tree() *SpanNode {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0).Nanoseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	nodes := make([]*SpanNode, len(t.spans))
	var total int64
	for i := range t.spans {
		sp := &t.spans[i]
		end := sp.end
		if end < 0 {
			end = now
		}
		if end > total {
			total = end
		}
		nodes[i] = &SpanNode{
			Name:    sp.name,
			StartUS: float64(sp.start) / 1e3,
			DurUS:   float64(end-sp.start) / 1e3,
			Value:   sp.value,
		}
	}
	root := &SpanNode{Name: "request", DurUS: float64(total) / 1e3}
	for i := range t.spans {
		parent := root
		if p := t.spans[i].parent; p >= 0 && int(p) < len(nodes) && int(p) != i {
			parent = nodes[p]
		}
		parent.Spans = append(parent.Spans, nodes[i])
	}
	return root
}

// Walk visits the node and its descendants depth-first, passing each
// node's depth (0 for the receiver). Used by CLI trace printers.
func (n *SpanNode) Walk(visit func(node *SpanNode, depth int)) {
	if n == nil {
		return
	}
	var rec func(m *SpanNode, d int)
	rec = func(m *SpanNode, d int) {
		visit(m, d)
		for _, c := range m.Spans {
			rec(c, d+1)
		}
	}
	rec(n, 0)
}
