package obs

import (
	"sync/atomic"
	"time"
)

// WindowedRatio is the counting substrate for SLO burn rates: a ring of
// time-bucketed good/bad counters that can answer "what fraction of
// requests were bad over the last W?" for any window the ring covers.
// Recording is wait-free atomic arithmetic (zero-allocation); summing
// happens at scrape time.
//
// Buckets are reused in place: a recorder that lands on a bucket from an
// older epoch claims it with a CAS and zeroes the counts. A sample racing
// that reset within the same nanosecond-scale window can be attributed to
// the wrong epoch or dropped; burn rates are statistical monitoring
// signals, and the error is bounded by one sample per bucket turnover.
type WindowedRatio struct {
	bucketNS int64
	buckets  []ratioBucket
}

type ratioBucket struct {
	epoch atomic.Int64 // bucket index since the unix epoch; 0 = never used
	total atomic.Int64
	bad   atomic.Int64
}

// NewWindowedRatio returns a ring of n buckets of the given width. The
// ring answers windows up to (n-1)*bucket wide; wider queries saturate at
// what the ring retains.
func NewWindowedRatio(bucket time.Duration, n int) *WindowedRatio {
	if bucket <= 0 || n < 2 {
		panic("obs: WindowedRatio needs bucket > 0 and n >= 2")
	}
	return &WindowedRatio{bucketNS: bucket.Nanoseconds(), buckets: make([]ratioBucket, n)}
}

// Record counts one request at nowNS (unix ns), bad or good.
func (r *WindowedRatio) Record(bad bool, nowNS int64) {
	epoch := nowNS / r.bucketNS
	b := &r.buckets[epoch%int64(len(r.buckets))]
	if old := b.epoch.Load(); old != epoch {
		if b.epoch.CompareAndSwap(old, epoch) {
			b.total.Store(0)
			b.bad.Store(0)
		}
	}
	b.total.Add(1)
	if bad {
		b.bad.Add(1)
	}
}

// Counts sums the buckets inside the window ending at nowNS and returns
// (bad, total).
func (r *WindowedRatio) Counts(window time.Duration, nowNS int64) (bad, total int64) {
	nowEpoch := nowNS / r.bucketNS
	k := window.Nanoseconds() / r.bucketNS
	if k < 1 {
		k = 1
	}
	if max := int64(len(r.buckets)) - 1; k > max {
		k = max
	}
	for i := range r.buckets {
		b := &r.buckets[i]
		e := b.epoch.Load()
		if e > nowEpoch-k && e <= nowEpoch {
			total += b.total.Load()
			bad += b.bad.Load()
		}
	}
	return bad, total
}

// BurnRate returns the SLO burn rate over the window: the observed bad
// fraction divided by the error budget (1 - objective), where objective
// is the target good fraction (e.g. 0.999). A burn rate of 1 spends the
// budget exactly; above 1 the budget is burning. Returns 0 when the
// window saw no traffic.
func (r *WindowedRatio) BurnRate(window time.Duration, objective float64, nowNS int64) float64 {
	bad, total := r.Counts(window, nowNS)
	if total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}
