package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestWriteOpenMetrics checks the OpenMetrics page shape: counter
// families drop _total in HELP/TYPE while samples keep it, histogram
// buckets carry exemplars, and the page ends with # EOF.
func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("app_requests_total", "Total requests.")
	c.Add(7)
	ev := NewCounterVec("app_errors_total", "Errors by kind.", "kind", true)
	ev.With("decode").Add(2)
	g := NewGaugeFunc("app_goroutines", "Goroutines.", func() float64 { return 12 })
	h := NewHistogram("app_latency_seconds", "Latency.", 1e-9, []int64{1_000_000})
	h.EnableExemplars(time.Hour)
	h.ObserveExemplar(500_000, "r42")
	r.Register(c, ev, g, h)

	var b bytes.Buffer
	r.WriteOpenMetrics(&b)
	page := b.String()

	for _, want := range []string{
		"# HELP app_requests Total requests.\n",
		"# TYPE app_requests counter\n",
		"app_requests_total 7\n",
		"# TYPE app_errors counter\n",
		`app_errors_total{kind="decode"} 2`,
		"# TYPE app_goroutines gauge\n",
		"# TYPE app_latency_seconds histogram\n",
		`app_latency_seconds_bucket{le="0.001"} 1 # {request_id="r42"} 0.0005 `,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("OpenMetrics page missing %q in:\n%s", want, page)
		}
	}
	if !strings.HasSuffix(page, "# EOF\n") {
		t.Errorf("OpenMetrics page must end with # EOF, got tail %q", page[max(0, len(page)-40):])
	}
	if strings.Contains(page, "# HELP app_requests_total") {
		t.Error("OpenMetrics counter HELP must drop the _total suffix")
	}

	// The classic text page for the same registry keeps _total in headers,
	// has no exemplars, and has no EOF terminator.
	b.Reset()
	r.WriteText(&b)
	text := b.String()
	if !strings.Contains(text, "# HELP app_requests_total Total requests.\n") {
		t.Error("text page must keep _total in HELP")
	}
	if strings.Contains(text, "# EOF") || strings.Contains(text, "request_id=") {
		t.Error("text page must carry neither # EOF nor exemplars")
	}
	parseExposition(t, text) // and it must still machine-parse
}

// TestFamilyNames checks registration-order name listing — the contract
// the CI metrics drift gate is built on.
func TestFamilyNames(t *testing.T) {
	r := NewRegistry()
	r.Register(NewCounter("b_total", ""), NewGaugeFunc("a", "", func() float64 { return 0 }))
	got := r.FamilyNames()
	if len(got) != 2 || got[0] != "b_total" || got[1] != "a" {
		t.Errorf("FamilyNames = %v, want [b_total a]", got)
	}
}

// TestFuncGauges checks the multi-label callback gauge family used for
// SLO burn rates.
func TestFuncGauges(t *testing.T) {
	g := NewFuncGauges("app_burn_rate", "Burn rate.")
	g.Add([][2]string{{"endpoint", "/v1/schedule"}, {"window", "5m"}}, func() float64 { return 2.5 })
	g.Add([][2]string{{"endpoint", "/v1/schedule"}, {"window", "1h"}}, func() float64 { return 0.5 })
	r := NewRegistry()
	r.Register(g)
	var b bytes.Buffer
	r.WriteText(&b)
	page := b.String()
	for _, want := range []string{
		"# TYPE app_burn_rate gauge\n",
		`app_burn_rate{endpoint="/v1/schedule",window="5m"} 2.5` + "\n",
		`app_burn_rate{endpoint="/v1/schedule",window="1h"} 0.5` + "\n",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q in:\n%s", want, page)
		}
	}
	parseExposition(t, page)
}
