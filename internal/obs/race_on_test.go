//go:build race

package obs

// raceEnabled reports that the race detector is active; the allocation
// pins skip, since the race runtime instruments sync.Pool and atomics
// with extra allocations that say nothing about the production paths.
const raceEnabled = true
