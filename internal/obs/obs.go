// Package obs is the dependency-free observability core of treesched: a
// metrics registry with atomic counters, callback gauges and fixed
// log-bucket histograms exposed in Prometheus text format, plus a pooled
// request-scoped span tracer.
//
// The package exists to make the bicriteria trade-off this repository is
// about — makespan versus peak memory — visible in a running system
// without touching the zero-allocation contract of the scheduling core:
//
//   - The record path of every metric is wait-free arithmetic on
//     atomic.Int64 fields. Observing a histogram sample is a bounded
//     binary search over precomputed bucket bounds plus two atomic adds;
//     no locks, no maps, no allocation. Handlers resolve labeled children
//     (*Counter, *Histogram) once at startup and hold the pointers.
//   - The exposition path (scrape time) takes the allocations instead:
//     families are formatted on demand, each emitting its # HELP and
//     # TYPE header exactly once followed by its samples, so the whole
//     /metrics page comes from one writer with one format.
//   - Spans are recorded into a pooled, mutex-guarded buffer that is
//     reused across requests; a nil *Trace turns every method into a
//     no-op, so untraced requests pay a single nil check per stage.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Metric is one exposition family: a named group of samples sharing a
// HELP string and a TYPE. Implementations are Counter, CounterVec,
// GaugeFunc, FuncCounter, ConstGauge, Histogram, HistogramVec and
// FuncGauges.
type Metric interface {
	// FamilyName is the metric family name (without _bucket/_sum/_count
	// suffixes for histograms).
	FamilyName() string
	// expose writes the family's HELP/TYPE header and all its samples.
	// When om is true the family is written in OpenMetrics form: counter
	// families drop the _total suffix from their HELP/TYPE lines (samples
	// keep it) and histogram buckets may carry exemplars.
	expose(w io.Writer, om bool)
}

// Registry is an ordered collection of metric families with a Prometheus
// text exposition writer. Registration happens at startup; WriteText may
// be called concurrently with the record paths.
type Registry struct {
	mu       sync.Mutex
	families []Metric
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// Register adds metric families to the registry in exposition order.
// Registering two families with the same name panics: one family must own
// each name so HELP/TYPE headers are emitted exactly once per family.
func (r *Registry) Register(ms ...Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range ms {
		name := m.FamilyName()
		if r.names[name] {
			panic("obs: duplicate metric family " + name)
		}
		r.names[name] = true
		r.families = append(r.families, m)
	}
}

// WriteText writes every registered family in Prometheus text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := r.families
	r.mu.Unlock()
	for _, m := range fams {
		m.expose(w, false)
	}
}

// WriteOpenMetrics writes every registered family in OpenMetrics 1.0 text
// form: counter families are named without their _total suffix in HELP and
// TYPE lines (samples keep the suffix), histogram buckets carry exemplars
// when recorded, and the page ends with the mandatory # EOF terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	r.mu.Lock()
	fams := r.families
	r.mu.Unlock()
	for _, m := range fams {
		m.expose(w, true)
	}
	io.WriteString(w, "# EOF\n")
}

// FamilyNames returns the names of every registered family in registration
// order. Used by drift gates that assert each registered family actually
// shows up in a scraped /metrics page.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.families))
	for i, m := range r.families {
		names[i] = m.FamilyName()
	}
	return names
}

// omFamily is the OpenMetrics family name for a counter: the _total sample
// suffix belongs to the sample, not the family, so HELP/TYPE drop it.
func omFamily(name string) string {
	return strings.TrimSuffix(name, "_total")
}

// counterHeader writes a counter family header in the requested format.
func counterHeader(w io.Writer, name, help string, om bool) {
	if om {
		header(w, omFamily(name), help, "counter")
		return
	}
	header(w, name, help, "counter")
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use when constructed via NewCounter (which carries name/help); bare
// counters inside a CounterVec are exposed by their parent.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// NewCounter returns a registrable counter family with a single unlabeled
// sample.
func NewCounter(name, help string) *Counter {
	return &Counter{name: name, help: help}
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the family to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FamilyName implements Metric.
func (c *Counter) FamilyName() string { return c.name }

func (c *Counter) expose(w io.Writer, om bool) {
	counterHeader(w, c.name, c.help, om)
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// CounterVec is a counter family labeled by one label name. Children are
// created on first use and never removed; resolve them once with With and
// hold the pointer to keep the record path map-free.
type CounterVec struct {
	name, help, label string
	// emitTotal additionally exposes an unlabeled sample equal to the sum
	// of all children — the dashboard-continuity form of labeling a
	// previously unlabeled counter.
	emitTotal bool
	mu        sync.RWMutex
	children  map[string]*Counter
}

// NewCounterVec returns a counter family labeled by label. When withTotal
// is true the family also exposes an unlabeled sample holding the sum of
// all children, so existing dashboards keyed on the bare name keep
// working after the family gains labels.
func NewCounterVec(name, help, label string, withTotal bool) *CounterVec {
	return &CounterVec{name: name, help: help, label: label,
		emitTotal: withTotal, children: make(map[string]*Counter)}
}

// With returns the child counter for the label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// FamilyName implements Metric.
func (v *CounterVec) FamilyName() string { return v.name }

func (v *CounterVec) expose(w io.Writer, om bool) {
	v.mu.RLock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	counts := make([]int64, len(values))
	var total int64
	for i, val := range values {
		counts[i] = v.children[val].Value()
		total += counts[i]
	}
	v.mu.RUnlock()
	counterHeader(w, v.name, v.help, om)
	if v.emitTotal {
		fmt.Fprintf(w, "%s %d\n", v.name, total)
	}
	for i, val := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, counts[i])
	}
}

// GaugeFunc is a gauge whose value is computed at scrape time.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc returns a callback gauge family.
func NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return &GaugeFunc{name: name, help: help, fn: fn}
}

// FamilyName implements Metric.
func (g *GaugeFunc) FamilyName() string { return g.name }

func (g *GaugeFunc) expose(w io.Writer, _ bool) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// FuncCounter is a monotonic counter whose value is computed at scrape
// time (e.g. cumulative GC pause seconds read from the runtime).
type FuncCounter struct {
	name, help string
	fn         func() float64
}

// NewFuncCounter returns a callback counter family. fn must be
// monotonically non-decreasing.
func NewFuncCounter(name, help string, fn func() float64) *FuncCounter {
	return &FuncCounter{name: name, help: help, fn: fn}
}

// FamilyName implements Metric.
func (c *FuncCounter) FamilyName() string { return c.name }

func (c *FuncCounter) expose(w io.Writer, om bool) {
	counterHeader(w, c.name, c.help, om)
	fmt.Fprintf(w, "%s %s\n", c.name, formatFloat(c.fn()))
}

// ConstGauge is a gauge with a constant value and a fixed label set — the
// build_info idiom: the labels carry the information, the value is 1.
type ConstGauge struct {
	name, help string
	labels     [][2]string
	value      float64
}

// NewConstGauge returns a constant labeled gauge family. Labels are
// emitted in the given order.
func NewConstGauge(name, help string, labels [][2]string, value float64) *ConstGauge {
	return &ConstGauge{name: name, help: help, labels: labels, value: value}
}

// FamilyName implements Metric.
func (g *ConstGauge) FamilyName() string { return g.name }

func (g *ConstGauge) expose(w io.Writer, _ bool) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s%s %s\n", g.name, formatLabels(g.labels), formatFloat(g.value))
}

// FuncGauges is a gauge family whose samples each carry a fixed label set
// and compute their value at scrape time — the shape of the SLO burn-rate
// family, where one family holds a sample per (endpoint, window) pair.
// Samples are exposed in the order they were added.
type FuncGauges struct {
	name, help string
	samples    []funcGaugeSample
}

type funcGaugeSample struct {
	labels [][2]string
	fn     func() float64
}

// NewFuncGauges returns an empty callback gauge family. Add samples before
// registering; the sample set is fixed after startup.
func NewFuncGauges(name, help string) *FuncGauges {
	return &FuncGauges{name: name, help: help}
}

// Add appends one sample with the given labels (emitted in order) and
// value callback.
func (g *FuncGauges) Add(labels [][2]string, fn func() float64) {
	g.samples = append(g.samples, funcGaugeSample{labels: labels, fn: fn})
}

// FamilyName implements Metric.
func (g *FuncGauges) FamilyName() string { return g.name }

func (g *FuncGauges) expose(w io.Writer, _ bool) {
	header(w, g.name, g.help, "gauge")
	for _, s := range g.samples {
		fmt.Fprintf(w, "%s%s %s\n", g.name, formatLabels(s.labels), formatFloat(s.fn()))
	}
}

func formatLabels(labels [][2]string) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, kv := range labels {
		if i > 0 {
			s += ","
		}
		s += kv[0] + "=" + strconv.Quote(kv[1])
	}
	return s + "}"
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integral values without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
