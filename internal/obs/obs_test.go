package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test_hist", "help", 1, []int64{10, 100, 1000})
	for _, v := range []int64{0, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive: 0 and 10 land in le=10; 11 and 100 in le=100;
	// 500 in le=1000; 5000 in +Inf.
	wantCum := []int64{2, 4, 5, 6}
	for i, want := range wantCum {
		if s.Counts[i] != want {
			t.Errorf("cumulative count[%d] = %d, want %d", i, s.Counts[i], want)
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 5621 {
		t.Errorf("Sum = %v, want 5621", s.Sum)
	}
	if h.Count() != 6 || h.Sum() != 5621 {
		t.Errorf("Count/Sum = %d/%d, want 6/5621", h.Count(), h.Sum())
	}
}

func TestHistogramScale(t *testing.T) {
	h := NewHistogram("dur_seconds", "help", 1e-9, []int64{1_000_000}) // 1ms bound
	h.Observe(500_000)
	var b bytes.Buffer
	h.expose(&b, false)
	out := b.String()
	for _, want := range []string{
		`dur_seconds_bucket{le="0.001"} 1`,
		`dur_seconds_bucket{le="+Inf"} 1`,
		"dur_seconds_sum 0.0005\n",
		"dur_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", "help", 1, ExpBuckets(1, 2, 12))
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Observe(seed*31 + i%4096)
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("Count = %d, want %d", got, workers*per)
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec("errs_total", "help", "kind", true)
	v.With("decode").Add(3)
	v.With("internal").Inc()
	if v.With("decode") != v.With("decode") {
		t.Error("With not idempotent")
	}
	var b bytes.Buffer
	v.expose(&b, false)
	out := b.String()
	for _, want := range []string{
		"errs_total 4\n", // unlabeled total first
		"errs_total{kind=\"decode\"} 3\n",
		"errs_total{kind=\"internal\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, "errs_total 4") > strings.Index(out, `kind="decode"`) {
		t.Error("unlabeled total must precede labeled samples")
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	v := NewCounterVec("cc_total", "help", "k", false)
	kinds := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With(kinds[(w+i)%len(kinds)]).Inc()
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, k := range kinds {
		total += v.With(k).Value()
	}
	if total != 8000 {
		t.Errorf("total = %d, want 8000", total)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register(NewCounter("dup", "help"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate family name did not panic")
		}
	}()
	r.Register(NewCounter("dup", "help"))
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?(?:[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?|\+Inf|-Inf|NaN))$`)
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// ParseExposition machine-checks a Prometheus text page: every line is a
// HELP, TYPE or sample line; each family has exactly one HELP and one TYPE
// (in that order, adjacent); no (name, labels) sample appears twice.
// Returns the set of family names and sample lines keyed by name+labels.
func parseExposition(t *testing.T, page string) (families map[string]string, samples map[string]string) {
	t.Helper()
	families = make(map[string]string) // family -> type
	samples = make(map[string]string)  // name{labels} -> value
	var pendingHelp string
	sc := bufio.NewScanner(strings.NewReader(page))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if _, dup := families[m[1]]; dup {
				t.Errorf("duplicate # HELP for family %s", m[1])
			}
			if pendingHelp != "" {
				t.Errorf("HELP for %s not followed by TYPE (saw HELP %s)", pendingHelp, m[1])
			}
			pendingHelp = m[1]
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if pendingHelp != m[1] {
				t.Errorf("TYPE %s not preceded by its HELP (pending %q)", m[1], pendingHelp)
			}
			families[m[1]] = m[2]
			pendingHelp = ""
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unparseable comment line: %q", line)
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line: %q", line)
			continue
		}
		name := m[1]
		fam := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := families[fam]; !ok {
			if _, ok := families[name]; !ok {
				t.Errorf("sample %s has no HELP/TYPE family header", name)
			}
		}
		key := name + m[2]
		if _, dup := samples[key]; dup {
			t.Errorf("duplicate sample %s", key)
		}
		samples[key] = m[3]
	}
	return families, samples
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("app_requests_total", "Total requests.")
	c.Add(7)
	ev := NewCounterVec("app_errors_total", "Errors by kind.", "kind", true)
	ev.With("decode").Add(2)
	ev.With("internal").Inc()
	g := NewGaugeFunc("app_goroutines", "Goroutines.", func() float64 { return 12 })
	fc := NewFuncCounter("app_gc_seconds_total", "GC pause seconds.", func() float64 { return 0.25 })
	bi := NewConstGauge("app_build_info", "Build info.",
		[][2]string{{"version", "v1.2"}, {"go", "go1.x"}}, 1)
	h := NewHistogram("app_latency_seconds", "Latency.", 1e-9, ExpBuckets(100_000, 10, 4))
	h.Observe(50_000)
	h.Observe(5_000_000_000)
	hv := NewHistogramVec("app_size_nodes", "Tree size.", "endpoint", 1, []int64{10, 100})
	hv.With("/v1/schedule").Observe(42)
	r.Register(c, ev, g, fc, bi, h, hv)

	var b bytes.Buffer
	r.WriteText(&b)
	page := b.String()
	families, samples := parseExposition(t, page)

	wantType := map[string]string{
		"app_requests_total":   "counter",
		"app_errors_total":     "counter",
		"app_goroutines":       "gauge",
		"app_gc_seconds_total": "counter",
		"app_build_info":       "gauge",
		"app_latency_seconds":  "histogram",
		"app_size_nodes":       "histogram",
	}
	for fam, typ := range wantType {
		if families[fam] != typ {
			t.Errorf("family %s type = %q, want %q", fam, families[fam], typ)
		}
	}
	wantSamples := map[string]string{
		"app_requests_total":                                      "7",
		"app_errors_total":                                        "3",
		`app_errors_total{kind="decode"}`:                         "2",
		`app_errors_total{kind="internal"}`:                       "1",
		"app_goroutines":                                          "12",
		"app_gc_seconds_total":                                    "0.25",
		`app_build_info{version="v1.2",go="go1.x"}`:               "1",
		`app_latency_seconds_bucket{le="+Inf"}`:                   "2",
		"app_latency_seconds_count":                               "2",
		`app_size_nodes_bucket{endpoint="/v1/schedule",le="100"}`: "1",
		`app_size_nodes_count{endpoint="/v1/schedule"}`:           "1",
	}
	for key, want := range wantSamples {
		if samples[key] != want {
			t.Errorf("sample %s = %q, want %q\npage:\n%s", key, samples[key], want, page)
		}
	}
}

func TestTraceTree(t *testing.T) {
	tr := AcquireTrace()
	defer tr.Release()
	a := tr.Start("decode", RootSpan)
	tr.End(a)
	b := tr.Start("schedule", RootSpan)
	c1 := tr.Start("candidate:liu", b)
	tr.SetValue(c1, 99)
	tr.End(c1)
	tr.End(b)
	open := tr.Start("encode", RootSpan)
	_ = open // left open on purpose: Tree must close it

	root := tr.Tree()
	if root == nil || root.Name != "request" {
		t.Fatalf("root = %+v, want request", root)
	}
	if len(root.Spans) != 3 {
		t.Fatalf("root children = %d, want 3", len(root.Spans))
	}
	names := []string{root.Spans[0].Name, root.Spans[1].Name, root.Spans[2].Name}
	if names[0] != "decode" || names[1] != "schedule" || names[2] != "encode" {
		t.Errorf("child names = %v", names)
	}
	sched := root.Spans[1]
	if len(sched.Spans) != 1 || sched.Spans[0].Name != "candidate:liu" {
		t.Fatalf("schedule children = %+v", sched.Spans)
	}
	if sched.Spans[0].Value != 99 {
		t.Errorf("candidate value = %d, want 99", sched.Spans[0].Value)
	}
	root.Walk(func(n *SpanNode, depth int) {
		if n.DurUS < 0 || n.StartUS < 0 {
			t.Errorf("span %s at depth %d has negative time: start=%v dur=%v", n.Name, depth, n.StartUS, n.DurUS)
		}
	})
	if _, err := json.Marshal(root); err != nil {
		t.Errorf("span tree not JSON-encodable: %v", err)
	}
}

func TestTraceNilNoop(t *testing.T) {
	var tr *Trace
	id := tr.Start("x", RootSpan)
	if id != -1 {
		t.Errorf("nil Start = %d, want -1", id)
	}
	tr.End(id)
	tr.SetValue(id, 5)
	if tr.Tree() != nil {
		t.Error("nil Tree != nil")
	}
	tr.Release()
}

func TestTraceEmpty(t *testing.T) {
	tr := AcquireTrace()
	defer tr.Release()
	if tr.Tree() != nil {
		t.Error("empty trace Tree != nil")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := AcquireTrace()
	defer tr.Release()
	parent := tr.Start("schedule", RootSpan)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := tr.Start(fmt.Sprintf("candidate:%d", w), parent)
				tr.SetValue(id, int64(i))
				tr.End(id)
			}
		}(w)
	}
	wg.Wait()
	tr.End(parent)
	root := tr.Tree()
	sched := root.Spans[0]
	if len(sched.Spans) != 800 {
		t.Errorf("schedule children = %d, want 800", len(sched.Spans))
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 1.5, 8)
	if len(b) != 8 {
		t.Fatalf("len = %d, want 8", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("bounds not strictly ascending at %d: %v", i, b)
		}
	}
	b2 := ExpBuckets(1000, 10, 4)
	want := []int64{1000, 10000, 100000, 1000000}
	for i := range want {
		if b2[i] != want[i] {
			t.Errorf("ExpBuckets(1000,10,4)[%d] = %d, want %d", i, b2[i], want[i])
		}
	}
}
