package obs

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestHistogramBoundaryObservation pins the inclusive-upper-bound
// contract at the exact boundary: v == bound lands in that bucket, and
// v == bound+1 in the next.
func TestHistogramBoundaryObservation(t *testing.T) {
	h := NewHistogram("edge", "", 1, []int64{10, 100})
	h.Observe(10)  // exactly on the first bound
	h.Observe(11)  // first value past it
	h.Observe(100) // exactly on the last finite bound
	h.Observe(101) // first value in +Inf
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Errorf("le=10 cumulative = %d, want 1 (bound is inclusive)", s.Counts[0])
	}
	if s.Counts[1] != 3 {
		t.Errorf("le=100 cumulative = %d, want 3", s.Counts[1])
	}
	if s.Counts[2] != 4 {
		t.Errorf("+Inf cumulative = %d, want 4", s.Counts[2])
	}
}

// TestHistogramNegativeClamp pins the clamp: negative observations count
// in the first bucket as zero and leave _sum untouched, rather than
// decrementing it.
func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram("edge", "", 1, []int64{10})
	h.Observe(-5)
	h.Observe(7)
	if got := h.Sum(); got != 7 {
		t.Errorf("Sum = %d, want 7 (negative sample must clamp to 0)", got)
	}
	s := h.Snapshot()
	if s.Counts[0] != 2 || s.Count != 2 {
		t.Errorf("counts = %v/%d, want both clamped samples in le=10", s.Counts, s.Count)
	}
	// Same clamp on the exemplar path.
	h2 := NewHistogram("edge2", "", 1, []int64{10})
	h2.EnableExemplars(time.Hour)
	h2.ObserveExemplar(-3, "neg")
	if h2.Sum() != 0 || h2.Count() != 1 {
		t.Errorf("exemplar path Sum/Count = %d/%d, want 0/1", h2.Sum(), h2.Count())
	}
	ex := h2.ExemplarSnapshot()
	if len(ex) != 1 || ex[0].Value != 0 || ex[0].RequestID != "neg" {
		t.Errorf("exemplar = %+v, want value clamped to 0", ex)
	}
}

// TestExemplarMaxPerWindow checks replacement policy: the largest sample
// in the window owns the bucket's exemplar, and a stale exemplar yields
// to the next observation regardless of value.
func TestExemplarMaxPerWindow(t *testing.T) {
	h := NewHistogram("lat", "", 1, []int64{1000})
	h.EnableExemplars(time.Hour)
	h.ObserveExemplar(500, "mid")
	h.ObserveExemplar(100, "small") // loses to mid
	h.ObserveExemplar(900, "big")   // wins
	ex := h.ExemplarSnapshot()
	if len(ex) != 1 || ex[0].RequestID != "big" || ex[0].Value != 900 {
		t.Fatalf("exemplar = %+v, want big/900", ex)
	}
	// Expiry: force staleness by shrinking the window, then a small
	// sample takes over.
	h.exemplarWindowNS = 1
	time.Sleep(time.Millisecond)
	h.ObserveExemplar(100, "fresh")
	ex = h.ExemplarSnapshot()
	if len(ex) != 1 || ex[0].RequestID != "fresh" || ex[0].Value != 100 {
		t.Fatalf("exemplar after expiry = %+v, want fresh/100", ex)
	}
}

// TestExemplarConcurrentReplacement races many ObserveExemplar callers
// into one bucket and checks the surviving exemplar is internally
// consistent (id matches value) and is the maximum offered — the -race
// proof of the slot protocol.
func TestExemplarConcurrentReplacement(t *testing.T) {
	h := NewHistogram("lat", "", 1, []int64{1 << 30})
	h.EnableExemplars(time.Hour)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				v := int64(w*per + i) // all distinct, max = workers*per
				h.ObserveExemplar(v, "v"+strconv.FormatInt(v, 10))
			}
		}(w)
	}
	wg.Wait()
	ex := h.ExemplarSnapshot()
	if len(ex) != 1 {
		t.Fatalf("want one bucket exemplar, got %+v", ex)
	}
	if want := fmt.Sprintf("v%d", ex[0].Value); ex[0].RequestID != want {
		t.Errorf("torn exemplar: id %q does not match value %d", ex[0].RequestID, ex[0].Value)
	}
	if ex[0].Value != workers*per {
		t.Errorf("exemplar value = %d, want the maximum %d", ex[0].Value, workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
}
