package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram on atomic arrays. Observing a
// sample is a bounded binary search over the precomputed upper bounds
// plus two atomic adds — no locks, no allocation, safe for concurrent
// use. Samples are int64 in the histogram's native unit (nanoseconds for
// durations, nodes or bytes for sizes); the scale factor converts native
// units to the exposition unit (1e-9 turns nanoseconds into the seconds
// Prometheus conventions expect).
type Histogram struct {
	name, help string
	bounds     []int64 // ascending upper bounds, inclusive (v <= bound)
	scale      float64 // native unit -> exposed unit
	counts     []atomic.Int64
	sum        atomic.Int64
	// exemplars, when non-nil, holds one exemplar slot per bucket
	// (including +Inf); see EnableExemplars.
	exemplars []exemplarSlot
	// exemplarWindowNS is the freshness window: an exemplar older than
	// this is replaced by the next observation regardless of value.
	exemplarWindowNS int64
}

// NewHistogram returns a histogram family with the given inclusive upper
// bounds (ascending, in the native unit) plus an implicit +Inf bucket.
// scale converts native units to the exposed unit (use 1 for counts,
// 1e-9 for nanosecond durations exposed as seconds).
func NewHistogram(name, help string, scale float64, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		name: name, help: help,
		bounds: bounds,
		scale:  scale,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample. Zero-allocation and wait-free. Negative
// samples are clamped to zero: they can only come from clock anomalies or
// caller bugs, and letting them through would land them in the first
// bucket while silently decrementing _sum.
func (h *Histogram) Observe(v int64) {
	h.bucketAdd(v)
}

// bucketAdd clamps, locates and increments the bucket for v, returning
// the bucket index so ObserveExemplar can reuse the search.
func (h *Histogram) bucketAdd(v int64) int {
	if v < 0 {
		v = 0
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	return lo
}

// Count returns the total number of observed samples.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed samples in the native unit.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// FamilyName implements Metric.
func (h *Histogram) FamilyName() string { return h.name }

func (h *Histogram) expose(w io.Writer, om bool) {
	header(w, h.name, h.help, "histogram")
	h.exposeSamples(w, "", om)
}

// exposeSamples writes the _bucket/_sum/_count samples with an optional
// pre-rendered label prefix like `endpoint="/v1/schedule"`. In OpenMetrics
// mode, bucket lines carry their exemplar (if one is recorded) in the
// `# {request_id="..."} value timestamp` form.
func (h *Histogram) exposeSamples(w io.Writer, label string, om bool) {
	comma := ""
	if label != "" {
		comma = ","
	}
	var cum int64
	for i := 0; i <= len(h.bounds); i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(float64(h.bounds[i]) * h.scale)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d", h.name, label+comma, le, cum)
		if om && h.exemplars != nil {
			if id, v, at, ok := h.exemplars[i].load(); ok {
				fmt.Fprintf(w, " # {request_id=%q} %s %s",
					id, formatFloat(float64(v)*h.scale), formatFloat(float64(at)/1e9))
			}
		}
		io.WriteString(w, "\n")
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, braced(label), formatFloat(float64(h.sum.Load())*h.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, braced(label), cum)
}

func braced(label string) string {
	if label == "" {
		return ""
	}
	return "{" + label + "}"
}

// Snapshot is a point-in-time copy of a histogram in exposition units,
// JSON-encodable for embedding in result summaries (e.g. the forest
// run's per-policy wait histogram).
type Snapshot struct {
	// UpperBounds are the bucket upper bounds in exposed units; Counts
	// are the cumulative counts per bound, le-style. The final entries of
	// both describe the +Inf bucket (bound reported as 0-length: Counts
	// has exactly one more entry than UpperBounds, the total).
	UpperBounds []float64 `json:"le"`
	Counts      []int64   `json:"counts"`
	Count       int64     `json:"count"`
	Sum         float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{
		UpperBounds: make([]float64, len(h.bounds)),
		Counts:      make([]int64, len(h.bounds)+1),
	}
	var cum int64
	for i, b := range h.bounds {
		s.UpperBounds[i] = float64(b) * h.scale
		cum += h.counts[i].Load()
		s.Counts[i] = cum
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Counts[len(h.bounds)] = cum
	s.Count = cum
	s.Sum = float64(h.sum.Load()) * h.scale
	return s
}

// HistogramVec is a histogram family labeled by one label name. Children
// share bounds and scale; resolve them once with With and hold the
// pointer to keep the record path map-free.
type HistogramVec struct {
	name, help, label string
	scale             float64
	bounds            []int64
	exemplarWindowNS  int64 // non-zero: children get exemplar slots
	mu                sync.RWMutex
	children          map[string]*Histogram
}

// NewHistogramVec returns a histogram family labeled by label.
func NewHistogramVec(name, help, label string, scale float64, bounds []int64) *HistogramVec {
	// Child construction validates the bounds once here rather than per
	// label value.
	NewHistogram(name, help, scale, bounds)
	return &HistogramVec{name: name, help: help, label: label,
		scale: scale, bounds: bounds, children: make(map[string]*Histogram)}
}

// With returns the child histogram for the label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[value]; h == nil {
		h = NewHistogram(v.name, v.help, v.scale, v.bounds)
		if v.exemplarWindowNS > 0 {
			h.enableExemplarsNS(v.exemplarWindowNS)
		}
		v.children[value] = h
	}
	return h
}

// FamilyName implements Metric.
func (v *HistogramVec) FamilyName() string { return v.name }

func (v *HistogramVec) expose(w io.Writer, om bool) {
	v.mu.RLock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	hs := make([]*Histogram, len(values))
	for i, val := range values {
		hs[i] = v.children[val]
	}
	v.mu.RUnlock()
	header(w, v.name, v.help, "histogram")
	for i, val := range values {
		hs[i].exposeSamples(w, v.label+"="+strconv.Quote(val), om)
	}
}

// ExpBuckets returns n strictly ascending bucket bounds starting at start
// and growing by factor (rounded to int64, deduplicated upward so small
// starts with fractional factors stay monotonic).
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start < 1 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start >= 1, factor > 1, n >= 1")
	}
	bounds := make([]int64, 0, n)
	v := float64(start)
	last := int64(0)
	for i := 0; i < n; i++ {
		b := int64(v)
		if b <= last {
			b = last + 1
		}
		bounds = append(bounds, b)
		last = b
		v *= factor
	}
	return bounds
}
