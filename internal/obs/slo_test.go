package obs

import (
	"sync"
	"testing"
	"time"
)

// TestWindowedRatioCounts drives a ring with a synthetic clock and checks
// window sums as buckets age out.
func TestWindowedRatioCounts(t *testing.T) {
	r := NewWindowedRatio(time.Minute, 8)
	base := int64(1_000_000 * time.Minute) // arbitrary epoch-aligned origin
	min := func(i int64) int64 { return base + i*time.Minute.Nanoseconds() }

	// Minute 0: 10 requests, 2 bad. Minute 1: 5 requests, all good.
	for i := 0; i < 10; i++ {
		r.Record(i < 2, min(0))
	}
	for i := 0; i < 5; i++ {
		r.Record(false, min(1))
	}
	if bad, total := r.Counts(2*time.Minute, min(1)); bad != 2 || total != 15 {
		t.Errorf("2m window = %d/%d, want 2/15", bad, total)
	}
	// One minute later, a 1-minute window sees only minute 1.
	if bad, total := r.Counts(time.Minute, min(1)); bad != 0 || total != 5 {
		t.Errorf("1m window = %d/%d, want 0/5", bad, total)
	}
	// Far in the future every bucket has aged out.
	if _, total := r.Counts(2*time.Minute, min(100)); total != 0 {
		t.Errorf("aged-out window total = %d, want 0", total)
	}
	// The ring reuses slots: writing at minute 8 lands on minute 0's slot.
	r.Record(true, min(8))
	if bad, total := r.Counts(time.Minute, min(8)); bad != 1 || total != 1 {
		t.Errorf("reused bucket = %d/%d, want 1/1", bad, total)
	}
}

// TestWindowedRatioBurnRate checks the budget arithmetic: bad fraction
// over error budget.
func TestWindowedRatioBurnRate(t *testing.T) {
	r := NewWindowedRatio(time.Minute, 8)
	now := int64(500 * time.Hour)
	// 1% bad against a 99.9% objective: burn rate 10.
	for i := 0; i < 1000; i++ {
		r.Record(i < 10, now)
	}
	if got := r.BurnRate(5*time.Minute, 0.999, now); got < 9.99 || got > 10.01 {
		t.Errorf("burn rate = %v, want 10", got)
	}
	// No traffic: burn rate 0, not NaN.
	empty := NewWindowedRatio(time.Minute, 8)
	if got := empty.BurnRate(5*time.Minute, 0.999, now); got != 0 {
		t.Errorf("empty burn rate = %v, want 0", got)
	}
	// A 100% objective must not divide by zero.
	if got := r.BurnRate(5*time.Minute, 1.0, now); got <= 0 {
		t.Errorf("objective=1 burn rate = %v, want > 0", got)
	}
}

// TestWindowedRatioConcurrent is the -race proof of the bucket protocol:
// concurrent recorders across bucket turnovers plus a concurrent reader.
func TestWindowedRatioConcurrent(t *testing.T) {
	r := NewWindowedRatio(time.Millisecond, 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Record(i%7 == 0, time.Now().UnixNano())
			}
		}(w)
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				r.Counts(5*time.Millisecond, time.Now().UnixNano())
			}
		}
	}()
	wg.Wait()
	close(stop)
}
