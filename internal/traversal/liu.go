package traversal

import (
	"sort"

	"treesched/internal/tree"
)

// segment is one hill–valley segment of a traversal's memory profile,
// relative to the memory level at the segment's start:
//
//	P = rise to the segment's internal peak (hill - start), P >= 0
//	D = net rise over the segment (valley - start), 0 <= D <= P for atomic
//	    segments of a valley decomposition (the final segment of a subtree
//	    may be produced with D < 0 before re-decomposition).
//
// chunks holds the nodes of the segment as a list of immutable slices, so
// concatenation shares structure instead of copying nodes.
type segment struct {
	P, D   int64
	chunks [][]int
}

// prio is the sort key of Liu's merge: segments are emitted in
// non-increasing P-D.
func (s segment) prio() int64 { return s.P - s.D }

// concat merges b after a into a single segment.
func concat(a, b segment) segment {
	p := a.P
	if q := a.D + b.P; q > p {
		p = q
	}
	return segment{
		P:      p,
		D:      a.D + b.D,
		chunks: append(append(make([][]int, 0, len(a.chunks)+len(b.chunks)), a.chunks...), b.chunks...),
	}
}

// group is a run of consecutive atomic segments of one child that must be
// emitted as a unit to keep priorities non-increasing within the child.
type group struct {
	p, d  int64 // combined P and D of the run
	atoms []segment
}

func (g group) prio() int64 { return g.p - g.d }

// Optimal computes a peak-memory-optimal sequential traversal using Liu's
// generalized pebbling algorithm (Liu 1987): the optimal traversal of a
// subtree is an interleaving of the children's optimal traversals followed
// by the root, obtained by decomposing each child traversal into hill–valley
// segments and emitting segments in non-increasing (hill - valley). Runs of
// segments whose priorities would increase within a child are grouped first
// (the combined segment dominates). Worst-case O(n²), typically much less.
func Optimal(t *tree.Tree) Result {
	n := t.Len()
	if n == 0 {
		return Result{}
	}
	segs := make([][]segment, n) // valley decomposition of each subtree
	for _, v := range t.TopOrder() {
		cs := t.Children(v)
		// The node's own step: memory rises by n_v+f_v above the level where
		// all children outputs are resident, then settles to f_v.
		own := segment{
			P:      t.N(v) + t.F(v),
			D:      t.F(v) - t.InSize(v),
			chunks: [][]int{{v}},
		}
		if len(cs) == 0 {
			segs[v] = redecompose([]segment{own})
			continue
		}
		// Group each child's segments, collect, and sort by priority.
		var groups []group
		for _, c := range cs {
			groups = appendGroups(groups, segs[c])
			segs[c] = nil // release
		}
		sort.SliceStable(groups, func(a, b int) bool { return groups[a].prio() > groups[b].prio() })
		merged := make([]segment, 0, len(groups)+1)
		for _, g := range groups {
			merged = append(merged, g.atoms...)
		}
		merged = append(merged, own)
		segs[v] = redecompose(merged)
	}
	rootSegs := segs[t.Root()]
	order := make([]int, 0, n)
	var base, peak int64
	for _, s := range rootSegs {
		if q := base + s.P; q > peak {
			peak = q
		}
		base += s.D
		for _, ch := range s.chunks {
			order = append(order, ch...)
		}
	}
	return Result{Order: order, Peak: peak}
}

// appendGroups appends the grouping of one child's atomic segments to dst.
// Within a child the emitted groups have non-increasing priority: whenever a
// later segment has strictly higher priority than the group before it, the
// two are merged (emitting the pair as a unit is never worse — the standard
// chain-coarsening argument).
func appendGroups(dst []group, atoms []segment) []group {
	start := len(dst)
	for _, s := range atoms {
		dst = append(dst, group{p: s.P, d: s.D, atoms: []segment{s}})
		for len(dst)-start >= 2 {
			a, b := dst[len(dst)-2], dst[len(dst)-1]
			if b.prio() <= a.prio() {
				break
			}
			p := a.p
			if q := a.d + b.p; q > p {
				p = q
			}
			dst = dst[:len(dst)-2]
			dst = append(dst, group{p: p, d: a.d + b.d, atoms: append(append([]segment(nil), a.atoms...), b.atoms...)})
		}
	}
	return dst
}

// redecompose cuts a concatenation of segments at the successive minima of
// its valley profile, producing atomic segments with strictly increasing
// absolute valleys (hence D >= 0 everywhere). Valleys inside input segments
// never need to be cut: within an atomic segment all interior levels are at
// least the end level, and the inputs are atomic or end the profile.
func redecompose(in []segment) []segment {
	m := len(in)
	// Absolute valley after each input segment.
	valley := make([]int64, m)
	var base int64
	for i, s := range in {
		base += s.D
		valley[i] = base
	}
	// suffixMin[i] = min valley over [i, m).
	suffixMin := make([]int64, m+1)
	suffixMin[m] = int64(1) << 62
	for i := m - 1; i >= 0; i-- {
		suffixMin[i] = valley[i]
		if suffixMin[i+1] < suffixMin[i] {
			suffixMin[i] = suffixMin[i+1]
		}
	}
	out := make([]segment, 0, 4)
	cur := in[0]
	for i := 1; i < m; i++ {
		// Cut after segment i-1 iff its valley is strictly below everything
		// that follows (the last occurrence of the running minimum).
		if valley[i-1] < suffixMin[i] {
			out = append(out, cur)
			cur = in[i]
		} else {
			cur = concat(cur, in[i])
		}
	}
	out = append(out, cur)
	return out
}
