package traversal

import (
	"math"
	"slices"
	"sync"

	"treesched/internal/tree"
)

// lseg is one hill–valley segment of a traversal's memory profile,
// relative to the memory level at the segment's start:
//
//	P = rise to the segment's internal peak (hill - start), P >= 0
//	D = net rise over the segment (valley - start), 0 <= D <= P for atomic
//	    segments of a valley decomposition (the final segment of a subtree
//	    may be produced with D < 0 before re-decomposition).
//
// rope references the segment's node list in the traversal's ropeArena, so
// concatenation is O(1) instead of copying chunk headers.
type lseg struct {
	P, D int64
	rope int32
}

// prio is the sort key of Liu's merge: segments are emitted in
// non-increasing P-D.
func (s lseg) prio() int64 { return s.P - s.D }

// lgroup is a run of consecutive atomic segments of one child that must be
// emitted as a unit to keep priorities non-increasing within the child. It
// references its atoms as the contiguous range [lo, hi) of the per-node
// flat atoms buffer — groups only ever merge with their neighbours, so the
// range stays contiguous and no atom is ever copied during grouping.
type lgroup struct {
	p, d   int64
	lo, hi int32
}

func (g lgroup) prio() int64 { return g.p - g.d }

// liuScratch is the pooled working set of one Optimal call.
type liuScratch struct {
	arena  ropeArena
	segs   [][]lseg // valley decomposition per subtree, freed to free
	free   [][]lseg // capacity recycled from consumed children
	atoms  []lseg   // per-node flat buffer of the children's segments
	groups []lgroup
	merged []lseg
	valley []int64
	cut    []bool
	rstack []int32 // rope emission stack
}

var liuPool = sync.Pool{New: func() any { return new(liuScratch) }}

func (sc *liuScratch) reset(n int) {
	sc.arena.reset()
	if cap(sc.segs) < n {
		sc.segs = make([][]lseg, n)
	}
	sc.segs = sc.segs[:n]
	clear(sc.segs)
	// sc.free is deliberately kept: the segment slices released by the
	// previous traversal seed this one's allocations.
	sc.atoms = sc.atoms[:0]
}

// grab returns an empty segment slice, reusing capacity released by a
// consumed child when available.
func (sc *liuScratch) grab() []lseg {
	if k := len(sc.free); k > 0 {
		s := sc.free[k-1]
		sc.free = sc.free[:k-1]
		return s[:0]
	}
	return nil
}

// concatSeg merges b after a into a single segment (O(1) via the arena).
func concatSeg(a, b lseg, ar *ropeArena) lseg {
	p := a.P
	if q := a.D + b.P; q > p {
		p = q
	}
	return lseg{P: p, D: a.D + b.D, rope: ar.concat(a.rope, b.rope)}
}

// Optimal computes a peak-memory-optimal sequential traversal using Liu's
// generalized pebbling algorithm (Liu 1987): the optimal traversal of a
// subtree is an interleaving of the children's optimal traversals followed
// by the root, obtained by decomposing each child traversal into hill–valley
// segments and emitting segments in non-increasing (hill - valley). Runs of
// segments whose priorities would increase within a child are grouped first
// (the combined segment dominates). Worst-case O(n²), typically much less.
// All working memory — segment lists, grouping buffers, the rope arena of
// node lists — is pooled and recycled across calls.
func Optimal(t *tree.Tree) Result {
	n := t.Len()
	if n == 0 {
		return Result{}
	}
	sc := liuPool.Get().(*liuScratch)
	sc.reset(n)
	for _, v := range t.TopOrder() {
		cs := t.Children(v)
		// The node's own step: memory rises by n_v+f_v above the level where
		// all children outputs are resident, then settles to f_v.
		own := lseg{P: t.N(v) + t.F(v), D: t.F(v) - t.InSize(v), rope: leafRef(v)}
		if len(cs) == 0 {
			sc.merged = append(sc.merged[:0], own)
			sc.segs[v] = sc.redecompose(sc.merged, sc.grab())
			continue
		}
		// Group each child's segments into the flat atoms buffer, then sort
		// the groups by non-increasing priority (ascending lo breaks ties,
		// which is exactly the old stable sort: lo increases in append
		// order).
		sc.atoms = sc.atoms[:0]
		sc.groups = sc.groups[:0]
		for _, c := range cs {
			sc.appendGroups(sc.segs[c])
			sc.free = append(sc.free, sc.segs[c])
			sc.segs[c] = nil // release
		}
		slices.SortFunc(sc.groups, func(a, b lgroup) int {
			if pa, pb := a.prio(), b.prio(); pa != pb {
				if pa > pb {
					return -1
				}
				return 1
			}
			return int(a.lo) - int(b.lo)
		})
		sc.merged = sc.merged[:0]
		for _, g := range sc.groups {
			sc.merged = append(sc.merged, sc.atoms[g.lo:g.hi]...)
		}
		sc.merged = append(sc.merged, own)
		sc.segs[v] = sc.redecompose(sc.merged, sc.grab())
	}
	rootSegs := sc.segs[t.Root()]
	order := make([]int, 0, n)
	var base, peak int64
	for _, s := range rootSegs {
		if q := base + s.P; q > peak {
			peak = q
		}
		base += s.D
		order, sc.rstack = sc.arena.appendNodes(s.rope, sc.rstack, order)
	}
	sc.free = append(sc.free, rootSegs)
	sc.segs[t.Root()] = nil
	liuPool.Put(sc)
	return Result{Order: order, Peak: peak}
}

// appendGroups appends one child's atomic segments to the atoms buffer and
// their grouping to the groups buffer. Within a child the emitted groups
// have non-increasing priority: whenever a later segment has strictly
// higher priority than the group before it, the two are merged (emitting
// the pair as a unit is never worse — the standard chain-coarsening
// argument). Merged groups are adjacent, so every group stays a contiguous
// [lo, hi) range of atoms.
func (sc *liuScratch) appendGroups(atoms []lseg) {
	start := len(sc.groups)
	for _, s := range atoms {
		i := int32(len(sc.atoms))
		sc.atoms = append(sc.atoms, s)
		sc.groups = append(sc.groups, lgroup{p: s.P, d: s.D, lo: i, hi: i + 1})
		for len(sc.groups)-start >= 2 {
			a, b := sc.groups[len(sc.groups)-2], sc.groups[len(sc.groups)-1]
			if b.prio() <= a.prio() {
				break
			}
			p := a.p
			if q := a.d + b.p; q > p {
				p = q
			}
			sc.groups = sc.groups[:len(sc.groups)-2]
			sc.groups = append(sc.groups, lgroup{p: p, d: a.d + b.d, lo: a.lo, hi: b.hi})
		}
	}
}

// redecompose cuts a concatenation of segments at the successive minima of
// its valley profile, producing atomic segments with strictly increasing
// absolute valleys (hence D >= 0 everywhere). Valleys inside input segments
// never need to be cut: within an atomic segment all interior levels are at
// least the end level, and the inputs are atomic or end the profile. The
// result is appended to out (whose capacity is recycled); in is not
// retained.
func (sc *liuScratch) redecompose(in []lseg, out []lseg) []lseg {
	m := len(in)
	if cap(sc.valley) < m {
		sc.valley = make([]int64, m)
		sc.cut = make([]bool, m)
	}
	valley := sc.valley[:m]
	cut := sc.cut[:m]
	// Absolute valley after each input segment.
	var base int64
	for i, s := range in {
		base += s.D
		valley[i] = base
	}
	// Cut after segment i-1 iff its valley is strictly below everything
	// that follows (the last occurrence of the running minimum). The
	// running minimum starts at MaxInt64 — not 1<<62, which legal valleys
	// near 2⁶² could undershoot.
	runMin := int64(math.MaxInt64)
	for i := m - 1; i >= 1; i-- {
		if valley[i] < runMin {
			runMin = valley[i]
		}
		cut[i] = valley[i-1] < runMin
	}
	cur := in[0]
	for i := 1; i < m; i++ {
		if cut[i] {
			out = append(out, cur)
			cur = in[i]
		} else {
			cur = concatSeg(cur, in[i], &sc.arena)
		}
	}
	return append(out, cur)
}
