package traversal

import (
	"math/rand"
	"testing"

	"treesched/internal/tree"
)

// TestOptimalMatchesBruteForceStructured extends the brute-force
// cross-validation to structured families up to 12 nodes, where postorder
// optimality often fails and segment merging is exercised hardest.
func TestOptimalMatchesBruteForceStructured(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential oracle")
	}
	rng := rand.New(rand.NewSource(101))
	spec := tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 7, FMin: 0, FMax: 9}
	builders := []func(n int) *tree.Tree{
		func(n int) *tree.Tree { return tree.Caterpillar(rng, n/2, 1, spec) },
		func(n int) *tree.Tree { return tree.Chain(rng, n, spec) },
		func(n int) *tree.Tree { return tree.Fork(rng, n, spec) },
		func(n int) *tree.Tree { return tree.RandomBinary(rng, n, spec) },
	}
	for trial := 0; trial < 120; trial++ {
		n := 4 + rng.Intn(9) // 4..12
		tr := builders[trial%len(builders)](n)
		if tr.Len() > MaxBruteForceNodes {
			continue
		}
		bf, err := BruteForce(tr)
		if err != nil {
			t.Fatal(err)
		}
		opt := Optimal(tr)
		if opt.Peak != bf.Peak {
			t.Fatalf("trial %d (%d nodes): Optimal %d != brute %d", trial, tr.Len(), opt.Peak, bf.Peak)
		}
	}
}

// TestOptimalIdempotentOnItsOwnOrder: evaluating the order returned by
// Optimal must reproduce the reported peak even after a round trip through
// serialization (guards against hidden state in the segments).
func TestOptimalIdempotentOnItsOwnOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 30; trial++ {
		tr := tree.RandomPrufer(rng, 2+rng.Intn(200),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 9, FMin: 0, FMax: 9})
		r1 := Optimal(tr)
		r2 := Optimal(tr)
		if r1.Peak != r2.Peak {
			t.Fatalf("Optimal nondeterministic: %d vs %d", r1.Peak, r2.Peak)
		}
		for i := range r1.Order {
			if r1.Order[i] != r2.Order[i] {
				t.Fatalf("Optimal order nondeterministic at %d", i)
			}
		}
	}
}

// TestOptimalZeroFileNodes: nodes with f=0 create flat valleys; the
// decomposition must cut at the last occurrence and stay correct.
func TestOptimalZeroFileNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	spec := tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 3, FMin: 0, FMax: 1}
	for trial := 0; trial < 150; trial++ {
		tr := tree.RandomAttachment(rng, 2+rng.Intn(9), spec)
		bf, err := BruteForce(tr)
		if err != nil {
			t.Fatal(err)
		}
		if opt := Optimal(tr); opt.Peak != bf.Peak {
			t.Fatalf("trial %d: %d != %d", trial, opt.Peak, bf.Peak)
		}
	}
}

// TestOptimalAllZeroWeights: degenerate all-zero files never crash and give
// peak equal to the largest execution file.
func TestOptimalAllZeroWeights(t *testing.T) {
	tr := tree.MustNew([]int{tree.None, 0, 0, 1},
		[]float64{1, 1, 1, 1}, []int64{0, 5, 2, 3}, []int64{0, 0, 0, 0})
	opt := Optimal(tr)
	if opt.Peak != 5 {
		t.Fatalf("peak = %d, want 5", opt.Peak)
	}
	if got, err := PeakMemory(tr, opt.Order); err != nil || got != 5 {
		t.Fatalf("eval = %d, %v", got, err)
	}
}

// TestBestPostOrderDeepTreeNoOverflow: the explicit stack must handle very
// deep trees (recursive implementations would blow the goroutine stack
// far later, but chains of 10^6 are the paper's scale).
func TestBestPostOrderDeepTreeNoOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	tr := tree.Chain(rng, 500000, tree.PebbleWeights)
	res := BestPostOrder(tr)
	if res.Peak != 2 {
		t.Fatalf("chain peak = %d", res.Peak)
	}
	if len(res.Order) != tr.Len() {
		t.Fatalf("order covers %d nodes", len(res.Order))
	}
}
