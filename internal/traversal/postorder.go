package traversal

import (
	"slices"
	"sync"

	"treesched/internal/tree"
)

// Result is a sequential traversal together with its peak memory.
type Result struct {
	Order []int // topological order of all nodes
	Peak  int64 // peak memory of executing Order sequentially
}

// postScratch holds the per-call working set of the postorder DP: the flat
// children arena (kids/off), the per-node peaks and sort keys, and the
// emission stack. It is recycled through postPool so steady-state calls
// allocate only their result.
type postScratch struct {
	peaks []int64 // per-node best-postorder subtree peak
	key   []int64 // per-node sort key: peaks[v] - f_v
	off   []int32 // off[v]..off[v+1] delimit v's children in kids
	kids  []int32 // children in visit order, one flat arena
	stack []int64 // emission frames, packed node<<32|kidIndex
}

var postPool = sync.Pool{New: func() any { return new(postScratch) }}

func (sc *postScratch) ensure(n int) {
	if cap(sc.peaks) < n {
		sc.peaks = make([]int64, n)
		sc.key = make([]int64, n)
		sc.off = make([]int32, n+1)
		sc.kids = make([]int32, n)
	}
	sc.peaks = sc.peaks[:n]
	sc.key = sc.key[:n]
	sc.off = sc.off[:n+1]
	sc.kids = sc.kids[:n]
}

// fillChildren lays every node's children out contiguously in kids, in
// ascending-id order (the construction order of tree.Tree).
func fillChildren(t *tree.Tree, off, kids []int32) {
	n := t.Len()
	pos := int32(0)
	for v := 0; v < n; v++ {
		off[v] = pos
		for _, c := range t.Children(v) {
			kids[pos] = int32(c)
			pos++
		}
	}
	off[n] = pos
}

// sortKidsByKey orders one children range by non-increasing key, ascending
// id on ties — exactly the strict weak order of Liu's child rule, with the
// tie-break the old stable sort over ascending-id children produced.
// Insertion sort handles the common small fan-out without function calls.
func sortKidsByKey(rng []int32, key []int64) {
	if len(rng) <= 20 {
		for i := 1; i < len(rng); i++ {
			c := rng[i]
			k := key[c]
			j := i - 1
			for j >= 0 && (key[rng[j]] < k || (key[rng[j]] == k && rng[j] > c)) {
				rng[j+1] = rng[j]
				j--
			}
			rng[j+1] = c
		}
		return
	}
	slices.SortFunc(rng, func(a, b int32) int {
		if ka, kb := key[a], key[b]; ka != kb {
			if ka > kb {
				return -1
			}
			return 1
		}
		return int(a) - int(b)
	})
}

// fillPostDP runs Liu's best-postorder DP bottom-up: children of every node
// are (optionally) reordered in place by non-increasing peak_j - f_j, and
// peaks[v] becomes the postorder peak of the subtree rooted at v.
func fillPostDP(t *tree.Tree, peaks, key []int64, off, kids []int32, sortChildren bool) {
	for _, v := range t.TopOrder() { // children before parents
		rng := kids[off[v]:off[v+1]]
		if sortChildren && len(rng) > 1 {
			sortKidsByKey(rng, key)
		}
		var resident, pk int64
		for _, c := range rng {
			if q := resident + peaks[c]; q > pk {
				pk = q
			}
			resident += t.F(int(c))
		}
		if q := resident + t.N(v) + t.F(v); q > pk {
			pk = q
		}
		peaks[v] = pk
		key[v] = pk - t.F(v)
	}
}

// emitAppend appends the postorder rooted at root (children visited in
// kids order) to dst with an explicit stack (trees can be very deep).
func emitAppend(root int, off, kids []int32, stack []int64, dst []int) ([]int, []int64) {
	stack = append(stack[:0], int64(root)<<32|int64(off[root]))
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		v := int(fr >> 32)
		k := int32(fr)
		if k < off[v+1] {
			stack[len(stack)-1] = fr + 1 // advance this frame's child cursor
			c := kids[k]
			stack = append(stack, int64(c)<<32|int64(off[c]))
			continue
		}
		dst = append(dst, v)
		stack = stack[:len(stack)-1]
	}
	return dst, stack
}

// BestPostOrder computes the memory-optimal postorder traversal (Liu 1986):
// at every node, subtrees are visited in non-increasing (peak_j - f_j).
// This is the reference sequential memory M_seq used throughout the paper's
// evaluation (§6.1). O(n log n). Steady state it allocates only the
// returned order; all working memory is pooled.
func BestPostOrder(t *tree.Tree) Result {
	return postOrder(t, true)
}

// NaturalPostOrder computes the postorder that visits children in index
// order. It serves as an ablation baseline for the child-ordering rule of
// BestPostOrder.
func NaturalPostOrder(t *tree.Tree) Result {
	return postOrder(t, false)
}

func postOrder(t *tree.Tree, sortChildren bool) Result {
	n := t.Len()
	if n == 0 {
		return Result{}
	}
	sc := postPool.Get().(*postScratch)
	sc.ensure(n)
	fillChildren(t, sc.off, sc.kids)
	fillPostDP(t, sc.peaks, sc.key, sc.off, sc.kids, sortChildren)
	order := make([]int, 0, n)
	order, stack := emitAppend(t.Root(), sc.off, sc.kids, sc.stack, order)
	sc.stack = stack
	peak := sc.peaks[t.Root()]
	postPool.Put(sc)
	return Result{Order: order, Peak: peak}
}

// PostOrderPeaks returns, for every node v, the peak memory of the best
// postorder traversal of the subtree rooted at v. PostOrderPeaks(t)[root]
// equals BestPostOrder(t).Peak.
func PostOrderPeaks(t *tree.Tree) []int64 {
	n := t.Len()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	sc := postPool.Get().(*postScratch)
	sc.ensure(n)
	fillChildren(t, sc.off, sc.kids)
	fillPostDP(t, sc.peaks, sc.key, sc.off, sc.kids, true)
	copy(out, sc.peaks)
	postPool.Put(sc)
	return out
}

// PostOrderIndex is the whole-tree product of the best-postorder DP, kept
// for sharing across schedulers: the optimal postorder and its peak
// (M_seq), the per-node subtree peaks, and the visit-ordered children
// arena, from which the best postorder of ANY subtree can be emitted
// without re-running the DP (the child rule is subtree-local).
//
// An index is immutable after construction and safe for concurrent use;
// it is the backbone of sched.Precompute.
type PostOrderIndex struct {
	Order []int   // best postorder of the whole tree
	Peak  int64   // M_seq, the sequential peak of Order
	Peaks []int64 // per-node subtree postorder peaks

	off  []int32 // children offsets, ascending-id tie-breaks
	kids []int32 // children in visit order

	// descKids is kids with every run of equal-key siblings reversed
	// (descending-id tie-breaks), built lazily for subtree emission — see
	// AppendSubtreeOrder.
	descOnce sync.Once
	descKids []int32
}

// NewPostOrderIndex runs the best-postorder DP once and retains its
// products. Unlike BestPostOrder, the working arrays are owned by the
// returned index (they must outlive the call), so only the ephemeral
// emission stack is pooled.
func NewPostOrderIndex(t *tree.Tree) *PostOrderIndex {
	n := t.Len()
	ix := &PostOrderIndex{}
	if n == 0 {
		return ix
	}
	ix.Peaks = make([]int64, n)
	ix.off = make([]int32, n+1)
	ix.kids = make([]int32, n)
	fillChildren(t, ix.off, ix.kids)

	sc := postPool.Get().(*postScratch)
	sc.ensure(n)
	fillPostDP(t, ix.Peaks, sc.key, ix.off, ix.kids, true)
	ix.Order = make([]int, 0, n)
	ix.Order, sc.stack = emitAppend(t.Root(), ix.off, ix.kids, sc.stack, ix.Order)
	ix.Peak = ix.Peaks[t.Root()]
	postPool.Put(sc)
	return ix
}

// AppendSubtreeOrder appends the memory-optimal postorder of the subtree
// rooted at r to dst and returns it. Equal-priority siblings are visited
// in descending id: this reproduces, exactly, the order the historical
// implementation obtained by extracting the subtree with tree.Subtree
// (whose preorder relabeling reverses sibling order) and re-running
// BestPostOrder on it — so ParSubtrees schedules stay byte-identical
// while skipping the extraction and the per-subtree DP entirely.
func (ix *PostOrderIndex) AppendSubtreeOrder(t *tree.Tree, r int, dst []int) []int {
	ix.descOnce.Do(func() { ix.buildDescKids(t) })
	sc := postPool.Get().(*postScratch)
	dst, stack := emitAppend(r, ix.off, ix.descKids, sc.stack, dst)
	sc.stack = stack
	postPool.Put(sc)
	return dst
}

func (ix *PostOrderIndex) buildDescKids(t *tree.Tree) {
	desc := make([]int32, len(ix.kids))
	copy(desc, ix.kids)
	n := t.Len()
	for v := 0; v < n; v++ {
		rng := desc[ix.off[v]:ix.off[v+1]]
		for i := 0; i < len(rng); {
			ki := ix.Peaks[rng[i]] - t.F(int(rng[i]))
			j := i + 1
			for j < len(rng) && ix.Peaks[rng[j]]-t.F(int(rng[j])) == ki {
				j++
			}
			for a, b := i, j-1; a < b; a, b = a+1, b-1 {
				rng[a], rng[b] = rng[b], rng[a]
			}
			i = j
		}
	}
	ix.descKids = desc
}
