package traversal

import (
	"sort"

	"treesched/internal/tree"
)

// Result is a sequential traversal together with its peak memory.
type Result struct {
	Order []int // topological order of all nodes
	Peak  int64 // peak memory of executing Order sequentially
}

// BestPostOrder computes the memory-optimal postorder traversal (Liu 1986):
// at every node, subtrees are visited in non-increasing (peak_j - f_j).
// This is the reference sequential memory M_seq used throughout the paper's
// evaluation (§6.1). O(n log n).
func BestPostOrder(t *tree.Tree) Result {
	return postOrder(t, true)
}

// NaturalPostOrder computes the postorder that visits children in index
// order. It serves as an ablation baseline for the child-ordering rule of
// BestPostOrder.
func NaturalPostOrder(t *tree.Tree) Result {
	return postOrder(t, false)
}

func postOrder(t *tree.Tree, sortChildren bool) Result {
	n := t.Len()
	if n == 0 {
		return Result{}
	}
	peak := make([]int64, n)         // subtree postorder peak
	sorted := make([][]int, n)       // children in visit order
	for _, v := range t.TopOrder() { // children before parents
		cs := t.Children(v)
		vis := make([]int, len(cs))
		copy(vis, cs)
		if sortChildren && len(vis) > 1 {
			sort.SliceStable(vis, func(a, b int) bool {
				return peak[vis[a]]-t.F(vis[a]) > peak[vis[b]]-t.F(vis[b])
			})
		}
		sorted[v] = vis
		var resident, pk int64
		for _, c := range vis {
			if q := resident + peak[c]; q > pk {
				pk = q
			}
			resident += t.F(c)
		}
		if q := resident + t.N(v) + t.F(v); q > pk {
			pk = q
		}
		peak[v] = pk
	}
	// Emit the postorder with an explicit stack (trees can be very deep).
	order := make([]int, 0, n)
	type frame struct{ v, next int }
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{t.Root(), 0})
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(sorted[fr.v]) {
			c := sorted[fr.v][fr.next]
			fr.next++
			stack = append(stack, frame{c, 0})
			continue
		}
		order = append(order, fr.v)
		stack = stack[:len(stack)-1]
	}
	return Result{Order: order, Peak: peak[t.Root()]}
}

// PostOrderPeaks returns, for every node v, the peak memory of the best
// postorder traversal of the subtree rooted at v. PostOrderPeaks(t)[root]
// equals BestPostOrder(t).Peak.
func PostOrderPeaks(t *tree.Tree) []int64 {
	n := t.Len()
	peak := make([]int64, n)
	buf := make([]int, 0, 16)
	for _, v := range t.TopOrder() {
		cs := t.Children(v)
		buf = buf[:0]
		buf = append(buf, cs...)
		if len(buf) > 1 {
			sort.SliceStable(buf, func(a, b int) bool {
				return peak[buf[a]]-t.F(buf[a]) > peak[buf[b]]-t.F(buf[b])
			})
		}
		var resident, pk int64
		for _, c := range buf {
			if q := resident + peak[c]; q > pk {
				pk = q
			}
			resident += t.F(c)
		}
		if q := resident + t.N(v) + t.F(v); q > pk {
			pk = q
		}
		peak[v] = pk
	}
	return peak
}
