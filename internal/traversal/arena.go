package traversal

// ropeArena backs the node lists of Liu segments. A segment's node list is
// a rope: a binary concatenation tree whose leaves are task ids. References
// are int32: ref >= 0 indexes an internal arena node (a concatenation of
// two ropes), ref < 0 encodes the single task id ^ref. Concatenation is one
// append — O(1) — instead of the O(#chunks) slice-header copy of the old
// [][]int representation, and the arena is reset (not freed) between trees
// so a pooled traversal performs no per-segment allocation in steady state.
type ropeArena struct {
	left, right []int32
}

// leafRef encodes task id v as a rope reference.
func leafRef(v int) int32 { return ^int32(v) }

// concat returns a reference to the rope "x followed by y".
func (a *ropeArena) concat(x, y int32) int32 {
	a.left = append(a.left, x)
	a.right = append(a.right, y)
	return int32(len(a.left) - 1)
}

// reset drops all ropes but keeps the arena's capacity.
func (a *ropeArena) reset() {
	a.left = a.left[:0]
	a.right = a.right[:0]
}

// appendNodes appends the task ids of rope ref to dst in order, using
// stack as scratch; it returns the grown dst and the (re-usable) stack.
func (a *ropeArena) appendNodes(ref int32, stack []int32, dst []int) ([]int, []int32) {
	stack = append(stack[:0], ref)
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r < 0 {
			dst = append(dst, int(^r))
			continue
		}
		// Push right first so the left sub-rope is emitted first.
		stack = append(stack, a.right[r], a.left[r])
	}
	return dst, stack
}
