// Package traversal implements sequential (single-processor) tree
// traversals minimizing peak memory, in the model of Marchal, Sinnen and
// Vivien (INRIA RR-8082): processing node i requires its children's output
// files, its execution file n_i and its output file f_i to be resident;
// completing i frees the children files and n_i while f_i stays resident
// until the parent completes.
//
// Three algorithms are provided:
//
//   - BestPostOrder: the memory-optimal postorder traversal (Liu 1986),
//     O(n log n). The paper uses it as the sequential memory reference.
//   - Optimal: Liu's exact optimal traversal (Liu 1987), based on merging
//     hill–valley segment decompositions, O(n²) worst case.
//   - BruteForce: exponential subset DP for tiny trees, used to validate
//     the other two.
package traversal

import (
	"fmt"

	"treesched/internal/tree"
)

// PeakMemory returns the peak memory of executing the nodes of t
// sequentially in the given topological order. It returns an error if order
// is not a topological order of all nodes of t.
func PeakMemory(t *tree.Tree, order []int) (int64, error) {
	if !t.IsTopological(order) {
		return 0, fmt.Errorf("traversal: order is not a topological order of the tree")
	}
	return peakMemoryUnchecked(t, order), nil
}

// peakMemoryUnchecked is PeakMemory without the validity check.
func peakMemoryUnchecked(t *tree.Tree, order []int) int64 {
	var m, peak int64
	for _, v := range order {
		m += t.N(v) + t.F(v)
		if m > peak {
			peak = m
		}
		m -= t.N(v) + t.InSize(v)
	}
	return peak
}

// Profile returns the residual memory after each step of order (the output
// files still resident), without validity checking. The last entry equals
// f_root for a complete order.
func Profile(t *tree.Tree, order []int) []int64 {
	prof := make([]int64, len(order))
	var m int64
	for k, v := range order {
		m += t.F(v) - t.InSize(v)
		prof[k] = m
	}
	return prof
}
