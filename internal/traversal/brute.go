package traversal

import (
	"fmt"

	"treesched/internal/tree"
)

// MaxBruteForceNodes bounds the tree size accepted by BruteForce: the
// subset DP uses O(2^n) states.
const MaxBruteForceNodes = 22

// BruteForce computes the exact optimal sequential peak memory by dynamic
// programming over subsets of completed nodes. The resident memory is a
// function of the completed set alone, so
//
//	minPeak(S) = min over ready v ∉ S of max(m(S)+n_v+f_v, minPeak(S∪{v}))
//
// It exists to validate Optimal and BestPostOrder on small trees.
func BruteForce(t *tree.Tree) (Result, error) {
	n := t.Len()
	if n > MaxBruteForceNodes {
		return Result{}, fmt.Errorf("traversal: brute force limited to %d nodes, got %d", MaxBruteForceNodes, n)
	}
	if n == 0 {
		return Result{}, nil
	}
	full := uint32(1)<<n - 1
	memo := make(map[uint32]int64, 1<<uint(min(n, 20)))
	choice := make(map[uint32]int, 1<<uint(min(n, 20)))

	// resident(S): sum of f_i for completed i whose parent is not completed
	// (the root's output stays resident).
	resident := func(s uint32) int64 {
		var m int64
		for v := 0; v < n; v++ {
			if s&(1<<uint(v)) == 0 {
				continue
			}
			p := t.Parent(v)
			if p == tree.None || s&(1<<uint(p)) == 0 {
				m += t.F(v)
			}
		}
		return m
	}
	ready := func(s uint32, v int) bool {
		if s&(1<<uint(v)) != 0 {
			return false
		}
		for _, c := range t.Children(v) {
			if s&(1<<uint(c)) == 0 {
				return false
			}
		}
		return true
	}

	var solve func(s uint32) int64
	solve = func(s uint32) int64 {
		if s == full {
			return 0
		}
		if v, ok := memo[s]; ok {
			return v
		}
		m := resident(s)
		best := int64(1) << 62
		bestV := -1
		for v := 0; v < n; v++ {
			if !ready(s, v) {
				continue
			}
			pk := m + t.N(v) + t.F(v)
			if rest := solve(s | 1<<uint(v)); rest > pk {
				pk = rest
			}
			if pk < best {
				best = pk
				bestV = v
			}
		}
		memo[s] = best
		choice[s] = bestV
		return best
	}

	peak := solve(0)
	order := make([]int, 0, n)
	s := uint32(0)
	for s != full {
		v := choice[s]
		order = append(order, v)
		s |= 1 << uint(v)
	}
	return Result{Order: order, Peak: peak}, nil
}
