package traversal_test

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"treesched/internal/dataset"
	"treesched/internal/traversal"
)

// -update regenerates testdata/golden_orders.json. The checked-in file
// was produced by the pre-refactor segment machinery, so the test pins
// the arena rewrite to the exact node orders of the original code.
var updateGolden = flag.Bool("update", false, "rewrite golden traversal hashes")

func orderHash(r traversal.Result) string {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(r.Peak))
	h.Write(buf[:])
	for _, v := range r.Order {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestGoldenTraversalOrders locks BestPostOrder and Optimal to the exact
// node orders (not just peaks) they emitted before the zero-allocation
// rewrite.
func TestGoldenTraversalOrders(t *testing.T) {
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for _, inst := range insts {
		got[inst.Name+"/best_postorder"] = orderHash(traversal.BestPostOrder(inst.Tree))
		got[inst.Name+"/natural_postorder"] = orderHash(traversal.NaturalPostOrder(inst.Tree))
		got[inst.Name+"/optimal"] = orderHash(traversal.Optimal(inst.Tree))
	}

	path := filepath.Join("testdata", "golden_orders.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), path)
		return
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to generate): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, computed %d", len(want), len(got))
	}
	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if want[k] != got[k] {
			t.Errorf("%s: traversal changed (golden %s, got %s)", k, want[k], got[k])
		}
	}
}
