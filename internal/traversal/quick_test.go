package traversal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"treesched/internal/tree"
)

// quick.Check property suite over randomly generated trees: the optimality
// chain brute <= Optimal <= BestPostOrder <= NaturalPostOrder and the
// internal consistency of every reported peak.

func randomSpecTree(seed int64, size uint8) *tree.Tree {
	r := rand.New(rand.NewSource(seed))
	n := 1 + int(size)%40
	spec := tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 6, FMin: 0, FMax: 9}
	switch seed % 3 {
	case 0:
		return tree.RandomAttachment(r, n, spec)
	case 1:
		return tree.RandomPrufer(r, n, spec)
	default:
		return tree.RandomBinary(r, n, spec)
	}
}

func TestQuickOptimalityChain(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr := randomSpecTree(seed, size)
		opt := Optimal(tr)
		best := BestPostOrder(tr)
		nat := NaturalPostOrder(tr)
		return opt.Peak <= best.Peak && best.Peak <= nat.Peak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(131))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReportedPeaksMatchEvaluation(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr := randomSpecTree(seed, size)
		for _, res := range []Result{Optimal(tr), BestPostOrder(tr), NaturalPostOrder(tr)} {
			got, err := PeakMemory(tr, res.Order)
			if err != nil || got != res.Peak {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(132))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPeakAtLeastEveryFootprint(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		tr := randomSpecTree(seed, size)
		opt := Optimal(tr)
		for v := 0; v < tr.Len(); v++ {
			if opt.Peak < tr.ProcFootprint(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(133))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPeakAtLeastRootFile(t *testing.T) {
	// The root's output file remains resident, so no traversal peaks below
	// f_root (or below any single output file plus nothing).
	f := func(seed int64, size uint8) bool {
		tr := randomSpecTree(seed, size)
		return Optimal(tr).Peak >= tr.F(tr.Root())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(134))}); err != nil {
		t.Fatal(err)
	}
}
