package traversal

import (
	"math/rand"
	"testing"

	"treesched/internal/tree"
)

// pebbleChain builds a chain of n pebble-game nodes rooted at node 0.
func pebbleChain(n int) *tree.Tree {
	rng := rand.New(rand.NewSource(0))
	return tree.Chain(rng, n, tree.PebbleWeights)
}

func TestPeakMemoryChain(t *testing.T) {
	tr := pebbleChain(5)
	order := []int{4, 3, 2, 1, 0}
	peak, err := PeakMemory(tr, order)
	if err != nil {
		t.Fatalf("PeakMemory: %v", err)
	}
	// Processing a chain node: previous output (1) + own output (1) = 2.
	if peak != 2 {
		t.Errorf("chain peak = %d, want 2", peak)
	}
}

func TestPeakMemoryRejectsBadOrder(t *testing.T) {
	tr := pebbleChain(3)
	if _, err := PeakMemory(tr, []int{0, 1, 2}); err == nil {
		t.Errorf("root-first order accepted")
	}
	if _, err := PeakMemory(tr, []int{2, 1}); err == nil {
		t.Errorf("partial order accepted")
	}
}

func TestPeakMemoryFork(t *testing.T) {
	// Root with 3 leaf children, pebble weights: all leaves must be resident
	// plus the root's output => peak 4.
	tr := tree.MustNew([]int{tree.None, 0, 0, 0},
		[]float64{1, 1, 1, 1}, []int64{0, 0, 0, 0}, []int64{1, 1, 1, 1})
	peak, err := PeakMemory(tr, []int{1, 2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 4 {
		t.Errorf("fork peak = %d, want 4", peak)
	}
}

func TestProfileEndsAtRootFile(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		tr := tree.RandomAttachment(rng, 1+rng.Intn(60),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 4, FMin: 0, FMax: 9})
		res := BestPostOrder(tr)
		prof := Profile(tr, res.Order)
		if got := prof[len(prof)-1]; got != tr.F(tr.Root()) {
			t.Fatalf("profile end = %d, want f_root = %d", got, tr.F(tr.Root()))
		}
	}
}

func TestBestPostOrderIsPostorder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 25; trial++ {
		tr := tree.RandomPrufer(rng, 2+rng.Intn(80),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 4, FMin: 0, FMax: 9})
		res := BestPostOrder(tr)
		if !tr.IsPostorder(res.Order) {
			t.Fatalf("BestPostOrder returned non-postorder")
		}
		got, err := PeakMemory(tr, res.Order)
		if err != nil {
			t.Fatal(err)
		}
		if got != res.Peak {
			t.Fatalf("BestPostOrder reported peak %d, evaluated %d", res.Peak, got)
		}
	}
}

func TestBestPostOrderBeatsNatural(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		tr := tree.RandomAttachment(rng, 2+rng.Intn(100),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 3, FMin: 0, FMax: 20})
		best := BestPostOrder(tr)
		nat := NaturalPostOrder(tr)
		if best.Peak > nat.Peak {
			t.Fatalf("best postorder peak %d > natural postorder peak %d", best.Peak, nat.Peak)
		}
	}
}

func TestBestPostOrderHandExample(t *testing.T) {
	// Root with two subtrees: a heavy one (peak 10, output 1) and a light
	// one (peak 3, output 3). Visiting heavy first: max(10, 1+3, 1+3+n+f).
	// Visiting light first: max(3, 3+10) = 13. Best = 10.
	//
	//	     0 (n=0, f=0)
	//	    / \
	//	   1   2        1: f=1, n=9  (peak 10 alone)   2: f=3, n=0 (peak 3)
	tr := tree.MustNew([]int{tree.None, 0, 0},
		[]float64{1, 1, 1}, []int64{0, 9, 0}, []int64{0, 1, 3})
	res := BestPostOrder(tr)
	if res.Peak != 10 {
		t.Errorf("peak = %d, want 10", res.Peak)
	}
	if res.Order[0] != 1 {
		t.Errorf("heavy child not visited first: order %v", res.Order)
	}
}

func TestPostOrderPeaksMatchesBestPostOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		tr := tree.RandomBinary(rng, 2+rng.Intn(60),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 5, FMin: 1, FMax: 8})
		peaks := PostOrderPeaks(tr)
		if peaks[tr.Root()] != BestPostOrder(tr).Peak {
			t.Fatalf("PostOrderPeaks[root] = %d, BestPostOrder = %d",
				peaks[tr.Root()], BestPostOrder(tr).Peak)
		}
	}
}

func TestOptimalValidAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		tr := tree.RandomAttachment(rng, 1+rng.Intn(120),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 5, FMin: 0, FMax: 9})
		res := Optimal(tr)
		got, err := PeakMemory(tr, res.Order)
		if err != nil {
			t.Fatalf("Optimal returned invalid order: %v", err)
		}
		if got != res.Peak {
			t.Fatalf("Optimal reported peak %d, evaluated %d", res.Peak, got)
		}
	}
}

func TestOptimalNeverWorseThanPostorder(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		tr := tree.RandomPrufer(rng, 2+rng.Intn(150),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 6, FMin: 0, FMax: 12})
		opt := Optimal(tr)
		po := BestPostOrder(tr)
		if opt.Peak > po.Peak {
			t.Fatalf("Optimal peak %d > BestPostOrder peak %d", opt.Peak, po.Peak)
		}
	}
}

// TestOptimalMatchesBruteForce is the central correctness test of Liu's
// algorithm: exact agreement with exponential search on random small trees
// across weight regimes.
func TestOptimalMatchesBruteForce(t *testing.T) {
	specs := []tree.WeightSpec{
		tree.PebbleWeights,
		{WMin: 1, WMax: 1, NMin: 0, NMax: 3, FMin: 0, FMax: 5},
		{WMin: 1, WMax: 1, NMin: 0, NMax: 0, FMin: 1, FMax: 9},
		{WMin: 1, WMax: 1, NMin: 2, NMax: 7, FMin: 1, FMax: 3},
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 400; trial++ {
		spec := specs[trial%len(specs)]
		n := 2 + rng.Intn(9) // up to 10 nodes
		var tr *tree.Tree
		switch trial % 3 {
		case 0:
			tr = tree.RandomAttachment(rng, n, spec)
		case 1:
			tr = tree.RandomPrufer(rng, n, spec)
		default:
			tr = tree.RandomBinary(rng, n, spec)
		}
		bf, err := BruteForce(tr)
		if err != nil {
			t.Fatal(err)
		}
		opt := Optimal(tr)
		if opt.Peak != bf.Peak {
			var buf []byte
			for i := 0; i < tr.Len(); i++ {
				buf = append(buf, []byte(
					"\n  node "+itoa(i)+" parent "+itoa(tr.Parent(i))+
						" n="+itoa(int(tr.N(i)))+" f="+itoa(int(tr.F(i))))...)
			}
			t.Fatalf("trial %d: Optimal peak %d != brute force %d; tree:%s\norder=%v",
				trial, opt.Peak, bf.Peak, string(buf), opt.Order)
		}
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestBruteForceRejectsBigTrees(t *testing.T) {
	tr := pebbleChain(MaxBruteForceNodes + 1)
	if _, err := BruteForce(tr); err == nil {
		t.Fatalf("BruteForce accepted %d nodes", tr.Len())
	}
}

func TestBruteForceChain(t *testing.T) {
	bf, err := BruteForce(pebbleChain(6))
	if err != nil {
		t.Fatal(err)
	}
	if bf.Peak != 2 {
		t.Errorf("chain brute peak = %d, want 2", bf.Peak)
	}
}

func TestOptimalOnEmptyAndSingle(t *testing.T) {
	empty, _ := tree.New(nil, nil, nil, nil)
	if res := Optimal(empty); res.Peak != 0 || len(res.Order) != 0 {
		t.Errorf("Optimal(empty) = %+v", res)
	}
	single := tree.MustNew([]int{tree.None}, []float64{1}, []int64{4}, []int64{3})
	if res := Optimal(single); res.Peak != 7 {
		t.Errorf("Optimal(single) peak = %d, want 7", res.Peak)
	}
	if res := BestPostOrder(single); res.Peak != 7 {
		t.Errorf("BestPostOrder(single) peak = %d, want 7", res.Peak)
	}
}

// TestOptimalBeatsPostorderSometimes ensures the exact algorithm is not
// accidentally identical to the postorder heuristic: there must exist trees
// where a non-postorder traversal strictly wins (Liu 1987 motivating case).
func TestOptimalBeatsPostorderSometimes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	wins := 0
	for trial := 0; trial < 2000 && wins == 0; trial++ {
		tr := tree.RandomAttachment(rng, 4+rng.Intn(10),
			tree.WeightSpec{WMin: 1, WMax: 1, NMin: 0, NMax: 6, FMin: 0, FMax: 9})
		if Optimal(tr).Peak < BestPostOrder(tr).Peak {
			wins++
		}
	}
	if wins == 0 {
		t.Fatalf("Optimal never beat BestPostOrder on 2000 random trees")
	}
}

func BenchmarkBestPostOrder10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := tree.RandomAttachment(rng, 10000,
		tree.WeightSpec{WMin: 1, WMax: 9, NMin: 0, NMax: 9, FMin: 1, FMax: 99})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestPostOrder(tr)
	}
}

func BenchmarkOptimal10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := tree.RandomAttachment(rng, 10000,
		tree.WeightSpec{WMin: 1, WMax: 9, NMin: 0, NMax: 9, FMin: 1, FMax: 99})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimal(tr)
	}
}
