// Package stats provides the summary statistics used by the experiment
// harness: means, percentiles and the distribution "crosses" (mean center,
// 10th–90th percentile arms) drawn in the paper's Figures 6–8.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; all entries must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the q-th percentile of xs (q in [0,100]) with linear
// interpolation between ranks; 0 for empty input.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 100 {
		return s[len(s)-1]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min and Max return the extrema of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Fraction returns the share of entries for which pred holds.
func Fraction(xs []float64, pred func(float64) bool) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := 0
	for _, x := range xs {
		if pred(x) {
			c++
		}
	}
	return float64(c) / float64(len(xs))
}

// Cross is the distribution marker of the paper's scatter plots: the mean
// as center with arms from the 10th to the 90th percentile on both axes.
type Cross struct {
	XMean, XP10, XP90 float64
	YMean, YP10, YP90 float64
}

// NewCross computes the cross of the paired samples (xs[i], ys[i]).
func NewCross(xs, ys []float64) Cross {
	return Cross{
		XMean: Mean(xs), XP10: Percentile(xs, 10), XP90: Percentile(xs, 90),
		YMean: Mean(ys), YP10: Percentile(ys, 10), YP90: Percentile(ys, 90),
	}
}

// String renders the cross compactly.
func (c Cross) String() string {
	return fmt.Sprintf("x: %.3f [%.3f, %.3f]  y: %.3f [%.3f, %.3f]",
		c.XMean, c.XP10, c.XP90, c.YMean, c.YP10, c.YP90)
}
