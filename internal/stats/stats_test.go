package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %g, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Errorf("GeoMean(nil) != 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75}, {-5, 1}, {200, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Errorf("Percentile(nil) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMinMaxFraction(t *testing.T) {
	xs := []float64{2, -1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max wrong: %g %g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty Min/Max wrong")
	}
	if got := Fraction(xs, func(x float64) bool { return x > 0 }); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Fraction = %g", got)
	}
	if Fraction(nil, func(float64) bool { return true }) != 0 {
		t.Errorf("Fraction(nil) != 0")
	}
}

func TestCross(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 20, 30}
	c := NewCross(xs, ys)
	if c.XMean != 2 || c.YMean != 20 {
		t.Errorf("cross means: %+v", c)
	}
	if c.XP10 > c.XMean || c.XP90 < c.XMean {
		t.Errorf("cross arms inverted: %+v", c)
	}
	if c.String() == "" {
		t.Errorf("empty String()")
	}
}

// TestQuickPercentileOrdering: percentiles are monotone in q and bounded by
// the extremes.
func TestQuickPercentileOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(size)%50
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		qs := []float64{0, 10, 25, 50, 75, 90, 100}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := Percentile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Percentile(xs, 0) == sorted[0] && Percentile(xs, 100) == sorted[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
