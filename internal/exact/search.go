package exact

import (
	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/tree"
)

// solver is the mutable state of one branch-and-bound search. All slices
// are preallocated in newSolver; dfs mutates and restores them, so the
// search allocates only for memoization entries.
type solver struct {
	t      *tree.Tree
	memCap int64
	n      int
	full   uint64

	// static per-node facts
	w       []float64 // work
	nf      []int64   // n_v + f_v: allocated when v starts
	rel     []int64   // n_v + InSize(v): released when v completes
	topRank []int32   // rank in t.TopOrder (children before parents)
	parent  []int32
	pulses  []int32 // zero-work tasks in ascending topRank order

	// machine, grouped into distinct speed classes for symmetry breaking
	p         int
	speed     []float64 // per processor
	classOf   []int32   // processor -> speed class
	classes   []float64 // distinct speeds
	sumSpeed  float64
	maxSpeed  float64
	est       []float64 // scratch of the residual critical-path bound
	finsBuf   []float64 // scratch for memo fin vectors
	runningIx []int32   // scratch: running tasks in ascending id order

	// search state
	started, done uint64
	remaining     []int32 // unfinished-children count per node
	mem           int64
	peak          int64
	unstartedW    float64
	procTask      []int32 // running task per processor, or -1
	procFin       []float64
	runningCount  int
	start         []float64
	proc          []int32

	// incumbent
	best      float64
	bestStart []float64
	bestProc  []int32
	bestPeak  int64
	improved  bool

	// accounting
	explored int64
	pruned   int64 // decision nodes cut by the lower bound
	memoHits int64 // decision nodes cut by dominance memoization
	budget   int64
	aborted  bool

	memoOK bool
	memo   map[memoKey][]memoEntry
}

// memoKey identifies a family of comparable search states: which tasks
// are done, which are running, and the speed class each running task
// occupies (4 bits per running task, ascending task id). Which concrete
// processor a task holds within its class is immaterial — equal-speed
// processors are interchangeable.
type memoKey struct {
	started, done uint64
	classSig      uint64
}

// memoEntry is one explored state's comparable coordinates: the clock,
// the resident memory, and the running tasks' finish times in ascending
// task-id order. An arriving state component-wise >= an entry is
// dominated: every completion reachable from it is reachable from the
// entry state at least as early, under no more memory.
type memoEntry struct {
	now  float64
	mem  int64
	fins []float64
}

// maxMemoEntries bounds each key's Pareto list; arrivals that fit a full
// list are explored but not recorded (pruning stays sound, just weaker).
const maxMemoEntries = 32

func newSolver(t *tree.Tree, m *machine.Model, memCap, budget int64) *solver {
	n := t.Len()
	p := m.P()
	s := &solver{
		t: t, memCap: memCap, n: n, p: p, budget: budget,
		full:      (uint64(1) << uint(n)) - 1,
		w:         make([]float64, n),
		nf:        make([]int64, n),
		rel:       make([]int64, n),
		topRank:   make([]int32, n),
		parent:    make([]int32, n),
		remaining: make([]int32, n),
		speed:     make([]float64, p),
		classOf:   make([]int32, p),
		est:       make([]float64, n),
		procTask:  make([]int32, p),
		procFin:   make([]float64, p),
		start:     make([]float64, n),
		proc:      make([]int32, n),
		bestStart: make([]float64, n),
		bestProc:  make([]int32, n),
		sumSpeed:  m.SumSpeed(),
		maxSpeed:  m.MaxSpeed(),
	}
	for v := 0; v < n; v++ {
		s.w[v] = t.W(v)
		s.nf[v] = t.N(v) + t.F(v)
		s.rel[v] = t.N(v) + t.InSize(v)
		s.parent[v] = int32(t.Parent(v))
		s.remaining[v] = int32(t.NumChildren(v))
		s.unstartedW += s.w[v]
		s.proc[v] = -1
	}
	for i, v := range t.TopOrder() {
		s.topRank[v] = int32(i)
		if s.w[v] == 0 {
			s.pulses = append(s.pulses, int32(v)) // topRank order: causal pulse order
		}
	}
	// Distinct speed classes in first-seen processor order: on a uniform
	// machine there is exactly one, and a ready task branches onto one
	// processor instead of p.
	for q := 0; q < p; q++ {
		s.speed[q] = m.Speed(q)
		s.procTask[q] = -1
		cls := int32(-1)
		for c, sp := range s.classes {
			if sp == s.speed[q] {
				cls = int32(c)
				break
			}
		}
		if cls < 0 {
			cls = int32(len(s.classes))
			s.classes = append(s.classes, s.speed[q])
		}
		s.classOf[q] = cls
	}
	// The class signature packs 4 bits per running task; beyond 16
	// processors (or classes) memoization is disabled, never wrong.
	s.memoOK = p <= 16 && len(s.classes) <= 16
	if s.memoOK {
		s.memo = make(map[memoKey][]memoEntry)
	}
	s.finsBuf = make([]float64, 0, p)
	s.runningIx = make([]int32, 0, p)
	return s
}

func (s *solver) bit(v int) uint64 { return uint64(1) << uint(v) }

func (s *solver) search() { s.dfs(0, 0, 0) }

// dfs explores one decision point: the clock sits at `now` (time 0 or a
// completion instant) and the same-instant cursors enforce one canonical
// enumeration order per start set — pulses in ascending topological rank
// (>= minPulse) strictly before real starts in ascending task id
// (>= minReal). Every dfs call is one budgeted decision node.
func (s *solver) dfs(now float64, minReal int, minPulse int32) {
	if s.aborted {
		return
	}
	s.explored++
	if s.explored > s.budget {
		s.aborted = true
		return
	}
	if s.started == s.full {
		// Everything has started; the makespan is the last running finish.
		fin := now
		for q := 0; q < s.p; q++ {
			if s.procTask[q] >= 0 && s.procFin[q] > fin {
				fin = s.procFin[q]
			}
		}
		if fin < s.best {
			s.best = fin
			s.bestPeak = s.peak
			copy(s.bestStart, s.start)
			copy(s.bestProc, s.proc)
			s.improved = true
		}
		return
	}
	if s.lowerBound(now) >= s.best {
		s.pruned++
		return
	}
	if s.memoOK && minReal == 0 && minPulse == 0 && s.memoPrune(now) {
		s.memoHits++
		return
	}

	// Branch: start a zero-work pulse now. Pulses replay atomically
	// (allocate n+f, peak, release n+InSize) and, at one instant, in
	// topological-rank order before any real start — matching the
	// canonical event order of sched.Evaluate exactly, so the peak
	// tracked here is the simulator's.
	if minReal == 0 {
		if q := s.idleProc(); q >= 0 {
			for _, v32 := range s.pulses {
				v := int(v32)
				if s.topRank[v] < minPulse || s.started&s.bit(v) != 0 || s.remaining[v] != 0 {
					continue
				}
				if s.nf[v] > s.memCap-s.mem {
					continue
				}
				s.start[v], s.proc[v] = now, int32(q)
				s.started |= s.bit(v)
				s.done |= s.bit(v)
				savedPeak := s.peak
				if m := s.mem + s.nf[v]; m > s.peak {
					s.peak = m
				}
				s.mem += s.nf[v] - s.rel[v]
				if p := s.parent[v]; p >= 0 {
					s.remaining[p]--
				}
				s.dfs(now, 0, s.topRank[v]+1)
				if p := s.parent[v]; p >= 0 {
					s.remaining[p]++
				}
				s.mem -= s.nf[v] - s.rel[v]
				s.peak = savedPeak
				s.done &^= s.bit(v)
				s.started &^= s.bit(v)
				s.proc[v] = -1
			}
		}
	}

	// Branch: start a real task now, once per distinct speed class with
	// an idle processor (always the lowest-index one — equal-speed
	// processors are interchangeable).
	for v := minReal; v < s.n; v++ {
		if s.w[v] == 0 || s.started&s.bit(v) != 0 || s.remaining[v] != 0 {
			continue
		}
		if s.nf[v] > s.memCap-s.mem {
			continue
		}
		for c := range s.classes {
			q := s.idleProcInClass(int32(c))
			if q < 0 {
				continue
			}
			s.start[v], s.proc[v] = now, int32(q)
			s.started |= s.bit(v)
			savedPeak := s.peak
			if m := s.mem + s.nf[v]; m > s.peak {
				s.peak = m
			}
			s.mem += s.nf[v]
			s.unstartedW -= s.w[v]
			s.procTask[q] = int32(v)
			s.procFin[q] = now + s.w[v]/s.speed[q]
			s.runningCount++
			s.dfs(now, v+1, minPulse)
			s.runningCount--
			s.procTask[q] = -1
			s.unstartedW += s.w[v]
			s.mem -= s.nf[v]
			s.peak = savedPeak
			s.started &^= s.bit(v)
			s.proc[v] = -1
		}
	}

	// Branch: start nothing more at this instant; advance the clock to
	// the earliest running finish and retire every completion there
	// (releases happen before the next instant's allocations, as in the
	// simulator). With nothing running this is a dead end — some ready
	// task exists but none fits the cap — and the branch just ends.
	if s.runningCount == 0 {
		return
	}
	next := s.procFin[0]
	first := true
	for q := 0; q < s.p; q++ {
		if s.procTask[q] < 0 {
			continue
		}
		if first || s.procFin[q] < next {
			next = s.procFin[q]
			first = false
		}
	}
	comp := make([]int32, 0, 8) // completed task ids; proc is s.proc[v]
	for q := 0; q < s.p; q++ {
		v := s.procTask[q]
		if v < 0 || s.procFin[q] != next {
			continue
		}
		comp = append(comp, v)
		s.done |= s.bit(int(v))
		s.mem -= s.rel[v]
		if p := s.parent[v]; p >= 0 {
			s.remaining[p]--
		}
		s.procTask[q] = -1
		s.runningCount--
	}
	s.dfs(next, 0, 0)
	for i := len(comp) - 1; i >= 0; i-- {
		v := comp[i]
		q := int(s.proc[v])
		s.done &^= s.bit(int(v))
		s.mem += s.rel[v]
		if p := s.parent[v]; p >= 0 {
			s.remaining[p]++
		}
		s.procTask[q] = v
		// The explored subtree may have reused q after the retirement,
		// leaving a stale finish behind; the retired task's true finish is
		// exactly this instant (that is why it was retired here).
		s.procFin[q] = next
		s.runningCount++
	}
}

// idleProc returns the lowest-index idle processor, or -1.
func (s *solver) idleProc() int {
	for q := 0; q < s.p; q++ {
		if s.procTask[q] < 0 {
			return q
		}
	}
	return -1
}

// idleProcInClass returns the lowest-index idle processor of speed class
// c, or -1.
func (s *solver) idleProcInClass(c int32) int {
	for q := 0; q < s.p; q++ {
		if s.classOf[q] == c && s.procTask[q] < 0 {
			return q
		}
	}
	return -1
}

// lowerBound returns a proven floor on any completion reachable from the
// current state: the latest running finish, the speed-scaled area bound
// (unstarted work plus committed processor time over Σ speeds — every
// processor is unavailable until max(now, its running finish), and the
// makespan is never below any of those), and the residual critical-path
// DP (earliest-completion estimates at full speed s_max through the
// unfinished tree, seeded with the running tasks' real finishes).
func (s *solver) lowerBound(now float64) float64 {
	lb := now
	area := s.unstartedW
	for q := 0; q < s.p; q++ {
		avail := now
		if s.procTask[q] >= 0 {
			if f := s.procFin[q]; f > avail {
				avail = f
			}
			if avail > lb {
				lb = avail
			}
		}
		area += avail * s.speed[q]
	}
	if a := area / s.sumSpeed; a > lb {
		lb = a
	}
	est := s.est
	for _, v := range s.t.TopOrder() { // children before parents
		switch {
		case s.done&s.bit(v) != 0:
			est[v] = now
		case s.started&s.bit(v) != 0:
			est[v] = s.procFin[s.proc[v]]
		default:
			at := now
			for _, c := range s.t.Children(v) {
				if s.done&s.bit(c) == 0 && est[c] > at {
					at = est[c]
				}
			}
			est[v] = at + s.w[v]/s.maxSpeed
		}
	}
	if e := est[s.t.Root()]; e > lb {
		lb = e
	}
	return lb
}

// memoPrune reports whether the current (clean) decision point is
// dominated by an already-explored state, and records it otherwise.
// Sound with the incumbent test: the incumbent only ever improves, so a
// subtree pruned under an older (worse) incumbent had nothing better
// than it — and so nothing better than the current one either.
func (s *solver) memoPrune(now float64) bool {
	var sig uint64
	s.runningIx = s.runningIx[:0]
	for v := 0; v < s.n; v++ {
		if s.started&s.bit(v) != 0 && s.done&s.bit(v) == 0 {
			sig = sig<<4 | uint64(s.classOf[s.proc[v]])
			s.runningIx = append(s.runningIx, int32(v))
		}
	}
	key := memoKey{started: s.started, done: s.done, classSig: sig}
	fins := s.finsBuf[:0]
	for _, v := range s.runningIx {
		fins = append(fins, s.procFin[s.proc[v]])
	}
	entries := s.memo[key]
	for i := range entries {
		e := &entries[i]
		if e.now <= now && e.mem <= s.mem && finsLE(e.fins, fins) {
			return true
		}
	}
	if len(entries) < maxMemoEntries {
		// Drop stored entries the arrival dominates, then record it.
		kept := entries[:0]
		for i := range entries {
			e := entries[i]
			if now <= e.now && s.mem <= e.mem && finsLE(fins, e.fins) {
				continue
			}
			kept = append(kept, e)
		}
		s.memo[key] = append(kept, memoEntry{now: now, mem: s.mem, fins: append([]float64(nil), fins...)})
	}
	return false
}

func finsLE(a, b []float64) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// bestSchedule materializes the incumbent found by the search.
func (s *solver) bestSchedule(m *machine.Model) *sched.Schedule {
	out := &sched.Schedule{
		Start: append([]float64(nil), s.bestStart...),
		Proc:  make([]int, s.n),
		P:     s.p,
		M:     hetOrNil(m),
	}
	for v := 0; v < s.n; v++ {
		out.Proc[v] = int(s.bestProc[v])
	}
	return out
}
