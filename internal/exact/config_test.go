package exact

import (
	"math"
	"strings"
	"testing"
)

func TestParseBudget(t *testing.T) {
	good := []struct {
		in   string
		want int64
	}{
		{"1", 1},
		{"42", 42},
		{"500k", 500_000},
		{"500K", 500_000},
		{"2m", 2_000_000},
		{"2M", 2_000_000},
		{"3g", 3_000_000_000},
		{"3G", 3_000_000_000},
		{"9223372036854775807", math.MaxInt64},
	}
	for _, tc := range good {
		got, err := ParseBudget(tc.in)
		if err != nil {
			t.Errorf("ParseBudget(%q): unexpected error %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBudget(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"", "0", "-1", "-5k", "k", "M", "1.5", "1.5M", "10T", "abc",
		"9223372036854775808",   // int64 overflow, no suffix
		"9223372036854776k",     // overflow through the multiplier
		"100000000000000000000", // way past int64
		" 1", "1 ",
	}
	for _, in := range bad {
		if got, err := ParseBudget(in); err == nil {
			t.Errorf("ParseBudget(%q) = %d, want error", in, got)
		} else if !strings.Contains(err.Error(), "node budget") {
			t.Errorf("ParseBudget(%q) error %q does not mention the budget", in, err)
		}
	}
}

func TestParseCap(t *testing.T) {
	good := []struct {
		in   string
		want CapSpec
	}{
		{"", CapSpec{Unlimited: true}},
		{"none", CapSpec{Unlimited: true}},
		{"unlimited", CapSpec{Unlimited: true}},
		{"1", CapSpec{Abs: 1}},
		{"1048576", CapSpec{Abs: 1048576}},
		{"1.5x", CapSpec{Factor: 1.5}},
		{"0.75x", CapSpec{Factor: 0.75}}, // below M_seq is a legal ask
		{"2x", CapSpec{Factor: 2}},
	}
	for _, tc := range good {
		got, err := ParseCap(tc.in)
		if err != nil {
			t.Errorf("ParseCap(%q): unexpected error %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseCap(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"0", "-1", "1.5", "x", "-2x", "0x", "Infx", "NaNx", "2xx", "nonex", "bytes",
	}
	for _, in := range bad {
		if got, err := ParseCap(in); err == nil {
			t.Errorf("ParseCap(%q) = %+v, want error", in, got)
		} else if !strings.Contains(err.Error(), "memory cap") {
			t.Errorf("ParseCap(%q) error %q does not mention the cap", in, err)
		}
	}
}

func TestCapSpecResolve(t *testing.T) {
	cases := []struct {
		spec CapSpec
		mseq int64
		want int64
	}{
		{CapSpec{Unlimited: true}, 100, math.MaxInt64},
		{CapSpec{Abs: 64}, 100, 64},
		{CapSpec{Factor: 1.5}, 100, 150},
		{CapSpec{Factor: 1.5}, 101, 152}, // rounds up, never undershoots
		{CapSpec{Factor: 0.5}, 101, 51},
		{CapSpec{}, 100, math.MaxInt64}, // zero value: no constraint
	}
	for _, tc := range cases {
		if got := tc.spec.Resolve(tc.mseq); got != tc.want {
			t.Errorf("(%+v).Resolve(%d) = %d, want %d", tc.spec, tc.mseq, got, tc.want)
		}
	}
}

func TestCapFromFactor(t *testing.T) {
	cases := []struct {
		factor float64
		mseq   int64
		want   int64
	}{
		{0, 100, math.MaxInt64},
		{-1, 100, math.MaxInt64},
		{math.NaN(), 100, math.MaxInt64},
		{2, 100, 200},
		{1.5, 101, 152},
		{math.Inf(1), 100, math.MaxInt64},
		{1e18, math.MaxInt64, math.MaxInt64}, // saturates instead of overflowing
	}
	for _, tc := range cases {
		if got := CapFromFactor(tc.factor, tc.mseq); got != tc.want {
			t.Errorf("CapFromFactor(%g, %d) = %d, want %d", tc.factor, tc.mseq, got, tc.want)
		}
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig("2x1.0+2x0.5", "1.5x", "500k")
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if cfg.Machine.P() != 4 || cfg.Machine.IsUniform() {
		t.Errorf("machine = %v, want 4 heterogeneous processors", cfg.Machine)
	}
	if cfg.Cap != (CapSpec{Factor: 1.5}) {
		t.Errorf("cap = %+v, want factor 1.5", cfg.Cap)
	}
	if cfg.Budget != 500_000 {
		t.Errorf("budget = %d, want 500000", cfg.Budget)
	}

	cfg, err = ParseConfig("3", "none", "")
	if err != nil {
		t.Fatalf("ParseConfig defaults: %v", err)
	}
	if cfg.Machine.P() != 3 || !cfg.Machine.IsUniform() {
		t.Errorf("machine = %v, want uniform p=3", cfg.Machine)
	}
	if !cfg.Cap.Unlimited {
		t.Errorf("cap = %+v, want unlimited", cfg.Cap)
	}
	if cfg.Budget != DefaultNodeBudget {
		t.Errorf("budget = %d, want DefaultNodeBudget %d", cfg.Budget, DefaultNodeBudget)
	}

	bad := []struct {
		machine, cap, budget, wantSub string
	}{
		{"", "none", "", "machine spec required"},
		{"zero", "none", "", "machine"},
		{"2", "nope", "", "memory cap"},
		{"2", "-1", "", "memory cap"},
		{"2", "none", "0", "node budget"},
		{"2", "none", "12q", "node budget"},
	}
	for _, tc := range bad {
		_, err := ParseConfig(tc.machine, tc.cap, tc.budget)
		if err == nil {
			t.Errorf("ParseConfig(%q, %q, %q): want error", tc.machine, tc.cap, tc.budget)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseConfig(%q, %q, %q) error %q does not contain %q",
				tc.machine, tc.cap, tc.budget, err, tc.wantSub)
		}
	}
}
