// Package exact solves the paper's scheduling problem to proven
// optimality on small trees: minimum makespan on p related-speed
// processors under a global memory cap. It is both a product feature (an
// anytime portfolio candidate) and the repo's strongest correctness tool —
// a ground-truth oracle the heuristics are differentially tested against.
//
// The search is a branch-and-bound over (task-start-order, processor
// assignment) decisions. Three facts keep it tractable on oracle-sized
// trees:
//
//   - Starts only happen at event times. Take the earliest start that is
//     neither at time zero nor at a completion instant and shift it back
//     to the latest event before it: residency is constant on the skipped
//     interval (memory only changes at events, and no event lies inside
//     it), so the task sees exactly the memory it saw before, its own
//     footprint fits where it fit before, and its completion only moves
//     earlier. Iterating start-by-start turns any feasible schedule into
//     an equally good one that branches only at completion events.
//   - Dominance memoization. Two search states with the same
//     done/running sets and the same speed-class assignment of running
//     tasks are comparable: if one has component-wise earlier finish
//     times, no more resident memory and no later clock, every completion
//     reachable from the other is reachable from it at least as early.
//     Dominated states are pruned.
//   - Symmetry breaking. Idle processors of equal speed are
//     interchangeable, so a task only ever branches onto the lowest-index
//     idle processor of each distinct speed class, and tasks started at
//     the same instant are enumerated in one canonical order.
//
// The lower bound at each state is the maximum of the speed-scaled area
// bound (remaining work plus committed busy time over Σ speeds), the
// residual critical-path DP (earliest-completion estimates over the
// unfinished tree at full speed s_max), and the latest running finish.
//
// At p = 1 the problem is polynomial: Liu's exact traversal
// (traversal.Optimal) attains the minimum peak of any schedule, and any
// topological order is makespan-optimal on one processor, so Solve
// answers without searching.
//
// One caveat on zero-work tasks: the simulator replays coincident pulses
// in one canonical (topological) order, and the search only places pulses
// at event instants. On pulse-free trees the event-time restriction is
// lossless (the constant-residency argument above), so Proven means
// optimal over all schedules. On trees with pulses, Proven is relative to
// event-aligned pulse placement — exact for makespan whenever the cap is
// not binding on pulse order, and never unsound: every returned schedule
// is re-measured by the simulator before being returned.
package exact

import (
	"errors"
	"fmt"
	"math"

	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// MaxSolveNodes bounds the tree size the branch-and-bound accepts: search
// state is packed into 64-bit node masks. The p = 1 fast path is exempt —
// it answers polynomially at any size.
const MaxSolveNodes = 64

// DefaultNodeBudget is the search budget of Solve when the caller passes
// 0: the number of explored decision nodes, not wall-clock time, so runs
// are deterministic across machines and repetitions.
const DefaultNodeBudget int64 = 1 << 21 // ~2.1M nodes

// ErrInfeasible is wrapped by Solve when no schedule can respect the
// memory cap: by the paper's linearization lemma, every p-processor
// schedule needs at least the optimal sequential traversal's peak, so a
// cap below Liu's optimum is provably hopeless.
var ErrInfeasible = errors.New("exact: no schedule fits the memory cap")

// Result is the outcome of an exact solve.
type Result struct {
	// Schedule is the best schedule found; optimal iff Proven. It always
	// respects the memory cap. Never nil on a nil error.
	Schedule *sched.Schedule
	// Makespan and Peak are the schedule's exact measures (Peak equals
	// what sched.Evaluate reports for Schedule, by construction: the
	// solver's internal accounting replays the simulator's event order).
	Makespan float64
	Peak     int64
	// Proven reports that the branch-and-bound exhausted the search space
	// within its node budget: Makespan is the true optimum, not merely
	// the best schedule found.
	Proven bool
	// Explored counts branch-and-bound decision nodes (0 when the p=1
	// fast path answered without searching). Pruned counts decision nodes
	// cut by the lower bound, MemoHits those cut by dominance
	// memoization; together they say where the search's leverage came
	// from.
	Explored int64
	Pruned   int64
	MemoHits int64
	// LowerBound is the root relaxation: max of the speed-scaled area
	// bound and the critical path at full speed. Makespan >= LowerBound
	// always; equality does not imply Proven (nor vice versa).
	LowerBound float64
}

// Solve computes a minimum-makespan schedule of t on m under the global
// memory cap (math.MaxInt64 for none). nodeBudget bounds the search in
// explored decision nodes (0 means DefaultNodeBudget); if the budget runs
// out the best schedule found so far is returned with Proven == false.
// Trees larger than MaxSolveNodes and caps below the provable memory
// floor are errors.
func Solve(t *tree.Tree, m *machine.Model, cap int64, nodeBudget int64) (*Result, error) {
	if t == nil || t.Len() == 0 {
		return &Result{Schedule: &sched.Schedule{P: m.P(), M: hetOrNil(m)}, Proven: true}, nil
	}
	return SolvePre(sched.NewPrecompute(t), m, cap, nodeBudget)
}

// SolvePre is Solve for callers that already hold the tree's
// sched.Precompute (the portfolio racer), so the heuristic seeds reuse
// the shared traversal instead of recomputing it.
func SolvePre(pc *sched.Precompute, m *machine.Model, cap int64, nodeBudget int64) (*Result, error) {
	t := pc.Tree()
	if t == nil || t.Len() == 0 {
		return &Result{Schedule: &sched.Schedule{P: m.P(), M: hetOrNil(m)}, Proven: true}, nil
	}
	if cap < 0 {
		return nil, fmt.Errorf("exact: memory cap must be >= 0, got %d", cap)
	}
	if nodeBudget < 0 {
		return nil, fmt.Errorf("exact: node budget must be >= 0, got %d", nodeBudget)
	}
	if nodeBudget == 0 {
		nodeBudget = DefaultNodeBudget
	}
	opt := traversal.Optimal(t)
	if opt.Peak > cap {
		return nil, fmt.Errorf("%w: cap %d is below the optimal sequential peak %d (tree %s)",
			ErrInfeasible, cap, opt.Peak, t)
	}

	if m.P() == 1 {
		// One processor: the problem is polynomial at any tree size, so
		// answer before the MaxSolveNodes gate. Any topological order is
		// makespan-optimal (the processor is never idle: some task is
		// always ready), and Liu's traversal is peak-optimal among them,
		// so the optimal sequential traversal is the proven answer. On
		// trees with zero-work tasks the simulator's canonical pulse
		// linearization can replay the order to a higher peak than the
		// traversal's step model; if that breaks the cap, fall through to
		// the search, which enumerates event-aligned pulse placements.
		s, err := sched.SequentialScheduleOn(t, m, opt.Order)
		if err != nil {
			return nil, err
		}
		mk, peak, err := sched.Evaluate(t, s)
		if err != nil {
			return nil, err
		}
		if peak <= cap {
			return &Result{Schedule: s, Makespan: mk, Peak: peak, Proven: true,
				LowerBound: sched.MakespanLowerBoundOn(t, m)}, nil
		}
	}

	if t.Len() > MaxSolveNodes {
		return nil, fmt.Errorf("exact: tree has %d nodes, solver limit is %d", t.Len(), MaxSolveNodes)
	}
	seed, seedMk, seedPeak := seedIncumbent(pc, m, cap, opt.Order)

	sv := newSolver(t, m, cap, nodeBudget)
	sv.best = seedMk
	rootLB := sv.lowerBound(0)
	if rootLB < seedMk { // seed not provably optimal: search
		sv.search()
	}
	res := &Result{
		Makespan:   seedMk,
		Peak:       seedPeak,
		Schedule:   seed,
		Proven:     !sv.aborted,
		Explored:   sv.explored,
		Pruned:     sv.pruned,
		MemoHits:   sv.memoHits,
		LowerBound: rootLB,
	}
	if sv.improved {
		res.Makespan = sv.best
		res.Peak = sv.bestPeak
		res.Schedule = sv.bestSchedule(m)
	}
	if res.Schedule == nil {
		// No heuristic seed fit the cap (possible only on trees with
		// zero-work tasks, whose canonical coincident-pulse order can
		// replay above the traversal's peak) and the search found nothing
		// either. Never claim ErrInfeasible here: the search places pulses
		// only at event instants, so exhaustion proves nothing about
		// schedules that spread pulses between events.
		if sv.aborted {
			return nil, fmt.Errorf("exact: node budget %d exhausted without finding a schedule within memory cap %d", nodeBudget, cap)
		}
		return nil, fmt.Errorf("exact: found no event-aligned schedule within memory cap %d (zero-work tasks constrain the pulse order at shared instants)", cap)
	}
	// Safety net: the returned schedule must stand on its own. A
	// discrepancy here is a solver bug, never a caller error.
	mk, peak, err := sched.Evaluate(t, res.Schedule)
	if err != nil {
		return nil, fmt.Errorf("exact: internal error: produced an invalid schedule: %v", err)
	}
	if mk != res.Makespan || peak != res.Peak {
		return nil, fmt.Errorf("exact: internal error: schedule measures (%g, %d) disagree with search (%g, %d)",
			mk, peak, res.Makespan, res.Peak)
	}
	return res, nil
}

// seedIncumbent warms the branch-and-bound with the best cap-feasible
// heuristic schedule, in a fixed candidate order so the anytime result is
// deterministic. The optimal sequential traversal is always feasible
// (its peak is the proven floor), so a seed always exists.
func seedIncumbent(pc *sched.Precompute, m *machine.Model, cap int64, liuOrder []int) (*sched.Schedule, float64, int64) {
	t := pc.Tree()
	var best *sched.Schedule
	bestMk := math.Inf(1)
	var bestPeak int64
	consider := func(s *sched.Schedule, err error) {
		if err != nil || s == nil {
			return
		}
		mk, peak, err := sched.Evaluate(t, s)
		if err != nil || peak > cap || mk >= bestMk {
			return
		}
		best, bestMk, bestPeak = s, mk, peak
	}
	s, err := sched.SequentialScheduleOn(t, m, liuOrder)
	consider(s, err)
	for _, id := range []sched.HeuristicID{
		sched.IDParSubtrees, sched.IDParSubtreesOptim,
		sched.IDParInnerFirst, sched.IDParDeepestFirst, sched.IDSequential,
	} {
		s, err := pc.RunOn(id, m, 0)
		consider(s, err)
	}
	if cap >= pc.MSeq() {
		s, err := pc.MemCappedOn(m, cap)
		consider(s, err)
		s, err = pc.MemCappedBookingOn(m, cap)
		consider(s, err)
	}
	return best, bestMk, bestPeak
}

func hetOrNil(m *machine.Model) *machine.Model {
	if m.IsUniform() {
		return nil
	}
	return m
}
