package exact

import (
	"strings"
	"testing"

	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// FuzzExact drives the solver with trees, machines and caps decoded from
// raw fuzz bytes, asserting the solve-level invariants on every feasible
// instance: the schedule validates, replays to the reported measures,
// respects the cap, and never beats the reported lower bound. The node
// budget is small so the fuzzer also walks the anytime (unproven) path.
func FuzzExact(f *testing.F) {
	f.Add([]byte{3, 1, 1, 2, 1, 0, 1, 2, 0, 1})
	f.Add([]byte{8, 0, 255, 7, 3, 9, 2, 2, 4, 4, 1, 1, 0, 0, 128, 5})
	f.Add([]byte{1, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		next := func() byte {
			if len(in) == 0 {
				return 0
			}
			b := in[0]
			in = in[1:]
			return b
		}
		// 1..10 nodes; parent[i] < i keeps every vector a valid tree.
		n := 1 + int(next())%10
		parent := make([]int, n)
		w := make([]float64, n)
		nn := make([]int64, n)
		ff := make([]int64, n)
		parent[0] = tree.None
		for i := 0; i < n; i++ {
			if i > 0 {
				parent[i] = int(next()) % i
			}
			w[i] = float64(int(next()) % 5) // zero work allowed: pulses
			nn[i] = int64(next() % 4)
			ff[i] = int64(next() % 5)
		}
		tr, err := tree.New(parent, w, nn, ff)
		if err != nil {
			t.Fatalf("enumerated parent vector rejected: %v", err)
		}

		var m *machine.Model
		switch next() % 3 {
		case 0:
			m = machine.Uniform(1 + int(next())%4)
		case 1:
			m, err = machine.New([]float64{1, 0.5})
		default:
			m, err = machine.New([]float64{1, 1, 0.25})
		}
		if err != nil {
			t.Fatal(err)
		}

		// Cap between the provable floor and M_seq + slack; sometimes
		// below the floor to exercise ErrInfeasible.
		floor := traversal.Optimal(tr).Peak
		mseq := traversal.BestPostOrder(tr).Peak
		cap := floor + int64(next())%(mseq-floor+4)
		if next()%8 == 0 {
			cap = floor - 1 - int64(next())%3
		}
		budget := int64(1 + int(next())%64)

		res, err := Solve(tr, m, cap, budget)
		if cap < floor {
			if err == nil {
				t.Fatalf("cap %d below floor %d accepted", cap, floor)
			}
			return
		}
		if err != nil {
			// On pulse trees a tight cap may legitimately defeat every
			// seed and the budgeted search (see the package doc caveat).
			if strings.Contains(err.Error(), "without finding") ||
				strings.Contains(err.Error(), "no event-aligned schedule") {
				return
			}
			t.Fatalf("Solve(cap=%d, budget=%d): %v", cap, budget, err)
		}
		if res.Schedule == nil {
			t.Fatal("nil schedule on nil error")
		}
		if err := res.Schedule.Validate(tr); err != nil {
			t.Fatalf("invalid schedule: %v", err)
		}
		fresh := &sched.Schedule{Start: res.Schedule.Start, Proc: res.Schedule.Proc,
			P: res.Schedule.P, M: res.Schedule.M}
		mk, peak, err := sched.Evaluate(tr, fresh)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		if mk != res.Makespan || peak != res.Peak {
			t.Fatalf("replay (%g, %d) != reported (%g, %d)", mk, peak, res.Makespan, res.Peak)
		}
		if peak > cap {
			t.Fatalf("peak %d exceeds cap %d", peak, cap)
		}
		const eps = 1e-9 // lower bound involves divisions; allow rounding
		if res.Makespan < res.LowerBound-eps {
			t.Fatalf("makespan %g beats lower bound %g", res.Makespan, res.LowerBound)
		}
		if res.Explored > budget+1 {
			t.Fatalf("explored %d nodes with budget %d", res.Explored, budget)
		}
	})
}
