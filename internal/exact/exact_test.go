package exact

import (
	"errors"
	"math"
	"strings"
	"testing"

	"treesched/internal/dataset"
	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// mustTree builds a tree from a parent vector and weights, failing the
// test on a malformed input.
func mustTree(t *testing.T, parent []int, w []float64, n, f []int64) *tree.Tree {
	t.Helper()
	tr, err := tree.New(parent, w, n, f)
	if err != nil {
		t.Fatalf("tree.New: %v", err)
	}
	return tr
}

// checkResult asserts the invariants every successful solve must satisfy:
// the schedule validates, its fresh replay agrees with the reported
// measures, the cap is respected, and the makespan dominates the bound.
func checkResult(t *testing.T, tr *tree.Tree, res *Result, cap int64) {
	t.Helper()
	if res.Schedule == nil {
		t.Fatal("nil schedule on nil error")
	}
	if err := res.Schedule.Validate(tr); err != nil {
		t.Fatalf("schedule does not validate: %v", err)
	}
	// Rebuild without the cached peak so Evaluate replays from scratch.
	fresh := &sched.Schedule{
		Start: res.Schedule.Start, Proc: res.Schedule.Proc,
		P: res.Schedule.P, M: res.Schedule.M,
	}
	mk, peak, err := sched.Evaluate(tr, fresh)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if mk != res.Makespan || peak != res.Peak {
		t.Fatalf("replay measures (%g, %d) != reported (%g, %d)", mk, peak, res.Makespan, res.Peak)
	}
	if peak > cap {
		t.Fatalf("peak %d exceeds cap %d", peak, cap)
	}
	if res.Makespan < res.LowerBound {
		t.Fatalf("makespan %g beats its own lower bound %g", res.Makespan, res.LowerBound)
	}
}

func TestSolveEmptyAndNil(t *testing.T) {
	m := machine.Uniform(2)
	for _, tr := range []*tree.Tree{nil} {
		res, err := Solve(tr, m, math.MaxInt64, 0)
		if err != nil {
			t.Fatalf("Solve(empty): %v", err)
		}
		if !res.Proven || res.Schedule == nil || res.Makespan != 0 {
			t.Fatalf("Solve(empty) = %+v, want trivial proven result", res)
		}
	}
}

func TestSolveRejectsBadArgs(t *testing.T) {
	tr := mustTree(t, []int{tree.None, 0}, []float64{1, 1}, []int64{0, 0}, []int64{1, 1})
	m := machine.Uniform(2)
	if _, err := Solve(tr, m, -1, 0); err == nil {
		t.Error("negative cap: want error")
	}
	if _, err := Solve(tr, m, math.MaxInt64, -5); err == nil {
		t.Error("negative budget: want error")
	}

	// A 65-node chain exceeds the mask limit for p >= 2 ...
	n := MaxSolveNodes + 1
	parent := make([]int, n)
	w := make([]float64, n)
	nn := make([]int64, n)
	ff := make([]int64, n)
	parent[0] = tree.None
	for i := 1; i < n; i++ {
		parent[i] = i - 1
	}
	for i := range w {
		w[i], ff[i] = 1, 1
	}
	big := mustTree(t, parent, w, nn, ff)
	if _, err := Solve(big, m, math.MaxInt64, 0); err == nil ||
		!strings.Contains(err.Error(), "solver limit") {
		t.Errorf("oversized tree at p=2: got %v, want solver-limit error", err)
	}
	// ... but the polynomial p=1 path answers at any size.
	res, err := Solve(big, machine.Uniform(1), math.MaxInt64, 0)
	if err != nil {
		t.Fatalf("oversized tree at p=1: %v", err)
	}
	if !res.Proven {
		t.Error("p=1 result not proven")
	}
}

func TestSolveInfeasibleCap(t *testing.T) {
	tr := mustTree(t, []int{tree.None, 0, 0}, []float64{1, 1, 1},
		[]int64{0, 0, 0}, []int64{1, 2, 3})
	opt := traversal.Optimal(tr)
	_, err := Solve(tr, machine.Uniform(2), opt.Peak-1, 0)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("cap below optimal sequential peak: got %v, want ErrInfeasible", err)
	}
	// At exactly the floor the solve must succeed.
	res, err := Solve(tr, machine.Uniform(2), opt.Peak, 0)
	if err != nil {
		t.Fatalf("cap == optimal sequential peak: %v", err)
	}
	checkResult(t, tr, res, opt.Peak)
}

// TestSolveKnownOptima pins hand-checkable instances.
func TestSolveKnownOptima(t *testing.T) {
	// Two independent unit leaves under a root: p=2 runs the leaves in
	// parallel — makespan 2; p=1 must serialize — makespan 3.
	tr := mustTree(t, []int{tree.None, 0, 0}, []float64{1, 1, 1},
		[]int64{0, 0, 0}, []int64{0, 1, 1})
	res, err := Solve(tr, machine.Uniform(2), math.MaxInt64, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tr, res, math.MaxInt64)
	if !res.Proven || res.Makespan != 2 {
		t.Errorf("p=2: got mk=%g proven=%v, want mk=2 proven", res.Makespan, res.Proven)
	}

	res, err = Solve(tr, machine.Uniform(1), math.MaxInt64, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tr, res, math.MaxInt64)
	if !res.Proven || res.Makespan != 3 {
		t.Errorf("p=1: got mk=%g proven=%v, want mk=3 proven", res.Makespan, res.Proven)
	}

	// Same shape on one fast and one half-speed processor: the optimum
	// runs one leaf on each (finish at max(1, 2) = 2), then the root on
	// the fast processor — makespan 3.
	het, err := machine.ParseSpec("1x1.0+1x0.5")
	if err != nil {
		t.Fatal(err)
	}
	res, err = Solve(tr, het, math.MaxInt64, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tr, res, math.MaxInt64)
	if !res.Proven || res.Makespan != 3 {
		t.Errorf("het: got mk=%g proven=%v, want mk=3 proven", res.Makespan, res.Proven)
	}
	if res.Schedule.M == nil {
		t.Error("heterogeneous solve returned a schedule without its machine model")
	}
}

// TestSolveCapForcesSerialization checks the memory cap changes the
// optimum: two leaves with large outputs cannot be in flight together
// under a tight cap, so the capped optimum is strictly worse.
func TestSolveCapForcesSerialization(t *testing.T) {
	// Each leaf needs a 9-unit execution file while running (released at
	// completion) and leaves a 1-unit output. Running both together costs
	// 20; one after the other peaks at 11.
	tr := mustTree(t, []int{tree.None, 0, 0}, []float64{1, 4, 4},
		[]int64{0, 9, 9}, []int64{1, 1, 1})
	m := machine.Uniform(2)

	free, err := Solve(tr, m, math.MaxInt64, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tr, free, math.MaxInt64)
	if !free.Proven || free.Makespan != 5 { // leaves in parallel, then root
		t.Fatalf("uncapped: got mk=%g proven=%v, want mk=5", free.Makespan, free.Proven)
	}

	// Cap 11 holds one leaf's output plus the other in flight (10 + 10
	// exceeds it), forcing the leaves to serialize: makespan 9.
	capped, err := Solve(tr, m, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tr, capped, 11)
	if !capped.Proven || capped.Makespan != 9 {
		t.Fatalf("capped: got mk=%g proven=%v, want mk=9", capped.Makespan, capped.Proven)
	}
}

// TestSolveBeatsSeedUnderCap reproduces the case where the search must
// improve on every heuristic seed (the capped schedulers overserialize).
func TestSolveBeatsSeedUnderCap(t *testing.T) {
	// A comb: root with three chains of two nodes each.
	parent := []int{tree.None, 0, 0, 0, 1, 2, 3}
	w := []float64{2, 1, 1, 1, 3, 3, 3}
	n := []int64{0, 0, 0, 0, 0, 0, 0}
	f := []int64{1, 2, 2, 2, 3, 3, 3}
	tr := mustTree(t, parent, w, n, f)
	m := machine.Uniform(2)
	mseq := traversal.BestPostOrder(tr).Peak

	res, err := Solve(tr, m, mseq, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tr, res, mseq)
	if !res.Proven {
		t.Fatalf("not proven (explored %d)", res.Explored)
	}
	seq, err := sched.SequentialSchedule(tr, traversal.BestPostOrder(tr).Order)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > seq.Makespan(tr) {
		t.Errorf("capped optimum %g worse than sequential %g", res.Makespan, seq.Makespan(tr))
	}
}

// TestSolveBudgetExhaustion: with a budget of 1 node on a tree whose seed
// is not provably optimal at the root, the solve must come back unproven
// yet still hold a feasible schedule.
func TestSolveBudgetExhaustion(t *testing.T) {
	// A wide flat tree gives the search room so one node cannot close it.
	const leaves = 12
	parent := make([]int, leaves+1)
	w := make([]float64, leaves+1)
	n := make([]int64, leaves+1)
	f := make([]int64, leaves+1)
	parent[0] = tree.None
	w[0], f[0] = 3, 1
	for i := 1; i <= leaves; i++ {
		parent[i] = 0
		w[i] = float64(1 + i%4)
		f[i] = int64(1 + i%3)
	}
	tr := mustTree(t, parent, w, n, f)
	m := machine.Uniform(3)

	res, err := Solve(tr, m, math.MaxInt64, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, tr, res, math.MaxInt64)
	if res.Proven {
		t.Skip("seed proven optimal at the root bound; budget path not exercised on this instance")
	}
	if res.Explored < 1 {
		t.Errorf("explored %d nodes, want >= 1", res.Explored)
	}

	full, err := Solve(tr, m, math.MaxInt64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Proven {
		t.Fatalf("full budget did not prove (explored %d)", full.Explored)
	}
	if full.Makespan > res.Makespan {
		t.Errorf("proven optimum %g worse than budget-1 anytime result %g", full.Makespan, res.Makespan)
	}
}

// TestSolveDeterministic: identical inputs must yield byte-identical
// schedules and identical node counts, run-to-run.
func TestSolveDeterministic(t *testing.T) {
	parent := []int{tree.None, 0, 0, 1, 1, 2, 2}
	w := []float64{2, 1, 3, 2, 1, 1, 2}
	n := []int64{1, 0, 1, 0, 1, 0, 1}
	f := []int64{1, 2, 1, 3, 1, 2, 1}
	tr := mustTree(t, parent, w, n, f)
	m, err := machine.ParseSpec("2x1.0+2x0.5")
	if err != nil {
		t.Fatal(err)
	}
	mseq := traversal.BestPostOrder(tr).Peak

	first, err := Solve(tr, m, 2*mseq, 0)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Solve(tr, m, 2*mseq, 0)
		if err != nil {
			t.Fatal(err)
		}
		if again.Makespan != first.Makespan || again.Peak != first.Peak ||
			again.Explored != first.Explored || again.Proven != first.Proven {
			t.Fatalf("run %d: result %+v differs from first %+v", run, again, first)
		}
		for i := range first.Schedule.Start {
			if again.Schedule.Start[i] != first.Schedule.Start[i] ||
				again.Schedule.Proc[i] != first.Schedule.Proc[i] {
				t.Fatalf("run %d: schedule differs at node %d", run, i)
			}
		}
	}
}

// TestAnchorSequentialDataset is the cross-implementation anchor: at
// p = 1 with cap = M_seq the exact solver must reproduce Liu's optimal
// traversal peak and the sequential makespan bit-exactly on the whole
// Quick dataset collection.
func TestAnchorSequentialDataset(t *testing.T) {
	ins, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	if len(ins) == 0 {
		t.Fatal("empty collection")
	}
	m := machine.Uniform(1)
	for _, in := range ins {
		tr := in.Tree
		opt := traversal.Optimal(tr)
		mseq := traversal.BestPostOrder(tr).Peak

		res, err := Solve(tr, m, mseq, 0)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if !res.Proven {
			t.Errorf("%s: p=1 not proven", in.Name)
		}
		if res.Peak != opt.Peak {
			t.Errorf("%s: exact peak %d != traversal.Optimal peak %d", in.Name, res.Peak, opt.Peak)
		}
		seq, err := sched.SequentialSchedule(tr, opt.Order)
		if err != nil {
			t.Fatalf("%s: SequentialSchedule: %v", in.Name, err)
		}
		if res.Makespan != seq.Makespan(tr) {
			t.Errorf("%s: exact makespan %v != sequential makespan %v (want bit-exact)",
				in.Name, res.Makespan, seq.Makespan(tr))
		}
		if err := res.Schedule.Validate(tr); err != nil {
			t.Errorf("%s: schedule invalid: %v", in.Name, err)
		}
	}
}

// TestSolvePulseTasks exercises zero-duration tasks, whose atomic
// allocate-peak-release replay the solver must account exactly like the
// simulator.
func TestSolvePulseTasks(t *testing.T) {
	// Node 1 is a pulse (w=0) with a real execution file.
	parent := []int{tree.None, 0, 0, 1}
	w := []float64{1, 0, 2, 1}
	n := []int64{0, 3, 0, 1}
	f := []int64{1, 2, 2, 2}
	tr := mustTree(t, parent, w, n, f)
	for _, p := range []int{1, 2, 3} {
		res, err := Solve(tr, machine.Uniform(p), math.MaxInt64, 0)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		checkResult(t, tr, res, math.MaxInt64)
		if !res.Proven {
			t.Errorf("p=%d: not proven", p)
		}
	}
}
