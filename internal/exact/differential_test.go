package exact

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"treesched/internal/machine"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

// treeShapes enumerates every rooted tree shape with n nodes, exactly
// once, as parent vectors with node 0 the root and parent[i] < i. All
// (n-1)! labeled vectors are generated and deduplicated by the canonical
// bracket encoding (children sorted recursively), which is a complete
// isomorphism invariant for rooted trees.
func treeShapes(n int) [][]int {
	seen := map[string]bool{}
	var out [][]int
	parent := make([]int, n)
	parent[0] = tree.None
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			key := canonShape(parent)
			if !seen[key] {
				seen[key] = true
				out = append(out, append([]int(nil), parent...))
			}
			return
		}
		for p := 0; p < i; p++ {
			parent[i] = p
			rec(i + 1)
		}
	}
	rec(1)
	return out
}

func canonShape(parent []int) string {
	n := len(parent)
	children := make([][]int, n)
	for i := 1; i < n; i++ {
		children[parent[i]] = append(children[parent[i]], i)
	}
	var canon func(v int) string
	canon = func(v int) string {
		subs := make([]string, 0, len(children[v]))
		for _, c := range children[v] {
			subs = append(subs, canon(c))
		}
		sort.Strings(subs)
		return "(" + strings.Join(subs, "") + ")"
	}
	return canon(0)
}

// TestTreeShapeCounts pins the enumeration against OEIS A000081 (rooted
// trees with n nodes): any miscount would silently weaken the oracle.
func TestTreeShapeCounts(t *testing.T) {
	want := []int{1, 1, 2, 4, 9, 20, 48, 115} // n = 1..8
	total := 0
	for n := 1; n <= 8; n++ {
		got := len(treeShapes(n))
		if got != want[n-1] {
			t.Errorf("n=%d: %d shapes, want %d", n, got, want[n-1])
		}
		total += got
	}
	if total != 200 {
		t.Errorf("total shapes = %d, want 200", total)
	}
}

// randomWeights draws small-integer weights so that, with the suite's
// power-of-two machine speeds, every event time is exact in float64 and
// all comparisons below can demand exact inequalities. About one node in
// eight becomes a zero-duration pulse to exercise the atomic replay path.
func randomWeights(rng *rand.Rand, n int) (w []float64, nn, ff []int64) {
	w = make([]float64, n)
	nn = make([]int64, n)
	ff = make([]int64, n)
	for i := 0; i < n; i++ {
		if n > 1 && rng.Intn(8) == 0 {
			w[i] = 0
		} else {
			w[i] = float64(1 + rng.Intn(4))
		}
		nn[i] = int64(rng.Intn(3))
		ff[i] = int64(rng.Intn(4))
	}
	return w, nn, ff
}

// oracleHeuristics is every runnable scheduler in the repo: the paper's
// four, the leaf-order ablation, the two sequential baselines and the two
// memory-capped schedulers (run at cap factor 2).
var oracleHeuristics = []sched.HeuristicID{
	sched.IDParSubtrees, sched.IDParSubtreesOptim,
	sched.IDParInnerFirst, sched.IDParDeepestFirst,
	sched.IDParInnerFirstArbitrary,
	sched.IDSequential, sched.IDOptimalSequential,
	sched.IDMemCapped, sched.IDMemCappedBooking,
}

func capFactorFor(id sched.HeuristicID) float64 {
	if id == sched.IDMemCapped || id == sched.IDMemCappedBooking {
		return 2
	}
	return 0
}

// TestDifferentialOracle is the exhaustive ground-truth suite: every tree
// shape up to 8 nodes, several random weight draws per shape, four
// machine models. For each instance it proves the optimum with the exact
// solver and then checks every heuristic against it:
//
//   - the heuristic's makespan never beats the proven optimum,
//   - the heuristic's schedule validates,
//   - the heuristic's inline-tracked peak equals a from-scratch
//     simulator replay of the same schedule,
//   - the exact schedule itself validates and replays to its reported
//     measures.
//
// Weights and speeds are chosen so all times are exact integers in
// float64; every comparison below is exact, no epsilon.
func TestDifferentialOracle(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if testing.Short() {
		seeds = seeds[:2]
	}
	machines := []*machine.Model{
		machine.Uniform(1), machine.Uniform(2), machine.Uniform(4),
		mustSpec(t, "2x1.0+2x0.5"),
	}

	var shapes [][]int
	for n := 1; n <= 8; n++ {
		shapes = append(shapes, treeShapes(n)...)
	}

	instances, solves := 0, 0
	for si, parent := range shapes {
		for _, seed := range seeds {
			rng := rand.New(rand.NewSource(seed*1_000_003 + int64(si)))
			w, nn, ff := randomWeights(rng, len(parent))
			tr, err := tree.New(append([]int(nil), parent...), w, nn, ff)
			if err != nil {
				t.Fatalf("shape %d: tree.New: %v", si, err)
			}
			instances++
			pc := sched.NewPrecompute(tr)
			for _, m := range machines {
				label := fmt.Sprintf("shape %d seed %d machine %s", si, seed, m.Spec())
				res, err := SolvePre(pc, m, math.MaxInt64, 0)
				if err != nil {
					t.Fatalf("%s: Solve: %v", label, err)
				}
				solves++
				if !res.Proven {
					t.Fatalf("%s: not proven (explored %d)", label, res.Explored)
				}
				checkResult(t, tr, res, math.MaxInt64)

				for _, id := range oracleHeuristics {
					s, err := pc.RunOn(id, m, capFactorFor(id))
					if err != nil {
						t.Fatalf("%s: %v: %v", label, id, err)
					}
					if err := s.Validate(tr); err != nil {
						t.Errorf("%s: %v: invalid schedule: %v", label, id, err)
						continue
					}
					inline := sched.PeakMemory(tr, s) // cached when tracked
					fresh := &sched.Schedule{Start: s.Start, Proc: s.Proc, P: s.P, M: s.M}
					hmk, replay, err := sched.Evaluate(tr, fresh)
					if err != nil {
						t.Errorf("%s: %v: Evaluate: %v", label, id, err)
						continue
					}
					if inline != replay {
						t.Errorf("%s: %v: inline peak %d != replay peak %d", label, id, inline, replay)
					}
					if hmk < res.Makespan {
						t.Errorf("%s: %v makespan %g beats the proven optimum %g",
							label, id, hmk, res.Makespan)
					}
				}
			}
		}
	}
	t.Logf("differential oracle: %d instances, %d exact solves, all proven", instances, solves)
}

// TestDifferentialCapped re-proves a slice of the suite under the binding
// cap M_seq at p = 2: the capped optimum must respect the cap and can
// only be worse than the unconstrained one.
func TestDifferentialCapped(t *testing.T) {
	m := machine.Uniform(2)
	var shapes [][]int
	for n := 4; n <= 8; n++ {
		shapes = append(shapes, treeShapes(n)...)
	}
	for si, parent := range shapes {
		rng := rand.New(rand.NewSource(77 + int64(si)))
		w, nn, ff := randomWeights(rng, len(parent))
		tr, err := tree.New(append([]int(nil), parent...), w, nn, ff)
		if err != nil {
			t.Fatal(err)
		}
		pc := sched.NewPrecompute(tr)
		mseq := traversal.BestPostOrder(tr).Peak

		free, err := SolvePre(pc, m, math.MaxInt64, 0)
		if err != nil {
			t.Fatalf("shape %d: uncapped: %v", si, err)
		}
		capped, err := SolvePre(pc, m, mseq, 0)
		if err != nil {
			t.Fatalf("shape %d: capped: %v", si, err)
		}
		if !free.Proven || !capped.Proven {
			t.Fatalf("shape %d: not proven (free=%v capped=%v)", si, free.Proven, capped.Proven)
		}
		checkResult(t, tr, capped, mseq)
		if capped.Makespan < free.Makespan {
			t.Errorf("shape %d: capped optimum %g beats unconstrained optimum %g",
				si, capped.Makespan, free.Makespan)
		}
	}
}

func mustSpec(t *testing.T, spec string) *machine.Model {
	t.Helper()
	m, err := machine.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
