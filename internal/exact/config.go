package exact

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"treesched/internal/machine"
)

// ParseBudget parses a node-budget spec: a positive integer with an
// optional k/M/G suffix (×10³/10⁶/10⁹), e.g. "500k" or "2M". Budgets
// count explored branch-and-bound decision nodes, never wall-clock time,
// so a budget means the same search everywhere.
func ParseBudget(s string) (int64, error) {
	in := s
	mult := int64(1)
	if len(s) > 0 {
		switch s[len(s)-1] {
		case 'k', 'K':
			mult, s = 1_000, s[:len(s)-1]
		case 'm', 'M':
			mult, s = 1_000_000, s[:len(s)-1]
		case 'g', 'G':
			mult, s = 1_000_000_000, s[:len(s)-1]
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v <= 0 || v > math.MaxInt64/mult {
		return 0, fmt.Errorf("exact: invalid node budget %q (want a positive integer with an optional k/M/G suffix, e.g. \"500k\")", in)
	}
	return v * mult, nil
}

// CapSpec is a parsed memory-cap expression. Exactly one of the three
// forms is set: Unlimited, an absolute byte count Abs, or a Factor to be
// multiplied by the tree's M_seq at resolve time.
type CapSpec struct {
	Unlimited bool
	Abs       int64
	Factor    float64
}

// ParseCap parses a memory-cap spec: "none" (or the empty string) for no
// cap, a positive integer for an absolute cap ("1048576"), or a positive
// factor with an 'x' suffix for a multiple of M_seq ("1.5x"). Factors
// below 1 are allowed — Liu's optimal traversal can beat every postorder,
// so caps below M_seq may still be feasible.
func ParseCap(s string) (CapSpec, error) {
	switch s {
	case "", "none", "unlimited":
		return CapSpec{Unlimited: true}, nil
	}
	if strings.HasSuffix(s, "x") {
		f, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil || !(f > 0) || math.IsInf(f, 0) {
			return CapSpec{}, capErr(s)
		}
		return CapSpec{Factor: f}, nil
	}
	abs, err := strconv.ParseInt(s, 10, 64)
	if err != nil || abs <= 0 {
		return CapSpec{}, capErr(s)
	}
	return CapSpec{Abs: abs}, nil
}

func capErr(s string) error {
	return fmt.Errorf("exact: invalid memory cap %q (want \"none\", an absolute byte count like \"1048576\", or a factor of M_seq like \"1.5x\")", s)
}

// Resolve turns the spec into an absolute cap for a tree whose best
// sequential peak is mseq. Unlimited resolves to math.MaxInt64.
func (c CapSpec) Resolve(mseq int64) int64 {
	switch {
	case c.Unlimited:
		return math.MaxInt64
	case c.Abs > 0:
		return c.Abs
	}
	return CapFromFactor(c.Factor, mseq)
}

// CapFromFactor converts a cap expressed as a multiple of M_seq into an
// absolute cap, rounding up so the cap never undershoots factor × M_seq
// through float truncation. Non-positive factors (an unset option) and
// products beyond int64 range mean no cap (math.MaxInt64).
func CapFromFactor(factor float64, mseq int64) int64 {
	if !(factor > 0) { // also catches NaN
		return math.MaxInt64
	}
	prod := math.Ceil(factor * float64(mseq))
	if prod >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(prod)
}

// Config is a fully parsed exact-solver invocation: the machine, the cap
// and the node budget.
type Config struct {
	Machine *machine.Model
	Cap     CapSpec
	Budget  int64
}

// ParseConfig parses the three textual knobs of an exact solve: a
// machine spec ("2", "2x1.0+2x0.5"), a cap spec (see ParseCap) and a
// budget spec (see ParseBudget; empty means DefaultNodeBudget).
func ParseConfig(machineSpec, capSpec, budgetSpec string) (Config, error) {
	if machineSpec == "" {
		return Config{}, fmt.Errorf("exact: machine spec required (a processor count like \"2\" or speed groups like \"2x1.0+2x0.5\")")
	}
	m, err := machine.ParseSpec(machineSpec)
	if err != nil {
		return Config{}, err
	}
	cap, err := ParseCap(capSpec)
	if err != nil {
		return Config{}, err
	}
	budget := DefaultNodeBudget
	if budgetSpec != "" {
		budget, err = ParseBudget(budgetSpec)
		if err != nil {
			return Config{}, err
		}
	}
	return Config{Machine: m, Cap: cap, Budget: budget}, nil
}
