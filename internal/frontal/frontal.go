// Package frontal is a numeric multifrontal Cholesky factorization engine
// operating on the elimination trees of package spm. It exists to validate
// the paper's abstract cost model end to end: executing a sequential tree
// traversal with real frontal matrices and extend-add of contribution
// blocks allocates exactly the memory the model predicts —
//
//	front of column j:        µ_j² entries  (= n_j + f_j with η = 1)
//	contribution block of j:  (µ_j−1)² entries  (= f_j)
//
// so the engine's measured peak-live-entry count equals
// traversal.PeakMemory on the η=1 assembly tree, entry for entry, and the
// computed factor satisfies L·Lᵀ = A.
package frontal

import (
	"fmt"
	"math"

	"treesched/internal/spm"
)

// Factorizer carries the symbolic analysis of one SPD matrix and performs
// numeric multifrontal factorizations under arbitrary traversals.
type Factorizer struct {
	n        int
	pattern  *spm.Pattern
	perm     spm.Perm
	inv      []int
	parent   []int     // elimination tree (positions)
	children [][]int   // children lists of the elimination tree
	structs  [][]int32 // below-diagonal row structure per column
	a        *Dense    // the permuted input matrix
}

// NewFactorizer runs the symbolic analysis of a on pattern p under the
// ordering perm. a must be symmetric positive definite with the sparsity
// pattern of p (indices in original, unpermuted numbering).
func NewFactorizer(p *spm.Pattern, perm spm.Perm, a *Dense) (*Factorizer, error) {
	if a.N() != p.Len() {
		return nil, fmt.Errorf("frontal: matrix is %d×%d but pattern has %d vertices", a.N(), a.N(), p.Len())
	}
	if !perm.Valid(p.Len()) {
		return nil, fmt.Errorf("frontal: invalid permutation")
	}
	parent := spm.EliminationTree(p, perm)
	structs := spm.ColStructs(p, perm, parent)
	// Permute the matrix once: pa[i][j] = a[perm[i]][perm[j]].
	pa := NewDense(p.Len())
	for i := 0; i < p.Len(); i++ {
		for j := 0; j < p.Len(); j++ {
			pa.Set(i, j, a.At(perm[i], perm[j]))
		}
	}
	children := make([][]int, p.Len())
	for c, pa := range parent {
		if pa != -1 {
			children[pa] = append(children[pa], c)
		}
	}
	return &Factorizer{
		n: p.Len(), pattern: p, perm: perm, inv: perm.Inverse(),
		parent: parent, children: children, structs: structs, a: pa,
	}, nil
}

// Parent returns the elimination tree (positions; -1 marks roots).
func (f *Factorizer) Parent() []int { return f.parent }

// Mu returns µ_j = 1 + |struct(j)| for every column position.
func (f *Factorizer) Mu() []int64 {
	mu := make([]int64, f.n)
	for j := range mu {
		mu[j] = int64(len(f.structs[j])) + 1
	}
	return mu
}

// front is a live frontal or contribution block: a dense symmetric matrix
// over an index set of column positions.
type front struct {
	rows []int32   // sorted positions
	data []float64 // len(rows)² entries, row-major
}

func (fr *front) at(i, j int) float64     { return fr.data[i*len(fr.rows)+j] }
func (fr *front) add(i, j int, v float64) { fr.data[i*len(fr.rows)+j] += v }

// Result is the outcome of a numeric factorization.
type Result struct {
	L *Dense // lower-triangular factor (permuted numbering)
	// PeakEntries is the maximum number of simultaneously live matrix
	// entries (fronts plus pending contribution blocks).
	PeakEntries int64
}

// Factorize runs the numeric multifrontal factorization following the
// given traversal order of column positions (a topological order of the
// elimination tree, children before parents). It returns the factor and
// the measured peak memory in entries.
func (f *Factorizer) Factorize(order []int) (*Result, error) {
	if len(order) != f.n {
		return nil, fmt.Errorf("frontal: order covers %d of %d columns", len(order), f.n)
	}
	l := NewDense(f.n)
	pending := make([]*front, f.n) // contribution block per eliminated column
	done := make([]bool, f.n)
	var live, peak int64

	for _, j := range order {
		if j < 0 || j >= f.n || done[j] {
			return nil, fmt.Errorf("frontal: bad or repeated column %d", j)
		}
		// Children must be eliminated (their contribution blocks pending).
		children := f.children[j]
		for _, c := range children {
			if !done[c] {
				return nil, fmt.Errorf("frontal: column %d eliminated before child %d", j, c)
			}
		}
		// Assemble the front: index set {j} ∪ struct(j).
		rows := make([]int32, 0, len(f.structs[j])+1)
		rows = append(rows, int32(j))
		rows = append(rows, f.structs[j]...)
		fr := &front{rows: rows, data: make([]float64, len(rows)*len(rows))}
		live += int64(len(rows) * len(rows)) // allocate front: µ² = n_j + f_j
		if live > peak {
			peak = live
		}
		// Matrix entries of column/row j.
		for ri, r := range rows {
			v := f.a.At(int(r), j)
			fr.add(ri, 0, v)
			if ri != 0 {
				fr.add(0, ri, v)
			}
		}
		// Extend-add the children's contribution blocks.
		for _, c := range children {
			cb := pending[c]
			pending[c] = nil
			if cb == nil {
				continue
			}
			idx, err := mapRows(cb.rows, rows)
			if err != nil {
				return nil, fmt.Errorf("frontal: column %d child %d: %w", j, c, err)
			}
			for ri := range cb.rows {
				for ci := range cb.rows {
					fr.add(idx[ri], idx[ci], cb.at(ri, ci))
				}
			}
		}
		// Eliminate the first row/column of the front.
		d := fr.at(0, 0)
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("frontal: non-positive pivot %g at column %d (matrix not SPD?)", d, j)
		}
		ld := math.Sqrt(d)
		l.Set(j, j, ld)
		m := len(rows)
		col := make([]float64, m-1)
		for ri := 1; ri < m; ri++ {
			col[ri-1] = fr.at(ri, 0) / ld
			l.Set(int(rows[ri]), j, col[ri-1])
		}
		// Contribution block: C -= l·lᵀ over rows[1:].
		cb := &front{rows: rows[1:], data: make([]float64, (m-1)*(m-1))}
		for ri := 1; ri < m; ri++ {
			for ci := 1; ci < m; ci++ {
				cb.data[(ri-1)*(m-1)+(ci-1)] = fr.at(ri, ci) - col[ri-1]*col[ci-1]
			}
		}
		pending[j] = cb
		done[j] = true
		// The model frees the children's files and the execution part of
		// the front at completion; the contribution block (f_j entries)
		// stays live for the parent. live -= n_j + Σ_c f_c where
		// n_j + f_j = µ² and f_j = (µ-1)².
		live -= int64(m*m) - int64((m-1)*(m-1)) // n_j
		for _, c := range children {
			s := int64(len(f.structs[c]))
			live -= s * s // f_c
		}
	}
	// Roots leave their (possibly empty) contribution blocks live, exactly
	// like the model's root output files.
	return &Result{L: l, PeakEntries: peak}, nil
}

// mapRows maps each entry of sub (sorted) to its index in super (sorted),
// failing if sub is not a subset.
func mapRows(sub, super []int32) ([]int, error) {
	idx := make([]int, len(sub))
	k := 0
	for i, r := range sub {
		for k < len(super) && super[k] < r {
			k++
		}
		if k == len(super) || super[k] != r {
			return nil, fmt.Errorf("row %d not in parent front", r)
		}
		idx[i] = k
	}
	return idx, nil
}

// Verify checks ‖P·A·Pᵀ − L·Lᵀ‖_max ≤ tol for the factor in permuted
// numbering.
func (f *Factorizer) Verify(l *Dense, tol float64) error {
	for i := 0; i < f.n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if d := math.Abs(s - f.a.At(i, j)); d > tol {
				return fmt.Errorf("frontal: residual %g at (%d,%d) exceeds %g", d, i, j, tol)
			}
		}
	}
	return nil
}
