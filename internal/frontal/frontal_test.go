package frontal

import (
	"math/rand"
	"testing"

	"treesched/internal/spm"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

func connectedPattern(rng *rand.Rand, trial int) *spm.Pattern {
	switch trial % 4 {
	case 0:
		return spm.Grid2D(3+rng.Intn(5), 3+rng.Intn(5))
	case 1:
		return spm.RandomSym(rng, 10+rng.Intn(50), 2.5)
	case 2:
		return spm.PowerLaw(rng, 10+rng.Intn(50), 2)
	default:
		return spm.Band(10+rng.Intn(50), 2)
	}
}

func ordering(p *spm.Pattern, trial int) spm.Perm {
	switch trial % 3 {
	case 0:
		return spm.NaturalOrder(p.Len())
	case 1:
		return spm.NestedDissection(p)
	default:
		return spm.MinimumDegree(p)
	}
}

// TestFactorizeMatchesDenseCholesky: the multifrontal factor equals the
// reference dense factorization of the permuted matrix.
func TestFactorizeMatchesDenseCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 30; trial++ {
		p := connectedPattern(rng, trial)
		perm := ordering(p, trial)
		a := SPDFromPattern(rng, p)
		f, err := NewFactorizer(p, perm, a)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Factorize(traversal.BestPostOrder(mustTree(t, p, perm)).Order)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := f.Verify(res.L, 1e-8); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Cross-check against the dense reference on the permuted matrix.
		pa := NewDense(p.Len())
		for i := 0; i < p.Len(); i++ {
			for j := 0; j < p.Len(); j++ {
				pa.Set(i, j, a.At(perm[i], perm[j]))
			}
		}
		ref, err := Cholesky(pa)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(res.L, ref); d > 1e-8 {
			t.Fatalf("trial %d: factor differs from dense reference by %g", trial, d)
		}
	}
}

// mustTree builds the η=1 assembly tree whose node ids coincide with
// eliminated positions (single root; connected patterns only).
func mustTree(t *testing.T, p *spm.Pattern, perm spm.Perm) *tree.Tree {
	t.Helper()
	tr, err := spm.AssemblyTree(p, perm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != p.Len() {
		t.Fatalf("assembly tree has %d nodes for %d columns (disconnected pattern?)", tr.Len(), p.Len())
	}
	return tr
}

// TestPeakEntriesMatchesModel is the headline validation: for any
// traversal, the engine's measured peak live entries equals the abstract
// model's peak memory on the η=1 assembly tree, entry for entry.
func TestPeakEntriesMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 40; trial++ {
		p := connectedPattern(rng, trial)
		perm := ordering(p, trial)
		a := SPDFromPattern(rng, p)
		f, err := NewFactorizer(p, perm, a)
		if err != nil {
			t.Fatal(err)
		}
		tr := mustTree(t, p, perm)
		orders := [][]int{
			traversal.BestPostOrder(tr).Order,
			traversal.Optimal(tr).Order,
			tr.TopOrder(),
		}
		for oi, order := range orders {
			want, err := traversal.PeakMemory(tr, order)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Factorize(order)
			if err != nil {
				t.Fatalf("trial %d order %d: %v", trial, oi, err)
			}
			if res.PeakEntries != want {
				t.Fatalf("trial %d order %d: engine peak %d entries, model predicts %d",
					trial, oi, res.PeakEntries, want)
			}
		}
	}
}

// TestMemoryAwareOrderReducesEnginePeak: the motivation of the paper,
// measured on real fronts — the optimal traversal's peak is never above an
// arbitrary topological order's, and is strictly below somewhere.
func TestMemoryAwareOrderReducesEnginePeak(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	strictly := false
	for trial := 0; trial < 25; trial++ {
		p := connectedPattern(rng, trial)
		perm := ordering(p, trial)
		a := SPDFromPattern(rng, p)
		f, err := NewFactorizer(p, perm, a)
		if err != nil {
			t.Fatal(err)
		}
		tr := mustTree(t, p, perm)
		opt, err := f.Factorize(traversal.Optimal(tr).Order)
		if err != nil {
			t.Fatal(err)
		}
		top, err := f.Factorize(tr.TopOrder())
		if err != nil {
			t.Fatal(err)
		}
		if opt.PeakEntries > top.PeakEntries {
			t.Fatalf("trial %d: optimal order uses more entries (%d) than arbitrary (%d)",
				trial, opt.PeakEntries, top.PeakEntries)
		}
		if opt.PeakEntries < top.PeakEntries {
			strictly = true
		}
	}
	if !strictly {
		t.Fatal("optimal order never strictly better than arbitrary topological order")
	}
}

func TestFactorizeRejectsBadOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	p := spm.Grid2D(3, 3)
	perm := spm.NaturalOrder(p.Len())
	f, err := NewFactorizer(p, perm, SPDFromPattern(rng, p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Factorize([]int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	bad := make([]int, p.Len())
	for i := range bad {
		bad[i] = p.Len() - 1 - i // roots first: violates children-first
	}
	if _, err := f.Factorize(bad); err == nil {
		t.Error("root-first order accepted")
	}
	dup := make([]int, p.Len())
	if _, err := f.Factorize(dup); err == nil {
		t.Error("duplicate order accepted")
	}
}

func TestNewFactorizerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	p := spm.Grid2D(3, 3)
	if _, err := NewFactorizer(p, spm.Perm{0, 1}, SPDFromPattern(rng, p)); err == nil {
		t.Error("invalid perm accepted")
	}
	if _, err := NewFactorizer(p, spm.NaturalOrder(9), NewDense(4)); err == nil {
		t.Error("mismatched matrix accepted")
	}
}

func TestFactorizeDetectsNonSPD(t *testing.T) {
	p, err := spm.NewPattern(2, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	a := NewDense(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	a.Set(0, 1, 5) // |off-diagonal| > diagonal: indefinite
	a.Set(1, 0, 5)
	f, err := NewFactorizer(p, spm.NaturalOrder(2), a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Factorize([]int{0, 1}); err == nil {
		t.Error("indefinite matrix factorized without error")
	}
}

func TestDenseCholeskyReference(t *testing.T) {
	// 2x2 handcheck: A = [[4,2],[2,5]] -> L = [[2,0],[1,2]].
	a := NewDense(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 5)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if l.At(0, 0) != 2 || l.At(1, 0) != 1 || l.At(1, 1) != 2 {
		t.Fatalf("L = [[%g,0],[%g,%g]]", l.At(0, 0), l.At(1, 0), l.At(1, 1))
	}
	if _, err := Cholesky(NewDense(2)); err == nil {
		t.Error("singular matrix factorized")
	}
}

func TestMuMatchesColCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	p := spm.Grid2D(5, 5)
	perm := spm.NestedDissection(p)
	f, err := NewFactorizer(p, perm, SPDFromPattern(rng, p))
	if err != nil {
		t.Fatal(err)
	}
	counts := spm.ColCounts(p, perm, f.Parent())
	for j, mu := range f.Mu() {
		if mu != counts[j] {
			t.Fatalf("µ[%d] = %d, colcount %d", j, mu, counts[j])
		}
	}
}
