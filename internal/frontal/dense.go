package frontal

import (
	"fmt"
	"math"
	"math/rand"

	"treesched/internal/spm"
)

// Dense is a simple square dense matrix, row-major. It backs the numeric
// tests and the permuted input of the multifrontal engine.
type Dense struct {
	n    int
	data []float64
}

// NewDense returns a zero n×n matrix.
func NewDense(n int) *Dense { return &Dense{n: n, data: make([]float64, n*n)} }

// N returns the dimension.
func (d *Dense) N() int { return d.n }

// At returns the (i,j) entry.
func (d *Dense) At(i, j int) float64 { return d.data[i*d.n+j] }

// Set assigns the (i,j) entry.
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.n+j] = v }

// SPDFromPattern builds a symmetric positive-definite matrix with the
// sparsity pattern of p: off-diagonal entries are drawn from [-1,-0.1]
// (symmetric), and each diagonal entry exceeds the row's absolute sum
// (strict diagonal dominance ⇒ SPD).
func SPDFromPattern(rng *rand.Rand, p *spm.Pattern) *Dense {
	n := p.Len()
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for _, u := range p.Adj(i) {
			j := int(u)
			if j < i {
				continue
			}
			v := -0.1 - 0.9*rng.Float64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if j != i {
				s += math.Abs(a.At(i, j))
			}
		}
		a.Set(i, i, s+1+rng.Float64())
	}
	return a
}

// Cholesky computes the reference dense factorization A = L·Lᵀ, used to
// cross-check the multifrontal engine. It fails on non-SPD input.
func Cholesky(a *Dense) (*Dense, error) {
	n := a.N()
	l := NewDense(n)
	for j := 0; j < n; j++ {
		var s float64
		for k := 0; k < j; k++ {
			s += l.At(j, k) * l.At(j, k)
		}
		d := a.At(j, j) - s
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("frontal: dense pivot %g at %d", d, j)
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s = 0
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/l.At(j, j))
		}
	}
	return l, nil
}

// MaxDiff returns the largest absolute entrywise difference of the lower
// triangles of a and b.
func MaxDiff(a, b *Dense) float64 {
	var m float64
	for i := 0; i < a.N(); i++ {
		for j := 0; j <= i; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > m {
				m = d
			}
		}
	}
	return m
}
