package frontal

import (
	"math/rand"
	"testing"

	"treesched/internal/sched"
	"treesched/internal/spm"
)

// TestScheduleReplayMatchesSimulator is E15's parallel half: replaying any
// heuristic schedule with real fronts measures exactly the peak memory the
// abstract discrete-event simulator predicts, and the factor stays correct.
func TestScheduleReplayMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 25; trial++ {
		p := connectedPattern(rng, trial)
		perm := ordering(p, trial)
		a := SPDFromPattern(rng, p)
		f, err := NewFactorizer(p, perm, a)
		if err != nil {
			t.Fatal(err)
		}
		tr := mustTree(t, p, perm)
		w := make([]float64, tr.Len())
		for v := range w {
			w[v] = tr.W(v)
		}
		for _, h := range sched.Heuristics() {
			for _, procs := range []int{2, 4} {
				s, err := h.Run(tr, procs)
				if err != nil {
					t.Fatal(err)
				}
				res, err := f.Replay(ScheduleReplay{Start: s.Start, W: w})
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, h.Name, err)
				}
				if want := sched.PeakMemory(tr, s); res.PeakEntries != want {
					t.Fatalf("trial %d %s p=%d: engine peak %d, simulator %d",
						trial, h.Name, procs, res.PeakEntries, want)
				}
				if err := f.Verify(res.L, 1e-8); err != nil {
					t.Fatalf("trial %d %s: %v", trial, h.Name, err)
				}
			}
		}
	}
}

func TestReplayValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	p := spm.Grid2D(3, 3)
	f, err := NewFactorizer(p, spm.NaturalOrder(p.Len()), SPDFromPattern(rng, p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Replay(ScheduleReplay{Start: []float64{0}, W: []float64{1}}); err == nil {
		t.Error("short timeline accepted")
	}
	start := make([]float64, p.Len())
	w := make([]float64, p.Len())
	if _, err := f.Replay(ScheduleReplay{Start: start, W: w}); err == nil {
		t.Error("zero durations accepted")
	}
}

// TestReplaySequentialDegenerate: a one-processor timeline in postorder
// must reproduce the sequential Factorize peak.
func TestReplaySequentialDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	p := spm.Grid2D(5, 5)
	perm := spm.NestedDissection(p)
	f, err := NewFactorizer(p, perm, SPDFromPattern(rng, p))
	if err != nil {
		t.Fatal(err)
	}
	tr := mustTree(t, p, perm)
	s, err := sched.ParInnerFirst(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, tr.Len())
	order := make([]int, 0, tr.Len())
	for v := range w {
		w[v] = tr.W(v)
	}
	// Completion order of the sequential schedule.
	type se struct {
		v int
		t float64
	}
	evs := make([]se, tr.Len())
	for v := 0; v < tr.Len(); v++ {
		evs[v] = se{v, s.Start[v]}
	}
	for i := range evs {
		for j := i + 1; j < len(evs); j++ {
			if evs[j].t < evs[i].t {
				evs[i], evs[j] = evs[j], evs[i]
			}
		}
	}
	for _, e := range evs {
		order = append(order, e.v)
	}
	seq, err := f.Factorize(order)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Replay(ScheduleReplay{Start: s.Start, W: w})
	if err != nil {
		t.Fatal(err)
	}
	if seq.PeakEntries != rep.PeakEntries {
		t.Fatalf("sequential replay peak %d != Factorize peak %d", rep.PeakEntries, seq.PeakEntries)
	}
}
