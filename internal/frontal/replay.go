package frontal

import (
	"fmt"
	"sort"
)

// ScheduleReplay is the parallel counterpart of Factorize: it executes the
// numeric factorization following a parallel schedule's timeline (tasks
// identified by column position, starts and durations given by the
// caller), accounting memory with the same event semantics as the abstract
// simulator — releases apply before allocations at equal timestamps. The
// numerics are independent of interleaving (extend-add is commutative), so
// the factor equals the sequential one; the point of the replay is the
// memory trace.
type ScheduleReplay struct {
	Start []float64 // start time per column position
	W     []float64 // duration per column position
}

// Replay runs the factorization under the given timeline and returns the
// factor and the peak number of simultaneously live entries: every running
// task holds its full front (µ² entries), every finished task its
// contribution block ((µ−1)² entries) until the parent finishes.
func (f *Factorizer) Replay(r ScheduleReplay) (*Result, error) {
	if len(r.Start) != f.n || len(r.W) != f.n {
		return nil, fmt.Errorf("frontal: replay timeline covers %d/%d starts, %d/%d durations",
			len(r.Start), f.n, len(r.W), f.n)
	}
	for j, w := range r.W {
		if w <= 0 {
			return nil, fmt.Errorf("frontal: task %d has non-positive duration %g", j, w)
		}
	}
	// Completion order defines the numeric elimination order; it must be
	// topological, which Factorize verifies as it goes.
	type ev struct {
		at   float64
		kind int8 // 0 = completion (release), 1 = start (allocate)
		node int
	}
	events := make([]ev, 0, 2*f.n)
	for j := 0; j < f.n; j++ {
		events = append(events, ev{r.Start[j], 1, j}, ev{r.Start[j] + r.W[j], 0, j})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		if events[a].kind != events[b].kind {
			return events[a].kind < events[b].kind
		}
		return events[a].node < events[b].node
	})
	// The numeric elimination happens at completion events, in order; the
	// memory accounting follows the event stream.
	order := make([]int, 0, f.n)
	for _, e := range events {
		if e.kind == 0 {
			order = append(order, e.node)
		}
	}
	res, err := f.Factorize(order)
	if err != nil {
		return nil, err
	}
	// Recompute the peak with the parallel timeline: µ per position gives
	// both block sizes.
	mu := f.Mu()
	var live, peak int64
	for _, e := range events {
		j := e.node
		frontSz := mu[j] * mu[j]
		cbSz := (mu[j] - 1) * (mu[j] - 1)
		if e.kind == 1 {
			live += frontSz
			if live > peak {
				peak = live
			}
			continue
		}
		// Completion: the front shrinks to its contribution block and the
		// children's contribution blocks are consumed.
		live -= frontSz - cbSz
		for _, c := range f.children[j] {
			live -= (mu[c] - 1) * (mu[c] - 1)
		}
	}
	res.PeakEntries = peak
	return res, nil
}
