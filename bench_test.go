package treesched_test

// One benchmark per paper artifact (see DESIGN.md §5):
//
//	BenchmarkTable1        E1: the full heuristic comparison
//	BenchmarkFig6/7/8      E2-E4: the normalized point clouds and crosses
//	BenchmarkFig1Gadget    E5: Theorem 1 yes-instance schedule
//	BenchmarkFig2Inapprox  E6: Theorem 2 optimal memory n+δ
//	BenchmarkFig3Fork      E7: ParSubtrees makespan worst case
//	BenchmarkFig4JoinChain E8: ParInnerFirst memory worst case
//	BenchmarkFig5Spider    E9: ParDeepestFirst memory worst case
//	BenchmarkAblationLeafOrder  E12
//	BenchmarkMemCap        E13
//
// plus micro-benchmarks of the core algorithms. Benchmarks report the
// reproduced quantities via b.ReportMetric, so `go test -bench .` doubles
// as the reproduction harness at quick scale (cmd/experiments runs the
// full scale).

import (
	"math/rand"
	"sync"
	"testing"

	"treesched"
	"treesched/internal/dataset"
	"treesched/internal/pebble"
	"treesched/internal/report"
	"treesched/internal/sched"
	"treesched/internal/traversal"
	"treesched/internal/tree"
)

var (
	scenarioOnce sync.Once
	scenarioData []report.Scenario
)

// scenarios builds the quick-scale evaluation once and caches it.
func scenarios(b *testing.B) []report.Scenario {
	b.Helper()
	scenarioOnce.Do(func() {
		insts, err := dataset.Collection(dataset.Quick, 42)
		if err != nil {
			panic(err)
		}
		scenarioData, err = report.Run(insts, dataset.ProcessorCounts)
		if err != nil {
			panic(err)
		}
	})
	return scenarioData
}

// BenchmarkTable1 regenerates Table 1 (E1) and reports its headline
// numbers: the share of scenarios where ParSubtrees has the best memory and
// where ParDeepestFirst has the best makespan.
func BenchmarkTable1(b *testing.B) {
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		b.Fatal(err)
	}
	var rows []report.Table1Row
	for i := 0; i < b.N; i++ {
		scs, err := report.Run(insts, dataset.ProcessorCounts)
		if err != nil {
			b.Fatal(err)
		}
		rows = report.Table1(scs)
	}
	for _, r := range rows {
		switch r.Heuristic {
		case "ParSubtrees":
			b.ReportMetric(r.BestMem, "ParSubtrees-best-mem-%")
			b.ReportMetric(r.AvgDevBestMs, "ParSubtrees-ms-dev-%")
		case "ParDeepestFirst":
			b.ReportMetric(r.BestMs, "ParDeepestFirst-best-ms-%")
			b.ReportMetric(r.AvgDevSeqMem, "ParDeepestFirst-mem-dev-%")
		}
	}
}

// BenchmarkFig6 regenerates the lower-bound comparison (E2) and reports the
// mean normalized makespan and memory of the two extreme heuristics.
func BenchmarkFig6(b *testing.B) {
	scs := scenarios(b)
	var crosses map[string]struct{ X, Y float64 }
	for i := 0; i < b.N; i++ {
		cr := report.Crosses(report.Fig6(scs))
		crosses = map[string]struct{ X, Y float64 }{}
		for k, c := range cr {
			crosses[k] = struct{ X, Y float64 }{c.XMean, c.YMean}
		}
	}
	b.ReportMetric(crosses["ParSubtrees"].X, "ParSubtrees-ms/LB")
	b.ReportMetric(crosses["ParSubtrees"].Y, "ParSubtrees-mem/Mseq")
	b.ReportMetric(crosses["ParDeepestFirst"].X, "ParDeepestFirst-ms/LB")
	b.ReportMetric(crosses["ParDeepestFirst"].Y, "ParDeepestFirst-mem/Mseq")
}

// BenchmarkFig7 regenerates the ParSubtrees-relative comparison (E3).
func BenchmarkFig7(b *testing.B) {
	scs := scenarios(b)
	var pts []report.FigPoint
	for i := 0; i < b.N; i++ {
		pts = report.Fig7(scs)
	}
	cr := report.Crosses(pts)
	b.ReportMetric(cr["ParDeepestFirst"].XMean, "ParDeepestFirst-ms-ratio")
	b.ReportMetric(cr["ParDeepestFirst"].YMean, "ParDeepestFirst-mem-ratio")
}

// BenchmarkFig8 regenerates the ParInnerFirst-relative comparison (E4).
func BenchmarkFig8(b *testing.B) {
	scs := scenarios(b)
	var pts []report.FigPoint
	for i := 0; i < b.N; i++ {
		pts = report.Fig8(scs)
	}
	cr := report.Crosses(pts)
	b.ReportMetric(cr["ParSubtrees"].XMean, "ParSubtrees-ms-ratio")
	b.ReportMetric(cr["ParSubtrees"].YMean, "ParSubtrees-mem-ratio")
}

// BenchmarkFig1Gadget builds the Theorem 1 gadget and verifies its schedule
// meets both decision bounds (E5).
func BenchmarkFig1Gadget(b *testing.B) {
	a := []int{5, 5, 6, 5, 5, 6, 5, 5, 6} // m=3, B=16; a_i ∈ (B/4, B/2)
	part := pebble.SolveThreePartition(a, 16)
	if part == nil {
		b.Fatal("no partition")
	}
	var memRatio float64
	for i := 0; i < b.N; i++ {
		tp, err := pebble.NewThreePartition(a, 16)
		if err != nil {
			b.Fatal(err)
		}
		s, err := tp.YesSchedule(part)
		if err != nil {
			b.Fatal(err)
		}
		memRatio = float64(sched.PeakMemory(tp.Tree, s)) / float64(tp.MemoryBound)
		if s.Makespan(tp.Tree) > tp.MakespanBound {
			b.Fatal("makespan bound violated")
		}
	}
	b.ReportMetric(memRatio, "mem/bound")
}

// BenchmarkFig2Inapprox builds the Theorem 2 gadget and verifies Liu's
// algorithm reaches the proven optimal memory n+δ (E6).
func BenchmarkFig2Inapprox(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		g, err := pebble.NewInapprox(4, 12)
		if err != nil {
			b.Fatal(err)
		}
		opt := traversal.Optimal(g.Tree)
		ratio = float64(opt.Peak) / float64(g.OptimalPeakMemory())
	}
	b.ReportMetric(ratio, "mem/optimal")
}

// BenchmarkFig3Fork measures the ParSubtrees worst-case makespan ratio on
// the fork tree (E7): it approaches p.
func BenchmarkFig3Fork(b *testing.B) {
	const p, k = 8, 50
	t := pebble.ForkTree(p, k)
	var ratio float64
	for i := 0; i < b.N; i++ {
		s, err := sched.ParSubtrees(t, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = s.Makespan(t) / float64(k+1)
	}
	b.ReportMetric(ratio, "ms/optimal")
}

// BenchmarkFig4JoinChain measures ParInnerFirst's memory ratio on the
// join-chain tree (E8): it grows linearly in k while M_seq stays p+1.
func BenchmarkFig4JoinChain(b *testing.B) {
	const p, k = 4, 100
	t := pebble.JoinChainTree(p, k)
	var ratio float64
	for i := 0; i < b.N; i++ {
		s, err := sched.ParInnerFirst(t, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(sched.PeakMemory(t, s)) / float64(p+1)
	}
	b.ReportMetric(ratio, "mem/Mseq")
}

// BenchmarkFig5Spider measures ParDeepestFirst's memory ratio on the spider
// tree (E9): roughly one file per chain against M_seq = 3.
func BenchmarkFig5Spider(b *testing.B) {
	const chains = 100
	t := pebble.SpiderTree(chains, 4)
	var ratio float64
	for i := 0; i < b.N; i++ {
		s, err := sched.ParDeepestFirst(t, 2)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(sched.PeakMemory(t, s)) / 3
	}
	b.ReportMetric(ratio, "mem/Mseq")
}

// BenchmarkAblationLeafOrder compares ParInnerFirst's memory with the
// optimal-postorder leaf order against an arbitrary leaf order (E12).
func BenchmarkAblationLeafOrder(b *testing.B) {
	insts, err := dataset.Collection(dataset.Quick, 42)
	if err != nil {
		b.Fatal(err)
	}
	arb, _ := sched.ByName("ParInnerFirstArbitrary")
	var ratio float64
	for i := 0; i < b.N; i++ {
		var sum float64
		var cnt int
		for _, in := range insts {
			s1, err := sched.ParInnerFirst(in.Tree, 8)
			if err != nil {
				b.Fatal(err)
			}
			s2, err := arb.Run(in.Tree, 8)
			if err != nil {
				b.Fatal(err)
			}
			sum += float64(sched.PeakMemory(in.Tree, s2)) / float64(sched.PeakMemory(in.Tree, s1))
			cnt++
		}
		ratio = sum / float64(cnt)
	}
	b.ReportMetric(ratio, "arbitrary/postorder-mem")
}

// BenchmarkMemCap sweeps the memory-capped scheduler (E13).
func BenchmarkMemCap(b *testing.B) {
	g := treesched.Grid2D(30, 30)
	t, err := treesched.AssemblyTree(g, treesched.NestedDissection(g), 4)
	if err != nil {
		b.Fatal(err)
	}
	mseq := treesched.MemoryLowerBound(t)
	lb := treesched.MakespanLowerBound(t, 8)
	for _, factor := range []int64{1, 2, 5} {
		factor := factor
		b.Run(string(rune('0'+factor))+"xMseq", func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				s, err := treesched.MemCapped(t, 8, factor*mseq)
				if err != nil {
					b.Fatal(err)
				}
				ratio = s.Makespan(t) / lb
			}
			b.ReportMetric(ratio, "ms/LB")
		})
	}
}

// BenchmarkHeuristics measures raw scheduling throughput of each heuristic
// on a realistic assembly tree.
func BenchmarkHeuristics(b *testing.B) {
	g := treesched.Grid2D(60, 60)
	t, err := treesched.AssemblyTree(g, treesched.NestedDissection(g), 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range treesched.Heuristics() {
		h := h
		b.Run(h.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.Run(t, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSplitSubtrees measures the splitting pass alone on a large tree.
func BenchmarkSplitSubtrees(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t := tree.RandomAttachment(rng, 100000,
		tree.WeightSpec{WMin: 1, WMax: 9, NMin: 0, NMax: 9, FMin: 1, FMax: 99})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.SplitSubtrees(t, 32)
	}
}

// BenchmarkPeakMemorySimulator measures the discrete-event simulator.
func BenchmarkPeakMemorySimulator(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	t := tree.RandomAttachment(rng, 100000,
		tree.WeightSpec{WMin: 1, WMax: 9, NMin: 0, NMax: 9, FMin: 1, FMax: 99})
	s, err := sched.ParDeepestFirst(t, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.PeakMemory(t, s)
	}
}

// BenchmarkAssemblyPipeline measures the sparse-matrix substrate end to
// end: ordering, symbolic factorization and amalgamation.
func BenchmarkAssemblyPipeline(b *testing.B) {
	g := treesched.Grid2D(60, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm := treesched.NestedDissection(g)
		if _, err := treesched.AssemblyTree(g, perm, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontalEngine runs the numeric multifrontal factorization (E15)
// and reports the engine-vs-model memory agreement (must be 1.0).
func BenchmarkFrontalEngine(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := treesched.Grid2D(16, 16)
	perm := treesched.NestedDissection(g)
	a := treesched.SPDMatrix(rng, g)
	f, err := treesched.NewFactorizer(g, perm, a)
	if err != nil {
		b.Fatal(err)
	}
	t, err := treesched.AssemblyTree(g, perm, 1)
	if err != nil {
		b.Fatal(err)
	}
	po := treesched.BestPostOrder(t)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := f.Factorize(po.Order)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(res.PeakEntries) / float64(po.Peak)
	}
	b.ReportMetric(ratio, "engine/model-mem")
}
